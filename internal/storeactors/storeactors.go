// Package storeactors provides a file-storage system eactor, the
// extension the paper sketches in Section 4.1: "If a common file system
// storage is required, EActors can be extended similarly to the
// networking support by implementing dedicated untrusted eactors that
// execute the necessary system calls."
//
// A FILER eactor runs untrusted, owns a table of open files, and serves
// open/read/write/sync/close requests arriving over ordinary channels —
// so enclaved eactors can persist sealed state without ever issuing a
// system call themselves.
package storeactors

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"

	"github.com/eactors/eactors-go/internal/core"
)

// OpType discriminates filer protocol messages.
type OpType uint8

// Filer protocol message types.
const (
	// OpOpen opens a file; Data is the path, Arg the Mode.
	OpOpen OpType = iota + 1
	// OpRead reads up to Arg bytes at the current offset; answered by
	// OpData (possibly short) or OpEOF.
	OpRead
	// OpWrite appends/writes Data at the current offset.
	OpWrite
	// OpSync flushes the file to stable storage.
	OpSync
	// OpClose closes the handle.
	OpClose
	// OpOK acknowledges Open (returning the handle), Write, Sync, Close.
	OpOK
	// OpData carries read payloads.
	OpData
	// OpEOF reports end of file for a read.
	OpEOF
	// OpErr reports a failed operation; Data is the error text.
	OpErr
)

// Mode values for OpOpen's Arg.
const (
	// ModeRead opens an existing file read-only.
	ModeRead = 0
	// ModeCreate truncates/creates for writing.
	ModeCreate = 1
	// ModeAppend opens for appending, creating if needed.
	ModeAppend = 2
)

const msgHeader = 1 + 4 + 4 + 2 // type + handle + arg + dataLen

// Msg is one filer protocol message.
type Msg struct {
	Type   OpType
	Handle uint32
	Arg    uint32
	Data   []byte
}

// ErrShortMsg reports a truncated encoding.
var ErrShortMsg = errors.New("storeactors: short message")

// MaxData returns the largest Data payload fitting a node of the given
// capacity.
func MaxData(nodeCapacity int) int { return nodeCapacity - msgHeader }

// AppendTo encodes m at the end of buf.
func (m Msg) AppendTo(buf []byte) ([]byte, error) {
	if len(m.Data) > 0xFFFF {
		return nil, fmt.Errorf("storeactors: data %d exceeds frame limit", len(m.Data))
	}
	var hdr [msgHeader]byte
	hdr[0] = byte(m.Type)
	binary.LittleEndian.PutUint32(hdr[1:], m.Handle)
	binary.LittleEndian.PutUint32(hdr[5:], m.Arg)
	binary.LittleEndian.PutUint16(hdr[9:], uint16(len(m.Data)))
	buf = append(buf, hdr[:]...)
	return append(buf, m.Data...), nil
}

// ParseMsg decodes one message; Data aliases b.
func ParseMsg(b []byte) (Msg, error) {
	if len(b) < msgHeader {
		return Msg{}, ErrShortMsg
	}
	n := int(binary.LittleEndian.Uint16(b[9:]))
	if len(b) < msgHeader+n {
		return Msg{}, ErrShortMsg
	}
	return Msg{
		Type:   OpType(b[0]),
		Handle: binary.LittleEndian.Uint32(b[1:]),
		Arg:    binary.LittleEndian.Uint32(b[5:]),
		Data:   b[msgHeader : msgHeader+n],
	}, nil
}

// Table holds the filer's open files.
type Table struct {
	mu    sync.Mutex
	next  uint32
	files map[uint32]*os.File
}

// NewTable creates an empty file table.
func NewTable() *Table {
	return &Table{files: make(map[uint32]*os.File)}
}

func (t *Table) add(f *os.File) uint32 {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.next++
	t.files[t.next] = f
	return t.next
}

func (t *Table) get(h uint32) (*os.File, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	f, ok := t.files[h]
	return f, ok
}

func (t *Table) remove(h uint32) (*os.File, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	f, ok := t.files[h]
	delete(t.files, h)
	return f, ok
}

// CloseAll closes every open file (shutdown path).
func (t *Table) CloseAll() {
	t.mu.Lock()
	defer t.mu.Unlock()
	for h, f := range t.files {
		_ = f.Close()
		delete(t.files, h)
	}
}

// Len returns the number of open files.
func (t *Table) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.files)
}

// System owns the file table and builds FILER specs.
type System struct {
	table *Table
	// Root, when non-empty, confines all paths beneath this directory
	// (the untrusted filer should not let a compromised enclave roam
	// the host filesystem).
	Root string
}

// NewSystem creates a storage system. root confines paths ("" = no
// confinement).
func NewSystem(root string) *System {
	return &System{table: NewTable(), Root: root}
}

// Table exposes the file table.
func (s *System) Table() *Table { return s.table }

// Shutdown closes all files; call after the runtime stopped.
func (s *System) Shutdown() { s.table.CloseAll() }

func (s *System) resolve(path string) (string, error) {
	if s.Root == "" {
		return path, nil
	}
	for i := 0; i+1 < len(path); i++ {
		if path[i] == '.' && path[i+1] == '.' {
			return "", fmt.Errorf("storeactors: path %q escapes the root", path)
		}
	}
	if len(path) > 0 && path[0] == '/' {
		return "", fmt.Errorf("storeactors: absolute path %q not allowed under a root", path)
	}
	return s.Root + "/" + path, nil
}

// filerBatch bounds per-channel request draining per body invocation.
const filerBatch = 16

// FilerSpec builds the FILER eactor serving the named channels. It must
// be deployed untrusted. Requests are drained and replies returned
// through the channel batch fast path: one RecvBatch and one SendBatch
// per channel per invocation, so a burst of file operations costs one
// pool/mbox/doorbell interaction in each direction.
func (s *System) FilerSpec(name string, worker int, channels ...string) core.Spec {
	var eps []*core.Endpoint
	var stage core.SendStage
	recvBufs, recvLens := core.BatchBufs(filerBatch, core.DefaultNodePayload)
	readBuf := make([]byte, core.DefaultNodePayload)
	return core.Spec{
		Name:   name,
		Worker: worker,
		Init: func(self *core.Self) error {
			for _, ch := range channels {
				ep, err := self.Channel(ch)
				if err != nil {
					return err
				}
				eps = append(eps, ep)
			}
			return nil
		},
		Body: func(self *core.Self) {
			for _, ep := range eps {
				n, _ := self.RecvBatch(ep, recvBufs, recvLens)
				if n == 0 {
					continue
				}
				maxData := MaxData(ep.MaxPayload())
				stage.Reset()
				for i := 0; i < n; i++ {
					msg, err := ParseMsg(recvBufs[i][:recvLens[i]])
					if err != nil {
						continue
					}
					s.serve(msg, &stage, readBuf, maxData)
				}
				// Best effort, like the single reply path was: unsent
				// replies are dropped; requesters treat the filer as
				// at-least-once and may retry.
				_, _ = ep.SendBatch(stage.Frames()) //sendcheck:ok
			}
		},
	}
}

// reply stages one message for the batched reply send.
func reply(stage *core.SendStage, m Msg) {
	buf, err := m.AppendTo(stage.Slot())
	if err != nil {
		return
	}
	stage.Push(buf)
}

func (s *System) serve(msg Msg, stage *core.SendStage, readBuf []byte, maxData int) {
	fail := func(handle uint32, err error) {
		reply(stage, Msg{Type: OpErr, Handle: handle, Data: []byte(err.Error())})
	}
	switch msg.Type {
	case OpOpen:
		path, err := s.resolve(string(msg.Data))
		if err != nil {
			fail(0, err)
			return
		}
		var f *os.File
		switch msg.Arg {
		case ModeRead:
			f, err = os.Open(path)
		case ModeCreate:
			f, err = os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
		case ModeAppend:
			f, err = os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_APPEND, 0o644)
		default:
			err = fmt.Errorf("storeactors: unknown open mode %d", msg.Arg)
		}
		if err != nil {
			fail(0, err)
			return
		}
		reply(stage, Msg{Type: OpOK, Handle: s.table.add(f)})
	case OpRead:
		f, ok := s.table.get(msg.Handle)
		if !ok {
			fail(msg.Handle, errUnknownHandle)
			return
		}
		want := int(msg.Arg)
		if want > maxData || want == 0 {
			want = maxData
		}
		n, err := f.Read(readBuf[:want])
		if n > 0 {
			reply(stage, Msg{Type: OpData, Handle: msg.Handle, Data: readBuf[:n]})
			return
		}
		if err == io.EOF {
			reply(stage, Msg{Type: OpEOF, Handle: msg.Handle})
			return
		}
		if err != nil {
			fail(msg.Handle, err)
		}
	case OpWrite:
		f, ok := s.table.get(msg.Handle)
		if !ok {
			fail(msg.Handle, errUnknownHandle)
			return
		}
		if _, err := f.Write(msg.Data); err != nil {
			fail(msg.Handle, err)
			return
		}
		reply(stage, Msg{Type: OpOK, Handle: msg.Handle})
	case OpSync:
		f, ok := s.table.get(msg.Handle)
		if !ok {
			fail(msg.Handle, errUnknownHandle)
			return
		}
		if err := f.Sync(); err != nil {
			fail(msg.Handle, err)
			return
		}
		reply(stage, Msg{Type: OpOK, Handle: msg.Handle})
	case OpClose:
		f, ok := s.table.remove(msg.Handle)
		if !ok {
			fail(msg.Handle, errUnknownHandle)
			return
		}
		if err := f.Close(); err != nil {
			fail(msg.Handle, err)
			return
		}
		reply(stage, Msg{Type: OpOK, Handle: msg.Handle})
	}
}

var errUnknownHandle = errors.New("storeactors: unknown file handle")
