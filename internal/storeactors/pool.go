package storeactors

import (
	"fmt"

	"github.com/eactors/eactors-go/internal/core"
)

// Pool scales the FILER service across cores: N independent filer
// eactors, each with its own file table, serving disjoint slices of the
// path space. Requesters route every path to the filer PathShard picks,
// so one file is only ever owned by one filer — no cross-filer handle
// coordination, no shared table lock, and each filer drains its own
// channels with the batch fast path.
type Pool struct {
	systems []*System
}

// NewPool creates a pool of n storage systems, all confined beneath
// root ("" = no confinement). The systems share the directory tree but
// never the same file: affinity routing keeps each path on one filer.
func NewPool(root string, n int) *Pool {
	if n < 1 {
		n = 1
	}
	p := &Pool{systems: make([]*System, n)}
	for i := range p.systems {
		p.systems[i] = NewSystem(root)
	}
	return p
}

// Size returns the number of filers in the pool.
func (p *Pool) Size() int { return len(p.systems) }

// System returns the i-th filer's storage system.
func (p *Pool) System(i int) *System { return p.systems[i] }

// Shutdown closes every open file in every filer; call after the
// runtime stopped.
func (p *Pool) Shutdown() {
	for _, s := range p.systems {
		s.Shutdown()
	}
}

// PathShard returns the pool member that owns path — the same stable
// FNV-1a hash the sharded POS uses for keys, so a deployment can align
// file affinity with key affinity.
func PathShard(path string, n int) int {
	if n <= 1 {
		return 0
	}
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(path); i++ {
		h ^= uint32(path[i])
		h *= prime32
	}
	return int(h % uint32(n))
}

// FilerName returns the spec name of pool member i under prefix
// (e.g. "filer-0"). Kept in one place so deployments and tests agree.
func FilerName(prefix string, i int) string { return fmt.Sprintf("%s-%d", prefix, i) }

// Specs builds one FILER spec per pool member. worker maps a pool index
// to the worker that runs it (spread them for parallelism); channels
// maps a pool index to the channel names that filer serves. Deploy the
// returned specs untrusted, like a single FilerSpec.
func (p *Pool) Specs(prefix string, worker func(i int) int, channels func(i int) []string) []core.Spec {
	specs := make([]core.Spec, len(p.systems))
	for i, s := range p.systems {
		specs[i] = s.FilerSpec(FilerName(prefix, i), worker(i), channels(i)...)
	}
	return specs
}
