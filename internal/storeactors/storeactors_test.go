package storeactors

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
	"time"

	"github.com/eactors/eactors-go/internal/core"
	"github.com/eactors/eactors-go/internal/sgx"
)

func TestMsgRoundTrip(t *testing.T) {
	m := Msg{Type: OpWrite, Handle: 3, Arg: 9, Data: []byte("payload")}
	buf, err := m.AppendTo(nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseMsg(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != m.Type || got.Handle != m.Handle || got.Arg != m.Arg || !bytes.Equal(got.Data, m.Data) {
		t.Fatalf("roundtrip = %+v", got)
	}
	if _, err := ParseMsg(buf[:3]); err != ErrShortMsg {
		t.Fatalf("short parse err = %v", err)
	}
	if _, err := (Msg{Data: make([]byte, 70000)}).AppendTo(nil); err == nil {
		t.Fatal("oversized frame accepted")
	}
}

func TestMsgQuick(t *testing.T) {
	f := func(op uint8, handle, arg uint32, data []byte) bool {
		if len(data) > 0xFFFF {
			data = data[:0xFFFF]
		}
		m := Msg{Type: OpType(op), Handle: handle, Arg: arg, Data: data}
		buf, err := m.AppendTo(nil)
		if err != nil {
			return false
		}
		got, err := ParseMsg(buf)
		return err == nil && got.Type == m.Type && got.Handle == m.Handle &&
			got.Arg == m.Arg && bytes.Equal(got.Data, m.Data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPathConfinement(t *testing.T) {
	s := NewSystem("/tmp/jail")
	if _, err := s.resolve("../etc/passwd"); err == nil {
		t.Fatal("dotdot escape accepted")
	}
	if _, err := s.resolve("/etc/passwd"); err == nil {
		t.Fatal("absolute path accepted under root")
	}
	if got, err := s.resolve("data/file.bin"); err != nil || got != "/tmp/jail/data/file.bin" {
		t.Fatalf("resolve = %q, %v", got, err)
	}
	free := NewSystem("")
	if got, err := free.resolve("/anywhere"); err != nil || got != "/anywhere" {
		t.Fatalf("unconfined resolve = %q, %v", got, err)
	}
}

// filerClient drives the FILER protocol from a test actor body.
type filerClient struct {
	ep      *core.Endpoint
	scratch []byte
	recv    []byte
}

func (c *filerClient) call(t *testing.T, req Msg, wantType OpType) Msg {
	t.Helper()
	buf, err := req.AppendTo(c.scratch[:0])
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	c.scratch = buf
	deadline := time.Now().Add(10 * time.Second)
	for c.ep.Send(c.scratch) != nil {
		if time.Now().After(deadline) {
			t.Fatal("send timed out")
		}
	}
	for {
		n, ok, err := c.ep.Recv(c.recv)
		if err != nil {
			t.Fatalf("recv: %v", err)
		}
		if ok {
			resp, err := ParseMsg(c.recv[:n])
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			if resp.Type == OpErr && wantType != OpErr {
				t.Fatalf("filer error: %s", resp.Data)
			}
			// wantType 0 accepts any success response (reads may answer
			// OpData or OpEOF).
			if wantType != 0 && resp.Type != wantType {
				t.Fatalf("response type = %d, want %d", resp.Type, wantType)
			}
			return resp
		}
		if time.Now().After(deadline) {
			t.Fatal("recv timed out")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestFilerEndToEnd runs the FILER inside a runtime and exercises the
// whole protocol from an enclaved requester: an enclave persists sealed
// data through the untrusted filer and recovers it.
func TestFilerEndToEnd(t *testing.T) {
	dir := t.TempDir()
	sys := NewSystem(dir)
	defer sys.Shutdown()

	platform := sgx.NewPlatform(sgx.WithCostModel(sgx.ZeroCostModel()))
	done := make(chan error, 1)

	requester := core.Spec{
		Name:    "requester",
		Enclave: "vault",
		Worker:  0,
		Init: func(self *core.Self) error {
			// All protocol work happens in a single Init for test
			// simplicity; bodies would normally run this as a state
			// machine. Init runs before workers start, so drive the
			// filer from a body instead: record the endpoint.
			return nil
		},
		Body: func(self *core.Self) {},
	}

	cfg := core.Config{
		Enclaves: []core.EnclaveSpec{{Name: "vault"}},
		Workers:  []core.WorkerSpec{{}, {}},
		Actors: []core.Spec{
			requester,
			sys.FilerSpec("filer", 1, "fs"),
		},
		Channels: []core.ChannelSpec{{Name: "fs", A: "requester", B: "filer"}},
	}
	rt, err := core.NewRuntime(platform, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()

	// Drive the protocol from the test goroutine via the requester's
	// endpoint: the endpoint is owned by the (idle) requester actor, and
	// the test acts as its body here.
	vault, _ := rt.EnclaveByName("vault")
	sealed, err := vault.Seal([]byte("the enclave's persistent secret"), nil)
	if err != nil {
		t.Fatal(err)
	}

	go func() {
		done <- nil
	}()
	client := &filerClient{recv: make([]byte, 4096)}
	ep, err := findEndpoint(rt, "requester", "fs")
	if err != nil {
		t.Fatal(err)
	}
	client.ep = ep

	// Write the sealed blob.
	open := client.call(t, Msg{Type: OpOpen, Arg: ModeCreate, Data: []byte("secret.bin")}, OpOK)
	handle := open.Handle
	client.call(t, Msg{Type: OpWrite, Handle: handle, Data: sealed}, OpOK)
	client.call(t, Msg{Type: OpSync, Handle: handle}, OpOK)
	client.call(t, Msg{Type: OpClose, Handle: handle}, OpOK)

	// The bytes on disk are ciphertext.
	onDisk, err := os.ReadFile(filepath.Join(dir, "secret.bin"))
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(onDisk, []byte("persistent secret")) {
		t.Fatal("plaintext reached the filesystem")
	}

	// Read it back and unseal inside the enclave.
	open = client.call(t, Msg{Type: OpOpen, Arg: ModeRead, Data: []byte("secret.bin")}, OpOK)
	handle = open.Handle
	var recovered []byte
	for {
		resp := client.call(t, Msg{Type: OpRead, Handle: handle}, 0)
		if resp.Type == OpEOF {
			break
		}
		if resp.Type != OpData {
			t.Fatalf("read response type %d", resp.Type)
		}
		recovered = append(recovered, resp.Data...)
	}
	client.call(t, Msg{Type: OpClose, Handle: handle}, OpOK)

	plain, err := vault.Unseal(recovered, nil)
	if err != nil {
		t.Fatalf("unseal: %v", err)
	}
	if string(plain) != "the enclave's persistent secret" {
		t.Fatalf("recovered %q", plain)
	}
	if sys.Table().Len() != 0 {
		t.Fatalf("files left open: %d", sys.Table().Len())
	}
	<-done
}

// findEndpoint digs an actor's endpoint out of the runtime for
// test-side protocol driving.
func findEndpoint(rt *core.Runtime, actor, channel string) (*core.Endpoint, error) {
	return core.EndpointForTest(rt, actor, channel)
}

func TestFilerErrors(t *testing.T) {
	dir := t.TempDir()
	sys := NewSystem(dir)
	defer sys.Shutdown()
	platform := sgx.NewPlatform(sgx.WithCostModel(sgx.ZeroCostModel()))
	cfg := core.Config{
		Workers: []core.WorkerSpec{{}},
		Actors: []core.Spec{
			{Name: "app", Worker: 0, Body: func(*core.Self) {}},
			sys.FilerSpec("filer", 0, "fs"),
		},
		Channels: []core.ChannelSpec{{Name: "fs", A: "app", B: "filer"}},
	}
	rt, err := core.NewRuntime(platform, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()

	ep, err := core.EndpointForTest(rt, "app", "fs")
	if err != nil {
		t.Fatal(err)
	}
	client := &filerClient{ep: ep, recv: make([]byte, 4096)}

	// Opening a missing file errors.
	resp := client.call(t, Msg{Type: OpOpen, Arg: ModeRead, Data: []byte("missing.bin")}, OpErr)
	if len(resp.Data) == 0 {
		t.Fatal("empty error text")
	}
	// Escaping the root errors.
	client.call(t, Msg{Type: OpOpen, Arg: ModeRead, Data: []byte("../../etc/passwd")}, OpErr)
	// Unknown handle errors.
	client.call(t, Msg{Type: OpWrite, Handle: 99, Data: []byte("x")}, OpErr)
	client.call(t, Msg{Type: OpSync, Handle: 99}, OpErr)
	client.call(t, Msg{Type: OpClose, Handle: 99}, OpErr)
	// Unknown open mode errors.
	client.call(t, Msg{Type: OpOpen, Arg: 77, Data: []byte("f")}, OpErr)
}
