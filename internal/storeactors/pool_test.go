package storeactors

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"github.com/eactors/eactors-go/internal/core"
	"github.com/eactors/eactors-go/internal/sgx"
)

func TestPathShardStable(t *testing.T) {
	for _, n := range []int{1, 2, 4, 7} {
		a := PathShard("vault/users.bin", n)
		if b := PathShard("vault/users.bin", n); a != b {
			t.Fatalf("PathShard unstable for n=%d", n)
		}
		if a < 0 || a >= n {
			t.Fatalf("PathShard out of range for n=%d: %d", n, a)
		}
	}
	seen := make(map[int]bool)
	for i := 0; i < 256; i++ {
		seen[PathShard(fmt.Sprintf("dir/file-%d", i), 4)] = true
	}
	if len(seen) != 4 {
		t.Fatalf("256 paths hit only %d of 4 filers", len(seen))
	}
}

func TestPoolSpecs(t *testing.T) {
	p := NewPool(t.TempDir(), 3)
	defer p.Shutdown()
	if p.Size() != 3 {
		t.Fatalf("Size = %d", p.Size())
	}
	specs := p.Specs("filer",
		func(i int) int { return i },
		func(i int) []string { return []string{fmt.Sprintf("fs-%d", i)} })
	if len(specs) != 3 {
		t.Fatalf("Specs = %d", len(specs))
	}
	for i, sp := range specs {
		if sp.Name != FilerName("filer", i) || sp.Worker != i {
			t.Fatalf("spec %d = {Name %q, Worker %d}", i, sp.Name, sp.Worker)
		}
	}
	if NewPool("", 0).Size() != 1 {
		t.Fatal("zero-size pool not clamped to 1")
	}
}

// TestFilerPoolConcurrent is the -race regression for the pool:
// concurrent clients hammer all filers at once with affinity-routed
// writes and reads, and every file must come out intact with no handle
// leaked and no table shared across filers.
func TestFilerPoolConcurrent(t *testing.T) {
	const filers = 4
	dir := t.TempDir()
	pool := NewPool(dir, filers)
	defer pool.Shutdown()

	platform := sgx.NewPlatform(sgx.WithCostModel(sgx.ZeroCostModel()))
	actors := []core.Spec{}
	channels := []core.ChannelSpec{}
	for i := 0; i < filers; i++ {
		ch := fmt.Sprintf("fs-%d", i)
		app := fmt.Sprintf("app-%d", i)
		actors = append(actors, core.Spec{Name: app, Worker: 0, Body: func(*core.Self) {}})
		channels = append(channels, core.ChannelSpec{Name: ch, A: app, B: FilerName("filer", i)})
	}
	actors = append(actors, pool.Specs("filer",
		func(i int) int { return 1 + i%2 },
		func(i int) []string { return []string{fmt.Sprintf("fs-%d", i)} })...)

	rt, err := core.NewRuntime(platform, core.Config{
		Workers:  []core.WorkerSpec{{}, {}, {}},
		Actors:   actors,
		Channels: channels,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()

	var wg sync.WaitGroup
	for i := 0; i < filers; i++ {
		ep, err := core.EndpointForTest(rt, fmt.Sprintf("app-%d", i), fmt.Sprintf("fs-%d", i))
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(i int, ep *core.Endpoint) {
			defer wg.Done()
			client := &filerClient{ep: ep, recv: make([]byte, 4096)}
			for f := 0; f < 8; f++ {
				// Affinity: this client only touches paths its filer owns.
				name := ""
				for cand := 0; ; cand++ {
					name = fmt.Sprintf("file-%d.bin", cand+1000*f)
					if PathShard(name, filers) == i {
						break
					}
				}
				payload := bytes.Repeat([]byte{byte(i), byte(f)}, 64)
				open := client.call(t, Msg{Type: OpOpen, Arg: ModeCreate, Data: []byte(name)}, OpOK)
				client.call(t, Msg{Type: OpWrite, Handle: open.Handle, Data: payload}, OpOK)
				client.call(t, Msg{Type: OpSync, Handle: open.Handle}, OpOK)
				client.call(t, Msg{Type: OpClose, Handle: open.Handle}, OpOK)
				got, err := os.ReadFile(filepath.Join(dir, name))
				if err != nil || !bytes.Equal(got, payload) {
					t.Errorf("filer %d file %s: %v", i, name, err)
					return
				}
			}
		}(i, ep)
	}
	wg.Wait()

	for i := 0; i < filers; i++ {
		if n := pool.System(i).Table().Len(); n != 0 {
			t.Fatalf("filer %d leaked %d handles", i, n)
		}
	}
}

// TestFilerPoolMailboxShedding pins the backpressure contract: when a
// filer's request mbox is full, Send fails fast with the typed
// core.ErrMailboxFull (callers shed or retry — nothing blocks), and the
// queue drains once the filer runs.
func TestFilerPoolMailboxShedding(t *testing.T) {
	dir := t.TempDir()
	pool := NewPool(dir, 1)
	defer pool.Shutdown()
	platform := sgx.NewPlatform(sgx.WithCostModel(sgx.ZeroCostModel()))
	rt, err := core.NewRuntime(platform, core.Config{
		Workers: []core.WorkerSpec{{}},
		Actors: append([]core.Spec{
			{Name: "app", Worker: 0, Body: func(*core.Self) {}},
		}, pool.Specs("filer",
			func(int) int { return 0 },
			func(int) []string { return []string{"fs-0"} })...),
		Channels: []core.ChannelSpec{{Name: "fs-0", A: "app", B: FilerName("filer", 0), Capacity: 4}},
	})
	if err != nil {
		t.Fatal(err)
	}
	ep, err := core.EndpointForTest(rt, "app", "fs-0")
	if err != nil {
		t.Fatal(err)
	}

	// The runtime is not started yet, so the filer cannot drain: filling
	// the mbox is deterministic.
	frame, err := Msg{Type: OpOpen, Arg: ModeCreate, Data: []byte("x.bin")}.AppendTo(nil)
	if err != nil {
		t.Fatal(err)
	}
	sent := 0
	var sendErr error
	for i := 0; i < 64; i++ {
		if sendErr = ep.Send(frame); sendErr != nil {
			break
		}
		sent++
	}
	if sendErr == nil {
		t.Fatal("mbox never filled")
	}
	if !errors.Is(sendErr, core.ErrMailboxFull) {
		t.Fatalf("full-mbox err = %v, want core.ErrMailboxFull", sendErr)
	}

	// Once the filer runs, the backlog drains and replies arrive.
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()
	recv := make([]byte, 4096)
	got := 0
	deadline := time.Now().Add(10 * time.Second)
	for got < sent {
		n, ok, err := ep.Recv(recv)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			resp, err := ParseMsg(recv[:n])
			if err != nil {
				t.Fatal(err)
			}
			if resp.Type != OpOK {
				t.Fatalf("reply type = %d (%s)", resp.Type, resp.Data)
			}
			got++
			continue
		}
		if time.Now().After(deadline) {
			t.Fatalf("drained %d of %d replies", got, sent)
		}
		time.Sleep(time.Millisecond)
	}
}
