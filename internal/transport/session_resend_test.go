package transport

import (
	"errors"
	"net"
	"testing"
	"time"
)

// handshakeServer accepts one connection, answers the HELLO, then hands
// the conn to behave. Cleanup joins the goroutine.
func handshakeServer(t *testing.T, behave func(conn net.Conn, sc *Scanner, buf []byte)) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		var sc Scanner
		buf := make([]byte, 64<<10)
		hello, err := readFrame(conn, &sc, buf)
		if err != nil || hello.Type != THello {
			return
		}
		ack, _ := AppendFrame(nil, HelloAck(hello.Opaque, DefaultWindow))
		if _, err := conn.Write(ack); err != nil {
			return
		}
		behave(conn, &sc, buf)
	}()
	t.Cleanup(func() { _ = ln.Close(); <-done })
	return ln.Addr().String()
}

// TestSessionResendUntilAnswered: a lost request is retransmitted on the
// resend interval until the peer answers — the at-least-once half of the
// exactly-once contract (the peer's replay window is the other half).
func TestSessionResendUntilAnswered(t *testing.T) {
	addr := handshakeServer(t, func(conn net.Conn, sc *Scanner, buf []byte) {
		seen := 0
		for {
			f, err := readFrame(conn, sc, buf)
			if err != nil {
				return
			}
			if f.Type != TRequest {
				continue
			}
			seen++
			if seen < 2 {
				continue // "lose" the original; only the resend is answered
			}
			resp, _ := AppendFrame(nil, Frame{Type: TResponse, Opaque: f.Opaque, Payload: []byte("late")})
			if _, err := conn.Write(resp); err != nil {
				return
			}
			_, _ = conn.Read(buf) // park until the client hangs up
			return
		}
	})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Connect(conn, SessionOptions{
		Features:       FeatureKV,
		CallTimeout:    5 * time.Second,
		ResendInterval: 25 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	resp, err := s.Call(TRequest, []byte("x"))
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	if string(resp.Payload) != "late" {
		t.Fatalf("payload = %q", resp.Payload)
	}
	if st := s.Stats(); st.Resent == 0 {
		t.Fatalf("no resends recorded: %+v", st)
	}
}

// TestSessionCallTimeout: a peer that never answers bounds the caller at
// CallTimeout with ErrTimeout; the session itself stays usable.
func TestSessionCallTimeout(t *testing.T) {
	addr := handshakeServer(t, func(conn net.Conn, sc *Scanner, buf []byte) {
		for {
			if _, err := readFrame(conn, sc, buf); err != nil {
				return // client hung up
			}
		}
	})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Connect(conn, SessionOptions{
		Features:       FeatureKV,
		CallTimeout:    120 * time.Millisecond,
		ResendInterval: 40 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Call(TRequest, []byte("x")); !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	// The timed-out call released its window bytes and depth slot.
	if got := s.Window().InFlight(); got != 0 {
		t.Fatalf("in-flight bytes after timeout = %d", got)
	}
}

// TestCallDoneResponse covers the select-based completion API.
func TestCallDoneResponse(t *testing.T) {
	addr := serveOne(t, echoHandler, ServeOptions{Features: FeatureKV})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Connect(conn, SessionOptions{Features: FeatureKV})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c, err := s.Issue(TRequest, []byte("ping"))
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-c.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("call never completed")
	}
	resp, err := c.Response()
	if err != nil || string(resp.Payload) != "ping" {
		t.Fatalf("response = %+v, %v", resp, err)
	}
}

func TestStringers(t *testing.T) {
	for want, got := range map[string]string{
		"hello":      THello.String(),
		"hello-ack":  THelloAck.String(),
		"request":    TRequest.String(),
		"response":   TResponse.String(),
		"credit":     TCredit.String(),
		"goaway":     TGoAway.String(),
		"stanza":     TStanza.String(),
		"new":        VerdictNew.String(),
		"replay":     VerdictReplay.String(),
		"reject":     VerdictReject.String(),
		"verdict(9)": Verdict(9).String(),
	} {
		if want != got {
			t.Errorf("stringer: %q != %q", got, want)
		}
	}
	if Type(0xFF).String() == "" {
		t.Error("unknown type stringer empty")
	}
}
