package transport

import (
	"testing"

	"github.com/eactors/eactors-go/internal/testutil/leakcheck"
)

// TestMain fails the package if tests leak goroutines — session
// readers, serve loops and test servers must all unwind on Close.
func TestMain(m *testing.M) { leakcheck.Main(m) }
