package transport

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// ErrLegacyPeer reports that the remote end does not speak the framed
// protocol: it closed the connection on our HELLO (a legacy KV server
// rejecting the unknown opcode), answered with non-frame bytes, or
// stayed silent past the handshake deadline. Callers downgrade by
// redialing with their legacy protocol.
var ErrLegacyPeer = errors.New("transport: peer does not speak the framed protocol")

// ErrSessionClosed reports an operation on a closed session.
var ErrSessionClosed = errors.New("transport: session closed")

// ErrGoAway reports that the peer terminated the session.
var ErrGoAway = errors.New("transport: peer sent goaway")

// ErrTimeout reports that a call's response did not arrive within the
// session's call timeout. The request may or may not have executed;
// the protocol is at-least-once and the peer's replay window dedups
// re-issues, so callers may retry.
var ErrTimeout = errors.New("transport: call timed out")

// SessionOptions configures a client Session.
type SessionOptions struct {
	// Features are the capability bits offered in HELLO (FeatureKV,
	// FeatureS2S, ...). Must stay below 256 (see Hello).
	Features uint32
	// RecvWindow is the receive-buffer advertisement sent to the peer
	// (DefaultWindow when zero). v1 peers respond only to requests, so
	// it is informational, but it rides the wire for future streaming.
	RecvWindow uint32
	// Depth caps concurrent in-flight calls (default 64). It must stay
	// at or below half the server's replay window so resends always
	// land inside the dedup cache; Connect clamps it to 64 maximum
	// against DefaultReplayWindow-sized peers.
	Depth int
	// HandshakeTimeout bounds the HELLO/HELLO-ACK exchange (default 2s);
	// hitting it yields ErrLegacyPeer.
	HandshakeTimeout time.Duration
	// CallTimeout bounds each Wait (default 5s).
	CallTimeout time.Duration
	// ResendInterval is the at-least-once retransmit period inside a
	// Wait (default CallTimeout/4). The peer's replay window absorbs
	// the duplicates.
	ResendInterval time.Duration
	// ReadBuf sizes the reader's chunk buffer (default 64 KiB).
	ReadBuf int
}

func (o *SessionOptions) defaults() {
	if o.Depth <= 0 {
		o.Depth = 64
	}
	if o.RecvWindow == 0 {
		o.RecvWindow = DefaultWindow
	}
	if o.HandshakeTimeout <= 0 {
		o.HandshakeTimeout = 2 * time.Second
	}
	if o.CallTimeout <= 0 {
		o.CallTimeout = 5 * time.Second
	}
	if o.ResendInterval <= 0 {
		o.ResendInterval = o.CallTimeout / 4
	}
	if o.ReadBuf <= 0 {
		o.ReadBuf = 64 << 10
	}
}

// Call is one in-flight request. The issuing goroutine waits on it via
// Session.Wait (or Done + Response for select-based callers).
type Call struct {
	// Opaque is the correlation tag the session assigned.
	Opaque uint32

	done      chan struct{}
	frame     []byte // full encoded request, retained for resends
	size      int    // window bytes reserved
	completed bool   // guarded by the session mutex
	resp      Frame  // payload owned by the call
	err       error
}

// Done is closed when the response (or a terminal error) arrived.
func (c *Call) Done() <-chan struct{} { return c.done }

// Response returns the outcome; call only after Done is closed.
func (c *Call) Response() (Frame, error) { return c.resp, c.err }

// SessionStats snapshots a session's counters.
type SessionStats struct {
	// Issued / Completed / Resent count calls and retransmits.
	Issued, Completed, Resent uint64
	// WindowLimit is the peer's advertised receive budget;
	// MaxInFlightBytes the high-water mark of bytes we kept outstanding
	// against it (always <= WindowLimit — the flow-control invariant).
	WindowLimit, MaxInFlightBytes int
}

// Session is the client engine of the framed protocol: it multiplexes
// concurrent calls over one connection, correlating out-of-order
// responses by opaque, throttling issues against the peer's advertised
// receive window, and retransmitting unanswered requests so the peer's
// replay window can enforce exactly-once effect. Safe for concurrent
// use by any number of issuing goroutines; one background reader
// completes calls.
type Session struct {
	conn net.Conn
	opts SessionOptions

	window       *Window
	peerFeatures uint32

	depth      chan struct{} // in-flight call slots
	failCh     chan struct{} // closed once, on terminal failure
	readerDone chan struct{}

	mu         sync.Mutex
	pending    map[uint32]*Call
	nextOpaque uint32
	wbuf       []byte // encode scratch, guarded by mu
	failErr    error

	issued, completed, resent atomic.Uint64
}

// Connect performs the HELLO handshake on conn and starts the session.
// A peer that does not speak the protocol yields ErrLegacyPeer (the
// conn is then closed). On success the session owns conn.
func Connect(conn net.Conn, opts SessionOptions) (*Session, error) {
	opts.defaults()
	hello, err := Hello(opts.Features, opts.RecvWindow)
	if err != nil {
		return nil, err
	}
	deadline := time.Now().Add(opts.HandshakeTimeout)
	if err := conn.SetDeadline(deadline); err != nil {
		return nil, err
	}
	buf, err := AppendFrame(nil, hello)
	if err != nil {
		return nil, err
	}
	if _, err := conn.Write(buf); err != nil {
		_ = conn.Close()
		return nil, fmt.Errorf("%w (hello write: %v)", ErrLegacyPeer, err)
	}
	ack, err := awaitAck(conn, opts.ReadBuf)
	if err != nil {
		_ = conn.Close()
		return nil, err
	}
	if ack.Flags != Version1 {
		_ = conn.Close()
		return nil, fmt.Errorf("transport: peer negotiated unsupported version %d", ack.Flags)
	}
	if err := conn.SetDeadline(time.Time{}); err != nil {
		_ = conn.Close()
		return nil, err
	}
	s := &Session{
		conn:         conn,
		opts:         opts,
		window:       NewWindow(int(ack.Credit)),
		peerFeatures: ack.Opaque,
		depth:        make(chan struct{}, opts.Depth),
		failCh:       make(chan struct{}),
		readerDone:   make(chan struct{}),
		pending:      make(map[uint32]*Call),
	}
	go s.reader()
	return s, nil
}

// awaitAck reads frames until HELLO-ACK; every legacy behaviour —
// close, silence, non-frame bytes — maps to ErrLegacyPeer.
func awaitAck(conn net.Conn, readBuf int) (Frame, error) {
	var sc Scanner
	buf := make([]byte, readBuf)
	for {
		n, err := conn.Read(buf)
		if n > 0 {
			sc.Feed(buf[:n])
			f, _, ok, ferr := sc.Next()
			if ferr != nil {
				return Frame{}, fmt.Errorf("%w (%v)", ErrLegacyPeer, ferr)
			}
			if ok {
				switch f.Type {
				case THelloAck:
					return f, nil
				case TGoAway:
					return Frame{}, fmt.Errorf("transport: handshake refused: %s", f.Payload)
				default:
					return Frame{}, fmt.Errorf("%w (unexpected %s during handshake)", ErrLegacyPeer, f.Type)
				}
			}
		}
		if err != nil {
			return Frame{}, fmt.Errorf("%w (%v)", ErrLegacyPeer, err)
		}
	}
}

// PeerFeatures returns the feature bits the peer granted.
func (s *Session) PeerFeatures() uint32 { return s.peerFeatures }

// Window returns the sender-side flow-control window (peer-advertised).
func (s *Session) Window() *Window { return s.window }

// Stats snapshots the session counters.
func (s *Session) Stats() SessionStats {
	return SessionStats{
		Issued:           s.issued.Load(),
		Completed:        s.completed.Load(),
		Resent:           s.resent.Load(),
		WindowLimit:      s.window.Limit(),
		MaxInFlightBytes: s.window.MaxInFlight(),
	}
}

// Issue sends one request frame of the given type, blocking while the
// pipeline is at Depth or the peer's byte window is exhausted. The
// payload is copied before Issue returns.
func (s *Session) Issue(t Type, payload []byte) (*Call, error) {
	select {
	case s.depth <- struct{}{}:
	case <-s.failCh:
		return nil, s.failure()
	}
	size := HeaderSize + len(payload)
	if err := s.window.Reserve(size); err != nil {
		<-s.depth
		return nil, err
	}
	s.mu.Lock()
	if s.failErr != nil {
		err := s.failErr
		s.mu.Unlock()
		s.window.Release(size)
		<-s.depth
		return nil, err
	}
	s.nextOpaque++
	if s.nextOpaque == 0 { // zero stays reserved as "no opaque"
		s.nextOpaque = 1
	}
	c := &Call{Opaque: s.nextOpaque, done: make(chan struct{}), size: size}
	frame, err := AppendFrame(s.wbuf[:0], Frame{Type: t, Opaque: c.Opaque, Payload: payload})
	if err != nil {
		s.mu.Unlock()
		s.window.Release(size)
		<-s.depth
		return nil, err
	}
	s.wbuf = frame
	c.frame = append([]byte(nil), frame...)
	s.pending[c.Opaque] = c
	werr := s.writeLocked(c.frame)
	s.mu.Unlock()
	s.issued.Add(1)
	if werr != nil {
		s.fail(werr) // completes c (and every peer) with the error
	}
	return c, nil
}

// writeLocked writes one frame under s.mu with the call-timeout write
// deadline.
func (s *Session) writeLocked(frame []byte) error {
	if err := s.conn.SetWriteDeadline(time.Now().Add(s.opts.CallTimeout)); err != nil {
		return err
	}
	_, err := s.conn.Write(frame)
	return err
}

// Wait blocks until c completes, retransmitting on the resend interval
// (at-least-once) and abandoning the call at the call timeout.
func (s *Session) Wait(c *Call) (Frame, error) {
	timeout := time.NewTimer(s.opts.CallTimeout)
	defer timeout.Stop()
	resend := time.NewTicker(s.opts.ResendInterval)
	defer resend.Stop()
	for {
		select {
		case <-c.done:
			return c.resp, c.err
		case <-resend.C:
			s.resend(c)
		case <-timeout.C:
			s.complete(c, Frame{}, ErrTimeout)
			<-c.done
			return c.resp, c.err
		}
	}
}

// Call issues and waits in one step.
func (s *Session) Call(t Type, payload []byte) (Frame, error) {
	c, err := s.Issue(t, payload)
	if err != nil {
		return Frame{}, err
	}
	return s.Wait(c)
}

// resend retransmits a still-pending call's frame.
func (s *Session) resend(c *Call) {
	s.mu.Lock()
	if c.completed || s.failErr != nil {
		s.mu.Unlock()
		return
	}
	err := s.writeLocked(c.frame)
	s.mu.Unlock()
	s.resent.Add(1)
	if err != nil {
		s.fail(err)
	}
}

// complete finishes a call exactly once, returning its window bytes and
// depth slot.
func (s *Session) complete(c *Call, resp Frame, err error) {
	s.mu.Lock()
	if c.completed {
		s.mu.Unlock()
		return
	}
	c.completed = true
	delete(s.pending, c.Opaque)
	c.resp = resp
	c.err = err
	s.mu.Unlock()
	close(c.done)
	s.window.Release(c.size)
	<-s.depth
	s.completed.Add(1)
}

// failure returns the terminal error (after failCh closed).
func (s *Session) failure() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failErr == nil {
		return ErrSessionClosed
	}
	return s.failErr
}

// fail poisons the session: every pending and future call errors, the
// window unblocks, and the connection closes (which also unwinds the
// reader).
func (s *Session) fail(err error) {
	s.mu.Lock()
	if s.failErr != nil {
		s.mu.Unlock()
		return
	}
	s.failErr = err
	calls := make([]*Call, 0, len(s.pending))
	for _, c := range s.pending {
		calls = append(calls, c)
	}
	s.mu.Unlock()
	close(s.failCh)
	s.window.Fail(err)
	for _, c := range calls {
		s.complete(c, Frame{}, err)
	}
	_ = s.conn.Close()
}

// reader drains the connection, completing calls by opaque. Responses
// for unknown opaques (late duplicates of abandoned calls) are dropped.
func (s *Session) reader() {
	defer close(s.readerDone)
	buf := make([]byte, s.opts.ReadBuf)
	var sc Scanner
	for {
		n, err := s.conn.Read(buf)
		if n > 0 {
			sc.Feed(buf[:n])
			for {
				f, _, ok, ferr := sc.Next()
				if ferr != nil {
					s.fail(ferr)
					return
				}
				if !ok {
					break
				}
				switch f.Type {
				case TResponse:
					s.mu.Lock()
					c := s.pending[f.Opaque]
					s.mu.Unlock()
					if c != nil {
						f.Payload = append([]byte(nil), f.Payload...)
						s.complete(c, f, nil)
					}
				case TGoAway:
					s.fail(ErrGoAway)
					return
				default:
					// TCredit and future types: ignored in v1.
				}
			}
		}
		if err != nil {
			s.fail(fmt.Errorf("%w (%v)", ErrSessionClosed, err))
			return
		}
	}
}

// Close sends a best-effort GOAWAY, tears the session down and waits
// for the reader to unwind. Pending calls complete with
// ErrSessionClosed.
func (s *Session) Close() error {
	s.mu.Lock()
	if s.failErr == nil {
		if goaway, err := AppendFrame(s.wbuf[:0], Frame{Type: TGoAway}); err == nil {
			s.wbuf = goaway
			_ = s.conn.SetWriteDeadline(time.Now().Add(100 * time.Millisecond))
			_, _ = s.conn.Write(goaway)
		}
	}
	s.mu.Unlock()
	s.fail(ErrSessionClosed)
	<-s.readerDone
	return nil
}
