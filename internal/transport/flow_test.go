package transport

import (
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestFlowControlThrottlesSlowReader is the flow-control regression the
// window exists for: a receiver advertising a tiny buffer and consuming
// slowly must throttle the sender to a bounded in-flight byte count —
// every request still completes (zero drops), the sender's high-water
// mark never exceeds the advertisement, and the run finishes inside a
// deadline (throttling, not wedging).
func TestFlowControlThrottlesSlowReader(t *testing.T) {
	const (
		window   = 300 // fits ~3 hundred-byte request frames
		reqBytes = 100
		payload  = reqBytes - HeaderSize
		calls    = 120
		senders  = 6
	)
	var served atomic.Int32
	handler := func(f Frame) (Frame, bool) {
		time.Sleep(500 * time.Microsecond) // deliberately slow consumer
		served.Add(1)
		return Frame{Type: TResponse, Payload: f.Payload[:1]}, true
	}
	addr := serveOne(t, handler, ServeOptions{Features: FeatureKV, Window: window})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Connect(conn, SessionOptions{Features: FeatureKV, Depth: 64, CallTimeout: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Window().Limit() != window {
		t.Fatalf("advertised window = %d", s.Window().Limit())
	}

	start := time.Now()
	buf := make([]byte, payload)
	var wg sync.WaitGroup
	errs := make(chan error, senders)
	for g := 0; g < senders; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < calls/senders; i++ {
				if _, err := s.Call(TRequest, buf); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err) // any error is a drop — flow control must not shed
	}
	elapsed := time.Since(start)

	st := s.Stats()
	if int(served.Load()) != calls || st.Completed != calls {
		t.Fatalf("served %d / completed %d of %d", served.Load(), st.Completed, calls)
	}
	// Byte accounting: the invariant the whole mechanism exists for.
	if st.MaxInFlightBytes > window {
		t.Fatalf("in-flight high-water %d exceeded the %d-byte advertisement", st.MaxInFlightBytes, window)
	}
	if st.MaxInFlightBytes < reqBytes {
		t.Fatalf("high-water %d never reached one frame — accounting broken", st.MaxInFlightBytes)
	}
	if got := s.Window().InFlight(); got != 0 {
		t.Fatalf("%d bytes still reserved after all calls completed", got)
	}
	// Deadline: ~120 serial handler sleeps is well under a second; a
	// wedged window would hit CallTimeout instead.
	if elapsed > 20*time.Second {
		t.Fatalf("throttled run took %v", elapsed)
	}
}
