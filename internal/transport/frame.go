// Package transport is the framed, multiplexed session layer under the
// KV and XMPP wire protocols (ROADMAP item 3). One TCP connection
// carries many concurrent in-flight requests: every frame starts with a
// fixed 16-byte header tagging it with an opaque — a client-chosen
// correlation value — so responses may return out of order and the
// sender keeps a full pipeline in flight instead of stalling a
// connection slot per request. Flow control is a receiver buffer-size
// advertisement: the accepting side announces, in its handshake, how
// many request bytes the session may keep outstanding, and the sender
// throttles itself against that window (transport.Window), so a slow
// receiver bounds the sender's memory instead of wedging or dropping.
//
// The layer deliberately splits into small state machines rather than
// one connection object: Scanner reassembles frames from arbitrary
// stream chunking, Window does sender-side byte accounting, Replay is
// the receiver's opaque dedup + response cache that upgrades the
// at-least-once resend discipline to exactly-once *effect*, Session is
// the goroutine-driven client engine, and Serve a minimal goroutine
// server. The EActors KV service reuses the codec, Window and Replay
// inside its actor bodies (no goroutines, frames encoded straight into
// send-stage slots riding the batched WRITER path); Session/Serve back
// the standalone clients, the XMPP s2s federation stub and the tests.
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// HeaderSize is the fixed frame header length:
//
//	[0]     mtype
//	[1]     flags (protocol version in HELLO/HELLO-ACK)
//	[2:4]   reserved, must be zero
//	[4:8]   opaque  (LE) — request correlation tag, feature bits in HELLO
//	[8:12]  length  (LE) — payload bytes following the header
//	[12:16] credit  (LE) — receiver window advertisement / bytes returned
//
// HELLO frames carry no payload and keep opaque below 256 by design: a
// legacy KV server parsing one sees a complete 9-byte request with an
// unknown opcode (every mtype sits in 0xE1..0xE7, far from the legacy
// 1..3 range) and drops the connection immediately, so a new client
// downgrades on close instead of hanging on a half-read frame.
const HeaderSize = 16

// MaxPayload bounds a single frame's payload. The decoder rejects
// larger length fields outright, so a hostile header cannot make a
// receiver buffer gigabytes waiting for a frame that never completes.
const MaxPayload = 1 << 20

// Version1 is the only protocol version; it rides the flags byte of
// HELLO and HELLO-ACK.
const Version1 = 1

// DefaultWindow is the receive-buffer advertisement used when an
// accepting side does not configure one: 256 KiB of outstanding request
// bytes, comfortably 64+ typical KV requests deep.
const DefaultWindow = 256 << 10

// DefaultReplayWindow is the per-session response-cache depth servers
// keep for resend dedup; it must exceed the deepest client pipeline
// (Session caps Depth at half of this).
const DefaultReplayWindow = 128

// Type discriminates frames. All values sit in a high band disjoint
// from the legacy KV opcodes (1..3) and from printable XML ('<' = 0x3C),
// so the first byte of a connection identifies the protocol.
type Type uint8

// Frame types.
const (
	// THello opens a session: flags = version, opaque = feature bits
	// (kept < 256), credit = the client's receive window. No payload.
	THello Type = 0xE1 + iota
	// THelloAck accepts: flags = version, opaque = granted features,
	// credit = the server's receive window the client must respect.
	THelloAck
	// TRequest carries one application request; opaque tags it.
	TRequest
	// TResponse answers the request with the same opaque; credit
	// returns the request frame's bytes to the sender's window.
	TResponse
	// TCredit is a standalone window grant (reserved for streaming
	// receivers; v1 returns credit only on responses).
	TCredit
	// TGoAway announces an orderly close or a protocol violation.
	TGoAway
	// TStanza carries one XMPP stanza on a server-to-server federation
	// link; acknowledged by TResponse (see internal/xmpp s2s).
	TStanza

	typeEnd
)

// Valid reports whether t is a known frame type.
func (t Type) Valid() bool { return t >= THello && t < typeEnd }

// String names the type.
func (t Type) String() string {
	switch t {
	case THello:
		return "hello"
	case THelloAck:
		return "hello-ack"
	case TRequest:
		return "request"
	case TResponse:
		return "response"
	case TCredit:
		return "credit"
	case TGoAway:
		return "goaway"
	case TStanza:
		return "stanza"
	default:
		return fmt.Sprintf("type(0x%02x)", uint8(t))
	}
}

// IsFramed reports whether a connection's first byte belongs to this
// protocol (versus a legacy KV opcode or XML).
func IsFramed(b byte) bool { return Type(b).Valid() }

// Feature bits negotiated in HELLO/HELLO-ACK opaque fields. They must
// stay below 256 to preserve the legacy-server fast-reject property
// documented on HeaderSize.
const (
	// FeatureKV is the pipelined key-value request protocol.
	FeatureKV uint32 = 1 << 0
	// FeatureS2S is the XMPP server-to-server stanza framing.
	FeatureS2S uint32 = 1 << 1

	// maxHelloFeatures caps the feature word a HELLO may carry.
	maxHelloFeatures = 1 << 8
)

// Frame is one decoded frame. Payload aliases the decode buffer.
type Frame struct {
	Type    Type
	Flags   uint8
	Opaque  uint32
	Credit  uint32
	Payload []byte
}

// ErrShortFrame reports a truncated encoding: not an error on a stream,
// just "feed more bytes".
var ErrShortFrame = errors.New("transport: short frame")

// ErrBadFrame reports a framing violation — unknown type, non-zero
// reserved bytes, oversized length. The stream is unrecoverable and the
// connection should be dropped.
var ErrBadFrame = errors.New("transport: bad frame")

// Hello builds a client HELLO. Features must fit the reserved low byte
// band (see HeaderSize); window is the client's receive advertisement.
func Hello(features, window uint32) (Frame, error) {
	if features >= maxHelloFeatures {
		return Frame{}, fmt.Errorf("transport: hello features %#x exceed the one-byte legacy-reject band", features)
	}
	return Frame{Type: THello, Flags: Version1, Opaque: features, Credit: window}, nil
}

// HelloAck builds the server's acceptance: granted features and the
// receive window the client must respect.
func HelloAck(features, window uint32) Frame {
	return Frame{Type: THelloAck, Flags: Version1, Opaque: features, Credit: window}
}

// AppendFrame encodes f at the end of buf — zero-alloc when buf has
// capacity, so actors encode straight into reusable send-stage slots.
func AppendFrame(buf []byte, f Frame) ([]byte, error) {
	if !f.Type.Valid() {
		return nil, fmt.Errorf("%w: unknown type %#x", ErrBadFrame, uint8(f.Type))
	}
	if len(f.Payload) > MaxPayload {
		return nil, fmt.Errorf("%w: payload %d exceeds %d", ErrBadFrame, len(f.Payload), MaxPayload)
	}
	var hdr [HeaderSize]byte
	hdr[0] = byte(f.Type)
	hdr[1] = f.Flags
	binary.LittleEndian.PutUint32(hdr[4:], f.Opaque)
	binary.LittleEndian.PutUint32(hdr[8:], uint32(len(f.Payload)))
	binary.LittleEndian.PutUint32(hdr[12:], f.Credit)
	buf = append(buf, hdr[:]...)
	return append(buf, f.Payload...), nil
}

// ParseFrame decodes one frame from b. Payload aliases b. It returns
// ErrShortFrame when b holds only a prefix (recoverable: feed more) and
// ErrBadFrame on a framing violation (unrecoverable: drop the stream).
// The returned length is the number of bytes consumed.
func ParseFrame(b []byte) (Frame, int, error) {
	if len(b) == 0 {
		return Frame{}, 0, ErrShortFrame
	}
	// Fail fast on the type byte: a stream that opens with a non-frame
	// byte is misframed now, not after 15 more bytes trickle in.
	t := Type(b[0])
	if !t.Valid() {
		return Frame{}, 0, fmt.Errorf("%w: unknown type %#x", ErrBadFrame, b[0])
	}
	if len(b) < HeaderSize {
		return Frame{}, 0, ErrShortFrame
	}
	if b[2] != 0 || b[3] != 0 {
		return Frame{}, 0, fmt.Errorf("%w: non-zero reserved bytes", ErrBadFrame)
	}
	length := binary.LittleEndian.Uint32(b[8:])
	if length > MaxPayload {
		return Frame{}, 0, fmt.Errorf("%w: payload %d exceeds %d", ErrBadFrame, length, MaxPayload)
	}
	total := HeaderSize + int(length)
	if len(b) < total {
		return Frame{}, 0, ErrShortFrame
	}
	return Frame{
		Type:    t,
		Flags:   b[1],
		Opaque:  binary.LittleEndian.Uint32(b[4:]),
		Credit:  binary.LittleEndian.Uint32(b[12:]),
		Payload: b[HeaderSize:total],
	}, total, nil
}

// Scanner reassembles frames from a TCP byte stream: chunks arrive
// split and coalesced arbitrarily, so the receiver buffers partial
// frames and yields only complete ones.
type Scanner struct {
	buf []byte
}

// scannerLimit bounds buffered partial-frame bytes; a peer streaming a
// header that never completes is cut off rather than ballooning memory.
const scannerLimit = MaxPayload + HeaderSize

// Feed appends stream bytes to the scanner.
func (s *Scanner) Feed(b []byte) { s.buf = append(s.buf, b...) }

// Next returns the next complete frame plus its raw encoded bytes (for
// routers that forward frames without rebuilding them). ok is false
// when only a partial frame is buffered. A non-nil error means the
// stream has lost framing and the connection must be dropped. Frame
// payload and raw alias the internal buffer; valid until the next Feed.
func (s *Scanner) Next() (f Frame, raw []byte, ok bool, err error) {
	f, n, err := ParseFrame(s.buf)
	if err != nil {
		if errors.Is(err, ErrShortFrame) {
			if len(s.buf) > scannerLimit {
				return Frame{}, nil, false, fmt.Errorf("%w: %d buffered bytes without a complete frame", ErrBadFrame, len(s.buf))
			}
			return Frame{}, nil, false, nil
		}
		return Frame{}, nil, false, err
	}
	raw = s.buf[:n]
	s.buf = s.buf[n:]
	if len(s.buf) == 0 {
		s.buf = nil // let large bursts free their backing array
	}
	return f, raw, true, nil
}

// Buffered returns the number of unconsumed bytes.
func (s *Scanner) Buffered() int { return len(s.buf) }
