package transport

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzFrameDecode hammers the decoder with arbitrary bytes: it must
// never panic, never over-read, classify every failure as short (feed
// more) or bad (drop stream), and anything it accepts must re-encode to
// the identical bytes. The chunked Scanner must agree with the one-shot
// parser on the same stream.
func FuzzFrameDecode(f *testing.F) {
	seed, _ := AppendFrame(nil, Frame{Type: TRequest, Opaque: 7, Payload: []byte("k")})
	f.Add(seed)
	f.Add([]byte{})
	f.Add([]byte{0xE1})
	f.Add(bytes.Repeat([]byte{0xE3}, HeaderSize))
	hello, _ := Hello(FeatureKV, DefaultWindow)
	hb, _ := AppendFrame(nil, hello)
	f.Add(append(hb, 0xFF))
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, n, err := ParseFrame(data)
		if err != nil {
			if !errors.Is(err, ErrShortFrame) && !errors.Is(err, ErrBadFrame) {
				t.Fatalf("unclassified decode error: %v", err)
			}
			return
		}
		if n < HeaderSize || n > len(data) {
			t.Fatalf("consumed %d of %d", n, len(data))
		}
		if len(fr.Payload) != n-HeaderSize {
			t.Fatalf("payload %d for %d consumed", len(fr.Payload), n)
		}
		re, err := AppendFrame(nil, fr)
		if err != nil {
			t.Fatalf("accepted frame failed to re-encode: %v", err)
		}
		if !bytes.Equal(re, data[:n]) {
			t.Fatalf("re-encode mismatch:\n  in  %x\n  out %x", data[:n], re)
		}
		// The scanner, fed the same bytes one at a time, must yield the
		// same first frame.
		var sc Scanner
		for i := range data[:n] {
			sc.Feed(data[i : i+1])
		}
		got, raw, ok, err := sc.Next()
		if err != nil || !ok {
			t.Fatalf("scanner rejected parseable stream: ok=%v err=%v", ok, err)
		}
		if got.Type != fr.Type || got.Opaque != fr.Opaque || got.Credit != fr.Credit ||
			got.Flags != fr.Flags || !bytes.Equal(got.Payload, fr.Payload) || !bytes.Equal(raw, data[:n]) {
			t.Fatal("scanner and one-shot parser disagree")
		}
	})
}

// FuzzFrameRoundTrip drives the encoder with arbitrary field values:
// everything AppendFrame accepts must decode back to identical fields,
// and the only inputs it may refuse are the documented ones (invalid
// type, oversized payload).
func FuzzFrameRoundTrip(f *testing.F) {
	f.Add(byte(TRequest), byte(0), uint32(1), uint32(0), []byte("payload"))
	f.Add(byte(THello), byte(Version1), FeatureKV, uint32(DefaultWindow), []byte{})
	f.Add(byte(TGoAway), byte(0xFF), uint32(0xFFFFFFFF), uint32(0xFFFFFFFF), []byte("bye"))
	f.Add(byte(0x00), byte(1), uint32(2), uint32(3), []byte("not a frame"))
	f.Fuzz(func(t *testing.T, typ, flags byte, opaque, credit uint32, payload []byte) {
		in := Frame{Type: Type(typ), Flags: flags, Opaque: opaque, Credit: credit, Payload: payload}
		buf, err := AppendFrame(nil, in)
		if err != nil {
			if in.Type.Valid() && len(payload) <= MaxPayload {
				t.Fatalf("valid frame refused: %v", err)
			}
			return
		}
		if !in.Type.Valid() {
			t.Fatalf("invalid type %#x encoded", typ)
		}
		out, n, err := ParseFrame(buf)
		if err != nil || n != len(buf) {
			t.Fatalf("decode of own encoding: n=%d err=%v", n, err)
		}
		if out.Type != in.Type || out.Flags != in.Flags || out.Opaque != in.Opaque ||
			out.Credit != in.Credit || !bytes.Equal(out.Payload, in.Payload) {
			t.Fatalf("roundtrip mismatch: %+v != %+v", out, in)
		}
	})
}
