package transport

import (
	"bytes"
	"errors"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	cases := []Frame{
		{Type: THello, Flags: Version1, Opaque: FeatureKV, Credit: DefaultWindow},
		{Type: THelloAck, Flags: Version1, Opaque: FeatureKV | FeatureS2S, Credit: 1},
		{Type: TRequest, Opaque: 42, Payload: []byte("hello")},
		{Type: TResponse, Opaque: 0xFFFFFFFF, Credit: 21, Payload: bytes.Repeat([]byte{0xAB}, 4096)},
		{Type: TGoAway, Payload: []byte("bye")},
		{Type: TStanza, Opaque: 7, Payload: []byte("<message/>")},
		{Type: TCredit, Credit: 1 << 20},
	}
	for _, want := range cases {
		buf, err := AppendFrame(nil, want)
		if err != nil {
			t.Fatalf("%s: AppendFrame: %v", want.Type, err)
		}
		if len(buf) != HeaderSize+len(want.Payload) {
			t.Fatalf("%s: encoded %d bytes", want.Type, len(buf))
		}
		got, n, err := ParseFrame(buf)
		if err != nil || n != len(buf) {
			t.Fatalf("%s: ParseFrame n=%d err=%v", want.Type, n, err)
		}
		if got.Type != want.Type || got.Flags != want.Flags || got.Opaque != want.Opaque ||
			got.Credit != want.Credit || !bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("%s: roundtrip = %+v", want.Type, got)
		}
	}
}

func TestFrameRejects(t *testing.T) {
	if _, err := AppendFrame(nil, Frame{Type: 0x01}); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("legacy-opcode type encoded: %v", err)
	}
	if _, err := AppendFrame(nil, Frame{Type: TRequest, Payload: make([]byte, MaxPayload+1)}); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("oversized payload encoded: %v", err)
	}
	good, _ := AppendFrame(nil, Frame{Type: TRequest, Opaque: 1, Payload: []byte("x")})

	if _, _, err := ParseFrame(good[:HeaderSize-1]); !errors.Is(err, ErrShortFrame) {
		t.Fatalf("short header err = %v", err)
	}
	if _, _, err := ParseFrame(good[:len(good)-1]); !errors.Is(err, ErrShortFrame) {
		t.Fatalf("short payload err = %v", err)
	}
	bad := append([]byte(nil), good...)
	bad[0] = 0x3C // '<' — XML, not a frame
	if _, _, err := ParseFrame(bad); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("xml byte err = %v", err)
	}
	bad = append(bad[:0], good...)
	bad[2] = 1 // reserved must be zero
	if _, _, err := ParseFrame(bad); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("reserved byte err = %v", err)
	}
}

func TestHelloLegacyRejectShape(t *testing.T) {
	// The downgrade path depends on a legacy KV server reading HELLO as
	// one complete 9-byte request with an unknown opcode: byte 0 is the
	// opcode (0xE1, outside 1..3), bytes 5..8 — keyLen and valLen — must
	// be zero so the legacy parser sees a complete frame and rejects
	// deterministically instead of waiting for payload bytes.
	hello, err := Hello(FeatureKV|FeatureS2S, DefaultWindow)
	if err != nil {
		t.Fatal(err)
	}
	buf, err := AppendFrame(nil, hello)
	if err != nil {
		t.Fatal(err)
	}
	if IsFramed(1) || IsFramed('<') || !IsFramed(buf[0]) {
		t.Fatal("first-byte protocol sniff misclassifies")
	}
	for i := 5; i < 9; i++ {
		if buf[i] != 0 {
			t.Fatalf("hello byte %d = %#x; legacy parser would wait for payload", i, buf[i])
		}
	}
	if _, err := Hello(256, 0); err == nil {
		t.Fatal("features >= 256 would break the legacy-reject property")
	}
}

func TestScannerReassembly(t *testing.T) {
	var stream []byte
	var want []Frame
	for i := 0; i < 25; i++ {
		f := Frame{Type: TRequest, Opaque: uint32(i), Payload: bytes.Repeat([]byte{byte(i)}, i*11)}
		buf, err := AppendFrame(stream, f)
		if err != nil {
			t.Fatal(err)
		}
		stream = buf
		want = append(want, f)
	}
	for _, chunk := range []int{1, 3, 7, len(stream)} {
		var sc Scanner
		var got []Frame
		for i := 0; i < len(stream); i += chunk {
			end := i + chunk
			if end > len(stream) {
				end = len(stream)
			}
			sc.Feed(stream[i:end])
			for {
				f, raw, ok, err := sc.Next()
				if err != nil {
					t.Fatalf("chunk=%d: %v", chunk, err)
				}
				if !ok {
					break
				}
				if len(raw) != HeaderSize+len(f.Payload) {
					t.Fatalf("chunk=%d: raw %d bytes for payload %d", chunk, len(raw), len(f.Payload))
				}
				got = append(got, Frame{Type: f.Type, Opaque: f.Opaque, Payload: append([]byte(nil), f.Payload...)})
			}
		}
		if len(got) != len(want) {
			t.Fatalf("chunk=%d: reassembled %d of %d", chunk, len(got), len(want))
		}
		for i := range want {
			if got[i].Opaque != want[i].Opaque || !bytes.Equal(got[i].Payload, want[i].Payload) {
				t.Fatalf("chunk=%d frame %d mismatch", chunk, i)
			}
		}
		if sc.Buffered() != 0 {
			t.Fatalf("chunk=%d: %d bytes left over", chunk, sc.Buffered())
		}
	}
	var bad Scanner
	bad.Feed([]byte{0x99})
	if _, _, _, err := bad.Next(); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("bad first byte err = %v", err)
	}
}

func TestWindowAccounting(t *testing.T) {
	w := NewWindow(100)
	if err := w.Reserve(60); err != nil {
		t.Fatal(err)
	}
	if w.TryReserve(50) {
		t.Fatal("overcommit accepted")
	}
	if !w.TryReserve(40) {
		t.Fatal("exact fit rejected")
	}
	if w.InFlight() != 100 || w.MaxInFlight() != 100 {
		t.Fatalf("inflight=%d max=%d", w.InFlight(), w.MaxInFlight())
	}
	if err := w.Reserve(101); err == nil {
		t.Fatal("frame larger than the whole window accepted")
	}

	// A blocked Reserve must wake on Release.
	done := make(chan error, 1)
	go func() { done <- w.Reserve(30) }()
	w.Release(40)
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	// Fail unblocks waiters with the poison error.
	go func() { done <- w.Reserve(100) }()
	w.Fail(nil)
	if err := <-done; !errors.Is(err, ErrWindowClosed) {
		t.Fatalf("post-fail reserve err = %v", err)
	}

	defer func() {
		if recover() == nil {
			t.Fatal("over-release did not panic")
		}
	}()
	w.Release(1000)
}

func TestReplayVerdicts(t *testing.T) {
	r := NewReplay(4)
	if _, v := r.Admit(10); v != VerdictNew {
		t.Fatalf("first admit = %v", v)
	}
	r.Store(10, []byte("resp-10"))
	cached, v := r.Admit(10)
	if v != VerdictReplay || string(cached) != "resp-10" {
		t.Fatalf("resend = %v %q", v, cached)
	}
	// Older-but-inside-window, never executed: the original was lost, so
	// the resend must execute.
	if _, v := r.Admit(9); v != VerdictNew {
		t.Fatalf("lost-original resend = %v", v)
	}
	// Outside the window: reject, never execute, never replay.
	if _, v := r.Admit(3); v != VerdictReject {
		t.Fatalf("ancient opaque = %v", v)
	}
	// Eviction: storing past capacity drops the oldest; its opaque then
	// rejects rather than replaying a stale value.
	for op := uint32(11); op <= 14; op++ {
		if _, v := r.Admit(op); v != VerdictNew {
			t.Fatalf("admit %d = %v", op, v)
		}
		r.Store(op, []byte{byte(op)})
	}
	if r.Len() != 4 {
		t.Fatalf("len = %d", r.Len())
	}
	if _, v := r.Admit(10); v != VerdictReject {
		t.Fatalf("evicted opaque = %v (stale replay risk)", v)
	}
	if r.MaxOpaque() != 14 {
		t.Fatalf("max = %d", r.MaxOpaque())
	}
}

func TestReplayWraparound(t *testing.T) {
	// Opaque comparison is modular: 2^32-1 → 0 must read as "newer".
	r := NewReplay(8)
	start := uint32(0xFFFFFFFD)
	for i := uint32(0); i < 6; i++ {
		op := start + i // wraps past zero
		if _, v := r.Admit(op); v != VerdictNew {
			t.Fatalf("admit %#x = %v", op, v)
		}
		r.Store(op, []byte{byte(i)})
	}
	if cached, v := r.Admit(start + 1); v != VerdictReplay || cached[0] != 1 {
		t.Fatalf("pre-wrap resend = %v", v)
	}
	if _, v := r.Admit(start - 20); v != VerdictReject {
		t.Fatalf("ancient pre-wrap opaque = %v", v)
	}
}
