package transport

import (
	"errors"
	"fmt"
	"sync"
)

// ErrWindowClosed reports a Reserve on a failed or closed session's
// window; the reservation did not happen.
var ErrWindowClosed = errors.New("transport: window closed")

// Window is the sender side of the flow-control contract: the receiver
// advertised a buffer of limit bytes in its handshake, and every
// request frame must fit inside the outstanding budget before it may be
// written. Reserve blocks until completed requests return their bytes
// (Release), so a slow receiver throttles the sender to a bounded
// in-flight byte count instead of forcing drops or unbounded queueing.
type Window struct {
	mu          sync.Mutex
	cond        *sync.Cond
	limit       int
	inFlight    int
	maxInFlight int
	err         error
}

// NewWindow builds a sender window against an advertised limit.
func NewWindow(limit int) *Window {
	w := &Window{limit: limit}
	w.cond = sync.NewCond(&w.mu)
	return w
}

// Reserve blocks until n bytes fit under the advertised limit, then
// claims them. A frame larger than the whole advertisement can never
// fit and errors immediately.
func (w *Window) Reserve(n int) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if n > w.limit {
		return fmt.Errorf("transport: frame of %d bytes exceeds the peer's %d-byte window", n, w.limit)
	}
	for w.err == nil && w.inFlight+n > w.limit {
		w.cond.Wait()
	}
	if w.err != nil {
		return w.err
	}
	w.inFlight += n
	if w.inFlight > w.maxInFlight {
		w.maxInFlight = w.inFlight
	}
	return nil
}

// TryReserve is Reserve without blocking; it reports whether the bytes
// were claimed.
func (w *Window) TryReserve(n int) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil || n > w.limit || w.inFlight+n > w.limit {
		return false
	}
	w.inFlight += n
	if w.inFlight > w.maxInFlight {
		w.maxInFlight = w.inFlight
	}
	return true
}

// Release returns n reserved bytes (a response arrived, or the request
// was abandoned) and wakes blocked senders.
func (w *Window) Release(n int) {
	w.mu.Lock()
	w.inFlight -= n
	if w.inFlight < 0 { // release/reserve mismatch is a caller bug
		panic("transport: window released more bytes than reserved")
	}
	w.mu.Unlock()
	w.cond.Broadcast()
}

// Fail poisons the window: blocked and future Reserves return err
// (ErrWindowClosed when nil).
func (w *Window) Fail(err error) {
	if err == nil {
		err = ErrWindowClosed
	}
	w.mu.Lock()
	if w.err == nil {
		w.err = err
	}
	w.mu.Unlock()
	w.cond.Broadcast()
}

// Limit returns the advertised budget.
func (w *Window) Limit() int { return w.limit }

// InFlight returns the currently reserved bytes.
func (w *Window) InFlight() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.inFlight
}

// MaxInFlight returns the high-water mark of reserved bytes — the
// flow-control tests pin sender throttling with it.
func (w *Window) MaxInFlight() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.maxInFlight
}

// Verdict is Replay's ruling on an arriving opaque.
type Verdict uint8

// Admit verdicts.
const (
	// VerdictNew means the opaque has not produced a response yet:
	// execute the request and Store the response.
	VerdictNew Verdict = iota
	// VerdictReplay means the opaque already completed; re-send the
	// cached response without re-executing (exactly-once effect).
	VerdictReplay
	// VerdictReject means the opaque fell out of the replay window — a
	// client violating the window discipline or reusing ancient tags.
	// Executing it could double-apply an effect, so it is refused.
	VerdictReject
)

// String names the verdict.
func (v Verdict) String() string {
	switch v {
	case VerdictNew:
		return "new"
	case VerdictReplay:
		return "replay"
	case VerdictReject:
		return "reject"
	default:
		return fmt.Sprintf("verdict(%d)", uint8(v))
	}
}

// Replay is the receiver half of the at-least-once contract: clients
// resend a request (same opaque) until its response arrives, so the
// receiver remembers the encoded response of the last `capacity`
// completed opaques and replays instead of re-executing. SET/DEL thus
// take effect exactly once, and a GET resend returns the value of its
// single original execution — never a re-read that could interleave
// with later writes. Opaques older than the window are rejected, so a
// tag reuse after wraparound can never surface a stale cached response.
//
// Not safe for concurrent use; each session's replay state lives with
// the single actor (or goroutine) that executes its requests.
type Replay struct {
	capacity int
	entries  map[uint32][]byte
	order    []uint32 // insertion order, for eviction
	max      uint32   // highest admitted opaque
	seen     bool
}

// NewReplay builds a replay window caching the last capacity responses
// (DefaultReplayWindow when capacity <= 0).
func NewReplay(capacity int) *Replay {
	if capacity <= 0 {
		capacity = DefaultReplayWindow
	}
	return &Replay{capacity: capacity, entries: make(map[uint32][]byte)}
}

// Admit rules on an arriving opaque. For VerdictReplay the cached
// response frame is returned; the caller must treat it as read-only.
func (r *Replay) Admit(opaque uint32) ([]byte, Verdict) {
	if cached, ok := r.entries[opaque]; ok {
		return cached, VerdictReplay
	}
	if !r.seen {
		r.seen = true
		r.max = opaque
		return nil, VerdictNew
	}
	if d := int32(opaque - r.max); d > 0 {
		r.max = opaque
		return nil, VerdictNew
	} else if -d >= int32(r.capacity) {
		// Older than anything the cache can still vouch for: its
		// response (if it ever executed) was evicted, so executing now
		// risks a double effect and replying risks a stale value.
		return nil, VerdictReject
	}
	// An older opaque inside the window with no cached response: the
	// original request was lost before executing, and this is its
	// resend. Execute it — the effect has not happened yet.
	return nil, VerdictNew
}

// Store caches the encoded response for an admitted opaque. The bytes
// are copied. Eviction is by opaque distance, not insertion count: only
// entries that have fallen `capacity` or more behind the window's high
// edge are dropped — exactly the opaques Admit already rejects. Count
// eviction would be unsound: a lost original of an *older* opaque can
// execute (and store) late, pushing a still-live newer entry out and
// letting its resend re-execute. Distance keeps the live span intact,
// and since at most `capacity` distinct opaques fit inside the span,
// memory stays bounded by capacity entries.
func (r *Replay) Store(opaque uint32, resp []byte) {
	if _, ok := r.entries[opaque]; ok {
		return // a replayed duplicate never re-stores
	}
	r.entries[opaque] = append([]byte(nil), resp...)
	r.order = append(r.order, opaque)
	if len(r.entries) > r.capacity {
		keep := r.order[:0]
		for _, op := range r.order {
			if d := int32(r.max - op); d >= int32(r.capacity) {
				delete(r.entries, op)
			} else {
				keep = append(keep, op)
			}
		}
		r.order = keep
	}
}

// Len returns the number of cached responses.
func (r *Replay) Len() int { return len(r.entries) }

// MaxOpaque returns the highest admitted opaque (zero before any).
func (r *Replay) MaxOpaque() uint32 { return r.max }
