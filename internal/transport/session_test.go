package transport

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// serveOne accepts one connection and runs Serve on it; the returned
// cleanup joins the goroutine (leakcheck demands orderly unwind).
func serveOne(t *testing.T, handler Handler, opts ServeOptions) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		_ = Serve(conn, handler, opts) //nolint — peers hang up mid-test
	}()
	t.Cleanup(func() {
		_ = ln.Close()
		<-done
	})
	return ln.Addr().String()
}

func echoHandler(f Frame) (Frame, bool) {
	return Frame{Type: TResponse, Payload: f.Payload}, true
}

func TestSessionEchoConcurrent(t *testing.T) {
	addr := serveOne(t, echoHandler, ServeOptions{Features: FeatureKV})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Connect(conn, SessionOptions{Features: FeatureKV})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.PeerFeatures() != FeatureKV {
		t.Fatalf("granted features = %#x", s.PeerFeatures())
	}
	if s.Window().Limit() != DefaultWindow {
		t.Fatalf("advertised window = %d", s.Window().Limit())
	}
	const goroutines, calls = 8, 25
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < calls; i++ {
				payload := []byte(fmt.Sprintf("g%d-i%d", g, i))
				resp, err := s.Call(TRequest, payload)
				if err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(resp.Payload, payload) {
					errs <- fmt.Errorf("echo %q != %q", resp.Payload, payload)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Issued != goroutines*calls || st.Completed != goroutines*calls {
		t.Fatalf("stats = %+v", st)
	}
	if st.MaxInFlightBytes > st.WindowLimit {
		t.Fatalf("flow-control invariant broken: %d in flight > %d window", st.MaxInFlightBytes, st.WindowLimit)
	}
}

// TestSessionOutOfOrderResponses pins the multiplexing contract: a
// server answering in reverse order must still complete every call with
// its own response, correlated by opaque.
func TestSessionOutOfOrderResponses(t *testing.T) {
	const batch = 5
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		var sc Scanner
		buf := make([]byte, 64<<10)
		hello, err := readFrame(conn, &sc, buf)
		if err != nil || hello.Type != THello {
			return
		}
		ack, _ := AppendFrame(nil, HelloAck(hello.Opaque, DefaultWindow))
		if _, err := conn.Write(ack); err != nil {
			return
		}
		var reqs []Frame
		for len(reqs) < batch {
			f, err := readFrame(conn, &sc, buf)
			if err != nil {
				return
			}
			if f.Type == TRequest {
				f.Payload = append([]byte(nil), f.Payload...)
				reqs = append(reqs, f)
			}
		}
		for i := len(reqs) - 1; i >= 0; i-- { // reverse order, deliberately
			resp, _ := AppendFrame(nil, Frame{Type: TResponse, Opaque: reqs[i].Opaque, Payload: reqs[i].Payload})
			if _, err := conn.Write(resp); err != nil {
				return
			}
		}
		// Hold the conn until the client hangs up, else its session
		// errors mid-Wait.
		_, _ = conn.Read(buf)
	}()
	t.Cleanup(func() { _ = ln.Close(); <-done })

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	s, err := Connect(conn, SessionOptions{Features: FeatureKV})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	calls := make([]*Call, batch)
	for i := range calls {
		if calls[i], err = s.Issue(TRequest, []byte{byte('a' + i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i, c := range calls {
		resp, err := s.Wait(c)
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		if len(resp.Payload) != 1 || resp.Payload[0] != byte('a'+i) {
			t.Fatalf("call %d got %q", i, resp.Payload)
		}
	}
}

// Legacy downgrade: each legacy server behaviour — immediate close on
// the unknown opcode, garbage bytes, and silence — must map to
// ErrLegacyPeer so clients can redial with the legacy protocol.
func TestConnectLegacyPeer(t *testing.T) {
	cases := []struct {
		name    string
		behave  func(conn net.Conn)
		timeout time.Duration
	}{
		{"close-on-unknown-opcode", func(conn net.Conn) {
			buf := make([]byte, 64)
			_, _ = conn.Read(buf) // legacy server reads the "request"...
			_ = conn.Close()      // ...rejects opcode 0xE1, drops the conn
		}, 0},
		{"garbage-bytes", func(conn net.Conn) {
			_, _ = conn.Write([]byte("HTTP/1.1 400 Bad Request\r\n\r\n"))
			buf := make([]byte, 64)
			_, _ = conn.Read(buf)
			_ = conn.Close()
		}, 0},
		{"silence", func(conn net.Conn) {
			buf := make([]byte, 64)
			_, _ = conn.Read(buf) // reads the hello, never answers
			_, _ = conn.Read(buf) // parks until the client gives up
			_ = conn.Close()
		}, 150 * time.Millisecond},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			done := make(chan struct{})
			go func() {
				defer close(done)
				conn, err := ln.Accept()
				if err != nil {
					return
				}
				tc.behave(conn)
			}()
			t.Cleanup(func() { _ = ln.Close(); <-done })
			conn, err := net.Dial("tcp", ln.Addr().String())
			if err != nil {
				t.Fatal(err)
			}
			_, err = Connect(conn, SessionOptions{Features: FeatureKV, HandshakeTimeout: tc.timeout})
			if !errors.Is(err, ErrLegacyPeer) {
				t.Fatalf("Connect err = %v, want ErrLegacyPeer", err)
			}
		})
	}
}

// TestServeExactlyOnceOnResend drives Serve with a hand-rolled client
// that retransmits: the handler must run once per opaque and the
// replayed response must be byte-identical.
func TestServeExactlyOnceOnResend(t *testing.T) {
	var execs atomic.Int32
	handler := func(f Frame) (Frame, bool) {
		execs.Add(1)
		return Frame{Type: TResponse, Payload: append([]byte("done:"), f.Payload...)}, true
	}
	addr := serveOne(t, handler, ServeOptions{Features: FeatureKV, ReplayWindow: 8})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	var sc Scanner
	buf := make([]byte, 64<<10)
	hello, _ := Hello(FeatureKV, DefaultWindow)
	hb, _ := AppendFrame(nil, hello)
	if _, err := conn.Write(hb); err != nil {
		t.Fatal(err)
	}
	if ack, err := readFrame(conn, &sc, buf); err != nil || ack.Type != THelloAck {
		t.Fatalf("handshake: %v %v", ack.Type, err)
	}
	req, _ := AppendFrame(nil, Frame{Type: TRequest, Opaque: 1, Payload: []byte("x")})
	var responses [][]byte
	for i := 0; i < 3; i++ { // original + two at-least-once resends
		if _, err := conn.Write(req); err != nil {
			t.Fatal(err)
		}
		resp, err := readFrame(conn, &sc, buf)
		if err != nil || resp.Type != TResponse || resp.Opaque != 1 {
			t.Fatalf("resend %d: %+v %v", i, resp, err)
		}
		responses = append(responses, append([]byte(nil), resp.Payload...))
	}
	if n := execs.Load(); n != 1 {
		t.Fatalf("handler ran %d times for one opaque", n)
	}
	for _, r := range responses[1:] {
		if !bytes.Equal(r, responses[0]) {
			t.Fatalf("replayed response diverged: %q != %q", r, responses[0])
		}
	}
	if string(responses[0]) != "done:x" {
		t.Fatalf("response = %q", responses[0])
	}
}

// TestServeRejectsAncientOpaque: an opaque behind the replay window is
// a client tag-discipline violation; the only safe answer is GOAWAY.
func TestServeRejectsAncientOpaque(t *testing.T) {
	addr := serveOne(t, echoHandler, ServeOptions{Features: FeatureKV, ReplayWindow: 4})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	var sc Scanner
	buf := make([]byte, 64<<10)
	hello, _ := Hello(FeatureKV, DefaultWindow)
	hb, _ := AppendFrame(nil, hello)
	if _, err := conn.Write(hb); err != nil {
		t.Fatal(err)
	}
	if _, err := readFrame(conn, &sc, buf); err != nil {
		t.Fatal(err)
	}
	for op := uint32(100); op < 105; op++ {
		req, _ := AppendFrame(nil, Frame{Type: TRequest, Opaque: op, Payload: []byte("k")})
		if _, err := conn.Write(req); err != nil {
			t.Fatal(err)
		}
		if resp, err := readFrame(conn, &sc, buf); err != nil || resp.Type != TResponse {
			t.Fatalf("opaque %d: %v %v", op, resp.Type, err)
		}
	}
	req, _ := AppendFrame(nil, Frame{Type: TRequest, Opaque: 90, Payload: []byte("k")})
	if _, err := conn.Write(req); err != nil {
		t.Fatal(err)
	}
	resp, err := readFrame(conn, &sc, buf)
	if err != nil || resp.Type != TGoAway {
		t.Fatalf("ancient opaque answered with %v %v, want goaway", resp.Type, err)
	}
}

// TestSessionGoAway: a server-initiated GOAWAY must poison the session
// and error every pending and future call.
func TestSessionGoAway(t *testing.T) {
	handler := func(f Frame) (Frame, bool) {
		return Frame{Payload: []byte("refused")}, false
	}
	addr := serveOne(t, handler, ServeOptions{Features: FeatureKV})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Connect(conn, SessionOptions{Features: FeatureKV, CallTimeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Call(TRequest, []byte("x")); err == nil {
		t.Fatal("call on a refused session succeeded")
	}
	if _, err := s.Issue(TRequest, []byte("y")); err == nil {
		t.Fatal("issue after goaway succeeded")
	}
}
