package transport

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"testing"
	"testing/quick"

	"github.com/eactors/eactors-go/internal/faults"
)

// The replay-window property: under an adversarial but reproducible
// schedule of lost requests (SendFail) and lost responses
// (DoorbellDrop), the client's blind at-least-once resend discipline
// plus the server's replay window yields exactly-once *effect* — every
// SET/DEL mutates the store exactly once, and every delivery of a GET's
// response (original or replayed) carries the value of its single
// original execution, never a stale or re-read one.
//
// The model mirrors the real split: the "client" resends every
// uncompleted in-flight op each round (pipelined Depth deep); the
// "server" is the production Replay window plus a tiny store. The wire
// drops are driven by the shared faults.Injector, so a failing seed
// reproduces its exact schedule.

type propOp struct {
	opaque uint32
	kind   byte // 0 = GET, 1 = SET, 2 = DEL
	key    byte
	val    uint32
}

// propExecute applies one op to the model store and encodes a response
// that captures the observed state.
func propExecute(store map[byte]uint32, op propOp) []byte {
	resp := []byte{op.kind, op.key}
	switch op.kind {
	case 1:
		store[op.key] = op.val
		resp = binary.LittleEndian.AppendUint32(resp, op.val)
	case 2:
		delete(store, op.key)
	default:
		if v, ok := store[op.key]; ok {
			resp = binary.LittleEndian.AppendUint32(resp, v)
		} else {
			resp = append(resp, 0xFF) // not found
		}
	}
	return resp
}

func replayScheduleHolds(seed uint64) error {
	inj := faults.New(faults.Config{Seed: seed, Rules: []faults.Rule{
		{Site: faults.SiteSend, Class: faults.SendFail, Rate: 0.35},
		{Site: faults.SiteRecv, Class: faults.DoorbellDrop, Rate: 0.35},
	}})
	const (
		capacity = 8
		depth    = 4 // the invariant: depth <= capacity/2
		numOps   = 48
	)
	// Deterministic op sequence from the seed (xorshift — no global
	// randomness, so every failure replays).
	rng := seed | 1
	next := func() uint64 { rng ^= rng << 13; rng ^= rng >> 7; rng ^= rng << 17; return rng }
	ops := make([]propOp, numOps)
	for i := range ops {
		ops[i] = propOp{opaque: uint32(i + 1), kind: byte(next() % 3), key: byte(next() % 5), val: uint32(next())}
	}

	replay := NewReplay(capacity)
	store := map[byte]uint32{}
	effects := make(map[uint32]int)     // opaque → executions (must end at exactly 1)
	expected := make(map[uint32][]byte) // opaque → response of the single execution

	window := []int{}
	nextIssue, completed, rounds := 0, 0, 0
	for completed < numOps {
		if rounds++; rounds > 100000 {
			return fmt.Errorf("seed %d: no convergence after %d rounds (%s)", seed, rounds, inj)
		}
		// Issue up to Depth concurrent ops, under the tag discipline the
		// protocol documents (and the FRONTEND enforces by dropping
		// violators): a new opaque may not lead the oldest
		// unacknowledged one by the replay window or more.
		for len(window) < depth && nextIssue < numOps &&
			(len(window) == 0 || nextIssue-window[0] < capacity) {
			window = append(window, nextIssue)
			nextIssue++
		}
		var remaining []int
		for _, idx := range window {
			op := ops[idx]
			// The request crosses the wire — or not.
			if inj.At(faults.SiteSend).Class == faults.SendFail {
				remaining = append(remaining, idx)
				continue
			}
			cached, verdict := replay.Admit(op.opaque)
			var resp []byte
			switch verdict {
			case VerdictReject:
				return fmt.Errorf("seed %d: opaque %d rejected despite depth %d <= window %d/2 (%s)",
					seed, op.opaque, depth, capacity, inj)
			case VerdictReplay:
				resp = cached
			case VerdictNew:
				effects[op.opaque]++
				resp = propExecute(store, op)
				expected[op.opaque] = append([]byte(nil), resp...)
				replay.Store(op.opaque, resp)
			}
			// Every delivery must carry the single execution's bytes —
			// a replay that re-read the store would diverge here.
			if want, ok := expected[op.opaque]; ok && !bytes.Equal(resp, want) {
				return fmt.Errorf("seed %d: opaque %d stale response %x != %x (%s)", seed, op.opaque, resp, want, inj)
			}
			// The response crosses back — or not (the client then
			// resends an op whose effect already happened).
			if inj.At(faults.SiteRecv).Class == faults.DoorbellDrop {
				remaining = append(remaining, idx)
				continue
			}
			completed++
		}
		window = remaining
	}
	for _, op := range ops {
		if n := effects[op.opaque]; n != 1 {
			return fmt.Errorf("seed %d: opaque %d (kind %d) executed %d times (%s)", seed, op.opaque, op.kind, n, inj)
		}
	}
	return nil
}

func TestReplayWindowProperty(t *testing.T) {
	// 200+ independent schedules (plus a few fixed regression seeds);
	// any failure prints its seed and the injector schedule line.
	for _, seed := range []uint64{0, 1, 42, 0xDEADBEEF, ^uint64(0)} {
		if err := replayScheduleHolds(seed); err != nil {
			t.Fatal(err)
		}
	}
	prop := func(seed uint64) bool {
		if err := replayScheduleHolds(seed); err != nil {
			t.Log(err)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 220}); err != nil {
		t.Fatal(err)
	}
}

// TestReplayNoStaleAcrossOpaqueReuse pins the wraparound-reuse hazard
// directly: once an opaque's cached response is evicted, reusing the
// tag must reject — replaying the evicted generation's value or
// re-executing under an old tag would both be wrong.
func TestReplayNoStaleAcrossOpaqueReuse(t *testing.T) {
	r := NewReplay(4)
	store := map[byte]uint32{}
	_, _ = r.Admit(1)
	first := propExecute(store, propOp{opaque: 1, kind: 1, key: 9, val: 111})
	r.Store(1, first)
	for op := uint32(2); op <= 8; op++ {
		if _, v := r.Admit(op); v != VerdictNew {
			t.Fatalf("opaque %d = %v", op, v)
		}
		r.Store(op, propExecute(store, propOp{opaque: op, kind: 1, key: 9, val: op}))
	}
	// Tag 1's entry is long evicted; a "reused" tag 1 must not surface
	// the 111 response nor execute.
	if cached, v := r.Admit(1); v != VerdictReject {
		t.Fatalf("reused opaque verdict = %v (cached %x)", v, cached)
	}
}
