package transport

import (
	"errors"
	"fmt"
	"io"
	"net"
	"time"
)

// Handler produces the response for one admitted request frame. The
// returned frame's Type/Flags/Payload are used; Opaque and Credit are
// filled by Serve (opaque echoed, credit = the request frame's bytes).
// Returning ok=false terminates the session with a GOAWAY.
type Handler func(f Frame) (resp Frame, ok bool)

// ServeOptions configures an accepting session.
type ServeOptions struct {
	// Features masks the capability bits granted to the client
	// (intersection with its HELLO offer).
	Features uint32
	// Window is the receive-buffer advertisement — how many request
	// bytes the client may keep in flight (DefaultWindow when zero).
	Window uint32
	// ReplayWindow is the response-cache depth for resend dedup
	// (DefaultReplayWindow when zero).
	ReplayWindow int
	// HandshakeTimeout bounds the wait for HELLO (default 5s).
	HandshakeTimeout time.Duration
	// ReadBuf sizes the read chunk buffer (default 64 KiB).
	ReadBuf int
}

func (o *ServeOptions) defaults() {
	if o.Window == 0 {
		o.Window = DefaultWindow
	}
	if o.ReplayWindow <= 0 {
		o.ReplayWindow = DefaultReplayWindow
	}
	if o.HandshakeTimeout <= 0 {
		o.HandshakeTimeout = 5 * time.Second
	}
	if o.ReadBuf <= 0 {
		o.ReadBuf = 64 << 10
	}
}

// Serve speaks the framed protocol on conn until the peer closes or
// sends GOAWAY: it performs the accepting handshake, then runs handler
// for every admitted request and writes the response back with the
// request's opaque and returned credit. Resends replay out of the
// session's Replay cache without re-invoking handler, so handler
// effects are exactly-once per opaque. Requests are handled serially on
// the calling goroutine — a deliberately minimal endpoint for
// federation stubs and tests; the KV service embeds the same codec and
// Replay inside its actor pipeline instead.
//
// Serve does not close conn; callers own its lifecycle.
func Serve(conn net.Conn, handler Handler, opts ServeOptions) error {
	opts.defaults()
	var sc Scanner
	buf := make([]byte, opts.ReadBuf)

	if err := conn.SetReadDeadline(time.Now().Add(opts.HandshakeTimeout)); err != nil {
		return err
	}
	hello, err := readFrame(conn, &sc, buf)
	if err != nil {
		return fmt.Errorf("transport: serve handshake: %w", err)
	}
	if hello.Type != THello {
		return fmt.Errorf("transport: serve: first frame was %s, want hello", hello.Type)
	}
	if hello.Flags != Version1 {
		return fmt.Errorf("transport: serve: unsupported version %d", hello.Flags)
	}
	ackBuf, err := AppendFrame(nil, HelloAck(hello.Opaque&opts.Features, opts.Window))
	if err != nil {
		return err
	}
	if _, err := conn.Write(ackBuf); err != nil {
		return err
	}
	if err := conn.SetReadDeadline(time.Time{}); err != nil {
		return err
	}

	replay := NewReplay(opts.ReplayWindow)
	wbuf := ackBuf[:0]
	for {
		f, err := readFrame(conn, &sc, buf)
		if err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		switch f.Type {
		case TGoAway:
			return nil
		case THello:
			return fmt.Errorf("transport: serve: duplicate hello")
		default:
			credit := uint32(HeaderSize + len(f.Payload))
			cached, verdict := replay.Admit(f.Opaque)
			switch verdict {
			case VerdictReplay:
				if _, err := conn.Write(cached); err != nil {
					return err
				}
			case VerdictReject:
				// Outside the replay window: refusing is the only safe
				// answer (see Replay); the client's tag discipline is
				// broken, so terminate.
				goaway := Frame{Type: TGoAway, Opaque: f.Opaque, Payload: []byte("opaque outside replay window")}
				if wbuf, err = AppendFrame(wbuf[:0], goaway); err == nil {
					_, _ = conn.Write(wbuf)
				}
				return fmt.Errorf("transport: serve: opaque %d outside replay window", f.Opaque)
			case VerdictNew:
				resp, ok := handler(f)
				if !ok {
					goaway := Frame{Type: TGoAway, Opaque: f.Opaque, Payload: resp.Payload}
					if wbuf, err = AppendFrame(wbuf[:0], goaway); err == nil {
						_, _ = conn.Write(wbuf)
					}
					return fmt.Errorf("transport: serve: handler rejected %s opaque %d", f.Type, f.Opaque)
				}
				resp.Opaque = f.Opaque
				resp.Credit = credit
				if wbuf, err = AppendFrame(wbuf[:0], resp); err != nil {
					return err
				}
				replay.Store(f.Opaque, wbuf)
				if _, err := conn.Write(wbuf); err != nil {
					return err
				}
			}
		}
	}
}

// readFrame blocks until one complete frame is scanned from conn.
func readFrame(conn net.Conn, sc *Scanner, buf []byte) (Frame, error) {
	for {
		if f, _, ok, err := sc.Next(); err != nil || ok {
			return f, err
		}
		n, err := conn.Read(buf)
		if n > 0 {
			sc.Feed(buf[:n])
			continue
		}
		if err != nil {
			return Frame{}, err
		}
	}
}
