//go:build unix

package fdlimit

import (
	"syscall"
	"testing"
)

func TestRaiseReachesHardLimit(t *testing.T) {
	got, err := Raise()
	if err != nil {
		t.Fatalf("Raise: %v", err)
	}
	var lim syscall.Rlimit
	if err := syscall.Getrlimit(syscall.RLIMIT_NOFILE, &lim); err != nil {
		t.Fatalf("Getrlimit: %v", err)
	}
	if got != lim.Cur {
		t.Fatalf("Raise reported %d, effective soft limit is %d", got, lim.Cur)
	}
	if lim.Cur != lim.Max {
		t.Fatalf("soft limit %d still below hard limit %d", lim.Cur, lim.Max)
	}
	// Idempotent.
	again, err := Raise()
	if err != nil || again != got {
		t.Fatalf("second Raise = %d, %v", again, err)
	}
}
