//go:build unix

// Package fdlimit raises the process's open-file limit. Load
// generators opening tens of thousands of sockets trip the default
// 1024-fd soft limit long before the system under test is stressed, so
// they lift the soft limit to the hard limit at startup and report
// what they actually got.
package fdlimit

import "syscall"

// Raise lifts RLIMIT_NOFILE's soft limit to the hard limit and returns
// the effective soft limit. A failed setrlimit still returns the
// current limit — callers report it and proceed; the workload then
// fails loudly on EMFILE if the limit really is too low.
func Raise() (uint64, error) {
	var lim syscall.Rlimit
	if err := syscall.Getrlimit(syscall.RLIMIT_NOFILE, &lim); err != nil {
		return 0, err
	}
	if lim.Cur >= lim.Max {
		return lim.Cur, nil
	}
	lim.Cur = lim.Max
	if err := syscall.Setrlimit(syscall.RLIMIT_NOFILE, &lim); err != nil {
		var cur syscall.Rlimit
		if gerr := syscall.Getrlimit(syscall.RLIMIT_NOFILE, &cur); gerr == nil {
			return cur.Cur, err
		}
		return 0, err
	}
	return lim.Cur, nil
}
