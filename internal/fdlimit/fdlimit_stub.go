//go:build !unix

package fdlimit

// Raise is a no-op on platforms without RLIMIT_NOFILE.
func Raise() (uint64, error) { return 0, nil }
