// Package chaos runs the repository's example services under the
// deterministic fault injector (internal/faults) and checks that they
// still converge to correct results. It is the harness behind the CI
// chaos job: every run is driven by a single seed, and the injector
// guarantees an identical per-site fault schedule for the same seed,
// so any failure reproduces with
//
//	CHAOS_SEED=<seed> go test -race -run <Test> ./internal/chaos
//
// The package deliberately keeps the harness in a non-test file so
// `go build ./...` type-checks it and other packages (benchmarks,
// future soak tools) can reuse the runs.
package chaos

import (
	"fmt"
	"os"
	"strconv"
	"time"

	"github.com/eactors/eactors-go/internal/faults"
	"github.com/eactors/eactors-go/internal/smc"
	"github.com/eactors/eactors-go/internal/xmpp"
	"github.com/eactors/eactors-go/internal/xmpp/client"
)

// DefaultSeeds are the seeds CI runs the chaos suite under. Three
// fixed values, so the fault schedules exercised on every commit are
// stable and failures bisect cleanly.
var DefaultSeeds = []uint64{1, 7, 42}

// SeedFromEnv returns the seed from CHAOS_SEED if set (the
// reproduction path printed on failure), else def.
func SeedFromEnv(def uint64) uint64 {
	if s := os.Getenv("CHAOS_SEED"); s != "" {
		if v, err := strconv.ParseUint(s, 10, 64); err == nil {
			return v
		}
	}
	return def
}

// ReproCommand renders the command line that replays a failing run:
// same seed, same schedule, same faults.
func ReproCommand(test string, seed uint64) string {
	return fmt.Sprintf("CHAOS_SEED=%d go test -race -run %s ./internal/chaos", seed, test)
}

// DefaultRules is the standard chaos schedule: five fault classes
// spread over the enclave-crossing, channel, and seal sites. Rates are
// low enough that forward progress dominates, high enough that every
// class fires many times in a few thousand operations.
func DefaultRules() []faults.Rule {
	return []faults.Rule{
		{Site: faults.SiteSeal, Class: faults.SealCorrupt, Rate: 0.02},
		{Site: faults.SiteSend, Class: faults.SendFail, Rate: 0.02},
		{Site: faults.SiteSend, Class: faults.DoorbellDrop, Rate: 0.01},
		{Site: faults.SiteEnter, Class: faults.EPCSpike, Rate: 0.002, Pages: 64},
		{Site: faults.SiteExit, Class: faults.Delay, Rate: 0.002, Delay: 100 * time.Microsecond},
	}
}

// XMPPRules weights the schedule toward the sites the XMPP service
// actually exercises. Its traffic volume per delivered message is far
// lower than the secure-sum ring's (a handful of channel sends per
// hop, and client-bound traffic leaves the enclaves through untrusted
// WRITERs, so channel seals are rare), so the rates are much higher to
// make several classes fire within a short run.
func XMPPRules() []faults.Rule {
	return []faults.Rule{
		{Site: faults.SiteSeal, Class: faults.SealCorrupt, Rate: 0.15},
		{Site: faults.SiteSend, Class: faults.SendFail, Rate: 0.08},
		{Site: faults.SiteSend, Class: faults.DoorbellDrop, Rate: 0.05},
		{Site: faults.SiteRecv, Class: faults.Delay, Rate: 0.05, Delay: 50 * time.Microsecond},
		{Site: faults.SiteEnter, Class: faults.EPCSpike, Rate: 0.05, Pages: 64},
	}
}

// NewInjector builds an injector with the standard chaos schedule.
func NewInjector(seed uint64) *faults.Injector {
	return faults.New(faults.Config{Seed: seed, Rules: DefaultRules()})
}

// Result summarises one chaos run.
type Result struct {
	Seed     uint64
	Rounds   uint64            // securesum rounds / xmpp messages delivered
	Injected uint64            // total faults injected
	ByClass  map[string]uint64 // injected faults per class name
}

// RunSecureSum drives the EActors secure-sum ring (3 parties,
// encrypted ring links) under the chaos schedule until `rounds` sums
// complete, then verifies the final sum against the protocol's
// closed-form expectation. Corrupted seals, dropped sends, and lost
// doorbells are recovered by the ring's round-tag retransmission; a
// stall past the timeout is a convergence failure.
func RunSecureSum(seed, rounds uint64, dynamic bool, timeout time.Duration) (Result, error) {
	inj := NewInjector(seed)
	res := Result{Seed: seed}
	const parties, dim = 3, 16
	svc, err := smc.StartEA(smc.Options{
		Parties: parties,
		Dim:     dim,
		Dynamic: dynamic,
		Faults:  inj,
		// Tight, so injected losses are repaired quickly relative to
		// the test budget.
		RetransmitAfter: 2 * time.Millisecond,
	})
	if err != nil {
		return res, err
	}
	deadline := time.Now().Add(timeout)
	for svc.Rounds() < rounds {
		if time.Now().After(deadline) {
			svc.Stop()
			return res, fmt.Errorf("chaos: secure sum stalled at %d/%d rounds (seed %d, %d faults injected)",
				svc.Rounds(), rounds, seed, inj.Injected())
		}
		time.Sleep(time.Millisecond)
	}
	// Stop first: lastSum and the round counter are then a consistent
	// pair (both are written inside one actor invocation).
	svc.Stop()
	completed := svc.Rounds()
	want := smc.ExpectedSum(parties, dim, int(completed), dynamic)
	got := svc.LastSum()
	if len(got) != len(want) {
		return res, fmt.Errorf("chaos: sum has %d elements, want %d (seed %d)", len(got), len(want), seed)
	}
	for i := range want {
		if got[i] != want[i] {
			return res, fmt.Errorf("chaos: sum[%d] = %d, want %d after %d rounds (seed %d)",
				i, got[i], want[i], completed, seed)
		}
	}
	res.Rounds = completed
	res.Injected = inj.Injected()
	res.ByClass = inj.InjectedByClass()
	return res, nil
}

// RunXMPP starts the sharded XMPP service with the chaos schedule
// armed and pushes `messages` distinct chat messages from alice to bob
// over real TCP connections. The service's control plane (handshake,
// watch, handoff) rides SendRetry and must survive injected faults on
// its own; the chat data plane sheds load by design, so the harness
// layers the obvious client protocol on top: resend until the receiver
// has seen the body, dedup on the receiving side.
func RunXMPP(seed uint64, messages int, timeout time.Duration) (Result, error) {
	inj := faults.New(faults.Config{Seed: seed, Rules: XMPPRules()})
	res := Result{Seed: seed}
	// Trusted, so the shards sit in enclaves: crossings exercise the
	// enter/exit fault sites and cross-enclave channels the seal site.
	srv, err := xmpp.Start(xmpp.Options{
		Shards: 2, Trusted: true, EnclaveCount: 2, Faults: inj,
		// Observability stays on so a failing seed leaves post-mortems
		// (flight recorders + densely sampled traces, see dumpArtifacts).
		Telemetry: true, Trace: true, TraceSampleEvery: 8,
	})
	if err != nil {
		return res, err
	}
	defer srv.Stop()
	fail := func(err error) (Result, error) {
		dumpArtifacts("xmpp", seed, srv.Runtime())
		return res, err
	}

	// A corrupted seal on a handshake frame or on the encrypted
	// connector→shard session handoff is a loss SendRetry cannot see
	// (the send succeeded; the receiver dropped the payload), and
	// neither has end-to-end retransmission — it wedges that session
	// for good. The recovery, like any real XMPP client's, is to
	// reconnect: fresh socket, fresh handshake, fresh handoff.
	var alice, bob *client.Client
	connect := func() error {
		if alice != nil {
			_ = alice.Close()
		}
		if bob != nil {
			_ = bob.Close()
		}
		var err error
		if alice, err = dialRetry(srv.Addr(), "alice", 5, 3*time.Second); err != nil {
			return fmt.Errorf("chaos: seed %d: %w", seed, err)
		}
		if bob, err = dialRetry(srv.Addr(), "bob", 5, 3*time.Second); err != nil {
			return fmt.Errorf("chaos: seed %d: %w", seed, err)
		}
		return nil
	}
	if err := connect(); err != nil {
		return fail(err)
	}
	defer func() {
		_ = alice.Close()
		_ = bob.Close()
	}()

	deadline := time.Now().Add(timeout)
	seen := make(map[string]bool)
	for i := 0; i < messages; i++ {
		body := fmt.Sprintf("chaos-%d", i)
		stall := time.Now()
		for !seen[body] {
			if time.Now().After(deadline) {
				return fail(fmt.Errorf("chaos: xmpp delivered %d/%d messages before timeout (seed %d, %d faults injected)",
					i, messages, seed, inj.Injected()))
			}
			if time.Since(stall) > time.Second {
				if err := connect(); err != nil {
					return fail(err)
				}
				stall = time.Now()
			}
			if err := alice.SendMessage("bob", body); err != nil {
				// The server reset the connection; reconnect below.
				stall = stall.Add(-time.Hour)
				continue
			}
			// Drain whatever arrived; duplicates from earlier resends
			// collapse into the seen set.
			for {
				m, err := bob.ReadMessage(20 * time.Millisecond)
				if err != nil {
					break
				}
				seen[m.Body] = true
				stall = time.Now()
			}
		}
		res.Rounds++
	}
	res.Injected = inj.Injected()
	res.ByClass = inj.InjectedByClass()
	return res, nil
}

// dialRetry connects and authenticates a client, reconnecting when an
// injected fault ate part of the handshake.
func dialRetry(addr, user string, attempts int, each time.Duration) (*client.Client, error) {
	var err error
	for i := 0; i < attempts; i++ {
		var c *client.Client
		if c, err = client.Dial(addr, user, each); err == nil {
			return c, nil
		}
	}
	return nil, fmt.Errorf("dial %s after %d attempts: %w", user, attempts, err)
}
