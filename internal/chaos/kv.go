package chaos

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"time"

	"github.com/eactors/eactors-go/internal/ecrypto"
	"github.com/eactors/eactors-go/internal/faults"
	"github.com/eactors/eactors-go/internal/kv"
)

// KVRules weights the schedule toward the sites the KV service
// exercises: the write-back flusher syncs every few milliseconds (so
// SitePosSync fires constantly), every request crosses one encrypted
// FRONTEND→KVSTORE channel (seal site), and all internal legs ride the
// batched send path (send site).
func KVRules() []faults.Rule {
	return []faults.Rule{
		{Site: faults.SitePosSync, Class: faults.SyncFail, Rate: 0.30},
		{Site: faults.SiteSeal, Class: faults.SealCorrupt, Rate: 0.05},
		{Site: faults.SiteSend, Class: faults.SendFail, Rate: 0.05},
		{Site: faults.SiteSend, Class: faults.DoorbellDrop, Rate: 0.03},
		{Site: faults.SiteEnter, Class: faults.EPCSpike, Rate: 0.02, Pages: 64},
	}
}

// kvConn is a reconnecting client: requests are retried until the op
// deadline (the protocol is at-least-once; SET/DEL are idempotent and
// GET is read-only, so resending is always safe), and any transport
// error that is not a plain timeout tears the socket down for a fresh
// dial — the same recovery a real cache client implements.
type kvConn struct {
	addr string
	c    *kv.Client
}

func (cc *kvConn) redial(deadline time.Time) error {
	if cc.c != nil {
		_ = cc.c.Close()
		cc.c = nil
	}
	var err error
	for time.Now().Before(deadline) {
		var c *kv.Client
		if c, err = kv.Dial(cc.addr, time.Second); err == nil {
			cc.c = c
			return nil
		}
	}
	return fmt.Errorf("chaos: redial %s: %w", cc.addr, err)
}

func (cc *kvConn) do(deadline time.Time, op func(*kv.Client) error) error {
	for {
		if time.Now().After(deadline) {
			return fmt.Errorf("chaos: kv op deadline exceeded")
		}
		if cc.c == nil {
			if err := cc.redial(deadline); err != nil {
				return err
			}
		}
		err := op(cc.c)
		switch {
		case err == nil:
			return nil
		case errors.Is(err, kv.ErrTimeout):
			// Request or response lost to an injected fault: resend on
			// the same connection (stale responses are skipped by ID).
		default:
			_ = cc.c.Close()
			cc.c = nil
		}
	}
}

// RunKV drives the trusted, encrypted KV service under the chaos
// schedule: a sequential client applies random GET/SET/DEL ops over a
// small key space, mirroring them in a model map, and every confirmed
// GET must agree with the model exactly — the frontend's per-shard
// stages are FIFO, so a delayed duplicate of a confirmed write can
// never reorder past a later op on the same key. After the op budget a
// full sweep of the key space is checked against the model.
func RunKV(seed uint64, ops int, timeout time.Duration) (Result, error) {
	inj := faults.New(faults.Config{Seed: seed, Rules: KVRules()})
	res := Result{Seed: seed}
	var encKey [ecrypto.KeySize]byte
	for i := range encKey {
		encKey[i] = byte(seed) + byte(i)
	}
	srv, err := kv.Start(kv.Options{
		Shards:        2,
		Trusted:       true,
		EncryptionKey: &encKey,
		StoreSize:     1 << 20,
		// CHAOS_SWITCHLESS=1 runs the same schedule over the switchless
		// proxy path, so doorbell-drop and epc-spike faults exercise the
		// ring pipeline and proxy parking instead of blocking crossings.
		Switchless: os.Getenv("CHAOS_SWITCHLESS") == "1",
		// Tight flush period, so the injected sync failures fire many
		// times within the run and every failed flush gets retried.
		FlushInterval: 10 * time.Millisecond,
		Faults:        inj,
		// Observability stays on during chaos runs so a failing seed
		// leaves post-mortems: flight recorders plus densely sampled
		// traces (see dumpArtifacts).
		Telemetry:        true,
		Trace:            true,
		TraceSampleEvery: 8,
	})
	if err != nil {
		return res, err
	}
	defer srv.Stop()

	const keySpace = 16
	model := make(map[string]string)
	rng := rand.New(rand.NewSource(int64(seed)))
	conn := &kvConn{addr: srv.Addr()}
	defer func() {
		if conn.c != nil {
			_ = conn.c.Close()
		}
	}()
	deadline := time.Now().Add(timeout)

	fail := func(op, key string, err error) (Result, error) {
		dumpArtifacts("kv", seed, srv.Runtime())
		return res, fmt.Errorf("chaos: kv %s %s after %d/%d ops (seed %d, %d faults injected): %w",
			op, key, res.Rounds, ops, seed, inj.Injected(), err)
	}
	checkGet := func(key string) error {
		var val []byte
		var found bool
		err := conn.do(deadline, func(c *kv.Client) error {
			var err error
			val, found, err = c.Get([]byte(key))
			return err
		})
		if err != nil {
			return err
		}
		want, exists := model[key]
		if found != exists || (found && string(val) != want) {
			return fmt.Errorf("got %q found=%v, model %q exists=%v", val, found, want, exists)
		}
		return nil
	}

	for i := 0; i < ops; i++ {
		key := fmt.Sprintf("key-%d", rng.Intn(keySpace))
		switch r := rng.Float64(); {
		case r < 0.45:
			val := fmt.Sprintf("%s=%d", key, i)
			if err := conn.do(deadline, func(c *kv.Client) error {
				return c.Set([]byte(key), []byte(val))
			}); err != nil {
				return fail("SET", key, err)
			}
			model[key] = val
		case r < 0.65:
			if err := conn.do(deadline, func(c *kv.Client) error {
				_, err := c.Del([]byte(key))
				return err
			}); err != nil {
				return fail("DEL", key, err)
			}
			delete(model, key)
		default:
			if err := checkGet(key); err != nil {
				return fail("GET", key, err)
			}
		}
		res.Rounds++
	}

	// Convergence sweep: every key in the space must match the model.
	for k := 0; k < keySpace; k++ {
		key := fmt.Sprintf("key-%d", k)
		if err := checkGet(key); err != nil {
			return fail("verify GET", key, err)
		}
	}
	res.Injected = inj.Injected()
	res.ByClass = inj.InjectedByClass()
	return res, nil
}
