package chaos

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"

	"github.com/eactors/eactors-go/internal/core"
	"github.com/eactors/eactors-go/internal/telemetry"
)

// ArtifactDirEnv names the directory the CI chaos job points at: when a
// run fails, the harness drops post-mortem artifacts there (per-worker
// flight-recorder dumps and the sampled causal traces) and the workflow
// uploads the directory. Unset means no artifacts — local runs stay
// clean unless asked.
const ArtifactDirEnv = "CHAOS_ARTIFACT_DIR"

// dumpArtifacts writes the failing run's flight recorders and trace
// snapshot to $CHAOS_ARTIFACT_DIR as <label>-seed<seed>-flight.txt and
// <label>-seed<seed>-traces.json. Everything is best-effort: artifact
// trouble must never mask the failure that triggered it.
func dumpArtifacts(label string, seed uint64, rt *core.Runtime) {
	dir := os.Getenv(ArtifactDirEnv)
	if dir == "" || rt == nil {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return
	}
	prefix := fmt.Sprintf("%s-seed%d", label, seed)
	if reg := rt.Telemetry(); reg != nil {
		var buf bytes.Buffer
		for i := 0; i < reg.Shards(); i++ {
			fmt.Fprintf(&buf, "== worker %d ==\n%s", i, telemetry.FormatDump(reg.Recorder(i).Dump(0)))
		}
		fmt.Fprintf(&buf, "== system ==\n%s", telemetry.FormatDump(reg.SystemRecorder().Dump(0)))
		_ = os.WriteFile(filepath.Join(dir, prefix+"-flight.txt"), buf.Bytes(), 0o644)
	}
	if tr := rt.Tracer(); tr != nil {
		var buf bytes.Buffer
		if err := tr.WriteChrome(&buf); err == nil {
			_ = os.WriteFile(filepath.Join(dir, prefix+"-traces.json"), buf.Bytes(), 0o644)
		}
	}
}
