package chaos

import (
	"testing"
	"time"

	"github.com/eactors/eactors-go/internal/faults"
)

// seeds returns the seed matrix for a test: the CI defaults, or just
// CHAOS_SEED when set (the reproduction path).
func seeds() []uint64 {
	if s := SeedFromEnv(0); s != 0 {
		return []uint64{s}
	}
	return DefaultSeeds
}

// requireClasses fails the test unless the run injected at least min
// distinct fault classes — convergence is only interesting if faults
// actually fired.
func requireClasses(t *testing.T, test string, res Result, min int) {
	t.Helper()
	if len(res.ByClass) < min {
		t.Fatalf("seed %d: only %d fault classes fired (%v), want >= %d\nreproduce with: %s",
			res.Seed, len(res.ByClass), res.ByClass, min, ReproCommand(test, res.Seed))
	}
}

// TestChaosSecureSum runs the encrypted secure-sum ring under the full
// chaos schedule and asserts it converges to the exact protocol result
// despite corrupted seals, dropped sends, lost doorbells, EPC spikes,
// and delayed crossings.
func TestChaosSecureSum(t *testing.T) {
	for _, seed := range seeds() {
		res, err := RunSecureSum(seed, 200, false, 30*time.Second)
		if err != nil {
			t.Fatalf("%v\nreproduce with: %s", err, ReproCommand("TestChaosSecureSum", seed))
		}
		requireClasses(t, "TestChaosSecureSum", res, 3)
		t.Logf("seed %d: %d rounds, %d faults injected: %v", seed, res.Rounds, res.Injected, res.ByClass)
	}
}

// TestChaosSecureSumDynamic repeats the run in the paper's case-#2
// mode, where every party recomputes its secret each round — the
// per-tag secret update must keep retransmissions idempotent.
func TestChaosSecureSumDynamic(t *testing.T) {
	seed := SeedFromEnv(DefaultSeeds[len(DefaultSeeds)-1])
	res, err := RunSecureSum(seed, 100, true, 30*time.Second)
	if err != nil {
		t.Fatalf("%v\nreproduce with: %s", err, ReproCommand("TestChaosSecureSumDynamic", seed))
	}
	requireClasses(t, "TestChaosSecureSumDynamic", res, 3)
	t.Logf("seed %d: %d rounds, %d faults injected: %v", seed, res.Rounds, res.Injected, res.ByClass)
}

// TestChaosXMPP runs the trusted sharded XMPP service under the chaos
// schedule and asserts every chat message is eventually delivered over
// real TCP connections.
func TestChaosXMPP(t *testing.T) {
	for _, seed := range seeds() {
		res, err := RunXMPP(seed, 12, 30*time.Second)
		if err != nil {
			t.Fatalf("%v\nreproduce with: %s", err, ReproCommand("TestChaosXMPP", seed))
		}
		requireClasses(t, "TestChaosXMPP", res, 3)
		t.Logf("seed %d: %d messages, %d faults injected: %v", seed, res.Rounds, res.Injected, res.ByClass)
	}
}

// TestChaosKV runs the trusted, encrypted KV service under the chaos
// schedule: every confirmed operation must agree with a model map, and
// the injected sync failures must actually have exercised the sharded
// store's keep-dirty-and-retry flush path.
func TestChaosKV(t *testing.T) {
	for _, seed := range seeds() {
		res, err := RunKV(seed, 60, 30*time.Second)
		if err != nil {
			t.Fatalf("%v\nreproduce with: %s", err, ReproCommand("TestChaosKV", seed))
		}
		requireClasses(t, "TestChaosKV", res, 3)
		if res.ByClass["sync-fail"] == 0 {
			t.Fatalf("seed %d: no POS sync failures injected (%v)\nreproduce with: %s",
				res.Seed, res.ByClass, ReproCommand("TestChaosKV", res.Seed))
		}
		t.Logf("seed %d: %d ops, %d faults injected: %v", seed, res.Rounds, res.Injected, res.ByClass)
	}
}

// TestChaosScheduleDeterministic pins the core reproducibility claim:
// two injectors built from the same seed produce identical per-site
// fault schedules, and a different seed produces a different one.
func TestChaosScheduleDeterministic(t *testing.T) {
	sites := []faults.Site{
		faults.SiteEnter, faults.SiteExit, faults.SiteSeal, faults.SiteOpen,
		faults.SiteSend, faults.SiteRecv, faults.SiteInvoke, faults.SitePosSync,
	}
	const n = 512
	a, b := NewInjector(42), NewInjector(42)
	other := NewInjector(43)
	differs := false
	for _, site := range sites {
		sa, sb, so := a.Schedule(site, n), b.Schedule(site, n), other.Schedule(site, n)
		for i := range sa {
			if sa[i] != sb[i] {
				t.Fatalf("site %v op %d: same seed disagrees (%v vs %v)", site, i, sa[i], sb[i])
			}
			if sa[i] != so[i] {
				differs = true
			}
		}
	}
	if !differs {
		t.Fatalf("seeds 42 and 43 produced identical schedules across %d ops on every site", n)
	}
}
