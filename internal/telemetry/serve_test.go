package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"github.com/eactors/eactors-go/internal/trace"
)

// get fetches a path from the bound exporter and returns status,
// content-type and body.
func get(t *testing.T, bound, path string) (int, string, string) {
	t.Helper()
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get("http://" + bound + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	return resp.StatusCode, resp.Header.Get("Content-Type"), string(body)
}

func TestServe(t *testing.T) {
	reg := New(2, 64)
	c := reg.Counter("test_requests", "requests served")
	c.Inc(0)
	c.Inc(1)

	bound, stop, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}

	status, ctype, body := get(t, bound, "/metrics")
	if status != http.StatusOK {
		t.Fatalf("/metrics status = %d", status)
	}
	if want := "text/plain; version=0.0.4; charset=utf-8"; ctype != want {
		t.Errorf("/metrics content-type = %q, want %q", ctype, want)
	}
	if !strings.Contains(body, "test_requests_total 2") {
		t.Errorf("/metrics missing counter, body:\n%s", body)
	}

	status, _, body = get(t, bound, "/debug/pprof/")
	if status != http.StatusOK {
		t.Fatalf("/debug/pprof/ status = %d", status)
	}
	if !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ index missing profiles, body:\n%.200s", body)
	}

	// Clean shutdown: stop returns only after the server is down, so the
	// port must refuse new connections afterwards.
	stop()
	client := &http.Client{Timeout: time.Second}
	if resp, err := client.Get("http://" + bound + "/metrics"); err == nil {
		resp.Body.Close()
		t.Fatalf("exporter still serving after stop()")
	}
}

func TestServeWithTraces(t *testing.T) {
	tr := trace.New(1, 64, 1)
	ctx := tr.NewRoot()
	tr.Record(0, trace.Span{TraceID: ctx.TraceID, ID: tr.NextSpan(), Kind: trace.KindInvoke, Start: 1000, Dur: 500})

	bound, stop, err := Serve("127.0.0.1:0", nil, WithTraces(tr))
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	defer stop()

	status, ctype, body := get(t, bound, "/debug/traces")
	if status != http.StatusOK {
		t.Fatalf("/debug/traces status = %d", status)
	}
	if ctype != "application/json" {
		t.Errorf("/debug/traces content-type = %q", ctype)
	}
	var parsed struct {
		TraceEvents []struct {
			Ph   string `json:"ph"`
			Args struct {
				Trace uint64 `json:"trace"`
			} `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(body), &parsed); err != nil {
		t.Fatalf("/debug/traces is not valid JSON: %v\n%s", err, body)
	}
	if len(parsed.TraceEvents) != 1 || parsed.TraceEvents[0].Args.Trace != ctx.TraceID {
		t.Fatalf("unexpected trace events: %s", body)
	}
}
