package telemetry

import (
	"bytes"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"

	"github.com/eactors/eactors-go/internal/profile"
)

func TestRegisterProcessMetrics(t *testing.T) {
	RegisterProcessMetrics(nil) // nil registry is a no-op

	reg := New(1, 64)
	RegisterProcessMetrics(reg)
	RegisterProcessMetrics(reg) // idempotent: addFunc dedupes by name

	var buf bytes.Buffer
	reg.WritePrometheus(&buf)
	out := buf.String()
	for _, want := range []string{
		`eactors_build_info{go_version="` + runtime.Version() + `"} 1`,
		"eactors_process_uptime_seconds",
		"eactors_process_goroutines",
		"eactors_process_rss_bytes",
		"eactors_process_gc_pause_p99_ns",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("process metrics missing %q:\n%s", want, out)
		}
	}
	if n := strings.Count(out, "# TYPE eactors_build_info"); n != 1 {
		t.Errorf("eactors_build_info registered %d times, want 1 (dedupe)", n)
	}
}

func TestProcessGauges(t *testing.T) {
	if rssBytes() == 0 {
		t.Error("rssBytes() = 0, want a nonzero resident set (or MemStats fallback)")
	}
	runtime.GC()
	// gcPauseP99Ns can legitimately be 0 before the histogram populates,
	// but must not panic and must be sane after a forced GC.
	if p99 := gcPauseP99Ns(); p99 > uint64(10*time.Minute) {
		t.Errorf("gcPauseP99Ns() = %d, implausibly large", p99)
	}
}

func TestServeWithProfile(t *testing.T) {
	reg := New(1, 64)
	src := func() profile.Model {
		return profile.Model{V: profile.SnapshotVersion, CapturedAtNs: 7}
	}
	bound, stop, err := Serve("127.0.0.1:0", reg, WithProfile(src))
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	defer stop()

	status, ctype, body := get(t, bound, "/debug/profile")
	if status != http.StatusOK {
		t.Fatalf("/debug/profile status = %d", status)
	}
	if ctype != "application/json" {
		t.Errorf("/debug/profile content-type = %q", ctype)
	}
	m, err := profile.Decode([]byte(body))
	if err != nil || m.CapturedAtNs != 7 {
		t.Fatalf("/debug/profile body %q decode = %+v, %v", body, m, err)
	}

	// Process self-metrics ride along on every handler.
	_, _, metrics := get(t, bound, "/metrics")
	if !strings.Contains(metrics, "eactors_process_goroutines") {
		t.Errorf("/metrics missing process self-metrics:\n%s", metrics)
	}
}

func TestServeWithoutProfileIs404(t *testing.T) {
	bound, stop, err := Serve("127.0.0.1:0", New(1, 64), WithProfile(nil))
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	defer stop()
	if status, _, _ := get(t, bound, "/debug/profile"); status != http.StatusNotFound {
		t.Fatalf("/debug/profile without a source: status = %d, want 404", status)
	}
}
