package telemetry

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// histBuckets is the number of log2 buckets: bucket i counts
// observations v with bits.Len64(v) == i, i.e. v in [2^(i-1), 2^i).
// 64 buckets cover the full uint64 range — nanosecond latencies from
// sub-ns to ~584 years land somewhere sensible without configuration.
const histBuckets = 65

// Histogram is a lock-free log-bucketed histogram: one atomic add per
// observation (plus a CAS loop for the running max, contended only when
// a new max is set). Percentiles are extracted from the snapshot as the
// upper bound of the bucket holding the quantile — a ≤2× overestimate by
// construction, which is the right fidelity for "is p99 microseconds or
// milliseconds" questions and costs nothing to maintain.
//
// A nil *Histogram is a no-op.
type Histogram struct {
	name, help, unit string

	buckets [histBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64
	max     atomic.Uint64
}

func newHistogram(name, help, unit string) *Histogram {
	return &Histogram{name: name, help: help, unit: unit}
}

// Name returns the registered metric name.
func (h *Histogram) Name() string {
	if h == nil {
		return ""
	}
	return h.name
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	h.buckets[bits.Len64(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// ObserveSince records the nanoseconds elapsed since start. A zero start
// is ignored, which lets sampled call sites leave their start time unset
// on unsampled iterations.
func (h *Histogram) ObserveSince(start time.Time) {
	if h == nil || start.IsZero() {
		return
	}
	h.Observe(uint64(time.Since(start)))
}

// Snapshot copies the histogram state for aggregation.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	if h == nil {
		return s
	}
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	s.Max = h.max.Load()
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// HistSnapshot is a point-in-time copy of a Histogram.
type HistSnapshot struct {
	Count, Sum, Max uint64
	Buckets         [histBuckets]uint64
}

// Quantile returns an upper bound for the p-quantile (0 < p <= 1): the
// upper edge of the log2 bucket containing it, clamped to the observed
// max. Returns 0 when the histogram is empty.
func (s HistSnapshot) Quantile(p float64) uint64 {
	if s.Count == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	// rank is the 1-based index of the target observation.
	rank := uint64(p * float64(s.Count))
	if rank == 0 {
		rank = 1
	}
	var seen uint64
	for i, b := range s.Buckets {
		seen += b
		if seen >= rank {
			var hi uint64
			if i == 0 {
				hi = 0
			} else if i >= 64 {
				hi = ^uint64(0)
			} else {
				hi = uint64(1)<<uint(i) - 1
			}
			if s.Max > 0 && hi > s.Max {
				hi = s.Max
			}
			return hi
		}
	}
	return s.Max
}

// Mean returns the arithmetic mean of all observations (0 when empty).
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}
