package telemetry

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
	"time"

	"github.com/eactors/eactors-go/internal/profile"
	"github.com/eactors/eactors-go/internal/trace"
)

// splitName separates an optional label set embedded in a registered
// metric name: "channel_sent{channel=\"read-0\"}" → base
// "channel_sent", labels "channel=\"read-0\"". Embedded labels are how
// per-channel and per-worker series share one metric family.
func splitName(name string) (base, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i], strings.TrimSuffix(name[i+1:], "}")
	}
	return name, ""
}

// series renders "base{labels,extra} " or the unlabelled equivalents.
func series(base, labels, extra string) string {
	switch {
	case labels == "" && extra == "":
		return base
	case labels == "":
		return base + "{" + extra + "}"
	case extra == "":
		return base + "{" + labels + "}"
	default:
		return base + "{" + labels + "," + extra + "}"
	}
}

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format (version 0.0.4). Counters become `<name>_total`,
// gauges keep their name, histograms emit cumulative `_bucket` series
// with power-of-two `le` edges plus `_sum` and `_count`. HELP/TYPE
// headers are emitted once per family even when many labelled series
// share it.
func (r *Registry) WritePrometheus(w io.Writer) {
	if r == nil {
		return
	}
	seen := make(map[string]bool)
	header := func(base, help, kind string) {
		if seen[base] {
			return
		}
		seen[base] = true
		if help != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", base, help)
		}
		fmt.Fprintf(w, "# TYPE %s %s\n", base, kind)
	}
	r.Each(
		func(name, help string, total uint64, gauge bool) {
			base, labels := splitName(name)
			kind := "counter"
			if gauge {
				kind = "gauge"
			} else {
				base += "_total"
			}
			header(base, help, kind)
			fmt.Fprintf(w, "%s %d\n", series(base, labels, ""), total)
		},
		func(name, help, unit string, s HistSnapshot) {
			base, labels := splitName(name)
			if unit != "" && help != "" {
				help += " (unit: " + unit + ")"
			}
			header(base, help, "histogram")
			var cum uint64
			for i, b := range s.Buckets {
				if i >= 64 {
					break
				}
				cum += b
				if b == 0 {
					continue // sparse exposition: only non-empty edges
				}
				edge := uint64(1)<<uint(i) - 1
				fmt.Fprintf(w, "%s %d\n", series(base+"_bucket", labels, fmt.Sprintf("le=%q", fmt.Sprint(edge))), cum)
			}
			fmt.Fprintf(w, "%s %d\n", series(base+"_bucket", labels, `le="+Inf"`), s.Count)
			fmt.Fprintf(w, "%s %d\n", series(base+"_sum", labels, ""), s.Sum)
			fmt.Fprintf(w, "%s %d\n", series(base+"_count", labels, ""), s.Count)
		},
	)
}

// ServeOption customises Handler and Serve.
type ServeOption func(*serveConfig)

type serveConfig struct {
	tracer  *trace.Tracer
	profile func() profile.Model
}

// WithTraces mounts /debug/traces on the handler: a snapshot of the
// tracer's sampled spans in Chrome trace-event JSON, loadable in
// chrome://tracing or Perfetto. A nil tracer serves an empty trace, so
// callers can pass Server.Tracer() unconditionally.
func WithTraces(t *trace.Tracer) ServeOption {
	return func(c *serveConfig) { c.tracer = t }
}

// WithProfile mounts /debug/profile on the handler: the current
// per-actor cost-model snapshot (profile.SnapshotVersion JSON, the
// same record the JSONL snapshotter writes). src is typically
// Runtime.CostProfile; a nil src serves 404 so callers can mount
// conditionally without branching.
func WithProfile(src func() profile.Model) ServeOption {
	return func(c *serveConfig) { c.profile = src }
}

// Handler returns an HTTP handler exposing the registry:
//
//	/metrics        Prometheus text format
//	/dump           flight-recorder dumps (all workers, relative time)
//	/debug/traces   sampled causal traces, Chrome trace-event JSON
//	                (with WithTraces)
//	/debug/profile  per-actor cost-model snapshot JSON (with WithProfile)
//	/debug/pprof/*  the standard Go profiles
//
// It deliberately avoids http.DefaultServeMux so embedding applications
// keep control of their own mux.
func Handler(r *Registry, opts ...ServeOption) http.Handler {
	var cfg serveConfig
	for _, o := range opts {
		o(&cfg)
	}
	// Process self-metrics ride along on every handler; addFunc dedupes
	// by name, so repeated Handler calls over one registry are harmless.
	RegisterProcessMetrics(r)
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/profile", func(w http.ResponseWriter, req *http.Request) {
		if cfg.profile == nil {
			http.NotFound(w, req)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = cfg.profile().Encode(w)
	})
	mux.HandleFunc("/debug/traces", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = cfg.tracer.WriteChrome(w)
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
	mux.HandleFunc("/dump", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if r == nil {
			io.WriteString(w, "(telemetry disabled)\n")
			return
		}
		for i := 0; i < r.Shards(); i++ {
			fmt.Fprintf(w, "== worker %d ==\n%s", i, FormatDump(r.Recorder(i).Dump(0)))
		}
		fmt.Fprintf(w, "== system ==\n%s", FormatDump(r.SystemRecorder().Dump(0)))
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve binds addr and serves Handler(r) on it until the returned stop
// function is called. It returns the bound address (useful with ":0").
func Serve(addr string, r *Registry, opts ...ServeOption) (bound string, stop func(), err error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: Handler(r, opts...), ReadHeaderTimeout: 5 * time.Second}
	done := make(chan struct{})
	go func() {
		defer close(done)
		if serveErr := srv.Serve(lis); serveErr != nil && !strings.Contains(serveErr.Error(), "closed") {
			// Best effort: the exporter must never take the service down.
			_ = serveErr
		}
	}()
	return lis.Addr().String(), func() {
		_ = srv.Close()
		<-done
	}, nil
}
