package telemetry

import (
	"sync"
	"time"
)

// Meter converts a monotonically increasing counter into a windowed
// rate: each Update records the delta since the previous Update and the
// wall time it covered. MONITOR ticks its meters periodically and
// answers "rates" queries from the last completed window — the paper's
// messages-per-second numbers (Figures 14-17) are exactly this shape.
//
// A Meter is safe for concurrent use; a nil *Meter is a no-op.
type Meter struct {
	mu     sync.Mutex
	last   uint64
	lastT  time.Time
	rate   float64
	primed bool
}

// Update feeds the current counter total and returns the per-second
// rate over the window since the previous Update. The first call primes
// the meter and returns 0.
func (m *Meter) Update(total uint64, now time.Time) float64 {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.primed {
		m.last, m.lastT, m.primed = total, now, true
		return 0
	}
	dt := now.Sub(m.lastT).Seconds()
	if dt <= 0 {
		return m.rate
	}
	delta := total - m.last // monotonic counters; wraparound is theoretical
	m.rate = float64(delta) / dt
	m.last, m.lastT = total, now
	return m.rate
}

// Rate returns the most recently computed window rate.
func (m *Meter) Rate() float64 {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.rate
}
