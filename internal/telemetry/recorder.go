package telemetry

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"
)

// EventKind tags a flight-recorder event.
type EventKind uint8

// Flight-recorder event kinds, covering the runtime's hot-path
// transitions. Arg semantics are per kind (latency ns, byte count,
// batch size, page count) and documented at the recording site.
const (
	EvNone         EventKind = iota
	EvEnqueue                // channel send; ID = channel tag, Arg = batch size
	EvDequeue                // channel recv; ID = channel tag, Arg = batch size
	EvInvoke                 // body invocation; ID = actor tag, Arg = latency ns
	EvCrossing               // enclave boundary crossing; ID = enclave, Arg = charged ns
	EvSeal                   // payload seal; Arg = plaintext bytes
	EvOpen                   // payload open; Arg = ciphertext bytes
	EvEvict                  // EPC page eviction; ID = enclave, Arg = pages
	EvPark                   // actor parked after a body panic; ID = actor tag
	EvIdle                   // worker entered its idle wait
	EvWake                   // worker woken by its doorbell
	EvDrainExhaust           // body consumed its whole drain budget; ID = actor tag
	EvNetRead                // pump read; ID = socket, Arg = bytes
	EvNetWrite               // socket write; ID = socket, Arg = bytes
	EvPOSGet                 // POS get; Arg = latency ns
	EvPOSSet                 // POS set; Arg = latency ns
	EvRestart                // parked actor restarted; ID = actor tag, Arg = restart count
	EvFault                  // injected fault fired; ID = site, Arg = class
)

var kindNames = [...]string{
	EvNone: "none", EvEnqueue: "enqueue", EvDequeue: "dequeue",
	EvInvoke: "invoke", EvCrossing: "crossing", EvSeal: "seal",
	EvOpen: "open", EvEvict: "epc-evict", EvPark: "park",
	EvIdle: "idle", EvWake: "wake", EvDrainExhaust: "drain-exhaust",
	EvNetRead: "net-read", EvNetWrite: "net-write",
	EvPOSGet: "pos-get", EvPOSSet: "pos-set",
	EvRestart: "restart", EvFault: "fault",
}

// String names the event kind.
func (k EventKind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Event is one decoded flight-recorder entry.
type Event struct {
	// TS is the wall-clock nanosecond timestamp of the event.
	TS int64
	// Kind tags the event.
	Kind EventKind
	// ID is a kind-specific identity (actor tag, channel tag, socket).
	ID uint32
	// Arg is a kind-specific value; 24 usable bits survive the packed
	// slot encoding (values are saturated, not truncated).
	Arg uint64
}

// String renders one event for a dump.
func (e Event) String() string {
	return fmt.Sprintf("%s ts=%d id=%d arg=%d", e.Kind, e.TS, e.ID, e.Arg)
}

// argBits is the Arg payload width in the packed slot word.
const argBits = 24

// Recorder is a fixed-size ring of recent events — the flight recorder.
// Recording claims a slot with one atomic index bump and stores two
// atomic words (timestamp + packed kind/id/arg), so it is cheap enough
// to leave on in production and race-clean to dump from any goroutine.
// A dump observes the last N events; a writer lapping the reader can
// tear an individual slot (timestamp from one event, data from the
// next), which a post-mortem consumer tolerates by construction.
//
// A nil *Recorder is a no-op.
type Recorder struct {
	mask uint64
	next atomic.Uint64
	ts   []atomic.Int64
	data []atomic.Uint64 // kind(8) | id(32) | arg(24)
}

// NewRecorder creates a recorder holding size events (rounded up to a
// power of two, minimum 16).
func NewRecorder(size int) *Recorder {
	n := 16
	for n < size {
		n <<= 1
	}
	return &Recorder{
		mask: uint64(n - 1),
		ts:   make([]atomic.Int64, n),
		data: make([]atomic.Uint64, n),
	}
}

// Record appends one event. Safe from any goroutine, though each
// recorder is normally single-writer (its worker).
func (r *Recorder) Record(kind EventKind, id uint32, arg uint64) {
	if r == nil {
		return
	}
	if arg >= 1<<argBits {
		arg = 1<<argBits - 1 // saturate: "huge" is all a dump needs to say
	}
	i := r.next.Add(1) - 1
	slot := i & r.mask
	r.ts[slot].Store(time.Now().UnixNano())
	r.data[slot].Store(uint64(kind)<<56 | uint64(id)<<argBits | arg)
}

// Len returns the number of events recorded so far (monotonic; the ring
// retains the last Cap of them).
func (r *Recorder) Len() uint64 {
	if r == nil {
		return 0
	}
	return r.next.Load()
}

// Cap returns the ring capacity.
func (r *Recorder) Cap() int {
	if r == nil {
		return 0
	}
	return len(r.ts)
}

// Dump returns up to max of the most recent events, oldest first. With
// max <= 0 the whole ring is returned.
func (r *Recorder) Dump(max int) []Event {
	if r == nil {
		return nil
	}
	n := r.next.Load()
	avail := n
	if avail > uint64(len(r.ts)) {
		avail = uint64(len(r.ts))
	}
	if max > 0 && uint64(max) < avail {
		avail = uint64(max)
	}
	events := make([]Event, 0, avail)
	for i := n - avail; i < n; i++ {
		slot := i & r.mask
		d := r.data[slot].Load()
		ev := Event{
			TS:   r.ts[slot].Load(),
			Kind: EventKind(d >> 56),
			ID:   uint32(d>>argBits) & 0xFFFFFFFF,
			Arg:  d & (1<<argBits - 1),
		}
		if ev.Kind == EvNone {
			continue // slot not yet written (torn read at the ring head)
		}
		events = append(events, ev)
	}
	return events
}

// FormatDump renders events one per line, with timestamps rebased to
// the first event so a dump reads as a relative timeline.
func FormatDump(events []Event) string {
	if len(events) == 0 {
		return "(flight recorder empty)\n"
	}
	var b strings.Builder
	base := events[0].TS
	for _, e := range events {
		fmt.Fprintf(&b, "+%-12d %-13s id=%-6d arg=%d\n", e.TS-base, e.Kind, e.ID, e.Arg)
	}
	return b.String()
}
