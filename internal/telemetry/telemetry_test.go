package telemetry

import (
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilRegistryAndInstrumentsAreNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter("x", "")
	h := r.Histogram("y", "", "ns")
	if c != nil || h != nil {
		t.Fatalf("nil registry must hand out nil instruments")
	}
	c.Add(3, 7)
	c.Inc(0)
	h.Observe(42)
	h.ObserveSince(time.Now())
	if c.Total() != 0 || h.Snapshot().Count != 0 {
		t.Fatalf("nil instruments must stay zero")
	}
	r.Recorder(0).Record(EvInvoke, 1, 2)
	if got := r.Recorder(0).Dump(0); got != nil {
		t.Fatalf("nil recorder dump = %v, want nil", got)
	}
	r.CounterFunc("f", "", func() uint64 { return 1 })
	r.Each(nil, nil)
	var sb strings.Builder
	r.WriteSummary(&sb)
	r.WritePrometheus(&sb)
	if sb.Len() != 0 {
		t.Fatalf("nil registry rendered output: %q", sb.String())
	}
}

func TestCounterShardingAndTotal(t *testing.T) {
	r := New(4, 0)
	c := r.Counter("msgs", "test")
	if again := r.Counter("msgs", "test"); again != c {
		t.Fatalf("Counter must be get-or-create")
	}
	var wg sync.WaitGroup
	for shard := 0; shard < 4; shard++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc(s)
			}
		}(shard)
	}
	wg.Wait()
	c.Add(99, 5) // out-of-range shard is masked, not a panic
	if got := c.Total(); got != 4005 {
		t.Fatalf("Total = %d, want 4005", got)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	r := New(1, 0)
	h := r.Histogram("lat", "test", "ns")
	// 900 fast observations (~100ns) and 100 slow (~1ms).
	for i := 0; i < 900; i++ {
		h.Observe(100)
	}
	for i := 0; i < 100; i++ {
		h.Observe(1_000_000)
	}
	s := h.Snapshot()
	if s.Count != 1000 {
		t.Fatalf("count = %d", s.Count)
	}
	if p50 := s.Quantile(0.50); p50 < 100 || p50 >= 1000 {
		t.Fatalf("p50 = %d, want ~[100,1000)", p50)
	}
	if p99 := s.Quantile(0.99); p99 < 512*1024 {
		t.Fatalf("p99 = %d, want ~1ms bucket", p99)
	}
	if s.Max != 1_000_000 {
		t.Fatalf("max = %d", s.Max)
	}
	if s.Quantile(1.0) != 1_000_000 {
		t.Fatalf("p100 should clamp to max, got %d", s.Quantile(1.0))
	}
	if (HistSnapshot{}).Quantile(0.5) != 0 {
		t.Fatalf("empty histogram quantile must be 0")
	}
}

func TestMeterWindowedRate(t *testing.T) {
	var m Meter
	t0 := time.Unix(1000, 0)
	if rate := m.Update(100, t0); rate != 0 {
		t.Fatalf("priming update returned %v", rate)
	}
	rate := m.Update(300, t0.Add(2*time.Second))
	if rate != 100 {
		t.Fatalf("rate = %v, want 100/s", rate)
	}
	if m.Rate() != 100 {
		t.Fatalf("Rate() = %v", m.Rate())
	}
	// Zero-width window keeps the previous rate instead of dividing by 0.
	if r2 := m.Update(400, t0.Add(2*time.Second)); r2 != 100 {
		t.Fatalf("zero-width window rate = %v", r2)
	}
}

func TestRecorderRingAndDump(t *testing.T) {
	rec := NewRecorder(16)
	for i := 0; i < 40; i++ {
		rec.Record(EvEnqueue, uint32(i), uint64(i))
	}
	events := rec.Dump(0)
	if len(events) != 16 {
		t.Fatalf("dump length = %d, want ring size 16", len(events))
	}
	// Oldest-first: the ring retains events 24..39.
	if events[0].ID != 24 || events[15].ID != 39 {
		t.Fatalf("dump window = [%d..%d], want [24..39]", events[0].ID, events[15].ID)
	}
	last4 := rec.Dump(4)
	if len(last4) != 4 || last4[3].ID != 39 {
		t.Fatalf("Dump(4) = %v", last4)
	}
	if !strings.Contains(FormatDump(events), "enqueue") {
		t.Fatalf("FormatDump missing kind name")
	}
	// Arg saturation: huge args clamp instead of corrupting the ID bits.
	rec.Record(EvNetRead, 7, 1<<40)
	ev := rec.Dump(1)[0]
	if ev.ID != 7 || ev.Arg != 1<<argBits-1 {
		t.Fatalf("saturated event = %+v", ev)
	}
}

func TestRecorderConcurrentDumpIsRaceFree(t *testing.T) {
	rec := NewRecorder(64)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				rec.Record(EvDequeue, uint32(i), 1)
			}
		}
	}()
	for i := 0; i < 100; i++ {
		_ = rec.Dump(0)
	}
	close(stop)
	wg.Wait()
}

func TestPrometheusExposition(t *testing.T) {
	r := New(2, 0)
	r.Counter("worker_invocations", "body invocations").Add(0, 7)
	r.Histogram("invoke_ns", "body latency", "ns").Observe(1500)
	r.GaugeFunc("pool_free", "free nodes", func() uint64 { return 42 })
	var sb strings.Builder
	r.WritePrometheus(&sb)
	out := sb.String()
	for _, want := range []string{
		"# TYPE worker_invocations_total counter",
		"worker_invocations_total 7",
		"# TYPE invoke_ns histogram",
		`invoke_ns_bucket{le="2047"} 1`,
		`invoke_ns_bucket{le="+Inf"} 1`,
		"invoke_ns_sum 1500",
		"invoke_ns_count 1",
		"# TYPE pool_free gauge",
		"pool_free 42",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q in:\n%s", want, out)
		}
	}
}

func TestServeMetricsEndpoint(t *testing.T) {
	r := New(1, 0)
	r.Counter("hits", "").Inc(0)
	addr, stop, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	defer stop()
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	buf := make([]byte, 4096)
	n, _ := resp.Body.Read(buf)
	if !strings.Contains(string(buf[:n]), "hits_total 1") {
		t.Fatalf("metrics body missing counter: %s", buf[:n])
	}
	resp2, err := http.Get("http://" + addr + "/dump")
	if err != nil {
		t.Fatalf("GET /dump: %v", err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != 200 {
		t.Fatalf("/dump status = %d", resp2.StatusCode)
	}
}

func TestWriteSummary(t *testing.T) {
	r := New(1, 0)
	r.Counter("b_counter", "").Add(0, 3)
	r.Histogram("a_hist", "", "ns").Observe(10)
	var sb strings.Builder
	r.WriteSummary(&sb)
	out := sb.String()
	if !strings.Contains(out, "b_counter=3") || !strings.Contains(out, "a_hist count=1") {
		t.Fatalf("summary = %q", out)
	}
	// Sorted: a_hist line before b_counter line.
	if strings.Index(out, "a_hist") > strings.Index(out, "b_counter") {
		t.Fatalf("summary not sorted: %q", out)
	}
}
