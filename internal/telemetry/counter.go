package telemetry

import "sync/atomic"

// cell is one per-worker counter shard, padded out to a cache line so
// two workers bumping adjacent shards never bounce a line between cores
// (the false-sharing trap every sharded-counter design exists to avoid).
type cell struct {
	v atomic.Uint64
	_ [56]byte
}

// Counter is a monotonically increasing counter sharded per worker.
// Writers pick their shard (their worker index); reads sum all shards.
// A nil *Counter is a no-op — the disabled-telemetry fast path.
type Counter struct {
	name, help string
	mask       int
	cells      []cell
}

func newCounter(name, help string, shards int) *Counter {
	n := 1
	for n < shards {
		n <<= 1
	}
	return &Counter{name: name, help: help, mask: n - 1, cells: make([]cell, n)}
}

// Name returns the registered metric name.
func (c *Counter) Name() string {
	if c == nil {
		return ""
	}
	return c.name
}

// Add increments the counter by n on the given shard. Any shard index is
// legal (masked into range), so callers off the worker threads can pass
// whatever identity they have.
func (c *Counter) Add(shard int, n uint64) {
	if c == nil {
		return
	}
	c.cells[shard&c.mask].v.Add(n)
}

// Inc is Add(shard, 1).
func (c *Counter) Inc(shard int) {
	if c == nil {
		return
	}
	c.cells[shard&c.mask].v.Add(1)
}

// Total sums all shards. The sum is not an atomic snapshot across
// shards; like all telemetry reads it is for monitoring, not
// coordination.
func (c *Counter) Total() uint64 {
	if c == nil {
		return 0
	}
	var t uint64
	for i := range c.cells {
		t += c.cells[i].v.Load()
	}
	return t
}
