// Package telemetry is the always-on observability subsystem of the
// EActors runtime: per-worker sharded counters, log-bucketed latency
// histograms, windowed rate meters and a fixed-size flight recorder per
// worker. It is designed around two constraints that SGX systems impose
// on measurement (cf. Stress-SGX and the SGX benchmarking literature):
//
//   - The zero case must stay zero-cost. Every instrument is usable as a
//     nil pointer: a nil *Counter, *Histogram or *Recorder is a
//     compiled-in no-op whose hot-path cost is one predictable branch.
//     The runtime only allocates instruments when Config.Telemetry is
//     set, so deployments that do not observe pay (almost) nothing.
//
//   - The hot path must not serialise. Counters are sharded per worker
//     with cache-line padding (no false sharing between workers),
//     histogram buckets are independent atomics, and the flight recorder
//     is a power-of-two ring claimed with a single atomic index bump.
//
// Aggregation happens on the read side only: Total(), Snapshot() and the
// Prometheus exposition walk the shards. Readers are expected to be rare
// (a MONITOR eactor tick, an HTTP scrape); writers are the per-message
// fast paths.
package telemetry

import (
	"fmt"
	"io"
	"sort"
	"sync"
)

// Registry holds a deployment's instruments plus its per-worker flight
// recorders. Instruments are registered once at wiring time (get-or-
// create by name, mutex-protected) and then used lock-free; the registry
// is safe for concurrent use.
type Registry struct {
	shards int

	mu        sync.Mutex
	counters  map[string]*Counter
	hists     map[string]*Histogram
	funcs     map[string]*FuncMetric
	order     []string // registration order for stable exposition
	recorders []*Recorder
	system    *Recorder
}

// DefaultRecorderSize is the per-worker flight-recorder ring size.
const DefaultRecorderSize = 1024

// New creates a registry for a deployment with the given worker count.
// Each worker gets a flight recorder of recorderSize events (rounded up
// to a power of two; DefaultRecorderSize when zero), plus one extra
// "system" recorder for events that occur off the worker threads (EPC
// evictions, platform seal ops, I/O pumps).
func New(workers, recorderSize int) *Registry {
	if workers < 1 {
		workers = 1
	}
	if recorderSize <= 0 {
		recorderSize = DefaultRecorderSize
	}
	r := &Registry{
		shards:   workers,
		counters: make(map[string]*Counter),
		hists:    make(map[string]*Histogram),
		funcs:    make(map[string]*FuncMetric),
	}
	r.recorders = make([]*Recorder, workers)
	for i := range r.recorders {
		r.recorders[i] = NewRecorder(recorderSize)
	}
	r.system = NewRecorder(recorderSize)
	return r
}

// Shards returns the worker count the registry was built for.
func (r *Registry) Shards() int {
	if r == nil {
		return 0
	}
	return r.shards
}

// Recorder returns the flight recorder of the given worker (nil on a nil
// registry, so call sites need no guard). Out-of-range workers get the
// system recorder.
func (r *Registry) Recorder(worker int) *Recorder {
	if r == nil {
		return nil
	}
	if worker < 0 || worker >= len(r.recorders) {
		return r.system
	}
	return r.recorders[worker]
}

// SystemRecorder returns the recorder for events raised off the worker
// threads (platform-level evictions, pump I/O).
func (r *Registry) SystemRecorder() *Recorder {
	if r == nil {
		return nil
	}
	return r.system
}

// Counter returns the named sharded counter, creating it on first use.
// Returns nil on a nil registry so disabled telemetry composes with the
// nil-receiver no-ops of the instruments.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	c := newCounter(name, help, r.shards)
	r.counters[name] = c
	r.order = append(r.order, name)
	return c
}

// Histogram returns the named log-bucketed histogram, creating it on
// first use. unit is the observation unit ("ns" for latencies, "msgs"
// for batch sizes, ...), recorded in the exposition HELP line.
func (r *Registry) Histogram(name, help, unit string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[name]; ok {
		return h
	}
	h := newHistogram(name, help, unit)
	r.hists[name] = h
	r.order = append(r.order, name)
	return h
}

// FuncMetric adapts an existing counter (an atomic the subsystem already
// maintains) into the registry: fn is called at read time. This is how
// pre-telemetry sources of truth — endpoint traffic counters, platform
// simulator stats, pool occupancy — are exposed without duplicating
// state: Report() and /metrics read the same underlying atomics.
type FuncMetric struct {
	name, help string
	gauge      bool
	fn         func() uint64
}

// CounterFunc registers a read-time counter backed by fn (monotonic).
func (r *Registry) CounterFunc(name, help string, fn func() uint64) {
	r.addFunc(name, help, false, fn)
}

// GaugeFunc registers a read-time gauge backed by fn (may go down:
// queue depths, pool free counts, online sessions).
func (r *Registry) GaugeFunc(name, help string, fn func() uint64) {
	r.addFunc(name, help, true, fn)
}

func (r *Registry) addFunc(name, help string, gauge bool, fn func() uint64) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.funcs[name]; ok {
		return
	}
	r.funcs[name] = &FuncMetric{name: name, help: help, gauge: gauge, fn: fn}
	r.order = append(r.order, name)
}

// CounterValue returns the current total of a named counter or func
// metric, and whether it exists. Aggregation helpers for MONITOR.
func (r *Registry) CounterValue(name string) (uint64, bool) {
	if r == nil {
		return 0, false
	}
	r.mu.Lock()
	c, cok := r.counters[name]
	f, fok := r.funcs[name]
	r.mu.Unlock()
	if cok {
		return c.Total(), true
	}
	if fok {
		return f.fn(), true
	}
	return 0, false
}

// HistogramSnapshot returns a snapshot of a named histogram.
func (r *Registry) HistogramSnapshot(name string) (HistSnapshot, bool) {
	if r == nil {
		return HistSnapshot{}, false
	}
	r.mu.Lock()
	h, ok := r.hists[name]
	r.mu.Unlock()
	if !ok {
		return HistSnapshot{}, false
	}
	return h.Snapshot(), true
}

// Each walks all registered metrics in registration order, invoking the
// matching callback per kind. Histograms are passed as snapshots; the
// walk takes the registry mutex only to copy the name list, so slow
// consumers do not block registration.
func (r *Registry) Each(counter func(name, help string, total uint64, gauge bool), hist func(name, help, unit string, snap HistSnapshot)) {
	if r == nil {
		return
	}
	r.mu.Lock()
	names := append([]string(nil), r.order...)
	r.mu.Unlock()
	for _, name := range names {
		r.mu.Lock()
		c := r.counters[name]
		h := r.hists[name]
		f := r.funcs[name]
		r.mu.Unlock()
		switch {
		case c != nil && counter != nil:
			counter(c.name, c.help, c.Total(), false)
		case f != nil && counter != nil:
			counter(f.name, f.help, f.fn(), f.gauge)
		case h != nil && hist != nil:
			hist(h.name, h.help, h.unit, h.Snapshot())
		}
	}
}

// WriteSummary renders a compact human-readable aggregate: every counter
// total and every histogram's count/p50/p99/max, sorted by name. MONITOR
// answers "stats" queries with this.
func (r *Registry) WriteSummary(w io.Writer) {
	if r == nil {
		return
	}
	type line struct{ name, text string }
	var lines []line
	r.Each(
		func(name, _ string, total uint64, _ bool) {
			lines = append(lines, line{name, fmt.Sprintf("%s=%d\n", name, total)})
		},
		func(name, _, unit string, s HistSnapshot) {
			lines = append(lines, line{name, fmt.Sprintf("%s count=%d p50=%d p99=%d max=%d %s\n",
				name, s.Count, s.Quantile(0.50), s.Quantile(0.99), s.Max, unit)})
		},
	)
	sort.Slice(lines, func(i, j int) bool { return lines[i].name < lines[j].name })
	for _, l := range lines {
		io.WriteString(w, l.text)
	}
}
