package telemetry

import (
	"testing"
	"time"
)

// The instrument micro-costs below bound what instrumentation can add to
// a hot path; EXPERIMENTS.md cites them next to the end-to-end channel
// overhead numbers.

func BenchmarkCounterInc(b *testing.B) {
	r := New(4, 0)
	c := r.Counter("bench", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc(1)
	}
}

func BenchmarkCounterIncNil(b *testing.B) {
	var c *Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc(1)
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	r := New(1, 0)
	h := r.Histogram("bench", "", "ns")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(uint64(i))
	}
}

func BenchmarkHistogramObserveSince(b *testing.B) {
	r := New(1, 0)
	h := r.Histogram("bench", "", "ns")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.ObserveSince(time.Now())
	}
}

func BenchmarkRecorderRecord(b *testing.B) {
	rec := NewRecorder(1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rec.Record(EvEnqueue, 1, 64)
	}
}

func BenchmarkRecorderRecordNil(b *testing.B) {
	var rec *Recorder
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rec.Record(EvEnqueue, 1, 64)
	}
}
