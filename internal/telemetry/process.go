package telemetry

import (
	"os"
	"runtime"
	"runtime/metrics"
	"strconv"
	"strings"
	"time"
)

// processStart anchors the uptime gauge at package init — close enough
// to process start for the exporter's purposes.
var processStart = time.Now()

// RegisterProcessMetrics registers process-level self-metrics next to
// the runtime counters, so a Prometheus scrape of an eactors service
// carries its own context (build, uptime, memory, GC) without a
// sidecar node exporter:
//
//	eactors_build_info{go_version="..."}  constant 1
//	eactors_process_uptime_seconds        seconds since process start
//	eactors_process_goroutines            live goroutines
//	eactors_process_rss_bytes             resident set size
//	eactors_process_gc_pause_p99_ns       99th-percentile GC pause
//
// Registration is idempotent (the registry dedupes by name) and a nil
// registry is a no-op, matching the rest of the package.
func RegisterProcessMetrics(r *Registry) {
	if r == nil {
		return
	}
	r.GaugeFunc("eactors_build_info{go_version=\""+runtime.Version()+"\"}",
		"build metadata carried in labels", func() uint64 { return 1 })
	r.GaugeFunc("eactors_process_uptime_seconds", "seconds since process start",
		func() uint64 { return uint64(time.Since(processStart).Seconds()) })
	r.GaugeFunc("eactors_process_goroutines", "live goroutines",
		func() uint64 { return uint64(runtime.NumGoroutine()) })
	r.GaugeFunc("eactors_process_rss_bytes", "resident set size",
		func() uint64 { return rssBytes() })
	r.GaugeFunc("eactors_process_gc_pause_p99_ns", "99th-percentile GC stop-the-world pause",
		func() uint64 { return gcPauseP99Ns() })
}

// rssBytes reads the resident set from /proc/self/statm (field 2, in
// pages). Off Linux — or if the read fails — it falls back to the Go
// heap's OS-claimed bytes, which overstates shared pages but keeps the
// gauge meaningful.
func rssBytes() uint64 {
	if data, err := os.ReadFile("/proc/self/statm"); err == nil {
		fields := strings.Fields(string(data))
		if len(fields) >= 2 {
			if pages, err := strconv.ParseUint(fields[1], 10, 64); err == nil {
				return pages * uint64(os.Getpagesize())
			}
		}
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.Sys
}

// gcPauseP99Ns walks the runtime/metrics GC pause histogram for its
// 99th percentile. Returns 0 until the first GC.
func gcPauseP99Ns() uint64 {
	sample := []metrics.Sample{{Name: "/sched/pauses/total/gc:seconds"}}
	metrics.Read(sample)
	if sample[0].Value.Kind() != metrics.KindFloat64Histogram {
		// Older runtimes expose the histogram under the pre-1.21 name.
		sample[0].Name = "/gc/pauses:seconds"
		metrics.Read(sample)
		if sample[0].Value.Kind() != metrics.KindFloat64Histogram {
			return 0
		}
	}
	h := sample[0].Value.Float64Histogram()
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	target := uint64(float64(total) * 0.99)
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if cum >= target {
			// Buckets[i+1] is the bucket's upper edge; the last bucket's
			// edge can be +Inf, where the lower edge is the best answer.
			edge := h.Buckets[i+1]
			if edge > 1e9 || edge != edge { // +Inf or NaN guard
				edge = h.Buckets[i]
			}
			return uint64(edge * 1e9)
		}
	}
	return 0
}
