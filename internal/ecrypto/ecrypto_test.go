package ecrypto

import (
	"bytes"
	"sync"
	"testing"
	"testing/quick"
)

func testKey(b byte) [KeySize]byte {
	var k [KeySize]byte
	for i := range k {
		k[i] = b
	}
	return k
}

func TestCipherRoundTrip(t *testing.T) {
	c, err := NewCipher(testKey(1), 7)
	if err != nil {
		t.Fatalf("NewCipher: %v", err)
	}
	plaintext := []byte("the quick brown fox")
	aad := []byte("channel-3")
	blob := c.Seal(nil, plaintext, aad)
	if len(blob) != SealedLen(len(plaintext)) {
		t.Fatalf("blob len = %d, want %d", len(blob), SealedLen(len(plaintext)))
	}
	if bytes.Contains(blob, plaintext) {
		t.Fatal("ciphertext contains plaintext")
	}
	got, err := c.Open(nil, blob, aad)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if !bytes.Equal(got, plaintext) {
		t.Fatalf("Open = %q, want %q", got, plaintext)
	}
}

func TestCipherCrossDirection(t *testing.T) {
	// Two endpoints share a key but use distinct direction tags; each
	// must decrypt the other's output.
	key := testKey(2)
	a, _ := NewCipher(key, 0)
	b, _ := NewCipher(key, 1)
	blob := a.Seal(nil, []byte("ping"), nil)
	got, err := b.Open(nil, blob, nil)
	if err != nil || string(got) != "ping" {
		t.Fatalf("cross-direction Open = %q, %v", got, err)
	}
}

func TestCipherNoncesUnique(t *testing.T) {
	c, _ := NewCipher(testKey(3), 0)
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		blob := c.Seal(nil, []byte("x"), nil)
		nonce := string(blob[:12])
		if seen[nonce] {
			t.Fatal("nonce reused")
		}
		seen[nonce] = true
	}
}

func TestCipherTamperDetection(t *testing.T) {
	c, _ := NewCipher(testKey(4), 0)
	blob := c.Seal(nil, []byte("payload"), nil)
	blob[len(blob)-1] ^= 1
	if _, err := c.Open(nil, blob, nil); err != ErrAuthFailed {
		t.Fatalf("tampered Open err = %v, want ErrAuthFailed", err)
	}
}

func TestCipherWrongAAD(t *testing.T) {
	c, _ := NewCipher(testKey(5), 0)
	blob := c.Seal(nil, []byte("payload"), []byte("a"))
	if _, err := c.Open(nil, blob, []byte("b")); err == nil {
		t.Fatal("wrong AAD accepted")
	}
}

func TestCipherWrongKey(t *testing.T) {
	c1, _ := NewCipher(testKey(6), 0)
	c2, _ := NewCipher(testKey(7), 0)
	blob := c1.Seal(nil, []byte("payload"), nil)
	if _, err := c2.Open(nil, blob, nil); err == nil {
		t.Fatal("wrong key accepted")
	}
}

func TestCipherShortBlob(t *testing.T) {
	c, _ := NewCipher(testKey(8), 0)
	if _, err := c.Open(nil, make([]byte, Overhead-1), nil); err != ErrCiphertextTooShort {
		t.Fatalf("short blob err = %v, want ErrCiphertextTooShort", err)
	}
}

func TestCipherConcurrentSeal(t *testing.T) {
	c, _ := NewCipher(testKey(9), 0)
	var wg sync.WaitGroup
	var mu sync.Mutex
	nonces := map[string]bool{}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				blob := c.Seal(nil, []byte("m"), nil)
				mu.Lock()
				if nonces[string(blob[:12])] {
					t.Error("nonce collision under concurrency")
					mu.Unlock()
					return
				}
				nonces[string(blob[:12])] = true
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
}

func TestCipherQuick(t *testing.T) {
	c, _ := NewCipher(testKey(10), 0)
	f := func(plaintext, aad []byte) bool {
		blob := c.Seal(nil, plaintext, aad)
		got, err := c.Open(nil, blob, aad)
		if err != nil {
			return false
		}
		return bytes.Equal(got, plaintext)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSealIntoDst(t *testing.T) {
	c, _ := NewCipher(testKey(11), 0)
	prefix := []byte("hdr:")
	blob := c.Seal(append([]byte{}, prefix...), []byte("body"), nil)
	if !bytes.HasPrefix(blob, prefix) {
		t.Fatal("Seal did not append to dst")
	}
	got, err := c.Open(nil, blob[len(prefix):], nil)
	if err != nil || string(got) != "body" {
		t.Fatalf("Open after prefix strip = %q, %v", got, err)
	}
}

func TestDeriveKeyDistinct(t *testing.T) {
	parent := testKey(12)
	a := DeriveKey(parent, "a")
	b := DeriveKey(parent, "b")
	if a == b {
		t.Fatal("different labels derived identical keys")
	}
	if a == parent || b == parent {
		t.Fatal("derived key equals parent")
	}
	if a != DeriveKey(parent, "a") {
		t.Fatal("derivation is not deterministic")
	}
}

func TestDeterministicRoundTrip(t *testing.T) {
	d, err := NewDeterministic(testKey(13))
	if err != nil {
		t.Fatalf("NewDeterministic: %v", err)
	}
	blob1 := d.Seal([]byte("user:alice"))
	blob2 := d.Seal([]byte("user:alice"))
	if !bytes.Equal(blob1, blob2) {
		t.Fatal("deterministic sealer produced differing ciphertexts")
	}
	blob3 := d.Seal([]byte("user:bob"))
	if bytes.Equal(blob1, blob3) {
		t.Fatal("different plaintexts sealed identically")
	}
	got, err := d.Open(blob1)
	if err != nil || string(got) != "user:alice" {
		t.Fatalf("Open = %q, %v", got, err)
	}
}

func TestDeterministicTamper(t *testing.T) {
	d, _ := NewDeterministic(testKey(14))
	blob := d.Seal([]byte("value"))
	blob[0] ^= 1
	if _, err := d.Open(blob); err == nil {
		t.Fatal("tampered deterministic blob accepted")
	}
	if _, err := d.Open(make([]byte, 3)); err != ErrCiphertextTooShort {
		t.Fatal("short deterministic blob not rejected")
	}
}

func TestDeterministicQuick(t *testing.T) {
	d, _ := NewDeterministic(testKey(15))
	f := func(plaintext []byte) bool {
		blob := d.Seal(plaintext)
		if !bytes.Equal(blob, d.Seal(plaintext)) {
			return false
		}
		got, err := d.Open(blob)
		return err == nil && bytes.Equal(got, plaintext)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
