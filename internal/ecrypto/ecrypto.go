// Package ecrypto provides the cryptographic helpers the EActors runtime
// uses: AEAD sealing for inter-enclave channels, key derivation, and the
// deterministic (SIV-style) encryption the persistent object store needs
// so that encrypted keys remain comparable (Section 4.1: "the storage
// simply compares the encrypted keys").
package ecrypto

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"sync/atomic"
)

// KeySize is the AES-256 key size used throughout.
const KeySize = 32

const nonceSize = 12

// Overhead is the ciphertext expansion of Cipher.Seal (nonce + GCM tag).
const Overhead = nonceSize + 16

// ErrCiphertextTooShort reports a blob shorter than the AEAD envelope.
var ErrCiphertextTooShort = errors.New("ecrypto: ciphertext too short")

// ErrAuthFailed reports an authentication failure during Open.
var ErrAuthFailed = errors.New("ecrypto: message authentication failed")

// DeriveKey derives a subkey from a parent key and a label, HKDF-style
// (single-block HMAC-SHA256 expansion, sufficient for 32-byte outputs).
func DeriveKey(parent [KeySize]byte, label string) [KeySize]byte {
	mac := hmac.New(sha256.New, parent[:])
	mac.Write([]byte(label))
	mac.Write([]byte{0x01})
	var out [KeySize]byte
	copy(out[:], mac.Sum(nil))
	return out
}

// Cipher is an AES-256-GCM sealer with an explicit per-message nonce
// carried in the ciphertext. Nonces combine a caller-chosen 4-byte
// direction tag with a 64-bit counter, so the two endpoints of a
// bidirectional channel can share one key without nonce collisions.
// Cipher is safe for concurrent use.
type Cipher struct {
	aead    cipher.AEAD
	dirTag  uint32
	counter atomic.Uint64
}

// NewCipher builds a sealer from a 32-byte key and a direction tag.
func NewCipher(key [KeySize]byte, dirTag uint32) (*Cipher, error) {
	block, err := aes.NewCipher(key[:])
	if err != nil {
		return nil, fmt.Errorf("ecrypto: %w", err)
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("ecrypto: %w", err)
	}
	return &Cipher{aead: aead, dirTag: dirTag}, nil
}

// Seal encrypts plaintext into dst (which may be nil) and returns the
// blob nonce||ciphertext||tag. aad is authenticated but not encrypted.
func (c *Cipher) Seal(dst, plaintext, aad []byte) []byte {
	var nonce [nonceSize]byte
	binary.BigEndian.PutUint32(nonce[:4], c.dirTag)
	binary.BigEndian.PutUint64(nonce[4:], c.counter.Add(1))
	dst = append(dst, nonce[:]...)
	return c.aead.Seal(dst, nonce[:], plaintext, aad)
}

// Open authenticates and decrypts a blob produced by Seal with the same
// key (any direction tag) and aad, appending the plaintext to dst.
func (c *Cipher) Open(dst, blob, aad []byte) ([]byte, error) {
	if len(blob) < Overhead {
		return nil, ErrCiphertextTooShort
	}
	out, err := c.aead.Open(dst, blob[:nonceSize], blob[nonceSize:], aad)
	if err != nil {
		return nil, ErrAuthFailed
	}
	return out, nil
}

// SealedLen returns the blob size for a plaintext of n bytes.
func SealedLen(n int) int { return n + Overhead }

// BlobCounter extracts the sender's message counter from a sealed blob's
// explicit nonce (for replay checks after authentication succeeded).
// Returns 0 for blobs shorter than a nonce.
func BlobCounter(blob []byte) uint64 {
	if len(blob) < nonceSize {
		return 0
	}
	return binary.BigEndian.Uint64(blob[4:nonceSize])
}

// Deterministic is an SIV-style deterministic AEAD: the nonce is a MAC of
// the plaintext, so equal plaintexts produce equal ciphertexts. The POS
// uses it for keys, making hash-bucket lookup and comparison possible on
// ciphertext alone. (Equality of plaintexts is deliberately revealed —
// that is the point — but nothing else is.)
type Deterministic struct {
	aead   cipher.AEAD
	macKey [KeySize]byte
}

// NewDeterministic builds a deterministic sealer from a 32-byte key.
func NewDeterministic(key [KeySize]byte) (*Deterministic, error) {
	encKey := DeriveKey(key, "siv-enc")
	macKey := DeriveKey(key, "siv-mac")
	block, err := aes.NewCipher(encKey[:])
	if err != nil {
		return nil, fmt.Errorf("ecrypto: %w", err)
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("ecrypto: %w", err)
	}
	return &Deterministic{aead: aead, macKey: macKey}, nil
}

// Seal deterministically encrypts plaintext: same input, same output.
func (d *Deterministic) Seal(plaintext []byte) []byte {
	mac := hmac.New(sha256.New, d.macKey[:])
	mac.Write(plaintext)
	sum := mac.Sum(nil)
	blob := make([]byte, nonceSize, SealedLen(len(plaintext)))
	copy(blob, sum[:nonceSize])
	return d.aead.Seal(blob, blob[:nonceSize], plaintext, nil)
}

// Open decrypts a blob produced by Seal.
func (d *Deterministic) Open(blob []byte) ([]byte, error) {
	if len(blob) < Overhead {
		return nil, ErrCiphertextTooShort
	}
	out, err := d.aead.Open(nil, blob[:nonceSize], blob[nonceSize:], nil)
	if err != nil {
		return nil, ErrAuthFailed
	}
	return out, nil
}
