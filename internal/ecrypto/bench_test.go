package ecrypto

import (
	"fmt"
	"testing"
)

// BenchmarkCipherSeal measures the transparent channel-encryption cost
// (the EA-ENC overhead of Figure 11).
func BenchmarkCipherSeal(b *testing.B) {
	c, err := NewCipher([KeySize]byte{1}, 0)
	if err != nil {
		b.Fatal(err)
	}
	for _, size := range []int{64, 4096, 65536} {
		b.Run(fmt.Sprintf("size=%d", size), func(b *testing.B) {
			plaintext := make([]byte, size)
			dst := make([]byte, 0, SealedLen(size))
			b.SetBytes(int64(size))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dst = c.Seal(dst[:0], plaintext, nil)
			}
		})
	}
}

func BenchmarkCipherSealOpen(b *testing.B) {
	c, err := NewCipher([KeySize]byte{2}, 0)
	if err != nil {
		b.Fatal(err)
	}
	plaintext := make([]byte, 150) // the messaging payload size
	var blob, out []byte
	b.SetBytes(150)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blob = c.Seal(blob[:0], plaintext, nil)
		var err error
		out, err = c.Open(out[:0], blob, nil)
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDeterministicSeal(b *testing.B) {
	d, err := NewDeterministic([KeySize]byte{3})
	if err != nil {
		b.Fatal(err)
	}
	key := []byte("user:benchmark-client")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = d.Seal(key)
	}
}

func BenchmarkDeriveKey(b *testing.B) {
	parent := [KeySize]byte{4}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = DeriveKey(parent, "bench-label")
	}
}
