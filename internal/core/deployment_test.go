package core

import (
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"
)

const testDeployment = `{
  "enclaves": [
    {"name": "left", "privatePoolNodes": 8},
    {"name": "right"}
  ],
  "workers": [{}, {"cpus": [0]}],
  "actors": [
    {"name": "ping", "type": "pinger", "enclave": "left", "worker": 0},
    {"name": "pong", "type": "ponger", "enclave": "right", "worker": 1}
  ],
  "channels": [
    {"name": "pp", "a": "ping", "b": "pong", "capacity": 8}
  ],
  "poolNodes": 32,
  "nodePayload": 128,
  "idleSleepMicros": 500
}`

func testRegistry(rounds *atomic.Int64, target int64) Registry {
	reg := Registry{}
	type pingState struct{ first bool }
	_ = reg.Register("pinger", RegisteredActor{
		NewState: func() any { return &pingState{first: true} },
		Body: func(self *Self) {
			st := self.State.(*pingState)
			ch := self.MustChannel("pp")
			buf := make([]byte, 8)
			if st.first {
				st.first = false
				_ = ch.Send([]byte("ping")) //sendcheck:ok
				self.Progress()
				return
			}
			if _, ok, _ := ch.Recv(buf); ok {
				if rounds.Add(1) >= target {
					self.StopRuntime()
					return
				}
				_ = ch.Send([]byte("ping")) //sendcheck:ok
				self.Progress()
			}
		},
	})
	_ = reg.Register("ponger", RegisteredActor{
		Body: func(self *Self) {
			ch := self.MustChannel("pp")
			buf := make([]byte, 8)
			if _, ok, _ := ch.Recv(buf); ok {
				_ = ch.Send([]byte("pong")) //sendcheck:ok
				self.Progress()
			}
		},
	})
	return reg
}

func TestDeploymentEndToEnd(t *testing.T) {
	path := filepath.Join(t.TempDir(), "deploy.json")
	if err := os.WriteFile(path, []byte(testDeployment), 0o644); err != nil {
		t.Fatal(err)
	}
	d, err := LoadDeployment(path)
	if err != nil {
		t.Fatalf("LoadDeployment: %v", err)
	}
	var rounds atomic.Int64
	cfg, err := d.Resolve(testRegistry(&rounds, 25))
	if err != nil {
		t.Fatalf("Resolve: %v", err)
	}
	if cfg.PoolNodes != 32 || cfg.NodePayload != 128 {
		t.Fatalf("pool geometry = %d/%d", cfg.PoolNodes, cfg.NodePayload)
	}
	if cfg.IdleSleep != 500*time.Microsecond {
		t.Fatalf("IdleSleep = %v", cfg.IdleSleep)
	}
	rt, err := NewRuntime(zeroPlatform(), cfg)
	if err != nil {
		t.Fatalf("NewRuntime: %v", err)
	}
	if err := rt.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	waitOrFatal(t, rt, 10*time.Second)
	rt.Stop()
	if rounds.Load() < 25 {
		t.Fatalf("rounds = %d", rounds.Load())
	}
	// The deployed channel crosses enclaves → encrypted.
	ch, _ := rt.ChannelByName("pp")
	if !ch.Encrypted() {
		t.Fatal("cross-enclave deployed channel not encrypted")
	}
	// Private pool materialised from the file.
	if _, ok := rt.PrivatePool("left"); !ok {
		t.Fatal("private pool from deployment file missing")
	}
}

func TestDeploymentRedeployOtherPlacement(t *testing.T) {
	// The same registry deploys untrusted on one worker — the paper's
	// flexibility claim, exercised through the file mechanism.
	flat := `{
	  "workers": [{}],
	  "actors": [
	    {"name": "ping", "type": "pinger", "worker": 0},
	    {"name": "pong", "type": "ponger", "worker": 0}
	  ],
	  "channels": [{"name": "pp", "a": "ping", "b": "pong"}]
	}`
	d, err := ParseDeployment([]byte(flat))
	if err != nil {
		t.Fatal(err)
	}
	var rounds atomic.Int64
	cfg, err := d.Resolve(testRegistry(&rounds, 25))
	if err != nil {
		t.Fatal(err)
	}
	rt, err := NewRuntime(zeroPlatform(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	waitOrFatal(t, rt, 10*time.Second)
	rt.Stop()
	if rounds.Load() < 25 {
		t.Fatalf("rounds = %d", rounds.Load())
	}
}

func TestDeploymentErrors(t *testing.T) {
	if _, err := ParseDeployment([]byte(`{"bogusField": 1}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
	if _, err := ParseDeployment([]byte(`not json`)); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := LoadDeployment("/nonexistent/deploy.json"); err == nil {
		t.Fatal("missing file accepted")
	}

	d, err := ParseDeployment([]byte(`{
	  "workers": [{}],
	  "actors": [{"name": "x", "type": "ghost", "worker": 0}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Resolve(Registry{}); err == nil {
		t.Fatal("unknown actor type accepted")
	}
}

func TestRegistryValidation(t *testing.T) {
	reg := Registry{}
	body := func(*Self) {}
	if err := reg.Register("", RegisteredActor{Body: body}); err == nil {
		t.Fatal("empty type name accepted")
	}
	if err := reg.Register("nobody", RegisteredActor{}); err == nil {
		t.Fatal("bodyless actor accepted")
	}
	if err := reg.Register("ok", RegisteredActor{Body: body}); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if err := reg.Register("ok", RegisteredActor{Body: body}); err == nil {
		t.Fatal("duplicate type accepted")
	}
}
