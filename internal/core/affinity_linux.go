//go:build linux

package core

import (
	"syscall"
	"unsafe"
)

// setAffinity pins the calling OS thread to the given CPU set, the Go
// analogue of the paper's worker-to-CPU binding (Figure 2). Best effort:
// failures are reported but non-fatal, since deployments on small or
// containerised hosts may lack the CPUs or the permission.
func setAffinity(cpus []int) error {
	if len(cpus) == 0 {
		return nil
	}
	var mask [16]uint64 // up to 1024 CPUs
	for _, cpu := range cpus {
		if cpu < 0 || cpu >= len(mask)*64 {
			continue
		}
		mask[cpu/64] |= 1 << (uint(cpu) % 64)
	}
	_, _, errno := syscall.RawSyscall(
		syscall.SYS_SCHED_SETAFFINITY,
		0, // current thread
		uintptr(len(mask)*8),
		uintptr(unsafe.Pointer(&mask[0])),
	)
	if errno != 0 {
		return errno
	}
	return nil
}
