package core

import (
	"errors"
	"fmt"
	"runtime"
	"testing"
)

// benchChannelPingPong measures one direction of the channel hop:
// sender enqueues, receiver drains, batch messages at a time (batch=1
// is the classic Send/Recv path). All variants count messages, so the
// per-op numbers compare directly.
func benchChannelPingPong(b *testing.B, encrypted bool, batch int) {
	src, dst, _ := buildPair(b, encrypted, 256, 512, 256)
	payload := make([]byte, 64)
	b.ReportAllocs()
	if batch == 1 {
		buf := make([]byte, 256)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := src.Send(payload); err != nil {
				b.Fatal(err)
			}
			if _, ok, err := dst.Recv(buf); !ok || err != nil {
				b.Fatalf("Recv: ok=%v err=%v", ok, err)
			}
		}
		return
	}
	payloads := make([][]byte, batch)
	for i := range payloads {
		payloads[i] = payload
	}
	bufs, lens := BatchBufs(batch, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i += batch {
		sent, err := src.SendBatch(payloads)
		if err != nil || sent != batch {
			b.Fatalf("SendBatch = %d, %v", sent, err)
		}
		got, err := dst.RecvBatch(bufs, lens)
		if err != nil || got != batch {
			b.Fatalf("RecvBatch = %d, %v", got, err)
		}
	}
}

func BenchmarkChannelSingle(b *testing.B) {
	b.Run("plain", func(b *testing.B) { benchChannelPingPong(b, false, 1) })
	b.Run("enc", func(b *testing.B) { benchChannelPingPong(b, true, 1) })
}

func BenchmarkChannelBatch16(b *testing.B) {
	b.Run("plain", func(b *testing.B) { benchChannelPingPong(b, false, 16) })
	b.Run("enc", func(b *testing.B) { benchChannelPingPong(b, true, 16) })
}

func BenchmarkChannelBatch64(b *testing.B) {
	b.Run("plain", func(b *testing.B) { benchChannelPingPong(b, false, 64) })
	b.Run("enc", func(b *testing.B) { benchChannelPingPong(b, true, 64) })
}

// benchChannelPipelined measures a windowed stream: the sender keeps up
// to window messages in flight and the receiver drains opportunistically
// — the shape of real eactor traffic (bursts, not lockstep ping-pong).
// This is where switchless mode earns its keep: the proxy coalesces the
// in-flight run into multi-record segments, paying one AEAD pass per
// run instead of one per message, while the blocking path seals each
// message individually.
func benchChannelPipelined(b *testing.B, src, dst *Endpoint, window int) {
	payload := make([]byte, 64)
	buf := make([]byte, 256)
	b.ReportAllocs()
	b.ResetTimer()
	inflight, received := 0, 0
	for received < b.N {
		for inflight < window && received+inflight < b.N {
			if err := src.Send(payload); err != nil {
				if errors.Is(err, ErrMailboxFull) {
					break
				}
				b.Fatal(err)
			}
			inflight++
		}
		drained := false
		for inflight > 0 {
			_, ok, err := dst.Recv(buf)
			if err != nil {
				b.Fatal(err)
			}
			if !ok {
				break
			}
			inflight--
			received++
			drained = true
		}
		if !drained && inflight > 0 {
			// The proxy needs the CPU to move the window.
			runtime.Gosched()
		}
	}
}

// BenchmarkChannelPipelined uses 2 KiB nodes so a sealed segment has
// room for a whole 16-message window (64 B records + framing); with
// 256 B nodes a segment tops out at 3 records and the coalescing win
// drowns in framing overhead. Node size does not change the per-record
// work of the plain and blocking-encrypted variants.
func BenchmarkChannelPipelined(b *testing.B) {
	const (
		window  = 16
		payload = 2048
	)
	b.Run("plain", func(b *testing.B) {
		src, dst, _ := buildPair(b, false, 256, 512, payload)
		benchChannelPipelined(b, src, dst, window)
	})
	b.Run("enc", func(b *testing.B) {
		src, dst, _ := buildPair(b, true, 256, 512, payload)
		benchChannelPipelined(b, src, dst, window)
	})
	b.Run("switchless", func(b *testing.B) {
		src, dst, _ := buildPairSwitchless(b, 256, 512, payload, 1)
		benchChannelPipelined(b, src, dst, window)
	})
	b.Run("switchless2", func(b *testing.B) {
		src, dst, _ := buildPairSwitchless(b, 256, 512, payload, 2)
		benchChannelPipelined(b, src, dst, window)
	})
	b.Run("switchless4", func(b *testing.B) {
		src, dst, _ := buildPairSwitchless(b, 256, 512, payload, 4)
		benchChannelPipelined(b, src, dst, window)
	})
}

// BenchmarkSwitchlessSingle is the lockstep single-message hop on a
// switchless channel: with the pipeline empty the proxy parks and every
// message takes the inline (blocking-equivalent) path, so this bounds
// the mode's degradation cost rather than its win.
func BenchmarkSwitchlessSingle(b *testing.B) {
	src, dst, _ := buildPairSwitchless(b, 256, 512, 256, 1)
	payload := make([]byte, 64)
	buf := make([]byte, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := src.Send(payload); err != nil {
			b.Fatal(err)
		}
		for {
			_, ok, err := dst.Recv(buf)
			if err != nil {
				b.Fatal(err)
			}
			if ok {
				break
			}
			runtime.Gosched()
		}
	}
}

// BenchmarkChannelFanIn models the system-eactor drain pattern (WRITER,
// FILER, shard router): one consumer actor drains several inbound
// channels per invocation. The batch variant pays one dequeue CAS and
// one pool trip per channel per sweep instead of one per message.
func BenchmarkChannelFanIn(b *testing.B) {
	const (
		producers = 4
		burst     = 16 // messages queued per producer per sweep
	)
	build := func(b *testing.B) (srcs, sinks []*Endpoint) {
		cfg := Config{
			Workers:     []WorkerSpec{{}},
			PoolNodes:   512,
			NodePayload: 256,
			Actors:      []Spec{{Name: "consumer", Worker: 0, Body: func(*Self) {}}},
		}
		for p := 0; p < producers; p++ {
			name := fmt.Sprintf("prod%d", p)
			cfg.Actors = append(cfg.Actors, Spec{Name: name, Worker: 0, Body: func(*Self) {}})
			cfg.Channels = append(cfg.Channels, ChannelSpec{
				Name: fmt.Sprintf("link%d", p), A: name, B: "consumer", Capacity: 64,
			})
		}
		rt, err := NewRuntime(zeroPlatform(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(rt.Stop)
		for p := 0; p < producers; p++ {
			ch := fmt.Sprintf("link%d", p)
			srcs = append(srcs, rt.actors[fmt.Sprintf("prod%d", p)].endpoints[ch])
			sinks = append(sinks, rt.actors["consumer"].endpoints[ch])
		}
		return srcs, sinks
	}
	payload := make([]byte, 64)
	fill := func(b *testing.B, srcs []*Endpoint) {
		for _, src := range srcs {
			for j := 0; j < burst; j++ {
				if err := src.Send(payload); err != nil {
					b.Fatal(err)
				}
			}
		}
	}

	b.Run("single", func(b *testing.B) {
		srcs, sinks := build(b)
		buf := make([]byte, 256)
		b.ResetTimer()
		for i := 0; i < b.N; i += producers * burst {
			b.StopTimer()
			fill(b, srcs)
			b.StartTimer()
			for _, sink := range sinks {
				for {
					if _, ok, err := sink.Recv(buf); !ok || err != nil {
						break
					}
				}
			}
		}
	})
	b.Run("batch", func(b *testing.B) {
		srcs, sinks := build(b)
		bufs, lens := BatchBufs(burst, 256)
		b.ResetTimer()
		for i := 0; i < b.N; i += producers * burst {
			b.StopTimer()
			fill(b, srcs)
			b.StartTimer()
			for _, sink := range sinks {
				if got, err := sink.RecvBatch(bufs, lens); err != nil || got != burst {
					b.Fatalf("RecvBatch = %d, %v", got, err)
				}
			}
		}
	})
}
