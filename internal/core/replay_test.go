package core

import (
	"errors"
	"testing"

	"github.com/eactors/eactors-go/internal/mem"
)

// TestReplayRejected: the hostile runtime re-delivers a captured node;
// the encrypted endpoint must reject the second copy.
func TestReplayRejected(t *testing.T) {
	a, b, _ := buildPair(t, true, 8, 16, 128)
	if err := a.Send([]byte("one-shot message")); err != nil {
		t.Fatal(err)
	}

	// Capture the ciphertext on the wire and craft a duplicate node.
	node, ok := b.in.Dequeue()
	if !ok {
		t.Fatal("no node in flight")
	}
	dup := b.pool.Get()
	if dup == nil {
		t.Fatal("pool empty")
	}
	if err := dup.SetPayload(node.Payload()); err != nil {
		t.Fatal(err)
	}
	b.in.Enqueue(node)
	b.in.Enqueue(dup)

	buf := make([]byte, 128)
	n, ok, err := b.Recv(buf)
	if !ok || err != nil {
		t.Fatalf("first Recv: n=%d ok=%v err=%v", n, ok, err)
	}
	if string(buf[:n]) != "one-shot message" {
		t.Fatalf("first Recv = %q", buf[:n])
	}
	_, ok, err = b.Recv(buf)
	if !ok {
		t.Fatal("replayed message vanished")
	}
	if !errors.Is(err, ErrReplay) {
		t.Fatalf("replay err = %v, want ErrReplay", err)
	}
}

// TestReorderRejected: delivering message 2 before message 1 must fail
// the late message.
func TestReorderRejected(t *testing.T) {
	a, b, _ := buildPair(t, true, 8, 16, 128)
	if err := a.Send([]byte("first")); err != nil {
		t.Fatal(err)
	}
	if err := a.Send([]byte("second")); err != nil {
		t.Fatal(err)
	}
	// The hostile runtime swaps the two nodes.
	n1, _ := b.in.Dequeue()
	n2, _ := b.in.Dequeue()
	b.in.Enqueue(n2)
	b.in.Enqueue(n1)

	buf := make([]byte, 128)
	n, ok, err := b.Recv(buf)
	if !ok || err != nil || string(buf[:n]) != "second" {
		t.Fatalf("swapped Recv = %q ok=%v err=%v", buf[:n], ok, err)
	}
	_, ok, err = b.Recv(buf)
	if !ok || !errors.Is(err, ErrReplay) {
		t.Fatalf("reordered Recv err = %v ok=%v, want ErrReplay", err, ok)
	}
}

// TestReplayRejectedRecvNode covers the zero-copy receive path.
func TestReplayRejectedRecvNode(t *testing.T) {
	a, b, _ := buildPair(t, true, 8, 16, 128)
	if err := a.Send([]byte("zc")); err != nil {
		t.Fatal(err)
	}
	node, _ := b.in.Dequeue()
	var raw []byte
	raw = append(raw, node.Payload()...)
	b.in.Enqueue(node)

	got, ok, err := b.RecvNode()
	if !ok || err != nil {
		t.Fatalf("first RecvNode: %v %v", ok, err)
	}
	b.Release(got)

	dup := b.pool.Get()
	_ = dup.SetPayload(raw)
	b.in.Enqueue(dup)
	var n *mem.Node
	n, ok, err = b.RecvNode()
	if !ok || !errors.Is(err, ErrReplay) || n != nil {
		t.Fatalf("replayed RecvNode = %v ok=%v err=%v", n, ok, err)
	}
	// All nodes back in the pool.
	if free := b.pool.Free(); free != 16 {
		t.Fatalf("pool Free = %d", free)
	}
}

// TestPlaintextChannelNoSeqCheck: plaintext channels carry no counters,
// so duplicates pass (the paper's plaintext mboxes make no integrity
// claims).
func TestPlaintextChannelNoSeqCheck(t *testing.T) {
	a, b, _ := buildPair(t, false, 8, 16, 64)
	if err := a.Send([]byte("dup me")); err != nil {
		t.Fatal(err)
	}
	node, _ := b.in.Dequeue()
	dup := b.pool.Get()
	_ = dup.SetPayload(node.Payload())
	b.in.Enqueue(node)
	b.in.Enqueue(dup)
	buf := make([]byte, 64)
	for i := 0; i < 2; i++ {
		if _, ok, err := b.Recv(buf); !ok || err != nil {
			t.Fatalf("plaintext Recv %d: ok=%v err=%v", i, ok, err)
		}
	}
}
