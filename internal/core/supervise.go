package core

import (
	"bytes"
	"fmt"
	"sort"
	"strings"
	"time"
)

// Restart backoff defaults for RestartPolicy fields left zero.
const (
	DefaultRestartBackoff    = time.Millisecond
	DefaultRestartMaxBackoff = 500 * time.Millisecond
)

// RestartPolicy decides what happens to an eactor after its body
// panics. The paper's runtime parks a faulty eactor forever (Section
// 2.3's blast-radius containment); a policy with OnPanic set trades a
// little of that isolation for availability: the owning worker restarts
// the actor after a capped exponential backoff, on the same worker and
// in the same enclave, with its private state (Spec.State) as the body
// left it.
//
// Restarts are performed by the worker that owns the actor — the only
// thread allowed to touch its endpoints — so no cross-thread handshake
// is needed; the SUPERVISOR system eactor (SupervisorSpec) is the
// observation and manual-override plane on top.
type RestartPolicy struct {
	// OnPanic enables supervised restarts. False (the zero value) keeps
	// the permanent park.
	OnPanic bool

	// MaxRestarts caps the number of restarts; once exceeded the actor
	// parks permanently. 0 means unlimited.
	MaxRestarts int

	// Backoff is the delay before the first restart; each subsequent
	// restart doubles it up to MaxBackoff. Zero values use
	// DefaultRestartBackoff / DefaultRestartMaxBackoff.
	Backoff    time.Duration
	MaxBackoff time.Duration

	// FlushMailbox drops the actor's pending inbound messages at
	// restart (nodes return to their pool). Default keeps the backlog:
	// the restarted body resumes consuming where the panicked one
	// stopped.
	FlushMailbox bool

	// Reinit re-runs Spec.Init at restart (inside the actor's enclave).
	// An Init error counts as another failure and re-parks the actor
	// with the next backoff step.
	Reinit bool
}

// backoff returns the delay before restart number restarts+1.
func (p RestartPolicy) backoff(restarts uint64) time.Duration {
	base, cap := p.Backoff, p.MaxBackoff
	if base <= 0 {
		base = DefaultRestartBackoff
	}
	if cap <= 0 {
		cap = DefaultRestartMaxBackoff
	}
	d := base
	for i := uint64(0); i < restarts && d < cap; i++ {
		d <<= 1
	}
	if d > cap {
		d = cap
	}
	return d
}

// exhausted reports whether the policy allows no further restart after
// `restarts` completed ones.
func (p RestartPolicy) exhausted(restarts uint64) bool {
	if !p.OnPanic {
		return true
	}
	return p.MaxRestarts > 0 && restarts >= uint64(p.MaxRestarts)
}

// ActorSupervision is one actor's supervision snapshot.
type ActorSupervision struct {
	Name     string
	Parked   bool
	Failure  string // last panic value ("" if never failed)
	Restarts uint64
	// NextRestart is the time until the pending restart fires
	// (negative-clamped to 0); false when none is scheduled.
	NextRestart time.Duration
	RestartDue  bool
	Policy      RestartPolicy
}

// Supervision returns the supervision state of every actor, sorted by
// name. Parked actors with OnPanic policies also report their pending
// restart deadline.
func (rt *Runtime) Supervision() []ActorSupervision {
	out := make([]ActorSupervision, 0, len(rt.actors))
	for name, inst := range rt.actors {
		s := ActorSupervision{
			Name:     name,
			Parked:   inst.failed.Load(),
			Restarts: inst.restarts.Load(),
			Policy:   inst.spec.Restart,
		}
		if s.Parked {
			s.Failure = inst.failureText()
			if due := inst.restartAt.Load(); due != 0 {
				s.RestartDue = true
				if d := time.Until(time.Unix(0, due)); d > 0 {
					s.NextRestart = d
				}
			}
		}
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ActorRestarts returns how many times the named actor was restarted.
func (rt *Runtime) ActorRestarts(name string) uint64 {
	inst, ok := rt.actors[name]
	if !ok {
		return 0
	}
	return inst.restarts.Load()
}

// RestartActor forces an immediate restart of a parked actor,
// bypassing its policy's backoff (and even a zero policy — the manual
// override exists precisely for actors configured to park forever).
// The restart itself is still performed by the owning worker on its
// next scheduling round.
func (rt *Runtime) RestartActor(name string) error {
	inst, ok := rt.actors[name]
	if !ok {
		return fmt.Errorf("core: unknown actor %q", name)
	}
	if !inst.failed.Load() {
		return fmt.Errorf("core: actor %q is not parked", name)
	}
	// Target the park we just observed (or a newer one): the worker
	// honours the override only while the generations still match, so
	// if it restarts the actor concurrently the force expires instead
	// of lingering on a healthy actor and bypassing its policy on the
	// next park.
	inst.forceGen.Store(inst.parkGen.Load())
	inst.worker.Wake()
	return nil
}

// SupervisorSpec returns the SUPERVISOR system eactor: the observation
// and control plane of the supervision layer, served over ordinary
// channels like the MONITOR (the paper's system-eactor pattern,
// Section 4). Restart enforcement itself is worker-driven — a
// deployment without a SUPERVISOR still restarts actors per their
// RestartPolicy; the SUPERVISOR adds inspection and manual overrides.
//
// Wire a channel from any eactor to the supervisor and send it one of
// the plain-text commands; the answer returns on the same channel:
//
//	status           one line per actor: parked/healthy, restart count,
//	                 last failure, time until the pending restart
//	failed           only the currently parked actors
//	restart <actor>  force-restart a parked actor now (bypasses backoff
//	                 and policy)
//
// Unlike the MONITOR it does not require Config.Telemetry: it reads
// the runtime's supervision state directly.
func SupervisorSpec(name string, worker int) Spec {
	return Spec{
		Name:   name,
		Worker: worker,
		State:  &supervisorState{},
		Body:   supervisorBody,
	}
}

type supervisorState struct {
	req []byte
}

func supervisorBody(self *Self) {
	st := self.State.(*supervisorState)
	for _, ep := range self.Endpoints() {
		if cap(st.req) < ep.MaxPayload() {
			st.req = make([]byte, ep.MaxPayload())
		}
		for {
			n, ok, err := ep.Recv(st.req[:ep.MaxPayload()])
			if !ok {
				break
			}
			self.Progress()
			if err != nil {
				continue
			}
			reply := supervisorAnswer(self, strings.TrimSpace(string(st.req[:n])))
			if len(reply) > ep.MaxPayload() {
				reply = reply[:ep.MaxPayload()]
			}
			// Supervision must never block; a full reply direction drops
			// the answer and the client's next command gets a fresh one.
			_ = ep.Send(reply) //sendcheck:ok
		}
	}
}

func supervisorAnswer(self *Self, query string) []byte {
	rt := self.Runtime()
	var buf bytes.Buffer
	cmd, arg, _ := strings.Cut(query, " ")
	switch cmd {
	case "status", "failed":
		parked := 0
		for _, s := range rt.Supervision() {
			if s.Parked {
				parked++
			} else if cmd == "failed" {
				continue
			}
			writeSupervision(&buf, s)
		}
		if cmd == "failed" && parked == 0 {
			buf.WriteString("ok: no parked actors\n")
		}
	case "restart":
		actor := strings.TrimSpace(arg)
		if err := rt.RestartActor(actor); err != nil {
			fmt.Fprintf(&buf, "error: %v\n", err)
		} else {
			fmt.Fprintf(&buf, "restart requested: %s\n", actor)
		}
	default:
		fmt.Fprintf(&buf, "error: unknown command %q (status|failed|restart <actor>)", query)
	}
	return buf.Bytes()
}

func writeSupervision(buf *bytes.Buffer, s ActorSupervision) {
	state := "healthy"
	if s.Parked {
		state = "parked"
	}
	fmt.Fprintf(buf, "%s %s restarts=%d", s.Name, state, s.Restarts)
	if s.Parked {
		fmt.Fprintf(buf, " failure=%q", s.Failure)
		switch {
		case s.RestartDue:
			fmt.Fprintf(buf, " next_restart=%s", s.NextRestart.Round(time.Microsecond))
		case s.Policy.OnPanic:
			buf.WriteString(" next_restart=exhausted")
		default:
			buf.WriteString(" next_restart=never")
		}
	}
	buf.WriteByte('\n')
}
