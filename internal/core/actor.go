// Package core implements the EActors programming model and runtime
// (Sections 3.1-3.3 of the paper): eactors with body and constructor
// functions, workers that execute them round-robin, and uniform
// communication channels that transparently encrypt messages when the
// two endpoints live in different enclaves.
//
// The defining property, inherited from the paper, is that an eactor's
// code never references its placement: the Config (the paper's
// configuration file) decides which enclave — if any — hosts each eactor
// and which worker thread runs it, so trusted execution is a deployment
// decision rather than a code-structure decision.
package core

import (
	"fmt"
	"sort"
	"sync/atomic"

	"github.com/eactors/eactors-go/internal/mem"
	"github.com/eactors/eactors-go/internal/profile"
	"github.com/eactors/eactors-go/internal/sgx"
	"github.com/eactors/eactors-go/internal/telemetry"
	"github.com/eactors/eactors-go/internal/trace"
)

// Body is an eactor body function: invoked repeatedly by the runtime, it
// must poll its channels, do a bounded amount of work and return without
// blocking (Listing 1 of the paper).
type Body func(self *Self)

// Init is an eactor constructor: it runs once at startup to connect
// channels and initialise private state.
type Init func(self *Self) error

// Spec declares one eactor: its code (Body/Init) and its deployment
// (Enclave, Worker). Code and deployment are deliberately independent.
type Spec struct {
	// Name identifies the eactor; must be unique within a Config.
	Name string

	// Enclave names the hosting enclave from Config.Enclaves, or "" to
	// run untrusted.
	Enclave string

	// Worker is the index into Config.Workers of the executing worker.
	Worker int

	// Init is the optional constructor.
	Init Init

	// Body is the mandatory body function.
	Body Body

	// State is the eactor's initial private state, exposed as
	// Self.State.
	State any

	// Restart is the supervision policy applied after a body panic. The
	// zero value keeps the pre-supervision behaviour: the actor parks
	// permanently (blast-radius containment, Section 2.3).
	Restart RestartPolicy
}

// actorInstance binds a Spec to its resolved runtime resources.
type actorInstance struct {
	spec      Spec
	tag       uint32       // dense id for flight-recorder events
	enclave   *sgx.Enclave // nil when untrusted
	self      *Self
	worker    *Worker
	endpoints map[string]*Endpoint

	// cost is the actor's cost-accounting cell; nil unless
	// Config.Profile was set.
	cost *profile.ActorCell

	// failed parks the actor after a body panic (blast-radius
	// containment); failure records the panic value and dump captures
	// the owning worker's flight recorder at the moment of the park.
	// Both are atomic pointers so post-mortems stay readable —
	// race-free — after a supervised restart overwrites them on the
	// next park.
	failed  atomic.Bool
	failure atomic.Pointer[string]
	dump    atomic.Pointer[[]telemetry.Event]

	// Supervision state. restarts counts completed restarts; restartAt
	// is the UnixNano deadline of the pending restart (0 when none is
	// scheduled). parkGen counts parks, and forceGen holds the park
	// generation a manual RestartActor override targeted (0 = none):
	// the owning worker honours the override — regardless of policy and
	// backoff — only while the generations match, so a force issued
	// against a park the worker has already restarted can never leak
	// onto a healthy actor and bypass MaxRestarts on its next park.
	restarts  atomic.Uint64
	restartAt atomic.Int64
	parkGen   atomic.Uint64
	forceGen  atomic.Uint64

	// scope is the actor's active trace context (zero value when tracing
	// is disabled): cleared by the worker before each invocation, adopted
	// by traced receives, read by sends.
	scope trace.Scope
}

// failureText returns the last recorded panic value ("" if the actor
// never failed). Safe from any goroutine.
func (a *actorInstance) failureText() string {
	if s := a.failure.Load(); s != nil {
		return *s
	}
	return ""
}

// forcePending reports whether a manual restart override targets the
// actor's current park.
func (a *actorInstance) forcePending() bool {
	fg := a.forceGen.Load()
	return fg != 0 && fg == a.parkGen.Load()
}

// Self is the handle passed to an eactor's Init and Body; it provides
// access to the eactor's channels, private state and execution context.
// A Self is owned by its worker thread and must not escape to other
// goroutines.
type Self struct {
	inst       *actorInstance
	rt         *Runtime
	ctx        *sgx.Context
	progressed bool
	stopped    bool
	drainLeft  int // remaining Self.RecvBatch allowance this invocation

	// State is the eactor's private state (Spec.State).
	State any
}

// Name returns the eactor's configured name.
func (s *Self) Name() string { return s.inst.spec.Name }

// Runtime returns the owning runtime.
func (s *Self) Runtime() *Runtime { return s.rt }

// Enclave returns the hosting enclave, or nil when running untrusted.
func (s *Self) Enclave() *sgx.Enclave { return s.inst.enclave }

// Context returns the worker's SGX execution context. Bodies use it for
// ECalls/OCalls or SDK-mutex interaction when they must.
func (s *Self) Context() *sgx.Context { return s.ctx }

// Pool returns the runtime's shared node pool.
func (s *Self) Pool() *mem.Pool { return s.rt.pool }

// Channel returns the endpoint of the named channel that belongs to this
// eactor. It corresponds to the connect() call of the paper's
// constructor phase; endpoints are created by the runtime from the
// Config and looked up by name.
func (s *Self) Channel(name string) (*Endpoint, error) {
	ep, ok := s.inst.endpoints[name]
	if !ok {
		return nil, fmt.Errorf("core: actor %q has no endpoint on channel %q", s.Name(), name)
	}
	return ep, nil
}

// Endpoints returns all of the eactor's channel endpoints, sorted by
// channel name. System eactors that serve any peer wired to them (the
// MONITOR) iterate it instead of naming channels up front.
func (s *Self) Endpoints() []*Endpoint {
	eps := make([]*Endpoint, 0, len(s.inst.endpoints))
	for _, ep := range s.inst.endpoints {
		eps = append(eps, ep)
	}
	sort.Slice(eps, func(i, j int) bool { return eps[i].ch.name < eps[j].ch.name })
	return eps
}

// MustChannel is Channel for constructor use, where a missing channel is
// a configuration bug.
func (s *Self) MustChannel(name string) *Endpoint {
	ep, err := s.Channel(name)
	if err != nil {
		panic(err)
	}
	return ep
}

// Progress records that the body did useful work this invocation; the
// worker uses it to back off when all its eactors are idle.
func (s *Self) Progress() { s.progressed = true }

// DrainBudget returns how many more messages this invocation may
// consume through RecvBatch before the worker moves on to its next
// eactor (Config.DrainBudget, reset every invocation).
func (s *Self) DrainBudget() int { return s.drainLeft }

// RecvBatch is the budgeted batch receive bodies should use on hot
// channels: it drains up to min(len(bufs), len(lens), remaining drain
// budget) messages from ep in one pass, records progress, and deducts
// the count from the invocation's budget — so a flooded eactor yields
// its worker to siblings instead of draining forever. Message i lands
// in bufs[i] with length lens[i]; error semantics are those of
// Endpoint.RecvBatch. When the budget is exhausted it receives nothing;
// the worker will be back, and the inbound mbox keeps the backlog.
func (s *Self) RecvBatch(ep *Endpoint, bufs [][]byte, lens []int) (int, error) {
	want := len(bufs)
	if len(lens) < want {
		want = len(lens)
	}
	if want > s.drainLeft {
		want = s.drainLeft
	}
	if want == 0 {
		return 0, nil
	}
	n, err := ep.RecvBatch(bufs[:want], lens[:want])
	if n > 0 {
		s.drainLeft -= n
		s.progressed = true
	}
	return n, err
}

// Tracer returns the runtime's causal tracer (nil — a valid no-op
// receiver — when Config.Trace is off). Bodies use it with TraceScope
// to record application-level spans (POS access, routing) and system
// eactors use MaybeRoot to start traces at ingress.
func (s *Self) Tracer() *trace.Tracer { return s.rt.tr }

// TraceScope returns the eactor's active trace scope. Always non-nil;
// reads are untraced whenever tracing is off or the current invocation
// handles no sampled message.
func (s *Self) TraceScope() *trace.Scope { return &s.inst.scope }

// WorkerID returns the index of the worker executing this eactor, used
// to attribute trace spans to the recording worker's ring.
func (s *Self) WorkerID() int { return s.inst.worker.id }

// Waker returns a function that wakes this eactor's worker from its
// idle sleep. It is safe to call from any goroutine; system eactors
// hand it to their I/O pumps so inbound data is processed immediately
// rather than on the next poll.
func (s *Self) Waker() func() { return s.inst.worker.Wake }

// RunUntrusted executes fn in the untrusted runtime on behalf of the
// eactor. With switchless proxies configured the call is relayed to a
// proxy worker — the enclaved caller never leaves its enclave, the
// paper's switchless OCall — and blocks until fn has run. Without
// proxies (or when every proxy's call buffer is full) fn runs inline,
// which on a real platform would be the blocking OCall. fn must not
// touch the eactor's channels or state from the proxy thread beyond
// what is safe concurrently; typical uses are socket writes and POS
// persistence flushes.
func (s *Self) RunUntrusted(fn func()) {
	if sw := s.rt.sw; sw != nil && sw.call(fn) {
		return
	}
	fn()
}

// StopRuntime requests an asynchronous shutdown of the whole runtime.
// Bodies call it when the application's work is done.
func (s *Self) StopRuntime() {
	if !s.stopped {
		s.stopped = true
		s.rt.requestStop()
	}
}
