package core

import (
	"encoding/binary"
	"fmt"
	"runtime"
	"sync/atomic"
	"time"

	"github.com/eactors/eactors-go/internal/ecrypto"
	"github.com/eactors/eactors-go/internal/faults"
	"github.com/eactors/eactors-go/internal/mem"
	"github.com/eactors/eactors-go/internal/sgx"
	"github.com/eactors/eactors-go/internal/trace"
)

// Switchless channel crossings (Config.Switchless).
//
// An encrypted channel direction in switchless mode is a three-stage
// pipeline over the same preallocated nodes every other path uses:
//
//	sender ──tx ring──▶ proxy ──sealed mbox──▶ proxy ──rx ring──▶ receiver
//	 (plain records)    seal N records            open segment
//	                    into one segment          back into records
//
// The sender posts plain records onto the direction's tx ring and
// returns — no AEAD work, no boundary interaction on its thread. A
// pinned proxy worker drains the ring, coalesces a queued run of up to
// SegmentMax records into one length-prefixed segment, seals it with a
// single AEAD pass, and moves it across the simulated boundary (the
// channel's original mbox). The same proxy opens arriving segments and
// fans the records out onto the receiver's rx ring, where Recv picks
// them up as if they had always been plaintext. Steady-state traffic
// therefore crosses the boundary zero times on actor threads, and the
// fixed per-seal cost (~2/3 of a small message's encryption bill) is
// amortised over the whole run — the switchless-call idea of the paper
// (Section 5.3), applied to the channel fast path.
//
// Adaptive parking: a proxy whose rings run dry spins for
// SpinBudget, then parks on an sgx.Event (the SDK's untrusted-event
// plumbing, shared with sgx.Mutex) and charges one ProxyParks. The
// first ring post after a park rings the proxy's event, so an idle
// deployment pays neither proxy CPU nor extra latency.
//
// Work conservation: the pipeline stages are guarded by per-direction
// busy flags (busyTx, busyRx), not by proxy identity. An actor thread
// that would otherwise wait — a sender facing an empty pipeline, a
// receiver facing a dry rx ring — takes the same stage inline through
// the same CAS guards: the sender seals a one-record segment directly,
// the receiver drains the tx ring into segments and opens them itself.
// On parallel hardware the spinning proxy wins the work and actor
// threads never cross; on a saturated single core the actors do it
// in-line (the blocking degradation the paper describes) and the
// coalescing still amortises the AEAD cost over each in-flight run.
//
// Accounting: every record relayed by the proxy credits the platform
// two avoided crossings on the send side (the EEXIT/EENTER pair a
// blocking post would have paid) and two more on the receive side;
// inline fallbacks credit nothing. The counters surface as
// eactors_crossings_avoided / eactors_proxy_parks and in the MONITOR
// report verb.

// segHdr is the per-record length prefix inside a sealed segment.
const segHdr = 4

// swCallBuffer bounds the queued RunUntrusted calls per proxy.
const swCallBuffer = 16

// swDir is one direction of a switchless channel: the sender's tx call
// ring, the sealed segment mbox (the channel's original direction mbox,
// which is what crosses the boundary), and the receiver's rx ring of
// opened records.
//
// Concurrency: busyTx serialises the seal half (pending/stalled/
// scratch/seal-nonce order) between the proxy and the inline sender;
// busyRx serialises the open half (lastSeq/rxScratch) between the proxy
// and the inline receiver. Everything else is atomics or mbox hand-off.
type swDir struct {
	tag    uint32 // channel tag, for trace spans
	tx     *mem.Mbox
	rx     *mem.Mbox
	sealed *mem.Mbox
	pool   *mem.Pool
	cipher *ecrypto.Cipher
	plat   *sgx.Platform
	inj    *faults.Injector

	segMax  int
	trailer bool // sealed records carry the 16-byte trace trailer

	proxy    *swProxy
	wakeRecv func() // receiver worker's doorbell

	busyTx atomic.Int32
	busyRx atomic.Int32

	// txInflight counts records posted to tx but not yet delivered to
	// the sealed mbox (in the ring, in pending, or in a stalled
	// segment). The inline sender requires it to be zero so it can
	// never reorder ahead of ring traffic.
	txInflight atomic.Int64

	// Seal-side state, guarded by busyTx.
	pending []*mem.Node // records dequeued from tx, not yet sealed
	stalled *mem.Node   // sealed segment rejected by a full sealed mbox
	stage   []*mem.Node
	scratch []byte

	// Open-side state, guarded by busyRx.
	lastSeq   uint64
	rxScratch []byte

	// rxStalled is a sealed segment whose fan-out ran out of receive
	// capacity (a pool node or an rx ring slot) mid-segment. Its
	// plaintext stays decrypted in rxScratch with rxOff marking the
	// resume cursor (rxResume distinguishes a stall-before-first-record
	// from a fresh segment, so the replay counter is not re-checked
	// against itself). nextSealed resumes it before dequeuing anything
	// newer, so boundary FIFO holds and records are never shed for
	// capacity. Incremental drain is required for liveness, not just
	// politeness: coalescing compresses a whole run into one node, so
	// the pool can hold fewer free nodes than one segment's record
	// count and waiting for the full run to be affordable can deadlock.
	// Guarded by busyRx; rxBacklog mirrors the stall's presence for
	// lock-free wakeup checks.
	rxStalled *mem.Node
	rxResume  bool
	rxOff     int
	rxBacklog atomic.Int32

	ringPosts atomic.Uint64 // records posted to the tx ring
	relayed   atomic.Uint64 // records delivered to rx by the proxy
	inline    atomic.Uint64 // records sealed or opened inline (fallback)
	rxDropped atomic.Uint64 // records shed at open (auth/replay/capacity race)
}

// wakeProxy rings the owning proxy's event if it is parked. Posters
// call it after their enqueue: the proxy stores parked=true before its
// event wait re-evaluates the rings under the event lock, so either the
// poster sees parked and Sets, or the wait's predicate sees the post.
func (d *swDir) wakeProxy() {
	if p := d.proxy; p.parked.Load() {
		p.ev.Set()
	}
}

// rxSpace reports whether the open half can deliver at least one
// record right now — one fresh pool node plus one rx ring slot.
// openSegment drains incrementally, so this is exactly the progress
// condition.
func (d *swDir) rxSpace() bool {
	return d.rx.Cap() > d.rx.Len() && d.pool.Free() > 0
}

// backlog reports work that may be stuck behind a parked proxy:
// undelivered tx records, sealed segments waiting to be opened, or a
// stalled segment waiting for receive capacity.
func (d *swDir) backlog() bool {
	return !d.sealed.Empty() || d.txInflight.Load() > 0 || d.rxBacklog.Load() != 0
}

// nextSealed returns the segment the open half should work on — the
// stalled one if present (boundary FIFO: nothing newer may overtake
// it), else the oldest sealed segment — or nil when there is none or
// no capacity to deliver even a single record. Guarded by busyRx.
func (d *swDir) nextSealed() *mem.Node {
	if !d.rxSpace() {
		return nil
	}
	if d.rxStalled != nil {
		return d.rxStalled
	}
	seg, ok := d.sealed.Dequeue()
	if !ok {
		return nil
	}
	return seg
}

// stallRx parks seg as the direction's stalled segment after a partial
// fan-out; finishRx retires a fully drained (or shed) segment. Both
// guarded by busyRx.
func (d *swDir) stallRx(seg *mem.Node) {
	d.rxStalled = seg
	d.rxBacklog.Store(1)
}

func (d *swDir) finishRx(seg *mem.Node) {
	d.rxStalled = nil
	d.rxBacklog.Store(0)
	_ = d.pool.Put(seg)
}

// serviceTx drains the tx ring into sealed segments. It returns whether
// it made progress. viaProxy reports whether a proxy worker is doing
// the work: only then do the delivered records credit the platform's
// avoided-crossing counter — an actor thread stealing this stage
// through tryInlineOpen is blocking-path work and credits nothing.
// The inline sender takes the same busyTx guard through sealInline.
func (d *swDir) serviceTx(tr *trace.Tracer, ring int, viaProxy bool) bool {
	if !d.busyTx.CompareAndSwap(0, 1) {
		return false
	}
	defer d.busyTx.Store(0)
	progressed := false
	for {
		if d.stalled != nil {
			if !d.enqueueSegment(d.stalled) {
				return progressed
			}
			d.noteSealedDelivered(int(d.stalled.Meta()), viaProxy)
			d.stalled = nil
			progressed = true
		}
		if len(d.pending) == 0 {
			got := d.tx.DequeueBatch(d.stage)
			if got == 0 {
				return progressed
			}
			d.pending = append(d.pending[:0], d.stage[:got]...)
		}
		seg := d.packSegment(tr, ring)
		if !d.enqueueSegment(seg) {
			d.stalled = seg
			return progressed
		}
		d.noteSealedDelivered(int(seg.Meta()), viaProxy)
		progressed = true
	}
}

// enqueueSegment moves one sealed segment onto the boundary mbox,
// honouring an injected send failure (the segment stalls and is
// retried — switchless never drops on the send side).
func (d *swDir) enqueueSegment(seg *mem.Node) bool {
	if d.inj != nil && d.inj.At(faults.SiteSend).Class == faults.SendFail {
		return false
	}
	return d.sealed.Enqueue(seg)
}

// noteSealedDelivered retires n records from the tx pipeline and, when
// a proxy carried them, credits the send-side crossing pair each of
// them avoided.
func (d *swDir) noteSealedDelivered(n int, viaProxy bool) {
	d.txInflight.Add(-int64(n))
	if viaProxy {
		d.plat.NoteCrossingsAvoided(2 * uint64(n))
	}
}

// packSegment seals a prefix of d.pending into one segment and returns
// it. The segment reuses the first record's node: the run's plaintext
// is staged in d.scratch as repeated [u32 len][payload(+trailer)]
// frames, sealed into that node's buffer with one AEAD pass, and the
// consumed sibling nodes go back to the pool. Meta carries the record
// count; the node trace header carries the run's last traced context
// so the receive side keeps its sampling hint. Guarded by busyTx.
func (d *swDir) packSegment(tr *trace.Tracer, ring int) *mem.Node {
	budget := d.pool.Arena().PayloadSize() - ecrypto.Overhead
	d.scratch = d.scratch[:0]
	var lastCtx trace.Ctx
	var lastEnq int64
	used := 0
	for _, node := range d.pending {
		if used == d.segMax {
			break
		}
		rlen := node.Len()
		if d.trailer {
			rlen += trace.HeaderSize
		}
		if used > 0 && len(d.scratch)+segHdr+rlen > budget {
			break
		}
		var hdr [segHdr]byte
		binary.LittleEndian.PutUint32(hdr[:], uint32(rlen))
		d.scratch = append(d.scratch, hdr[:]...)
		d.scratch = append(d.scratch, node.Payload()...)
		tid, span, enq := node.Trace()
		if d.trailer {
			d.scratch = trace.AppendHeader(d.scratch, trace.Ctx{TraceID: tid, Span: span})
		}
		if tid != 0 {
			lastCtx = trace.Ctx{TraceID: tid, Span: span}
			lastEnq = enq
		}
		used++
	}
	var sealStart time.Time
	if tr != nil && lastCtx.Traced() {
		sealStart = time.Now()
	}
	seg := d.pending[0]
	blob := d.cipher.Seal(seg.Buf()[:0], d.scratch, nil)
	if d.inj != nil && d.inj.At(faults.SiteSeal).Class == faults.SealCorrupt {
		corruptSealed(blob)
	}
	_ = seg.SetLen(len(blob)) // budget-bounded above
	seg.SetMeta(uint32(used))
	stampTrace(seg, lastCtx, lastEnq)
	if !sealStart.IsZero() {
		tr.Record(ring, trace.Span{
			TraceID: lastCtx.TraceID, ID: tr.NextSpan(), Parent: lastCtx.Span,
			Kind: trace.KindSeal, Ref: d.tag,
			Start: sealStart.UnixNano(), Dur: int64(time.Since(sealStart)),
		})
	}
	if used > 1 {
		_ = d.pool.PutBatch(d.pending[1:used])
	}
	d.pending = d.pending[:copy(d.pending, d.pending[used:])]
	return seg
}

// serviceRx opens sealed segments into the rx ring. It returns whether
// it made progress. Called by the proxy; the inline receiver takes the
// same busyRx guard through tryInlineOpen.
func (d *swDir) serviceRx(tr *trace.Tracer, ring int) bool {
	if !d.busyRx.CompareAndSwap(0, 1) {
		return false
	}
	defer d.busyRx.Store(0)
	progressed := false
	delivered := 0
	for {
		seg := d.nextSealed()
		if seg == nil {
			break
		}
		n, done := d.openSegment(seg, tr, ring, true)
		delivered += n
		if n > 0 || done {
			progressed = true
		}
		if !done {
			d.stallRx(seg)
			break
		}
		d.finishRx(seg)
	}
	if delivered > 0 && d.wakeRecv != nil {
		d.wakeRecv()
	}
	return progressed
}

// openSegment opens one sealed segment onto the rx ring — decrypting
// and replay-checking on first entry, resuming from the stall cursor
// (rxOff into the still-decrypted rxScratch) otherwise — and returns
// how many records it delivered this pass plus whether the segment is
// finished. A segment that fails authentication or the replay check is
// shed whole and counts rxDropped; a record that finds the pool or the
// rx ring momentarily exhausted is NEVER shed — the pass stops, the
// caller stalls the segment, and the fan-out resumes from the cursor
// once receivers return capacity (switchless receive failures are shed
// at the proxy rather than surfaced to Recv, which only ever sees good
// records). viaProxy credits the receive-side avoided-crossing pair
// and the relayed counter; the inline path counts inline instead.
// Guarded by busyRx.
func (d *swDir) openSegment(seg *mem.Node, tr *trace.Tracer, ring int, viaProxy bool) (int, bool) {
	var hintEnq int64
	var openStart time.Time
	if tr != nil {
		var tid uint64
		tid, _, hintEnq = seg.Trace()
		if tid != 0 && !d.rxResume {
			openStart = time.Now()
		}
	}
	if !d.rxResume {
		blob := seg.Payload()
		count := uint64(seg.Meta())
		if count == 0 {
			count = 1
		}
		plain, err := d.cipher.Open(d.rxScratch[:0], blob, nil)
		if err != nil {
			d.rxDropped.Add(count)
			return 0, true
		}
		d.rxScratch = plain
		if seq := ecrypto.BlobCounter(blob); seq <= d.lastSeq {
			d.rxDropped.Add(count)
			return 0, true
		} else {
			d.lastSeq = seq
		}
		d.rxOff = 0
	}
	plain := d.rxScratch
	delivered := 0
	stalled := false
	var lastCtx trace.Ctx
	off := d.rxOff
	for off+segHdr <= len(plain) {
		rlen := int(binary.LittleEndian.Uint32(plain[off:]))
		if rlen < 0 || off+segHdr+rlen > len(plain) {
			// Authenticated framing can only be malformed by a sender
			// bug; shed the remainder rather than deliver garbage.
			d.rxDropped.Add(1)
			off = len(plain)
			break
		}
		rec := plain[off+segHdr : off+segHdr+rlen]
		var ctx trace.Ctx
		if d.trailer {
			rec, ctx = trace.SplitTrailer(rec)
		}
		node := d.pool.Get()
		if node == nil {
			stalled = true
			break
		}
		_ = node.SetPayload(rec) // bounded by the sender's MaxPayload
		if ctx.Traced() {
			// The original enqueue timestamp rides the segment header,
			// so the receiver's dwell span covers the whole relay.
			node.SetTrace(ctx.TraceID, ctx.Span, hintEnq)
			lastCtx = ctx
		} else {
			node.ClearTrace()
		}
		if !d.rx.Enqueue(node) {
			_ = d.pool.Put(node)
			stalled = true
			break
		}
		delivered++
		off += segHdr + rlen
	}
	d.rxOff = off
	d.rxResume = stalled
	if delivered > 0 {
		if viaProxy {
			d.relayed.Add(uint64(delivered))
			d.plat.NoteCrossingsAvoided(2 * uint64(delivered))
		} else {
			d.inline.Add(uint64(delivered))
		}
	}
	if !openStart.IsZero() && lastCtx.Traced() {
		// Attribute the boundary work the records did not do on actor
		// threads: a crossing span for the whole relay transit and the
		// open underneath it, recorded on the opener's ring.
		now := time.Now()
		crossing := tr.NextSpan()
		if hintEnq > 0 && hintEnq <= now.UnixNano() {
			tr.Record(ring, trace.Span{
				TraceID: lastCtx.TraceID, ID: crossing, Parent: lastCtx.Span,
				Kind: trace.KindCrossing, Ref: d.tag,
				Start: hintEnq, Dur: now.UnixNano() - hintEnq,
			})
		}
		tr.Record(ring, trace.Span{
			TraceID: lastCtx.TraceID, ID: tr.NextSpan(), Parent: crossing,
			Kind: trace.KindOpen, Ref: d.tag,
			Start: openStart.UnixNano(), Dur: int64(now.Sub(openStart)),
		})
	}
	return delivered, !stalled
}

// swCall is one RunUntrusted request relayed through a proxy.
type swCall struct {
	fn   func()
	done chan struct{}
}

// swProxy is one switchless proxy worker: a goroutine pinned to a set
// of channel directions, performing their boundary work (seal, post,
// open, doorbell) plus arbitrary RunUntrusted calls on behalf of
// enclaved actors.
type swProxy struct {
	plat *sgx.Platform
	id   int
	ring int // trace ring index (after the worker rings)
	dirs []*swDir
	spin time.Duration
	tr   *trace.Tracer

	ev     *sgx.Event
	parked atomic.Bool

	calls chan swCall

	// ctxs pin one TCS slot in every enclave the proxy services, held
	// from build to shutdown — the switchless worker stays resident
	// instead of re-entering per request.
	ctxs []*sgx.Context

	quit chan struct{}
	done chan struct{}
}

// sweep runs one pass over the proxy's work sources and reports
// whether anything progressed.
func (p *swProxy) sweep() bool {
	progressed := false
	for _, d := range p.dirs {
		if d.serviceTx(p.tr, p.ring, true) {
			progressed = true
		}
		if d.serviceRx(p.tr, p.ring) {
			progressed = true
		}
	}
	for {
		select {
		case c := <-p.calls:
			c.fn()
			close(c.done)
			// The OCall pair the calling actor did not pay.
			p.plat.NoteCrossingsAvoided(2)
			progressed = true
		default:
			return progressed
		}
	}
}

// idle is the park predicate, evaluated under the event lock: true
// keeps the proxy asleep. It must return false exactly when sweep
// could progress, otherwise a wake would spin straight back to the
// park (or work would strand).
func (p *swProxy) idle() bool {
	select {
	case <-p.quit:
		return false
	default:
	}
	if len(p.calls) > 0 {
		return false
	}
	for _, d := range p.dirs {
		if d.txInflight.Load() > 0 && d.sealed.Len() < d.sealed.Cap() {
			return false
		}
		if (!d.sealed.Empty() || d.rxBacklog.Load() != 0) && d.rxSpace() {
			return false
		}
	}
	return true
}

func (p *swProxy) run() {
	defer close(p.done)
	var idleSince time.Time
	for {
		select {
		case <-p.quit:
			p.shutdown()
			return
		default:
		}
		if p.sweep() {
			idleSince = time.Time{}
			continue
		}
		if idleSince.IsZero() {
			idleSince = time.Now()
		}
		if time.Since(idleSince) < p.spin {
			runtime.Gosched()
			continue
		}
		// Budget exhausted: park. parked is published before the wait's
		// predicate runs, closing the race against a poster that
		// enqueued between our last sweep and here (see wakeProxy).
		p.parked.Store(true)
		p.plat.NoteProxyPark()
		p.ev.Wait(p.idle, nil)
		p.parked.Store(false)
		idleSince = time.Time{}
	}
}

// shutdown drains the remaining ring work (workers have already
// stopped, so the rings are quiescing) and releases the pinned TCS
// slots.
func (p *swProxy) shutdown() {
	for p.sweep() {
	}
	for _, c := range p.ctxs {
		c.Exit()
	}
}

// switchless is the runtime-wide switchless state: every direction and
// proxy, plus the RunUntrusted dispatch cursor.
type switchless struct {
	dirs    []*swDir
	proxies []*swProxy
	next    atomic.Uint32
}

// call relays fn to a proxy worker and waits for completion, returning
// false when every proxy's call buffer is full (the caller runs fn
// inline — a blocking OCall under overload).
func (sw *switchless) call(fn func()) bool {
	if len(sw.proxies) == 0 {
		return false
	}
	c := swCall{fn: fn, done: make(chan struct{})}
	start := int(sw.next.Add(1))
	for i := 0; i < len(sw.proxies); i++ {
		p := sw.proxies[(start+i)%len(sw.proxies)]
		select {
		case p.calls <- c:
			if p.parked.Load() {
				p.ev.Set()
			}
			<-c.done
			return true
		default:
		}
	}
	return false
}

// stop terminates the proxies: each drains its rings once more, exits
// its enclave contexts and returns. Called by Runtime.Stop after the
// workers have joined, so no new ring posts or calls can arrive.
func (sw *switchless) stop() {
	for _, p := range sw.proxies {
		close(p.quit)
		p.ev.Set()
	}
	for _, p := range sw.proxies {
		<-p.done
	}
}

// buildSwitchless wires the switchless mode declared by cfg: one swDir
// per encrypted channel direction, assigned round-robin to the proxy
// workers, which are started immediately (endpoints are usable before
// Runtime.Start). Called at the end of NewRuntime.
func (rt *Runtime) buildSwitchless(cfg Config) error {
	sc := cfg.Switchless
	if !sc.Enabled {
		return nil
	}
	spin := sc.SpinBudget
	if spin == 0 {
		spin = DefaultSwitchlessSpin
	}
	sw := &switchless{}
	for i := 0; i < sc.proxyCount(); i++ {
		sw.proxies = append(sw.proxies, &swProxy{
			plat:  rt.platform,
			id:    i,
			ring:  len(rt.workers) + i,
			spin:  spin,
			tr:    rt.tr,
			ev:    sgx.NewEvent(),
			calls: make(chan swCall, swCallBuffer),
			quit:  make(chan struct{}),
			done:  make(chan struct{}),
		})
	}
	for _, cs := range cfg.Channels {
		ch := rt.channels[cs.Name]
		if !ch.encrypted {
			continue
		}
		dirAB, err := rt.buildDir(sc, ch, ch.epA, ch.epB, ch.ab)
		if err != nil {
			return err
		}
		dirBA, err := rt.buildDir(sc, ch, ch.epB, ch.epA, ch.ba)
		if err != nil {
			return err
		}
		sw.dirs = append(sw.dirs, dirAB, dirBA)
	}
	for i, d := range sw.dirs {
		p := sw.proxies[i%len(sw.proxies)]
		d.proxy = p
		p.dirs = append(p.dirs, d)
	}
	// Pin a TCS slot in every enclave each proxy services: the resident
	// switchless worker of the paper, entered once instead of per call.
	// No proxy has started yet, so on failure releasing the slots
	// already pinned is the only construction state to unwind.
	for _, p := range sw.proxies {
		entered := make(map[string]bool)
		for _, inst := range rt.actors {
			if inst.enclave == nil {
				continue
			}
			serviced := false
			for _, d := range p.dirs {
				for _, ep := range inst.endpoints {
					if ep.sw == d || ep.swRx == d {
						serviced = true
					}
				}
			}
			if !serviced || entered[inst.spec.Enclave] {
				continue
			}
			entered[inst.spec.Enclave] = true
			ctx := sgx.NewContext(rt.platform)
			if err := ctx.Enter(inst.enclave); err != nil {
				for _, q := range sw.proxies {
					for _, c := range q.ctxs {
						c.Exit()
					}
				}
				return err
			}
			p.ctxs = append(p.ctxs, ctx)
		}
	}
	rt.sw = sw
	for _, p := range sw.proxies {
		go p.run()
	}
	return nil
}

// buildDir creates one switchless direction from sender endpoint from
// to receiver endpoint to, over the channel's existing boundary mbox.
func (rt *Runtime) buildDir(sc SwitchlessConfig, ch *Channel, from, to *Endpoint, sealed *mem.Mbox) (*swDir, error) {
	ringCap := sc.RingCapacity
	if ringCap == 0 {
		ringCap = sealed.Cap()
	}
	segMax := sc.SegmentMax
	if segMax == 0 {
		segMax = DefaultSwitchlessSegment
	}
	if segMax > ringCap {
		segMax = ringCap
	}
	tx, err := mem.NewMbox(ringCap)
	if err != nil {
		return nil, fmt.Errorf("core: switchless channel %q: %w", ch.name, err)
	}
	rx, err := mem.NewMbox(ringCap)
	if err != nil {
		return nil, fmt.Errorf("core: switchless channel %q: %w", ch.name, err)
	}
	d := &swDir{
		tag:      ch.tag,
		tx:       tx,
		rx:       rx,
		sealed:   sealed,
		pool:     from.pool,
		cipher:   from.cipher,
		plat:     rt.platform,
		inj:      rt.flt,
		segMax:   segMax,
		trailer:  from.tr != nil,
		wakeRecv: from.peerWake,
		stage:    make([]*mem.Node, segMax),
	}
	from.sw = d
	to.swRx = d
	return d, nil
}

// sendPayloadSwitchless is Send's switchless tail: copy payload into a
// pool node and hand it to sendSwitchless, releasing the node on error
// (Send owns it; SendNode's caller keeps ownership instead).
func (e *Endpoint) sendPayloadSwitchless(payload []byte, act faults.Action) error {
	start := e.maybeSample()
	tctx, tparent, tstart := e.traceSendStart()
	node := e.pool.Get()
	if node == nil {
		e.sendFailures.Add(1)
		return ErrPoolEmpty
	}
	if err := node.SetPayload(payload); err != nil {
		_ = e.pool.Put(node)
		return err
	}
	if err := e.sendSwitchless(node, act, start, tctx, tparent, tstart); err != nil {
		_ = e.pool.Put(node)
		return err
	}
	return nil
}

// sendSwitchless posts a filled node onto the tx ring (zero boundary
// work on this thread), or — when the pipeline is empty, so there is
// no run to coalesce with — seals a one-record segment inline, which
// is exactly the blocking behaviour the mode degrades to. Ownership
// transfers on success; on error the caller still owns the node.
func (e *Endpoint) sendSwitchless(node *mem.Node, act faults.Action, start time.Time, tctx trace.Ctx, tparent uint32, tstart time.Time) error {
	d := e.sw
	plen := node.Len() // plaintext size: sealInline overwrites, Enqueue transfers ownership
	if d.txInflight.Load() == 0 && d.sealed.Empty() && d.busyTx.CompareAndSwap(0, 1) {
		// Re-check under the guard — including sealed.Empty(): a proxy
		// pass between the lock-free checks and the CAS may have left a
		// stalled segment or delivered segments that fill the mbox.
		// Only busyTx holders enqueue onto sealed, so with the guard
		// held an empty mbox stays empty until our own enqueue, which
		// therefore cannot fail — sealInline may seal into the caller's
		// node in place without risking ownership of a clobbered node
		// bouncing back on a full-mbox error.
		if d.txInflight.Load() == 0 && d.stalled == nil && d.sealed.Empty() {
			e.sealInline(d, node, start, tctx, tstart)
			d.busyTx.Store(0)
			d.inline.Add(1)
			e.sent.Add(1)
			if e.pc != nil {
				// Inline (degraded) sends seal on this thread, so the op
				// and bytes are attributable; ring posts are sealed by the
				// proxy and carry no per-actor seal charge (DESIGN §15).
				e.pc.SealOps.Add(1)
				e.pc.SealBytes.Add(uint64(plen))
			}
			e.pcSent(1, plen)
			e.noteSent(1, start)
			e.traceSendEnd(tctx, tparent, tstart)
			e.wakePeer(act)
			return nil
		}
		d.busyTx.Store(0)
	}
	if e.tr != nil {
		var enq int64
		if tctx.Traced() {
			enq = time.Now().UnixNano()
		}
		stampTrace(node, tctx, enq)
	}
	d.txInflight.Add(1)
	if !d.tx.Enqueue(node) {
		d.txInflight.Add(-1)
		e.sendFailures.Add(1)
		return ErrMailboxFull
	}
	e.sent.Add(1)
	e.pcSent(1, plen)
	d.ringPosts.Add(1)
	e.noteSent(1, start)
	e.traceSendEnd(tctx, tparent, tstart)
	d.wakeProxy()
	return nil
}

// sealInline seals node's payload as a one-record segment straight
// onto the boundary mbox, reusing the node in place (the plaintext is
// replaced by ciphertext). The caller holds busyTx and must have
// verified the sealed mbox empty under the guard: only busyTx holders
// enqueue onto it, so the enqueue cannot fail — there is no error path
// on which a clobbered node could be handed back for a retry.
func (e *Endpoint) sealInline(d *swDir, node *mem.Node, start time.Time, tctx trace.Ctx, tstart time.Time) {
	rlen := node.Len()
	if d.trailer {
		rlen += trace.HeaderSize
	}
	var hdr [segHdr]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(rlen))
	d.scratch = append(d.scratch[:0], hdr[:]...)
	d.scratch = append(d.scratch, node.Payload()...)
	if d.trailer {
		d.scratch = trace.AppendHeader(d.scratch, tctx)
	}
	var sealStart time.Time
	if !start.IsZero() || !tstart.IsZero() {
		sealStart = time.Now()
	}
	blob := d.cipher.Seal(node.Buf()[:0], d.scratch, nil)
	if !sealStart.IsZero() {
		if !start.IsZero() {
			e.m.sealNs.ObserveSince(sealStart)
		}
		e.traceSeal(tctx, sealStart)
	}
	if e.injectSealCorrupt() {
		corruptSealed(blob)
	}
	_ = node.SetLen(len(blob)) // bounded by MaxPayload
	node.SetMeta(1)
	var enq int64
	if tctx.Traced() {
		enq = time.Now().UnixNano()
	}
	stampTrace(node, tctx, enq)
	if !d.sealed.Enqueue(node) {
		panic("core: switchless inline seal lost the sealed mbox verified empty under busyTx")
	}
}

// recvSwitchless is Recv's switchless head: pop an already-open record
// off the rx ring. When the ring is dry but segments wait on a parked
// proxy, the receiver opens one inline (the blocking fallback).
func (e *Endpoint) recvSwitchless(buf []byte) (int, bool, error) {
	node, ok := e.recvSwitchlessNode()
	if !ok {
		return 0, false, nil
	}
	payload := node.Payload()
	var err error
	n := 0
	if len(payload) > len(buf) {
		err = fmt.Errorf("%w: need %d, have %d", ErrShortBuffer, len(payload), len(buf))
	} else {
		n = copy(buf, payload)
	}
	if putErr := e.pool.Put(node); putErr != nil && err == nil {
		err = putErr
	}
	return n, true, err
}

// recvSwitchlessNode dequeues one opened record, falling back to an
// inline open, and runs the shared receive bookkeeping.
func (e *Endpoint) recvSwitchlessNode() (*mem.Node, bool) {
	d := e.swRx
	node, ok := d.rx.Dequeue()
	if !ok {
		if !e.tryInlineOpen() {
			// Empty-handed with backlog stuck behind a parked proxy
			// (e.g. a segment stalled on pool starvation): hand the
			// work back rather than strand it.
			if d.backlog() {
				d.wakeProxy()
			}
			return nil, false
		}
		if node, ok = d.rx.Dequeue(); !ok {
			return nil, false
		}
	}
	// Backlog behind a parked proxy (e.g. it stalled on the full ring
	// we just drained): hand the work back.
	if d.backlog() {
		d.wakeProxy()
	}
	e.injectRecv()
	e.received.Add(1)
	e.pcRecv(1, node.Len())
	e.noteRecv(1)
	if e.tr != nil {
		if tid, span, enq := node.Trace(); tid != 0 {
			e.traceRecvPlain(trace.Ctx{TraceID: tid, Span: span}, enq)
		}
	}
	return node, true
}

// tryInlineOpen advances the pipeline on the receiver's thread when
// the rx ring is dry: it seals any tx backlog into segments (stealing
// serviceTx through the busyTx guard — one AEAD pass for the whole
// run) and opens the oldest waiting segment. The CAS guards arbitrate
// with the proxy: on parallel hardware the proxy usually got here
// first and the steal is a no-op. Returns whether any record was
// delivered to the rx ring.
func (e *Endpoint) tryInlineOpen() bool {
	d := e.swRx
	if d.sealed.Empty() && d.rxBacklog.Load() == 0 && d.txInflight.Load() > 0 {
		d.serviceTx(e.tr, e.owner, false)
	}
	if d.sealed.Empty() && d.rxBacklog.Load() == 0 {
		return false
	}
	if !d.busyRx.CompareAndSwap(0, 1) {
		return false
	}
	defer d.busyRx.Store(0)
	seg := d.nextSealed()
	if seg == nil {
		return false
	}
	n, done := d.openSegment(seg, e.tr, e.owner, false)
	if done {
		d.finishRx(seg)
	} else {
		d.stallRx(seg)
	}
	return n > 0
}

// recvBatchSwitchless is RecvBatch over the rx ring: one dequeue CAS
// for the burst, plaintext delivery, one pool release.
func (e *Endpoint) recvBatchSwitchless(bufs [][]byte, lens []int) (int, error) {
	want := len(bufs)
	if len(lens) < want {
		want = len(lens)
	}
	if want == 0 {
		return 0, nil
	}
	d := e.swRx
	nodes := e.nodeSlots(want)
	got := d.rx.DequeueBatch(nodes)
	if got == 0 {
		if !e.tryInlineOpen() {
			if d.backlog() {
				d.wakeProxy()
			}
			return 0, nil
		}
		if got = d.rx.DequeueBatch(nodes); got == 0 {
			return 0, nil
		}
	}
	if d.backlog() {
		d.wakeProxy()
	}
	e.injectRecv()
	e.received.Add(uint64(got))
	e.noteRecv(got)
	if e.m != nil {
		e.m.recvBatch.Observe(uint64(got))
	}
	delivered, recvBytes := 0, 0
	var lastCtx trace.Ctx
	var lastEnq int64
	var firstErr error
	for i := 0; i < got; i++ {
		payload := nodes[i].Payload()
		if e.tr != nil {
			if tid, span, enq := nodes[i].Trace(); tid != 0 {
				lastCtx = trace.Ctx{TraceID: tid, Span: span}
				lastEnq = enq
			}
		}
		if len(payload) > len(bufs[delivered]) {
			if firstErr == nil {
				firstErr = fmt.Errorf("%w: need %d, have %d", ErrShortBuffer, len(payload), len(bufs[delivered]))
			}
			continue
		}
		lens[delivered] = copy(bufs[delivered], payload)
		recvBytes += lens[delivered]
		delivered++
	}
	e.pcRecv(delivered, recvBytes)
	if lastCtx.Traced() {
		e.traceRecvPlain(lastCtx, lastEnq)
	}
	if err := e.pool.PutBatch(nodes[:got]); err != nil && firstErr == nil {
		firstErr = err
	}
	return delivered, firstErr
}

// SwitchlessReport aggregates the switchless counters for Report.
type SwitchlessReport struct {
	// Enabled reports whether the mode is configured.
	Enabled bool
	// Proxies is the proxy-worker count.
	Proxies int
	// RingPosts counts records posted to tx call rings.
	RingPosts uint64
	// Relayed counts records the proxies carried end to end.
	Relayed uint64
	// Inline counts records sealed or opened inline while a proxy was
	// parked (the blocking fallback).
	Inline uint64
	// Dropped counts records shed at open: auth or replay failures,
	// plus the narrow race of losing a pool node or ring slot to a
	// concurrent consumer after the affordability check. Segments that
	// simply lack rx capacity stall and retry instead of counting here.
	Dropped uint64
	// CrossingsAvoided and Parks mirror the platform counters.
	CrossingsAvoided uint64
	Parks            uint64
}

// switchlessReport snapshots the runtime's switchless counters.
func (rt *Runtime) switchlessReport() SwitchlessReport {
	r := SwitchlessReport{}
	if rt.sw == nil {
		return r
	}
	r.Enabled = true
	r.Proxies = len(rt.sw.proxies)
	for _, d := range rt.sw.dirs {
		r.RingPosts += d.ringPosts.Load()
		r.Relayed += d.relayed.Load()
		r.Inline += d.inline.Load()
		r.Dropped += d.rxDropped.Load()
	}
	s := rt.platform.Snapshot()
	r.CrossingsAvoided = s.CrossingsAvoided
	r.Parks = s.ProxyParks
	return r
}
