package core

import (
	"errors"
	"fmt"
	"sync"

	"github.com/eactors/eactors-go/internal/ecrypto"
	"github.com/eactors/eactors-go/internal/faults"
	"github.com/eactors/eactors-go/internal/mem"
	"github.com/eactors/eactors-go/internal/profile"
	"github.com/eactors/eactors-go/internal/sgx"
	"github.com/eactors/eactors-go/internal/telemetry"
	"github.com/eactors/eactors-go/internal/trace"
)

// Runtime realises a Config: it creates the enclaves, preallocates the
// node pool, wires the channels (establishing attestation-derived keys
// for cross-enclave ones), runs the eactor constructors, and drives the
// workers (Section 3.2: "When the application is started, the generated
// EActors runtime creates the enclaves, allocates the private state,
// calls the constructors of the actors and creates as well as starts the
// workers").
type Runtime struct {
	platform *sgx.Platform
	arena    *mem.Arena
	pool     *mem.Pool

	enclaves map[string]*sgx.Enclave
	actors   map[string]*actorInstance
	channels map[string]*Channel
	workers  []*Worker

	// privatePools holds the per-enclave pools of EnclaveSpecs that
	// requested one; same-enclave channels draw from them.
	privatePools map[string]*mem.Pool

	// tel and m are the observability subsystem; both nil unless
	// Config.Telemetry was set.
	tel *telemetry.Registry
	m   *metrics

	// tr is the causal tracer; nil unless Config.Trace was set.
	tr *trace.Tracer

	// prof is the per-actor cost collector; nil unless Config.Profile
	// was set.
	prof *profile.Collector

	// sw is the switchless subsystem (proxy workers and call rings);
	// nil unless Config.Switchless.Enabled was set.
	sw *switchless

	// flt is the fault injector (Config.Faults); nil in production.
	flt *faults.Injector

	mu      sync.Mutex
	started bool
	stopped bool

	stopOnce sync.Once
	stopCh   chan struct{}

	failedMu sync.Mutex
	failed   []string
}

// actorFailed records a body panic (called by workers).
func (rt *Runtime) actorFailed(name string) {
	rt.failedMu.Lock()
	rt.failed = append(rt.failed, name)
	rt.failedMu.Unlock()
}

// actorRestarted removes a revived actor from the failed list (called
// by workers after a supervised restart).
func (rt *Runtime) actorRestarted(name string) {
	rt.failedMu.Lock()
	for i, n := range rt.failed {
		if n == name {
			rt.failed = append(rt.failed[:i], rt.failed[i+1:]...)
			break
		}
	}
	rt.failedMu.Unlock()
}

// FailedActors lists eactors currently parked after a body panic, with
// their panic values available via ActorFailure. A supervised restart
// removes the actor from the list; use ActorRestarts/Supervision for
// the history.
func (rt *Runtime) FailedActors() []string {
	rt.failedMu.Lock()
	defer rt.failedMu.Unlock()
	return append([]string(nil), rt.failed...)
}

// ActorFailure returns the recorded panic value of a failed actor.
func (rt *Runtime) ActorFailure(name string) (string, bool) {
	inst, ok := rt.actors[name]
	if !ok || !inst.failed.Load() {
		return "", false
	}
	return inst.failureText(), true
}

// NewRuntime validates cfg and builds a runtime on the given platform.
// A nil platform gets a fresh one with the default (paper-calibrated)
// cost model.
func NewRuntime(platform *sgx.Platform, cfg Config) (*Runtime, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if platform == nil {
		platform = sgx.NewPlatform()
	}

	poolNodes := cfg.PoolNodes
	if poolNodes == 0 {
		poolNodes = DefaultPoolNodes
	}
	nodePayload := cfg.NodePayload
	if nodePayload == 0 {
		nodePayload = DefaultNodePayload
	}
	arena, err := mem.NewArena(poolNodes, nodePayload)
	if err != nil {
		return nil, err
	}

	rt := &Runtime{
		platform: platform,
		arena:    arena,
		pool:     mem.NewPool(arena),
		enclaves: make(map[string]*sgx.Enclave, len(cfg.Enclaves)),
		actors:   make(map[string]*actorInstance, len(cfg.Actors)),
		channels: make(map[string]*Channel, len(cfg.Channels)),
		stopCh:   make(chan struct{}),
	}
	if cfg.Telemetry {
		rt.tel = telemetry.New(len(cfg.Workers), cfg.TelemetryRecorderSize)
		rt.m = newMetrics(rt.tel, len(cfg.Workers))
		platform.AttachTelemetry(rt.tel)
	}
	if cfg.Trace {
		// Proxy workers record seal/open/crossing spans on rings of
		// their own, after the worker rings.
		rt.tr = trace.New(len(cfg.Workers)+cfg.Switchless.proxyCount(), cfg.TraceBufferSpans, cfg.TraceSampleEvery)
	}
	if cfg.Profile {
		rt.prof = profile.NewCollector(cfg.ProfileSampleEvery)
	}
	if cfg.Faults != nil {
		rt.flt = cfg.Faults
		platform.AttachFaults(cfg.Faults)
		if rt.tel != nil {
			// Every injected fault leaves an EvFault event on the system
			// flight recorder (Record is race-clean from any goroutine),
			// so a chaos run's post-mortem shows what was injected where.
			rec := rt.tel.SystemRecorder()
			cfg.Faults.SetObserver(func(site faults.Site, class faults.Class) {
				rec.Record(telemetry.EvFault, uint32(site), uint64(class))
			})
		}
	}

	// Enclaves (plus their private pools, whose memory is charged to the
	// enclave's EPC footprint).
	rt.privatePools = make(map[string]*mem.Pool)
	for _, es := range cfg.Enclaves {
		size := es.SizeBytes
		if size == 0 {
			size = DefaultEnclaveSize
		}
		e, err := platform.CreateEnclave(es.Name, size)
		if err != nil {
			rt.teardownEnclaves()
			return nil, err
		}
		rt.enclaves[es.Name] = e
		rt.prof.RegisterEnclave(es.Name, e.PagesResident, e.EvictedPages)
		if es.PrivatePoolNodes > 0 {
			privArena, err := mem.NewArena(es.PrivatePoolNodes, nodePayload)
			if err != nil {
				rt.teardownEnclaves()
				return nil, err
			}
			if err := e.AllocBytes(privArena.Bytes()); err != nil {
				rt.teardownEnclaves()
				return nil, err
			}
			rt.privatePools[es.Name] = mem.NewPool(privArena)
		}
	}

	// Actor instances. Tags are small dense ids the flight recorder uses
	// in place of names (events are two words, not strings).
	for tag, spec := range cfg.Actors {
		inst := &actorInstance{
			spec:      spec,
			tag:       uint32(tag),
			endpoints: make(map[string]*Endpoint),
		}
		if spec.Enclave != "" {
			inst.enclave = rt.enclaves[spec.Enclave]
		}
		rt.actors[spec.Name] = inst
		rt.tr.NameActor(inst.tag, spec.Name)
		inst.cost = rt.prof.RegisterActor(inst.tag, spec.Name, spec.Enclave, spec.Worker)
	}

	// Workers, with their actors in declaration order so that co-located
	// eactors run back-to-back without transitions. Workers are built
	// before channels because every endpoint captures its peer's worker
	// doorbell.
	rt.workers = make([]*Worker, len(cfg.Workers))
	for i, ws := range cfg.Workers {
		rt.workers[i] = &Worker{
			id:          i,
			rt:          rt,
			ctx:         sgx.NewContext(platform),
			cpus:        append([]int(nil), ws.CPUs...),
			idleSleep:   cfg.IdleSleep,
			drainBudget: cfg.DrainBudget,
			doorbell:    make(chan struct{}, 1),
			stop:        rt.stopCh,
			done:        make(chan struct{}),
		}
		if rt.workers[i].idleSleep == 0 {
			rt.workers[i].idleSleep = DefaultIdleSleep
		}
		if rt.workers[i].drainBudget == 0 {
			rt.workers[i].drainBudget = DefaultDrainBudget
		}
		if rt.m != nil {
			rt.workers[i].m = rt.m
			rt.workers[i].rec = rt.tel.Recorder(i)
			rt.workers[i].ctx.AttachTelemetry(i, rt.workers[i].rec)
		}
		if rt.tr != nil {
			rt.workers[i].tr = rt.tr
			// Crossing capture lets a traced invocation claim the enclave
			// transition that preceded it.
			rt.workers[i].ctx.ArmCrossCapture()
		}
		rt.workers[i].inj = rt.flt
	}
	for _, spec := range cfg.Actors {
		w := rt.workers[spec.Worker]
		inst := rt.actors[spec.Name]
		inst.worker = w
		inst.self = &Self{inst: inst, rt: rt, ctx: w.ctx, State: spec.State}
		w.actors = append(w.actors, inst)
	}

	// Channels.
	for _, cs := range cfg.Channels {
		if err := rt.buildChannel(cs); err != nil {
			rt.teardownEnclaves()
			return nil, err
		}
	}

	if rt.tel != nil {
		rt.registerRuntimeFuncs()
		if rt.prof != nil {
			rt.registerProfileFuncs(cfg)
		}
	}

	// Switchless mode last: its dirs hook into fully built endpoints,
	// and its proxy goroutines start now so endpoints are serviced even
	// before Start (test harnesses drive endpoints directly).
	if err := rt.buildSwitchless(cfg); err != nil {
		rt.teardownEnclaves()
		return nil, err
	}
	return rt, nil
}

// buildChannel creates the mboxes and, for cross-enclave non-plaintext
// channels, performs the local-attestation key agreement and installs a
// per-direction cipher on each endpoint.
func (rt *Runtime) buildChannel(cs ChannelSpec) error {
	capacity := cs.Capacity
	if capacity == 0 {
		capacity = DefaultMboxCapacity
	}
	ab, err := mem.NewMbox(capacity)
	if err != nil {
		return fmt.Errorf("core: channel %q: %w", cs.Name, err)
	}
	ba, err := mem.NewMbox(capacity)
	if err != nil {
		return fmt.Errorf("core: channel %q: %w", cs.Name, err)
	}

	instA := rt.actors[cs.A]
	instB := rt.actors[cs.B]
	encrypted := !cs.Plaintext && crossesEnclaves(instA, instB)

	// Same-enclave channels draw from that enclave's private pool when
	// one was configured; everything else uses the shared public pool.
	pool := rt.pool
	if instA.enclave != nil && instA.enclave == instB.enclave {
		if private, ok := rt.privatePools[instA.spec.Enclave]; ok {
			pool = private
		}
	}
	ch := &Channel{name: cs.Name, a: cs.A, b: cs.B, encrypted: encrypted, ab: ab, ba: ba, tag: uint32(len(rt.channels))}
	epA := &Endpoint{ch: ch, out: ab, in: ba, pool: pool, peerWake: instB.worker.Wake, inj: rt.flt}
	epB := &Endpoint{ch: ch, out: ba, in: ab, pool: pool, peerWake: instA.worker.Wake, inj: rt.flt}
	if rt.tr != nil {
		rt.tr.NameChannel(ch.tag, cs.Name)
		epA.tr, epA.scope, epA.owner = rt.tr, &instA.scope, instA.spec.Worker
		epB.tr, epB.scope, epB.owner = rt.tr, &instB.scope, instB.spec.Worker
	}
	if rt.prof != nil {
		// Each direction gets its own communication-matrix edge; dwell
		// spans recorded by a receiving worker for this channel resolve
		// to the receiving actor.
		epA.pc, epA.pcEdge, epA.pcMask = instA.cost, rt.prof.RegisterEdge(instA.tag, instB.tag, cs.Name), rt.prof.Mask()
		epB.pc, epB.pcEdge, epB.pcMask = instB.cost, rt.prof.RegisterEdge(instB.tag, instA.tag, cs.Name), rt.prof.Mask()
		rt.prof.RegisterDwell(ch.tag, instB.spec.Worker, instB.tag) // A→B messages dwell at B
		rt.prof.RegisterDwell(ch.tag, instA.spec.Worker, instA.tag) // B→A messages dwell at A
	}
	if rt.m != nil {
		// Endpoints are single-owner (their actor's worker), so each
		// carries its owner's shard index and flight recorder; the
		// sampled send-latency histogram is shared per channel.
		sendNs := rt.tel.Histogram(
			fmt.Sprintf("eactors_channel_send_ns{channel=%q}", cs.Name),
			"send operation latency, sampled 1/16", "ns")
		epA.m, epA.shard, epA.rec, epA.sendNs = rt.m, instA.worker.id, rt.tel.Recorder(instA.worker.id), sendNs
		epB.m, epB.shard, epB.rec, epB.sendNs = rt.m, instB.worker.id, rt.tel.Recorder(instB.worker.id), sendNs
	}

	if encrypted {
		key, err := rt.channelKey(instA, instB)
		if err != nil {
			return fmt.Errorf("core: channel %q: %w", cs.Name, err)
		}
		cipherA, err := ecrypto.NewCipher(key, 0)
		if err != nil {
			return fmt.Errorf("core: channel %q: %w", cs.Name, err)
		}
		cipherB, err := ecrypto.NewCipher(key, 1)
		if err != nil {
			return fmt.Errorf("core: channel %q: %w", cs.Name, err)
		}
		epA.cipher = cipherA
		epB.cipher = cipherB
	}

	ch.epA, ch.epB = epA, epB
	instA.endpoints[cs.Name] = epA
	instB.endpoints[cs.Name] = epB
	rt.channels[cs.Name] = ch
	if rt.tel != nil {
		rt.registerChannelFuncs(ch)
	}
	return nil
}

// crossesEnclaves reports whether two eactors live in different trust
// domains (including enclave vs untrusted).
func crossesEnclaves(a, b *actorInstance) bool {
	return a.enclave != b.enclave
}

// channelKey derives the shared key for an encrypted channel. Between
// two enclaves it runs the local-attestation handshake; when one side is
// untrusted (an uncommon but legal configuration) the enclave side
// simply generates a key — confidentiality against the runtime is then
// not provided, matching the paper's trust model for such links.
func (rt *Runtime) channelKey(a, b *actorInstance) ([ecrypto.KeySize]byte, error) {
	switch {
	case a.enclave != nil && b.enclave != nil:
		return sgx.EstablishSessionKey(a.enclave, b.enclave)
	case a.enclave != nil:
		return oneSidedKey(a.enclave), nil
	case b.enclave != nil:
		return oneSidedKey(b.enclave), nil
	default:
		return [ecrypto.KeySize]byte{}, errors.New("core: encrypted channel between two untrusted actors")
	}
}

func oneSidedKey(e *sgx.Enclave) [ecrypto.KeySize]byte {
	var key [ecrypto.KeySize]byte
	e.ReadRand(key[:])
	return key
}

// Platform returns the underlying SGX platform (for stats and enclaves).
func (rt *Runtime) Platform() *sgx.Platform { return rt.platform }

// Pool returns the shared public node pool.
func (rt *Runtime) Pool() *mem.Pool { return rt.pool }

// PrivatePool returns the private pool of an enclave, if configured.
func (rt *Runtime) PrivatePool(enclave string) (*mem.Pool, bool) {
	p, ok := rt.privatePools[enclave]
	return p, ok
}

// EnclaveByName returns a configured enclave.
func (rt *Runtime) EnclaveByName(name string) (*sgx.Enclave, bool) {
	e, ok := rt.enclaves[name]
	return e, ok
}

// ChannelByName returns a configured channel.
func (rt *Runtime) ChannelByName(name string) (*Channel, bool) {
	ch, ok := rt.channels[name]
	return ch, ok
}

// EndpointForTest returns an actor's endpoint on a channel. Endpoints
// are owned by their actor's worker; driving one from another goroutine
// is only safe when that actor's body never touches it — test harnesses
// and protocol drivers use this, applications should not.
func (rt *Runtime) EndpointForTest(actor, channel string) (*Endpoint, error) {
	inst, ok := rt.actors[actor]
	if !ok {
		return nil, fmt.Errorf("core: unknown actor %q", actor)
	}
	ep, ok := inst.endpoints[channel]
	if !ok {
		return nil, fmt.Errorf("core: actor %q has no endpoint on %q", actor, channel)
	}
	return ep, nil
}

// EndpointForTest is the package-level convenience of
// Runtime.EndpointForTest.
func EndpointForTest(rt *Runtime, actor, channel string) (*Endpoint, error) {
	return rt.EndpointForTest(actor, channel)
}

// Tracer returns the causal tracer, or nil (a valid no-op receiver)
// when Config.Trace is off.
func (rt *Runtime) Tracer() *trace.Tracer { return rt.tr }

// ScopeForTest returns an actor's trace scope so external drivers (the
// same test harnesses EndpointForTest serves) can root and adopt trace
// contexts on behalf of an idle actor. The scope is atomic, so this is
// race-clean even against the owning worker.
func (rt *Runtime) ScopeForTest(actor string) (*trace.Scope, error) {
	inst, ok := rt.actors[actor]
	if !ok {
		return nil, fmt.Errorf("core: unknown actor %q", actor)
	}
	return &inst.scope, nil
}

// Workers returns the runtime's workers.
func (rt *Runtime) Workers() []*Worker { return rt.workers }

// Start runs the eactor constructors (inside their enclaves) and starts
// the worker threads. It may be called once.
func (rt *Runtime) Start() error {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.started {
		return errors.New("core: runtime already started")
	}
	if rt.stopped {
		return errors.New("core: runtime already stopped")
	}

	// Constructors run sequentially on an init context, entering each
	// actor's enclave like the generated runtime of the paper does.
	initCtx := sgx.NewContext(rt.platform)
	for _, w := range rt.workers {
		for _, inst := range w.actors {
			if inst.spec.Init == nil {
				continue
			}
			if inst.enclave != nil {
				if err := initCtx.Enter(inst.enclave); err != nil {
					return err
				}
			} else {
				initCtx.Exit()
			}
			// Constructors share the worker's context view for channel
			// setup; swap in the init context for the duration.
			inst.self.ctx = initCtx
			err := inst.spec.Init(inst.self)
			inst.self.ctx = w.ctx
			if err != nil {
				initCtx.Exit()
				return fmt.Errorf("core: init of actor %q: %w", inst.spec.Name, err)
			}
		}
	}
	initCtx.Exit()

	rt.started = true
	for _, w := range rt.workers {
		go w.run()
	}
	return nil
}

func (rt *Runtime) requestStop() {
	rt.stopOnce.Do(func() { close(rt.stopCh) })
}

// Stop signals all workers, waits for them to drain, and destroys the
// enclaves. It is idempotent.
func (rt *Runtime) Stop() {
	rt.mu.Lock()
	if rt.stopped {
		rt.mu.Unlock()
		return
	}
	started := rt.started
	rt.stopped = true
	rt.mu.Unlock()

	rt.requestStop()
	if started {
		for _, w := range rt.workers {
			<-w.done
		}
	}
	// Proxies stop after the workers: no new ring posts or RunUntrusted
	// calls can arrive, so their final drain quiesces the rings before
	// the enclaves go away.
	if rt.sw != nil {
		rt.sw.stop()
	}
	rt.teardownEnclaves()
}

// Wait blocks until the runtime has been asked to stop (by Stop or by an
// eactor calling Self.StopRuntime) and all workers have exited.
func (rt *Runtime) Wait() {
	<-rt.stopCh
	rt.mu.Lock()
	started := rt.started
	rt.mu.Unlock()
	if started {
		for _, w := range rt.workers {
			<-w.done
		}
	}
}

func (rt *Runtime) teardownEnclaves() {
	for name, e := range rt.enclaves {
		rt.platform.DestroyEnclave(e)
		delete(rt.enclaves, name)
	}
}
