package core

import (
	"testing"
)

func TestRuntimeReport(t *testing.T) {
	a, _, rt := buildPair(t, true, 8, 16, 128)
	if err := a.Send([]byte("traffic")); err != nil {
		t.Fatal(err)
	}
	r := rt.Report()

	if len(r.Workers) != 1 {
		t.Fatalf("workers = %d", len(r.Workers))
	}
	if len(r.Workers[0].Actors) != 2 {
		t.Fatalf("worker actors = %v", r.Workers[0].Actors)
	}
	if len(r.Channels) != 1 || r.Channels[0].Name != "link" {
		t.Fatalf("channels = %+v", r.Channels)
	}
	if !r.Channels[0].Encrypted {
		t.Fatal("cross-enclave channel reported plaintext")
	}
	if r.Channels[0].Stats.AToB != 1 {
		t.Fatalf("AToB = %d", r.Channels[0].Stats.AToB)
	}
	if len(r.Enclaves) != 2 {
		t.Fatalf("enclaves = %+v", r.Enclaves)
	}
	for _, e := range r.Enclaves {
		if e.PagesResident <= 0 {
			t.Fatalf("enclave %s has no resident pages", e.Name)
		}
		if e.PrivatePoolFree != -1 {
			t.Fatalf("enclave %s reports a private pool it does not have", e.Name)
		}
	}
	if r.PublicPoolFree != 15 { // one node in flight
		t.Fatalf("PublicPoolFree = %d", r.PublicPoolFree)
	}
	if len(r.FailedActors) != 0 {
		t.Fatalf("FailedActors = %v", r.FailedActors)
	}
	// The attestation handshake consumed trusted RNG bytes.
	if r.Platform.RandBytes == 0 {
		t.Fatal("platform counters missing from report")
	}
}
