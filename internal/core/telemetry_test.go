package core

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/eactors/eactors-go/internal/telemetry"
)

// monitorDeployment builds and starts a telemetry-enabled runtime with a
// MONITOR eactor wired to a "client" actor over an ordinary channel. The
// client's endpoint is driven from the test goroutine (its body never
// touches it), exactly like TestDoorbellWakesIdleWorker drives its
// producer.
func monitorDeployment(t *testing.T, enabled bool) (*Endpoint, *Runtime) {
	t.Helper()
	cfg := Config{
		Telemetry: enabled,
		Workers:   []WorkerSpec{{}, {}},
		PoolNodes: 16,
		// Summaries and reports are long; give the query channel room.
		NodePayload: 8192,
		Channels:    []ChannelSpec{{Name: "mon", A: "client", B: "monitor", Capacity: 8}},
		Actors: []Spec{
			{Name: "client", Worker: 0, Body: func(*Self) {}},
			MonitorSpec("monitor", 1),
		},
	}
	rt, err := NewRuntime(zeroPlatform(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Stop)
	return rt.actors["client"].endpoints["mon"], rt
}

// monitorQuery sends one query and waits for the monitor's reply.
func monitorQuery(t *testing.T, ep *Endpoint, query string) string {
	t.Helper()
	if err := ep.Send([]byte(query)); err != nil {
		t.Fatalf("send %q: %v", query, err)
	}
	buf := make([]byte, ep.MaxPayload())
	deadline := time.Now().Add(5 * time.Second)
	for {
		n, ok, err := ep.Recv(buf)
		if err != nil {
			t.Fatalf("recv reply to %q: %v", query, err)
		}
		if ok {
			return string(buf[:n])
		}
		if time.Now().After(deadline) {
			t.Fatalf("no reply to %q within 5s", query)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestMonitorMailboxRoundTrip is the acceptance check for the MONITOR
// system eactor: stats, rates, report and dump queries answered over a
// plain mailbox.
func TestMonitorMailboxRoundTrip(t *testing.T) {
	ep, _ := monitorDeployment(t, true)

	stats := monitorQuery(t, ep, "stats")
	if !strings.Contains(stats, "eactors_worker_invocations") {
		t.Fatalf("stats reply missing worker counters:\n%s", stats)
	}
	if !strings.Contains(stats, "eactors_channel_msgs_sent") {
		t.Fatalf("stats reply missing channel counters:\n%s", stats)
	}

	report := monitorQuery(t, ep, "report")
	if !strings.Contains(report, "worker 0") || !strings.Contains(report, "channel mon") {
		t.Fatalf("report reply incomplete:\n%s", report)
	}

	rates := monitorQuery(t, ep, "rates")
	if !strings.Contains(rates, "eactors_worker_invocations/s") {
		t.Fatalf("rates reply missing headline counter:\n%s", rates)
	}

	// Worker 1 runs the monitor itself, so its flight recorder must hold
	// invoke events by the time it answers.
	dump := monitorQuery(t, ep, "dump 1")
	if !strings.Contains(dump, "invoke") {
		t.Fatalf("worker dump has no invoke events:\n%s", dump)
	}

	if reply := monitorQuery(t, ep, "bogus"); !strings.Contains(reply, "error: unknown query") {
		t.Fatalf("unknown query not rejected: %q", reply)
	}
	if reply := monitorQuery(t, ep, "dump nobody"); !strings.Contains(reply, "error") {
		t.Fatalf("dump of unknown target not rejected: %q", reply)
	}
}

// TestMonitorTelemetryDisabled: the monitor must answer (with an error),
// not wedge, when the registry is absent.
func TestMonitorTelemetryDisabled(t *testing.T) {
	ep, _ := monitorDeployment(t, false)
	if reply := monitorQuery(t, ep, "stats"); !strings.Contains(reply, "telemetry disabled") {
		t.Fatalf("disabled-telemetry reply = %q", reply)
	}
}

// TestDoorbellBurstWakeNotLost is the wake-coalescing regression test: a
// burst of sends landing while the consumer is mid-drain must not lose
// the wakeup. The consumer takes one message per invocation so every
// burst overlaps a drain; with a 2s idle backstop, a lost doorbell
// strands the tail of the burst far past the 1s deadline.
func TestDoorbellBurstWakeNotLost(t *testing.T) {
	const burst, rounds = 8, 10
	var received atomic.Int64
	cfg := Config{
		Workers:   []WorkerSpec{{}, {}},
		IdleSleep: 2 * time.Second,
		PoolNodes: 32,
		Channels:  []ChannelSpec{{Name: "link", A: "producer", B: "consumer", Capacity: 16}},
		Actors: []Spec{
			{Name: "producer", Worker: 0, Body: func(*Self) {}},
			{
				Name: "consumer", Worker: 1,
				Body: func(self *Self) {
					ch := self.MustChannel("link")
					buf := make([]byte, 16)
					if _, ok, _ := ch.Recv(buf); ok {
						received.Add(1)
						self.Progress()
					}
				},
			},
		},
	}
	rt, err := NewRuntime(zeroPlatform(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()

	ep := rt.actors["producer"].endpoints["link"]
	for r := 0; r < rounds; r++ {
		// Let the consumer drain and park between bursts.
		time.Sleep(20 * time.Millisecond)
		target := received.Load() + burst
		for i := 0; i < burst; i++ {
			for ep.Send([]byte("burst")) != nil {
				time.Sleep(time.Millisecond)
			}
		}
		deadline := time.Now().Add(time.Second)
		for received.Load() < target {
			if time.Now().After(deadline) {
				t.Fatalf("round %d: %d/%d burst messages received after 1s — doorbell wakeup lost (idle backstop is 2s)",
					r, received.Load()-(target-burst), burst)
			}
			time.Sleep(time.Millisecond)
		}
	}
}

// TestReportTelemetryCoverage drives a deterministic 2-enclave/3-worker
// deployment and checks that Report covers crossings, pool occupancy,
// failed actors and the telemetry-backed latency quantiles.
func TestReportTelemetryCoverage(t *testing.T) {
	const msgs = 256
	var got atomic.Int64
	type pingState struct{ sent int }
	st := &pingState{}
	cfg := Config{
		Telemetry:   true,
		Enclaves:    []EnclaveSpec{{Name: "ea"}, {Name: "eb"}},
		Workers:     []WorkerSpec{{}, {}, {}},
		PoolNodes:   32,
		NodePayload: 128,
		Channels:    []ChannelSpec{{Name: "pp", A: "ping", B: "pong", Capacity: 8}},
		Actors: []Spec{
			{
				Name: "ping", Enclave: "ea", Worker: 0, State: st,
				Body: func(self *Self) {
					s := self.State.(*pingState)
					if s.sent >= msgs {
						return
					}
					if self.MustChannel("pp").Send([]byte("payload")) == nil {
						s.sent++
						self.Progress()
					}
				},
			},
			{
				Name: "pong", Enclave: "eb", Worker: 1,
				Body: func(self *Self) {
					buf := make([]byte, 128)
					if _, ok, _ := self.MustChannel("pp").Recv(buf); ok {
						got.Add(1)
						self.Progress()
					}
				},
			},
			{Name: "crash", Worker: 2, Body: func(*Self) { panic("report coverage") }},
		},
	}
	rt, err := NewRuntime(zeroPlatform(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()

	deadline := time.Now().Add(10 * time.Second)
	for got.Load() < msgs || len(rt.FailedActors()) == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("workload stalled: recv=%d failed=%v", got.Load(), rt.FailedActors())
		}
		time.Sleep(time.Millisecond)
	}

	r := rt.Report()
	if len(r.Workers) != 3 {
		t.Fatalf("workers = %d", len(r.Workers))
	}
	for _, w := range r.Workers[:2] {
		if w.Invocations == 0 {
			t.Fatalf("worker %d reports zero invocations", w.ID)
		}
		if w.InvokeP50Ns == 0 || w.InvokeP99Ns < w.InvokeP50Ns {
			t.Fatalf("worker %d invoke quantiles p50=%d p99=%d", w.ID, w.InvokeP50Ns, w.InvokeP99Ns)
		}
		if w.Crossings == 0 {
			t.Fatalf("worker %d hosts an enclaved actor but reports no crossings", w.ID)
		}
	}
	if len(r.Channels) != 1 {
		t.Fatalf("channels = %+v", r.Channels)
	}
	ch := r.Channels[0]
	if ch.Stats.AToB != msgs {
		t.Fatalf("AToB = %d, want %d", ch.Stats.AToB, msgs)
	}
	// 1-in-16 sampling over 256 sends leaves ~16 observations.
	if ch.SendP50Ns == 0 || ch.SendP99Ns < ch.SendP50Ns {
		t.Fatalf("channel send quantiles p50=%d p99=%d", ch.SendP50Ns, ch.SendP99Ns)
	}
	if r.PublicPoolFree != 32 {
		t.Fatalf("PublicPoolFree = %d after full drain, want 32", r.PublicPoolFree)
	}
	if len(r.FailedActors) != 1 || r.FailedActors[0] != "crash" {
		t.Fatalf("FailedActors = %v", r.FailedActors)
	}
	if r.Platform.Crossings == 0 {
		t.Fatal("platform crossings missing")
	}

	// The panic must have produced a flight-recorder dump ending in the
	// park event — the acceptance criterion for post-mortem tracing.
	dump := rt.ActorFlightDump("crash")
	if len(dump) == 0 {
		t.Fatal("no flight dump captured for the panicked actor")
	}
	if last := dump[len(dump)-1]; last.Kind != telemetry.EvPark {
		t.Fatalf("dump ends in %v, want park:\n%s", last.Kind, telemetry.FormatDump(dump))
	}
	if rt.ActorFlightDump("ping") != nil {
		t.Fatal("healthy actor has a failure dump")
	}
	if rt.ActorFlightDump("nobody") != nil {
		t.Fatal("unknown actor has a failure dump")
	}
}

// TestTelemetryPrometheusFamilies checks the registry a runtime builds
// exposes the metric families the HTTP endpoint advertises.
func TestTelemetryPrometheusFamilies(t *testing.T) {
	ep, rt := monitorDeployment(t, true)
	_ = monitorQuery(t, ep, "stats") // force some traffic through the channel

	var sb strings.Builder
	if rt.Telemetry() == nil {
		t.Fatal("enabled runtime has no registry")
	}
	rt.Telemetry().WritePrometheus(&sb)
	text := sb.String()
	for _, family := range []string{
		"eactors_worker_invocations",
		"eactors_channel_msgs_sent",
		"eactors_sgx_crossings",
		"eactors_pool_free",
	} {
		if !strings.Contains(text, family) {
			t.Fatalf("prometheus text missing %s:\n%s", family, text)
		}
	}
}
