package core

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"github.com/eactors/eactors-go/internal/sgx"
)

func zeroPlatform() *sgx.Platform {
	return sgx.NewPlatform(sgx.WithCostModel(sgx.ZeroCostModel()))
}

// pingPongConfig builds the paper's Listing-1 ping-pong with the given
// placement; rounds counts completed ping-pong pairs.
func pingPongConfig(rounds *atomic.Int64, target int64, pingEnclave, pongEnclave string, plaintext bool) Config {
	var enclaves []EnclaveSpec
	seen := map[string]bool{}
	for _, e := range []string{pingEnclave, pongEnclave} {
		if e != "" && !seen[e] {
			enclaves = append(enclaves, EnclaveSpec{Name: e})
			seen[e] = true
		}
	}
	type pingState struct{ first bool }
	return Config{
		Enclaves: enclaves,
		Workers:  []WorkerSpec{{}, {}},
		Channels: []ChannelSpec{{Name: "pp", A: "ping", B: "pong", Plaintext: plaintext}},
		Actors: []Spec{
			{
				Name: "ping", Enclave: pingEnclave, Worker: 0,
				State: &pingState{first: true},
				Body: func(self *Self) {
					st := self.State.(*pingState)
					ch := self.MustChannel("pp")
					if st.first {
						st.first = false
						_ = ch.Send([]byte("ping")) //sendcheck:ok
						self.Progress()
						return
					}
					buf := make([]byte, 16)
					n, ok, err := ch.Recv(buf)
					if err != nil || !ok {
						return
					}
					if string(buf[:n]) != "pong" {
						panic("ping received " + string(buf[:n]))
					}
					if rounds.Add(1) >= target {
						self.StopRuntime()
						return
					}
					_ = ch.Send([]byte("ping")) //sendcheck:ok
					self.Progress()
				},
			},
			{
				Name: "pong", Enclave: pongEnclave, Worker: 1,
				Body: func(self *Self) {
					ch := self.MustChannel("pp")
					buf := make([]byte, 16)
					n, ok, err := ch.Recv(buf)
					if err != nil || !ok {
						return
					}
					if string(buf[:n]) != "ping" {
						panic("pong received " + string(buf[:n]))
					}
					_ = ch.Send([]byte("pong")) //sendcheck:ok
					self.Progress()
				},
			},
		},
	}
}

func runPingPong(t *testing.T, pingEnclave, pongEnclave string, plaintext bool) *Runtime {
	t.Helper()
	var rounds atomic.Int64
	cfg := pingPongConfig(&rounds, 50, pingEnclave, pongEnclave, plaintext)
	rt, err := NewRuntime(zeroPlatform(), cfg)
	if err != nil {
		t.Fatalf("NewRuntime: %v", err)
	}
	if err := rt.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	waitOrFatal(t, rt, 10*time.Second)
	rt.Stop()
	if got := rounds.Load(); got < 50 {
		t.Fatalf("rounds = %d, want >= 50", got)
	}
	return rt
}

func waitOrFatal(t *testing.T, rt *Runtime, timeout time.Duration) {
	t.Helper()
	done := make(chan struct{})
	go func() {
		rt.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(timeout):
		t.Fatal("runtime did not finish in time")
	}
}

func TestPingPongUntrusted(t *testing.T) {
	runPingPong(t, "", "", false)
}

func TestPingPongSameEnclave(t *testing.T) {
	rt := runPingPong(t, "e1", "e1", false)
	ch, _ := rt.ChannelByName("pp")
	if ch.Encrypted() {
		t.Fatal("same-enclave channel was encrypted")
	}
}

func TestPingPongCrossEnclave(t *testing.T) {
	rt := runPingPong(t, "e1", "e2", false)
	ch, _ := rt.ChannelByName("pp")
	if !ch.Encrypted() {
		t.Fatal("cross-enclave channel was not encrypted")
	}
}

func TestPingPongCrossEnclavePlaintext(t *testing.T) {
	rt := runPingPong(t, "e1", "e2", true)
	ch, _ := rt.ChannelByName("pp")
	if ch.Encrypted() {
		t.Fatal("plaintext-configured channel was encrypted")
	}
}

func TestPingPongMixedTrust(t *testing.T) {
	// One side enclaved, one untrusted: the uniform primitives must work
	// unchanged (the paper's flexibility claim).
	rt := runPingPong(t, "e1", "", false)
	ch, _ := rt.ChannelByName("pp")
	if !ch.Encrypted() {
		t.Fatal("enclave-to-untrusted channel was not encrypted")
	}
}

// TestColocatedWorkerNeverLeavesEnclave checks the paper's key deployment
// property (Section 3.2): a worker whose eactors all live in one enclave
// pays no transitions after entering it.
func TestColocatedWorkerNeverLeavesEnclave(t *testing.T) {
	p := zeroPlatform()
	var rounds atomic.Int64
	cfg := pingPongConfig(&rounds, 200, "shared", "shared", false)
	// Put both actors on one worker to force co-located execution.
	cfg.Actors[0].Worker = 0
	cfg.Actors[1].Worker = 0
	cfg.Workers = []WorkerSpec{{}}
	rt, err := NewRuntime(p, cfg)
	if err != nil {
		t.Fatalf("NewRuntime: %v", err)
	}
	if err := rt.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	waitOrFatal(t, rt, 10*time.Second)
	rt.Stop()

	w := rt.Workers()[0]
	// One enter at the start, one exit at shutdown: exactly 2 crossings.
	if got := w.Context().Crossings(); got != 2 {
		t.Fatalf("co-located worker paid %d crossings, want 2", got)
	}
}

// TestAlternatingWorkerPaysTransitions is the dual: a worker alternating
// between two enclaves pays two crossings per actor switch.
func TestAlternatingWorkerPaysTransitions(t *testing.T) {
	p := zeroPlatform()
	var rounds atomic.Int64
	cfg := pingPongConfig(&rounds, 100, "e1", "e2", false)
	cfg.Actors[0].Worker = 0
	cfg.Actors[1].Worker = 0
	cfg.Workers = []WorkerSpec{{}}
	rt, err := NewRuntime(p, cfg)
	if err != nil {
		t.Fatalf("NewRuntime: %v", err)
	}
	if err := rt.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	waitOrFatal(t, rt, 10*time.Second)
	rt.Stop()

	w := rt.Workers()[0]
	// At least two crossings per completed round (e1->e2 and e2->e1).
	if got := w.Context().Crossings(); got < 200 {
		t.Fatalf("alternating worker paid %d crossings, want >= 200", got)
	}
}

func TestConfigValidation(t *testing.T) {
	body := func(*Self) {}
	base := func() Config {
		return Config{
			Workers: []WorkerSpec{{}},
			Actors:  []Spec{{Name: "a", Body: body}},
		}
	}

	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"no workers", func(c *Config) { c.Workers = nil }},
		{"no actors", func(c *Config) { c.Actors = nil }},
		{"empty actor name", func(c *Config) { c.Actors[0].Name = "" }},
		{"nil body", func(c *Config) { c.Actors[0].Body = nil }},
		{"unknown enclave", func(c *Config) { c.Actors[0].Enclave = "ghost" }},
		{"bad worker index", func(c *Config) { c.Actors[0].Worker = 5 }},
		{"duplicate actors", func(c *Config) {
			c.Actors = append(c.Actors, Spec{Name: "a", Body: body})
		}},
		{"duplicate enclaves", func(c *Config) {
			c.Enclaves = []EnclaveSpec{{Name: "e"}, {Name: "e"}}
		}},
		{"empty enclave name", func(c *Config) {
			c.Enclaves = []EnclaveSpec{{Name: ""}}
		}},
		{"channel unknown endpoint", func(c *Config) {
			c.Channels = []ChannelSpec{{Name: "c", A: "a", B: "nobody"}}
		}},
		{"channel self loop", func(c *Config) {
			c.Channels = []ChannelSpec{{Name: "c", A: "a", B: "a"}}
		}},
		{"channel bad capacity", func(c *Config) {
			c.Actors = append(c.Actors, Spec{Name: "b", Body: body})
			c.Channels = []ChannelSpec{{Name: "c", A: "a", B: "b", Capacity: 3}}
		}},
		{"duplicate channels", func(c *Config) {
			c.Actors = append(c.Actors, Spec{Name: "b", Body: body})
			c.Channels = []ChannelSpec{
				{Name: "c", A: "a", B: "b"},
				{Name: "c", A: "b", B: "a"},
			}
		}},
		{"negative pool", func(c *Config) { c.PoolNodes = -1 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base()
			tc.mutate(&cfg)
			if _, err := NewRuntime(zeroPlatform(), cfg); err == nil {
				t.Fatalf("invalid config accepted")
			}
		})
	}
}

func TestInitOrderingAndErrors(t *testing.T) {
	order := []string{}
	cfg := Config{
		Workers: []WorkerSpec{{}},
		Actors: []Spec{
			{Name: "first", Worker: 0, Body: func(*Self) {},
				Init: func(s *Self) error { order = append(order, "first"); return nil }},
			{Name: "second", Worker: 0, Body: func(*Self) {},
				Init: func(s *Self) error { order = append(order, "second"); return nil }},
		},
	}
	rt, err := NewRuntime(zeroPlatform(), cfg)
	if err != nil {
		t.Fatalf("NewRuntime: %v", err)
	}
	if err := rt.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	rt.Stop()
	if len(order) != 2 || order[0] != "first" || order[1] != "second" {
		t.Fatalf("init order = %v", order)
	}

	wantErr := errors.New("boom")
	cfg.Actors[1].Init = func(*Self) error { return wantErr }
	rt, err = NewRuntime(zeroPlatform(), cfg)
	if err != nil {
		t.Fatalf("NewRuntime: %v", err)
	}
	if err := rt.Start(); !errors.Is(err, wantErr) {
		t.Fatalf("Start err = %v, want wrapped boom", err)
	}
	rt.Stop()
}

func TestInitRunsInsideEnclave(t *testing.T) {
	var initID sgx.EnclaveID
	cfg := Config{
		Enclaves: []EnclaveSpec{{Name: "home"}},
		Workers:  []WorkerSpec{{}},
		Actors: []Spec{{
			Name: "a", Enclave: "home", Worker: 0, Body: func(*Self) {},
			Init: func(s *Self) error {
				initID = s.Context().Current()
				return nil
			},
		}},
	}
	rt, err := NewRuntime(zeroPlatform(), cfg)
	if err != nil {
		t.Fatalf("NewRuntime: %v", err)
	}
	if err := rt.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer rt.Stop()
	home, _ := rt.EnclaveByName("home")
	if initID != home.ID() {
		t.Fatalf("init ran in enclave %d, want %d", initID, home.ID())
	}
}

func TestDoubleStartAndIdempotentStop(t *testing.T) {
	cfg := Config{
		Workers: []WorkerSpec{{}},
		Actors:  []Spec{{Name: "idle", Worker: 0, Body: func(*Self) {}}},
	}
	rt, err := NewRuntime(zeroPlatform(), cfg)
	if err != nil {
		t.Fatalf("NewRuntime: %v", err)
	}
	if err := rt.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	if err := rt.Start(); err == nil {
		t.Fatal("second Start succeeded")
	}
	rt.Stop()
	rt.Stop() // must not panic or deadlock
	if err := rt.Start(); err == nil {
		t.Fatal("Start after Stop succeeded")
	}
}

func TestEnclaveCreationChargesEPC(t *testing.T) {
	p := zeroPlatform()
	cfg := Config{
		Enclaves: []EnclaveSpec{{Name: "sized", SizeBytes: 10 * sgx.PageBytes}},
		Workers:  []WorkerSpec{{}},
		Actors:   []Spec{{Name: "a", Enclave: "sized", Worker: 0, Body: func(*Self) {}}},
	}
	rt, err := NewRuntime(p, cfg)
	if err != nil {
		t.Fatalf("NewRuntime: %v", err)
	}
	if got := p.EPCUsedPages(); got != 10 {
		t.Fatalf("EPCUsedPages = %d, want 10", got)
	}
	rt.Stop()
	if got := p.EPCUsedPages(); got != 0 {
		t.Fatalf("EPCUsedPages after Stop = %d, want 0", got)
	}
}
