package core

import (
	"fmt"
	"runtime"
	"time"

	"github.com/eactors/eactors-go/internal/faults"
	"github.com/eactors/eactors-go/internal/sgx"
	"github.com/eactors/eactors-go/internal/telemetry"
	"github.com/eactors/eactors-go/internal/trace"
)

// Worker executes a set of eactors round-robin on a dedicated OS thread
// (the paper's worker abstraction, Section 3.2). Before each body
// invocation the worker moves its SGX context to the eactor's enclave;
// when consecutive eactors share an enclave the move is free, so a
// worker whose eactors are confined to one enclave never pays a
// transition — the property the paper's deployments exploit.
type Worker struct {
	id        int
	rt        *Runtime
	ctx       *sgx.Context
	actors    []*actorInstance
	cpus      []int
	idleSleep time.Duration

	// drainBudget is handed to each body invocation as its Self.RecvBatch
	// allowance; see Config.DrainBudget.
	drainBudget int

	// doorbell wakes the worker from its idle sleep the moment one of
	// its eactors gets work: channel sends ring the consumer's bell, and
	// system eactors hand their Waker to I/O pumps. Without it, an idle
	// worker's sleep is at the mercy of the scheduler's poll granularity
	// (~1ms), which would put a millisecond on every message hop.
	doorbell chan struct{}

	// m and rec are the telemetry instruments and this worker's flight
	// recorder; both nil unless Config.Telemetry was set.
	m   *metrics
	rec *telemetry.Recorder

	// tr is the runtime's causal tracer; nil unless Config.Trace was
	// set. The worker clears each actor's scope before invoking it and
	// records invoke/crossing spans for traced invocations.
	tr *trace.Tracer

	// inj is the runtime's fault injector (Config.Faults); nil in
	// production. The worker consults it at the invoke site.
	inj *faults.Injector

	stop chan struct{}
	done chan struct{}
}

// Wake unblocks the worker if it is in its idle sleep; it is safe to
// call from any goroutine and never blocks.
func (w *Worker) Wake() {
	select {
	case w.doorbell <- struct{}{}:
	default:
	}
}

// ID returns the worker's index in the runtime configuration.
func (w *Worker) ID() int { return w.id }

// Context returns the worker's SGX execution context.
func (w *Worker) Context() *sgx.Context { return w.ctx }

// Actors returns the names of the eactors assigned to this worker.
func (w *Worker) Actors() []string {
	names := make([]string, len(w.actors))
	for i, a := range w.actors {
		names[i] = a.spec.Name
	}
	return names
}

// invoke runs one body, converting a panic into a parked actor: the
// paper's compartmentalisation argument (Section 2.3) is that a bug in
// one eactor/enclave must not take the rest of the application down, so
// the worker contains the blast radius and keeps scheduling its other
// eactors.
func (w *Worker) invoke(a *actorInstance, crossed bool) {
	defer func() {
		if r := recover(); r != nil {
			// The failure text must be in place before the flag flips,
			// so any reader that observes failed==true (ActorFailure,
			// report.go) sees this park's message. It is an atomic
			// pointer in its own right because supervised restarts let
			// the worker re-park and overwrite it while a reader still
			// holds failed==true from an earlier park. The
			// flight-recorder dump follows the same discipline: it is
			// captured — including the park event itself — before the
			// flag flips, so the post-mortem (ActorFlightDump) shows
			// what the worker did right up to the panic.
			msg := fmt.Sprintf("%v", r)
			a.failure.Store(&msg)
			if w.m != nil {
				w.m.parks.Inc(w.id)
				w.rec.Record(telemetry.EvPark, a.tag, 0)
				dump := w.rec.Dump(0)
				a.dump.Store(&dump)
			}
			// Schedule the supervised restart (if the policy grants one)
			// before the park becomes visible, so any observer that sees
			// failed==true also sees the deadline.
			if !a.spec.Restart.exhausted(a.restarts.Load()) {
				delay := a.spec.Restart.backoff(a.restarts.Load())
				a.restartAt.Store(time.Now().Add(delay).UnixNano())
			}
			// New park, new generation: published before the flag so a
			// RestartActor that sees failed==true targets this park.
			a.parkGen.Add(1)
			a.failed.Store(true)
			w.rt.actorFailed(a.spec.Name)
		}
	}()
	if w.tr != nil {
		// Fresh invocation, fresh causality: the scope only carries a
		// trace while the body that adopted it is on the stack.
		a.scope.Clear()
	}
	if w.m == nil && w.tr == nil && a.cost == nil {
		a.spec.Body(a.self)
		return
	}
	start := time.Now()
	a.spec.Body(a.self)
	elapsed := uint64(time.Since(start))
	if a.cost != nil {
		a.cost.Invocations.Add(1)
		a.cost.InvokeNs.Add(elapsed)
	}
	if w.m != nil {
		w.m.invocations.Inc(w.id)
		w.m.invokeNs[w.id].Observe(elapsed)
		w.rec.Record(telemetry.EvInvoke, a.tag, elapsed)
		if a.self.drainLeft == 0 && w.drainBudget > 0 {
			// The body consumed its entire RecvBatch allowance: a flooded
			// mailbox. Frequent exhaustion is the signal to raise
			// Config.DrainBudget (or add workers).
			w.m.drainExhaust.Inc(w.id)
			w.rec.Record(telemetry.EvDrainExhaust, a.tag, uint64(w.drainBudget))
		}
	}
	if w.tr != nil {
		if c := a.scope.Active(); c.Traced() {
			w.tr.Record(w.id, trace.Span{
				TraceID: c.TraceID, ID: w.tr.NextSpan(), Parent: c.Span,
				Kind: trace.KindInvoke, Ref: a.tag,
				Start: start.UnixNano(), Dur: int64(elapsed),
			})
			if crossed {
				// The worker paid an enclave transition to run this body;
				// retro-attribute it now that we know the invocation was
				// traced (the crossing happened before the scope existed).
				if cs, cd := w.ctx.LastCrossing(); cs != 0 {
					w.tr.Record(w.id, trace.Span{
						TraceID: c.TraceID, ID: w.tr.NextSpan(), Parent: c.Span,
						Kind: trace.KindCrossing, Ref: a.tag,
						Start: cs, Dur: cd,
					})
				}
			}
		}
	}
}

// restartDue reports whether a parked actor's restart should be
// performed now: either its backoff deadline passed or the SUPERVISOR
// forced it.
func (w *Worker) restartDue(a *actorInstance) bool {
	if a.forcePending() {
		return true
	}
	due := a.restartAt.Load()
	return due != 0 && time.Now().UnixNano() >= due
}

// restart revives a parked actor on its owning worker thread — the only
// thread allowed to touch the actor's endpoints, which is what makes
// the mailbox flush safe without locks. The worker has already entered
// the actor's enclave. It returns false when a Reinit failure re-parked
// the actor.
func (w *Worker) restart(a *actorInstance) bool {
	a.forceGen.Store(0)
	a.restartAt.Store(0)
	if a.spec.Restart.FlushMailbox {
		for _, ep := range a.endpoints {
			for {
				node, ok := ep.in.Dequeue()
				if !ok {
					break
				}
				_ = ep.pool.Put(node)
			}
			if d := ep.swRx; d != nil {
				// Switchless ingress has a second stage: records the
				// proxy already opened into the rx ring. Draining it
				// races only the proxy's enqueue side (the ring is
				// MPMC), so a parked or mid-relay proxy never wedges
				// the restart.
				for {
					node, ok := d.rx.Dequeue()
					if !ok {
						break
					}
					_ = ep.pool.Put(node)
				}
				// The drain just created ring and mbox space a proxy
				// may have parked on; hand any stranded tx backlog
				// back to it or the pipeline wedges (the senders only
				// ring the doorbell on successful enqueues).
				d.wakeProxy()
			}
		}
	}
	if a.spec.Restart.Reinit && a.spec.Init != nil {
		if err := a.spec.Init(a.self); err != nil {
			// A failing constructor is another failure: count it and
			// re-park with the next backoff step (or permanently once
			// the policy is exhausted).
			msg := fmt.Sprintf("reinit: %v", err)
			a.failure.Store(&msg)
			n := a.restarts.Add(1)
			if !a.spec.Restart.exhausted(n) {
				a.restartAt.Store(time.Now().Add(a.spec.Restart.backoff(n)).UnixNano())
			}
			return false
		}
	}
	n := a.restarts.Add(1)
	if w.m != nil {
		w.m.restarts.Inc(w.id)
		w.rec.Record(telemetry.EvRestart, a.tag, n)
	}
	a.failed.Store(false)
	w.rt.actorRestarted(a.spec.Name)
	return true
}

// nextRestartDelay returns the time until the earliest pending restart
// of this worker's actors, so the idle wait never sleeps through a
// backoff deadline. A manual override is due immediately — it may be
// the only pending restart (restartAt==0 for zero-policy actors), and
// idleWait has already drained the doorbell by the time it asks, so
// RestartActor's Wake alone cannot be relied on to cut the sleep short.
func (w *Worker) nextRestartDelay() (time.Duration, bool) {
	var earliest int64
	for _, a := range w.actors {
		if !a.failed.Load() {
			continue
		}
		if a.forcePending() {
			return 0, true
		}
		due := a.restartAt.Load()
		if due == 0 {
			continue
		}
		if earliest == 0 || due < earliest {
			earliest = due
		}
	}
	if earliest == 0 {
		return 0, false
	}
	d := time.Until(time.Unix(0, earliest))
	if d < 0 {
		d = 0
	}
	return d, true
}

// idleWait parks the worker until its doorbell rings, the idle-sleep
// timeout elapses, a pending restart comes due, or shutdown is
// requested.
func (w *Worker) idleWait(timer *time.Timer) {
	// Clear a stale ring so the bell reflects "work arrived after the
	// last full round".
	select {
	case <-w.doorbell:
		return
	default:
	}
	if w.m != nil {
		w.m.idles.Inc(w.id)
		w.rec.Record(telemetry.EvIdle, 0, 0)
	}
	sleep := w.idleSleep
	if d, ok := w.nextRestartDelay(); ok && d < sleep {
		sleep = d
	}
	timer.Reset(sleep)
	select {
	case <-w.doorbell:
		if w.m != nil {
			w.m.wakes.Inc(w.id)
			w.rec.Record(telemetry.EvWake, 0, 0)
		}
	case <-timer.C:
		return
	case <-w.stop:
	}
	if !timer.Stop() {
		select {
		case <-timer.C:
		default:
		}
	}
}

func (w *Worker) run() {
	defer close(w.done)
	runtime.LockOSThread()
	defer runtime.UnlockOSThread()
	if len(w.cpus) > 0 {
		_ = setAffinity(w.cpus) // best effort; Linux only
	}

	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	idleRounds := 0
	for {
		select {
		case <-w.stop:
			w.ctx.Exit()
			return
		default:
		}

		progressed := false
		for _, a := range w.actors {
			restarting := false
			if a.failed.Load() {
				if !w.restartDue(a) {
					continue
				}
				restarting = true
			}
			crossed := false
			if w.tr != nil || a.cost != nil {
				// Track whether this placement move pays a transition, so
				// a traced invocation can claim the crossing span and the
				// cost profile charges it to the actor whose placement
				// caused it.
				pre := w.ctx.Crossings()
				if a.enclave != nil {
					if err := w.ctx.Enter(a.enclave); err != nil {
						// Configuration was validated at startup; an enter
						// failure means the enclave was destroyed underneath
						// us, so park this actor.
						continue
					}
				} else {
					w.ctx.Exit()
				}
				if delta := w.ctx.Crossings() - pre; delta != 0 {
					crossed = true
					if a.cost != nil {
						a.cost.Crossings.Add(delta)
					}
				}
			} else if a.enclave != nil {
				if err := w.ctx.Enter(a.enclave); err != nil {
					continue
				}
			} else {
				w.ctx.Exit()
			}
			if restarting {
				if !w.restart(a) {
					continue
				}
				// The revived body runs immediately below; the restart
				// itself is progress.
				progressed = true
			}
			if w.inj != nil {
				if act := w.inj.At(faults.SiteInvoke); act.Class == faults.Delay {
					time.Sleep(act.Delay)
				}
			}
			a.self.progressed = false
			a.self.drainLeft = w.drainBudget
			w.invoke(a, crossed)
			if a.self.progressed {
				progressed = true
			}
		}

		// Back off when a full round made no progress: first yield, then
		// sleep. The sleep matters twice over on few-core hosts: idle
		// workers must not starve busy ones, and — critically — the Go
		// scheduler only polls the network eagerly when a P goes idle,
		// so spinning workers would delay socket readiness delivery to
		// the netactors pumps by milliseconds.
		if progressed {
			idleRounds = 0
			continue
		}
		idleRounds++
		switch {
		case idleRounds < 4:
			// immediate retry
		case idleRounds < 32:
			runtime.Gosched()
		default:
			w.idleWait(timer)
		}
	}
}
