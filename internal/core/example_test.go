package core_test

import (
	"fmt"

	"github.com/eactors/eactors-go/internal/core"
	"github.com/eactors/eactors-go/internal/sgx"
)

// Example deploys a two-eactor pipeline across two enclaves and shows
// that their cross-enclave channel encrypts transparently while the
// workers never transition after startup.
func Example() {
	platform := sgx.NewPlatform(sgx.WithCostModel(sgx.ZeroCostModel()))

	received := make(chan string, 1)
	cfg := core.Config{
		Enclaves: []core.EnclaveSpec{{Name: "left"}, {Name: "right"}},
		Workers:  []core.WorkerSpec{{}, {}},
		Channels: []core.ChannelSpec{{Name: "pipe", A: "sender", B: "receiver"}},
		Actors: []core.Spec{
			{
				Name: "sender", Enclave: "left", Worker: 0,
				State: new(bool),
				Body: func(self *core.Self) {
					sent := self.State.(*bool)
					if *sent {
						return
					}
					if self.MustChannel("pipe").Send([]byte("hello enclave")) == nil {
						*sent = true
						self.Progress()
					}
				},
			},
			{
				Name: "receiver", Enclave: "right", Worker: 1,
				Body: func(self *core.Self) {
					buf := make([]byte, 64)
					n, ok, err := self.MustChannel("pipe").Recv(buf)
					if err != nil || !ok {
						return
					}
					received <- string(buf[:n])
					self.StopRuntime()
				},
			},
		},
	}

	rt, err := core.NewRuntime(platform, cfg)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	if err := rt.Start(); err != nil {
		fmt.Println("error:", err)
		return
	}
	rt.Wait()
	rt.Stop()

	ch, _ := rt.ChannelByName("pipe")
	fmt.Println("message:", <-received)
	fmt.Println("encrypted in transit:", ch.Encrypted())
	// Output:
	// message: hello enclave
	// encrypted in transit: true
}
