package core

import (
	"errors"
	"testing"
)

func TestChannelStats(t *testing.T) {
	a, b, rt := buildPair(t, false, 4, 16, 64)
	ch, ok := rt.ChannelByName("link")
	if !ok {
		t.Fatal("channel missing")
	}
	for i := 0; i < 3; i++ {
		if err := a.Send([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Send([]byte("reply")); err != nil {
		t.Fatal(err)
	}
	st := ch.Stats()
	if st.AToB != 3 || st.BToA != 1 {
		t.Fatalf("Stats = %+v", st)
	}
	if st.Pending != 4 {
		t.Fatalf("Pending = %d", st.Pending)
	}

	buf := make([]byte, 64)
	if _, ok, err := b.Recv(buf); !ok || err != nil {
		t.Fatal("recv failed")
	}
	if a.Sent() != 3 || b.Received() != 1 {
		t.Fatalf("endpoint counters: sent=%d received=%d", a.Sent(), b.Received())
	}
}

func TestSendFailureCounters(t *testing.T) {
	a, _, _ := buildPair(t, false, 2, 16, 64)
	_ = a.Send([]byte("1")) //sendcheck:ok
	_ = a.Send([]byte("2")) //sendcheck:ok
	if err := a.Send([]byte("3")); !errors.Is(err, ErrMailboxFull) {
		t.Fatalf("err = %v", err)
	}
	if a.SendFailures() != 1 {
		t.Fatalf("SendFailures = %d", a.SendFailures())
	}

	// Pool exhaustion also counts.
	a2, _, _ := buildPair(t, false, 8, 2, 64)
	_ = a2.Send([]byte("1")) //sendcheck:ok
	_ = a2.Send([]byte("2")) //sendcheck:ok
	if err := a2.Send([]byte("3")); !errors.Is(err, ErrPoolEmpty) {
		t.Fatalf("err = %v", err)
	}
	if a2.SendFailures() != 1 {
		t.Fatalf("SendFailures = %d", a2.SendFailures())
	}
}

func TestMemoryFootprint(t *testing.T) {
	cfg := Config{
		PoolNodes:   100,
		NodePayload: 256,
		Enclaves: []EnclaveSpec{
			{Name: "a", PrivatePoolNodes: 10},
			{Name: "b"},
		},
		Channels: []ChannelSpec{
			{Name: "c1", A: "x", B: "y", Capacity: 64},
			{Name: "c2", A: "x", B: "y"}, // default capacity
		},
	}
	public, private, mboxes := cfg.MemoryFootprint()
	if public != 100*256 {
		t.Fatalf("public = %d", public)
	}
	if private != 10*256 {
		t.Fatalf("private = %d", private)
	}
	want := 2*64*16 + 2*DefaultMboxCapacity*16
	if mboxes != want {
		t.Fatalf("mboxes = %d, want %d", mboxes, want)
	}

	// Defaults applied when zero.
	empty := Config{}
	public, _, _ = empty.MemoryFootprint()
	if public != DefaultPoolNodes*DefaultNodePayload {
		t.Fatalf("default public = %d", public)
	}
}
