package core

import (
	"sort"

	"github.com/eactors/eactors-go/internal/sgx"
)

// Report is a point-in-time introspection snapshot of a runtime:
// deployment shape, traffic and simulator counters, and failures. It is
// what an operator dashboard (or the xmppserver stats loop) renders.
type Report struct {
	// Workers describes each worker and its eactors.
	Workers []WorkerReport
	// Channels carries per-channel traffic counters.
	Channels []ChannelReport
	// Enclaves lists enclave EPC footprints.
	Enclaves []EnclaveReport
	// FailedActors lists eactors parked after a body panic.
	FailedActors []string
	// PublicPoolFree is the free-node count of the shared pool.
	PublicPoolFree int
	// Platform is the SGX simulator counter snapshot.
	Platform sgx.Stats
	// Switchless aggregates the switchless proxy counters; Enabled is
	// false when Config.Switchless was off.
	Switchless SwitchlessReport
}

// WorkerReport describes one worker. The latency fields are read from
// the telemetry registry's per-worker body-invocation histogram and stay
// zero when Config.Telemetry is off — the report and the registry share
// the same underlying instruments, so the two never disagree.
type WorkerReport struct {
	ID        int
	Actors    []string
	Crossings uint64

	// Invocations counts completed body invocations (telemetry only).
	Invocations uint64
	// InvokeP50Ns / InvokeP99Ns are body-invocation latency quantiles in
	// nanoseconds (telemetry only; bucketed, so upper-bound estimates).
	InvokeP50Ns uint64
	InvokeP99Ns uint64
}

// ChannelReport describes one channel's traffic. The latency quantiles
// come from the channel's sampled send histogram in the telemetry
// registry and stay zero when Config.Telemetry is off.
type ChannelReport struct {
	Name      string
	A, B      string
	Encrypted bool
	Stats     ChannelStats

	// SendP50Ns / SendP99Ns are send-operation latency quantiles in
	// nanoseconds, sampled 1 in 16 (telemetry only).
	SendP50Ns uint64
	SendP99Ns uint64
}

// EnclaveReport describes one enclave's footprint.
type EnclaveReport struct {
	Name          string
	PagesResident int64
	// PrivatePoolFree is -1 when the enclave has no private pool.
	PrivatePoolFree int
}

// Report builds an introspection snapshot. Counter reads are atomic but
// the snapshot as a whole is not; it is meant for monitoring, not
// coordination.
func (rt *Runtime) Report() Report {
	r := Report{
		FailedActors:   rt.FailedActors(),
		PublicPoolFree: rt.pool.Free(),
		Platform:       rt.platform.Snapshot(),
		Switchless:     rt.switchlessReport(),
	}
	for _, w := range rt.workers {
		wr := WorkerReport{
			ID:        w.ID(),
			Actors:    w.Actors(),
			Crossings: w.Context().Crossings(),
		}
		if rt.m != nil {
			snap := rt.m.invokeNs[w.ID()].Snapshot()
			wr.Invocations = snap.Count
			wr.InvokeP50Ns = snap.Quantile(0.50)
			wr.InvokeP99Ns = snap.Quantile(0.99)
		}
		r.Workers = append(r.Workers, wr)
	}
	for name, ch := range rt.channels {
		cr := ChannelReport{
			Name: name, A: ch.a, B: ch.b,
			Encrypted: ch.encrypted,
			Stats:     ch.Stats(),
		}
		if rt.m != nil {
			snap := ch.epA.sendNs.Snapshot()
			cr.SendP50Ns = snap.Quantile(0.50)
			cr.SendP99Ns = snap.Quantile(0.99)
		}
		r.Channels = append(r.Channels, cr)
	}
	sort.Slice(r.Channels, func(i, j int) bool { return r.Channels[i].Name < r.Channels[j].Name })
	for name, e := range rt.enclaves {
		er := EnclaveReport{
			Name:            name,
			PagesResident:   e.PagesResident(),
			PrivatePoolFree: -1,
		}
		if p, ok := rt.privatePools[name]; ok {
			er.PrivatePoolFree = p.Free()
		}
		r.Enclaves = append(r.Enclaves, er)
	}
	sort.Slice(r.Enclaves, func(i, j int) bool { return r.Enclaves[i].Name < r.Enclaves[j].Name })
	return r
}
