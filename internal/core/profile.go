package core

import (
	"fmt"
	"sort"
	"time"

	"github.com/eactors/eactors-go/internal/profile"
)

// ProfileEnabled reports whether per-actor cost accounting is armed
// (Config.Profile).
func (rt *Runtime) ProfileEnabled() bool { return rt.prof != nil }

// CostProfile captures the deployment's cost model: it first folds any
// pending sampled trace spans (mailbox dwell) into the cost cells, then
// snapshots every actor, communication edge and enclave. The result is
// the versioned profile.Model that /debug/profile, the MONITOR profile
// verb and the JSONL snapshotter all serve. Returns an empty model when
// Config.Profile is off.
//
// Safe from any goroutine: cells are atomics, span folding is
// idempotent (high-water deduplication), and the trace snapshot
// tolerates concurrent writers.
func (rt *Runtime) CostProfile() profile.Model {
	if rt.prof == nil {
		return profile.Model{V: profile.SnapshotVersion}
	}
	if rt.tr != nil {
		rt.prof.FoldSpans(rt.tr.Snapshot())
	}
	return rt.prof.Snapshot(time.Now().UnixNano())
}

// registerProfileFuncs exposes the hottest per-actor cost counters as
// labelled Prometheus series (read-side only: each scrape loads the
// cell atomics). The full profile — edges, enclaves, dwell — stays on
// /debug/profile; per-actor series keep dashboards and alerting on the
// standard scrape path.
func (rt *Runtime) registerProfileFuncs(cfg Config) {
	reg := rt.tel
	names := make([]string, 0, len(cfg.Actors))
	for _, spec := range cfg.Actors {
		names = append(names, spec.Name)
	}
	sort.Strings(names)
	for _, name := range names {
		cell := rt.actors[name].cost
		label := fmt.Sprintf("{actor=%q}", name)
		reg.CounterFunc("eactors_actor_invocations"+label, "body invocations of the actor",
			cell.Invocations.Load)
		reg.CounterFunc("eactors_actor_invoke_ns"+label, "cumulative body CPU time",
			cell.InvokeNs.Load)
		reg.CounterFunc("eactors_actor_msgs_sent"+label, "messages the actor sent",
			cell.MsgsSent.Load)
		reg.CounterFunc("eactors_actor_bytes_sent"+label, "plaintext bytes the actor sent",
			cell.BytesSent.Load)
		reg.CounterFunc("eactors_actor_msgs_recv"+label, "messages the actor received",
			cell.MsgsRecv.Load)
		reg.CounterFunc("eactors_actor_bytes_recv"+label, "plaintext bytes the actor received",
			cell.BytesRecv.Load)
		reg.CounterFunc("eactors_actor_crossings"+label, "enclave crossings charged to the actor",
			cell.Crossings.Load)
		reg.CounterFunc("eactors_actor_seal_ns"+label, "channel seal time charged to the actor (sampled estimate)",
			cell.SealNs.Load)
	}
}
