package core

// Batch-path helpers: the allocation patterns every batch consumer
// needs, factored out so system eactors (netactors, storeactors, the
// XMPP shards) share one idiom instead of hand-rolling buffer pools.

// BatchBufs preallocates n receive buffers of size bytes each (one
// backing allocation) plus the matching length array — the arguments
// Self.RecvBatch and Endpoint.RecvBatch expect. Allocate once in an
// eactor's constructor; the buffers are reused every invocation.
func BatchBufs(n, size int) ([][]byte, []int) {
	backing := make([]byte, n*size)
	bufs := make([][]byte, n)
	for i := range bufs {
		bufs[i] = backing[i*size : (i+1)*size : (i+1)*size]
	}
	return bufs, make([]int, n)
}

// SendStage accumulates encoded frames for one SendBatch call, reusing
// per-slot buffers across rounds so the steady state allocates nothing.
// Usage per frame:
//
//	buf := stage.Slot()
//	frame, err := msg.AppendTo(buf)
//	if err == nil { stage.Push(frame) }
//
// then one SendBatch(stage.Frames()) and stage.Reset(). A frame handed
// to Push must have been built on the slice Slot returned (possibly
// grown by append); the stage keeps the grown capacity for reuse. The
// frames are only valid until the next Reset — callers that must keep
// one (e.g. a backpressure retry queue) copy it first.
type SendStage struct {
	frames [][]byte
	slots  [][]byte
}

// Len returns the number of staged frames.
func (s *SendStage) Len() int { return len(s.frames) }

// Frames returns the staged frames in push order.
func (s *SendStage) Frames() [][]byte { return s.frames }

// Reset clears the stage for the next round, keeping slot capacity.
func (s *SendStage) Reset() { s.frames = s.frames[:0] }

// Slot returns the next reusable frame buffer, empty, for appending.
func (s *SendStage) Slot() []byte {
	if len(s.frames) == len(s.slots) {
		s.slots = append(s.slots, nil)
	}
	return s.slots[len(s.frames)][:0]
}

// Push stages a frame built on the buffer the preceding Slot returned.
func (s *SendStage) Push(frame []byte) {
	s.slots[len(s.frames)] = frame // keep any capacity append grew
	s.frames = append(s.frames, frame)
}
