package core

import "testing"

func TestSetAffinity(t *testing.T) {
	// CPU 0 always exists; binding to it must succeed (or be a no-op on
	// non-Linux platforms).
	if err := setAffinity([]int{0}); err != nil {
		t.Fatalf("setAffinity([0]): %v", err)
	}
	// Empty set is a no-op.
	if err := setAffinity(nil); err != nil {
		t.Fatalf("setAffinity(nil): %v", err)
	}
	// Out-of-range CPUs are skipped, leaving an empty mask only if no
	// valid CPU remains — combine with CPU 0 so the call stays valid.
	if err := setAffinity([]int{0, 1 << 20, -5}); err != nil {
		t.Fatalf("setAffinity with junk entries: %v", err)
	}
}
