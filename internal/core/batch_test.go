package core

import (
	"bytes"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"github.com/eactors/eactors-go/internal/mem"
)

func frames(msgs ...string) [][]byte {
	out := make([][]byte, len(msgs))
	for i, m := range msgs {
		out[i] = []byte(m)
	}
	return out
}

func TestSendBatchRecvBatchPlaintext(t *testing.T) {
	a, b, _ := buildPair(t, false, 8, 16, 64)
	sent, err := a.SendBatch(frames("one", "two", "three"))
	if err != nil || sent != 3 {
		t.Fatalf("SendBatch = %d, %v", sent, err)
	}
	bufs, lens := BatchBufs(8, 64)
	n, err := b.RecvBatch(bufs, lens)
	if err != nil || n != 3 {
		t.Fatalf("RecvBatch = %d, %v", n, err)
	}
	for i, want := range []string{"one", "two", "three"} {
		if got := string(bufs[i][:lens[i]]); got != want {
			t.Fatalf("message %d = %q, want %q", i, got, want)
		}
	}
	if a.Sent() != 3 || b.Received() != 3 {
		t.Fatalf("counters: sent=%d received=%d", a.Sent(), b.Received())
	}
	// All nodes must be back in the pool after the round trip.
	if free := a.pool.Free(); free != 16 {
		t.Fatalf("pool Free = %d, want 16", free)
	}
}

func TestSendBatchRecvBatchEncrypted(t *testing.T) {
	a, b, _ := buildPair(t, true, 8, 16, 256)
	msgs := []string{"alpha", "bravo", "charlie", "delta"}
	sent, err := a.SendBatch(frames(msgs...))
	if err != nil || sent != len(msgs) {
		t.Fatalf("SendBatch = %d, %v", sent, err)
	}
	// Ciphertext on the wire: drain every node, inspect, and requeue in
	// order (a single re-enqueue would rotate the FIFO).
	var wire []*mem.Node
	for {
		node, ok := b.in.Dequeue()
		if !ok {
			break
		}
		if bytes.Contains(node.Payload(), []byte("alpha")) {
			t.Fatal("plaintext visible on cross-enclave wire after SendBatch")
		}
		wire = append(wire, node)
	}
	for _, node := range wire {
		if !b.in.Enqueue(node) {
			t.Fatal("re-enqueue failed")
		}
	}
	bufs, lens := BatchBufs(8, 256)
	n, err := b.RecvBatch(bufs, lens)
	if err != nil || n != len(msgs) {
		t.Fatalf("RecvBatch = %d, %v", n, err)
	}
	for i, want := range msgs {
		if got := string(bufs[i][:lens[i]]); got != want {
			t.Fatalf("message %d = %q, want %q", i, got, want)
		}
	}
}

// TestBatchFIFOAcrossMixedOps interleaves single and batch operations on
// an encrypted channel: order and the replay counter must hold across
// every batch boundary.
func TestBatchFIFOAcrossMixedOps(t *testing.T) {
	a, b, _ := buildPair(t, true, 16, 32, 128)
	if err := a.Send([]byte("m0")); err != nil {
		t.Fatal(err)
	}
	if sent, err := a.SendBatch(frames("m1", "m2", "m3")); err != nil || sent != 3 {
		t.Fatalf("SendBatch = %d, %v", sent, err)
	}
	if err := a.Send([]byte("m4")); err != nil {
		t.Fatal(err)
	}
	if sent, err := a.SendBatch(frames("m5", "m6")); err != nil || sent != 2 {
		t.Fatalf("SendBatch = %d, %v", sent, err)
	}

	next := 0
	expect := func(got string) {
		if want := fmt.Sprintf("m%d", next); got != want {
			t.Fatalf("FIFO violated: got %q, want %q", got, want)
		}
		next++
	}
	buf := make([]byte, 128)
	n, ok, err := b.Recv(buf) // single recv first
	if !ok || err != nil {
		t.Fatalf("Recv: ok=%v err=%v", ok, err)
	}
	expect(string(buf[:n]))
	bufs, lens := BatchBufs(3, 128)
	got, err := b.RecvBatch(bufs, lens) // batch across the send-batch boundary
	if err != nil {
		t.Fatalf("RecvBatch: %v", err)
	}
	for i := 0; i < got; i++ {
		expect(string(bufs[i][:lens[i]]))
	}
	n, ok, err = b.Recv(buf)
	if !ok || err != nil {
		t.Fatalf("Recv: ok=%v err=%v", ok, err)
	}
	expect(string(buf[:n]))
	got, err = b.RecvBatch(bufs, lens)
	if err != nil {
		t.Fatalf("RecvBatch: %v", err)
	}
	for i := 0; i < got; i++ {
		expect(string(bufs[i][:lens[i]]))
	}
	if next != 7 {
		t.Fatalf("consumed %d of 7 messages", next)
	}
}

// TestRecvBatchReplayRejected re-delivers a captured ciphertext inside a
// batch: the duplicate is dropped, later messages still arrive, and the
// replay error is reported.
func TestRecvBatchReplayRejected(t *testing.T) {
	a, b, _ := buildPair(t, true, 8, 16, 128)
	if sent, err := a.SendBatch(frames("first", "second")); err != nil || sent != 2 {
		t.Fatalf("SendBatch = %d, %v", sent, err)
	}
	// Hostile runtime: duplicate the first node behind the second.
	n1, _ := b.in.Dequeue()
	n2, _ := b.in.Dequeue()
	dup := b.pool.Get()
	if dup == nil {
		t.Fatal("pool empty")
	}
	if err := dup.SetPayload(n1.Payload()); err != nil {
		t.Fatal(err)
	}
	b.in.Enqueue(n1)
	b.in.Enqueue(dup)
	b.in.Enqueue(n2)

	bufs, lens := BatchBufs(4, 128)
	got, err := b.RecvBatch(bufs, lens)
	if !errors.Is(err, ErrReplay) {
		t.Fatalf("RecvBatch err = %v, want ErrReplay", err)
	}
	if got != 2 {
		t.Fatalf("RecvBatch delivered %d, want 2 (replay dropped, rest compacted)", got)
	}
	if string(bufs[0][:lens[0]]) != "first" || string(bufs[1][:lens[1]]) != "second" {
		t.Fatalf("delivered = %q, %q", bufs[0][:lens[0]], bufs[1][:lens[1]])
	}
	if free := b.pool.Free(); free != 16 {
		t.Fatalf("pool Free = %d, want 16 (failed node leaked)", free)
	}
}

// TestReplayAcrossBatchBoundary replays a message from a previous batch
// through the single-message path: lastSeq must persist across the
// boundary between RecvBatch and Recv.
func TestReplayAcrossBatchBoundary(t *testing.T) {
	a, b, _ := buildPair(t, true, 8, 16, 128)
	if sent, err := a.SendBatch(frames("x", "y")); err != nil || sent != 2 {
		t.Fatalf("SendBatch = %d, %v", sent, err)
	}
	n1, _ := b.in.Dequeue()
	n2, _ := b.in.Dequeue()
	var raw []byte
	raw = append(raw, n1.Payload()...)
	b.in.Enqueue(n1)
	b.in.Enqueue(n2)

	bufs, lens := BatchBufs(2, 128)
	if got, err := b.RecvBatch(bufs, lens); err != nil || got != 2 {
		t.Fatalf("RecvBatch = %d, %v", got, err)
	}
	dup := b.pool.Get()
	_ = dup.SetPayload(raw)
	b.in.Enqueue(dup)
	if _, ok, err := b.Recv(make([]byte, 128)); !ok || !errors.Is(err, ErrReplay) {
		t.Fatalf("replay after batch: ok=%v err=%v, want ErrReplay", ok, err)
	}
}

func TestSendBatchPartialChannelFull(t *testing.T) {
	a, _, _ := buildPair(t, false, 2, 16, 64)
	sent, err := a.SendBatch(frames("1", "2", "3", "4"))
	if sent != 2 || !errors.Is(err, ErrMailboxFull) {
		t.Fatalf("SendBatch = %d, %v; want 2, ErrMailboxFull", sent, err)
	}
	// Unsent nodes must be back in the pool.
	if free := a.pool.Free(); free != 16-2 {
		t.Fatalf("pool Free = %d, want 14", free)
	}
	if a.SendFailures() != 1 {
		t.Fatalf("SendFailures = %d, want 1", a.SendFailures())
	}
}

func TestSendBatchPoolExhausted(t *testing.T) {
	a, _, _ := buildPair(t, false, 8, 2, 64)
	sent, err := a.SendBatch(frames("1", "2", "3", "4"))
	if sent != 2 || !errors.Is(err, ErrPoolEmpty) {
		t.Fatalf("SendBatch = %d, %v; want 2, ErrPoolEmpty", sent, err)
	}
	sent, err = a.SendBatch(frames("5"))
	if sent != 0 || !errors.Is(err, ErrPoolEmpty) {
		t.Fatalf("SendBatch on empty pool = %d, %v", sent, err)
	}
}

func TestSendBatchOversizedRejected(t *testing.T) {
	a, _, _ := buildPair(t, false, 8, 16, 32)
	payloads := [][]byte{[]byte("ok"), make([]byte, 33)}
	sent, err := a.SendBatch(payloads)
	if sent != 0 || !errors.Is(err, ErrPayloadTooLarge) {
		t.Fatalf("SendBatch = %d, %v; want 0, ErrPayloadTooLarge", sent, err)
	}
	// Nothing taken from the pool: the batch is validated up front.
	if free := a.pool.Free(); free != 16 {
		t.Fatalf("pool Free = %d, want 16", free)
	}
}

func TestRecvBatchShortBufferCompacts(t *testing.T) {
	a, b, _ := buildPair(t, false, 8, 16, 64)
	if sent, err := a.SendBatch(frames("tiny", "a very long message", "small")); err != nil || sent != 3 {
		t.Fatalf("SendBatch = %d, %v", sent, err)
	}
	bufs, lens := BatchBufs(3, 8) // too small for the middle message
	got, err := b.RecvBatch(bufs, lens)
	if !errors.Is(err, ErrShortBuffer) {
		t.Fatalf("RecvBatch err = %v, want ErrShortBuffer", err)
	}
	if got != 2 {
		t.Fatalf("RecvBatch delivered %d, want 2", got)
	}
	if string(bufs[0][:lens[0]]) != "tiny" || string(bufs[1][:lens[1]]) != "small" {
		t.Fatalf("delivered = %q, %q", bufs[0][:lens[0]], bufs[1][:lens[1]])
	}
}

func TestRecvBatchEmptyAndZeroSized(t *testing.T) {
	_, b, _ := buildPair(t, false, 8, 16, 64)
	bufs, lens := BatchBufs(4, 64)
	if got, err := b.RecvBatch(bufs, lens); got != 0 || err != nil {
		t.Fatalf("RecvBatch on empty channel = %d, %v", got, err)
	}
	if got, err := b.RecvBatch(nil, nil); got != 0 || err != nil {
		t.Fatalf("RecvBatch(nil) = %d, %v", got, err)
	}
	if sent, err := b.SendBatch(nil); sent != 0 || err != nil {
		t.Fatalf("SendBatch(nil) = %d, %v", sent, err)
	}
}

// TestScratchShrinksAfterIdle checks the retention policy: one big
// message grows the staging buffer past the soft cap; a streak of small
// messages lets it go, while continued large traffic would keep it.
func TestScratchShrinksAfterIdle(t *testing.T) {
	a, b, _ := buildPair(t, true, 4, 8, 8192)
	big := make([]byte, scratchSoftCap+1024)
	buf := make([]byte, 8192)
	if err := a.Send(big); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := b.Recv(buf); !ok || err != nil {
		t.Fatalf("big Recv: ok=%v err=%v", ok, err)
	}
	if cap(b.scratch) <= scratchSoftCap {
		t.Fatalf("scratch cap = %d after big message, want > %d", cap(b.scratch), scratchSoftCap)
	}
	for i := 0; i < scratchShrinkAfter; i++ {
		if err := a.Send([]byte("small")); err != nil {
			t.Fatal(err)
		}
		if _, ok, err := b.Recv(buf); !ok || err != nil {
			t.Fatalf("small Recv %d: ok=%v err=%v", i, ok, err)
		}
	}
	if b.scratch != nil {
		t.Fatalf("scratch not released after %d small uses (cap %d)", scratchShrinkAfter, cap(b.scratch))
	}
	// The endpoint still works after the shrink.
	if err := a.Send([]byte("after")); err != nil {
		t.Fatal(err)
	}
	if n, ok, err := b.Recv(buf); !ok || err != nil || string(buf[:n]) != "after" {
		t.Fatalf("Recv after shrink = %q ok=%v err=%v", buf[:n], ok, err)
	}
}

// TestScratchKeptUnderLargeTraffic: a streak of large messages must not
// trigger the shrink (no reallocation churn on steady big traffic).
func TestScratchKeptUnderLargeTraffic(t *testing.T) {
	a, b, _ := buildPair(t, true, 4, 8, 8192)
	big := make([]byte, scratchSoftCap+1024)
	buf := make([]byte, 8192)
	for i := 0; i < scratchShrinkAfter+8; i++ {
		if err := a.Send(big); err != nil {
			t.Fatal(err)
		}
		if _, ok, err := b.Recv(buf); !ok || err != nil {
			t.Fatalf("Recv %d: ok=%v err=%v", i, ok, err)
		}
	}
	if cap(b.scratch) <= scratchSoftCap {
		t.Fatalf("scratch shrunk under steady large traffic (cap %d)", cap(b.scratch))
	}
}

func TestSelfRecvBatchHonoursDrainBudget(t *testing.T) {
	a, b, rt := buildPair(t, false, 16, 32, 64)
	for i := 0; i < 10; i++ {
		if err := a.Send([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	self := rt.actors["b"].self
	self.drainLeft = 4 // what the worker sets per invocation
	bufs, lens := BatchBufs(8, 64)
	ep := b
	n, err := self.RecvBatch(ep, bufs, lens)
	if err != nil || n != 4 {
		t.Fatalf("budgeted RecvBatch = %d, %v; want 4", n, err)
	}
	if self.DrainBudget() != 0 {
		t.Fatalf("DrainBudget after drain = %d, want 0", self.DrainBudget())
	}
	// Budget exhausted: nothing more this invocation.
	if n, err := self.RecvBatch(ep, bufs, lens); n != 0 || err != nil {
		t.Fatalf("RecvBatch past budget = %d, %v; want 0", n, err)
	}
	// Next invocation (budget reset) picks up the backlog.
	self.drainLeft = 8
	if n, err := self.RecvBatch(ep, bufs, lens); n != 6 || err != nil {
		t.Fatalf("next-invocation RecvBatch = %d, %v; want 6", n, err)
	}
	if !self.progressed {
		t.Fatal("RecvBatch did not record progress")
	}
}

func TestConfigDrainBudgetValidation(t *testing.T) {
	cfg := Config{
		Workers:     []WorkerSpec{{}},
		DrainBudget: -1,
		Actors:      []Spec{{Name: "a", Worker: 0, Body: func(*Self) {}}},
	}
	if _, err := NewRuntime(zeroPlatform(), cfg); err == nil {
		t.Fatal("negative DrainBudget accepted")
	}
}

func TestBatchBufs(t *testing.T) {
	bufs, lens := BatchBufs(4, 32)
	if len(bufs) != 4 || len(lens) != 4 {
		t.Fatalf("BatchBufs sizes: %d bufs, %d lens", len(bufs), len(lens))
	}
	for i, b := range bufs {
		if len(b) != 32 {
			t.Fatalf("buf %d len = %d, want 32", i, len(b))
		}
		for j := range b {
			b[j] = byte(i + 1)
		}
	}
	for i, b := range bufs {
		for _, v := range b {
			if v != byte(i+1) {
				t.Fatalf("buf %d overlaps another buffer", i)
			}
		}
	}
	// Buffers must not grow into each other via append.
	grown := append(bufs[0], 0xFF)
	_ = grown
	if bufs[1][0] == 0xFF {
		t.Fatal("append to buf 0 overwrote buf 1 (missing capacity cap)")
	}
}

func TestSendStageReuse(t *testing.T) {
	var s SendStage
	for round := 0; round < 3; round++ {
		for i := 0; i < 5; i++ {
			frame := append(s.Slot(), []byte(fmt.Sprintf("r%d-f%d", round, i))...)
			s.Push(frame)
		}
		if s.Len() != 5 {
			t.Fatalf("Len = %d, want 5", s.Len())
		}
		for i, f := range s.Frames() {
			if want := fmt.Sprintf("r%d-f%d", round, i); string(f) != want {
				t.Fatalf("frame %d = %q, want %q", i, f, want)
			}
		}
		s.Reset()
		if s.Len() != 0 {
			t.Fatalf("Len after Reset = %d", s.Len())
		}
	}
}

// TestActorFailureRace is the regression test for the failure-recording
// race: the panic text is written before the failed flag is released, so
// a concurrent ActorFailure reader never observes a torn or empty
// string. Run under -race this fails on the old ordering.
func TestActorFailureRace(t *testing.T) {
	const panicText = "a reasonably long panic message that must arrive complete"
	cfg := Config{
		Workers: []WorkerSpec{{}},
		Actors: []Spec{
			{Name: "crashy", Worker: 0, Body: func(*Self) { panic(panicText) }},
		},
	}
	rt, err := NewRuntime(zeroPlatform(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var got atomic.Pointer[string]
	done := make(chan struct{})
	go func() {
		defer close(done)
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			if msg, ok := rt.ActorFailure("crashy"); ok {
				got.Store(&msg)
				return
			}
		}
	}()
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()
	<-done
	msg := got.Load()
	if msg == nil {
		t.Fatal("actor never reported as failed")
	}
	if *msg != panicText {
		t.Fatalf("ActorFailure = %q, want %q (torn read)", *msg, panicText)
	}
}
