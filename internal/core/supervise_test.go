package core

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestRestartOnPanic is the headline supervision property: an actor
// whose body panics once, under an OnPanic policy, resumes within the
// backoff bound with its private state intact, and both the restart
// counter and the eactors_restarts metric reflect it.
func TestRestartOnPanic(t *testing.T) {
	var runs atomic.Int64
	const backoff = 2 * time.Millisecond
	cfg := Config{
		Telemetry: true,
		Workers:   []WorkerSpec{{}},
		Actors: []Spec{
			{
				Name: "flappy", Worker: 0,
				Restart: RestartPolicy{OnPanic: true, Backoff: backoff, MaxBackoff: backoff},
				Body: func(self *Self) {
					if runs.Add(1) == 1 {
						panic("transient bug")
					}
				},
			},
		},
	}
	rt, err := NewRuntime(zeroPlatform(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()

	// Generous against scheduler noise, but the restart itself must be
	// ordered after the backoff elapsed.
	deadline := time.Now().Add(5 * time.Second)
	for runs.Load() < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("actor never resumed: runs=%d, supervision=%+v", runs.Load(), rt.Supervision())
		}
		time.Sleep(100 * time.Microsecond)
	}
	if elapsed := time.Since(start); elapsed < backoff {
		t.Fatalf("actor resumed after %v, before the %v backoff", elapsed, backoff)
	}
	if got := rt.ActorRestarts("flappy"); got != 1 {
		t.Fatalf("ActorRestarts = %d, want 1", got)
	}
	if failed := rt.FailedActors(); len(failed) != 0 {
		t.Fatalf("FailedActors = %v after restart, want none", failed)
	}
	if _, ok := rt.ActorFailure("flappy"); ok {
		t.Fatal("restarted actor still reports as failed")
	}
	if v, ok := rt.Telemetry().CounterValue("eactors_restarts"); !ok || v != 1 {
		t.Fatalf("eactors_restarts = %d, %v, want 1", v, ok)
	}
}

// TestRestartBackoffDoublesAndExhausts: a persistently-crashing actor
// is restarted MaxRestarts times with doubling delays, then parks
// permanently.
func TestRestartBackoffDoublesAndExhausts(t *testing.T) {
	var runs atomic.Int64
	policy := RestartPolicy{
		OnPanic:     true,
		MaxRestarts: 3,
		Backoff:     time.Millisecond,
		MaxBackoff:  4 * time.Millisecond,
	}
	cfg := Config{
		Workers: []WorkerSpec{{}},
		Actors: []Spec{
			{
				Name: "doomed", Worker: 0, Restart: policy,
				Body: func(self *Self) {
					runs.Add(1)
					panic("permanent bug")
				},
			},
		},
	}
	rt, err := NewRuntime(zeroPlatform(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()

	// 1 initial run + 3 restarts, then the policy is exhausted.
	deadline := time.Now().Add(5 * time.Second)
	for rt.ActorRestarts("doomed") < 3 {
		if time.Now().After(deadline) {
			t.Fatalf("restarts = %d, want 3", rt.ActorRestarts("doomed"))
		}
		time.Sleep(100 * time.Microsecond)
	}
	// Let any further (buggy) restart fire before checking the park.
	time.Sleep(20 * time.Millisecond)
	if got := runs.Load(); got != 4 {
		t.Fatalf("body ran %d times, want exactly 4 (1 + MaxRestarts)", got)
	}
	sup := rt.Supervision()
	if len(sup) != 1 || !sup[0].Parked || sup[0].RestartDue {
		t.Fatalf("exhausted actor not permanently parked: %+v", sup)
	}
	if sup[0].Restarts != 3 || sup[0].Failure != "permanent bug" {
		t.Fatalf("supervision snapshot = %+v", sup[0])
	}

	// The doubling schedule (1ms, 2ms, 4ms) is covered by the policy
	// helper directly — wall-clock assertions on sub-ms sleeps flake.
	for i, want := range []time.Duration{time.Millisecond, 2 * time.Millisecond, 4 * time.Millisecond, 4 * time.Millisecond} {
		if got := policy.backoff(uint64(i)); got != want {
			t.Fatalf("backoff(%d) = %v, want %v", i, got, want)
		}
	}
}

// restartMailboxDeployment runs a consumer that panics on its first
// invocation (before draining anything) and then counts every message
// it receives, with `flush` selecting the policy's mailbox fate. The
// producer endpoint is driven from the test goroutine.
func restartMailboxDeployment(t *testing.T, flush bool) (received *atomic.Int64, rt *Runtime) {
	t.Helper()
	received = new(atomic.Int64)
	var first atomic.Bool
	first.Store(true)
	buf := make([]byte, 64)
	cfg := Config{
		Workers:   []WorkerSpec{{}, {}},
		PoolNodes: 16,
		Channels:  []ChannelSpec{{Name: "work", A: "producer", B: "consumer", Capacity: 8}},
		Actors: []Spec{
			{Name: "producer", Worker: 0, Body: func(*Self) {}},
			{
				Name: "consumer", Worker: 1,
				Restart: RestartPolicy{OnPanic: true, Backoff: time.Millisecond, FlushMailbox: flush},
				Body: func(self *Self) {
					if first.CompareAndSwap(true, false) {
						panic("crash before consuming")
					}
					ep := self.MustChannel("work")
					for {
						_, ok, err := ep.Recv(buf)
						if !ok || err != nil {
							return
						}
						received.Add(1)
						self.Progress()
					}
				},
			},
		},
	}
	rt, err := NewRuntime(zeroPlatform(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Stop)
	return received, rt
}

// fillParkedMailbox waits for the consumer to park, then enqueues n
// messages into its mailbox.
func fillParkedMailbox(t *testing.T, rt *Runtime, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for len(rt.FailedActors()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("consumer never parked")
		}
		time.Sleep(100 * time.Microsecond)
	}
	ep := rt.actors["producer"].endpoints["work"]
	for i := 0; i < n; i++ {
		if err := ep.Send([]byte("backlog")); err != nil {
			t.Fatalf("send %d to parked consumer: %v", i, err)
		}
	}
}

// TestRestartMailboxPreserved: the default policy keeps the backlog —
// messages sent while the actor was parked are consumed by the
// restarted body.
func TestRestartMailboxPreserved(t *testing.T) {
	received, rt := restartMailboxDeployment(t, false)
	fillParkedMailbox(t, rt, 5)
	deadline := time.Now().Add(5 * time.Second)
	for received.Load() < 5 {
		if time.Now().After(deadline) {
			t.Fatalf("restarted consumer drained %d/5 backlog messages", received.Load())
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// TestRestartMailboxFlushed: FlushMailbox drops the backlog at restart
// (nodes back to the pool) and the revived actor starts clean.
func TestRestartMailboxFlushed(t *testing.T) {
	received, rt := restartMailboxDeployment(t, true)
	fillParkedMailbox(t, rt, 5)
	deadline := time.Now().Add(5 * time.Second)
	for rt.ActorRestarts("consumer") == 0 {
		if time.Now().After(deadline) {
			t.Fatal("consumer never restarted")
		}
		time.Sleep(100 * time.Microsecond)
	}
	// A fresh message must still flow (the flush returned the backlog's
	// nodes to the pool; a leak would starve this send).
	ep := rt.actors["producer"].endpoints["work"]
	for received.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("restarted consumer never received a fresh message")
		}
		if err := ep.Send([]byte("fresh")); err != nil && !errors.Is(err, ErrMailboxFull) {
			t.Fatalf("send after flush: %v", err)
		}
		time.Sleep(time.Millisecond)
	}
	if got := received.Load(); got >= 5 {
		t.Fatalf("flushed consumer received %d messages; the 5-message backlog leaked through", got)
	}
}

// supervisorDeployment wires a client endpoint (driven by the test) to
// a SUPERVISOR, alongside a crashing actor parked under a deliberately
// long backoff so the test can observe the parked state.
func supervisorDeployment(t *testing.T) (*Endpoint, *Runtime, *atomic.Int64) {
	t.Helper()
	runs := new(atomic.Int64)
	cfg := Config{
		Workers:     []WorkerSpec{{}, {}},
		PoolNodes:   16,
		NodePayload: 4096,
		Channels:    []ChannelSpec{{Name: "sup", A: "client", B: "supervisor", Capacity: 8}},
		Actors: []Spec{
			{Name: "client", Worker: 0, Body: func(*Self) {}},
			{
				Name: "crashy", Worker: 0,
				// Parks long enough for status to see it; the test frees
				// it early via the supervisor's manual restart.
				Restart: RestartPolicy{OnPanic: true, Backoff: 30 * time.Second},
				Body: func(self *Self) {
					if runs.Add(1) == 1 {
						panic("observed bug")
					}
				},
			},
			SupervisorSpec("supervisor", 1),
		},
	}
	rt, err := NewRuntime(zeroPlatform(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Stop)
	return rt.actors["client"].endpoints["sup"], rt, runs
}

// TestSupervisorEactor drives the SUPERVISOR's command surface end to
// end: status shows the parked actor with its pending restart, a
// manual restart bypasses the 30s backoff, and the follow-up status
// reflects the recovery.
func TestSupervisorEactor(t *testing.T) {
	ep, rt, runs := supervisorDeployment(t)

	deadline := time.Now().Add(5 * time.Second)
	for len(rt.FailedActors()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("crashy never parked")
		}
		time.Sleep(time.Millisecond)
	}

	status := monitorQuery(t, ep, "status")
	if !strings.Contains(status, "crashy parked restarts=0") ||
		!strings.Contains(status, `failure="observed bug"`) ||
		!strings.Contains(status, "next_restart=") {
		t.Fatalf("status missing parked actor:\n%s", status)
	}
	if !strings.Contains(status, "client healthy") {
		t.Fatalf("status missing healthy actor:\n%s", status)
	}

	failedReply := monitorQuery(t, ep, "failed")
	if !strings.Contains(failedReply, "crashy") || strings.Contains(failedReply, "client") {
		t.Fatalf("failed reply = %q", failedReply)
	}

	if reply := monitorQuery(t, ep, "restart nobody"); !strings.Contains(reply, "error") {
		t.Fatalf("restart of unknown actor not rejected: %q", reply)
	}
	if reply := monitorQuery(t, ep, "restart client"); !strings.Contains(reply, "error") {
		t.Fatalf("restart of healthy actor not rejected: %q", reply)
	}
	if reply := monitorQuery(t, ep, "bogus"); !strings.Contains(reply, "error: unknown command") {
		t.Fatalf("unknown command not rejected: %q", reply)
	}

	if reply := monitorQuery(t, ep, "restart crashy"); !strings.Contains(reply, "restart requested") {
		t.Fatalf("restart crashy = %q", reply)
	}
	for runs.Load() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("manual restart never revived crashy (30s backoff should be bypassed)")
		}
		time.Sleep(time.Millisecond)
	}
	if got := rt.ActorRestarts("crashy"); got != 1 {
		t.Fatalf("ActorRestarts = %d, want 1", got)
	}
	status = monitorQuery(t, ep, "status")
	if !strings.Contains(status, "crashy healthy restarts=1") {
		t.Fatalf("post-restart status:\n%s", status)
	}
	if reply := monitorQuery(t, ep, "failed"); !strings.Contains(reply, "ok: no parked actors") {
		t.Fatalf("failed after recovery = %q", reply)
	}
}

// TestMonitorDumpOfRestartedActor: the flight dump captured at the
// panic stays queryable through the MONITOR after the supervised
// restart revived the actor.
func TestMonitorDumpOfRestartedActor(t *testing.T) {
	var runs atomic.Int64
	cfg := Config{
		Telemetry:   true,
		Workers:     []WorkerSpec{{}, {}},
		PoolNodes:   16,
		NodePayload: 8192,
		Channels:    []ChannelSpec{{Name: "mon", A: "client", B: "monitor", Capacity: 8}},
		Actors: []Spec{
			{Name: "client", Worker: 0, Body: func(*Self) {}},
			{
				Name: "flappy", Worker: 0,
				Restart: RestartPolicy{OnPanic: true, Backoff: time.Millisecond},
				Body: func(self *Self) {
					if runs.Add(1) == 1 {
						panic("dump me")
					}
				},
			},
			MonitorSpec("monitor", 1),
		},
	}
	rt, err := NewRuntime(zeroPlatform(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()

	deadline := time.Now().Add(5 * time.Second)
	for runs.Load() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("flappy never restarted")
		}
		time.Sleep(time.Millisecond)
	}
	ep := rt.actors["client"].endpoints["mon"]
	dump := monitorQuery(t, ep, "dump flappy")
	if strings.Contains(dump, "error") || !strings.Contains(dump, "invoke") {
		t.Fatalf("dump of restarted actor:\n%s", dump)
	}
}

// TestFailureReadDuringRestarts is the regression test for the
// failure-record race under supervision: a flapping actor re-parks and
// overwrites its failure text while other goroutines read it through
// ActorFailure and Supervision. Run under -race this fails when the
// text is stored as a plain string instead of an atomic pointer; the
// prefix check additionally catches torn reads without the detector.
func TestFailureReadDuringRestarts(t *testing.T) {
	var runs atomic.Int64
	cfg := Config{
		Workers: []WorkerSpec{{}},
		Actors: []Spec{
			{
				Name: "flapper", Worker: 0,
				Restart: RestartPolicy{OnPanic: true, Backoff: time.Microsecond, MaxBackoff: time.Microsecond},
				Body: func(*Self) {
					panic(fmt.Sprintf("crash number %d with a message long enough to tear", runs.Add(1)))
				},
			},
		},
	}
	rt, err := NewRuntime(zeroPlatform(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()

	deadline := time.Now().Add(10 * time.Second)
	for rt.ActorRestarts("flapper") < 25 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d restarts before the deadline", rt.ActorRestarts("flapper"))
		}
		if msg, ok := rt.ActorFailure("flapper"); ok && !strings.HasPrefix(msg, "crash number ") {
			t.Fatalf("torn failure read: %q", msg)
		}
		for _, s := range rt.Supervision() {
			if s.Parked && !strings.HasPrefix(s.Failure, "crash number ") {
				t.Fatalf("torn supervision failure: %q", s.Failure)
			}
		}
	}
}

// TestForceExpiresAcrossRestart pins the generation guard on manual
// restarts: a force that raced with a concurrent worker restart (so it
// names a park the worker already revived) must not carry over to the
// actor's next park and bypass its policy.
func TestForceExpiresAcrossRestart(t *testing.T) {
	var a actorInstance

	// Park 1; RestartActor targets it.
	a.parkGen.Add(1)
	a.forceGen.Store(a.parkGen.Load())
	if !a.forcePending() {
		t.Fatal("force against the current park not pending")
	}

	// The worker restarts the actor (clearing the force), but a racing
	// RestartActor that still saw failed==true re-stores the stale
	// generation afterwards.
	a.forceGen.Store(0)
	a.forceGen.Store(1)

	// Next park is a new generation: the stale force must not fire.
	a.parkGen.Add(1)
	if a.forcePending() {
		t.Fatal("stale force survived into the next park")
	}
}

// TestPanicParkUnderConcurrentTraffic: an actor crashing while two
// producers on other workers hammer its mailbox parks exactly once;
// the producers degrade to ErrMailboxFull (typed, not a wedge or a
// node leak) and the rest of the deployment keeps running.
func TestPanicParkUnderConcurrentTraffic(t *testing.T) {
	var crashes, bystanderRuns atomic.Int64
	cfg := Config{
		Workers:   []WorkerSpec{{}, {}, {}},
		PoolNodes: 32,
		Channels: []ChannelSpec{
			{Name: "t1", A: "prod-1", B: "victim", Capacity: 4},
			{Name: "t2", A: "prod-2", B: "victim", Capacity: 4},
		},
		Actors: []Spec{
			{Name: "prod-1", Worker: 1, Body: func(*Self) {}},
			{Name: "prod-2", Worker: 2, Body: func(*Self) {}},
			{
				Name: "victim", Worker: 0,
				Body: func(self *Self) {
					crashes.Add(1)
					panic("died mid-traffic")
				},
			},
			{Name: "bystander", Worker: 0, Body: func(self *Self) {
				bystanderRuns.Add(1)
				self.Progress()
			}},
		},
	}
	rt, err := NewRuntime(zeroPlatform(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()

	// Two goroutines drive the producers' endpoints concurrently with
	// the crash, as cross-worker traffic would. The main loop waits for
	// a rejected send before stopping them — against a parked 4-slot
	// mailbox one is inevitable, but only once the producers have had
	// the cycles to overfill it.
	var full atomic.Int64
	stop := make(chan struct{})
	done := make(chan struct{}, 2)
	for i, name := range []string{"prod-1", "prod-2"} {
		ep := rt.actors[name].endpoints[[]string{"t1", "t2"}[i]]
		go func(ep *Endpoint) {
			defer func() { done <- struct{}{} }()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if err := ep.Send([]byte("spam")); err != nil {
					if !errors.Is(err, ErrMailboxFull) && !errors.Is(err, ErrPoolEmpty) {
						t.Errorf("unexpected send error: %v", err)
						return
					}
					full.Add(1)
				}
			}
		}(ep)
	}

	deadline := time.Now().Add(10 * time.Second)
	for len(rt.FailedActors()) == 0 || bystanderRuns.Load() < 1000 || full.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("park, bystander progress or full mailbox missing: failed=%v bystander=%d full=%d",
				rt.FailedActors(), bystanderRuns.Load(), full.Load())
		}
		time.Sleep(time.Millisecond)
	}
	close(stop)
	<-done
	<-done

	if got := crashes.Load(); got != 1 {
		t.Fatalf("victim ran %d times, want exactly 1", got)
	}
}
