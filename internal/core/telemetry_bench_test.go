package core

import (
	"testing"
)

// buildPairTelemetry is buildPair with the observability subsystem
// switched on or off, for measuring instrumentation overhead on the
// channel hot path.
func buildPairTelemetry(b *testing.B, telem, encrypted bool) (src, dst *Endpoint) {
	b.Helper()
	cfg := Config{
		Telemetry:   telem,
		Workers:     []WorkerSpec{{}},
		PoolNodes:   512,
		NodePayload: 256,
		Actors: []Spec{
			{Name: "a", Worker: 0, Body: func(*Self) {}},
			{Name: "b", Worker: 0, Body: func(*Self) {}},
		},
		Channels: []ChannelSpec{{Name: "link", A: "a", B: "b", Capacity: 256}},
	}
	if encrypted {
		cfg.Enclaves = []EnclaveSpec{{Name: "ea"}, {Name: "eb"}}
		cfg.Actors[0].Enclave = "ea"
		cfg.Actors[1].Enclave = "eb"
	}
	rt, err := NewRuntime(zeroPlatform(), cfg)
	if err != nil {
		b.Fatalf("NewRuntime: %v", err)
	}
	b.Cleanup(rt.Stop)
	return rt.actors["a"].endpoints["link"], rt.actors["b"].endpoints["link"]
}

func benchTelemetrySendRecv(b *testing.B, telem, encrypted bool) {
	src, dst := buildPairTelemetry(b, telem, encrypted)
	payload := make([]byte, 64)
	buf := make([]byte, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := src.Send(payload); err != nil {
			b.Fatal(err)
		}
		if _, ok, err := dst.Recv(buf); !ok || err != nil {
			b.Fatalf("Recv: ok=%v err=%v", ok, err)
		}
	}
}

func benchTelemetryBatch(b *testing.B, telem bool) {
	const batch = 64
	src, dst := buildPairTelemetry(b, telem, false)
	payload := make([]byte, 64)
	payloads := make([][]byte, batch)
	for i := range payloads {
		payloads[i] = payload
	}
	bufs, lens := BatchBufs(batch, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += batch {
		sent, err := src.SendBatch(payloads)
		if err != nil || sent != batch {
			b.Fatalf("SendBatch = %d, %v", sent, err)
		}
		got, err := dst.RecvBatch(bufs, lens)
		if err != nil || got != batch {
			b.Fatalf("RecvBatch = %d, %v", got, err)
		}
	}
}

// BenchmarkTelemetryOverheadSingle quantifies the instrumented vs
// compiled-out cost of the single-message channel hop (the acceptance
// budget is ~10% with telemetry on, ~0 with it off).
func BenchmarkTelemetryOverheadSingle(b *testing.B) {
	b.Run("off", func(b *testing.B) { benchTelemetrySendRecv(b, false, false) })
	b.Run("on", func(b *testing.B) { benchTelemetrySendRecv(b, true, false) })
	b.Run("enc-off", func(b *testing.B) { benchTelemetrySendRecv(b, false, true) })
	b.Run("enc-on", func(b *testing.B) { benchTelemetrySendRecv(b, true, true) })
}

// BenchmarkTelemetryOverheadBatch64 is the batched fast path under the
// same toggle; sampling amortises the timestamping across the sweep.
func BenchmarkTelemetryOverheadBatch64(b *testing.B) {
	b.Run("off", func(b *testing.B) { benchTelemetryBatch(b, false) })
	b.Run("on", func(b *testing.B) { benchTelemetryBatch(b, true) })
}
