package core

import (
	"bytes"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"github.com/eactors/eactors-go/internal/telemetry"
	"github.com/eactors/eactors-go/internal/trace"
)

// MonitorSpec returns the MONITOR system eactor: a query/response service
// over ordinary channels, so any eactor — trusted or not — can inspect the
// running system through the same uniform communication primitive it uses
// for everything else (the paper's system-eactor pattern, Section 4).
//
// Wire a channel from any eactor to the monitor and send it one of the
// plain-text queries below; the answer comes back on the same channel,
// truncated to the channel's MaxPayload.
//
//	stats          totals and latency quantiles of every registered metric
//	rates          per-second rates of the headline counters since the
//	               previous rates query
//	report         deployment snapshot: workers, channels, enclaves,
//	               failed actors
//	dump           the system flight recorder (evictions, background events)
//	dump <worker>  worker <worker>'s flight recorder, oldest first
//	dump <actor>   the dump captured when <actor>'s body last panicked
//	               (kept after a supervised restart)
//	trace          the most recent sampled traces (up to 3), each as a
//	               per-hop latency breakdown; needs Config.Trace, not
//	               Config.Telemetry
//	trace <n>      up to <n> most recent traces
//	profile        per-actor cost profiles, communication edges and
//	               per-enclave EPC attribution; needs Config.Profile,
//	               not Config.Telemetry
//
// The monitor is an ordinary eactor: place it on a lightly loaded worker
// and, if its answers must be confidential, inside an enclave (set
// Spec.Enclave on the returned value) — queries then travel encrypted
// like any cross-enclave traffic.
func MonitorSpec(name string, worker int) Spec {
	return Spec{
		Name:   name,
		Worker: worker,
		State:  &monitorState{meters: make(map[string]*telemetry.Meter)},
		Body:   monitorBody,
	}
}

type monitorState struct {
	meters map[string]*telemetry.Meter
	req    []byte
}

// rateCounters are the headline counters the rates query reports.
var rateCounters = []string{
	"eactors_worker_invocations",
	"eactors_channel_msgs_sent",
	"eactors_channel_msgs_recv",
	"eactors_sgx_crossings",
}

func monitorBody(self *Self) {
	st := self.State.(*monitorState)
	for _, ep := range self.Endpoints() {
		if cap(st.req) < ep.MaxPayload() {
			st.req = make([]byte, ep.MaxPayload())
		}
		for {
			n, ok, err := ep.Recv(st.req[:ep.MaxPayload()])
			if !ok {
				break
			}
			self.Progress()
			if err != nil {
				continue
			}
			reply := st.answer(self, strings.TrimSpace(string(st.req[:n])))
			if len(reply) > ep.MaxPayload() {
				reply = reply[:ep.MaxPayload()]
			}
			// A full reply direction drops the answer; the client's next
			// query gets a fresh one. Monitoring must never block.
			_ = ep.Send(reply) //sendcheck:ok
		}
	}
}

func (st *monitorState) answer(self *Self, query string) []byte {
	var buf bytes.Buffer
	cmd, arg, _ := strings.Cut(query, " ")
	if cmd == "trace" {
		// Tracing is independent of telemetry, so the verb answers even
		// when the registry is off.
		writeTraces(&buf, self.Runtime(), strings.TrimSpace(arg))
		return buf.Bytes()
	}
	if cmd == "profile" {
		// Profiling is likewise independent of telemetry.
		writeProfile(&buf, self.Runtime())
		return buf.Bytes()
	}
	reg := self.Runtime().Telemetry()
	if reg == nil {
		return []byte("error: telemetry disabled (set Config.Telemetry)")
	}
	switch cmd {
	case "stats":
		reg.WriteSummary(&buf)
	case "rates":
		now := time.Now()
		for _, name := range rateCounters {
			total, ok := reg.CounterValue(name)
			if !ok {
				continue
			}
			m := st.meters[name]
			if m == nil {
				m = &telemetry.Meter{}
				st.meters[name] = m
			}
			fmt.Fprintf(&buf, "%s/s %.1f\n", name, m.Update(total, now))
		}
	case "report":
		writeReport(&buf, self.Runtime().Report())
	case "dump":
		st.writeDump(&buf, self, strings.TrimSpace(arg))
	default:
		fmt.Fprintf(&buf, "error: unknown query %q (stats|rates|report|dump [worker|actor]|trace [n]|profile)", query)
	}
	return buf.Bytes()
}

func (st *monitorState) writeDump(buf *bytes.Buffer, self *Self, arg string) {
	rt := self.Runtime()
	reg := rt.Telemetry()
	switch {
	case arg == "":
		buf.WriteString(telemetry.FormatDump(reg.SystemRecorder().Dump(0)))
	default:
		if w, err := strconv.Atoi(arg); err == nil && w >= 0 && w < len(rt.workers) {
			buf.WriteString(telemetry.FormatDump(reg.Recorder(w).Dump(0)))
			return
		}
		if dump := rt.ActorFlightDump(arg); dump != nil {
			buf.WriteString(telemetry.FormatDump(dump))
			return
		}
		fmt.Fprintf(buf, "error: %q is neither a worker index nor an actor that failed", arg)
	}
}

// writeTraces renders the tracer's most recent sampled traces as per-hop
// latency breakdowns, newest first. arg optionally bounds the trace count
// (default 3 — monitor replies are truncated to MaxPayload, so small
// defaults keep whole traces intact).
func writeTraces(buf *bytes.Buffer, rt *Runtime, arg string) {
	tr := rt.Tracer()
	if tr == nil {
		buf.WriteString("error: tracing disabled (set Config.Trace)")
		return
	}
	max := 3
	if n, err := strconv.Atoi(arg); err == nil && n > 0 {
		max = n
	}
	spans := tr.Snapshot()
	if len(spans) == 0 {
		buf.WriteString("no sampled traces recorded yet")
		return
	}
	groups := make(map[uint64][]trace.Span)
	for _, s := range spans {
		groups[s.TraceID] = append(groups[s.TraceID], s)
	}
	ids := make([]uint64, 0, len(groups))
	for id := range groups {
		ids = append(ids, id)
	}
	// Newest trace first, where "newest" is the earliest span's start —
	// torn ring slots can carry garbage timestamps, but they only mis-rank
	// their own trace.
	sort.Slice(ids, func(i, j int) bool {
		return traceStart(groups[ids[i]]) > traceStart(groups[ids[j]])
	})
	if len(ids) > max {
		ids = ids[:max]
	}
	for _, id := range ids {
		ss := groups[id]
		sort.Slice(ss, func(i, j int) bool { return ss[i].Start < ss[j].Start })
		root := ss[0].Start
		var end int64
		for _, s := range ss {
			if e := s.Start + s.Dur; e > end {
				end = e
			}
		}
		fmt.Fprintf(buf, "trace %d spans=%d total=%s\n", id, len(ss), time.Duration(end-root))
		for _, s := range ss {
			name := s.Kind.String()
			if rn := tr.RefName(s.Kind, s.Ref); rn != "" {
				name += " " + rn
			}
			fmt.Fprintf(buf, "  +%-12s %-28s worker=%-2d dur=%s\n",
				time.Duration(s.Start-root), name, s.Worker, time.Duration(s.Dur))
		}
	}
}

// writeProfile renders the cost profile in the monitor's line-oriented
// text form: one line per actor (hottest first — the snapshot orders
// edges, actors keep config order so lines are stable), the traffic
// edges and the enclave attribution.
func writeProfile(buf *bytes.Buffer, rt *Runtime) {
	if !rt.ProfileEnabled() {
		buf.WriteString("error: profiling disabled (set Config.Profile)")
		return
	}
	m := rt.CostProfile()
	for _, a := range m.Actors {
		fmt.Fprintf(buf, "actor %s worker=%d", a.Name, a.Worker)
		if a.Enclave != "" {
			fmt.Fprintf(buf, " enclave=%s", a.Enclave)
		}
		fmt.Fprintf(buf, " inv=%d invoke_ns=%d sent=%d recv=%d crossings=%d seal=%d/%dB open=%d/%dB",
			a.Invocations, a.InvokeNs, a.MsgsSent, a.MsgsRecv, a.Crossings,
			a.SealOps, a.SealBytes, a.OpenOps, a.OpenBytes)
		if a.DwellSamples > 0 {
			fmt.Fprintf(buf, " dwell_mean=%s", time.Duration(a.DwellNs/a.DwellSamples))
		}
		buf.WriteByte('\n')
	}
	for _, e := range m.Edges {
		fmt.Fprintf(buf, "edge %s->%s channel=%s msgs=%d bytes=%d\n", e.Src, e.Dst, e.Channel, e.Msgs, e.Bytes)
	}
	for _, e := range m.Enclaves {
		fmt.Fprintf(buf, "enclave %s pages=%d evicted=%d crossings=%d\n",
			e.Name, e.PagesResident, e.EvictedPages, e.Crossings)
	}
}

// traceStart returns a trace group's earliest span start.
func traceStart(ss []trace.Span) int64 {
	start := ss[0].Start
	for _, s := range ss[1:] {
		if s.Start < start {
			start = s.Start
		}
	}
	return start
}

// writeReport renders a Report in the monitor's line-oriented text form.
func writeReport(buf *bytes.Buffer, r Report) {
	for _, w := range r.Workers {
		fmt.Fprintf(buf, "worker %d actors=%s crossings=%d invocations=%d invoke_p50=%dns invoke_p99=%dns\n",
			w.ID, strings.Join(w.Actors, ","), w.Crossings, w.Invocations, w.InvokeP50Ns, w.InvokeP99Ns)
	}
	for _, ch := range r.Channels {
		fmt.Fprintf(buf, "channel %s a2b=%d b2a=%d failures=%d pending=%d send_p50=%dns send_p99=%dns\n",
			ch.Name, ch.Stats.AToB, ch.Stats.BToA, ch.Stats.SendFailures, ch.Stats.Pending, ch.SendP50Ns, ch.SendP99Ns)
	}
	for _, e := range r.Enclaves {
		fmt.Fprintf(buf, "enclave %s pages=%d private_pool_free=%d\n", e.Name, e.PagesResident, e.PrivatePoolFree)
	}
	fmt.Fprintf(buf, "pool_free %d\n", r.PublicPoolFree)
	fmt.Fprintf(buf, "sgx crossings=%d ecalls=%d ocalls=%d copied=%d evicted=%d\n",
		r.Platform.Crossings, r.Platform.ECalls, r.Platform.OCalls, r.Platform.CopiedBytes, r.Platform.EvictedPages)
	if r.Switchless.Enabled {
		fmt.Fprintf(buf, "switchless proxies=%d ring_posts=%d relayed=%d inline=%d dropped=%d crossings_avoided=%d parks=%d\n",
			r.Switchless.Proxies, r.Switchless.RingPosts, r.Switchless.Relayed, r.Switchless.Inline,
			r.Switchless.Dropped, r.Switchless.CrossingsAvoided, r.Switchless.Parks)
	}
	if len(r.FailedActors) > 0 {
		fmt.Fprintf(buf, "failed %s\n", strings.Join(r.FailedActors, ","))
	}
}
