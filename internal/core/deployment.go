package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"time"
)

// This file implements the paper's deployment-configuration mechanism
// (Section 3.2): "the developer defines the necessary mapping of
// computational resources and trusted execution contexts of eactors in
// a special configuration file". The paper generates source from it;
// Go has no code-generation step at run time, so the equivalent is a
// JSON document resolved against a Registry of actor implementations —
// the same actor code deploys under different files without
// recompilation of its logic.

// Registry maps actor type names (the code) to their implementations.
// Deployment files reference these names; the Config assembles them
// with per-file placement.
type Registry map[string]RegisteredActor

// RegisteredActor is one actor implementation available to deployment
// files.
type RegisteredActor struct {
	// Init is the optional constructor.
	Init Init
	// Body is the mandatory body function.
	Body Body
	// NewState optionally builds a fresh private state per instance.
	NewState func() any
}

// Register adds an implementation, rejecting duplicates.
func (r Registry) Register(name string, actor RegisteredActor) error {
	if name == "" {
		return fmt.Errorf("core: registering actor type with empty name")
	}
	if actor.Body == nil {
		return fmt.Errorf("core: actor type %q has no body", name)
	}
	if _, dup := r[name]; dup {
		return fmt.Errorf("core: actor type %q already registered", name)
	}
	r[name] = actor
	return nil
}

// Deployment is the serialised form of a Config.
type Deployment struct {
	// Enclaves to create.
	Enclaves []DeploymentEnclave `json:"enclaves,omitempty"`
	// Workers to start; at least one required.
	Workers []DeploymentWorker `json:"workers"`
	// Actors to instantiate.
	Actors []DeploymentActor `json:"actors"`
	// Channels wiring the actors.
	Channels []DeploymentChannel `json:"channels,omitempty"`
	// PoolNodes / NodePayload size the shared pool (defaults apply).
	PoolNodes   int `json:"poolNodes,omitempty"`
	NodePayload int `json:"nodePayload,omitempty"`
	// IdleSleepMicros is the worker idle backstop in microseconds.
	IdleSleepMicros int `json:"idleSleepMicros,omitempty"`
}

// DeploymentEnclave mirrors EnclaveSpec.
type DeploymentEnclave struct {
	Name             string `json:"name"`
	SizeBytes        int    `json:"sizeBytes,omitempty"`
	PrivatePoolNodes int    `json:"privatePoolNodes,omitempty"`
}

// DeploymentWorker mirrors WorkerSpec.
type DeploymentWorker struct {
	CPUs []int `json:"cpus,omitempty"`
}

// DeploymentActor instantiates a registered actor type under a name
// with a placement.
type DeploymentActor struct {
	// Name is the instance name (channel endpoints reference it).
	Name string `json:"name"`
	// Type is the Registry key of the implementation.
	Type string `json:"type"`
	// Enclave places the instance ("" = untrusted).
	Enclave string `json:"enclave,omitempty"`
	// Worker is the executing worker index.
	Worker int `json:"worker"`
}

// DeploymentChannel mirrors ChannelSpec.
type DeploymentChannel struct {
	Name      string `json:"name"`
	A         string `json:"a"`
	B         string `json:"b"`
	Plaintext bool   `json:"plaintext,omitempty"`
	Capacity  int    `json:"capacity,omitempty"`
}

// ParseDeployment decodes a deployment document, rejecting unknown
// fields (typos in placement files must not silently deploy wrong).
func ParseDeployment(data []byte) (*Deployment, error) {
	var d Deployment
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&d); err != nil {
		return nil, fmt.Errorf("core: parsing deployment: %w", err)
	}
	return &d, nil
}

// LoadDeployment reads and decodes a deployment file.
func LoadDeployment(path string) (*Deployment, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("core: reading deployment: %w", err)
	}
	return ParseDeployment(data)
}

// Resolve assembles a runnable Config by looking every actor type up in
// the registry. Validation of the resulting Config happens in
// NewRuntime.
func (d *Deployment) Resolve(registry Registry) (Config, error) {
	cfg := Config{
		PoolNodes:   d.PoolNodes,
		NodePayload: d.NodePayload,
		IdleSleep:   time.Duration(d.IdleSleepMicros) * time.Microsecond,
	}
	for _, e := range d.Enclaves {
		cfg.Enclaves = append(cfg.Enclaves, EnclaveSpec{
			Name:             e.Name,
			SizeBytes:        e.SizeBytes,
			PrivatePoolNodes: e.PrivatePoolNodes,
		})
	}
	for _, w := range d.Workers {
		cfg.Workers = append(cfg.Workers, WorkerSpec{CPUs: w.CPUs})
	}
	for _, a := range d.Actors {
		impl, ok := registry[a.Type]
		if !ok {
			return Config{}, fmt.Errorf("core: deployment references unknown actor type %q", a.Type)
		}
		spec := Spec{
			Name:    a.Name,
			Enclave: a.Enclave,
			Worker:  a.Worker,
			Init:    impl.Init,
			Body:    impl.Body,
		}
		if impl.NewState != nil {
			spec.State = impl.NewState()
		}
		cfg.Actors = append(cfg.Actors, spec)
	}
	for _, c := range d.Channels {
		cfg.Channels = append(cfg.Channels, ChannelSpec{
			Name: c.Name, A: c.A, B: c.B,
			Plaintext: c.Plaintext, Capacity: c.Capacity,
		})
	}
	return cfg, nil
}
