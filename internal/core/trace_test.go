package core

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/eactors/eactors-go/internal/ecrypto"
	"github.com/eactors/eactors-go/internal/trace"
)

// buildTracedPair is buildPair with the tracing subsystem armed at
// sample-every-1, returning the test-harness handles alongside the
// endpoints (exercising the exported ForTest accessors the bench
// package uses).
func buildTracedPair(t *testing.T, encrypted bool) (a, b *Endpoint, sc *trace.Scope, tr *trace.Tracer, rt *Runtime) {
	t.Helper()
	cfg := Config{
		Trace:            true,
		TraceSampleEvery: 1,
		Workers:          []WorkerSpec{{}},
		PoolNodes:        16,
		NodePayload:      128,
		Actors: []Spec{
			{Name: "a", Worker: 0, Body: func(*Self) {}},
			{Name: "b", Worker: 0, Body: func(*Self) {}},
		},
		Channels: []ChannelSpec{{Name: "link", A: "a", B: "b", Capacity: 8}},
	}
	if encrypted {
		cfg.Enclaves = []EnclaveSpec{{Name: "ea"}, {Name: "eb"}}
		cfg.Actors[0].Enclave = "ea"
		cfg.Actors[1].Enclave = "eb"
	}
	rt, err := NewRuntime(zeroPlatform(), cfg)
	if err != nil {
		t.Fatalf("NewRuntime: %v", err)
	}
	t.Cleanup(rt.Stop)
	if a, err = rt.EndpointForTest("a", "link"); err != nil {
		t.Fatal(err)
	}
	if b, err = EndpointForTest(rt, "b", "link"); err != nil {
		t.Fatal(err)
	}
	if sc, err = rt.ScopeForTest("a"); err != nil {
		t.Fatal(err)
	}
	if rt.Platform() == nil {
		t.Fatal("Platform() = nil")
	}
	return a, b, sc, rt.Tracer(), rt
}

// kindCount tallies a snapshot's span kinds for one trace.
func kindCount(spans []trace.Span, id uint64) map[trace.Kind]int {
	kinds := make(map[trace.Kind]int)
	for _, s := range spans {
		if s.TraceID == id {
			kinds[s.Kind]++
		}
	}
	return kinds
}

// TestTraceSendRecvPlain checks the plaintext hop edges: a traced Send
// records a send span, stamps the node header, and the Recv records the
// mailbox dwell and adopts the context into the receiver's scope.
func TestTraceSendRecvPlain(t *testing.T) {
	a, b, sc, tr, rt := buildTracedPair(t, false)
	ctx := tr.NewRoot()
	sc.Adopt(ctx)
	if err := a.Send([]byte("traced")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	buf := make([]byte, 128)
	n, ok, err := b.Recv(buf)
	if err != nil || !ok || string(buf[:n]) != "traced" {
		t.Fatalf("Recv: %q ok=%v err=%v", buf[:n], ok, err)
	}
	kinds := kindCount(tr.Snapshot(), ctx.TraceID)
	if kinds[trace.KindSend] != 1 || kinds[trace.KindDwell] != 1 {
		t.Fatalf("plain hop kinds = %v, want one send + one dwell", kinds)
	}
	bsc, err := rt.ScopeForTest("b")
	if err != nil {
		t.Fatal(err)
	}
	if got := bsc.Active(); got.TraceID != ctx.TraceID {
		t.Fatalf("receiver scope = %+v, want trace %d adopted", got, ctx.TraceID)
	}

	// An untraced send on the same channel must not grow the trace.
	sc.Clear()
	if err := a.Send([]byte("untraced")); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := b.Recv(buf); !ok {
		t.Fatal("untraced Recv lost the message")
	}
	if again := kindCount(tr.Snapshot(), ctx.TraceID); again[trace.KindSend] != 1 {
		t.Fatalf("untraced send extended trace %d: %v", ctx.TraceID, again)
	}
}

// TestTraceSendRecvEncrypted checks the sealed hop: the context crosses
// inside the frame (seal on send; crossing, dwell and open on receive),
// MaxPayload shrinks by the trailer, and an untraced message on the
// armed channel still round-trips cleanly.
func TestTraceSendRecvEncrypted(t *testing.T) {
	a, b, sc, tr, _ := buildTracedPair(t, true)
	if got, want := a.MaxPayload(), 128-ecrypto.Overhead-trace.HeaderSize; got != want {
		t.Fatalf("armed MaxPayload = %d, want %d", got, want)
	}
	ctx := tr.NewRoot()
	sc.Adopt(ctx)
	if err := a.Send([]byte("sealed+traced")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	buf := make([]byte, 128)
	n, ok, err := b.Recv(buf)
	if err != nil || !ok || string(buf[:n]) != "sealed+traced" {
		t.Fatalf("Recv: %q ok=%v err=%v", buf[:n], ok, err)
	}
	kinds := kindCount(tr.Snapshot(), ctx.TraceID)
	for _, k := range []trace.Kind{trace.KindSend, trace.KindSeal, trace.KindCrossing, trace.KindDwell, trace.KindOpen} {
		if kinds[k] == 0 {
			t.Fatalf("encrypted hop missing %s span: %v", k, kinds)
		}
	}

	// Untraced on the armed channel: trailer still framed, still stripped.
	sc.Clear()
	if err := a.Send([]byte("sealed only")); err != nil {
		t.Fatal(err)
	}
	n, ok, err = b.Recv(buf)
	if err != nil || !ok || string(buf[:n]) != "sealed only" {
		t.Fatalf("untraced armed Recv: %q ok=%v err=%v", buf[:n], ok, err)
	}
}

// TestTraceSendNodeEncrypted checks the zero-copy node path carries the
// context through the sealed frame the same way the copying path does.
func TestTraceSendNodeEncrypted(t *testing.T) {
	a, b, sc, tr, rt := buildTracedPair(t, true)
	ctx := tr.NewRoot()
	sc.Adopt(ctx)
	node := rt.Pool().Get()
	if node == nil {
		t.Fatal("pool empty")
	}
	if err := node.SetPayload([]byte("node traced")); err != nil {
		t.Fatal(err)
	}
	if err := a.SendNode(node); err != nil {
		t.Fatalf("SendNode: %v", err)
	}
	got, ok, err := b.RecvNode()
	if err != nil || !ok || string(got.Payload()) != "node traced" {
		t.Fatalf("RecvNode: ok=%v err=%v payload=%q", ok, err, got.Payload())
	}
	b.Release(got)
	kinds := kindCount(tr.Snapshot(), ctx.TraceID)
	if kinds[trace.KindSend] == 0 || kinds[trace.KindOpen] == 0 {
		t.Fatalf("node path kinds = %v, want send + open", kinds)
	}
}

// TestTracePipelineAcrossEnclaves runs a live 3-worker pipeline through
// two enclaves — src (untrusted) → mid (enclave ea) → sink (enclave eb)
// → drain (untrusted, plaintext return) — with every message sampled,
// while snapshot goroutines read the rings. Under -race this is the
// concurrent span-recording test; the assertion is a connected trace
// whose spans cover the send/seal/crossing/open/dwell/invoke edges and
// at least the three pipeline workers.
func TestTracePipelineAcrossEnclaves(t *testing.T) {
	const total = 400
	var sent, delivered atomic.Int64
	var tick uint32
	buf := make([]byte, 64)
	mbuf := make([]byte, 64)
	dbuf := make([]byte, 64)
	cfg := Config{
		Trace:            true,
		TraceSampleEvery: 1,
		Workers:          []WorkerSpec{{}, {}, {}},
		PoolNodes:        128,
		NodePayload:      128,
		Enclaves:         []EnclaveSpec{{Name: "ea"}, {Name: "eb"}},
		Channels: []ChannelSpec{
			{Name: "fwd", A: "src", B: "mid", Capacity: 16},
			{Name: "next", A: "mid", B: "sink", Capacity: 16},
			{Name: "out", A: "sink", B: "drain", Capacity: 16, Plaintext: true},
		},
		Actors: []Spec{
			{Name: "src", Worker: 0, Body: func(self *Self) {
				if sent.Load() >= total {
					return
				}
				tr := self.Tracer()
				if ctx, ok := tr.MaybeRoot(&tick); ok {
					self.TraceScope().Adopt(ctx)
				}
				if self.MustChannel("fwd").Send([]byte("ping")) == nil {
					sent.Add(1)
					self.Progress()
				}
			}},
			{Name: "mid", Worker: 1, Enclave: "ea", Body: func(self *Self) {
				n, ok, err := self.MustChannel("fwd").Recv(mbuf)
				if err != nil || !ok {
					return
				}
				_ = self.MustChannel("next").Send(mbuf[:n]) //sendcheck:ok
				self.Progress()
			}},
			{Name: "sink", Worker: 2, Enclave: "eb", Body: func(self *Self) {
				n, ok, err := self.MustChannel("next").Recv(buf)
				if err != nil || !ok {
					return
				}
				// A leaf span through the Begin/End helper pair.
				tr := self.Tracer()
				start := tr.Begin(self.TraceScope())
				tr.End(self.WorkerID(), self.TraceScope(), trace.KindRoute, 0, start)
				_ = self.MustChannel("out").Send(buf[:n]) //sendcheck:ok
				self.Progress()
			}},
			{Name: "drain", Worker: 0, Body: func(self *Self) {
				if _, ok, _ := self.MustChannel("out").Recv(dbuf); ok {
					delivered.Add(1)
					self.Progress()
				}
			}},
		},
	}
	rt, err := NewRuntime(zeroPlatform(), cfg)
	if err != nil {
		t.Fatalf("NewRuntime: %v", err)
	}
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Stop)

	done := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
					_ = rt.Tracer().Snapshot()
				}
			}
		}()
	}
	defer func() { close(done); wg.Wait() }()

	want := []trace.Kind{
		trace.KindSend, trace.KindSeal, trace.KindCrossing, trace.KindOpen,
		trace.KindDwell, trace.KindInvoke, trace.KindRoute,
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		spans := rt.Tracer().Snapshot()
		byTrace := make(map[uint64][]trace.Span)
		for _, s := range spans {
			byTrace[s.TraceID] = append(byTrace[s.TraceID], s)
		}
		for id, group := range byTrace {
			kinds := make(map[trace.Kind]bool)
			ids := make(map[uint32]bool)
			workers := make(map[int32]bool)
			for _, s := range group {
				kinds[s.Kind] = true
				ids[s.ID] = true
				workers[s.Worker] = true
			}
			complete := true
			for _, k := range want {
				complete = complete && kinds[k]
			}
			if !complete || len(workers) < 3 {
				continue
			}
			for _, s := range group {
				if s.Parent != 0 && !ids[s.Parent] {
					t.Fatalf("trace %d disconnected: span %d has unknown parent %d\n%+v", id, s.ID, s.Parent, group)
				}
			}
			return // connected, complete, cross-worker: done
		}
		if time.Now().After(deadline) {
			t.Fatalf("no complete pipeline trace after %d sent / %d delivered (%d spans)",
				sent.Load(), delivered.Load(), len(spans))
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestMonitorTraceVerb drives the MONITOR's trace query: it must answer
// with per-hop breakdowns when tracing is armed — with telemetry off,
// the subsystems are independent — and with a pointed error when not.
func TestMonitorTraceVerb(t *testing.T) {
	cfg := Config{
		Trace:            true,
		TraceSampleEvery: 1,
		Workers:          []WorkerSpec{{}, {}},
		PoolNodes:        16,
		NodePayload:      8192,
		Channels:         []ChannelSpec{{Name: "mon", A: "client", B: "monitor", Capacity: 8}},
		Actors: []Spec{
			{Name: "client", Worker: 0, Body: func(*Self) {}},
			MonitorSpec("monitor", 1),
		},
	}
	rt, err := NewRuntime(zeroPlatform(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Stop)
	ep := rt.actors["client"].endpoints["mon"]

	if reply := monitorQuery(t, ep, "trace"); reply != "no sampled traces recorded yet" {
		t.Fatalf("empty-tracer reply = %q", reply)
	}
	tr := rt.Tracer()
	ctx := tr.NewRoot()
	now := time.Now().UnixNano()
	tr.Record(0, trace.Span{TraceID: ctx.TraceID, ID: tr.NextSpan(), Kind: trace.KindInvoke, Start: now, Dur: 1500})
	reply := monitorQuery(t, ep, "trace 2")
	if !strings.Contains(reply, "trace ") || !strings.Contains(reply, "invoke") {
		t.Fatalf("trace reply = %q, want a per-hop breakdown", reply)
	}

	// Tracing off: the verb must answer its own error, not telemetry's.
	cfg.Trace = false
	cfg.Telemetry = true
	rt2, err := NewRuntime(zeroPlatform(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt2.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt2.Stop)
	ep2 := rt2.actors["client"].endpoints["mon"]
	if reply := monitorQuery(t, ep2, "trace"); !strings.Contains(reply, "tracing disabled") {
		t.Fatalf("disabled-tracer reply = %q", reply)
	}
}
