package core

import (
	"sync/atomic"
	"testing"
	"time"

	"github.com/eactors/eactors-go/internal/sgx"
)

// TestPrivatePoolSelection checks the paper's private/public pool split
// (Section 3.3): same-enclave channels use the enclave's private pool,
// cross-enclave channels the public pool, and the private pool's memory
// is charged to the enclave's EPC footprint.
func TestPrivatePoolSelection(t *testing.T) {
	p := zeroPlatform()
	body := func(*Self) {}
	cfg := Config{
		Enclaves: []EnclaveSpec{
			{Name: "home", PrivatePoolNodes: 8},
			{Name: "away"},
		},
		Workers:     []WorkerSpec{{}},
		PoolNodes:   16,
		NodePayload: 128,
		Actors: []Spec{
			{Name: "in1", Enclave: "home", Worker: 0, Body: body},
			{Name: "in2", Enclave: "home", Worker: 0, Body: body},
			{Name: "out", Enclave: "away", Worker: 0, Body: body},
		},
		Channels: []ChannelSpec{
			{Name: "intra", A: "in1", B: "in2"},
			{Name: "inter", A: "in1", B: "out"},
		},
	}
	rt, err := NewRuntime(p, cfg)
	if err != nil {
		t.Fatalf("NewRuntime: %v", err)
	}
	defer rt.Stop()

	private, ok := rt.PrivatePool("home")
	if !ok {
		t.Fatal("no private pool for home")
	}
	if private.Free() != 8 {
		t.Fatalf("private pool Free = %d, want 8", private.Free())
	}
	if _, ok := rt.PrivatePool("away"); ok {
		t.Fatal("away has a private pool without requesting one")
	}

	intra := rt.actors["in1"].endpoints["intra"]
	inter := rt.actors["in1"].endpoints["inter"]
	if intra.pool != private {
		t.Fatal("intra-enclave channel does not use the private pool")
	}
	if inter.pool != rt.Pool() {
		t.Fatal("inter-enclave channel does not use the public pool")
	}

	// Sending on the intra channel consumes private nodes only.
	if err := intra.Send([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if private.Free() != 7 {
		t.Fatalf("private Free = %d after send, want 7", private.Free())
	}
	if rt.Pool().Free() != 16 {
		t.Fatalf("public Free = %d after private send, want 16", rt.Pool().Free())
	}

	// The private pool's backing memory counts toward the enclave's EPC
	// footprint (8 nodes x 128 B rounds up to one page beyond the code
	// size).
	home, _ := rt.EnclaveByName("home")
	base := (DefaultEnclaveSize + sgx.PageBytes - 1) / sgx.PageBytes
	if got := home.PagesResident(); got != int64(base)+1 {
		t.Fatalf("home EPC pages = %d, want %d", got, base+1)
	}
}

// TestPrivatePoolEndToEnd runs a ping-pong entirely inside one enclave
// over its private pool.
func TestPrivatePoolEndToEnd(t *testing.T) {
	var rounds atomic.Int64
	cfg := pingPongConfig(&rounds, 50, "shared", "shared", false)
	cfg.Enclaves[0].PrivatePoolNodes = 4
	rt, err := NewRuntime(zeroPlatform(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	waitOrFatal(t, rt, 10*time.Second)
	rt.Stop()
	if rounds.Load() < 50 {
		t.Fatalf("rounds = %d", rounds.Load())
	}
	private, _ := rt.PrivatePool("shared")
	if private.Free() != 4 {
		t.Fatalf("private pool leaked: Free = %d, want 4", private.Free())
	}
}
