package core

import (
	"bytes"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/eactors/eactors-go/internal/profile"
)

// buildProfiledPair wires a 2-actor deployment with cost accounting at
// sample-every-1 (every seal/open is clocked) and hands back the
// test-harness endpoints. encrypted places the actors in two enclaves,
// so the channel seals.
func buildProfiledPair(t *testing.T, encrypted bool) (a, b *Endpoint, rt *Runtime) {
	t.Helper()
	cfg := Config{
		Profile:            true,
		ProfileSampleEvery: 1,
		Workers:            []WorkerSpec{{}},
		PoolNodes:          16,
		NodePayload:        128,
		Actors: []Spec{
			{Name: "a", Worker: 0, Body: func(*Self) {}},
			{Name: "b", Worker: 0, Body: func(*Self) {}},
		},
		Channels: []ChannelSpec{{Name: "link", A: "a", B: "b", Capacity: 8}},
	}
	if encrypted {
		cfg.Enclaves = []EnclaveSpec{{Name: "ea"}, {Name: "eb"}}
		cfg.Actors[0].Enclave = "ea"
		cfg.Actors[1].Enclave = "eb"
	}
	rt, err := NewRuntime(zeroPlatform(), cfg)
	if err != nil {
		t.Fatalf("NewRuntime: %v", err)
	}
	t.Cleanup(rt.Stop)
	if a, err = rt.EndpointForTest("a", "link"); err != nil {
		t.Fatal(err)
	}
	if b, err = rt.EndpointForTest("b", "link"); err != nil {
		t.Fatal(err)
	}
	return a, b, rt
}

// actorCost pulls one actor's profile out of a model.
func actorCost(t *testing.T, m profile.Model, name string) profile.ActorCost {
	t.Helper()
	for _, a := range m.Actors {
		if a.Name == name {
			return a
		}
	}
	t.Fatalf("actor %q not in model %+v", name, m.Actors)
	return profile.ActorCost{}
}

func TestProfileDisabledByDefault(t *testing.T) {
	cfg := Config{
		Workers: []WorkerSpec{{}},
		Actors:  []Spec{{Name: "a", Worker: 0, Body: func(*Self) {}}},
	}
	rt, err := NewRuntime(zeroPlatform(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()
	if rt.ProfileEnabled() {
		t.Fatal("ProfileEnabled without Config.Profile")
	}
	if m := rt.CostProfile(); len(m.Actors) != 0 || m.V != profile.SnapshotVersion {
		t.Fatalf("disabled CostProfile = %+v, want empty versioned model", m)
	}
	var buf bytes.Buffer
	writeProfile(&buf, rt)
	if !strings.Contains(buf.String(), "profiling disabled") {
		t.Fatalf("monitor profile verb = %q, want disabled error", buf.String())
	}
}

func TestProfilePlainSendRecv(t *testing.T) {
	a, b, rt := buildProfiledPair(t, false)
	for i := 0; i < 3; i++ {
		if err := a.Send([]byte("hello")); err != nil {
			t.Fatal(err)
		}
	}
	buf := make([]byte, 128)
	for i := 0; i < 3; i++ {
		if _, ok, err := b.Recv(buf); !ok || err != nil {
			t.Fatalf("Recv: ok=%v err=%v", ok, err)
		}
	}
	m := rt.CostProfile()
	ca, cb := actorCost(t, m, "a"), actorCost(t, m, "b")
	if ca.MsgsSent != 3 || ca.BytesSent != 15 {
		t.Fatalf("sender cost = %+v, want 3 msgs / 15 bytes", ca)
	}
	if cb.MsgsRecv != 3 || cb.BytesRecv != 15 {
		t.Fatalf("receiver cost = %+v, want 3 msgs / 15 bytes", cb)
	}
	if ca.SealOps != 0 || cb.OpenOps != 0 {
		t.Fatalf("plaintext channel must not charge seal/open: %+v %+v", ca, cb)
	}
	if len(m.Edges) != 1 || m.Edges[0].Src != "a" || m.Edges[0].Dst != "b" || m.Edges[0].Msgs != 3 {
		t.Fatalf("edges = %+v, want a->b with 3 msgs", m.Edges)
	}
	if m.SampleEvery != 1 {
		t.Fatalf("SampleEvery = %d, want 1", m.SampleEvery)
	}
}

func TestProfileEncryptedChargesSealOpen(t *testing.T) {
	a, b, rt := buildProfiledPair(t, true)
	payload := []byte("sealed-payload")
	if err := a.Send(payload); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 128)
	if _, ok, err := b.Recv(buf); !ok || err != nil {
		t.Fatalf("Recv: ok=%v err=%v", ok, err)
	}
	m := rt.CostProfile()
	ca, cb := actorCost(t, m, "a"), actorCost(t, m, "b")
	if ca.SealOps != 1 || ca.SealBytes != uint64(len(payload)) || ca.SealNs == 0 {
		t.Fatalf("sender seal cost = %+v, want 1 op / %d bytes / nonzero ns", ca, len(payload))
	}
	if cb.OpenOps != 1 || cb.OpenBytes != uint64(len(payload)) || cb.OpenNs == 0 {
		t.Fatalf("receiver open cost = %+v, want 1 op / %d bytes / nonzero ns", cb, len(payload))
	}
	// Bytes are plaintext on both sides: sealed-frame overhead must not
	// leak into the traffic counters.
	if ca.BytesSent != uint64(len(payload)) || cb.BytesRecv != uint64(len(payload)) {
		t.Fatalf("traffic bytes = sent %d recv %d, want plaintext %d", ca.BytesSent, cb.BytesRecv, len(payload))
	}
	if len(m.Enclaves) != 2 {
		t.Fatalf("enclaves = %+v, want ea and eb", m.Enclaves)
	}
}

func TestProfileBatchAndNodePaths(t *testing.T) {
	a, b, rt := buildProfiledPair(t, true)
	sent, err := a.SendBatch(frames("m1", "m2", "m3"))
	if err != nil || sent != 3 {
		t.Fatalf("SendBatch: sent=%d err=%v", sent, err)
	}
	bufs := make([][]byte, 3)
	lens := make([]int, 3)
	for i := range bufs {
		bufs[i] = make([]byte, 128)
	}
	got, err := b.RecvBatch(bufs, lens)
	if err != nil || got != 3 {
		t.Fatalf("RecvBatch: got=%d err=%v", got, err)
	}

	node := rt.Pool().Get()
	if node == nil {
		t.Fatal("pool empty")
	}
	if err := node.SetPayload([]byte("node-msg")); err != nil {
		t.Fatal(err)
	}
	if err := a.SendNode(node); err != nil {
		t.Fatalf("SendNode: %v", err)
	}
	rn, ok, err := b.RecvNode()
	if !ok || err != nil {
		t.Fatalf("RecvNode: ok=%v err=%v", ok, err)
	}
	if err := rt.Pool().Put(rn); err != nil {
		t.Fatal(err)
	}

	m := rt.CostProfile()
	ca, cb := actorCost(t, m, "a"), actorCost(t, m, "b")
	wantBytes := uint64(len("m1m2m3") + len("node-msg"))
	if ca.MsgsSent != 4 || ca.BytesSent != wantBytes {
		t.Fatalf("sender = %+v, want 4 msgs / %d bytes over batch+node paths", ca, wantBytes)
	}
	if cb.MsgsRecv != 4 || cb.BytesRecv != wantBytes {
		t.Fatalf("receiver = %+v, want 4 msgs / %d bytes over batch+node paths", cb, wantBytes)
	}
	if ca.SealOps != 4 || cb.OpenOps != 4 {
		t.Fatalf("seal/open ops = %d/%d, want 4/4 (every sealed message exact)", ca.SealOps, cb.OpenOps)
	}
}

// TestProfileRunningWorkers drives a live deployment: an enclaved
// consumer fed by a producer, asserting invocation counts, body CPU
// time and crossing attribution land on the right actors.
func TestProfileRunningWorkers(t *testing.T) {
	var consumed atomic.Uint64
	cfg := Config{
		Profile:   true,
		Workers:   []WorkerSpec{{}, {}},
		Enclaves:  []EnclaveSpec{{Name: "trusted"}},
		PoolNodes: 32,
		Actors: []Spec{
			{Name: "producer", Worker: 0, Body: func(*Self) {}},
			{
				Name: "consumer", Worker: 1, Enclave: "trusted",
				Body: func(self *Self) {
					ch := self.MustChannel("link")
					buf := make([]byte, 64)
					for {
						_, ok, _ := ch.Recv(buf)
						if !ok {
							return
						}
						consumed.Add(1)
						self.Progress()
					}
				},
			},
		},
		Channels: []ChannelSpec{{Name: "link", A: "producer", B: "consumer", Capacity: 16}},
	}
	rt, err := NewRuntime(zeroPlatform(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()

	ep := rt.actors["producer"].endpoints["link"]
	for i := 0; i < 10; i++ {
		if err := ep.SendRetry([]byte("work"), time.Now().Add(time.Second)); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for consumed.Load() < 10 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if consumed.Load() < 10 {
		t.Fatalf("consumer handled %d/10 messages", consumed.Load())
	}

	m := rt.CostProfile()
	cc := actorCost(t, m, "consumer")
	if cc.Invocations == 0 || cc.InvokeNs == 0 {
		t.Fatalf("consumer invocation cost = %+v, want nonzero invocations and CPU", cc)
	}
	if cc.Crossings == 0 {
		t.Fatal("consumer crossings = 0, want the enclave transitions charged to it")
	}
	if cp := actorCost(t, m, "producer"); cp.Crossings != 0 {
		t.Fatalf("producer crossings = %d, want 0 (untrusted actor)", cp.Crossings)
	}

	// The monitor's line-oriented render over the same runtime.
	var buf bytes.Buffer
	writeProfile(&buf, rt)
	out := buf.String()
	for _, want := range []string{"actor producer", "actor consumer", "enclave=trusted", "edge producer->consumer", "enclave trusted"} {
		if !strings.Contains(out, want) {
			t.Fatalf("monitor profile verb missing %q:\n%s", want, out)
		}
	}
}

// TestProfilePrometheusSeries checks the per-actor labelled counter
// series appear on the registry when both subsystems are armed.
func TestProfilePrometheusSeries(t *testing.T) {
	a, b, rt := func() (x, y *Endpoint, r *Runtime) {
		cfg := Config{
			Profile:   true,
			Telemetry: true,
			Workers:   []WorkerSpec{{}},
			PoolNodes: 16,
			Actors: []Spec{
				{Name: "a", Worker: 0, Body: func(*Self) {}},
				{Name: "b", Worker: 0, Body: func(*Self) {}},
			},
			Channels: []ChannelSpec{{Name: "link", A: "a", B: "b", Capacity: 8}},
		}
		r, err := NewRuntime(zeroPlatform(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(r.Stop)
		if x, err = r.EndpointForTest("a", "link"); err != nil {
			t.Fatal(err)
		}
		if y, err = r.EndpointForTest("b", "link"); err != nil {
			t.Fatal(err)
		}
		return x, y, r
	}()
	if err := a.Send([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := b.Recv(make([]byte, 16)); !ok || err != nil {
		t.Fatalf("Recv ok=%v err=%v", ok, err)
	}
	var buf bytes.Buffer
	rt.Telemetry().WritePrometheus(&buf)
	out := buf.String()
	if !strings.Contains(out, `eactors_actor_msgs_sent_total{actor="a"} 1`) {
		t.Fatalf("per-actor series missing:\n%s", out)
	}
	if !strings.Contains(out, `eactors_actor_msgs_recv_total{actor="b"} 1`) {
		t.Fatalf("per-actor recv series missing:\n%s", out)
	}
}
