package core

import (
	"fmt"

	"github.com/eactors/eactors-go/internal/telemetry"
)

// metrics is the runtime's instrument set, allocated only when
// Config.Telemetry is set. Every field is nil-safe through the
// instruments' nil-receiver no-ops, but the hot paths additionally gate
// on the single `m != nil` check so the disabled case costs one branch,
// not a dozen.
type metrics struct {
	reg *telemetry.Registry

	// Worker-side.
	invocations  *telemetry.Counter     // body invocations, sharded per worker
	invokeNs     []*telemetry.Histogram // per-worker body-invoke latency
	drainExhaust *telemetry.Counter     // invocations that consumed their whole drain budget
	idles        *telemetry.Counter     // worker transitions into the idle wait
	wakes        *telemetry.Counter     // doorbell wakeups out of the idle wait
	parks        *telemetry.Counter     // actors parked after a body panic
	restarts     *telemetry.Counter     // supervised restarts of parked actors

	// Channel-side. Traffic totals (msgs sent/recv, send failures) are
	// NOT duplicated here: the endpoint atomics remain the single source
	// of truth and registerRuntimeFuncs sums them at read time, so the
	// per-message fast path pays nothing for them.
	sendBatch *telemetry.Histogram // SendBatch burst sizes
	recvBatch *telemetry.Histogram // RecvBatch burst sizes
	sealNs    *telemetry.Histogram // in-channel payload seal time (sampled)
	openNs    *telemetry.Histogram // in-channel payload open time (sampled)
}

// latencySampleMask subsamples the per-operation clock reads on the
// channel hot path: 1 in 16 operations pays the two time.Now calls that
// feed the latency histograms, keeping the amortised overhead well under
// the ≤10% budget while the counters (one sharded atomic add) stay
// exact. The endpoint's tick counter is owner-thread-local, so sampling
// costs no synchronisation.
const latencySampleMask = 15

func newMetrics(reg *telemetry.Registry, workers int) *metrics {
	m := &metrics{
		reg:          reg,
		invocations:  reg.Counter("eactors_worker_invocations", "eactor body invocations"),
		drainExhaust: reg.Counter("eactors_worker_drain_exhausted", "invocations that consumed the whole RecvBatch drain budget"),
		idles:        reg.Counter("eactors_worker_idle", "worker transitions into the doorbell idle wait"),
		wakes:        reg.Counter("eactors_worker_wakes", "doorbell wakeups out of the idle wait"),
		parks:        reg.Counter("eactors_actor_parks", "eactors parked after a body panic"),
		restarts:     reg.Counter("eactors_restarts", "supervised restarts of parked eactors"),
		sendBatch:    reg.Histogram("eactors_channel_send_batch_size", "SendBatch burst sizes", "msgs"),
		recvBatch:    reg.Histogram("eactors_channel_recv_batch_size", "RecvBatch burst sizes", "msgs"),
		sealNs:       reg.Histogram("eactors_channel_seal_ns", "per-payload channel seal time, sampled 1/16", "ns"),
		openNs:       reg.Histogram("eactors_channel_open_ns", "per-payload channel open time, sampled 1/16", "ns"),
	}
	m.invokeNs = make([]*telemetry.Histogram, workers)
	for i := range m.invokeNs {
		m.invokeNs[i] = reg.Histogram(
			fmt.Sprintf("eactors_worker_invoke_ns{worker=%q}", fmt.Sprint(i)),
			"eactor body invocation latency", "ns")
	}
	return m
}

// registerRuntimeFuncs exposes the runtime's pre-existing sources of
// truth — endpoint traffic atomics, pool occupancy, platform simulator
// counters — as read-time metrics. Report() and /metrics therefore read
// the same underlying state; telemetry never duplicates these counters.
func (rt *Runtime) registerRuntimeFuncs() {
	reg := rt.tel
	pool := rt.pool
	// Aggregate channel traffic, summed over the endpoint atomics at
	// scrape time (the channel set is immutable after NewRuntime).
	reg.CounterFunc("eactors_channel_msgs_sent", "messages enqueued on channels",
		func() uint64 {
			var n uint64
			for _, ch := range rt.channels {
				n += ch.epA.sent.Load() + ch.epB.sent.Load()
			}
			return n
		})
	reg.CounterFunc("eactors_channel_msgs_recv", "messages dequeued from channels",
		func() uint64 {
			var n uint64
			for _, ch := range rt.channels {
				n += ch.epA.received.Load() + ch.epB.received.Load()
			}
			return n
		})
	reg.CounterFunc("eactors_channel_send_failures", "sends rejected by a full mbox or empty pool",
		func() uint64 {
			var n uint64
			for _, ch := range rt.channels {
				n += ch.epA.sendFailures.Load() + ch.epB.sendFailures.Load()
			}
			return n
		})
	reg.GaugeFunc("eactors_pool_free", "free nodes in the shared public pool",
		func() uint64 { return uint64(pool.Free()) })
	for name, p := range rt.privatePools {
		p := p
		reg.GaugeFunc(fmt.Sprintf("eactors_private_pool_free{enclave=%q}", name),
			"free nodes in an enclave's private pool",
			func() uint64 { return uint64(p.Free()) })
	}
	reg.GaugeFunc("eactors_failed_actors", "eactors currently parked after a body panic",
		func() uint64 {
			rt.failedMu.Lock()
			defer rt.failedMu.Unlock()
			return uint64(len(rt.failed))
		})
	if rt.flt != nil {
		flt := rt.flt
		reg.CounterFunc("eactors_faults_injected", "faults fired by the configured injector",
			func() uint64 { return flt.Injected() })
	}
}

// registerChannelFuncs exposes one channel's traffic counters (the
// endpoint atomics Report() also reads) as labelled series.
func (rt *Runtime) registerChannelFuncs(ch *Channel) {
	reg := rt.tel
	label := fmt.Sprintf("{channel=%q}", ch.name)
	reg.CounterFunc("eactors_channel_sent_a2b"+label, "messages sent A to B",
		func() uint64 { return ch.epA.sent.Load() })
	reg.CounterFunc("eactors_channel_sent_b2a"+label, "messages sent B to A",
		func() uint64 { return ch.epB.sent.Load() })
	reg.CounterFunc("eactors_channel_failures"+label, "send failures on the channel",
		func() uint64 { return ch.epA.sendFailures.Load() + ch.epB.sendFailures.Load() })
	reg.GaugeFunc("eactors_channel_pending"+label, "messages queued on the channel",
		func() uint64 { return uint64(ch.ab.Len() + ch.ba.Len()) })
}

// Telemetry returns the runtime's registry, or nil when Config.Telemetry
// was not set. Exporters (the MONITOR eactor, the HTTP handler) and
// instrumented subsystems hang off this.
func (rt *Runtime) Telemetry() *telemetry.Registry { return rt.tel }

// ActorFlightDump returns the flight-recorder dump captured when the
// named actor's body last panicked: the final events of the owning
// worker up to and including the park. The dump survives a supervised
// restart — the post-mortem of a revived actor stays inspectable — and
// is nil for an actor that never failed or when telemetry is disabled.
func (rt *Runtime) ActorFlightDump(name string) []telemetry.Event {
	inst, ok := rt.actors[name]
	if !ok {
		return nil
	}
	if dump := inst.dump.Load(); dump != nil {
		return *dump
	}
	return nil
}
