package core

import (
	"fmt"
	"time"

	"github.com/eactors/eactors-go/internal/faults"
)

// Defaults for Config fields left zero.
const (
	DefaultPoolNodes    = 4096
	DefaultNodePayload  = 2048
	DefaultMboxCapacity = 1024
	// DefaultIdleSleep is only a backstop: every message path rings the
	// consumer worker's doorbell, so idle workers can sleep long. Short
	// idle sleeps are actively harmful on few-core hosts — the timer
	// churn of many workers keeps the scheduler busy and delays network
	// readiness delivery to the pumps by a sysmon period (~10ms).
	DefaultIdleSleep = 10 * time.Millisecond
	// DefaultDrainBudget bounds how many messages one body invocation
	// may consume through Self.RecvBatch. The budget is what lets
	// bodies drain aggressively (the batch fast path) without letting
	// one flooded eactor starve its worker siblings: the worker resets
	// it before every invocation, so a body that exhausts it simply
	// resumes on its next round-robin turn.
	DefaultDrainBudget = 256
)

// Switchless defaults (Config.Switchless fields left zero).
const (
	// DefaultSwitchlessProxies is the proxy-worker count.
	DefaultSwitchlessProxies = 1
	// DefaultSwitchlessSpin is how long an idle proxy busy-polls its
	// rings before parking on an untrusted event. Long enough to ride
	// out a scheduling gap between two messages of a burst, short
	// enough that an idle deployment burns no measurable CPU.
	DefaultSwitchlessSpin = 50 * time.Microsecond
	// DefaultSwitchlessSegment caps how many queued records one sealed
	// segment coalesces. Larger segments amortise the fixed AEAD cost
	// over more records but delay the first record of a burst.
	DefaultSwitchlessSegment = 16
)

// SwitchlessConfig enables switchless channel crossings: encrypted
// channels stop sealing on the sender's thread and instead post plain
// records onto per-direction call rings serviced by dedicated proxy
// workers, which seal queued runs into single segments (one AEAD pass
// per run), move them across the boundary, and open them into the
// receiver's ring — the paper's switchless-call optimisation (Section
// 5.3 / Figure 11), generalised to the channel fast path. Proxies spin
// a bounded budget when their rings run dry, then park on an
// sgx.Event; the channel transparently degrades to blocking one-shot
// crossings (seal/open inline) until load returns.
type SwitchlessConfig struct {
	// Enabled turns the mode on for every encrypted channel.
	Enabled bool
	// Proxies is the proxy-worker count (DefaultSwitchlessProxies when
	// zero). Channel directions are assigned round-robin.
	Proxies int
	// SpinBudget bounds the idle busy-poll before a proxy parks
	// (DefaultSwitchlessSpin when zero).
	SpinBudget time.Duration
	// RingCapacity is the per-direction call-ring size (power of two;
	// the channel's mbox capacity when zero).
	RingCapacity int
	// SegmentMax caps records per sealed segment
	// (DefaultSwitchlessSegment when zero; clamped to RingCapacity).
	SegmentMax int
}

// proxyCount resolves the configured proxy-worker count.
func (s SwitchlessConfig) proxyCount() int {
	if !s.Enabled {
		return 0
	}
	if s.Proxies == 0 {
		return DefaultSwitchlessProxies
	}
	return s.Proxies
}

// EnclaveSpec declares one enclave of the deployment.
type EnclaveSpec struct {
	// Name is the enclave identity referenced by Spec.Enclave.
	Name string
	// SizeBytes is the initial code+data footprint charged to the EPC at
	// creation. Zero uses a small default (the paper reports ~500 KiB
	// per XMPP enclave, Section 6.1).
	SizeBytes int
	// PrivatePoolNodes, when positive, preallocates a private node pool
	// inside this enclave (Section 3.3: "the framework preallocates
	// private and public pools at system start"). Channels whose two
	// endpoints both live in this enclave draw nodes from the private
	// pool — their messages then never leave EPC-accounted memory — all
	// other channels use the shared public pool.
	PrivatePoolNodes int
}

// DefaultEnclaveSize matches the paper's reported per-enclave footprint.
const DefaultEnclaveSize = 500 * 1024

// WorkerSpec declares one worker thread.
type WorkerSpec struct {
	// CPUs optionally pins the worker thread (Linux only, best effort).
	CPUs []int
}

// ChannelSpec declares a bidirectional channel between two eactors.
type ChannelSpec struct {
	// Name is the channel identifier both endpoints use in
	// Self.Channel.
	Name string
	// A and B are the endpoint actor names. A is the paper's initiator,
	// B the client; the distinction only fixes nonce direction tags.
	A, B string
	// Plaintext disables transparent encryption even when A and B live
	// in different enclaves (Section 3.3: "except if the channel is
	// configured as non-encrypted").
	Plaintext bool
	// Capacity is the per-direction mbox capacity (power of two);
	// DefaultMboxCapacity when zero.
	Capacity int
}

// Config is the deployment description the paper keeps in a special
// configuration file (Section 3.2): enclaves, workers, eactors, their
// placement, and the channels wiring them together.
type Config struct {
	// Enclaves lists the trusted execution contexts to create.
	Enclaves []EnclaveSpec
	// Workers lists the executing threads. At least one is required.
	Workers []WorkerSpec
	// Actors lists the eactors.
	Actors []Spec
	// Channels wires pairs of eactors.
	Channels []ChannelSpec

	// PoolNodes and NodePayload size the shared preallocated node pool.
	PoolNodes   int
	NodePayload int

	// IdleSleep is the worker back-off once all its eactors are idle.
	IdleSleep time.Duration

	// DrainBudget caps the messages one body invocation may consume via
	// Self.RecvBatch (DefaultDrainBudget when zero). Raise it for
	// throughput-bound single-actor workers, lower it for fairness
	// under mixed latency-sensitive actors.
	DrainBudget int

	// Telemetry enables the observability subsystem: sharded counters,
	// latency histograms and a per-worker flight recorder, exposed
	// through Runtime.Telemetry (Prometheus/pprof HTTP) and the MONITOR
	// system eactor. Disabled, every instrumentation site reduces to one
	// nil check; enabled, hot-path latency sampling keeps the overhead
	// within ~10% on the message fast path (see DESIGN.md §Observability).
	Telemetry bool

	// TelemetryRecorderSize is the per-worker flight-recorder ring size
	// in events (power of two, telemetry.DefaultRecorderSize when zero).
	TelemetryRecorderSize int

	// Trace enables sampled causal tracing (internal/trace): ingress
	// points root 1-in-TraceSampleEvery traces, and every hop of a
	// sampled message records spans (send, mailbox dwell, seal/open,
	// enclave crossing, invoke, ...) into per-worker ring buffers.
	// Independent of Telemetry. Disabled, every site reduces to a nil
	// check; armed, unsampled messages pay one atomic load per hop.
	Trace bool

	// TraceSampleEvery roots one trace per this many ingress events
	// (rounded up to a power of two; trace.DefaultSampleEvery when zero).
	TraceSampleEvery int

	// TraceBufferSpans is the per-worker span ring size (power-of-two
	// rounding; trace.DefaultBufferSpans when zero).
	TraceBufferSpans int

	// Profile enables per-actor cost accounting (internal/profile):
	// every actor gets a cost cell accumulating invoke CPU time, traffic
	// per peer, enclave crossings, seal/open work and mailbox dwell, and
	// Runtime.CostProfile snapshots the deployment-wide cost model.
	// Independent of Telemetry and Trace (though dwell attribution needs
	// Trace: it is folded from sampled dwell spans). Disabled, every
	// site reduces to a nil check.
	Profile bool

	// ProfileSampleEvery decimates the seal/open clock reads: 1 in this
	// many operations is timed and the result extrapolated (rounded up
	// to a power of two; profile.DefaultSampleEvery when zero; 1 times
	// every operation).
	ProfileSampleEvery int

	// Switchless enables asynchronous call rings with proxy workers on
	// encrypted channels; see SwitchlessConfig.
	Switchless SwitchlessConfig

	// Faults arms the deterministic fault injector on every hook site of
	// this deployment: channel sends/receives, enclave crossings, sealing,
	// body invocations (and, via sgx.Platform.AttachFaults, the platform
	// the runtime executes on). nil — the production case — reduces every
	// hook to a single pointer load. The same seed replays the same fault
	// schedule; see internal/faults.
	Faults *faults.Injector
}

// MemoryFootprint estimates the bytes the deployment preallocates:
// the public pool, per-enclave private pools, and mbox slot arrays.
// Deployments use it to plan against the EPC budget (Section 2.2's
// scarce-memory constraint) before starting a runtime.
func (c *Config) MemoryFootprint() (publicPool, privatePools, mboxes int) {
	poolNodes := c.PoolNodes
	if poolNodes == 0 {
		poolNodes = DefaultPoolNodes
	}
	payload := c.NodePayload
	if payload == 0 {
		payload = DefaultNodePayload
	}
	publicPool = poolNodes * payload
	for _, e := range c.Enclaves {
		privatePools += e.PrivatePoolNodes * payload
	}
	const slotBytes = 16 // sequence word + node pointer per ring slot
	for _, ch := range c.Channels {
		capacity := ch.Capacity
		if capacity == 0 {
			capacity = DefaultMboxCapacity
		}
		mboxes += 2 * capacity * slotBytes
	}
	return publicPool, privatePools, mboxes
}

func (c *Config) validate() error {
	if len(c.Workers) == 0 {
		return fmt.Errorf("core: config needs at least one worker")
	}
	if len(c.Actors) == 0 {
		return fmt.Errorf("core: config needs at least one actor")
	}
	enclaves := make(map[string]bool, len(c.Enclaves))
	for _, e := range c.Enclaves {
		if e.Name == "" {
			return fmt.Errorf("core: enclave with empty name")
		}
		if enclaves[e.Name] {
			return fmt.Errorf("core: duplicate enclave %q", e.Name)
		}
		enclaves[e.Name] = true
	}
	actors := make(map[string]bool, len(c.Actors))
	for _, a := range c.Actors {
		if a.Name == "" {
			return fmt.Errorf("core: actor with empty name")
		}
		if actors[a.Name] {
			return fmt.Errorf("core: duplicate actor %q", a.Name)
		}
		actors[a.Name] = true
		if a.Body == nil {
			return fmt.Errorf("core: actor %q has no body", a.Name)
		}
		if a.Enclave != "" && !enclaves[a.Enclave] {
			return fmt.Errorf("core: actor %q references unknown enclave %q", a.Name, a.Enclave)
		}
		if a.Worker < 0 || a.Worker >= len(c.Workers) {
			return fmt.Errorf("core: actor %q references worker %d of %d", a.Name, a.Worker, len(c.Workers))
		}
	}
	channels := make(map[string]bool, len(c.Channels))
	for _, ch := range c.Channels {
		if ch.Name == "" {
			return fmt.Errorf("core: channel with empty name")
		}
		if channels[ch.Name] {
			return fmt.Errorf("core: duplicate channel %q", ch.Name)
		}
		channels[ch.Name] = true
		if !actors[ch.A] {
			return fmt.Errorf("core: channel %q endpoint A references unknown actor %q", ch.Name, ch.A)
		}
		if !actors[ch.B] {
			return fmt.Errorf("core: channel %q endpoint B references unknown actor %q", ch.Name, ch.B)
		}
		if ch.A == ch.B {
			return fmt.Errorf("core: channel %q connects actor %q to itself", ch.Name, ch.A)
		}
		if ch.Capacity != 0 && (ch.Capacity < 2 || ch.Capacity&(ch.Capacity-1) != 0) {
			return fmt.Errorf("core: channel %q capacity %d is not a power of two", ch.Name, ch.Capacity)
		}
	}
	if c.PoolNodes < 0 || c.NodePayload < 0 {
		return fmt.Errorf("core: negative pool geometry")
	}
	if c.DrainBudget < 0 {
		return fmt.Errorf("core: negative drain budget")
	}
	if c.TelemetryRecorderSize < 0 {
		return fmt.Errorf("core: negative telemetry recorder size")
	}
	if c.TraceSampleEvery < 0 || c.TraceBufferSpans < 0 {
		return fmt.Errorf("core: negative trace configuration")
	}
	if c.ProfileSampleEvery < 0 {
		return fmt.Errorf("core: negative profile sample period")
	}
	if c.Switchless.Proxies < 0 || c.Switchless.SegmentMax < 0 || c.Switchless.SpinBudget < 0 {
		return fmt.Errorf("core: negative switchless configuration")
	}
	if rc := c.Switchless.RingCapacity; rc != 0 && (rc < 2 || rc&(rc-1) != 0) {
		return fmt.Errorf("core: switchless ring capacity %d is not a power of two", rc)
	}
	return nil
}
