package core

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"github.com/eactors/eactors-go/internal/ecrypto"
	"github.com/eactors/eactors-go/internal/faults"
	"github.com/eactors/eactors-go/internal/mem"
	"github.com/eactors/eactors-go/internal/profile"
	"github.com/eactors/eactors-go/internal/telemetry"
	"github.com/eactors/eactors-go/internal/trace"
)

// Channel-layer errors. Every send failure path returns one of these
// typed errors — callers branch with errors.Is, never on a bare bool,
// so a dropped message is always a visible decision at the call site
// (cmd/sendcheck enforces this in CI).
var (
	// ErrMailboxFull reports a full mbox; the sender should retry on a
	// later body invocation (or bound a retry with SendRetry).
	ErrMailboxFull = errors.New("core: channel mbox full")

	// ErrPoolEmpty reports that no free node was available.
	ErrPoolEmpty = errors.New("core: node pool exhausted")

	// ErrChannelFull and ErrPoolExhausted are the former names, kept as
	// aliases so errors.Is works across old and new call sites.
	ErrChannelFull   = ErrMailboxFull
	ErrPoolExhausted = ErrPoolEmpty

	// ErrPayloadTooLarge reports a payload exceeding the node capacity
	// (minus encryption overhead on encrypted channels).
	ErrPayloadTooLarge = errors.New("core: payload exceeds node capacity")

	// ErrShortBuffer reports a Recv buffer smaller than the message.
	ErrShortBuffer = errors.New("core: receive buffer too small")

	// ErrReplay reports a message whose sequence counter is not strictly
	// monotonic: the paper's adversary controls the untrusted runtime
	// and can replay or reorder nodes, so encrypted endpoints enforce
	// the sender's counter ordering.
	ErrReplay = errors.New("core: replayed or reordered encrypted message")
)

// Channel is a bidirectional link between two eactors, built from two
// FIFO mboxes over the shared node pool. When its endpoints live in
// different enclaves and the channel is not configured plaintext, both
// directions are transparently AES-GCM-sealed with a key agreed through
// simulated SGX local attestation — the paper's uniform communication
// primitive (Section 3.3): eactor code is identical whether its peer is
// co-located, in another enclave, or untrusted.
type Channel struct {
	name      string
	a, b      string // endpoint actor names
	encrypted bool
	tag       uint32 // dense id for flight-recorder events
	ab, ba    *mem.Mbox
	epA, epB  *Endpoint
}

// ChannelStats aggregates a channel's traffic counters.
type ChannelStats struct {
	// AToB / BToA count delivered messages per direction.
	AToB, BToA uint64
	// SendFailures counts sends rejected by a full mbox or empty pool
	// (both directions).
	SendFailures uint64
	// Pending counts currently queued messages (both directions).
	Pending int
}

// Stats returns a snapshot of the channel's counters.
func (c *Channel) Stats() ChannelStats {
	return ChannelStats{
		AToB:         c.epA.sent.Load(),
		BToA:         c.epB.sent.Load(),
		SendFailures: c.epA.sendFailures.Load() + c.epB.sendFailures.Load(),
		Pending:      c.ab.Len() + c.ba.Len(),
	}
}

// Name returns the configured channel name.
func (c *Channel) Name() string { return c.name }

// Encrypted reports whether payloads are sealed in transit.
func (c *Channel) Encrypted() bool { return c.encrypted }

// Scratch-buffer retention policy: an endpoint that once carried a
// node-sized message would otherwise pin that much staging memory
// forever (per endpoint — with thousands of channels that adds up,
// and inside an enclave it is EPC-accounted). A buffer larger than
// scratchSoftCap is released after scratchShrinkAfter consecutive
// uses that stayed under the cap; a streak of large messages keeps
// the buffer, so steady large traffic never reallocates.
const (
	scratchSoftCap     = 4096
	scratchShrinkAfter = 32
)

// Endpoint is one eactor's end of a channel. Endpoints are owned by
// their eactor and must only be used from its body/constructor.
type Endpoint struct {
	ch       *Channel
	out, in  *mem.Mbox
	pool     *mem.Pool
	cipher   *ecrypto.Cipher // nil on plaintext channels
	scratch  []byte          // staging buffer for in-place crypto
	peerWake func()          // rings the consumer worker's doorbell

	batch       []*mem.Node // node staging for the batch fast path
	scratchIdle int         // consecutive small scratch uses (see noteScratchUse)

	// inj is the runtime's fault injector (Config.Faults); nil in
	// production, one nil check on the hot paths.
	inj *faults.Injector

	// Telemetry (all nil/zero unless Config.Telemetry): m gates the
	// instrumented paths, shard is the owning worker's counter shard,
	// rec its flight recorder, sendNs the per-channel sampled latency
	// histogram and sampleTick the owner-thread-local sampling counter.
	m          *metrics
	shard      int
	rec        *telemetry.Recorder
	sendNs     *telemetry.Histogram
	sampleTick uint32

	// Tracing (all nil/zero unless Config.Trace): tr is the runtime's
	// causal tracer, scope the owning actor's trace scope and owner its
	// worker index for span attribution. Sends stamp the scope's active
	// context onto outbound nodes (and, on encrypted channels, into a
	// sealed trailer); receives adopt inbound contexts and record
	// dwell/crossing/open spans. Untraced operations on an armed
	// endpoint cost one atomic scope load.
	tr    *trace.Tracer
	scope *trace.Scope
	owner int

	// Cost accounting (all nil/zero unless Config.Profile): pc is the
	// owning actor's cost cell, pcEdge this direction's communication-
	// matrix edge, pcMask the seal/open clock-read sampling mask and
	// pcTick its owner-thread-local counter. Counters are exact; clock
	// reads are decimated 1-in-(pcMask+1) and extrapolated.
	pc     *profile.ActorCell
	pcEdge *profile.EdgeCell
	pcMask uint32
	pcTick uint32

	// Switchless mode (Config.Switchless, encrypted channels only):
	// sw is this endpoint's egress direction — sends post plain records
	// onto its call ring instead of sealing here — and swRx its ingress
	// direction — receives pop already-opened records off its rx ring.
	// Both nil on blocking channels; see switchless.go.
	sw   *swDir
	swRx *swDir

	sent         atomic.Uint64
	received     atomic.Uint64
	sendFailures atomic.Uint64

	// lastSeq is the highest sender counter accepted on this (encrypted)
	// endpoint; non-monotonic counters are rejected as replays.
	lastSeq uint64
}

// Sent returns the number of messages this endpoint enqueued.
func (e *Endpoint) Sent() uint64 { return e.sent.Load() }

// Received returns the number of messages this endpoint dequeued.
func (e *Endpoint) Received() uint64 { return e.received.Load() }

// SendFailures returns how many sends hit a full mbox or empty pool.
func (e *Endpoint) SendFailures() uint64 { return e.sendFailures.Load() }

// Channel returns the owning channel.
func (e *Endpoint) Channel() *Channel { return e.ch }

// MaxPayload returns the largest payload Send accepts. On encrypted
// channels of a tracing runtime the sealed frame also carries the
// 16-byte trace trailer, so the application budget shrinks by that
// much (deterministic framing: the trailer is always present, traced
// or not).
func (e *Endpoint) MaxPayload() int {
	capacity := e.pool.Arena().PayloadSize()
	if e.cipher != nil {
		capacity -= ecrypto.Overhead
		if e.tr != nil {
			capacity -= trace.HeaderSize
		}
		if e.sw != nil {
			// Switchless frames are segments; every record carries a
			// length prefix inside the sealed run.
			capacity -= segHdr
		}
	}
	return capacity
}

// maybeSample starts a latency sample on 1 in 16 operations when
// telemetry is enabled, returning the zero time otherwise (which
// Histogram.ObserveSince ignores). The tick counter is owner-thread-
// local, so sampling is free of synchronisation; the skipped iterations
// avoid the two time.Now calls that would otherwise dominate the
// instrumentation budget of the message fast path.
func (e *Endpoint) maybeSample() time.Time {
	if e.m == nil {
		return time.Time{}
	}
	e.sampleTick++
	if e.sampleTick&latencySampleMask != 0 {
		return time.Time{}
	}
	return time.Now()
}

// pcSample decides whether this operation's seal/open pays the clock
// reads for cost accounting: it returns 0 to skip, or the sampling
// period to multiply the measured duration by (extrapolation). The
// tick is owner-thread-local like sampleTick.
func (e *Endpoint) pcSample() uint32 {
	if e.pc == nil {
		return 0
	}
	e.pcTick++
	if e.pcTick&e.pcMask != 0 {
		return 0
	}
	return e.pcMask + 1
}

// pcSent charges a successful send of msgs messages totalling bytes
// plaintext bytes to the owning actor and this direction's edge.
func (e *Endpoint) pcSent(msgs, bytes int) {
	if e.pc == nil {
		return
	}
	e.pc.MsgsSent.Add(uint64(msgs))
	e.pc.BytesSent.Add(uint64(bytes))
	e.pcEdge.Msgs.Add(uint64(msgs))
	e.pcEdge.Bytes.Add(uint64(bytes))
}

// pcRecv charges delivered inbound messages to the owning actor.
func (e *Endpoint) pcRecv(msgs, bytes int) {
	if e.pc == nil || msgs == 0 {
		return
	}
	e.pc.MsgsRecv.Add(uint64(msgs))
	e.pc.BytesRecv.Add(uint64(bytes))
}

// noteSent traces a successful send of n messages. Traffic totals come
// from the endpoint atomics at read time; only the sampled operations
// (start non-zero, 1 in 16) pay for the flight-recorder event and the
// latency observation, so the per-message fast path costs no timestamp.
func (e *Endpoint) noteSent(n int, start time.Time) {
	if start.IsZero() {
		return
	}
	e.rec.Record(telemetry.EvEnqueue, e.ch.tag, uint64(n))
	e.sendNs.ObserveSince(start)
}

// noteRecv traces a successful receive of n messages, decimated 1-in-16
// by the owner-local tick like noteSent.
func (e *Endpoint) noteRecv(n int) {
	if e.m == nil {
		return
	}
	e.sampleTick++
	if e.sampleTick&latencySampleMask == 0 {
		e.rec.Record(telemetry.EvDequeue, e.ch.tag, uint64(n))
	}
}

// traceSendStart opens a send span when the owning invocation carries a
// sampled trace. ctx is the context stamped onto outbound nodes — its
// Span is the freshly allocated send span, which the receive side
// parents its spans to; parent is the scope's current span, which the
// send span itself hangs off. Zero results mean untraced; the
// armed-but-untraced cost is one atomic load.
func (e *Endpoint) traceSendStart() (ctx trace.Ctx, parent uint32, start time.Time) {
	if e.tr == nil {
		return trace.Ctx{}, 0, time.Time{}
	}
	c := e.scope.Active()
	if !c.Traced() {
		return trace.Ctx{}, 0, time.Time{}
	}
	return trace.Ctx{TraceID: c.TraceID, Span: e.tr.NextSpan()}, c.Span, time.Now()
}

// traceSendEnd records the send span opened by traceSendStart, covering
// n enqueued messages (batch sends share one span).
func (e *Endpoint) traceSendEnd(ctx trace.Ctx, parent uint32, start time.Time) {
	if start.IsZero() {
		return
	}
	e.tr.Record(e.owner, trace.Span{
		TraceID: ctx.TraceID, ID: ctx.Span, Parent: parent,
		Kind: trace.KindSend, Ref: e.ch.tag,
		Start: start.UnixNano(), Dur: int64(time.Since(start)),
	})
}

// traceSeal records a seal span under the send span.
func (e *Endpoint) traceSeal(ctx trace.Ctx, start time.Time) {
	if start.IsZero() || !ctx.Traced() {
		return
	}
	e.tr.Record(e.owner, trace.Span{
		TraceID: ctx.TraceID, ID: e.tr.NextSpan(), Parent: ctx.Span,
		Kind: trace.KindSeal, Ref: e.ch.tag,
		Start: start.UnixNano(), Dur: int64(time.Since(start)),
	})
}

// stampTrace writes an outbound node's trace header before enqueue.
// Untraced nodes are explicitly cleared: pool nodes are recycled, and a
// stale header from an earlier traced message must not resurrect.
func stampTrace(node *mem.Node, ctx trace.Ctx, enqNS int64) {
	if ctx.Traced() {
		node.SetTrace(ctx.TraceID, ctx.Span, enqNS)
	} else {
		node.ClearTrace()
	}
}

// traceRecvPlain adopts a plaintext inbound message's trace context and
// records the mailbox-dwell span (enqueue timestamp to now). Called
// with e.tr != nil and ctx traced.
func (e *Endpoint) traceRecvPlain(ctx trace.Ctx, enq int64) {
	now := time.Now().UnixNano()
	if enq > 0 && enq <= now {
		e.tr.Record(e.owner, trace.Span{
			TraceID: ctx.TraceID, ID: e.tr.NextSpan(), Parent: ctx.Span,
			Kind: trace.KindDwell, Ref: e.ch.tag,
			Start: enq, Dur: now - enq,
		})
	}
	e.scope.Adopt(ctx)
}

// traceRecvSealed adopts a sealed inbound message's authenticated trace
// context (from the stripped trailer) and records the enclave-boundary
// spans: a crossing span covering the message's whole transit (enqueue
// to open complete), with the mailbox dwell and the open as children.
// The crossing is attributed to the message rather than the worker
// because a worker whose eactors share one enclave never re-crosses
// (the paper's central optimisation) — the boundary the message paid is
// the one worth seeing. enq comes from the node's untrusted header, so
// it bounds measurement only, never causality.
func (e *Endpoint) traceRecvSealed(ctx trace.Ctx, enq int64, openStart time.Time) {
	now := time.Now()
	nowNS := now.UnixNano()
	crossing := e.tr.NextSpan()
	if enq > 0 && enq <= nowNS {
		e.tr.Record(e.owner, trace.Span{
			TraceID: ctx.TraceID, ID: crossing, Parent: ctx.Span,
			Kind: trace.KindCrossing, Ref: e.ch.tag,
			Start: enq, Dur: nowNS - enq,
		})
		dwellEnd := nowNS
		if !openStart.IsZero() {
			dwellEnd = openStart.UnixNano()
		}
		if dwellEnd >= enq {
			e.tr.Record(e.owner, trace.Span{
				TraceID: ctx.TraceID, ID: e.tr.NextSpan(), Parent: crossing,
				Kind: trace.KindDwell, Ref: e.ch.tag,
				Start: enq, Dur: dwellEnd - enq,
			})
		}
	}
	if !openStart.IsZero() {
		e.tr.Record(e.owner, trace.Span{
			TraceID: ctx.TraceID, ID: e.tr.NextSpan(), Parent: crossing,
			Kind: trace.KindOpen, Ref: e.ch.tag,
			Start: openStart.UnixNano(), Dur: int64(now.Sub(openStart)),
		})
	}
	e.scope.Adopt(ctx)
}

// injectSend consults the fault injector at the send site: SendFail
// rejects the send as an organic full-mailbox failure, Delay stalls it,
// DoorbellDrop and SealCorrupt are returned for the caller's send path
// to realise. The zero action means no fault (including when no
// injector is armed).
func (e *Endpoint) injectSend() faults.Action {
	if e.inj == nil {
		return faults.Action{}
	}
	act := e.inj.At(faults.SiteSend)
	if act.Class == faults.Delay {
		time.Sleep(act.Delay)
	}
	return act
}

// injectSealCorrupt reports whether the channel-seal schedule corrupts
// this payload (encrypted channels only; shares SiteSeal with
// sgx.Enclave.Seal so one schedule covers both seal layers).
func (e *Endpoint) injectSealCorrupt() bool {
	if e.inj == nil || e.cipher == nil {
		return false
	}
	return e.inj.At(faults.SiteSeal).Class == faults.SealCorrupt
}

// injectRecv consults the fault injector after a successful dequeue
// (polls on an empty mailbox do not consume schedule slots).
func (e *Endpoint) injectRecv() {
	if e.inj == nil {
		return
	}
	if act := e.inj.At(faults.SiteRecv); act.Class == faults.Delay {
		time.Sleep(act.Delay)
	}
}

// corruptSealed flips one ciphertext bit so the peer's authenticated
// open rejects the message — the injected stand-in for a tampering
// untrusted runtime (the paper's adversary model, Section 2.3).
func corruptSealed(blob []byte) {
	if len(blob) > 0 {
		blob[len(blob)/2] ^= 0x80
	}
}

// wakePeer rings the consumer worker's doorbell unless the fault
// schedule dropped it; a dropped doorbell is recovered by the worker's
// idle-sleep poll, trading latency for liveness.
func (e *Endpoint) wakePeer(act faults.Action) {
	if act.Class == faults.DoorbellDrop {
		return
	}
	if e.peerWake != nil {
		e.peerWake()
	}
}

// Send transmits a copy of payload to the peer eactor: it takes a node
// from the pool, fills (and on encrypted channels seals) the payload,
// and enqueues it — the paper's send path (Figure 3).
func (e *Endpoint) Send(payload []byte) error {
	if len(payload) > e.MaxPayload() {
		return fmt.Errorf("%w: %d > %d", ErrPayloadTooLarge, len(payload), e.MaxPayload())
	}
	act := e.injectSend()
	if act.Class == faults.SendFail {
		e.sendFailures.Add(1)
		return ErrMailboxFull
	}
	if e.sw != nil {
		return e.sendPayloadSwitchless(payload, act)
	}
	start := e.maybeSample()
	tctx, tparent, tstart := e.traceSendStart()
	node := e.pool.Get()
	if node == nil {
		e.sendFailures.Add(1)
		return ErrPoolEmpty
	}
	if e.cipher != nil {
		plain := payload
		if e.tr != nil {
			// Armed encrypted channels always carry the 16-byte trailer
			// inside the sealed frame (traced or not), so framing stays
			// deterministic and the context is authenticated.
			e.scratch = trace.AppendHeader(append(e.scratch[:0], payload...), tctx)
			plain = e.scratch
		}
		pscale := e.pcSample()
		var sealStart time.Time
		if !start.IsZero() || !tstart.IsZero() || pscale > 0 {
			sealStart = time.Now()
		}
		blob := e.cipher.Seal(node.Buf()[:0], plain, nil)
		if !sealStart.IsZero() {
			if !start.IsZero() {
				e.m.sealNs.ObserveSince(sealStart)
			}
			if pscale > 0 {
				e.pc.SealNs.Add(uint64(time.Since(sealStart)) * uint64(pscale))
			}
			e.traceSeal(tctx, sealStart)
		}
		if e.pc != nil {
			e.pc.SealOps.Add(1)
			e.pc.SealBytes.Add(uint64(len(payload)))
		}
		if e.tr != nil {
			e.noteScratchUse(len(plain))
		}
		if e.injectSealCorrupt() {
			corruptSealed(blob)
		}
		if err := node.SetLen(len(blob)); err != nil {
			_ = e.pool.Put(node)
			return err
		}
	} else if err := node.SetPayload(payload); err != nil {
		_ = e.pool.Put(node)
		return err
	}
	if e.tr != nil {
		var enq int64
		if tctx.Traced() {
			enq = time.Now().UnixNano()
		}
		stampTrace(node, tctx, enq)
	}
	if !e.out.Enqueue(node) {
		_ = e.pool.Put(node)
		e.sendFailures.Add(1)
		return ErrMailboxFull
	}
	e.sent.Add(1)
	e.pcSent(1, len(payload))
	e.noteSent(1, start)
	e.traceSendEnd(tctx, tparent, tstart)
	e.wakePeer(act)
	return nil
}

// retryBackoff bounds in the SendRetry family: the wait starts at
// retryBaseBackoff, doubles per attempt and is capped at
// retryMaxBackoff, so a retrying sender neither spins on a full mbox
// nor sleeps past a consumer that drained it.
const (
	retryBaseBackoff = 10 * time.Microsecond
	retryMaxBackoff  = time.Millisecond
)

// SendRetry is Send with bounded persistence: transient failures
// (ErrMailboxFull, ErrPoolEmpty) are retried with exponential backoff
// until the deadline, at which point the last typed error is returned.
// Non-transient errors return immediately. It is meant for control
// messages whose loss would wedge a protocol (connection handoffs, SMC
// rounds) — bulk data paths should stay on Send and shed load instead.
//
// SendRetry blocks the calling goroutine, so a non-blocking eactor body
// should only use it with short deadlines.
func (e *Endpoint) SendRetry(payload []byte, deadline time.Time) error {
	backoff := retryBaseBackoff
	for {
		err := e.Send(payload)
		if err == nil || (!errors.Is(err, ErrMailboxFull) && !errors.Is(err, ErrPoolEmpty)) {
			return err
		}
		if !time.Now().Before(deadline) {
			return err
		}
		time.Sleep(backoff)
		if backoff < retryMaxBackoff {
			backoff *= 2
		}
	}
}

// SendNodeRetry is SendNode with the SendRetry persistence contract.
// Node ownership transfers only on success; on error (including a
// deadline expiry) the caller still owns the node.
func (e *Endpoint) SendNodeRetry(node *mem.Node, deadline time.Time) error {
	backoff := retryBaseBackoff
	for {
		err := e.SendNode(node)
		if err == nil || (!errors.Is(err, ErrMailboxFull) && !errors.Is(err, ErrPoolEmpty)) {
			return err
		}
		if !time.Now().Before(deadline) {
			return err
		}
		time.Sleep(backoff)
		if backoff < retryMaxBackoff {
			backoff *= 2
		}
	}
}

// SendNode transmits a node previously obtained from the pool without
// copying the payload. On encrypted channels the payload is sealed in
// place (one staging copy). Ownership of the node transfers on success;
// on error the caller still owns it.
func (e *Endpoint) SendNode(node *mem.Node) error {
	if node == nil {
		return errors.New("core: SendNode(nil)")
	}
	act := e.injectSend()
	if act.Class == faults.SendFail {
		e.sendFailures.Add(1)
		return ErrMailboxFull
	}
	if e.sw != nil {
		if node.Len() > e.MaxPayload() {
			return fmt.Errorf("%w: %d > %d", ErrPayloadTooLarge, node.Len(), e.MaxPayload())
		}
		start := e.maybeSample()
		tctx, tparent, tstart := e.traceSendStart()
		return e.sendSwitchless(node, act, start, tctx, tparent, tstart)
	}
	start := e.maybeSample()
	tctx, tparent, tstart := e.traceSendStart()
	plen := node.Len() // plaintext size, before an in-place seal overwrites it
	if e.cipher != nil {
		if node.Len() > e.MaxPayload() {
			return fmt.Errorf("%w: %d > %d", ErrPayloadTooLarge, node.Len(), e.MaxPayload())
		}
		pscale := e.pcSample()
		var sealStart time.Time
		if !start.IsZero() || !tstart.IsZero() || pscale > 0 {
			sealStart = time.Now()
		}
		e.scratch = append(e.scratch[:0], node.Payload()...)
		if e.tr != nil {
			e.scratch = trace.AppendHeader(e.scratch, tctx)
		}
		blob := e.cipher.Seal(node.Buf()[:0], e.scratch, nil)
		if !sealStart.IsZero() {
			if !start.IsZero() {
				e.m.sealNs.ObserveSince(sealStart)
			}
			if pscale > 0 {
				e.pc.SealNs.Add(uint64(time.Since(sealStart)) * uint64(pscale))
			}
			e.traceSeal(tctx, sealStart)
		}
		if e.pc != nil {
			e.pc.SealOps.Add(1)
			e.pc.SealBytes.Add(uint64(plen))
		}
		if e.injectSealCorrupt() {
			corruptSealed(blob)
		}
		e.noteScratchUse(len(e.scratch))
		if err := node.SetLen(len(blob)); err != nil {
			return err
		}
	}
	if e.tr != nil {
		var enq int64
		if tctx.Traced() {
			enq = time.Now().UnixNano()
		}
		stampTrace(node, tctx, enq)
	}
	if !e.out.Enqueue(node) {
		e.sendFailures.Add(1)
		return ErrMailboxFull
	}
	e.sent.Add(1)
	e.pcSent(1, plen)
	e.noteSent(1, start)
	e.traceSendEnd(tctx, tparent, tstart)
	e.wakePeer(act)
	return nil
}

// nodeSlots returns the endpoint's batch staging array, grown to n.
func (e *Endpoint) nodeSlots(n int) []*mem.Node {
	if cap(e.batch) < n {
		e.batch = make([]*mem.Node, n)
	}
	return e.batch[:n]
}

// noteScratchUse applies the scratch retention policy after a path that
// staged (at most) n bytes in e.scratch.
func (e *Endpoint) noteScratchUse(n int) {
	if cap(e.scratch) <= scratchSoftCap || n > scratchSoftCap {
		e.scratchIdle = 0
		return
	}
	e.scratchIdle++
	if e.scratchIdle >= scratchShrinkAfter {
		e.scratch = nil
		e.scratchIdle = 0
	}
}

// SendBatch transmits copies of the payloads to the peer eactor as one
// burst: one pool interaction for all nodes, one enqueue-cursor CAS on
// the mbox, the traffic counter bumped once, and the peer doorbell rung
// once — the amortisation that makes the batch path cheaper than N
// Sends. FIFO order follows slice order.
//
// It returns how many payloads were sent. A short count comes with
// ErrPoolEmpty or ErrMailboxFull; the caller retries payloads[n:]
// on a later invocation. On encrypted channels a message sealed but
// then rejected by a full mbox burns a nonce counter; the replay check
// only requires monotonic counters, so gaps are harmless.
func (e *Endpoint) SendBatch(payloads [][]byte) (int, error) {
	if len(payloads) == 0 {
		return 0, nil
	}
	maxPayload := e.MaxPayload()
	for _, p := range payloads {
		if len(p) > maxPayload {
			return 0, fmt.Errorf("%w: %d > %d", ErrPayloadTooLarge, len(p), maxPayload)
		}
	}
	act := e.injectSend() // one schedule slot per batch operation
	if act.Class == faults.SendFail {
		e.sendFailures.Add(1)
		return 0, ErrMailboxFull
	}
	if e.sw != nil {
		// Ring posts are already the amortised path — the proxy batches
		// the whole burst into coalesced segments behind us.
		for i, p := range payloads {
			if err := e.sendPayloadSwitchless(p, act); err != nil {
				return i, err
			}
		}
		return len(payloads), nil
	}
	start := e.maybeSample()
	tctx, tparent, tstart := e.traceSendStart()
	nodes := e.nodeSlots(len(payloads))
	got := e.pool.GetBatch(nodes)
	if got == 0 {
		e.sendFailures.Add(1)
		return 0, ErrPoolEmpty
	}
	var pscale uint32
	if e.cipher != nil {
		pscale = e.pcSample()
	}
	var sealStart time.Time
	if (!start.IsZero() || !tstart.IsZero() || pscale > 0) && e.cipher != nil {
		sealStart = time.Now()
	}
	var enq int64
	if tctx.Traced() {
		// One timestamp for the burst: every node of a traced batch
		// shares the send span and the enqueue time.
		enq = time.Now().UnixNano()
	}
	maxStage := 0
	for i := 0; i < got; i++ {
		node := nodes[i]
		if e.cipher != nil {
			plain := payloads[i]
			if e.tr != nil {
				e.scratch = trace.AppendHeader(append(e.scratch[:0], payloads[i]...), tctx)
				plain = e.scratch
				if len(plain) > maxStage {
					maxStage = len(plain)
				}
			}
			blob := e.cipher.Seal(node.Buf()[:0], plain, nil)
			if e.injectSealCorrupt() {
				corruptSealed(blob)
			}
			_ = node.SetLen(len(blob)) // bounded by the MaxPayload check
		} else {
			_ = node.SetPayload(payloads[i])
		}
		if e.tr != nil {
			stampTrace(node, tctx, enq)
		}
	}
	if e.tr != nil && e.cipher != nil {
		e.noteScratchUse(maxStage)
	}
	if !sealStart.IsZero() {
		if !start.IsZero() {
			// One timed pass over the burst, attributed per payload.
			e.m.sealNs.Observe(uint64(time.Since(sealStart)) / uint64(got))
		}
		if pscale > 0 {
			// One sampled batch stands for pscale batches of this size.
			e.pc.SealNs.Add(uint64(time.Since(sealStart)) * uint64(pscale))
		}
		e.traceSeal(tctx, sealStart)
	}
	if e.pc != nil && e.cipher != nil {
		sealBytes := 0
		for i := 0; i < got; i++ {
			sealBytes += len(payloads[i])
		}
		e.pc.SealOps.Add(uint64(got))
		e.pc.SealBytes.Add(uint64(sealBytes))
	}
	sent := e.out.EnqueueBatch(nodes[:got])
	if sent < got {
		_ = e.pool.PutBatch(nodes[sent:got])
	}
	if sent > 0 {
		e.sent.Add(uint64(sent))
		if e.pc != nil {
			sentBytes := 0
			for i := 0; i < sent; i++ {
				sentBytes += len(payloads[i])
			}
			e.pcSent(sent, sentBytes)
		}
		e.noteSent(sent, start)
		if e.m != nil {
			e.m.sendBatch.Observe(uint64(sent))
		}
		e.traceSendEnd(tctx, tparent, tstart)
		e.wakePeer(act)
	}
	if sent < len(payloads) {
		e.sendFailures.Add(1)
		if sent == got && got < len(payloads) {
			return sent, ErrPoolEmpty
		}
		return sent, ErrMailboxFull
	}
	return sent, nil
}

// RecvBatch drains up to min(len(bufs), len(lens)) pending messages in
// one pass: a single dequeue-cursor CAS, one scratch-buffer sweep for
// decryption, one pool interaction to release the nodes, and the
// counter bumped once. Message i lands in bufs[i] with its length in
// lens[i]; FIFO order and the encrypted replay check (checkSeq) are
// preserved across batch boundaries.
//
// It returns the number of messages delivered. As with Recv, a message
// that fails authentication, the replay check or the buffer-size check
// is consumed and dropped; subsequent messages of the batch are still
// delivered (compacted towards the front of bufs) and the first error
// is returned.
func (e *Endpoint) RecvBatch(bufs [][]byte, lens []int) (int, error) {
	if e.swRx != nil {
		return e.recvBatchSwitchless(bufs, lens)
	}
	want := len(bufs)
	if len(lens) < want {
		want = len(lens)
	}
	if want == 0 {
		return 0, nil
	}
	nodes := e.nodeSlots(want)
	got := e.in.DequeueBatch(nodes)
	if got == 0 {
		return 0, nil
	}
	e.injectRecv()
	e.received.Add(uint64(got))
	e.noteRecv(got)
	if e.m != nil {
		e.m.recvBatch.Observe(uint64(got))
	}
	// Batch trace hint: one pass over the untrusted node headers decides
	// whether the burst carries a sampled message (and so whether the
	// open sweep needs a timestamp).
	batchTraced := false
	if e.tr != nil && e.cipher != nil {
		for i := 0; i < got; i++ {
			if tid, _, _ := nodes[i].Trace(); tid != 0 {
				batchTraced = true
				break
			}
		}
	}
	var pscale uint32
	var sampled, openStart time.Time
	if e.cipher != nil {
		pscale = e.pcSample()
		sampled = e.maybeSample()
		openStart = sampled
		if (batchTraced || pscale > 0) && openStart.IsZero() {
			openStart = time.Now()
		}
	}
	delivered, maxUse, recvBytes, openBytes := 0, 0, 0, 0
	var lastCtx trace.Ctx
	var lastEnq int64
	var firstErr error
	fail := func(err error) {
		if firstErr == nil {
			firstErr = err
		}
	}
	for i := 0; i < got; i++ {
		payload := nodes[i].Payload()
		if e.cipher != nil {
			plain, err := e.cipher.Open(e.scratch[:0], payload, nil)
			if err != nil {
				fail(err)
				continue
			}
			e.scratch = plain
			openBytes += len(plain)
			if len(plain) > maxUse {
				maxUse = len(plain)
			}
			if err := e.checkSeq(payload); err != nil {
				fail(err)
				continue
			}
			payload = plain
			if e.tr != nil {
				var tctx trace.Ctx
				payload, tctx = trace.SplitTrailer(payload)
				if tctx.Traced() {
					lastCtx = tctx
					_, _, lastEnq = nodes[i].Trace()
				}
			}
		} else if e.tr != nil {
			if tid, span, enq := nodes[i].Trace(); tid != 0 {
				lastCtx = trace.Ctx{TraceID: tid, Span: span}
				lastEnq = enq
			}
		}
		if len(payload) > len(bufs[delivered]) {
			fail(fmt.Errorf("%w: need %d, have %d", ErrShortBuffer, len(payload), len(bufs[delivered])))
			continue
		}
		lens[delivered] = copy(bufs[delivered], payload)
		recvBytes += lens[delivered]
		delivered++
	}
	if !sampled.IsZero() {
		// One timed sweep over the burst, attributed per message.
		e.m.openNs.Observe(uint64(time.Since(sampled)) / uint64(got))
	}
	if pscale > 0 {
		e.pc.OpenNs.Add(uint64(time.Since(openStart)) * uint64(pscale))
	}
	if e.pc != nil && e.cipher != nil {
		e.pc.OpenOps.Add(uint64(got))
		e.pc.OpenBytes.Add(uint64(openBytes))
	}
	e.pcRecv(delivered, recvBytes)
	if lastCtx.Traced() {
		// Batch granularity: one dwell (and crossing/open, when sealed)
		// for the burst, measured on its most recent traced message and
		// adopted as the invocation's context. Exact for the sampled
		// single-message case; an approximation bounded by the burst for
		// saturated pipelines.
		if e.cipher != nil {
			e.traceRecvSealed(lastCtx, lastEnq, openStart)
		} else {
			e.traceRecvPlain(lastCtx, lastEnq)
		}
	}
	if err := e.pool.PutBatch(nodes[:got]); err != nil {
		fail(err)
	}
	if e.cipher != nil {
		e.noteScratchUse(maxUse)
	}
	return delivered, firstErr
}

// Recv polls for a message and copies it into buf, returning its length.
// ok is false when no message is pending. On encrypted channels the
// payload is authenticated and decrypted before the copy.
func (e *Endpoint) Recv(buf []byte) (n int, ok bool, err error) {
	if e.swRx != nil {
		return e.recvSwitchless(buf)
	}
	node, ok := e.in.Dequeue()
	if !ok {
		return 0, false, nil
	}
	e.injectRecv()
	e.received.Add(1)
	e.noteRecv(1)
	defer func() {
		if putErr := e.pool.Put(node); putErr != nil && err == nil {
			err = putErr
		}
	}()
	payload := node.Payload()
	if e.cipher != nil {
		// The node's untrusted header hints whether this message is
		// traced, so armed-but-untraced receives skip the extra clock.
		hintTraced := false
		var enq int64
		if e.tr != nil {
			var tid uint64
			tid, _, enq = node.Trace()
			hintTraced = tid != 0
		}
		pscale := e.pcSample()
		sampled := e.maybeSample()
		openStart := sampled
		if (hintTraced || pscale > 0) && openStart.IsZero() {
			openStart = time.Now()
		}
		plain, openErr := e.cipher.Open(e.scratch[:0], payload, nil)
		if openErr != nil {
			return 0, true, openErr
		}
		if !sampled.IsZero() {
			e.m.openNs.ObserveSince(sampled)
		}
		if pscale > 0 {
			e.pc.OpenNs.Add(uint64(time.Since(openStart)) * uint64(pscale))
		}
		if e.pc != nil {
			e.pc.OpenOps.Add(1)
			e.pc.OpenBytes.Add(uint64(len(plain)))
		}
		e.scratch = plain
		e.noteScratchUse(len(plain))
		if seqErr := e.checkSeq(payload); seqErr != nil {
			return 0, true, seqErr
		}
		payload = plain
		if e.tr != nil {
			// Armed senders always appended a trailer; the authenticated
			// context inside it — not the untrusted node header — decides
			// whether this hop is traced.
			var tctx trace.Ctx
			payload, tctx = trace.SplitTrailer(payload)
			if tctx.Traced() {
				e.traceRecvSealed(tctx, enq, openStart)
			}
		}
	} else if e.tr != nil {
		if tid, span, enq := node.Trace(); tid != 0 {
			e.traceRecvPlain(trace.Ctx{TraceID: tid, Span: span}, enq)
		}
	}
	if len(payload) > len(buf) {
		return 0, true, fmt.Errorf("%w: need %d, have %d", ErrShortBuffer, len(payload), len(buf))
	}
	e.pcRecv(1, len(payload))
	return copy(buf, payload), true, nil
}

// RecvNode polls for a message and returns the node itself (decrypted in
// place on encrypted channels). The caller owns the node and must return
// it with Release (or forward it with SendNode on a plaintext channel).
func (e *Endpoint) RecvNode() (*mem.Node, bool, error) {
	if e.swRx != nil {
		node, ok := e.recvSwitchlessNode()
		return node, ok, nil
	}
	node, ok := e.in.Dequeue()
	if !ok {
		return nil, false, nil
	}
	e.injectRecv()
	e.received.Add(1)
	e.noteRecv(1)
	if e.cipher != nil {
		hintTraced := false
		var enq int64
		if e.tr != nil {
			var tid uint64
			tid, _, enq = node.Trace()
			hintTraced = tid != 0
		}
		pscale := e.pcSample()
		sampled := e.maybeSample()
		openStart := sampled
		if (hintTraced || pscale > 0) && openStart.IsZero() {
			openStart = time.Now()
		}
		plain, err := e.cipher.Open(e.scratch[:0], node.Payload(), nil)
		if err != nil {
			_ = e.pool.Put(node)
			return nil, true, err
		}
		if !sampled.IsZero() {
			e.m.openNs.ObserveSince(sampled)
		}
		if pscale > 0 {
			e.pc.OpenNs.Add(uint64(time.Since(openStart)) * uint64(pscale))
		}
		if e.pc != nil {
			e.pc.OpenOps.Add(1)
			e.pc.OpenBytes.Add(uint64(len(plain)))
		}
		if seqErr := e.checkSeq(node.Payload()); seqErr != nil {
			_ = e.pool.Put(node)
			return nil, true, seqErr
		}
		if e.tr != nil {
			var tctx trace.Ctx
			plain, tctx = trace.SplitTrailer(plain)
			if tctx.Traced() {
				e.traceRecvSealed(tctx, enq, openStart)
			}
		}
		e.scratch = plain
		e.noteScratchUse(len(plain))
		copy(node.Buf(), plain)
		if err := node.SetLen(len(plain)); err != nil {
			_ = e.pool.Put(node)
			return nil, true, err
		}
	} else if e.tr != nil {
		if tid, span, enq := node.Trace(); tid != 0 {
			e.traceRecvPlain(trace.Ctx{TraceID: tid, Span: span}, enq)
		}
	}
	e.pcRecv(1, node.Len())
	return node, true, nil
}

// checkSeq enforces strictly increasing sender counters on an
// authenticated blob (the counter is the tail of the explicit nonce).
func (e *Endpoint) checkSeq(blob []byte) error {
	seq := ecrypto.BlobCounter(blob)
	if seq <= e.lastSeq {
		return fmt.Errorf("%w: counter %d after %d", ErrReplay, seq, e.lastSeq)
	}
	e.lastSeq = seq
	return nil
}

// Release returns a received node to the pool.
func (e *Endpoint) Release(node *mem.Node) {
	if node != nil {
		_ = e.pool.Put(node)
	}
}

// Pending returns the approximate number of queued inbound messages.
// On switchless channels that is the opened records waiting in the rx
// ring plus (an underestimate of) the segments still sealed in transit.
func (e *Endpoint) Pending() int {
	if e.swRx != nil {
		return e.swRx.rx.Len() + e.swRx.sealed.Len()
	}
	return e.in.Len()
}
