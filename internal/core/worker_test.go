package core

import (
	"sync/atomic"
	"testing"
	"time"
)

// TestDoorbellWakesIdleWorker checks that an idle worker reacts to work
// well before its idle-sleep backstop elapses.
func TestDoorbellWakesIdleWorker(t *testing.T) {
	processed := make(chan time.Time, 1)
	cfg := Config{
		Workers:   []WorkerSpec{{}, {}},
		IdleSleep: time.Second, // long backstop: only the doorbell can be fast
		Actors: []Spec{
			{Name: "producer", Worker: 0, Body: func(*Self) {}},
			{
				Name: "consumer", Worker: 1,
				Body: func(self *Self) {
					ch := self.MustChannel("link")
					buf := make([]byte, 16)
					if _, ok, _ := ch.Recv(buf); ok {
						select {
						case processed <- time.Now():
						default:
						}
						self.Progress()
					}
				},
			},
		},
		Channels: []ChannelSpec{{Name: "link", A: "producer", B: "consumer"}},
	}
	rt, err := NewRuntime(zeroPlatform(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()

	// Let the consumer worker go fully idle.
	time.Sleep(50 * time.Millisecond)

	producerEp := rt.actors["producer"].endpoints["link"]
	sent := time.Now()
	if err := producerEp.Send([]byte("wake up")); err != nil {
		t.Fatal(err)
	}
	select {
	case at := <-processed:
		if latency := at.Sub(sent); latency > 200*time.Millisecond {
			t.Fatalf("doorbell latency %v (idle sleep is 1s — bell did not ring)", latency)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("message never processed")
	}
}

// TestWakerFromForeignGoroutine checks Self.Waker is safe and effective
// from outside the runtime.
func TestWakerFromForeignGoroutine(t *testing.T) {
	var polls atomic.Int64
	var waker func()
	ready := make(chan struct{})
	cfg := Config{
		Workers:   []WorkerSpec{{}},
		IdleSleep: time.Second,
		Actors: []Spec{{
			Name: "sleepy", Worker: 0,
			Init: func(self *Self) error {
				waker = self.Waker()
				close(ready)
				return nil
			},
			Body: func(*Self) { polls.Add(1) },
		}},
	}
	rt, err := NewRuntime(zeroPlatform(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()
	<-ready

	// Wait for the worker to go idle, then watch the poll counter.
	time.Sleep(100 * time.Millisecond)
	before := polls.Load()
	waker()
	deadline := time.Now().Add(300 * time.Millisecond)
	for polls.Load() == before {
		if time.Now().After(deadline) {
			t.Fatal("waker did not trigger a poll round within 300ms")
		}
	}
}

// TestWorkerAccessors covers the introspection surface.
func TestWorkerAccessors(t *testing.T) {
	cfg := Config{
		Workers: []WorkerSpec{{CPUs: []int{0}}},
		Actors: []Spec{
			{Name: "a", Worker: 0, Body: func(*Self) {}},
			{Name: "b", Worker: 0, Body: func(*Self) {}},
		},
	}
	rt, err := NewRuntime(zeroPlatform(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()
	workers := rt.Workers()
	if len(workers) != 1 || workers[0].ID() != 0 {
		t.Fatalf("workers = %v", workers)
	}
	names := workers[0].Actors()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("actor order = %v", names)
	}
	if workers[0].Context() == nil {
		t.Fatal("nil worker context")
	}
}

// TestEncryptedChannelTamper injects wire corruption: the receiver must
// surface an authentication error, not plaintext garbage — the paper's
// malicious-runtime protection.
func TestEncryptedChannelTamper(t *testing.T) {
	a, b, _ := buildPair(t, true, 8, 16, 128)
	if err := a.Send([]byte("sensitive")); err != nil {
		t.Fatal(err)
	}
	node, ok := b.in.Dequeue()
	if !ok {
		t.Fatal("no node in flight")
	}
	node.Buf()[node.Len()-1] ^= 0x80 // the hostile runtime flips a bit
	if !b.in.Enqueue(node) {
		t.Fatal("re-enqueue failed")
	}
	_, ok, err := b.Recv(make([]byte, 128))
	if !ok {
		t.Fatal("message vanished")
	}
	if err == nil {
		t.Fatal("tampered ciphertext accepted")
	}
	// The node must have returned to the pool despite the error.
	if free := b.pool.Free(); free != 16 {
		t.Fatalf("pool Free = %d after tamper, want 16", free)
	}
}

// TestRecvNodeTamper covers the zero-copy receive path under tampering.
func TestRecvNodeTamper(t *testing.T) {
	a, b, _ := buildPair(t, true, 8, 16, 128)
	if err := a.Send([]byte("payload")); err != nil {
		t.Fatal(err)
	}
	node, _ := b.in.Dequeue()
	node.Buf()[0] ^= 1
	b.in.Enqueue(node)
	got, ok, err := b.RecvNode()
	if !ok || err == nil || got != nil {
		t.Fatalf("tampered RecvNode = %v ok=%v err=%v", got, ok, err)
	}
}

// TestStopRuntimeFromBody checks the cooperative-shutdown path used by
// every benchmark.
func TestStopRuntimeFromBody(t *testing.T) {
	cfg := Config{
		Workers: []WorkerSpec{{}},
		Actors: []Spec{{
			Name: "quitter", Worker: 0,
			Body: func(self *Self) { self.StopRuntime() },
		}},
	}
	rt, err := NewRuntime(zeroPlatform(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		rt.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("StopRuntime did not stop the runtime")
	}
	rt.Stop()
}

// TestChannelUnknownName covers the error path of Self.Channel.
func TestChannelUnknownName(t *testing.T) {
	gotErr := make(chan error, 1)
	cfg := Config{
		Workers: []WorkerSpec{{}},
		Actors: []Spec{{
			Name: "loner", Worker: 0,
			Init: func(self *Self) error {
				_, err := self.Channel("missing")
				gotErr <- err
				return nil
			},
			Body: func(*Self) {},
		}},
	}
	rt, err := NewRuntime(zeroPlatform(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()
	if err := <-gotErr; err == nil {
		t.Fatal("unknown channel lookup succeeded")
	}
}
