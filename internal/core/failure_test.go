package core

import (
	"sync/atomic"
	"testing"
	"time"
)

// TestPanicIsolation is the compartmentalisation property (Section 2.3
// of the paper): a crashing eactor is parked; eactors on the same and
// other workers keep running.
func TestPanicIsolation(t *testing.T) {
	var siblingRuns, neighbourRuns atomic.Int64
	var crashes atomic.Int64
	cfg := Config{
		Workers: []WorkerSpec{{}, {}},
		Actors: []Spec{
			{
				Name: "crashy", Worker: 0,
				Body: func(self *Self) {
					crashes.Add(1)
					panic("injected bug")
				},
			},
			{
				Name: "sibling", Worker: 0,
				Body: func(self *Self) {
					siblingRuns.Add(1)
					self.Progress() // keep the worker hot for the test
				},
			},
			{
				Name: "neighbour", Worker: 1,
				Body: func(self *Self) {
					neighbourRuns.Add(1)
					self.Progress()
				},
			},
		},
	}
	rt, err := NewRuntime(zeroPlatform(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()

	// The sibling shares crashy's worker: its progress past the crash
	// proves the panic was contained on that worker; the neighbour
	// proves other workers were untouched.
	deadline := time.Now().Add(10 * time.Second)
	for siblingRuns.Load() < 1000 || neighbourRuns.Load() < 100 {
		if time.Now().After(deadline) {
			t.Fatalf("healthy actors starved: sibling=%d neighbour=%d",
				siblingRuns.Load(), neighbourRuns.Load())
		}
		time.Sleep(time.Millisecond)
	}

	if got := crashes.Load(); got != 1 {
		t.Fatalf("crashy body ran %d times, want exactly 1 (must be parked)", got)
	}
	failed := rt.FailedActors()
	if len(failed) != 1 || failed[0] != "crashy" {
		t.Fatalf("FailedActors = %v", failed)
	}
	msg, ok := rt.ActorFailure("crashy")
	if !ok || msg != "injected bug" {
		t.Fatalf("ActorFailure = %q, %v", msg, ok)
	}
	if _, ok := rt.ActorFailure("sibling"); ok {
		t.Fatal("healthy actor reported as failed")
	}
	if _, ok := rt.ActorFailure("nobody"); ok {
		t.Fatal("unknown actor reported as failed")
	}
}

// TestPanicInEnclavedActor checks containment across trust domains: a
// compromised enclave's actor dies, its enclave-sharing peer survives.
func TestPanicInEnclavedActor(t *testing.T) {
	var survivorRuns atomic.Int64
	first := true
	cfg := Config{
		Enclaves: []EnclaveSpec{{Name: "shared"}},
		Workers:  []WorkerSpec{{}},
		Actors: []Spec{
			{
				Name: "victim", Enclave: "shared", Worker: 0,
				Body: func(self *Self) {
					if first {
						first = false
						panic("exploit")
					}
				},
			},
			{
				Name: "survivor", Enclave: "shared", Worker: 0,
				Body: func(self *Self) {
					survivorRuns.Add(1)
					self.Progress()
				},
			},
		},
	}
	rt, err := NewRuntime(zeroPlatform(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()
	deadline := time.Now().Add(5 * time.Second)
	for survivorRuns.Load() < 100 {
		if time.Now().After(deadline) {
			t.Fatal("survivor starved after co-located panic")
		}
		time.Sleep(time.Millisecond)
	}
}
