package core

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"github.com/eactors/eactors-go/internal/ecrypto"
)

// buildPair constructs a runtime with two connected actors and returns
// their endpoints without starting workers, for direct channel testing.
func buildPair(t testing.TB, encrypted bool, capacity, poolNodes, payload int) (a, b *Endpoint, rt *Runtime) {
	t.Helper()
	cfg := Config{
		Workers:     []WorkerSpec{{}},
		PoolNodes:   poolNodes,
		NodePayload: payload,
		Actors: []Spec{
			{Name: "a", Worker: 0, Body: func(*Self) {}},
			{Name: "b", Worker: 0, Body: func(*Self) {}},
		},
		Channels: []ChannelSpec{{Name: "link", A: "a", B: "b", Capacity: capacity}},
	}
	if encrypted {
		cfg.Enclaves = []EnclaveSpec{{Name: "ea"}, {Name: "eb"}}
		cfg.Actors[0].Enclave = "ea"
		cfg.Actors[1].Enclave = "eb"
	}
	rt, err := NewRuntime(zeroPlatform(), cfg)
	if err != nil {
		t.Fatalf("NewRuntime: %v", err)
	}
	t.Cleanup(rt.Stop)
	return rt.actors["a"].endpoints["link"], rt.actors["b"].endpoints["link"], rt
}

func TestEndpointSendRecvPlaintext(t *testing.T) {
	a, b, _ := buildPair(t, false, 8, 16, 64)
	if err := a.Send([]byte("hello")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	buf := make([]byte, 64)
	n, ok, err := b.Recv(buf)
	if err != nil || !ok {
		t.Fatalf("Recv: ok=%v err=%v", ok, err)
	}
	if string(buf[:n]) != "hello" {
		t.Fatalf("Recv = %q", buf[:n])
	}
	// Reply direction.
	if err := b.Send([]byte("world")); err != nil {
		t.Fatalf("reply Send: %v", err)
	}
	n, ok, err = a.Recv(buf)
	if err != nil || !ok || string(buf[:n]) != "world" {
		t.Fatalf("reply Recv = %q ok=%v err=%v", buf[:n], ok, err)
	}
}

func TestEndpointRecvEmpty(t *testing.T) {
	a, _, _ := buildPair(t, false, 8, 16, 64)
	if _, ok, err := a.Recv(make([]byte, 8)); ok || err != nil {
		t.Fatalf("Recv on empty = ok=%v err=%v", ok, err)
	}
	if n, ok, _ := a.RecvNode(); ok || n != nil {
		t.Fatal("RecvNode on empty returned a node")
	}
}

func TestEndpointEncryptedTransparency(t *testing.T) {
	a, b, _ := buildPair(t, true, 8, 16, 256)
	msg := []byte("secret payload")
	if err := a.Send(msg); err != nil {
		t.Fatalf("Send: %v", err)
	}
	buf := make([]byte, 256)
	n, ok, err := b.Recv(buf)
	if err != nil || !ok || !bytes.Equal(buf[:n], msg) {
		t.Fatalf("Recv = %q ok=%v err=%v", buf[:n], ok, err)
	}
}

func TestEncryptedWireIsCiphertext(t *testing.T) {
	a, b, _ := buildPair(t, true, 8, 16, 256)
	msg := []byte("top secret material")
	if err := a.Send(msg); err != nil {
		t.Fatalf("Send: %v", err)
	}
	// Peek at the raw node before the receiver decrypts: it must not
	// contain the plaintext (the malicious-runtime protection).
	node, ok := b.in.Dequeue()
	if !ok {
		t.Fatal("no node on the wire")
	}
	if bytes.Contains(node.Payload(), msg) {
		t.Fatal("plaintext visible on cross-enclave wire")
	}
	if node.Len() != len(msg)+ecrypto.Overhead {
		t.Fatalf("wire length = %d, want %d", node.Len(), len(msg)+ecrypto.Overhead)
	}
	// Put it back and receive normally.
	if !b.in.Enqueue(node) {
		t.Fatal("re-enqueue failed")
	}
	buf := make([]byte, 256)
	n, ok, err := b.Recv(buf)
	if err != nil || !ok || !bytes.Equal(buf[:n], msg) {
		t.Fatalf("Recv after peek = %q ok=%v err=%v", buf[:n], ok, err)
	}
}

func TestEndpointChannelFull(t *testing.T) {
	a, _, _ := buildPair(t, false, 2, 16, 64)
	if err := a.Send([]byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := a.Send([]byte("2")); err != nil {
		t.Fatal(err)
	}
	if err := a.Send([]byte("3")); !errors.Is(err, ErrMailboxFull) {
		t.Fatalf("third Send err = %v, want ErrMailboxFull", err)
	}
	// The failed send must have returned its node to the pool.
	if free := a.pool.Free(); free != 16-2 {
		t.Fatalf("pool Free = %d, want 14", free)
	}
}

func TestEndpointPoolExhausted(t *testing.T) {
	a, _, _ := buildPair(t, false, 8, 2, 64)
	if err := a.Send([]byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := a.Send([]byte("2")); err != nil {
		t.Fatal(err)
	}
	if err := a.Send([]byte("3")); !errors.Is(err, ErrPoolEmpty) {
		t.Fatalf("Send err = %v, want ErrPoolEmpty", err)
	}
}

func TestEndpointPayloadTooLarge(t *testing.T) {
	a, _, _ := buildPair(t, false, 8, 16, 32)
	if err := a.Send(make([]byte, 33)); !errors.Is(err, ErrPayloadTooLarge) {
		t.Fatalf("oversized Send err = %v", err)
	}
	// Encrypted channels lose Overhead bytes of capacity.
	ae, _, _ := buildPair(t, true, 8, 16, 64)
	if got, want := ae.MaxPayload(), 64-ecrypto.Overhead; got != want {
		t.Fatalf("encrypted MaxPayload = %d, want %d", got, want)
	}
	if err := ae.Send(make([]byte, 64-ecrypto.Overhead+1)); !errors.Is(err, ErrPayloadTooLarge) {
		t.Fatalf("encrypted oversized Send err = %v", err)
	}
}

func TestEndpointShortRecvBuffer(t *testing.T) {
	a, b, _ := buildPair(t, false, 8, 16, 64)
	if err := a.Send([]byte("a long message")); err != nil {
		t.Fatal(err)
	}
	_, ok, err := b.Recv(make([]byte, 4))
	if !ok || !errors.Is(err, ErrShortBuffer) {
		t.Fatalf("short-buffer Recv: ok=%v err=%v", ok, err)
	}
}

func TestSendNodeZeroCopyPlaintext(t *testing.T) {
	a, b, rt := buildPair(t, false, 8, 16, 64)
	node := rt.Pool().Get()
	if node == nil {
		t.Fatal("pool empty")
	}
	if err := node.SetPayload([]byte("zero copy")); err != nil {
		t.Fatal(err)
	}
	if err := a.SendNode(node); err != nil {
		t.Fatalf("SendNode: %v", err)
	}
	got, ok, err := b.RecvNode()
	if err != nil || !ok {
		t.Fatalf("RecvNode: ok=%v err=%v", ok, err)
	}
	if got != node {
		t.Fatal("plaintext SendNode copied the node")
	}
	if string(got.Payload()) != "zero copy" {
		t.Fatalf("payload = %q", got.Payload())
	}
	b.Release(got)
	if rt.Pool().Free() != 16 {
		t.Fatalf("pool Free = %d, want 16", rt.Pool().Free())
	}
}

func TestSendNodeEncrypted(t *testing.T) {
	a, b, rt := buildPair(t, true, 8, 16, 128)
	node := rt.Pool().Get()
	if err := node.SetPayload([]byte("in-place sealed")); err != nil {
		t.Fatal(err)
	}
	if err := a.SendNode(node); err != nil {
		t.Fatalf("SendNode: %v", err)
	}
	got, ok, err := b.RecvNode()
	if err != nil || !ok {
		t.Fatalf("RecvNode: ok=%v err=%v", ok, err)
	}
	if string(got.Payload()) != "in-place sealed" {
		t.Fatalf("payload = %q", got.Payload())
	}
	b.Release(got)
}

func TestSendNodeNil(t *testing.T) {
	a, _, _ := buildPair(t, false, 8, 16, 64)
	if err := a.SendNode(nil); err == nil {
		t.Fatal("SendNode(nil) accepted")
	}
}

func TestChannelQuickRoundTrip(t *testing.T) {
	a, b, _ := buildPair(t, true, 64, 128, 512)
	buf := make([]byte, 512)
	f := func(msg []byte) bool {
		if len(msg) > a.MaxPayload() {
			msg = msg[:a.MaxPayload()]
		}
		if err := a.Send(msg); err != nil {
			return false
		}
		n, ok, err := b.Recv(buf)
		if err != nil || !ok {
			return false
		}
		return bytes.Equal(buf[:n], msg)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEndpointPending(t *testing.T) {
	a, b, _ := buildPair(t, false, 8, 16, 64)
	for i := 0; i < 3; i++ {
		if err := a.Send([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if got := b.Pending(); got != 3 {
		t.Fatalf("Pending = %d, want 3", got)
	}
	if got := a.Pending(); got != 0 {
		t.Fatalf("sender Pending = %d, want 0", got)
	}
}
