//go:build !linux

package core

// setAffinity is a no-op on platforms without sched_setaffinity.
func setAffinity(cpus []int) error { return nil }
