package core

import (
	"bytes"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/eactors/eactors-go/internal/trace"
)

// buildPairSwitchless is buildPair for an encrypted channel with the
// switchless proxy subsystem armed. The runtime is not started; the
// proxy goroutines run regardless, so the endpoints exercise the full
// ring pipeline from the test thread.
func buildPairSwitchless(t testing.TB, capacity, poolNodes, payload, proxies int) (a, b *Endpoint, rt *Runtime) {
	t.Helper()
	cfg := Config{
		Workers:     []WorkerSpec{{}},
		PoolNodes:   poolNodes,
		NodePayload: payload,
		Enclaves:    []EnclaveSpec{{Name: "ea"}, {Name: "eb"}},
		Actors: []Spec{
			{Name: "a", Worker: 0, Enclave: "ea", Body: func(*Self) {}},
			{Name: "b", Worker: 0, Enclave: "eb", Body: func(*Self) {}},
		},
		Channels:   []ChannelSpec{{Name: "link", A: "a", B: "b", Capacity: capacity}},
		Switchless: SwitchlessConfig{Enabled: true, Proxies: proxies},
	}
	rt, err := NewRuntime(zeroPlatform(), cfg)
	if err != nil {
		t.Fatalf("NewRuntime: %v", err)
	}
	t.Cleanup(rt.Stop)
	return rt.actors["a"].endpoints["link"], rt.actors["b"].endpoints["link"], rt
}

// waitProxiesParked blocks until every proxy has exhausted its spin
// budget and parked on its event.
func waitProxiesParked(t testing.TB, rt *Runtime) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		parked := true
		for _, p := range rt.sw.proxies {
			if !p.parked.Load() {
				parked = false
			}
		}
		if parked {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("proxies never parked")
		}
		time.Sleep(50 * time.Microsecond)
	}
}

// TestSwitchlessInlineRoundTrip: with the proxy parked and the pipeline
// empty, a send degrades to the inline (blocking) path and the receiver
// opens the segment itself — the message round-trips in both directions
// without waking the proxy, and the inline counter records it.
func TestSwitchlessInlineRoundTrip(t *testing.T) {
	a, b, rt := buildPairSwitchless(t, 8, 32, 256, 1)
	waitProxiesParked(t, rt)

	if err := a.Send([]byte("hello")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	buf := make([]byte, 256)
	n, ok, err := b.Recv(buf)
	if err != nil || !ok || string(buf[:n]) != "hello" {
		t.Fatalf("Recv = %q ok=%v err=%v", buf[:n], ok, err)
	}
	if got := a.sw.inline.Load(); got < 1 {
		t.Fatalf("inline counter = %d after parked-proxy send, want >= 1", got)
	}

	// Reply direction uses its own ring pair.
	if err := b.Send([]byte("world")); err != nil {
		t.Fatalf("reply Send: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		n, ok, err = a.Recv(buf)
		if err != nil {
			t.Fatalf("reply Recv: %v", err)
		}
		if ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("reply never arrived")
		}
		runtime.Gosched()
	}
	if string(buf[:n]) != "world" {
		t.Fatalf("reply Recv = %q", buf[:n])
	}
}

// TestSwitchlessBurstFIFO floods the channel faster than the receiver
// drains it, so traffic reaches the tx ring and the proxy coalesces
// records into multi-record segments. Every message must arrive exactly
// once, in order, with nothing shed, and the proxy counters must show
// both ring relaying and avoided crossings.
func TestSwitchlessBurstFIFO(t *testing.T) {
	a, b, rt := buildPairSwitchless(t, 64, 256, 256, 1)

	const total = 400
	sent, got := 0, 0
	buf := make([]byte, 256)
	deadline := time.Now().Add(20 * time.Second)

	// Seed the pipeline and give the proxy the CPU before the receiver
	// starts competing for the open work, so the relayed counter is
	// deterministically exercised.
	for sent < total {
		if err := a.Send([]byte(fmt.Sprintf("msg-%04d", sent))); err != nil {
			break
		}
		sent++
	}
	for a.sw.relayed.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("proxy never relayed: tx=%d sealed=%d rx=%d", a.sw.tx.Len(), a.sw.sealed.Len(), a.sw.rx.Len())
		}
		runtime.Gosched()
	}

	for got < total {
		if time.Now().After(deadline) {
			t.Fatalf("stalled: sent=%d got=%d ringPosts=%d relayed=%d inline=%d dropped=%d",
				sent, got, a.sw.ringPosts.Load(), a.sw.relayed.Load(), a.sw.inline.Load(), a.sw.rxDropped.Load())
		}
		for sent < total {
			if err := a.Send([]byte(fmt.Sprintf("msg-%04d", sent))); err != nil {
				if errors.Is(err, ErrMailboxFull) {
					break
				}
				t.Fatalf("Send %d: %v", sent, err)
			}
			sent++
		}
		n, ok, err := b.Recv(buf)
		if err != nil {
			t.Fatalf("Recv %d: %v", got, err)
		}
		if !ok {
			runtime.Gosched()
			continue
		}
		if want := fmt.Sprintf("msg-%04d", got); string(buf[:n]) != want {
			t.Fatalf("Recv %d = %q, want %q", got, buf[:n], want)
		}
		got++
	}
	if dropped := a.sw.rxDropped.Load(); dropped != 0 {
		t.Fatalf("rxDropped = %d, want 0", dropped)
	}
	if posts := a.sw.ringPosts.Load(); posts == 0 {
		t.Fatal("burst never reached the tx ring")
	}
	if relayed := a.sw.relayed.Load(); relayed == 0 {
		t.Fatal("proxy never relayed a record")
	}
	if avoided := rt.Platform().Snapshot().CrossingsAvoided; avoided == 0 {
		t.Fatal("CrossingsAvoided = 0 after ring traffic")
	}
}

// TestSwitchlessTightPoolNoShed sizes the node pool well below
// SegmentMax, so one direction cycles the whole pool and the open half
// routinely cannot afford a coalesced segment's full record run — at
// times every pool node is itself a sealed segment, so the run can
// never be affordable all at once. The segment must stall and drain
// incrementally as receivers return nodes: every record a successful
// Send accepted arrives in order, none shed. (The pre-fix rxSpace
// gated opening on a single free node and shed the tail of the segment
// as rxDropped.)
func TestSwitchlessTightPoolNoShed(t *testing.T) {
	a, b, _ := buildPairSwitchless(t, 16, 8, 256, 1)
	const total = 300
	sent, got := 0, 0
	buf := make([]byte, 256)
	deadline := time.Now().Add(20 * time.Second)
	for got < total {
		if time.Now().After(deadline) {
			t.Fatalf("stalled: sent=%d got=%d tx=%d sealed=%d rx=%d dropped=%d rxBacklog=%d free=%d",
				sent, got, a.sw.tx.Len(), a.sw.sealed.Len(), a.sw.rx.Len(),
				a.sw.rxDropped.Load(), a.sw.rxBacklog.Load(), a.sw.pool.Free())
		}
		for sent < total {
			if err := a.Send([]byte(fmt.Sprintf("t%04d", sent))); err != nil {
				if errors.Is(err, ErrMailboxFull) || errors.Is(err, ErrPoolEmpty) {
					break // backpressure, not loss: drain and retry
				}
				t.Fatalf("Send %d: %v", sent, err)
			}
			sent++
		}
		n, ok, err := b.Recv(buf)
		if err != nil {
			t.Fatalf("Recv %d: %v", got, err)
		}
		if !ok {
			runtime.Gosched()
			continue
		}
		if want := fmt.Sprintf("t%04d", got); string(buf[:n]) != want {
			t.Fatalf("Recv %d = %q, want %q", got, buf[:n], want)
		}
		got++
	}
	if dropped := a.sw.rxDropped.Load(); dropped != 0 {
		t.Fatalf("rxDropped = %d under tight pool, want 0", dropped)
	}
}

// TestSwitchlessInlineCreditsNothing pins the accounting contract:
// records sealed and opened by actor threads while the proxy stays
// parked are blocking-path work and must not inflate the platform's
// avoided-crossing ledger.
func TestSwitchlessInlineCreditsNothing(t *testing.T) {
	a, b, rt := buildPairSwitchless(t, 8, 32, 256, 1)
	waitProxiesParked(t, rt)
	if err := a.Send([]byte("inline")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	buf := make([]byte, 256)
	n, ok, err := b.Recv(buf)
	if err != nil || !ok || string(buf[:n]) != "inline" {
		t.Fatalf("Recv = %q ok=%v err=%v", buf[:n], ok, err)
	}
	if got := a.sw.inline.Load(); got < 1 {
		t.Fatalf("inline counter = %d, want >= 1", got)
	}
	if got := rt.Platform().Snapshot().CrossingsAvoided; got != 0 {
		t.Fatalf("CrossingsAvoided = %d after a pure-inline round trip, want 0", got)
	}
}

// TestSwitchlessTwoProxies is the burst test at Proxies=2: direction
// rings are spread round-robin across proxies and traffic still arrives
// in order.
func TestSwitchlessTwoProxies(t *testing.T) {
	a, b, _ := buildPairSwitchless(t, 32, 128, 256, 2)
	const total = 100
	sent, got := 0, 0
	buf := make([]byte, 256)
	deadline := time.Now().Add(20 * time.Second)
	for got < total {
		if time.Now().After(deadline) {
			t.Fatalf("stalled: sent=%d got=%d", sent, got)
		}
		for sent < total {
			if err := a.Send([]byte(fmt.Sprintf("m%03d", sent))); err != nil {
				break
			}
			sent++
		}
		n, ok, _ := b.Recv(buf)
		if !ok {
			runtime.Gosched()
			continue
		}
		if want := fmt.Sprintf("m%03d", got); string(buf[:n]) != want {
			t.Fatalf("Recv %d = %q, want %q", got, buf[:n], want)
		}
		got++
	}
}

// TestSwitchlessMaxPayload: the segment length prefix costs segHdr
// bytes of MaxPayload relative to a blocking encrypted channel; a
// message of exactly MaxPayload round-trips and one byte more is
// rejected before touching the pipeline.
func TestSwitchlessMaxPayload(t *testing.T) {
	blockA, _, _ := buildPair(t, true, 8, 16, 256)
	a, b, _ := buildPairSwitchless(t, 8, 32, 256, 1)
	if got, want := a.MaxPayload(), blockA.MaxPayload()-segHdr; got != want {
		t.Fatalf("switchless MaxPayload = %d, want %d (blocking - segHdr)", got, want)
	}
	msg := make([]byte, a.MaxPayload())
	for i := range msg {
		msg[i] = byte(i)
	}
	if err := a.Send(msg); err != nil {
		t.Fatalf("Send(MaxPayload): %v", err)
	}
	buf := make([]byte, 256)
	deadline := time.Now().Add(5 * time.Second)
	for {
		n, ok, err := b.Recv(buf)
		if err != nil {
			t.Fatalf("Recv: %v", err)
		}
		if ok {
			if n != len(msg) {
				t.Fatalf("Recv length = %d, want %d", n, len(msg))
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("max-size message never arrived")
		}
		runtime.Gosched()
	}
	if err := a.Send(make([]byte, a.MaxPayload()+1)); !errors.Is(err, ErrPayloadTooLarge) {
		t.Fatalf("oversize Send err = %v, want ErrPayloadTooLarge", err)
	}
}

// TestSwitchlessRunUntrusted: with proxies configured the call is
// relayed (two crossings avoided); without, it runs inline on the
// calling thread.
func TestSwitchlessRunUntrusted(t *testing.T) {
	_, _, rt := buildPairSwitchless(t, 8, 32, 256, 1)
	base := rt.Platform().Snapshot().CrossingsAvoided
	var ran atomic.Bool
	self := &Self{rt: rt}
	self.RunUntrusted(func() { ran.Store(true) })
	if !ran.Load() {
		t.Fatal("proxied fn never ran")
	}
	if got := rt.Platform().Snapshot().CrossingsAvoided; got < base+2 {
		t.Fatalf("CrossingsAvoided = %d, want >= %d", got, base+2)
	}

	// No switchless subsystem: inline fallback.
	_, _, plain := buildPair(t, true, 8, 16, 256)
	var inline atomic.Bool
	(&Self{rt: plain}).RunUntrusted(func() { inline.Store(true) })
	if !inline.Load() {
		t.Fatal("inline fallback never ran")
	}
}

// TestSwitchlessPanicRestartWhileParked is the supervision interaction:
// an enclaved consumer on a switchless channel panics while the proxy
// is parked; the restart (with FlushMailbox) must drain the rx ring
// without wedging it, and delivery must resume afterwards.
func TestSwitchlessPanicRestartWhileParked(t *testing.T) {
	received := new(atomic.Int64)
	var first atomic.Bool
	first.Store(true)
	buf := make([]byte, 128)
	cfg := Config{
		Workers:     []WorkerSpec{{}, {}},
		PoolNodes:   64,
		NodePayload: 128,
		Enclaves:    []EnclaveSpec{{Name: "ea"}, {Name: "eb"}},
		Channels:    []ChannelSpec{{Name: "work", A: "producer", B: "consumer", Capacity: 8}},
		Switchless:  SwitchlessConfig{Enabled: true},
		Actors: []Spec{
			{Name: "producer", Worker: 0, Enclave: "ea", Body: func(*Self) {}},
			{
				Name: "consumer", Worker: 1, Enclave: "eb",
				Restart: RestartPolicy{OnPanic: true, Backoff: time.Millisecond, FlushMailbox: true},
				Body: func(self *Self) {
					if first.CompareAndSwap(true, false) {
						panic("crash while proxy parked")
					}
					ep := self.MustChannel("work")
					for {
						_, ok, err := ep.Recv(buf)
						if !ok || err != nil {
							return
						}
						received.Add(1)
						self.Progress()
					}
				},
			},
		},
	}
	rt, err := NewRuntime(zeroPlatform(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Stop)

	// Wait for the panic to park the consumer and the idle proxies to
	// park on their events.
	deadline := time.Now().Add(5 * time.Second)
	for len(rt.FailedActors()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("consumer never parked")
		}
		time.Sleep(100 * time.Microsecond)
	}
	waitProxiesParked(t, rt)

	// Restart fires on its own; keep sending until delivery resumes.
	// Retried ErrMailboxFull is expected while the consumer is down.
	ep := rt.actors["producer"].endpoints["work"]
	deadline = time.Now().Add(10 * time.Second)
	for received.Load() < 50 {
		if time.Now().After(deadline) {
			d := ep.sw
			stack := make([]byte, 1<<16)
			stack = stack[:runtime.Stack(stack, true)]
			t.Fatalf("delivery never resumed: received=%d restarts=%d failed=%v tx=%d sealed=%d rx=%d inflight=%d parked=%v busyTx=%d busyRx=%d stalled=%v posts=%d relayed=%d inline=%d dropped=%d\n%s",
				received.Load(), rt.ActorRestarts("consumer"), rt.FailedActors(),
				d.tx.Len(), d.sealed.Len(), d.rx.Len(), d.txInflight.Load(), d.proxy.parked.Load(),
				d.busyTx.Load(), d.busyRx.Load(), d.stalled != nil,
				d.ringPosts.Load(), d.relayed.Load(), d.inline.Load(), d.rxDropped.Load(), stack)
		}
		if err := ep.Send([]byte("payload")); err != nil && !errors.Is(err, ErrMailboxFull) {
			t.Fatalf("Send: %v", err)
		}
		runtime.Gosched()
	}
	if got := rt.ActorRestarts("consumer"); got != 1 {
		t.Fatalf("ActorRestarts = %d, want 1", got)
	}
}

// TestSwitchlessStopWithBacklog: Stop must drain in-flight ring traffic
// and join the proxies without deadlocking, even when nobody receives.
func TestSwitchlessStopWithBacklog(t *testing.T) {
	a, _, rt := buildPairSwitchless(t, 16, 64, 256, 1)
	for i := 0; i < 32; i++ {
		if err := a.Send([]byte("backlog")); err != nil {
			break
		}
	}
	done := make(chan struct{})
	go func() {
		rt.Stop()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Stop deadlocked with switchless backlog")
	}
}

// TestSwitchlessTracedRoundTrip: a sampled message keeps its causal
// identity across the switchless pipeline — the receiver's scope adopts
// the sender's trace and the send span lands on the tracer ring.
func TestSwitchlessTracedRoundTrip(t *testing.T) {
	cfg := Config{
		Trace:            true,
		TraceSampleEvery: 1,
		Workers:          []WorkerSpec{{}},
		PoolNodes:        32,
		NodePayload:      256,
		Enclaves:         []EnclaveSpec{{Name: "ea"}, {Name: "eb"}},
		Actors: []Spec{
			{Name: "a", Worker: 0, Enclave: "ea", Body: func(*Self) {}},
			{Name: "b", Worker: 0, Enclave: "eb", Body: func(*Self) {}},
		},
		Channels:   []ChannelSpec{{Name: "link", A: "a", B: "b", Capacity: 8}},
		Switchless: SwitchlessConfig{Enabled: true},
	}
	rt, err := NewRuntime(zeroPlatform(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Stop)
	a := rt.actors["a"].endpoints["link"]
	b := rt.actors["b"].endpoints["link"]
	sc, err := rt.ScopeForTest("a")
	if err != nil {
		t.Fatal(err)
	}
	tr := rt.Tracer()
	ctx := tr.NewRoot()
	sc.Adopt(ctx)
	if err := a.Send([]byte("traced")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	buf := make([]byte, 256)
	deadline := time.Now().Add(5 * time.Second)
	for {
		n, ok, err := b.Recv(buf)
		if err != nil {
			t.Fatalf("Recv: %v", err)
		}
		if ok {
			if string(buf[:n]) != "traced" {
				t.Fatalf("Recv = %q", buf[:n])
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("traced message never arrived")
		}
		runtime.Gosched()
	}
	bsc, err := rt.ScopeForTest("b")
	if err != nil {
		t.Fatal(err)
	}
	if got := bsc.Active(); got.TraceID != ctx.TraceID {
		t.Fatalf("receiver scope = %+v, want trace %d adopted", got, ctx.TraceID)
	}
	kinds := kindCount(tr.Snapshot(), ctx.TraceID)
	if kinds[trace.KindSend] < 1 || kinds[trace.KindSeal] < 1 || kinds[trace.KindOpen] < 1 {
		t.Fatalf("trace kinds = %v, want send+seal+open spans", kinds)
	}
}

// TestSwitchlessReportAndMonitor: the runtime report carries the proxy
// counters and the monitor's report verb renders them.
func TestSwitchlessReportAndMonitor(t *testing.T) {
	a, b, rt := buildPairSwitchless(t, 8, 32, 256, 1)
	if err := a.Send([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 256)
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, ok, err := b.Recv(buf)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("ping never arrived")
		}
		runtime.Gosched()
	}
	r := rt.Report()
	if !r.Switchless.Enabled || r.Switchless.Proxies != 1 {
		t.Fatalf("Switchless report = %+v, want enabled with 1 proxy", r.Switchless)
	}
	if r.Switchless.RingPosts+r.Switchless.Inline == 0 {
		t.Fatalf("Switchless report shows no traffic: %+v", r.Switchless)
	}
	var out bytes.Buffer
	writeReport(&out, r)
	if !strings.Contains(out.String(), "switchless proxies=1") {
		t.Fatalf("monitor report missing switchless line:\n%s", out.String())
	}

	// A blocking runtime's report must not claim switchless.
	_, _, plain := buildPair(t, true, 8, 16, 256)
	if pr := plain.Report(); pr.Switchless.Enabled {
		t.Fatalf("blocking runtime reports switchless: %+v", pr.Switchless)
	}
}
