package mem

import (
	"bytes"
	"runtime"
	"sync"
	"testing"
	"testing/quick"
)

func newTestArena(t *testing.T, count, size int) *Arena {
	t.Helper()
	a, err := NewArena(count, size)
	if err != nil {
		t.Fatalf("NewArena: %v", err)
	}
	return a
}

func TestArenaValidation(t *testing.T) {
	if _, err := NewArena(0, 64); err == nil {
		t.Fatal("zero-count arena accepted")
	}
	if _, err := NewArena(4, 0); err == nil {
		t.Fatal("zero-size arena accepted")
	}
	if _, err := NewArena(-1, -1); err == nil {
		t.Fatal("negative arena accepted")
	}
}

func TestArenaLayout(t *testing.T) {
	a := newTestArena(t, 8, 128)
	if a.Len() != 8 || a.PayloadSize() != 128 || a.Bytes() != 8*128 {
		t.Fatalf("arena geometry wrong: %d nodes × %d B", a.Len(), a.PayloadSize())
	}
	n, err := a.Node(3)
	if err != nil {
		t.Fatalf("Node(3): %v", err)
	}
	if n.Index() != 3 || n.Cap() != 128 {
		t.Fatalf("node 3: index=%d cap=%d", n.Index(), n.Cap())
	}
	if _, err := a.Node(8); err == nil {
		t.Fatal("out-of-range node index accepted")
	}
}

func TestNodeBuffersAreDisjoint(t *testing.T) {
	a := newTestArena(t, 4, 16)
	for i := 0; i < 4; i++ {
		n, _ := a.Node(uint32(i))
		for j := range n.Buf() {
			n.Buf()[j] = byte(i + 1)
		}
	}
	for i := 0; i < 4; i++ {
		n, _ := a.Node(uint32(i))
		for _, b := range n.Buf() {
			if b != byte(i+1) {
				t.Fatalf("node %d buffer overlaps another node", i)
			}
		}
	}
}

func TestNodePayload(t *testing.T) {
	a := newTestArena(t, 1, 32)
	n, _ := a.Node(0)
	if err := n.SetPayload([]byte("hello")); err != nil {
		t.Fatalf("SetPayload: %v", err)
	}
	if n.Len() != 5 || string(n.Payload()) != "hello" {
		t.Fatalf("payload = %q (len %d)", n.Payload(), n.Len())
	}
	if err := n.SetPayload(make([]byte, 33)); err == nil {
		t.Fatal("oversized payload accepted")
	}
	if err := n.SetLen(32); err != nil {
		t.Fatalf("SetLen(32): %v", err)
	}
	if err := n.SetLen(33); err == nil {
		t.Fatal("SetLen beyond capacity accepted")
	}
	if err := n.SetLen(-1); err == nil {
		t.Fatal("negative SetLen accepted")
	}
}

func TestPoolGetPut(t *testing.T) {
	a := newTestArena(t, 4, 16)
	p := NewPool(a)
	if p.Free() != 4 {
		t.Fatalf("Free = %d, want 4", p.Free())
	}
	seen := map[uint32]bool{}
	var nodes []*Node
	for i := 0; i < 4; i++ {
		n := p.Get()
		if n == nil {
			t.Fatalf("Get #%d returned nil", i)
		}
		if seen[n.Index()] {
			t.Fatalf("node %d handed out twice", n.Index())
		}
		seen[n.Index()] = true
		nodes = append(nodes, n)
	}
	if p.Get() != nil {
		t.Fatal("exhausted pool returned a node")
	}
	for _, n := range nodes {
		if err := p.Put(n); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	if p.Free() != 4 {
		t.Fatalf("Free after refill = %d, want 4", p.Free())
	}
}

func TestPoolLIFO(t *testing.T) {
	a := newTestArena(t, 4, 16)
	p := NewPool(a)
	n1 := p.Get()
	n2 := p.Get()
	if err := p.Put(n1); err != nil {
		t.Fatal(err)
	}
	if err := p.Put(n2); err != nil {
		t.Fatal(err)
	}
	if got := p.Get(); got != n2 {
		t.Fatalf("pool is not LIFO: got node %d, want %d", got.Index(), n2.Index())
	}
}

func TestPoolGetResetsLen(t *testing.T) {
	a := newTestArena(t, 1, 16)
	p := NewPool(a)
	n := p.Get()
	if err := n.SetPayload([]byte("stale")); err != nil {
		t.Fatal(err)
	}
	if err := p.Put(n); err != nil {
		t.Fatal(err)
	}
	n = p.Get()
	if n.Len() != 0 {
		t.Fatalf("recycled node has stale length %d", n.Len())
	}
}

func TestPoolPutForeignNode(t *testing.T) {
	a1 := newTestArena(t, 2, 16)
	a2 := newTestArena(t, 2, 16)
	p := NewPool(a1)
	foreign, _ := a2.Node(0)
	if err := p.Put(foreign); err == nil {
		t.Fatal("pool accepted a node from a different arena")
	}
	if err := p.Put(nil); err == nil {
		t.Fatal("pool accepted nil")
	}
}

func TestEmptyPool(t *testing.T) {
	a := newTestArena(t, 2, 16)
	p := NewEmptyPool(a)
	if p.Get() != nil {
		t.Fatal("empty pool returned a node")
	}
	n, _ := a.Node(0)
	if err := p.Put(n); err != nil {
		t.Fatalf("Put into empty pool: %v", err)
	}
	if got := p.Get(); got != n {
		t.Fatal("did not get back the node put into the empty pool")
	}
}

func TestPoolConcurrentChurn(t *testing.T) {
	const (
		workers = 8
		rounds  = 5000
	)
	a := newTestArena(t, 64, 32)
	p := NewPool(a)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id byte) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				n := p.Get()
				if n == nil {
					continue
				}
				// Stamp the buffer and verify exclusive ownership.
				buf := n.Buf()
				for j := range buf {
					buf[j] = id
				}
				for j := range buf {
					if buf[j] != id {
						t.Errorf("node %d corrupted while owned", n.Index())
						return
					}
				}
				if err := p.Put(n); err != nil {
					t.Errorf("Put: %v", err)
					return
				}
			}
		}(byte(w + 1))
	}
	wg.Wait()
	if p.Free() != 64 {
		t.Fatalf("Free after churn = %d, want 64 (leaked or duplicated nodes)", p.Free())
	}
}

func TestMboxValidation(t *testing.T) {
	for _, c := range []int{0, 1, 3, 100} {
		if _, err := NewMbox(c); err == nil {
			t.Fatalf("capacity %d accepted", c)
		}
	}
	if _, err := NewMbox(8); err != nil {
		t.Fatalf("capacity 8 rejected: %v", err)
	}
}

func TestMboxFIFO(t *testing.T) {
	a := newTestArena(t, 8, 16)
	m, _ := NewMbox(8)
	for i := 0; i < 8; i++ {
		n, _ := a.Node(uint32(i))
		if !m.Enqueue(n) {
			t.Fatalf("Enqueue #%d failed", i)
		}
	}
	for i := 0; i < 8; i++ {
		n, ok := m.Dequeue()
		if !ok {
			t.Fatalf("Dequeue #%d failed", i)
		}
		if n.Index() != uint32(i) {
			t.Fatalf("FIFO violated: got node %d at position %d", n.Index(), i)
		}
	}
	if _, ok := m.Dequeue(); ok {
		t.Fatal("empty mbox dequeued a node")
	}
}

func TestMboxFullAndEmpty(t *testing.T) {
	a := newTestArena(t, 3, 16)
	m, _ := NewMbox(2)
	n0, _ := a.Node(0)
	n1, _ := a.Node(1)
	n2, _ := a.Node(2)
	if !m.Enqueue(n0) || !m.Enqueue(n1) {
		t.Fatal("enqueue into non-full mbox failed")
	}
	if m.Enqueue(n2) {
		t.Fatal("enqueue into full mbox succeeded")
	}
	if m.Len() != 2 || m.Empty() {
		t.Fatalf("Len = %d, Empty = %v", m.Len(), m.Empty())
	}
	if m.Enqueue(nil) {
		t.Fatal("nil node enqueued")
	}
	got, ok := m.Dequeue()
	if !ok || got != n0 {
		t.Fatal("wrong head dequeued")
	}
	if !m.Enqueue(n2) {
		t.Fatal("enqueue after dequeue failed (ring not recycling)")
	}
}

func TestMboxWrapAround(t *testing.T) {
	a := newTestArena(t, 1, 16)
	m, _ := NewMbox(4)
	n, _ := a.Node(0)
	for i := 0; i < 100; i++ {
		if !m.Enqueue(n) {
			t.Fatalf("Enqueue at round %d failed", i)
		}
		got, ok := m.Dequeue()
		if !ok || got != n {
			t.Fatalf("Dequeue at round %d failed", i)
		}
	}
}

func TestMboxConcurrentMPMC(t *testing.T) {
	const (
		producers = 4
		consumers = 4
		perProd   = 2000
	)
	a := newTestArena(t, 256, 8)
	pool := NewPool(a)
	m, _ := NewMbox(64)

	var produced, consumed sync.WaitGroup
	var consumedCount sync.Map
	done := make(chan struct{})

	consumed.Add(consumers)
	for c := 0; c < consumers; c++ {
		go func() {
			defer consumed.Done()
			for {
				n, ok := m.Dequeue()
				if !ok {
					select {
					case <-done:
						// Drain any stragglers before exiting.
						for {
							n, ok := m.Dequeue()
							if !ok {
								return
							}
							v, _ := consumedCount.LoadOrStore(n.Index(), new(sync.Mutex))
							_ = v
							_ = pool.Put(n)
						}
					default:
						runtime.Gosched()
						continue
					}
				}
				_ = pool.Put(n)
			}
		}()
	}

	produced.Add(producers)
	totalSent := make([]int, producers)
	for p := 0; p < producers; p++ {
		go func(idx int) {
			defer produced.Done()
			for i := 0; i < perProd; {
				n := pool.Get()
				if n == nil {
					runtime.Gosched()
					continue
				}
				if !m.Enqueue(n) {
					_ = pool.Put(n)
					runtime.Gosched()
					continue
				}
				i++
				totalSent[idx]++
			}
		}(p)
	}

	produced.Wait()
	close(done)
	consumed.Wait()

	if pool.Free() != 256 {
		t.Fatalf("pool Free = %d after MPMC churn, want 256", pool.Free())
	}
	for p, n := range totalSent {
		if n != perProd {
			t.Fatalf("producer %d sent %d, want %d", p, n, perProd)
		}
	}
}

func TestMboxQuickSequential(t *testing.T) {
	// Property: for any sequence of enqueue/dequeue operations, the mbox
	// behaves exactly like a bounded FIFO queue model.
	a := newTestArena(t, 64, 8)
	f := func(ops []bool) bool {
		m, err := NewMbox(16)
		if err != nil {
			return false
		}
		var model []uint32
		next := 0
		for _, enq := range ops {
			if enq {
				if next >= a.Len() {
					continue
				}
				n, _ := a.Node(uint32(next))
				ok := m.Enqueue(n)
				wantOK := len(model) < 16
				if ok != wantOK {
					return false
				}
				if ok {
					model = append(model, n.Index())
					next++
				}
			} else {
				n, ok := m.Dequeue()
				wantOK := len(model) > 0
				if ok != wantOK {
					return false
				}
				if ok {
					if n.Index() != model[0] {
						return false
					}
					model = model[1:]
				}
			}
		}
		return m.Len() == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPoolQuickNoDuplicates(t *testing.T) {
	// Property: a pool never hands out a node that is currently owned.
	f := func(ops []bool) bool {
		a, err := NewArena(8, 8)
		if err != nil {
			return false
		}
		p := NewPool(a)
		owned := map[uint32]*Node{}
		for _, get := range ops {
			if get {
				n := p.Get()
				if n == nil {
					if len(owned) != 8 {
						return false // pool claimed empty while nodes were free
					}
					continue
				}
				if _, dup := owned[n.Index()]; dup {
					return false
				}
				owned[n.Index()] = n
			} else {
				for idx, n := range owned {
					if p.Put(n) != nil {
						return false
					}
					delete(owned, idx)
					break
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPayloadRoundTripQuick(t *testing.T) {
	a := newTestArena(t, 1, 256)
	n, _ := a.Node(0)
	f := func(data []byte) bool {
		if len(data) > 256 {
			data = data[:256]
		}
		if err := n.SetPayload(data); err != nil {
			return false
		}
		return bytes.Equal(n.Payload(), data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
