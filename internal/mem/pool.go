package mem

import (
	"fmt"
	"sync/atomic"
)

// Pool is a lock-free LIFO stack of free nodes (the paper's pool
// abstraction, Section 3.3). It is multi-producer/multi-consumer and
// ABA-safe: the head word packs a 32-bit version tag with the top node's
// index, so a CAS cannot succeed across an interleaved pop/push cycle
// that reuses the same node.
type Pool struct {
	arena *Arena
	// head packs {tag:32, index+1:32}; index 0 means empty.
	head  atomic.Uint64
	count atomic.Int64
}

// NewPool builds a pool over the whole arena, with every node initially
// free.
func NewPool(arena *Arena) *Pool {
	p := &Pool{arena: arena}
	for i := len(arena.nodes) - 1; i >= 0; i-- {
		p.push(&arena.nodes[i])
	}
	return p
}

// NewEmptyPool builds a pool over the arena with no free nodes; used when
// a region of the arena is partitioned among several pools.
func NewEmptyPool(arena *Arena) *Pool {
	return &Pool{arena: arena}
}

// Arena returns the backing arena.
func (p *Pool) Arena() *Arena { return p.arena }

// Get pops a free node, or returns nil when the pool is exhausted.
func (p *Pool) Get() *Node {
	for {
		head := p.head.Load()
		idx := uint32(head)
		if idx == 0 {
			return nil
		}
		node := &p.arena.nodes[idx-1]
		next := node.next.Load()
		tag := uint32(head>>32) + 1
		if p.head.CompareAndSwap(head, uint64(tag)<<32|uint64(next)) {
			p.count.Add(-1)
			node.size = 0
			return node
		}
	}
}

// GetBatch pops up to len(out) free nodes with a single CAS, filling
// out from the top of the stack. It returns the number popped (0 when
// the pool is empty). The freelist walk is validated by the tagged CAS:
// the tag changes on every push and pop, so the CAS only succeeds when
// the list was untouched since the head read and every link the walk
// followed was stable.
func (p *Pool) GetBatch(out []*Node) int {
	if len(out) == 0 {
		return 0
	}
	for {
		head := p.head.Load()
		idx := uint32(head)
		if idx == 0 {
			return 0
		}
		n := 0
		next := idx
		for n < len(out) && next != 0 {
			node := &p.arena.nodes[next-1]
			out[n] = node
			next = node.next.Load()
			n++
		}
		tag := uint32(head>>32) + 1
		if p.head.CompareAndSwap(head, uint64(tag)<<32|uint64(next)) {
			p.count.Add(int64(-n))
			for i := 0; i < n; i++ {
				out[i].size = 0
			}
			return n
		}
	}
}

// PutBatch returns a run of nodes to the pool with a single CAS: the
// nodes are linked amongst themselves first, then the whole chain is
// pushed at once. The caller must own every node and must not touch
// them afterwards. nodes[0] becomes the new top of the stack.
func (p *Pool) PutBatch(nodes []*Node) error {
	if len(nodes) == 0 {
		return nil
	}
	for _, node := range nodes {
		if node == nil {
			return fmt.Errorf("mem: PutBatch(nil node)")
		}
		if int(node.index) >= len(p.arena.nodes) || &p.arena.nodes[node.index] != node {
			return fmt.Errorf("mem: PutBatch of node %d from a different arena", node.index)
		}
	}
	for i := 0; i < len(nodes)-1; i++ {
		nodes[i].next.Store(nodes[i+1].index + 1)
	}
	first := uint64(nodes[0].index) + 1
	last := nodes[len(nodes)-1]
	for {
		head := p.head.Load()
		last.next.Store(uint32(head))
		tag := uint32(head>>32) + 1
		if p.head.CompareAndSwap(head, uint64(tag)<<32|first) {
			p.count.Add(int64(len(nodes)))
			return nil
		}
	}
}

// Put returns a node to the pool. The caller must own the node and must
// not touch it afterwards.
func (p *Pool) Put(node *Node) error {
	if node == nil {
		return fmt.Errorf("mem: Put(nil)")
	}
	if int(node.index) >= len(p.arena.nodes) || &p.arena.nodes[node.index] != node {
		return fmt.Errorf("mem: Put of node %d from a different arena", node.index)
	}
	p.push(node)
	return nil
}

func (p *Pool) push(node *Node) {
	encoded := uint64(node.index) + 1
	for {
		head := p.head.Load()
		node.next.Store(uint32(head))
		tag := uint32(head>>32) + 1
		if p.head.CompareAndSwap(head, uint64(tag)<<32|encoded) {
			p.count.Add(1)
			return
		}
	}
}

// Free returns the current number of free nodes (approximate under
// concurrency).
func (p *Pool) Free() int { return int(p.count.Load()) }
