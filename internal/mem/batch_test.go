package mem

import (
	"runtime"
	"sync"
	"testing"
)

func TestMboxEnqueueBatchPartialOnFull(t *testing.T) {
	a := newTestArena(t, 8, 16)
	m, _ := NewMbox(4)
	var nodes []*Node
	for i := 0; i < 6; i++ {
		n, _ := a.Node(uint32(i))
		nodes = append(nodes, n)
	}
	if got := m.EnqueueBatch(nodes); got != 4 {
		t.Fatalf("EnqueueBatch into empty ring of 4 = %d, want 4", got)
	}
	if got := m.EnqueueBatch(nodes[4:]); got != 0 {
		t.Fatalf("EnqueueBatch into full ring = %d, want 0", got)
	}
	if _, ok := m.Dequeue(); !ok {
		t.Fatal("Dequeue from full ring failed")
	}
	if got := m.EnqueueBatch(nodes[4:]); got != 1 {
		t.Fatalf("EnqueueBatch into ring with one slot = %d, want 1", got)
	}
	if m.EnqueueBatch(nil) != 0 {
		t.Fatal("empty batch enqueued something")
	}
}

func TestMboxDequeueBatchPartialOnEmpty(t *testing.T) {
	a := newTestArena(t, 8, 16)
	m, _ := NewMbox(8)
	out := make([]*Node, 8)
	if got := m.DequeueBatch(out); got != 0 {
		t.Fatalf("DequeueBatch from empty ring = %d, want 0", got)
	}
	for i := 0; i < 3; i++ {
		n, _ := a.Node(uint32(i))
		if !m.Enqueue(n) {
			t.Fatalf("Enqueue #%d failed", i)
		}
	}
	got := m.DequeueBatch(out)
	if got != 3 {
		t.Fatalf("DequeueBatch = %d, want the 3 available", got)
	}
	for i := 0; i < got; i++ {
		if out[i].Index() != uint32(i) {
			t.Fatalf("out[%d] = node %d, want %d", i, out[i].Index(), i)
		}
	}
	if m.DequeueBatch(nil) != 0 {
		t.Fatal("nil out slice dequeued something")
	}
}

func TestMboxBatchFIFOMixedWithSingles(t *testing.T) {
	// FIFO order must hold across interleaved single and batch operations,
	// including across the ring's wrap-around boundary.
	a := newTestArena(t, 64, 8)
	m, _ := NewMbox(16)
	next, expect := 0, 0
	enqOne := func() {
		n, _ := a.Node(uint32(next))
		if m.Enqueue(n) {
			next++
		}
	}
	enqBatch := func(k int) {
		batch := make([]*Node, 0, k)
		for i := 0; i < k && next+i < a.Len(); i++ {
			n, _ := a.Node(uint32(next + i))
			batch = append(batch, n)
		}
		next += m.EnqueueBatch(batch)
	}
	check := func(n *Node) {
		if n.Index() != uint32(expect) {
			t.Fatalf("FIFO violated: got node %d, want %d", n.Index(), expect)
		}
		expect++
	}
	deqOne := func() {
		if n, ok := m.Dequeue(); ok {
			check(n)
		}
	}
	deqBatch := func(k int) {
		out := make([]*Node, k)
		got := m.DequeueBatch(out)
		for i := 0; i < got; i++ {
			check(out[i])
		}
	}
	enqOne()
	enqBatch(5)
	deqBatch(3)
	enqBatch(7)
	deqOne()
	deqBatch(4)
	enqOne()
	enqBatch(12) // spans the wrap boundary of the 16-slot ring
	deqBatch(16)
	deqOne()
	if expect != next {
		t.Fatalf("consumed %d of %d enqueued", expect, next)
	}
	if !m.Empty() {
		t.Fatalf("mbox not empty at end: Len = %d", m.Len())
	}
}

func TestMboxBatchConcurrentMPMC(t *testing.T) {
	// Batch producers vs batch consumers; every node must come back to the
	// pool exactly once. Run under -race this also exercises the
	// reserve-run-then-CAS claim path against concurrent slot releases.
	const (
		producers = 4
		consumers = 4
		perProd   = 1500
		batchMax  = 8
	)
	a := newTestArena(t, 256, 8)
	pool := NewPool(a)
	m, _ := NewMbox(64)

	var produced, consumed sync.WaitGroup
	done := make(chan struct{})

	consumed.Add(consumers)
	for c := 0; c < consumers; c++ {
		go func() {
			defer consumed.Done()
			out := make([]*Node, batchMax)
			for {
				got := m.DequeueBatch(out)
				if got == 0 {
					select {
					case <-done:
						for {
							if got := m.DequeueBatch(out); got == 0 {
								return
							} else if err := pool.PutBatch(out[:got]); err != nil {
								t.Errorf("PutBatch: %v", err)
								return
							}
						}
					default:
						runtime.Gosched()
						continue
					}
				}
				if err := pool.PutBatch(out[:got]); err != nil {
					t.Errorf("PutBatch: %v", err)
					return
				}
			}
		}()
	}

	produced.Add(producers)
	for p := 0; p < producers; p++ {
		go func() {
			defer produced.Done()
			batch := make([]*Node, batchMax)
			sent := 0
			for sent < perProd {
				want := batchMax
				if rem := perProd - sent; rem < want {
					want = rem
				}
				got := pool.GetBatch(batch[:want])
				if got == 0 {
					runtime.Gosched()
					continue
				}
				queued := 0
				for queued < got {
					n := m.EnqueueBatch(batch[queued:got])
					if n == 0 {
						runtime.Gosched()
						continue
					}
					queued += n
				}
				sent += got
			}
		}()
	}

	produced.Wait()
	close(done)
	consumed.Wait()

	if pool.Free() != 256 {
		t.Fatalf("pool Free = %d after batch MPMC churn, want 256 (leaked or duplicated nodes)", pool.Free())
	}
}

func TestPoolGetBatchPutBatch(t *testing.T) {
	a := newTestArena(t, 8, 16)
	p := NewPool(a)
	out := make([]*Node, 6)
	got := p.GetBatch(out)
	if got != 6 {
		t.Fatalf("GetBatch = %d, want 6", got)
	}
	seen := map[uint32]bool{}
	for i := 0; i < got; i++ {
		if out[i] == nil {
			t.Fatalf("GetBatch handed out nil at %d", i)
		}
		if seen[out[i].Index()] {
			t.Fatalf("node %d handed out twice in one batch", out[i].Index())
		}
		seen[out[i].Index()] = true
		if out[i].Len() != 0 {
			t.Fatalf("batch node %d has stale length %d", out[i].Index(), out[i].Len())
		}
	}
	if p.Free() != 2 {
		t.Fatalf("Free after GetBatch(6) = %d, want 2", p.Free())
	}
	// Partial batch when the freelist is shorter than the request.
	rest := make([]*Node, 6)
	if got := p.GetBatch(rest); got != 2 {
		t.Fatalf("GetBatch on pool of 2 = %d, want 2", got)
	}
	if p.GetBatch(rest) != 0 {
		t.Fatal("exhausted pool returned nodes")
	}
	if err := p.PutBatch(out); err != nil {
		t.Fatalf("PutBatch: %v", err)
	}
	if err := p.PutBatch(rest[:2]); err != nil {
		t.Fatalf("PutBatch rest: %v", err)
	}
	if p.Free() != 8 {
		t.Fatalf("Free after PutBatch = %d, want 8", p.Free())
	}
	if err := p.PutBatch(nil); err != nil {
		t.Fatalf("empty PutBatch: %v", err)
	}
	if p.GetBatch(nil) != 0 {
		t.Fatal("empty GetBatch returned nodes")
	}
}

func TestPoolPutBatchValidation(t *testing.T) {
	a1 := newTestArena(t, 2, 16)
	a2 := newTestArena(t, 2, 16)
	p := NewPool(a1)
	own := p.Get()
	foreign, _ := a2.Node(0)
	if err := p.PutBatch([]*Node{own, foreign}); err == nil {
		t.Fatal("PutBatch accepted a node from a different arena")
	}
	if err := p.PutBatch([]*Node{own, nil}); err == nil {
		t.Fatal("PutBatch accepted nil")
	}
	// The rejected batch must not have corrupted the freelist.
	if err := p.Put(own); err != nil {
		t.Fatalf("Put after rejected batch: %v", err)
	}
	if p.Free() != 2 {
		t.Fatalf("Free = %d, want 2", p.Free())
	}
}

func TestPoolBatchConcurrentChurn(t *testing.T) {
	const (
		workers = 8
		rounds  = 3000
	)
	a := newTestArena(t, 64, 32)
	p := NewPool(a)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id byte) {
			defer wg.Done()
			batch := make([]*Node, 4)
			for i := 0; i < rounds; i++ {
				got := p.GetBatch(batch)
				if got == 0 {
					runtime.Gosched()
					continue
				}
				for _, n := range batch[:got] {
					buf := n.Buf()
					for j := range buf {
						buf[j] = id
					}
					for j := range buf {
						if buf[j] != id {
							t.Errorf("node %d corrupted while owned", n.Index())
							return
						}
					}
				}
				if err := p.PutBatch(batch[:got]); err != nil {
					t.Errorf("PutBatch: %v", err)
					return
				}
			}
		}(byte(w + 1))
	}
	wg.Wait()
	if p.Free() != 64 {
		t.Fatalf("Free after batch churn = %d, want 64 (leaked or duplicated nodes)", p.Free())
	}
}
