// Package mem provides the EActors memory substrate: preallocated node
// arenas, LIFO pools and FIFO mboxes (Section 3.3 of the paper).
//
// A node is a fixed-size message buffer with a small header. Pools hand
// out free nodes (LIFO, like the paper's stack-based pools); mboxes link
// in-flight nodes between eactors (FIFO). Both structures are lock-free,
// multi-producer/multi-consumer, and never allocate on the message path —
// the paper's replacement for SGX SDK synchronisation, which Figure 1
// shows to be catastrophically slow inside enclaves. Where the paper uses
// Hardware Lock Elision, this implementation uses CAS loops: a tagged
// Treiber stack for pools (ABA-safe via a 32-bit version counter) and a
// bounded Vyukov ring for mboxes.
package mem

import (
	"fmt"
	"sync/atomic"
)

// Node is a preallocated message buffer. While a node is held by exactly
// one owner (popped from a pool or dequeued from an mbox), its payload
// may be read and written freely; handing it to a pool or mbox transfers
// ownership.
type Node struct {
	index uint32        // position in the arena, used by pool freelists
	next  atomic.Uint32 // freelist link: index+1 encoding, 0 = nil
	size  int           // used payload length
	buf   []byte        // fixed-capacity payload backing

	// Reserved trace header: set by a traced sender before enqueue, read
	// by the receiver after dequeue. Plain fields — the mbox sequence
	// atomics order the hand-off (same happens-before argument as size),
	// and traceID zero means untraced.
	traceID   uint64
	traceSpan uint32
	traceEnq  int64 // UnixNano enqueue timestamp for dwell spans

	// meta is an owner-private scratch word ordered by the same mbox
	// hand-off. Switchless rings use it for the record count of a sealed
	// segment; zero means "one plain record" for every other producer.
	meta uint32
}

// SetMeta stamps the node's scratch meta word (see the field comment).
func (n *Node) SetMeta(v uint32) { n.meta = v }

// Meta reads the node's scratch meta word.
func (n *Node) Meta() uint32 { return n.meta }

// SetTrace stamps the node's trace header: the owning trace, the
// sender's span (the receiver's parent) and the enqueue timestamp.
func (n *Node) SetTrace(traceID uint64, span uint32, enqNS int64) {
	n.traceID = traceID
	n.traceSpan = span
	n.traceEnq = enqNS
}

// Trace reads the node's trace header; traceID zero means untraced.
func (n *Node) Trace() (traceID uint64, span uint32, enqNS int64) {
	return n.traceID, n.traceSpan, n.traceEnq
}

// ClearTrace marks the node untraced. Only the trace ID is cleared —
// zero is the whole "untraced" contract — keeping the armed-but-
// unsampled send path to a single store.
func (n *Node) ClearTrace() { n.traceID = 0 }

// Index returns the node's arena slot (stable for the node's lifetime).
func (n *Node) Index() uint32 { return n.index }

// Cap returns the payload capacity in bytes.
func (n *Node) Cap() int { return len(n.buf) }

// Len returns the used payload length.
func (n *Node) Len() int { return n.size }

// Payload returns the used portion of the node's buffer.
func (n *Node) Payload() []byte { return n.buf[:n.size] }

// Buf returns the full-capacity buffer; pair with SetLen after writing
// into it directly.
func (n *Node) Buf() []byte { return n.buf }

// SetLen sets the used payload length after a direct Buf write.
func (n *Node) SetLen(size int) error {
	if size < 0 || size > len(n.buf) {
		return fmt.Errorf("mem: SetLen(%d) outside [0,%d]", size, len(n.buf))
	}
	n.size = size
	return nil
}

// SetPayload copies p into the node buffer.
func (n *Node) SetPayload(p []byte) error {
	if len(p) > len(n.buf) {
		return fmt.Errorf("mem: payload %d bytes exceeds node capacity %d", len(p), len(n.buf))
	}
	copy(n.buf, p)
	n.size = len(p)
	return nil
}

// Arena is a set of preallocated nodes with a common payload capacity.
// The node payloads share one backing allocation, mirroring the paper's
// avoidance of dynamic memory allocation inside enclaves (EPC is scarce).
type Arena struct {
	nodes       []Node
	payloadSize int
}

// NewArena preallocates count nodes of payloadSize bytes each.
func NewArena(count, payloadSize int) (*Arena, error) {
	if count <= 0 {
		return nil, fmt.Errorf("mem: NewArena count %d must be positive", count)
	}
	if payloadSize <= 0 {
		return nil, fmt.Errorf("mem: NewArena payload size %d must be positive", payloadSize)
	}
	a := &Arena{
		nodes:       make([]Node, count),
		payloadSize: payloadSize,
	}
	backing := make([]byte, count*payloadSize)
	for i := range a.nodes {
		a.nodes[i].index = uint32(i)
		a.nodes[i].buf = backing[i*payloadSize : (i+1)*payloadSize : (i+1)*payloadSize]
	}
	return a, nil
}

// Len returns the number of nodes in the arena.
func (a *Arena) Len() int { return len(a.nodes) }

// PayloadSize returns the per-node payload capacity.
func (a *Arena) PayloadSize() int { return a.payloadSize }

// Node returns the node at the given arena index.
func (a *Arena) Node(index uint32) (*Node, error) {
	if int(index) >= len(a.nodes) {
		return nil, fmt.Errorf("mem: node index %d outside arena of %d", index, len(a.nodes))
	}
	return &a.nodes[index], nil
}

// Bytes returns the total payload bytes backing the arena.
func (a *Arena) Bytes() int { return len(a.nodes) * a.payloadSize }
