package mem

import (
	"runtime"
	"sync"
	"testing"
)

func BenchmarkPoolGetPut(b *testing.B) {
	a, err := NewArena(64, 256)
	if err != nil {
		b.Fatal(err)
	}
	p := NewPool(a)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := p.Get()
		if n == nil {
			b.Fatal("pool empty")
		}
		if err := p.Put(n); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPoolContended(b *testing.B) {
	a, err := NewArena(256, 64)
	if err != nil {
		b.Fatal(err)
	}
	p := NewPool(a)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			n := p.Get()
			if n == nil {
				runtime.Gosched()
				continue
			}
			_ = p.Put(n)
		}
	})
}

func BenchmarkMboxEnqueueDequeue(b *testing.B) {
	a, err := NewArena(1, 64)
	if err != nil {
		b.Fatal(err)
	}
	node, _ := a.Node(0)
	m, err := NewMbox(64)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !m.Enqueue(node) {
			b.Fatal("full")
		}
		if _, ok := m.Dequeue(); !ok {
			b.Fatal("empty")
		}
	}
}

// BenchmarkMboxPingPong measures the cross-goroutine hop cost through a
// pair of mboxes — the EActors message-path primitive.
func BenchmarkMboxPingPong(b *testing.B) {
	a, err := NewArena(2, 64)
	if err != nil {
		b.Fatal(err)
	}
	p := NewPool(a)
	fwd, _ := NewMbox(4)
	bwd, _ := NewMbox(4)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for served := 0; served < b.N; {
			n, ok := fwd.Dequeue()
			if !ok {
				runtime.Gosched() // single-core: let the producer run
				continue
			}
			for !bwd.Enqueue(n) {
				runtime.Gosched()
			}
			served++
		}
	}()

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := p.Get()
		for !fwd.Enqueue(n) {
			runtime.Gosched()
		}
		for {
			back, ok := bwd.Dequeue()
			if ok {
				_ = p.Put(back)
				break
			}
			runtime.Gosched()
		}
	}
	wg.Wait()
}

// BenchmarkMboxSingle is the per-message baseline for the batch fast
// path: every message pays its own pool trip and its own enqueue and
// dequeue CAS. BenchmarkMboxBatch* amortise those over a burst; the
// per-op numbers are directly comparable (all three count messages).
func BenchmarkMboxSingle(b *testing.B) {
	a, err := NewArena(64, 64)
	if err != nil {
		b.Fatal(err)
	}
	p := NewPool(a)
	m, _ := NewMbox(64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := p.Get()
		if n == nil || !m.Enqueue(n) {
			b.Fatal("single path stalled")
		}
		got, ok := m.Dequeue()
		if !ok {
			b.Fatal("empty")
		}
		_ = p.Put(got)
	}
}

func benchMboxBatch(b *testing.B, batch int) {
	a, err := NewArena(64, 64)
	if err != nil {
		b.Fatal(err)
	}
	p := NewPool(a)
	m, _ := NewMbox(64)
	nodes := make([]*Node, batch)
	out := make([]*Node, batch)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += batch {
		got := p.GetBatch(nodes)
		if got != batch {
			b.Fatalf("GetBatch = %d", got)
		}
		if m.EnqueueBatch(nodes) != batch {
			b.Fatal("EnqueueBatch stalled")
		}
		if m.DequeueBatch(out) != batch {
			b.Fatal("DequeueBatch stalled")
		}
		if err := p.PutBatch(out); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMboxBatch8(b *testing.B)  { benchMboxBatch(b, 8) }
func BenchmarkMboxBatch64(b *testing.B) { benchMboxBatch(b, 64) }

// BenchmarkAblationMboxCapacity shows the throughput effect of the ring
// size under a produce/consume burst pattern.
func BenchmarkAblationMboxCapacity(b *testing.B) {
	a, err := NewArena(4096, 8)
	if err != nil {
		b.Fatal(err)
	}
	for _, capacity := range []int{4, 64, 1024} {
		b.Run(map[int]string{4: "cap=4", 64: "cap=64", 1024: "cap=1024"}[capacity], func(b *testing.B) {
			p := NewPool(a)
			m, err := NewMbox(capacity)
			if err != nil {
				b.Fatal(err)
			}
			burst := capacity
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := 0; j < burst; j++ {
					n := p.Get()
					if n == nil || !m.Enqueue(n) {
						if n != nil {
							_ = p.Put(n)
						}
						break
					}
				}
				for {
					n, ok := m.Dequeue()
					if !ok {
						break
					}
					_ = p.Put(n)
				}
			}
		})
	}
}
