package mem

import (
	"fmt"
	"sync/atomic"
)

// Mbox is a bounded, lock-free, multi-producer/multi-consumer FIFO of
// node references (the paper's mbox abstraction, Section 3.3). It is a
// Vyukov ring: every slot carries a sequence number that encodes whether
// it is free for the next enqueue or holds a value for the next dequeue,
// so producers and consumers synchronise per slot without locks.
//
// An mbox never allocates: nodes flow from a pool, through mboxes, back
// to the pool.
type Mbox struct {
	mask  uint64
	slots []mboxSlot

	_      [48]byte // keep the hot counters on separate cache lines
	enqPos atomic.Uint64
	_      [56]byte
	deqPos atomic.Uint64
}

type mboxSlot struct {
	seq  atomic.Uint64
	node *Node
}

// NewMbox creates an mbox with the given capacity, which must be a power
// of two and at least 2.
func NewMbox(capacity int) (*Mbox, error) {
	if capacity < 2 || capacity&(capacity-1) != 0 {
		return nil, fmt.Errorf("mem: mbox capacity %d must be a power of two >= 2", capacity)
	}
	m := &Mbox{
		mask:  uint64(capacity - 1),
		slots: make([]mboxSlot, capacity),
	}
	for i := range m.slots {
		m.slots[i].seq.Store(uint64(i))
	}
	return m, nil
}

// Cap returns the mbox capacity.
func (m *Mbox) Cap() int { return len(m.slots) }

// Enqueue appends a node; it returns false when the mbox is full.
func (m *Mbox) Enqueue(node *Node) bool {
	if node == nil {
		return false
	}
	pos := m.enqPos.Load()
	for {
		slot := &m.slots[pos&m.mask]
		seq := slot.seq.Load()
		switch {
		case seq == pos:
			if m.enqPos.CompareAndSwap(pos, pos+1) {
				slot.node = node
				slot.seq.Store(pos + 1)
				return true
			}
			pos = m.enqPos.Load()
		case seq < pos:
			return false // ring is full
		default:
			pos = m.enqPos.Load()
		}
	}
}

// Dequeue removes the oldest node; ok is false when the mbox is empty.
func (m *Mbox) Dequeue() (node *Node, ok bool) {
	pos := m.deqPos.Load()
	for {
		slot := &m.slots[pos&m.mask]
		seq := slot.seq.Load()
		switch {
		case seq == pos+1:
			if m.deqPos.CompareAndSwap(pos, pos+1) {
				node = slot.node
				slot.node = nil
				slot.seq.Store(pos + m.mask + 1)
				return node, true
			}
			pos = m.deqPos.Load()
		case seq <= pos:
			return nil, false // ring is empty
		default:
			pos = m.deqPos.Load()
		}
	}
}

// EnqueueBatch appends a run of nodes with a single CAS on the enqueue
// cursor, preserving FIFO order: nodes[0] is dequeued first. It returns
// how many nodes were enqueued — fewer than len(nodes) when the ring
// has less free space. All nodes must be non-nil; on a partial enqueue
// the caller keeps ownership of nodes[n:].
//
// The reservation is safe because slot availability is stable: a slot
// whose sequence equals its enqueue round can only be claimed through
// the enqueue-cursor CAS (which we win for the whole run), and
// consumers only ever move slots *towards* availability.
func (m *Mbox) EnqueueBatch(nodes []*Node) int {
	if len(nodes) == 0 {
		return 0
	}
	pos := m.enqPos.Load()
	for {
		slot := &m.slots[pos&m.mask]
		seq := slot.seq.Load()
		switch {
		case seq == pos:
			// Count the run of free slots starting at pos. The scan
			// self-limits at capacity: after len(slots) steps it re-reads
			// the first slot, whose sequence no longer matches.
			n := 1
			for n < len(nodes) {
				next := m.slots[(pos+uint64(n))&m.mask].seq.Load()
				if next != pos+uint64(n) {
					break
				}
				n++
			}
			if !m.enqPos.CompareAndSwap(pos, pos+uint64(n)) {
				pos = m.enqPos.Load()
				continue
			}
			for i := 0; i < n; i++ {
				s := &m.slots[(pos+uint64(i))&m.mask]
				s.node = nodes[i]
				s.seq.Store(pos + uint64(i) + 1)
			}
			return n
		case seq < pos:
			return 0 // ring is full
		default:
			pos = m.enqPos.Load()
		}
	}
}

// DequeueBatch removes up to len(out) of the oldest nodes with a single
// CAS on the dequeue cursor, filling out in FIFO order and returning the
// count. A racing producer that has reserved but not yet published a
// slot truncates the run, so a batch never blocks on an in-flight
// enqueue.
func (m *Mbox) DequeueBatch(out []*Node) int {
	if len(out) == 0 {
		return 0
	}
	pos := m.deqPos.Load()
	for {
		slot := &m.slots[pos&m.mask]
		seq := slot.seq.Load()
		switch {
		case seq == pos+1:
			n := 1
			for n < len(out) {
				next := m.slots[(pos+uint64(n))&m.mask].seq.Load()
				if next != pos+uint64(n)+1 {
					break
				}
				n++
			}
			if !m.deqPos.CompareAndSwap(pos, pos+uint64(n)) {
				pos = m.deqPos.Load()
				continue
			}
			for i := 0; i < n; i++ {
				s := &m.slots[(pos+uint64(i))&m.mask]
				out[i] = s.node
				s.node = nil
				s.seq.Store(pos + uint64(i) + m.mask + 1)
			}
			return n
		case seq <= pos:
			return 0 // ring is empty
		default:
			pos = m.deqPos.Load()
		}
	}
}

// Len returns the approximate number of queued nodes.
func (m *Mbox) Len() int {
	n := int64(m.enqPos.Load()) - int64(m.deqPos.Load())
	if n < 0 {
		n = 0
	}
	if n > int64(len(m.slots)) {
		n = int64(len(m.slots))
	}
	return int(n)
}

// Empty reports whether the mbox currently holds no nodes.
func (m *Mbox) Empty() bool { return m.Len() == 0 }
