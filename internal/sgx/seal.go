package sgx

import (
	"crypto/aes"
	"crypto/cipher"
	"errors"
	"fmt"

	"github.com/eactors/eactors-go/internal/faults"
)

// ErrSealTooShort is returned when unsealing a blob shorter than the
// sealing envelope.
var ErrSealTooShort = errors.New("sgx: sealed blob too short")

// sealNonceSize is the AES-GCM nonce size used by the sealing envelope.
const sealNonceSize = 12

// SealOverhead is the number of bytes sealing adds to a plaintext
// (nonce + GCM tag).
const SealOverhead = sealNonceSize + 16

// Seal encrypts and authenticates data with the enclave's seal key
// (MRENCLAVE policy: only the same enclave identity on the same platform
// can unseal). aad is bound to the blob but not encrypted. The sealed
// blob layout is nonce || ciphertext+tag.
func (e *Enclave) Seal(plaintext, aad []byte) ([]byte, error) {
	start := e.platform.sealOpStart()
	gcm, err := e.sealAEAD()
	if err != nil {
		return nil, err
	}
	nonce := make([]byte, sealNonceSize, sealNonceSize+len(plaintext)+gcm.Overhead())
	e.ReadRand(nonce)
	blob := gcm.Seal(nonce, nonce, plaintext, aad)
	if inj := e.platform.flt.Load(); inj != nil {
		// Injected seal corruption: the blob authenticates against its
		// own key no longer, so the eventual Unseal rejects it — the
		// fault surfaces exactly where a bit-rotted sealed file would.
		if inj.At(faults.SiteSeal).Class == faults.SealCorrupt {
			corruptSealedBlob(blob)
		}
	}
	e.platform.observeSealOp(false, start)
	return blob, nil
}

// Unseal authenticates and decrypts a blob produced by Seal with the same
// enclave identity and aad.
func (e *Enclave) Unseal(sealed, aad []byte) ([]byte, error) {
	if len(sealed) < SealOverhead {
		return nil, ErrSealTooShort
	}
	start := e.platform.sealOpStart()
	gcm, err := e.sealAEAD()
	if err != nil {
		return nil, err
	}
	plaintext, err := gcm.Open(nil, sealed[:sealNonceSize], sealed[sealNonceSize:], aad)
	if err != nil {
		return nil, fmt.Errorf("sgx: unseal: %w", err)
	}
	e.platform.observeSealOp(true, start)
	return plaintext, nil
}

func (e *Enclave) sealAEAD() (cipher.AEAD, error) {
	blockCipher, err := aes.NewCipher(e.sealKey[:])
	if err != nil {
		return nil, fmt.Errorf("sgx: seal key: %w", err)
	}
	return cipher.NewGCM(blockCipher)
}
