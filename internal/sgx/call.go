package sgx

import (
	"errors"

	"github.com/eactors/eactors-go/internal/faults"
)

// This file models the SGX SDK's EDL-generated call path: ECalls enter an
// enclave, OCalls temporarily leave it. Both marshal their buffers across
// the boundary (the SDK's proxy/bridge memcpy), which is what the paper's
// native ping-pong baseline pays per message (Figure 11: the native curve
// peaks near the 32 KiB L1 size because of exactly this copy).

// ErrNotInEnclave is returned by OCall when the context is untrusted.
var ErrNotInEnclave = errors.New("sgx: OCall outside an enclave")

// ErrInEnclave is returned by ECall when the context is already inside an
// enclave other than the target; the SDK requires leaving first.
var ErrInEnclave = errors.New("sgx: ECall from inside a different enclave")

// ECall performs an SDK-style call into enclave e: marshal in, enter, run
// fn inside the enclave, exit, marshal out. in and out are the logical
// argument and result buffers; they are charged (and the copy modelled on
// scratch space) but ownership stays with the caller.
func (c *Context) ECall(e *Enclave, in, out []byte, fn func()) error {
	if e == nil {
		return errors.New("sgx: ECall: nil enclave")
	}
	if c.cur != Untrusted && c.cur != e.id {
		return ErrInEnclave
	}
	p := c.platform
	p.ecalls.Add(1)
	p.chargeCopy(len(in))
	prev := c.cur
	e.noteEnter()
	c.cross(faults.SiteEnter) // EENTER
	c.cur = e.id
	fn()
	c.cross(faults.SiteExit) // EEXIT
	e.noteExit()
	c.cur = prev
	p.chargeCopy(len(out))
	return nil
}

// OCall performs an SDK-style call out of the current enclave: marshal
// the arguments to untrusted memory, exit, run fn untrusted, re-enter,
// marshal results back.
func (c *Context) OCall(in, out []byte, fn func()) error {
	if c.cur == Untrusted {
		return ErrNotInEnclave
	}
	p := c.platform
	p.ocalls.Add(1)
	// The SDK allocates an untrusted buffer and copies the message out
	// before the exit (Section 6.2 discussion).
	p.chargeCopy(len(in))
	inside := c.cur
	insideEnclave, _ := p.Enclave(inside)
	if insideEnclave != nil {
		insideEnclave.noteExit()
	}
	c.cross(faults.SiteExit) // EEXIT
	c.cur = Untrusted
	fn()
	if insideEnclave != nil {
		insideEnclave.noteEnter()
	}
	c.cross(faults.SiteEnter) // EENTER
	c.cur = inside
	p.chargeCopy(len(out))
	return nil
}
