package sgx

import (
	"errors"
	"fmt"
	"time"

	"github.com/eactors/eactors-go/internal/faults"
	"github.com/eactors/eactors-go/internal/telemetry"
)

// Context is a per-thread execution context tracking which enclave the
// thread currently executes in. Entering and leaving enclaves charges
// boundary crossings; running code for an enclave the context is already
// inside is free — the property the EActors worker/deployment model
// exploits (Section 3.2: a worker whose eactors share an enclave never
// leaves it).
//
// A Context is not safe for concurrent use; create one per worker thread.
type Context struct {
	platform *Platform
	cur      EnclaveID

	// crossings counts the crossings performed by this context alone.
	crossings uint64

	// shard and rec are set by AttachTelemetry (see telemetry.go); rec
	// traces each crossing as an EvCrossing flight-recorder event.
	shard int
	rec   *telemetry.Recorder

	// Crossing capture for causal tracing (ArmCrossCapture): the wall
	// start and duration of the most recent crossing, retro-attributed
	// to a traced invocation by the worker after the fact.
	captureCross bool
	lastCrossNS  int64
	lastCrossDur int64
}

// NewContext returns a context starting in the untrusted application.
func NewContext(p *Platform) *Context {
	return &Context{platform: p}
}

// Platform returns the platform this context executes on.
func (c *Context) Platform() *Platform { return c.platform }

// Current returns the enclave the context is inside (Untrusted if none).
func (c *Context) Current() EnclaveID { return c.cur }

// InEnclave reports whether the context is inside any enclave.
func (c *Context) InEnclave() bool { return c.cur != Untrusted }

// Crossings returns the number of boundary crossings this context paid.
func (c *Context) Crossings() uint64 { return c.crossings }

// MoveTo transitions the context to the execution domain of target
// (Untrusted allowed). Moving between two distinct enclaves costs an exit
// plus an enter; moving to the current domain is free.
func (c *Context) MoveTo(target EnclaveID) error {
	if target == c.cur {
		return nil
	}
	if target != Untrusted {
		if _, ok := c.platform.Enclave(target); !ok {
			return fmt.Errorf("sgx: MoveTo: unknown enclave %d", target)
		}
	}
	if c.cur != Untrusted {
		if prev, ok := c.platform.Enclave(c.cur); ok {
			prev.noteExit()
		}
		c.cross(faults.SiteExit) // EEXIT from the current enclave
	}
	if target != Untrusted {
		next, _ := c.platform.Enclave(target)
		next.noteEnter()
		c.cross(faults.SiteEnter) // EENTER into the target enclave
	}
	c.cur = target
	return nil
}

// Enter moves the context into enclave e.
func (c *Context) Enter(e *Enclave) error {
	if e == nil {
		return errors.New("sgx: Enter: nil enclave")
	}
	return c.MoveTo(e.id)
}

// Exit moves the context back to the untrusted application.
func (c *Context) Exit() {
	_ = c.MoveTo(Untrusted)
}

// ArmCrossCapture makes the context remember the wall-clock start and
// duration of each crossing so a tracing worker can attribute the
// transition that preceded a traced invocation. Off by default: the
// capture costs one time.Now per crossing.
func (c *Context) ArmCrossCapture() { c.captureCross = true }

// LastCrossing returns the wall start (UnixNano) and duration of the
// most recent crossing, or zeros when capture is off or nothing has
// crossed yet.
func (c *Context) LastCrossing() (startNS, durNS int64) {
	return c.lastCrossNS, c.lastCrossDur
}

func (c *Context) cross(site faults.Site) {
	c.crossings++
	var wallStart time.Time
	if c.captureCross {
		wallStart = time.Now()
	}
	d := c.platform.chargeCrossing()
	if inj := c.platform.flt.Load(); inj != nil {
		// Injected crossing faults: delayed transitions and transient
		// EPC spikes, attributed to the domain at call time.
		c.platform.applyCrossingFault(inj.At(site), c.cur)
	}
	if c.rec != nil {
		// ID is the domain crossed out of / into (c.cur at call time).
		c.rec.Record(telemetry.EvCrossing, uint32(c.cur), uint64(d))
	}
	if c.captureCross {
		// Wall duration, so injected delays and EPC spikes show up in
		// the crossing span just as they do in real latency.
		c.lastCrossNS = wallStart.UnixNano()
		c.lastCrossDur = int64(time.Since(wallStart))
	}
}
