package sgx

import (
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// TestMutexCrossingAccounting pins down the transition charges of every
// Mutex path: in-enclave Lock/Unlock without a blocked waiter pays zero
// crossings, an actually-blocked waiter pays exactly one EEXIT/EENTER
// pair, and an unlocker that signals a real sleeper pays exactly one
// pair for the set_untrusted_event OCall.
func TestMutexCrossingAccounting(t *testing.T) {
	p := NewPlatform(WithCostModel(ZeroCostModel()))
	e, err := p.CreateEnclave("locker", 0)
	if err != nil {
		t.Fatalf("CreateEnclave: %v", err)
	}
	m := NewMutex(p)

	ctx := NewContext(p)
	if err := ctx.Enter(e); err != nil {
		t.Fatalf("Enter: %v", err)
	}

	// Uncontended in-enclave acquire and release: no transitions.
	base := ctx.Crossings()
	m.Lock(ctx)
	m.Unlock(ctx)
	if got := ctx.Crossings() - base; got != 0 {
		t.Fatalf("uncontended in-enclave Lock/Unlock paid %d crossings, want 0", got)
	}

	// Contended: the holder keeps the lock until the contender has
	// committed to sleeping, so the contender must take the
	// untrusted-event path exactly once.
	m.Lock(ctx)
	var contenderCrossings uint64
	acquired := make(chan struct{})
	go func() {
		defer close(acquired)
		c2 := NewContext(p)
		if err := c2.Enter(e); err != nil {
			t.Errorf("contender Enter: %v", err)
			return
		}
		pre := c2.Crossings()
		m.Lock(c2)
		contenderCrossings = c2.Crossings() - pre
		m.Unlock(c2) // nobody sleeping: must stay free of crossings
		contenderCrossings = c2.Crossings() - pre
	}()
	for m.sleepers.Load() == 0 {
		runtime.Gosched()
	}
	preUnlock := ctx.Crossings()
	m.Unlock(ctx)
	unlockCrossings := ctx.Crossings() - preUnlock
	select {
	case <-acquired:
	case <-time.After(10 * time.Second):
		t.Fatal("contender never acquired the lock")
	}

	if contenderCrossings != 2 {
		t.Fatalf("blocked contender paid %d crossings, want exactly 2 (EEXIT+EENTER)", contenderCrossings)
	}
	if unlockCrossings != 2 {
		t.Fatalf("signalling Unlock paid %d crossings, want exactly 2 (OCall pair)", unlockCrossings)
	}
	if s := p.Snapshot(); s.MutexSleeps != 1 {
		t.Fatalf("MutexSleeps = %d, want 1", s.MutexSleeps)
	}
}

// TestMutexNoLostWakeup hammers the window between a waiter's predicate
// check and its sleeper registration. Unlock must make its sleeper
// check under the event lock: a lock-free read can observe zero after
// the waiter has committed to blocking but before it registered,
// return without signalling, and leave the waiter asleep on a free
// mutex. Two threads ping-ponging the lock hit that window within a
// few thousand iterations; a lost wakeup shows up as one side wedging
// after the other finishes.
func TestMutexNoLostWakeup(t *testing.T) {
	p := NewPlatform(WithCostModel(ZeroCostModel()))
	m := NewMutex(p)
	const iters = 20000
	hammer := func(done chan<- struct{}) {
		for i := 0; i < iters; i++ {
			m.Lock(nil)
			m.Unlock(nil)
		}
		done <- struct{}{}
	}
	d1, d2 := make(chan struct{}), make(chan struct{})
	go hammer(d1)
	go hammer(d2)
	for _, d := range []chan struct{}{d1, d2} {
		select {
		case <-d:
		case <-time.After(30 * time.Second):
			t.Fatal("lock ping-pong wedged: lost wakeup")
		}
	}
}

// TestEventWaitNearMiss asserts the property the mutex fix relies on: a
// waiter whose predicate is already false never blocks, so the caller
// charges no transition pair.
func TestEventWaitNearMiss(t *testing.T) {
	ev := NewEvent()
	if waited := ev.Wait(func() bool { return false }, nil); waited {
		t.Fatal("Wait blocked although the predicate was already false")
	}
	// And a real wait reports that it blocked.
	var flag atomic.Int32
	flag.Store(1)
	done := make(chan bool)
	committed := make(chan struct{})
	go func() {
		done <- ev.Wait(func() bool { return flag.Load() != 0 }, func() { close(committed) })
	}()
	<-committed
	flag.Store(0)
	ev.Set()
	if waited := <-done; !waited {
		t.Fatal("Wait returned without blocking despite a true predicate")
	}
}
