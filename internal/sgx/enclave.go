package sgx

import (
	"crypto/hmac"
	"crypto/sha256"
	"fmt"
	"sync/atomic"
)

// Measurement is the SHA-256 identity (MRENCLAVE analogue) of an enclave.
type Measurement [32]byte

// String renders the first bytes of the measurement in hex.
func (m Measurement) String() string {
	return fmt.Sprintf("%x", m[:8])
}

// Enclave is a simulated SGX enclave: an isolated execution identity with
// EPC accounting, a sealing key and attestation support. Code placed "in"
// an enclave is ordinary Go code executed while a Context is entered into
// the enclave; the simulation enforces and charges the costs of that
// placement rather than memory isolation.
type Enclave struct {
	platform *Platform
	id       EnclaveID
	name     string
	meas     Measurement
	sealKey  [32]byte

	pages   atomic.Int64
	evicted atomic.Uint64
	drbg    *drbg

	// tcsLimit is the number of thread control structures (concurrent
	// threads the enclave admits); occupancy tracks current residents.
	tcsLimit atomic.Int64
	occupied atomic.Int64
}

// DefaultTCSCount matches the SGX SDK's common TCSNum configuration.
const DefaultTCSCount = 8

// SetTCSLimit overrides the enclave's thread-slot count (the SDK's
// TCSNum). Entering beyond the limit is recorded in the platform stats
// as a TCS overflow — on hardware the EENTER would fail and the thread
// would have to wait, so deployments (like the paper's) size workers to
// stay within it.
func (e *Enclave) SetTCSLimit(n int) {
	if n > 0 {
		e.tcsLimit.Store(int64(n))
	}
}

// TCSLimit returns the configured thread-slot count.
func (e *Enclave) TCSLimit() int { return int(e.tcsLimit.Load()) }

// Occupancy returns the number of contexts currently inside the enclave.
func (e *Enclave) Occupancy() int { return int(e.occupied.Load()) }

func (e *Enclave) noteEnter() {
	if e.occupied.Add(1) > e.tcsLimit.Load() {
		e.platform.tcsOverflows.Add(1)
	}
}

func (e *Enclave) noteExit() {
	e.occupied.Add(-1)
}

func newEnclave(p *Platform, id EnclaveID, name string) *Enclave {
	e := &Enclave{platform: p, id: id, name: name}
	// The measurement binds the enclave's logical identity; derived from
	// the name so that the "same code" re-created later attests equal.
	e.meas = sha256.Sum256([]byte("measurement:" + name))
	// The seal key derives from the platform secret and the measurement
	// (MRENCLAVE sealing policy): same enclave on same platform unseals.
	mac := hmac.New(sha256.New, p.attestSecret[:])
	mac.Write([]byte("seal"))
	mac.Write(e.meas[:])
	copy(e.sealKey[:], mac.Sum(nil))
	e.drbg = newDRBG(e.sealKey, p)
	e.tcsLimit.Store(DefaultTCSCount)
	return e
}

// ID returns the enclave identity on its platform.
func (e *Enclave) ID() EnclaveID { return e.id }

// Name returns the configured enclave name.
func (e *Enclave) Name() string { return e.name }

// Measurement returns the enclave identity hash.
func (e *Enclave) Measurement() Measurement { return e.meas }

// Platform returns the owning platform.
func (e *Enclave) Platform() *Platform { return e.platform }

// PagesResident reports the EPC pages currently accounted to the enclave.
func (e *Enclave) PagesResident() int64 { return e.pages.Load() }

// EvictedPages reports the cumulative pages evicted under EPC pressure
// that were charged to this enclave (allocation overflow and touch
// misses alike) — the per-enclave share of Platform stats' evictions.
func (e *Enclave) EvictedPages() uint64 { return e.evicted.Load() }

// AllocPages accounts n EPC pages to the enclave. If the platform-wide
// budget is exceeded, the eviction (re-encryption) penalty is charged for
// every page past the budget, reproducing SGX paging degradation.
func (e *Enclave) AllocPages(n int) error {
	if n < 0 {
		return fmt.Errorf("sgx: AllocPages(%d): negative count", n)
	}
	if n == 0 {
		return nil
	}
	p := e.platform
	used := p.epcUsed.Add(int64(n))
	e.pages.Add(int64(n))
	if over := used - p.epcPages; over > 0 {
		evict := int64(n)
		if over < evict {
			evict = over
		}
		p.evictedPages.Add(uint64(evict))
		e.evicted.Add(uint64(evict))
		p.noteEviction(e.id, evict)
		p.costs.ChargeCycles(float64(evict) * float64(p.costs.PageEvictCycles))
	}
	return nil
}

// AllocBytes accounts the pages covering n bytes.
func (e *Enclave) AllocBytes(n int) error {
	return e.AllocPages((n + PageBytes - 1) / PageBytes)
}

// FreePages releases n EPC pages.
func (e *Enclave) FreePages(n int) {
	if n <= 0 {
		return
	}
	e.pages.Add(-int64(n))
	e.platform.epcUsed.Add(-int64(n))
}

// TouchPages models accessing n resident pages under EPC pressure: when
// the platform working set exceeds the EPC budget, a fraction of the
// touched pages miss and pay the eviction penalty. It reproduces the
// steady-state paging slowdown of over-committed enclaves.
func (e *Enclave) TouchPages(n int) {
	if n <= 0 {
		return
	}
	p := e.platform
	used := p.epcUsed.Load()
	if used <= p.epcPages || p.epcPages == 0 {
		return
	}
	// Miss ratio approximates (resident beyond budget) / working set.
	missRatio := float64(used-p.epcPages) / float64(used)
	misses := int64(float64(n) * missRatio)
	if misses <= 0 {
		return
	}
	p.evictedPages.Add(uint64(misses))
	e.evicted.Add(uint64(misses))
	p.noteEviction(e.id, misses)
	p.costs.ChargeCycles(float64(misses) * float64(p.costs.PageEvictCycles))
}
