package sgx

import (
	"sync"
	"testing"
)

func TestTCSDefaults(t *testing.T) {
	p := testPlatform(t)
	e, _ := p.CreateEnclave("tcs", 0)
	if e.TCSLimit() != DefaultTCSCount {
		t.Fatalf("TCSLimit = %d, want %d", e.TCSLimit(), DefaultTCSCount)
	}
	e.SetTCSLimit(2)
	if e.TCSLimit() != 2 {
		t.Fatalf("TCSLimit = %d after set", e.TCSLimit())
	}
	e.SetTCSLimit(0) // invalid: ignored
	if e.TCSLimit() != 2 {
		t.Fatalf("TCSLimit changed by invalid set: %d", e.TCSLimit())
	}
}

func TestTCSOccupancyTracking(t *testing.T) {
	p := testPlatform(t)
	e, _ := p.CreateEnclave("occ", 0)
	ctx1 := NewContext(p)
	ctx2 := NewContext(p)
	if err := ctx1.Enter(e); err != nil {
		t.Fatal(err)
	}
	if err := ctx2.Enter(e); err != nil {
		t.Fatal(err)
	}
	if got := e.Occupancy(); got != 2 {
		t.Fatalf("Occupancy = %d, want 2", got)
	}
	ctx1.Exit()
	if got := e.Occupancy(); got != 1 {
		t.Fatalf("Occupancy after exit = %d, want 1", got)
	}
	ctx2.Exit()
	if got := e.Occupancy(); got != 0 {
		t.Fatalf("Occupancy after both exits = %d", got)
	}
	if p.Snapshot().TCSOverflows != 0 {
		t.Fatal("overflow recorded within the limit")
	}
}

func TestTCSOverflowCounted(t *testing.T) {
	p := testPlatform(t)
	e, _ := p.CreateEnclave("tight", 0)
	e.SetTCSLimit(2)
	ctxs := make([]*Context, 4)
	for i := range ctxs {
		ctxs[i] = NewContext(p)
		if err := ctxs[i].Enter(e); err != nil {
			t.Fatal(err)
		}
	}
	// Entries 3 and 4 exceeded the two slots.
	if got := p.Snapshot().TCSOverflows; got != 2 {
		t.Fatalf("TCSOverflows = %d, want 2", got)
	}
	for _, c := range ctxs {
		c.Exit()
	}
}

func TestTCSWithECallOCall(t *testing.T) {
	p := testPlatform(t)
	e, _ := p.CreateEnclave("calls", 0)
	ctx := NewContext(p)
	_ = ctx.ECall(e, nil, nil, func() {
		if e.Occupancy() != 1 {
			t.Errorf("Occupancy in ECall = %d", e.Occupancy())
		}
		_ = ctx.OCall(nil, nil, func() {
			if e.Occupancy() != 0 {
				t.Errorf("Occupancy in OCall = %d", e.Occupancy())
			}
		})
		if e.Occupancy() != 1 {
			t.Errorf("Occupancy after OCall = %d", e.Occupancy())
		}
	})
	if e.Occupancy() != 0 {
		t.Fatalf("Occupancy after ECall = %d", e.Occupancy())
	}
}

func TestTCSConcurrent(t *testing.T) {
	p := testPlatform(t)
	e, _ := p.CreateEnclave("conc", 0)
	e.SetTCSLimit(64)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx := NewContext(p)
			for j := 0; j < 500; j++ {
				_ = ctx.Enter(e)
				ctx.Exit()
			}
		}()
	}
	wg.Wait()
	if got := e.Occupancy(); got != 0 {
		t.Fatalf("Occupancy leaked: %d", got)
	}
}
