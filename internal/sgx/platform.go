package sgx

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/eactors/eactors-go/internal/faults"
)

// EnclaveID identifies an enclave on a Platform. The zero value denotes
// the untrusted application context.
type EnclaveID uint32

// Untrusted is the pseudo-identity of the untrusted application context.
const Untrusted EnclaveID = 0

// Stats aggregates simulator counters. All fields are monotonically
// increasing and safe for concurrent access through Platform methods.
type Stats struct {
	// Crossings counts boundary crossings (each enter or exit is one).
	Crossings uint64
	// ECalls counts ECall round trips.
	ECalls uint64
	// OCalls counts OCall round trips.
	OCalls uint64
	// CopiedBytes counts bytes marshalled across the boundary by the
	// SDK-style call path.
	CopiedBytes uint64
	// EvictedPages counts EPC pages evicted under memory pressure.
	EvictedPages uint64
	// RandBytes counts trusted RNG bytes produced.
	RandBytes uint64
	// MutexSleeps counts Mutex acquisitions that took the
	// exit-enclave-and-sleep path.
	MutexSleeps uint64
	// TCSOverflows counts enclave entries beyond the enclave's thread
	// slots (on hardware these would stall the entering thread).
	TCSOverflows uint64
	// CrossingsAvoided counts boundary crossings that switchless call
	// rings absorbed: each message relayed by a proxy instead of a
	// blocking hop saves an EEXIT and an EENTER (two crossings).
	CrossingsAvoided uint64
	// ProxyParks counts switchless proxies exhausting their spin budget
	// and parking on an untrusted event.
	ProxyParks uint64
}

// Platform owns a set of simulated enclaves, the shared EPC budget and
// the attestation infrastructure. It is safe for concurrent use.
type Platform struct {
	costs *CostModel

	epcPages     int64 // total budget, in pages
	epcUsed      atomic.Int64
	attestSecret [32]byte

	mu       sync.RWMutex
	enclaves map[EnclaveID]*Enclave
	nextID   uint32

	// tel is nil until AttachTelemetry; charge paths pay one atomic
	// pointer load to find out.
	tel atomic.Pointer[platformTelemetry]

	// flt is nil until AttachFaults; hook sites pay the same single
	// atomic pointer load.
	flt atomic.Pointer[faults.Injector]

	crossings    atomic.Uint64
	ecalls       atomic.Uint64
	ocalls       atomic.Uint64
	copiedBytes  atomic.Uint64
	evictedPages atomic.Uint64
	randBytes    atomic.Uint64
	mutexSleeps  atomic.Uint64
	tcsOverflows atomic.Uint64

	crossingsAvoided atomic.Uint64
	proxyParks       atomic.Uint64
}

// PlatformOption customises NewPlatform.
type PlatformOption func(*platformConfig)

type platformConfig struct {
	costs    *CostModel
	epcBytes int64
	secret   []byte
}

// WithCostModel sets the platform cost model (default DefaultCostModel).
func WithCostModel(m *CostModel) PlatformOption {
	return func(c *platformConfig) { c.costs = m }
}

// WithEPCBytes sets the usable EPC budget in bytes (default 93 MiB).
func WithEPCBytes(n int64) PlatformOption {
	return func(c *platformConfig) { c.epcBytes = n }
}

// WithPlatformSecret seeds the platform attestation/sealing secret,
// making measurements and seal keys reproducible across restarts of the
// same logical machine.
func WithPlatformSecret(secret []byte) PlatformOption {
	return func(c *platformConfig) { c.secret = secret }
}

// NewPlatform creates a simulated SGX platform.
func NewPlatform(opts ...PlatformOption) *Platform {
	cfg := platformConfig{
		costs:    DefaultCostModel(),
		epcBytes: DefaultEPCBytes,
	}
	for _, o := range opts {
		o(&cfg)
	}
	p := &Platform{
		costs:    cfg.costs,
		epcPages: (cfg.epcBytes + PageBytes - 1) / PageBytes,
		enclaves: make(map[EnclaveID]*Enclave),
	}
	if len(cfg.secret) > 0 {
		p.attestSecret = sha256.Sum256(cfg.secret)
	} else {
		p.attestSecret = sha256.Sum256([]byte("eactors-go simulated platform"))
	}
	return p
}

// Costs returns the platform cost model.
func (p *Platform) Costs() *CostModel { return p.costs }

// CreateEnclave builds and "loads" an enclave with the given name and an
// initial code+data size in bytes. Loading charges the page-by-page EPC
// copy the SDK performs at enclave creation.
func (p *Platform) CreateEnclave(name string, sizeBytes int) (*Enclave, error) {
	if name == "" {
		return nil, errors.New("sgx: enclave name must not be empty")
	}
	p.mu.Lock()
	p.nextID++
	id := EnclaveID(p.nextID)
	for _, e := range p.enclaves {
		if e.name == name {
			p.mu.Unlock()
			return nil, fmt.Errorf("sgx: enclave %q already exists", name)
		}
	}
	e := newEnclave(p, id, name)
	p.enclaves[id] = e
	p.mu.Unlock()

	pages := (sizeBytes + PageBytes - 1) / PageBytes
	if pages > 0 {
		if err := e.AllocPages(pages); err != nil {
			p.mu.Lock()
			delete(p.enclaves, id)
			p.mu.Unlock()
			return nil, err
		}
		// Enclave creation copies code and data page by page into the
		// EPC (EADD + EEXTEND); charge one cold copy per page.
		p.costs.ChargeCycles(float64(pages) * p.costs.CopyCyclesPerByteCold * PageBytes)
	}
	if t := p.tel.Load(); t != nil {
		t.registerEnclaveGauge(e)
	}
	return e, nil
}

// DestroyEnclave removes an enclave and releases its EPC pages.
func (p *Platform) DestroyEnclave(e *Enclave) {
	if e == nil {
		return
	}
	p.mu.Lock()
	delete(p.enclaves, e.id)
	p.mu.Unlock()
	p.epcUsed.Add(-e.pages.Swap(0))
}

// Enclave looks up an enclave by ID. The untrusted ID yields nil, false.
func (p *Platform) Enclave(id EnclaveID) (*Enclave, bool) {
	if id == Untrusted {
		return nil, false
	}
	p.mu.RLock()
	defer p.mu.RUnlock()
	e, ok := p.enclaves[id]
	return e, ok
}

// EnclaveByName looks up an enclave by name.
func (p *Platform) EnclaveByName(name string) (*Enclave, bool) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	for _, e := range p.enclaves {
		if e.name == name {
			return e, true
		}
	}
	return nil, false
}

// EPCUsedPages reports the pages currently resident in the simulated EPC.
func (p *Platform) EPCUsedPages() int64 { return p.epcUsed.Load() }

// EPCBudgetPages reports the total EPC budget in pages.
func (p *Platform) EPCBudgetPages() int64 { return p.epcPages }

// Snapshot returns a copy of the simulator counters.
func (p *Platform) Snapshot() Stats {
	return Stats{
		Crossings:    p.crossings.Load(),
		ECalls:       p.ecalls.Load(),
		OCalls:       p.ocalls.Load(),
		CopiedBytes:  p.copiedBytes.Load(),
		EvictedPages: p.evictedPages.Load(),
		RandBytes:    p.randBytes.Load(),
		MutexSleeps:  p.mutexSleeps.Load(),
		TCSOverflows: p.tcsOverflows.Load(),

		CrossingsAvoided: p.crossingsAvoided.Load(),
		ProxyParks:       p.proxyParks.Load(),
	}
}

// Delta returns the counter increments since an earlier snapshot.
func (s Stats) Delta(earlier Stats) Stats {
	return Stats{
		Crossings:    s.Crossings - earlier.Crossings,
		ECalls:       s.ECalls - earlier.ECalls,
		OCalls:       s.OCalls - earlier.OCalls,
		CopiedBytes:  s.CopiedBytes - earlier.CopiedBytes,
		EvictedPages: s.EvictedPages - earlier.EvictedPages,
		RandBytes:    s.RandBytes - earlier.RandBytes,
		MutexSleeps:  s.MutexSleeps - earlier.MutexSleeps,
		TCSOverflows: s.TCSOverflows - earlier.TCSOverflows,

		CrossingsAvoided: s.CrossingsAvoided - earlier.CrossingsAvoided,
		ProxyParks:       s.ProxyParks - earlier.ProxyParks,
	}
}

// NoteCrossingsAvoided credits n boundary crossings that a switchless
// relay absorbed. The accounting convention is two per message (the
// EEXIT/EENTER pair a blocking hop would have paid).
func (p *Platform) NoteCrossingsAvoided(n uint64) {
	if n != 0 {
		p.crossingsAvoided.Add(n)
	}
}

// NoteProxyPark counts one switchless proxy parking on its event after
// exhausting its spin budget.
func (p *Platform) NoteProxyPark() {
	p.proxyParks.Add(1)
}

// chargeCrossing burns one boundary-crossing cost and counts it. It
// returns the charged duration so contexts can trace it.
func (p *Platform) chargeCrossing() time.Duration {
	p.crossings.Add(1)
	d := p.costs.CyclesToDuration(float64(p.costs.CrossCycles))
	if t := p.tel.Load(); t != nil {
		t.crossNs.Observe(uint64(d))
	}
	Spin(d)
	return d
}

// chargeCopy burns the marshalling cost for n bytes and counts them.
func (p *Platform) chargeCopy(n int) {
	if n <= 0 {
		return
	}
	p.copiedBytes.Add(uint64(n))
	p.costs.ChargeCycles(p.costs.CopyCycles(n))
}
