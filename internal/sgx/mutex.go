package sgx

import (
	"sync/atomic"
	"time"

	"github.com/eactors/eactors-go/internal/faults"
)

// Mutex models the SGX SDK's sgx_thread_mutex. A thread inside an
// enclave cannot be suspended and resumed by the OS while holding
// in-enclave wait state, so the SDK implements a *barging* mutex:
//
//  1. try to grab the lock word with a CAS;
//  2. spin a bounded budget retrying;
//  3. exit the enclave (EEXIT) and block on an untrusted event
//     (sgx_thread_wait_untrusted_event OCall);
//  4. once signalled, re-enter (EENTER) and RETRY from the top — a
//     fresh arrival may have barged in, sending the thread back to
//     sleep and charging the transition pair again.
//
// Unlock stores the lock word and, when sleepers exist, pays an OCall
// (sgx_thread_set_untrusted_event) to signal one. Under contention the
// retry loop multiplies transition pairs per acquisition, which is why
// Figure 1 shows the SDK mutex degrading with thread count while a
// futex mutex stays flat.
//
// The EEXIT/EENTER pair is charged only when the thread actually blocks
// on the untrusted event. A near miss — the holder releases between the
// failed spin and the wait — re-acquires in-enclave without paying any
// transition, matching the SDK, where the queue re-check happens before
// the OCall is issued. The simulator burns both halves of the pair after
// the wait returns; the total charge per sleep is identical to paying
// EEXIT before and EENTER after, and the placement keeps the
// wait itself free of simulated spinning.
//
// From untrusted context the same mutex degenerates to CAS plus futex
// behaviour without transition charges.
type Mutex struct {
	platform *Platform

	state    atomic.Int32 // 0 free, 1 locked
	sleepers atomic.Int64 // threads blocked on ev right now

	ev *Event
}

// NewMutex creates an SDK-style mutex on the given platform.
func NewMutex(p *Platform) *Mutex {
	return &Mutex{platform: p, ev: NewEvent()}
}

func (m *Mutex) tryAcquire() bool {
	return m.state.CompareAndSwap(0, 1)
}

// Lock acquires the mutex.
func (m *Mutex) Lock(ctx *Context) {
	if m.tryAcquire() {
		return
	}
	p := m.platform
	inEnclave := ctx != nil && ctx.InEnclave()
	spinFor := p.costs.CyclesToDuration(float64(p.costs.MutexSpinCycles))
	for {
		// Bounded in-enclave spinning.
		if spinFor > 0 {
			deadline := time.Now().Add(spinFor)
			for time.Now().Before(deadline) {
				if m.tryAcquire() {
					return
				}
			}
		} else if m.tryAcquire() {
			return
		}

		// Sleep path: park on the untrusted event until a wake. The
		// sleeper registers itself under the event lock exactly when it
		// commits to blocking, so Unlock's sleeper check observes only
		// threads that will truly consume a signal.
		waited := m.ev.Wait(
			func() bool { return m.state.Load() != 0 },
			func() { m.sleepers.Add(1) },
		)
		if waited {
			m.sleepers.Add(-1)
			p.mutexSleeps.Add(1)
			if inEnclave {
				ctx.cross(faults.SiteExit)  // EEXIT towards the untrusted event
				ctx.cross(faults.SiteEnter) // EENTER to retry
			}
		}
		// Barging retry: another thread may already hold the lock again.
		if m.tryAcquire() {
			return
		}
	}
}

// Unlock releases the mutex, signalling a sleeper (with the OCall
// charge when inside an enclave). The sleeper check runs under the
// event lock (Event.SignalIf), where waiters register exactly as they
// commit to blocking: the unlocker either observes a registration and
// signals, or the waiter's predicate observes the release and never
// sleeps. An unlocked sleepers read here would race a waiter between
// its predicate check and its registration — the store lands, the
// count reads zero, the waiter then registers and blocks on a free
// mutex: a lost wakeup. With no sleepers registered no transition is
// charged, which is the whole point of the spin-then-sleep design for
// uncontended and lightly contended locks.
func (m *Mutex) Unlock(ctx *Context) {
	m.state.Store(0)
	if !m.ev.SignalIf(func() bool { return m.sleepers.Load() > 0 }) {
		return
	}
	if ctx != nil && ctx.InEnclave() {
		ctx.cross(faults.SiteExit)  // EEXIT for sgx_thread_set_untrusted_event
		ctx.cross(faults.SiteEnter) // EENTER back
	}
}
