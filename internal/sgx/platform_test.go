package sgx

import (
	"testing"
	"time"
)

func testPlatform(t *testing.T) *Platform {
	t.Helper()
	return NewPlatform(WithCostModel(ZeroCostModel()))
}

func TestCreateEnclave(t *testing.T) {
	p := testPlatform(t)
	e, err := p.CreateEnclave("alpha", 3*PageBytes)
	if err != nil {
		t.Fatalf("CreateEnclave: %v", err)
	}
	if e.ID() == Untrusted {
		t.Fatal("enclave got the untrusted ID")
	}
	if e.Name() != "alpha" {
		t.Fatalf("Name = %q, want alpha", e.Name())
	}
	if got := e.PagesResident(); got != 3 {
		t.Fatalf("PagesResident = %d, want 3", got)
	}
	if got := p.EPCUsedPages(); got != 3 {
		t.Fatalf("EPCUsedPages = %d, want 3", got)
	}
}

func TestCreateEnclaveDuplicateName(t *testing.T) {
	p := testPlatform(t)
	if _, err := p.CreateEnclave("dup", 0); err != nil {
		t.Fatalf("first create: %v", err)
	}
	if _, err := p.CreateEnclave("dup", 0); err == nil {
		t.Fatal("duplicate enclave name accepted")
	}
}

func TestCreateEnclaveEmptyName(t *testing.T) {
	p := testPlatform(t)
	if _, err := p.CreateEnclave("", 0); err == nil {
		t.Fatal("empty enclave name accepted")
	}
}

func TestEnclaveLookup(t *testing.T) {
	p := testPlatform(t)
	e, err := p.CreateEnclave("lookup", 0)
	if err != nil {
		t.Fatalf("CreateEnclave: %v", err)
	}
	got, ok := p.Enclave(e.ID())
	if !ok || got != e {
		t.Fatal("Enclave by ID did not return the created enclave")
	}
	got, ok = p.EnclaveByName("lookup")
	if !ok || got != e {
		t.Fatal("EnclaveByName did not return the created enclave")
	}
	if _, ok := p.Enclave(Untrusted); ok {
		t.Fatal("untrusted ID resolved to an enclave")
	}
	if _, ok := p.Enclave(9999); ok {
		t.Fatal("unknown ID resolved to an enclave")
	}
}

func TestDestroyEnclaveReleasesEPC(t *testing.T) {
	p := testPlatform(t)
	e, err := p.CreateEnclave("victim", 8*PageBytes)
	if err != nil {
		t.Fatalf("CreateEnclave: %v", err)
	}
	p.DestroyEnclave(e)
	if got := p.EPCUsedPages(); got != 0 {
		t.Fatalf("EPCUsedPages after destroy = %d, want 0", got)
	}
	if _, ok := p.Enclave(e.ID()); ok {
		t.Fatal("destroyed enclave still resolvable")
	}
}

func TestEPCEvictionAccounting(t *testing.T) {
	p := NewPlatform(WithCostModel(ZeroCostModel()), WithEPCBytes(4*PageBytes))
	e, err := p.CreateEnclave("big", 2*PageBytes)
	if err != nil {
		t.Fatalf("CreateEnclave: %v", err)
	}
	before := p.Snapshot()
	if err := e.AllocPages(6); err != nil {
		t.Fatalf("AllocPages: %v", err)
	}
	delta := p.Snapshot().Delta(before)
	if delta.EvictedPages != 4 {
		t.Fatalf("EvictedPages = %d, want 4 (2+6 pages vs 4-page budget)", delta.EvictedPages)
	}
}

func TestAllocPagesNegative(t *testing.T) {
	p := testPlatform(t)
	e, _ := p.CreateEnclave("neg", 0)
	if err := e.AllocPages(-1); err == nil {
		t.Fatal("negative AllocPages accepted")
	}
}

func TestTouchPagesUnderBudgetIsFree(t *testing.T) {
	p := NewPlatform(WithCostModel(ZeroCostModel()), WithEPCBytes(1024*PageBytes))
	e, _ := p.CreateEnclave("small", 4*PageBytes)
	before := p.Snapshot()
	e.TouchPages(100)
	if d := p.Snapshot().Delta(before); d.EvictedPages != 0 {
		t.Fatalf("TouchPages under budget evicted %d pages", d.EvictedPages)
	}
}

func TestTouchPagesOverBudgetCharges(t *testing.T) {
	p := NewPlatform(WithCostModel(ZeroCostModel()), WithEPCBytes(10*PageBytes))
	e, _ := p.CreateEnclave("thrash", 20*PageBytes)
	before := p.Snapshot()
	e.TouchPages(100)
	if d := p.Snapshot().Delta(before); d.EvictedPages == 0 {
		t.Fatal("TouchPages over budget evicted nothing")
	}
}

func TestContextTransitions(t *testing.T) {
	p := testPlatform(t)
	e1, _ := p.CreateEnclave("e1", 0)
	e2, _ := p.CreateEnclave("e2", 0)
	ctx := NewContext(p)
	if ctx.InEnclave() {
		t.Fatal("fresh context claims to be in an enclave")
	}

	if err := ctx.Enter(e1); err != nil {
		t.Fatalf("Enter(e1): %v", err)
	}
	if got := ctx.Crossings(); got != 1 {
		t.Fatalf("crossings after enter = %d, want 1", got)
	}
	if ctx.Current() != e1.ID() {
		t.Fatalf("Current = %d, want %d", ctx.Current(), e1.ID())
	}

	// Re-entering the current enclave is free.
	if err := ctx.Enter(e1); err != nil {
		t.Fatalf("re-Enter(e1): %v", err)
	}
	if got := ctx.Crossings(); got != 1 {
		t.Fatalf("crossings after same-enclave enter = %d, want 1", got)
	}

	// Moving between enclaves costs exit + enter.
	if err := ctx.Enter(e2); err != nil {
		t.Fatalf("Enter(e2): %v", err)
	}
	if got := ctx.Crossings(); got != 3 {
		t.Fatalf("crossings after hop = %d, want 3", got)
	}

	ctx.Exit()
	if got := ctx.Crossings(); got != 4 {
		t.Fatalf("crossings after exit = %d, want 4", got)
	}
	if ctx.InEnclave() {
		t.Fatal("context still in enclave after Exit")
	}

	// Exit while untrusted is free.
	ctx.Exit()
	if got := ctx.Crossings(); got != 4 {
		t.Fatalf("crossings after no-op exit = %d, want 4", got)
	}
}

func TestContextMoveToUnknown(t *testing.T) {
	p := testPlatform(t)
	ctx := NewContext(p)
	if err := ctx.MoveTo(EnclaveID(42)); err == nil {
		t.Fatal("MoveTo unknown enclave succeeded")
	}
}

func TestECallCounting(t *testing.T) {
	p := testPlatform(t)
	e, _ := p.CreateEnclave("callee", 0)
	ctx := NewContext(p)
	ran := false
	var insideID EnclaveID
	err := ctx.ECall(e, make([]byte, 100), make([]byte, 50), func() {
		ran = true
		insideID = ctx.Current()
	})
	if err != nil {
		t.Fatalf("ECall: %v", err)
	}
	if !ran {
		t.Fatal("ECall body did not run")
	}
	if insideID != e.ID() {
		t.Fatalf("ECall body ran in enclave %d, want %d", insideID, e.ID())
	}
	if ctx.InEnclave() {
		t.Fatal("context stayed inside the enclave after ECall")
	}
	s := p.Snapshot()
	if s.ECalls != 1 {
		t.Fatalf("ECalls = %d, want 1", s.ECalls)
	}
	if s.Crossings != 2 {
		t.Fatalf("Crossings = %d, want 2", s.Crossings)
	}
	if s.CopiedBytes != 150 {
		t.Fatalf("CopiedBytes = %d, want 150", s.CopiedBytes)
	}
}

func TestOCallRequiresEnclave(t *testing.T) {
	p := testPlatform(t)
	ctx := NewContext(p)
	if err := ctx.OCall(nil, nil, func() {}); err != ErrNotInEnclave {
		t.Fatalf("OCall outside enclave: err = %v, want ErrNotInEnclave", err)
	}
}

func TestOCallRoundTrip(t *testing.T) {
	p := testPlatform(t)
	e, _ := p.CreateEnclave("caller", 0)
	ctx := NewContext(p)
	if err := ctx.Enter(e); err != nil {
		t.Fatalf("Enter: %v", err)
	}
	var outsideID EnclaveID = 99
	err := ctx.OCall(make([]byte, 10), nil, func() {
		outsideID = ctx.Current()
	})
	if err != nil {
		t.Fatalf("OCall: %v", err)
	}
	if outsideID != Untrusted {
		t.Fatalf("OCall body ran in enclave %d, want untrusted", outsideID)
	}
	if ctx.Current() != e.ID() {
		t.Fatal("context did not return to the enclave after OCall")
	}
	if s := p.Snapshot(); s.OCalls != 1 {
		t.Fatalf("OCalls = %d, want 1", s.OCalls)
	}
}

func TestECallFromOtherEnclaveRejected(t *testing.T) {
	p := testPlatform(t)
	e1, _ := p.CreateEnclave("one", 0)
	e2, _ := p.CreateEnclave("two", 0)
	ctx := NewContext(p)
	if err := ctx.Enter(e1); err != nil {
		t.Fatalf("Enter: %v", err)
	}
	if err := ctx.ECall(e2, nil, nil, func() {}); err != ErrInEnclave {
		t.Fatalf("cross-enclave ECall err = %v, want ErrInEnclave", err)
	}
}

func TestCostModelCharges(t *testing.T) {
	m := DefaultCostModel()
	d := m.CyclesToDuration(3400)
	if d != time.Microsecond {
		t.Fatalf("3400 cycles at 3.4 GHz = %v, want 1µs", d)
	}
	if got := m.Scaled(0.5).CyclesToDuration(3400); got != 500*time.Nanosecond {
		t.Fatalf("scaled duration = %v, want 500ns", got)
	}
	if ZeroCostModel().CyclesToDuration(1e9) != 0 {
		t.Fatal("zero model charged time")
	}
}

func TestCopyCyclesKnee(t *testing.T) {
	m := DefaultCostModel()
	hot := m.CopyCycles(DefaultL1CacheBytes)
	cold := m.CopyCycles(2 * DefaultL1CacheBytes)
	// The second half is charged at the cold rate, which must exceed the
	// hot rate for the Fig. 11 knee to appear.
	if cold <= 2*hot {
		t.Fatalf("no L1 knee: copy(64K)=%v cycles vs copy(32K)=%v cycles", cold, hot)
	}
	if m.CopyCycles(0) != 0 || m.CopyCycles(-5) != 0 {
		t.Fatal("non-positive sizes should cost nothing")
	}
}

func TestRandCycles(t *testing.T) {
	m := DefaultCostModel()
	if got, want := m.RandCycles(8), float64(DefaultRandCyclesPerBlock); got != want {
		t.Fatalf("RandCycles(8) = %v, want %v", got, want)
	}
	// Partial blocks round up.
	if got, want := m.RandCycles(9), float64(2*DefaultRandCyclesPerBlock); got != want {
		t.Fatalf("RandCycles(9) = %v, want %v", got, want)
	}
}

func TestSpinAccuracy(t *testing.T) {
	start := time.Now()
	Spin(200 * time.Microsecond)
	elapsed := time.Since(start)
	if elapsed < 200*time.Microsecond {
		t.Fatalf("Spin returned early: %v", elapsed)
	}
	if elapsed > 20*time.Millisecond {
		t.Fatalf("Spin wildly overshot: %v", elapsed)
	}
}
