package sgx

import (
	"crypto/ecdh"
	"crypto/hmac"
	"crypto/sha256"
	"errors"
	"fmt"
)

// ReportDataSize is the size of the user-data field of a local
// attestation report (matches SGX's 64-byte REPORTDATA).
const ReportDataSize = 64

// Report is a local attestation report: it proves to a target enclave on
// the same platform that Data was produced by an enclave with the given
// Source measurement (EREPORT analogue; the MAC is keyed with a
// platform-held secret only the simulator can use, standing in for the
// target's report key).
type Report struct {
	Source Measurement
	Target Measurement
	Data   [ReportDataSize]byte
	MAC    [32]byte
}

// ErrReportMAC indicates a report failed verification.
var ErrReportMAC = errors.New("sgx: report MAC verification failed")

// ErrReportTarget indicates a report was created for a different target.
var ErrReportTarget = errors.New("sgx: report targeted at a different enclave")

// CreateReport produces a local attestation report from enclave e for the
// target measurement, binding data (truncated/zero-padded to 64 bytes).
func (e *Enclave) CreateReport(target Measurement, data []byte) Report {
	r := Report{Source: e.meas, Target: target}
	copy(r.Data[:], data)
	r.MAC = e.platform.reportMAC(r)
	return r
}

// VerifyReport checks that r is a genuine platform report addressed to
// enclave e.
func (e *Enclave) VerifyReport(r Report) error {
	if r.Target != e.meas {
		return ErrReportTarget
	}
	want := e.platform.reportMAC(r)
	if !hmac.Equal(want[:], r.MAC[:]) {
		return ErrReportMAC
	}
	return nil
}

func (p *Platform) reportMAC(r Report) [32]byte {
	mac := hmac.New(sha256.New, p.attestSecret[:])
	mac.Write([]byte("report"))
	mac.Write(r.Source[:])
	mac.Write(r.Target[:])
	mac.Write(r.Data[:])
	var out [32]byte
	copy(out[:], mac.Sum(nil))
	return out
}

// rngReader adapts an enclave's trusted RNG to io.Reader for key
// generation.
type rngReader struct{ e *Enclave }

func (r rngReader) Read(p []byte) (int, error) {
	r.e.ReadRand(p)
	return len(p), nil
}

// EstablishSessionKey runs the paper's local-attestation-based key
// agreement between two enclaves on the same platform (Section 3.3):
// each side generates an ephemeral X25519 key, binds its public key into
// a report targeted at the peer, verifies the peer's report, and derives
// a shared AES-256 key from the ECDH secret. The returned key is what
// encrypted channels between the two enclaves use.
func EstablishSessionKey(a, b *Enclave) ([32]byte, error) {
	var key [32]byte
	if a == nil || b == nil {
		return key, errors.New("sgx: EstablishSessionKey: nil enclave")
	}
	if a.platform != b.platform {
		return key, errors.New("sgx: local attestation requires the same platform")
	}
	curve := ecdh.X25519()
	privA, err := curve.GenerateKey(rngReader{a})
	if err != nil {
		return key, fmt.Errorf("sgx: ecdh keygen: %w", err)
	}
	privB, err := curve.GenerateKey(rngReader{b})
	if err != nil {
		return key, fmt.Errorf("sgx: ecdh keygen: %w", err)
	}

	// Exchange reports carrying the ephemeral public keys.
	repA := a.CreateReport(b.meas, privA.PublicKey().Bytes())
	repB := b.CreateReport(a.meas, privB.PublicKey().Bytes())
	if err := b.VerifyReport(repA); err != nil {
		return key, fmt.Errorf("sgx: verifying initiator report: %w", err)
	}
	if err := a.VerifyReport(repB); err != nil {
		return key, fmt.Errorf("sgx: verifying responder report: %w", err)
	}

	pubB, err := curve.NewPublicKey(repB.Data[:32])
	if err != nil {
		return key, fmt.Errorf("sgx: peer public key: %w", err)
	}
	shared, err := privA.ECDH(pubB)
	if err != nil {
		return key, fmt.Errorf("sgx: ecdh: %w", err)
	}

	// KDF binding both identities and the shared secret.
	h := sha256.New()
	h.Write([]byte("eactors channel key"))
	h.Write(a.meas[:])
	h.Write(b.meas[:])
	h.Write(shared)
	copy(key[:], h.Sum(nil))
	return key, nil
}
