package sgx

import (
	"fmt"
	"testing"
)

func benchPlatform(b *testing.B) (*Platform, *Enclave) {
	b.Helper()
	p := NewPlatform()
	e, err := p.CreateEnclave("bench", 64*1024)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { p.DestroyEnclave(e) })
	return p, e
}

// BenchmarkTransition measures one enter+exit pair under the calibrated
// cost model (should be ~5 µs: 2 x 4250 cycles at 3.4 GHz).
func BenchmarkTransition(b *testing.B) {
	p, e := benchPlatform(b)
	_ = p
	ctx := NewContext(p)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ctx.Enter(e); err != nil {
			b.Fatal(err)
		}
		ctx.Exit()
	}
}

// BenchmarkECallSizes shows the marshalling-copy contribution and the
// L1 knee of the native call path.
func BenchmarkECallSizes(b *testing.B) {
	for _, size := range []int{0, 1 << 10, 32 << 10, 128 << 10} {
		b.Run(fmt.Sprintf("size=%d", size), func(b *testing.B) {
			p, e := benchPlatform(b)
			_ = p
			ctx := NewContext(p)
			buf := make([]byte, size)
			b.SetBytes(int64(size))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := ctx.ECall(e, buf, nil, func() {}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkReadRand shows the trusted-RNG latency that bounds the SMC
// plain protocol (Figure 12 discussion).
func BenchmarkReadRand(b *testing.B) {
	for _, size := range []int{8, 4096} {
		b.Run(fmt.Sprintf("size=%d", size), func(b *testing.B) {
			_, e := benchPlatform(b)
			buf := make([]byte, size)
			b.SetBytes(int64(size))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.ReadRand(buf)
			}
		})
	}
}

// BenchmarkSealUnseal measures the sealing path the POS uses for its
// key slot.
func BenchmarkSealUnseal(b *testing.B) {
	_, e := benchPlatform(b)
	payload := make([]byte, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sealed, err := e.Seal(payload, nil)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := e.Unseal(sealed, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationEPCPaging contrasts page touches inside vs beyond
// the EPC budget — the degradation the paper warns large enclaves incur
// (Section 2.2).
func BenchmarkAblationEPCPaging(b *testing.B) {
	b.Run("fits", func(b *testing.B) {
		p := NewPlatform(WithEPCBytes(64 * 1024 * 1024))
		e, err := p.CreateEnclave("small", 8*1024*1024)
		if err != nil {
			b.Fatal(err)
		}
		defer p.DestroyEnclave(e)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e.TouchPages(64)
		}
	})
	b.Run("thrashes", func(b *testing.B) {
		p := NewPlatform(WithEPCBytes(64 * 1024 * 1024))
		e, err := p.CreateEnclave("huge", 128*1024*1024)
		if err != nil {
			b.Fatal(err)
		}
		defer p.DestroyEnclave(e)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e.TouchPages(64)
		}
	})
}

// BenchmarkLocalAttestation measures the channel-key handshake paid
// once per cross-enclave channel at startup.
func BenchmarkLocalAttestation(b *testing.B) {
	p := NewPlatform()
	a, err := p.CreateEnclave("a", 0)
	if err != nil {
		b.Fatal(err)
	}
	e2, err := p.CreateEnclave("b", 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EstablishSessionKey(a, e2); err != nil {
			b.Fatal(err)
		}
	}
}
