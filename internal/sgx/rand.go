package sgx

import (
	"crypto/aes"
	"crypto/cipher"
	"encoding/binary"
	"sync"
)

// drbg is a deterministic AES-CTR random bit generator standing in for
// the hardware RDRAND path behind sgx_read_rand. Determinism (per seed)
// keeps tests reproducible; the important simulated property is the
// per-block latency charge, which the paper identifies as the SMC
// bottleneck (Section 6.3.1).
type drbg struct {
	platform *Platform

	mu      sync.Mutex
	stream  cipher.Stream
	counter uint64
	block   [aes.BlockSize]byte
}

func newDRBG(seed [32]byte, p *Platform) *drbg {
	blockCipher, err := aes.NewCipher(seed[:])
	if err != nil {
		// A 32-byte key can never fail; treat as unreachable.
		panic("sgx: drbg: " + err.Error())
	}
	var iv [aes.BlockSize]byte
	return &drbg{
		platform: p,
		stream:   cipher.NewCTR(blockCipher, iv[:]),
	}
}

func (d *drbg) read(p []byte) {
	if len(p) == 0 {
		return
	}
	d.mu.Lock()
	for i := range p {
		p[i] = 0
	}
	d.stream.XORKeyStream(p, p)
	d.mu.Unlock()
	plat := d.platform
	plat.randBytes.Add(uint64(len(p)))
	plat.costs.ChargeCycles(plat.costs.RandCycles(len(p)))
}

// ReadRand fills p with random bytes using the enclave's trusted RNG,
// charging the modelled RDRAND latency per block (sgx_read_rand analogue).
func (e *Enclave) ReadRand(p []byte) {
	e.drbg.read(p)
}

// ReadRandUint32s fills v with trusted random 32-bit values; a
// convenience for the secure-sum use case's mask vectors.
func (e *Enclave) ReadRandUint32s(v []uint32) {
	if len(v) == 0 {
		return
	}
	buf := make([]byte, 4*len(v))
	e.ReadRand(buf)
	for i := range v {
		v[i] = binary.LittleEndian.Uint32(buf[4*i:])
	}
}
