package sgx

import (
	"fmt"
	"time"

	"github.com/eactors/eactors-go/internal/telemetry"
)

// platformTelemetry bundles the instruments a Platform reports through
// once AttachTelemetry has been called. The simulator's own counters stay
// the single source of truth — the registry reads them through
// CounterFunc/GaugeFunc adapters at scrape time — so attaching telemetry
// adds no second set of bookkeeping atomics. Only the latency histograms
// and the eviction trace are written from the charge paths, each behind
// one atomic pointer load that is nil when telemetry is off.
type platformTelemetry struct {
	reg      *telemetry.Registry
	crossNs  *telemetry.Histogram
	sealOps  *telemetry.Counter
	sealNs   *telemetry.Histogram
	unsealNs *telemetry.Histogram
	rec      *telemetry.Recorder // system recorder: EPC eviction events
}

// AttachTelemetry exposes the platform's simulator counters through reg
// and begins observing crossing, seal and EPC-eviction costs. It is
// typically called once by the core runtime before enclaves are created;
// enclaves created later register their page gauges on creation.
func (p *Platform) AttachTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	t := &platformTelemetry{
		reg:      reg,
		crossNs:  reg.Histogram("eactors_sgx_crossing_ns", "charged cost of one boundary crossing", "ns"),
		sealOps:  reg.Counter("eactors_sgx_seal_ops", "enclave Seal/Unseal operations"),
		sealNs:   reg.Histogram("eactors_sgx_seal_ns", "Enclave.Seal latency", "ns"),
		unsealNs: reg.Histogram("eactors_sgx_unseal_ns", "Enclave.Unseal latency", "ns"),
		rec:      reg.SystemRecorder(),
	}
	reg.CounterFunc("eactors_sgx_crossings", "boundary crossings (each enter or exit is one)", p.crossings.Load)
	reg.CounterFunc("eactors_sgx_ecalls", "ECall round trips", p.ecalls.Load)
	reg.CounterFunc("eactors_sgx_ocalls", "OCall round trips", p.ocalls.Load)
	reg.CounterFunc("eactors_sgx_copied_bytes", "bytes marshalled across the boundary", p.copiedBytes.Load)
	reg.CounterFunc("eactors_sgx_evicted_pages", "EPC pages evicted under memory pressure", p.evictedPages.Load)
	reg.CounterFunc("eactors_sgx_rand_bytes", "trusted RNG bytes produced", p.randBytes.Load)
	reg.CounterFunc("eactors_sgx_mutex_sleeps", "mutex acquisitions that took the sleep path", p.mutexSleeps.Load)
	reg.CounterFunc("eactors_sgx_tcs_overflows", "enclave entries beyond the thread slots", p.tcsOverflows.Load)
	reg.CounterFunc("eactors_crossings_avoided", "boundary crossings absorbed by switchless call rings", p.crossingsAvoided.Load)
	reg.CounterFunc("eactors_proxy_parks", "switchless proxies parking after exhausting the spin budget", p.proxyParks.Load)
	reg.GaugeFunc("eactors_sgx_epc_used_pages", "EPC pages currently resident", func() uint64 {
		return uint64(p.epcUsed.Load())
	})
	reg.GaugeFunc("eactors_sgx_epc_budget_pages", "total EPC budget in pages", func() uint64 {
		return uint64(p.epcPages)
	})
	p.mu.RLock()
	existing := make([]*Enclave, 0, len(p.enclaves))
	for _, e := range p.enclaves {
		existing = append(existing, e)
	}
	p.mu.RUnlock()
	p.tel.Store(t)
	for _, e := range existing {
		t.registerEnclaveGauge(e)
	}
}

// registerEnclaveGauge publishes an enclave's resident-page count.
func (t *platformTelemetry) registerEnclaveGauge(e *Enclave) {
	t.reg.GaugeFunc(
		fmt.Sprintf("eactors_sgx_enclave_pages{enclave=%q}", e.name),
		"EPC pages accounted to the enclave",
		func() uint64 { return uint64(e.pages.Load()) })
}

// noteEviction traces an EPC eviction burst on the system flight recorder.
func (p *Platform) noteEviction(id EnclaveID, pages int64) {
	if t := p.tel.Load(); t != nil {
		t.rec.Record(telemetry.EvEvict, uint32(id), uint64(pages))
	}
}

// AttachTelemetry hands the context its owning worker's flight recorder;
// every boundary crossing is then traced as an EvCrossing event carrying
// the charged cost. shard is the worker's registry shard index, kept for
// symmetry with the other per-worker attach points.
func (c *Context) AttachTelemetry(shard int, rec *telemetry.Recorder) {
	c.shard = shard
	c.rec = rec
}

// sealOpStart returns the timestamp to measure a Seal/Unseal against, or
// the zero time when telemetry is off (which ObserveSince ignores).
func (p *Platform) sealOpStart() time.Time {
	if p.tel.Load() == nil {
		return time.Time{}
	}
	return time.Now()
}

// observeSealOp records one Seal/Unseal into the platform instruments.
// Seal operations are rare (channel setup, persistence), so a single
// counter shard is contention-free in practice.
func (p *Platform) observeSealOp(unseal bool, start time.Time) {
	t := p.tel.Load()
	if t == nil {
		return
	}
	t.sealOps.Inc(0)
	if unseal {
		t.unsealNs.ObserveSince(start)
	} else {
		t.sealNs.ObserveSince(start)
	}
}
