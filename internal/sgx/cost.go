// Package sgx simulates Intel SGX trusted-execution mechanics with a
// calibrated cost model.
//
// The EActors paper evaluates its framework on real SGX hardware. The
// properties its evaluation depends on are not confidentiality per se but
// the costs of the enclave life cycle: execution-mode transitions
// (ECall/OCall, ~8000-9000 cycles), the SDK's marshalling copies, the
// spin-then-exit behaviour of SGX mutexes, the slow trusted random number
// generator, and EPC paging pressure. This package reproduces exactly
// those costs in software: every simulated operation charges a number of
// CPU cycles that is converted to wall time and burned with a busy spin,
// so benchmarks built on top of it exhibit the same relative shapes as the
// paper's hardware numbers.
package sgx

import (
	"time"
)

// Default cost-model constants, taken from the figures reported in the
// EActors paper and its citations (HotCalls, Eleos).
const (
	// DefaultFrequencyGHz is the clock of the paper's evaluation machine
	// (Intel Xeon E3-1230 v5, 3.40 GHz). Cycle charges are converted to
	// wall time at this frequency.
	DefaultFrequencyGHz = 3.4

	// DefaultCallCycles is the cost of one full ECall or OCall round trip
	// (enter + exit), 8000-9000 cycles per the paper; we use the middle.
	DefaultCallCycles = 8500

	// DefaultCrossCycles is the cost of a single boundary crossing
	// (half of a call round trip).
	DefaultCrossCycles = DefaultCallCycles / 2

	// DefaultCopyCyclesPerByte models the SDK's marshalling memcpy while
	// the payload still fits the L1 data cache (~0.5 cycles/byte).
	DefaultCopyCyclesPerByte = 0.5

	// DefaultCopyCyclesPerByteCold models the marshalling copy once the
	// payload exceeds the 32 KiB L1 data cache; the paper observes the
	// native SDK throughput peaking near 32 KiB and degrading beyond
	// (Figure 11 discussion).
	DefaultCopyCyclesPerByteCold = 2.0

	// DefaultL1CacheBytes is the L1 data cache size of Skylake cores.
	DefaultL1CacheBytes = 32 * 1024

	// DefaultRandCyclesPerBlock is the charge for each 8-byte block
	// produced by the trusted RNG (RDRAND-like latency; the paper
	// identifies sgx_read_rand as the SMC bottleneck, Section 6.3.1).
	DefaultRandCyclesPerBlock = 460

	// DefaultRandBlockBytes is the block granularity of the trusted RNG.
	DefaultRandBlockBytes = 8

	// DefaultPageEvictCycles is the charge for (re-)encrypting one EPC
	// page during eviction, roughly 12k cycles per 4 KiB page.
	DefaultPageEvictCycles = 12000

	// PageBytes is the EPC page size.
	PageBytes = 4096

	// DefaultEPCBytes is the usable EPC of the paper's machine: 128 MiB
	// minus SGX metadata leaves ~93 MiB (Section 2.2).
	DefaultEPCBytes = 93 * 1024 * 1024

	// DefaultMutexSpinCycles is the bounded spin budget of the SDK mutex
	// before it exits the enclave to sleep.
	DefaultMutexSpinCycles = 4000
)

// CostModel converts simulated SGX operations into wall-time charges.
// The zero value charges nothing; use DefaultCostModel for a calibrated
// model or ZeroCostModel to make the simulator free (unit tests).
type CostModel struct {
	// FrequencyGHz converts cycles to nanoseconds.
	FrequencyGHz float64

	// TimeScale uniformly scales every charge. 1.0 reproduces hardware
	// magnitudes; benchmarks may shrink it to finish sweeps faster
	// (relative shapes are preserved).
	TimeScale float64

	// CrossCycles is charged per boundary crossing (enter or exit).
	CrossCycles uint64

	// CopyCyclesPerByte is the SDK marshalling copy charge while the
	// payload fits in CopyHotBytes.
	CopyCyclesPerByte float64

	// CopyCyclesPerByteCold applies to payload bytes beyond CopyHotBytes.
	CopyCyclesPerByteCold float64

	// CopyHotBytes is the L1-resident copy threshold.
	CopyHotBytes int

	// RandCyclesPerBlock is charged per RandBlockBytes of trusted RNG
	// output.
	RandCyclesPerBlock uint64

	// RandBlockBytes is the trusted RNG block granularity.
	RandBlockBytes int

	// PageEvictCycles is charged per page evicted when the EPC budget is
	// exceeded.
	PageEvictCycles uint64

	// MutexSpinCycles is the bounded spin of Mutex before the sleep path.
	MutexSpinCycles uint64
}

// DefaultCostModel returns the calibrated model matching the paper's
// evaluation hardware.
func DefaultCostModel() *CostModel {
	return &CostModel{
		FrequencyGHz:          DefaultFrequencyGHz,
		TimeScale:             1.0,
		CrossCycles:           DefaultCrossCycles,
		CopyCyclesPerByte:     DefaultCopyCyclesPerByte,
		CopyCyclesPerByteCold: DefaultCopyCyclesPerByteCold,
		CopyHotBytes:          DefaultL1CacheBytes,
		RandCyclesPerBlock:    DefaultRandCyclesPerBlock,
		RandBlockBytes:        DefaultRandBlockBytes,
		PageEvictCycles:       DefaultPageEvictCycles,
		MutexSpinCycles:       DefaultMutexSpinCycles,
	}
}

// ZeroCostModel returns a model where every simulated operation is free.
// Functional unit tests use it to exercise logic without burning time.
func ZeroCostModel() *CostModel {
	return &CostModel{FrequencyGHz: DefaultFrequencyGHz, TimeScale: 0}
}

// Scaled returns a copy of m with all charges multiplied by scale.
func (m *CostModel) Scaled(scale float64) *CostModel {
	c := *m
	c.TimeScale = m.TimeScale * scale
	return &c
}

// CyclesToDuration converts a cycle count to wall time under the model.
func (m *CostModel) CyclesToDuration(cycles float64) time.Duration {
	if m == nil || m.TimeScale <= 0 || m.FrequencyGHz <= 0 {
		return 0
	}
	return time.Duration(cycles * m.TimeScale / m.FrequencyGHz)
}

// ChargeCycles burns wall time equivalent to the given cycle count.
func (m *CostModel) ChargeCycles(cycles float64) {
	Spin(m.CyclesToDuration(cycles))
}

// CrossCost returns the duration of a single boundary crossing.
func (m *CostModel) CrossCost() time.Duration {
	if m == nil {
		return 0
	}
	return m.CyclesToDuration(float64(m.CrossCycles))
}

// CopyCycles returns the marshalling cycle cost for copying n bytes
// across the enclave boundary, modelling the L1 knee.
func (m *CostModel) CopyCycles(n int) float64 {
	if m == nil || n <= 0 {
		return 0
	}
	hot := n
	cold := 0
	if m.CopyHotBytes > 0 && n > m.CopyHotBytes {
		hot = m.CopyHotBytes
		cold = n - m.CopyHotBytes
	}
	return float64(hot)*m.CopyCyclesPerByte + float64(cold)*m.CopyCyclesPerByteCold
}

// RandCycles returns the trusted-RNG cycle cost of producing n bytes.
func (m *CostModel) RandCycles(n int) float64 {
	if m == nil || n <= 0 || m.RandCyclesPerBlock == 0 {
		return 0
	}
	block := m.RandBlockBytes
	if block <= 0 {
		block = DefaultRandBlockBytes
	}
	blocks := (n + block - 1) / block
	return float64(blocks) * float64(m.RandCyclesPerBlock)
}

// Spin busy-waits for d. Unlike time.Sleep it has nanosecond-scale
// resolution, which the transition charges (~2.5 µs) require.
func Spin(d time.Duration) {
	if d <= 0 {
		return
	}
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) { //nolint:revive // intentional busy wait
	}
}
