package sgx

import (
	"bytes"
	"sync"
	"testing"
	"testing/quick"
)

func TestSealUnsealRoundTrip(t *testing.T) {
	p := testPlatform(t)
	e, _ := p.CreateEnclave("sealer", 0)
	plaintext := []byte("secret configuration blob")
	aad := []byte("pos superblock v1")

	sealed, err := e.Seal(plaintext, aad)
	if err != nil {
		t.Fatalf("Seal: %v", err)
	}
	if bytes.Contains(sealed, plaintext) {
		t.Fatal("sealed blob contains the plaintext")
	}
	got, err := e.Unseal(sealed, aad)
	if err != nil {
		t.Fatalf("Unseal: %v", err)
	}
	if !bytes.Equal(got, plaintext) {
		t.Fatalf("Unseal = %q, want %q", got, plaintext)
	}
}

func TestUnsealRejectsTamperedBlob(t *testing.T) {
	p := testPlatform(t)
	e, _ := p.CreateEnclave("sealer", 0)
	sealed, err := e.Seal([]byte("data"), nil)
	if err != nil {
		t.Fatalf("Seal: %v", err)
	}
	sealed[len(sealed)-1] ^= 0x01
	if _, err := e.Unseal(sealed, nil); err == nil {
		t.Fatal("tampered blob unsealed")
	}
}

func TestUnsealRejectsWrongAAD(t *testing.T) {
	p := testPlatform(t)
	e, _ := p.CreateEnclave("sealer", 0)
	sealed, _ := e.Seal([]byte("data"), []byte("aad-a"))
	if _, err := e.Unseal(sealed, []byte("aad-b")); err == nil {
		t.Fatal("blob unsealed under different AAD")
	}
}

func TestUnsealRejectsOtherEnclave(t *testing.T) {
	p := testPlatform(t)
	a, _ := p.CreateEnclave("a", 0)
	b, _ := p.CreateEnclave("b", 0)
	sealed, _ := a.Seal([]byte("for a only"), nil)
	if _, err := b.Unseal(sealed, nil); err == nil {
		t.Fatal("enclave b unsealed enclave a's blob (MRENCLAVE policy broken)")
	}
}

func TestUnsealShortBlob(t *testing.T) {
	p := testPlatform(t)
	e, _ := p.CreateEnclave("sealer", 0)
	if _, err := e.Unseal(make([]byte, SealOverhead-1), nil); err != ErrSealTooShort {
		t.Fatalf("short blob err = %v, want ErrSealTooShort", err)
	}
}

func TestSealSurvivesPlatformRestart(t *testing.T) {
	// Same platform secret + same enclave identity → same seal key.
	p1 := NewPlatform(WithCostModel(ZeroCostModel()), WithPlatformSecret([]byte("machine-1")))
	e1, _ := p1.CreateEnclave("service", 0)
	sealed, err := e1.Seal([]byte("persisted key"), nil)
	if err != nil {
		t.Fatalf("Seal: %v", err)
	}

	p2 := NewPlatform(WithCostModel(ZeroCostModel()), WithPlatformSecret([]byte("machine-1")))
	e2, _ := p2.CreateEnclave("service", 0)
	got, err := e2.Unseal(sealed, nil)
	if err != nil {
		t.Fatalf("Unseal after restart: %v", err)
	}
	if string(got) != "persisted key" {
		t.Fatalf("Unseal = %q", got)
	}

	// A different machine must not unseal.
	p3 := NewPlatform(WithCostModel(ZeroCostModel()), WithPlatformSecret([]byte("machine-2")))
	e3, _ := p3.CreateEnclave("service", 0)
	if _, err := e3.Unseal(sealed, nil); err == nil {
		t.Fatal("different platform unsealed the blob")
	}
}

func TestSealQuickRoundTrip(t *testing.T) {
	p := testPlatform(t)
	e, _ := p.CreateEnclave("q", 0)
	f := func(plaintext, aad []byte) bool {
		sealed, err := e.Seal(plaintext, aad)
		if err != nil {
			return false
		}
		got, err := e.Unseal(sealed, aad)
		if err != nil {
			return false
		}
		return bytes.Equal(got, plaintext)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestReadRandDeterministicPerSeed(t *testing.T) {
	p1 := NewPlatform(WithCostModel(ZeroCostModel()), WithPlatformSecret([]byte("seed")))
	p2 := NewPlatform(WithCostModel(ZeroCostModel()), WithPlatformSecret([]byte("seed")))
	e1, _ := p1.CreateEnclave("rng", 0)
	e2, _ := p2.CreateEnclave("rng", 0)
	a := make([]byte, 64)
	b := make([]byte, 64)
	e1.ReadRand(a)
	e2.ReadRand(b)
	if !bytes.Equal(a, b) {
		t.Fatal("same seed produced different streams")
	}
	var zero [64]byte
	if bytes.Equal(a, zero[:]) {
		t.Fatal("RNG produced all zeros")
	}
}

func TestReadRandAdvances(t *testing.T) {
	p := testPlatform(t)
	e, _ := p.CreateEnclave("rng", 0)
	a := make([]byte, 32)
	b := make([]byte, 32)
	e.ReadRand(a)
	e.ReadRand(b)
	if bytes.Equal(a, b) {
		t.Fatal("consecutive ReadRand calls returned identical output")
	}
}

func TestReadRandConcurrent(t *testing.T) {
	p := testPlatform(t)
	e, _ := p.CreateEnclave("rng", 0)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]byte, 128)
			for j := 0; j < 100; j++ {
				e.ReadRand(buf)
			}
		}()
	}
	wg.Wait()
	if got := p.Snapshot().RandBytes; got != 8*100*128 {
		t.Fatalf("RandBytes = %d, want %d", got, 8*100*128)
	}
}

func TestReadRandUint32s(t *testing.T) {
	p := testPlatform(t)
	e, _ := p.CreateEnclave("rng", 0)
	v := make([]uint32, 257)
	e.ReadRandUint32s(v)
	allZero := true
	for _, x := range v {
		if x != 0 {
			allZero = false
			break
		}
	}
	if allZero {
		t.Fatal("ReadRandUint32s produced all zeros")
	}
	e.ReadRandUint32s(nil) // must not panic
}

func TestReportVerify(t *testing.T) {
	p := testPlatform(t)
	a, _ := p.CreateEnclave("alice", 0)
	b, _ := p.CreateEnclave("bob", 0)

	rep := a.CreateReport(b.Measurement(), []byte("hello bob"))
	if err := b.VerifyReport(rep); err != nil {
		t.Fatalf("VerifyReport: %v", err)
	}
	if rep.Source != a.Measurement() {
		t.Fatal("report source measurement mismatch")
	}

	// Wrong target.
	if err := a.VerifyReport(rep); err != ErrReportTarget {
		t.Fatalf("wrong-target verify err = %v, want ErrReportTarget", err)
	}

	// Tampered data.
	rep.Data[0] ^= 0xFF
	if err := b.VerifyReport(rep); err != ErrReportMAC {
		t.Fatalf("tampered verify err = %v, want ErrReportMAC", err)
	}
}

func TestEstablishSessionKey(t *testing.T) {
	p := testPlatform(t)
	a, _ := p.CreateEnclave("alice", 0)
	b, _ := p.CreateEnclave("bob", 0)
	k1, err := EstablishSessionKey(a, b)
	if err != nil {
		t.Fatalf("EstablishSessionKey: %v", err)
	}
	var zero [32]byte
	if k1 == zero {
		t.Fatal("session key is all zeros")
	}
	// A second handshake uses fresh ephemerals → a different key.
	k2, err := EstablishSessionKey(a, b)
	if err != nil {
		t.Fatalf("second handshake: %v", err)
	}
	if k1 == k2 {
		t.Fatal("two handshakes derived the same key (non-ephemeral)")
	}
}

func TestEstablishSessionKeyCrossPlatform(t *testing.T) {
	p1 := testPlatform(t)
	p2 := testPlatform(t)
	a, _ := p1.CreateEnclave("a", 0)
	b, _ := p2.CreateEnclave("b", 0)
	if _, err := EstablishSessionKey(a, b); err == nil {
		t.Fatal("cross-platform local attestation succeeded")
	}
	if _, err := EstablishSessionKey(nil, b); err == nil {
		t.Fatal("nil enclave accepted")
	}
}

func TestMutexUncontended(t *testing.T) {
	p := testPlatform(t)
	m := NewMutex(p)
	ctx := NewContext(p)
	m.Lock(ctx)
	m.Unlock(ctx)
	if got := p.Snapshot().MutexSleeps; got != 0 {
		t.Fatalf("uncontended lock slept %d times", got)
	}
}

func TestMutexContendedChargesSleepPath(t *testing.T) {
	p := NewPlatform(WithCostModel(ZeroCostModel()))
	e, _ := p.CreateEnclave("locker", 0)
	m := NewMutex(p)

	holder := NewContext(p)
	m.Lock(holder)

	acquired := make(chan struct{})
	go func() {
		ctx := NewContext(p)
		if err := ctx.Enter(e); err != nil {
			t.Errorf("Enter: %v", err)
		}
		m.Lock(ctx) // must take the sleep path: the holder keeps the lock
		close(acquired)
		m.Unlock(ctx)
	}()
	// Release only once the contender has committed to the sleep path.
	for m.sleepers.Load() == 0 {
		// spin; the contender registers as a sleeper before blocking
	}
	m.Unlock(holder)
	<-acquired

	s := p.Snapshot()
	if s.MutexSleeps != 1 {
		t.Fatalf("MutexSleeps = %d, want 1", s.MutexSleeps)
	}
}

func TestMutexMutualExclusion(t *testing.T) {
	p := testPlatform(t)
	m := NewMutex(p)
	counter := 0
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx := NewContext(p)
			for j := 0; j < 1000; j++ {
				m.Lock(ctx)
				counter++
				m.Unlock(ctx)
			}
		}()
	}
	wg.Wait()
	if counter != 8000 {
		t.Fatalf("counter = %d, want 8000 (lost updates)", counter)
	}
}
