package sgx_test

import (
	"fmt"

	"github.com/eactors/eactors-go/internal/sgx"
)

// Example shows the simulator's accounting: transitions are counted and
// charged, sealing binds data to the enclave identity.
func Example() {
	platform := sgx.NewPlatform(sgx.WithCostModel(sgx.ZeroCostModel()))
	enclave, err := platform.CreateEnclave("worker", 64*1024)
	if err != nil {
		fmt.Println("error:", err)
		return
	}

	ctx := sgx.NewContext(platform)
	_ = ctx.Enter(enclave)
	sealed, _ := enclave.Seal([]byte("secret"), nil)
	ctx.Exit()

	plain, _ := enclave.Unseal(sealed, nil)
	fmt.Println("unsealed:", string(plain))
	fmt.Println("crossings:", ctx.Crossings())

	other, _ := platform.CreateEnclave("intruder", 0)
	_, err = other.Unseal(sealed, nil)
	fmt.Println("foreign unseal fails:", err != nil)
	// Output:
	// unsealed: secret
	// crossings: 2
	// foreign unseal fails: true
}
