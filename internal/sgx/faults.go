package sgx

import (
	"github.com/eactors/eactors-go/internal/faults"
)

// AttachFaults arms the platform with a deterministic fault injector:
// boundary crossings consult it for injected delays and transient EPC
// spikes, and Seal corrupts its output when the schedule says so. A nil
// injector (or never attaching one) keeps every hook a single atomic
// pointer load that reads nil.
//
// The core runtime attaches Config.Faults here automatically; tests and
// chaos drivers may also attach directly.
func (p *Platform) AttachFaults(inj *faults.Injector) {
	p.flt.Store(inj)
}

// Faults returns the attached injector, or nil.
func (p *Platform) Faults() *faults.Injector {
	return p.flt.Load()
}

// applyCrossingFault realises a crossing-site action: Delay spins for
// the scheduled stall (modelling an interrupted/retried transition) and
// EPCSpike applies transient page pressure attributed to enclave id.
func (p *Platform) applyCrossingFault(act faults.Action, id EnclaveID) {
	switch act.Class {
	case faults.Delay:
		Spin(act.Delay)
	case faults.EPCSpike:
		p.SpikeEPC(id, act.Pages)
	}
}

// SpikeEPC models a transient burst of EPC demand (another tenant's
// enclave faulting pages in): pages are charged against the platform
// budget, any overflow pays the eviction penalty exactly as AllocPages
// charges it, and the pressure is released immediately. The eviction
// counters and flight-recorder trace make the spike observable.
func (p *Platform) SpikeEPC(id EnclaveID, pages int) {
	if pages <= 0 {
		return
	}
	used := p.epcUsed.Add(int64(pages))
	if over := used - p.epcPages; over > 0 {
		evict := int64(pages)
		if over < evict {
			evict = over
		}
		p.evictedPages.Add(uint64(evict))
		p.noteEviction(id, evict)
		p.costs.ChargeCycles(float64(evict) * float64(p.costs.PageEvictCycles))
	}
	p.epcUsed.Add(-int64(pages))
}

// corruptSealedBlob realises a SealCorrupt action: one flipped bit in
// the ciphertext body, which the authenticated Unseal/Open on the other
// side is guaranteed to reject.
func corruptSealedBlob(blob []byte) {
	if len(blob) == 0 {
		return
	}
	blob[len(blob)/2] ^= 0x80
}
