package sgx

import "sync"

// Event is the untrusted wait object backing the SDK's
// sgx_thread_wait_untrusted_event / sgx_thread_set_untrusted_event OCall
// pair. A thread that cannot make progress inside an enclave exits,
// parks on an Event, and is re-entered once another thread sets it.
//
// The same plumbing backs two users: Mutex (the SDK barging mutex) and
// the switchless proxy workers, which park on an Event when their rings
// run dry (the paper's adaptive fallback). Event itself charges nothing;
// callers account the EEXIT/EENTER pair only when Wait reports that the
// thread actually blocked.
//
// Wakes are generation-counted so a Set that races a waiter between its
// failed predicate check and the block cannot be lost.
type Event struct {
	mu   sync.Mutex
	cond *sync.Cond
	gen  uint64 // wake generation, guarded by mu
}

// NewEvent creates an untrusted wait event.
func NewEvent() *Event {
	e := &Event{}
	e.cond = sync.NewCond(&e.mu)
	return e
}

// Wait blocks while pred stays true and no wake has arrived since entry.
// pred is evaluated under the event lock, closing the race against a
// concurrent Set/Signal. onFirstWait, when non-nil, runs under the lock
// immediately before the first block — callers use it to register
// themselves as sleepers exactly when they commit to sleeping. Wait
// reports whether the calling thread actually blocked; a near-miss that
// finds pred already false never sleeps and must not be charged a
// transition pair.
func (e *Event) Wait(pred func() bool, onFirstWait func()) (waited bool) {
	e.mu.Lock()
	gen := e.gen
	for e.gen == gen && pred() {
		if !waited {
			waited = true
			if onFirstWait != nil {
				onFirstWait()
			}
		}
		e.cond.Wait()
	}
	e.mu.Unlock()
	return waited
}

// Set wakes every waiter (sgx_thread_set_multiple_untrusted_events).
// Used by switchless posters: the parked proxy re-checks its rings under
// the event lock, so a post-then-Set can never strand work.
func (e *Event) Set() {
	e.mu.Lock()
	e.gen++
	e.mu.Unlock()
	e.cond.Broadcast()
}

// Signal wakes one waiter (sgx_thread_set_untrusted_event). The SDK
// mutex signals a single sleeper per unlock; the woken thread barges.
func (e *Event) Signal() {
	e.mu.Lock()
	e.gen++
	e.mu.Unlock()
	e.cond.Signal()
}

// SignalIf wakes one waiter only when cond holds, with cond evaluated
// under the event lock. Paired with a Wait whose onFirstWait registers
// the sleeper, the check is race-free: either cond observes the
// registration (the sleeper has committed and will consume the wake),
// or the waiter's predicate — also run under the lock — observes the
// caller's prior state change and the waiter never blocks. An unlocked
// read of the sleeper count would leave a window between the waiter's
// predicate check and its registration in which a release goes
// unsignalled — a lost wakeup. Reports whether a wake was issued.
func (e *Event) SignalIf(cond func() bool) bool {
	e.mu.Lock()
	ok := cond()
	if ok {
		e.gen++
	}
	e.mu.Unlock()
	if ok {
		e.cond.Signal()
	}
	return ok
}
