package trace

import (
	"bytes"
	"testing"
)

// FuzzTraceHeader feeds arbitrary bytes to the header decode and the
// trailer split. The contract under attack: malformed input — and on
// armed encrypted channels the header rides inside untrusted-visible
// frames, so "malformed" includes "adversarial" — must degrade to an
// untraced context, never panic, and never corrupt the payload bytes
// handed back to the application.
func FuzzTraceHeader(f *testing.F) {
	f.Add([]byte{})
	f.Add(make([]byte, HeaderSize-1))
	f.Add(make([]byte, HeaderSize))
	f.Add(AppendHeader(nil, Ctx{TraceID: 1, Span: 2}))
	f.Add(AppendHeader([]byte("payload"), Ctx{TraceID: 1<<64 - 1, Span: 1<<32 - 1}))
	f.Add(AppendHeader([]byte("payload"), Ctx{}))
	f.Fuzz(func(t *testing.T, data []byte) {
		c, ok := DecodeHeader(data)
		if ok != c.Traced() && ok && c.TraceID == 0 {
			// A valid header may legitimately carry trace ID zero
			// (untraced sentinel); nothing more to check.
			_ = c
		}
		if !ok && (c.TraceID != 0 || c.Span != 0) {
			t.Fatalf("failed decode leaked context %+v", c)
		}

		payload, sc := SplitTrailer(data)
		if len(payload) > len(data) {
			t.Fatalf("split grew payload: %d > %d", len(payload), len(data))
		}
		if !bytes.Equal(payload, data[:len(payload)]) {
			t.Fatal("split corrupted payload prefix")
		}
		// A stripped trailer must re-encode to the exact stripped bytes.
		if len(payload) == len(data)-HeaderSize {
			re := AppendHeader(nil, sc)
			if !bytes.Equal(re, data[len(payload):]) {
				t.Fatalf("trailer %x re-encodes to %x", data[len(payload):], re)
			}
		} else if len(payload) != len(data) {
			t.Fatalf("split removed %d bytes, want 0 or %d", len(data)-len(payload), HeaderSize)
		}
	})
}
