package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// WriteChrome serializes a snapshot of the tracer's spans as Chrome
// trace-event JSON (the format chrome://tracing and Perfetto both
// load): an object with a traceEvents array of "X" (complete) events.
// Timestamps and durations are microseconds; tid is the recording
// worker so each worker gets its own track; the trace/span/parent
// identifiers ride in args so tools can rebuild causality.
func (t *Tracer) WriteChrome(w io.Writer) error {
	return writeChrome(w, t.Snapshot(), t)
}

// WriteChromeSpans serializes an explicit span set (e.g. one filtered
// to a single trace) in the same format. names may be nil.
func WriteChromeSpans(w io.Writer, spans []Span, names *Tracer) error {
	return writeChrome(w, spans, names)
}

func writeChrome(w io.Writer, spans []Span, names *Tracer) error {
	// Stable output: by trace, then by start time.
	sort.Slice(spans, func(i, j int) bool {
		if spans[i].TraceID != spans[j].TraceID {
			return spans[i].TraceID < spans[j].TraceID
		}
		return spans[i].Start < spans[j].Start
	})
	var b strings.Builder
	b.WriteString(`{"displayTimeUnit":"ns","traceEvents":[`)
	for i, s := range spans {
		if i > 0 {
			b.WriteByte(',')
		}
		name := s.Kind.String()
		if rn := names.RefName(s.Kind, s.Ref); rn != "" {
			name += " " + rn
		}
		// Clamp: a torn slot could hold garbage, and a negative value
		// would render an invalid JSON number with %d.%03d.
		dur, start := s.Dur, s.Start
		if dur < 0 {
			dur = 0
		}
		if start < 0 {
			start = 0
		}
		fmt.Fprintf(&b,
			`{"name":%q,"cat":%q,"ph":"X","ts":%d.%03d,"dur":%d.%03d,"pid":1,"tid":%d,`+
				`"args":{"trace":%d,"span":%d,"parent":%d,"ref":%d}}`,
			name, s.Kind.String(),
			start/1000, start%1000, dur/1000, dur%1000,
			s.Worker+1, // tid 0 renders poorly; system buffer (-1) maps to 0
			s.TraceID, s.ID, s.Parent, s.Ref)
	}
	b.WriteString("]}\n")
	_, err := io.WriteString(w, b.String())
	return err
}
