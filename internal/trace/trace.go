// Package trace provides sampled causal tracing for the EActors
// runtime: a 16-byte trace context follows a message through actors,
// enclaves and the wire, and every hop records spans (send, mailbox
// dwell, seal/open, enclave crossing, body invoke, socket I/O, POS
// access) into preallocated per-worker ring buffers.
//
// The design constraints mirror the telemetry flight recorder
// (Section 2.2's scarce-EPC argument applies to instrumentation too):
//
//   - Zero allocation on the message path. Span slots are preallocated
//     atomics; the context rides in the reserved trace header of
//     mem.Node and, across encrypted channels, inside the sealed frame
//     itself — so cross-enclave hops stay causally linked even though
//     the adversary controls the untrusted memory the nodes live in.
//   - Sampling. Traces are rooted 1-in-N (Config.TraceSampleEvery) at
//     ingress points; unsampled messages pay one atomic load and one
//     predictable branch per hop.
//   - Tear tolerance. Recording claims a slot with one atomic index
//     bump and stores each field with an atomic word store. A writer
//     lapping a concurrent Snapshot can tear an individual slot
//     (fields from two spans); consumers tolerate this by construction
//     — a torn span either fails the trace-ID grouping or shows as an
//     implausible outlier, never as a crash.
//   - Nil receivers are no-ops, so instrumentation sites need no
//     configuration branches of their own.
package trace

import (
	"encoding/binary"
	"fmt"
	"sync/atomic"
)

// HeaderSize is the encoded size of a trace context: trace ID (8),
// parent span (4), magic/version (4). On encrypted channels this
// trailer is appended to the plaintext before sealing, so it is
// authenticated along with the payload.
const HeaderSize = 16

// headerMagic marks a well-formed trace header; the low byte is the
// layout version. A header whose magic does not match decodes as
// untraced — never as an error, and never as a panic.
const headerMagic uint32 = 0x7EAC5A00 | headerVersion

const headerVersion = 1

// Ctx is a trace context: the identity a message carries from hop to
// hop. TraceID zero means untraced; Span is the parent span for
// anything recorded downstream.
type Ctx struct {
	TraceID uint64
	Span    uint32
}

// Traced reports whether the context belongs to a sampled trace.
func (c Ctx) Traced() bool { return c.TraceID != 0 }

// AppendHeader appends the encoded 16-byte header to dst. Untraced
// contexts encode too (trace ID zero with a valid magic), keeping the
// framing of armed channels deterministic: the receiver always strips
// exactly HeaderSize bytes.
func AppendHeader(dst []byte, c Ctx) []byte {
	var h [HeaderSize]byte
	binary.LittleEndian.PutUint64(h[0:8], c.TraceID)
	binary.LittleEndian.PutUint32(h[8:12], c.Span)
	binary.LittleEndian.PutUint32(h[12:16], headerMagic)
	return append(dst, h[:]...)
}

// DecodeHeader decodes a 16-byte trace header. ok is false — and the
// context zero — when b is short or the magic does not match; malformed
// input degrades to untraced, it never panics.
func DecodeHeader(b []byte) (Ctx, bool) {
	if len(b) < HeaderSize {
		return Ctx{}, false
	}
	if binary.LittleEndian.Uint32(b[12:16]) != headerMagic {
		return Ctx{}, false
	}
	return Ctx{
		TraceID: binary.LittleEndian.Uint64(b[0:8]),
		Span:    binary.LittleEndian.Uint32(b[8:12]),
	}, true
}

// SplitTrailer splits a decrypted frame into payload and trace context.
// A well-formed trailer (armed senders always append one) is stripped;
// anything else — short frame, wrong magic — returns the input payload
// untouched with an untraced context, so a decode failure costs trace
// linkage, never data.
func SplitTrailer(plain []byte) ([]byte, Ctx) {
	if len(plain) < HeaderSize {
		return plain, Ctx{}
	}
	c, ok := DecodeHeader(plain[len(plain)-HeaderSize:])
	if !ok {
		return plain, Ctx{}
	}
	return plain[:len(plain)-HeaderSize], c
}

// Kind tags a span with the hop edge it measures.
type Kind uint8

// Span kinds, covering the runtime's message-path edges. Ref semantics
// are per kind: channel tag for Send/Dwell/Seal/Open, actor tag for
// Invoke/Crossing, socket id for NetRead/NetWrite/Route, shard for the
// POS kinds.
const (
	KindNone     Kind = iota
	KindInvoke        // body invocation that handled traced work
	KindSend          // Endpoint.Send*/SendBatch operation
	KindDwell         // mailbox dwell: enqueue to dequeue
	KindSeal          // channel payload seal
	KindOpen          // channel payload open (authenticate + decrypt)
	KindCrossing      // enclave boundary crossing (worker transition or message transit)
	KindNetRead       // READER socket drain
	KindNetWrite      // WRITER socket write
	KindPOSGet        // persistent object store get
	KindPOSSet        // persistent object store set
	KindPOSSync       // persistent object store sync/flush
	KindRoute         // application routing step (XMPP stanza, KV execute)
)

var kindNames = [...]string{
	KindNone: "none", KindInvoke: "invoke", KindSend: "send",
	KindDwell: "dwell", KindSeal: "seal", KindOpen: "open",
	KindCrossing: "crossing", KindNetRead: "net-read",
	KindNetWrite: "net-write", KindPOSGet: "pos-get",
	KindPOSSet: "pos-set", KindPOSSync: "pos-sync", KindRoute: "route",
}

// String names the span kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Span is one recorded hop edge of a trace.
type Span struct {
	// TraceID groups spans into one causal trace; never zero in a
	// recorded span.
	TraceID uint64
	// ID is the span's identity within the tracer; Parent links it to
	// the span that caused it (zero for roots).
	ID, Parent uint32
	// Kind tags the edge; Ref is its kind-specific identity.
	Kind Kind
	Ref  uint32
	// Worker is the recording worker (-1 for the system buffer).
	Worker int32
	// Start is the wall-clock UnixNano start; Dur the duration in ns.
	Start, Dur int64
}

// Scope is an eactor's active trace context for the current body
// invocation. The owning worker clears it before each invocation;
// receives adopt the context of traced inbound messages; sends read it
// to stamp outbound ones. It is normally single-writer (the owning
// worker thread), but all fields are atomics so the test-harness
// pattern of driving an idle actor's endpoints from another goroutine
// stays race-clean.
//
// A nil *Scope is a no-op that always reads as untraced.
type Scope struct {
	traceID atomic.Uint64
	span    atomic.Uint32
}

// Adopt makes c the scope's active context (last adopter wins).
func (s *Scope) Adopt(c Ctx) {
	if s == nil {
		return
	}
	s.span.Store(c.Span)
	s.traceID.Store(c.TraceID)
}

// Active returns the current context; TraceID zero means untraced.
func (s *Scope) Active() Ctx {
	if s == nil {
		return Ctx{}
	}
	id := s.traceID.Load()
	if id == 0 {
		return Ctx{}
	}
	return Ctx{TraceID: id, Span: s.span.Load()}
}

// Clear resets the scope to untraced. The guard load keeps the common
// (untraced) case store-free.
func (s *Scope) Clear() {
	if s == nil || s.traceID.Load() == 0 {
		return
	}
	s.traceID.Store(0)
	s.span.Store(0)
}
