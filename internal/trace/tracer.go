package trace

import (
	"sync"
	"sync/atomic"
	"time"
)

const (
	// DefaultSampleEvery roots one trace per this many ingress
	// opportunities; the EXPERIMENTS.md overhead budget is measured at
	// this rate.
	DefaultSampleEvery = 64
	// DefaultBufferSpans sizes each per-worker span ring.
	DefaultBufferSpans = 4096

	minBufferSpans = 64
	// slotWords is the per-span slot layout in a buffer: traceID,
	// id<<32|parent, kind<<56|worker<<40|ref, start, dur.
	slotWords = 5
)

// buffer is one preallocated span ring, written by a single worker
// thread (or, for the system buffer, by any goroutine) and read
// concurrently by Snapshot. Claiming a slot is one atomic add; each
// field is an independent atomic word store, so a reader racing a
// writer can observe a torn slot but never an out-of-bounds access.
type buffer struct {
	next  atomic.Uint64
	mask  uint64
	words []atomic.Uint64
}

func newBuffer(spans int) *buffer {
	if spans < minBufferSpans {
		spans = minBufferSpans
	}
	size := 1
	for size < spans {
		size <<= 1
	}
	return &buffer{mask: uint64(size - 1), words: make([]atomic.Uint64, size*slotWords)}
}

func (b *buffer) record(s Span) {
	i := ((b.next.Add(1) - 1) & b.mask) * slotWords
	// Zero the trace ID first so a concurrent Snapshot skips the slot
	// while the remaining words are in flux, then publish it last.
	b.words[i].Store(0)
	b.words[i+1].Store(uint64(s.ID)<<32 | uint64(s.Parent))
	b.words[i+2].Store(uint64(s.Kind)<<56 | uint64(uint16(s.Worker))<<40 | uint64(s.Ref))
	b.words[i+3].Store(uint64(s.Start))
	b.words[i+4].Store(uint64(s.Dur))
	b.words[i].Store(s.TraceID)
}

func (b *buffer) snapshot(into []Span) []Span {
	for slot := uint64(0); slot <= b.mask; slot++ {
		i := slot * slotWords
		tid := b.words[i].Load()
		if tid == 0 {
			continue
		}
		ids := b.words[i+1].Load()
		meta := b.words[i+2].Load()
		into = append(into, Span{
			TraceID: tid,
			ID:      uint32(ids >> 32),
			Parent:  uint32(ids),
			Kind:    Kind(meta >> 56),
			Worker:  int32(int16(meta >> 40)),
			Ref:     uint32(meta),
			Start:   int64(b.words[i+3].Load()),
			Dur:     int64(b.words[i+4].Load()),
		})
	}
	return into
}

// Tracer owns the sampling state, the span-ID allocator and the
// per-worker span rings. One Tracer serves a whole runtime; a nil
// *Tracer is a valid no-op, which is how disabled builds keep the
// message path to a single pointer check.
type Tracer struct {
	sampleMask uint32
	traceSeq   atomic.Uint64
	spanSeq    atomic.Uint32
	// bufs[0..workers-1] belong to the workers; the last entry is the
	// shared system buffer for records from outside any worker.
	bufs []*buffer

	mu       sync.RWMutex
	channels map[uint32]string
	actors   map[uint32]string
}

// New builds a tracer for the given worker count. sampleEvery is
// rounded up to a power of two (default DefaultSampleEvery);
// bufferSpans sizes each per-worker ring (default DefaultBufferSpans).
func New(workers, bufferSpans, sampleEvery int) *Tracer {
	if sampleEvery <= 0 {
		sampleEvery = DefaultSampleEvery
	}
	mask := uint32(1)
	for int(mask) < sampleEvery {
		mask <<= 1
	}
	if bufferSpans <= 0 {
		bufferSpans = DefaultBufferSpans
	}
	if workers < 0 {
		workers = 0
	}
	t := &Tracer{
		sampleMask: mask - 1,
		bufs:       make([]*buffer, workers+1),
		channels:   make(map[uint32]string),
		actors:     make(map[uint32]string),
	}
	for i := range t.bufs {
		t.bufs[i] = newBuffer(bufferSpans)
	}
	return t
}

// SampleEvery returns the effective sampling period (0 for nil).
func (t *Tracer) SampleEvery() int {
	if t == nil {
		return 0
	}
	return int(t.sampleMask) + 1
}

// MaybeRoot decides, 1-in-SampleEvery using the caller-owned tick,
// whether this ingress event starts a sampled trace; when it does, the
// returned context carries a fresh trace ID and no parent span. tick
// is caller state (one per ingress site) so sampling needs no shared
// counter on the hot path.
func (t *Tracer) MaybeRoot(tick *uint32) (Ctx, bool) {
	if t == nil {
		return Ctx{}, false
	}
	*tick++
	if *tick&t.sampleMask != 0 {
		return Ctx{}, false
	}
	return t.NewRoot(), true
}

// NewRoot unconditionally allocates a fresh sampled trace context;
// tools and tests use it to force a trace.
func (t *Tracer) NewRoot() Ctx {
	if t == nil {
		return Ctx{}
	}
	return Ctx{TraceID: t.traceSeq.Add(1)}
}

// NextSpan allocates a span ID (never zero).
func (t *Tracer) NextSpan() uint32 {
	if t == nil {
		return 0
	}
	id := t.spanSeq.Add(1)
	if id == 0 { // wrapped; zero is reserved for "no parent"
		id = t.spanSeq.Add(1)
	}
	return id
}

// Record stores a span into worker's ring (the system ring when the
// worker index is out of range). Spans with a zero trace ID are
// dropped — zero marks empty slots.
func (t *Tracer) Record(worker int, s Span) {
	if t == nil || s.TraceID == 0 {
		return
	}
	b := t.bufs[len(t.bufs)-1]
	if worker >= 0 && worker < len(t.bufs)-1 {
		b = t.bufs[worker]
	} else {
		worker = -1
	}
	s.Worker = int32(worker)
	b.record(s)
}

// Begin starts timing a span for the scope's active trace; the zero
// time means "not traced" and makes the matching End a no-op. The
// armed-but-untraced cost is one atomic load.
func (t *Tracer) Begin(sc *Scope) time.Time {
	if t == nil || !sc.Active().Traced() {
		return time.Time{}
	}
	return time.Now()
}

// End records a span begun by Begin, parented to the scope's current
// context (re-read here, so a Recv between Begin and End parents the
// span correctly). No-op when start is zero or the scope has gone
// untraced.
func (t *Tracer) End(worker int, sc *Scope, kind Kind, ref uint32, start time.Time) {
	if t == nil || start.IsZero() {
		return
	}
	c := sc.Active()
	if !c.Traced() {
		return
	}
	t.Record(worker, Span{
		TraceID: c.TraceID,
		ID:      t.NextSpan(),
		Parent:  c.Span,
		Kind:    kind,
		Ref:     ref,
		Start:   start.UnixNano(),
		Dur:     int64(time.Since(start)),
	})
}

// Snapshot copies every live span out of all rings. Safe to call
// concurrently with recording; torn slots (writer lapping the reader)
// surface as implausible spans in a trace group, never as corruption
// of other slots.
func (t *Tracer) Snapshot() []Span {
	if t == nil {
		return nil
	}
	var out []Span
	for _, b := range t.bufs {
		out = b.snapshot(out)
	}
	return out
}

// NameChannel registers a display name for a channel tag.
func (t *Tracer) NameChannel(tag uint32, name string) {
	if t == nil || name == "" {
		return
	}
	t.mu.Lock()
	t.channels[tag] = name
	t.mu.Unlock()
}

// NameActor registers a display name for an actor tag.
func (t *Tracer) NameActor(tag uint32, name string) {
	if t == nil || name == "" {
		return
	}
	t.mu.Lock()
	t.actors[tag] = name
	t.mu.Unlock()
}

// RefName resolves a span's Ref to a registered display name, or ""
// when the kind's ref space has no name table (sockets, shards).
func (t *Tracer) RefName(kind Kind, ref uint32) string {
	if t == nil {
		return ""
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	switch kind {
	case KindSend, KindDwell, KindSeal, KindOpen:
		return t.channels[ref]
	case KindInvoke:
		return t.actors[ref]
	case KindCrossing:
		// Message-transit crossings carry the channel tag, worker
		// transitions the actor tag; channel names win on a tie (the
		// tables are dense from zero, so low tags exist in both).
		if n, ok := t.channels[ref]; ok {
			return n
		}
		return t.actors[ref]
	}
	return ""
}
