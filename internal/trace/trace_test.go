package trace

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestHeaderRoundTrip(t *testing.T) {
	for _, c := range []Ctx{{}, {TraceID: 1}, {TraceID: 1<<64 - 1, Span: 1<<32 - 1}, {TraceID: 42, Span: 7}} {
		enc := AppendHeader(nil, c)
		if len(enc) != HeaderSize {
			t.Fatalf("encoded %d bytes, want %d", len(enc), HeaderSize)
		}
		got, ok := DecodeHeader(enc)
		if !ok || got != c {
			t.Fatalf("round trip %+v -> %+v ok=%v", c, got, ok)
		}
	}
}

func TestDecodeHeaderMalformed(t *testing.T) {
	if _, ok := DecodeHeader(nil); ok {
		t.Fatal("nil decoded")
	}
	if _, ok := DecodeHeader(make([]byte, HeaderSize-1)); ok {
		t.Fatal("short decoded")
	}
	bad := AppendHeader(nil, Ctx{TraceID: 9, Span: 3})
	bad[13] ^= 0xFF // corrupt the magic
	if _, ok := DecodeHeader(bad); ok {
		t.Fatal("bad magic decoded")
	}
}

func TestSplitTrailer(t *testing.T) {
	payload := []byte("GET key-1")
	framed := AppendHeader(append([]byte(nil), payload...), Ctx{TraceID: 5, Span: 2})
	got, c := SplitTrailer(framed)
	if !bytes.Equal(got, payload) || c.TraceID != 5 || c.Span != 2 {
		t.Fatalf("split = %q %+v", got, c)
	}
	// Untraced trailer strips too (deterministic framing).
	framed = AppendHeader(append([]byte(nil), payload...), Ctx{})
	got, c = SplitTrailer(framed)
	if !bytes.Equal(got, payload) || c.Traced() {
		t.Fatalf("untraced split = %q %+v", got, c)
	}
	// No trailer at all: payload passes through untouched.
	got, c = SplitTrailer(payload)
	if !bytes.Equal(got, payload) || c.Traced() {
		t.Fatalf("trailerless split = %q %+v", got, c)
	}
}

func TestScope(t *testing.T) {
	var s *Scope
	s.Adopt(Ctx{TraceID: 1}) // nil receiver: no-op
	s.Clear()
	if s.Active().Traced() {
		t.Fatal("nil scope traced")
	}
	s = &Scope{}
	if s.Active().Traced() {
		t.Fatal("fresh scope traced")
	}
	s.Adopt(Ctx{TraceID: 3, Span: 8})
	if c := s.Active(); c.TraceID != 3 || c.Span != 8 {
		t.Fatalf("active = %+v", c)
	}
	s.Clear()
	if s.Active().Traced() {
		t.Fatal("cleared scope traced")
	}
}

func TestTracerNilIsNoOp(t *testing.T) {
	var tr *Tracer
	if _, ok := tr.MaybeRoot(new(uint32)); ok {
		t.Fatal("nil tracer rooted")
	}
	if tr.NewRoot().Traced() || tr.NextSpan() != 0 || tr.SampleEvery() != 0 {
		t.Fatal("nil tracer allocated")
	}
	tr.Record(0, Span{TraceID: 1})
	if got := tr.Snapshot(); got != nil {
		t.Fatalf("nil snapshot = %v", got)
	}
	if !tr.Begin(&Scope{}).IsZero() {
		t.Fatal("nil Begin armed")
	}
	tr.End(0, &Scope{}, KindSend, 0, time.Now())
	tr.NameChannel(0, "x")
	tr.NameActor(0, "x")
	if tr.RefName(KindSend, 0) != "" {
		t.Fatal("nil name resolved")
	}
	if err := tr.WriteChrome(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
}

func TestMaybeRootSampling(t *testing.T) {
	tr := New(1, 64, 8)
	if tr.SampleEvery() != 8 {
		t.Fatalf("SampleEvery = %d", tr.SampleEvery())
	}
	var tick uint32
	roots := 0
	for i := 0; i < 64; i++ {
		if _, ok := tr.MaybeRoot(&tick); ok {
			roots++
		}
	}
	if roots != 8 {
		t.Fatalf("rooted %d of 64 at 1-in-8", roots)
	}
}

func TestRecordSnapshot(t *testing.T) {
	tr := New(2, 64, 0)
	root := tr.NewRoot()
	id := tr.NextSpan()
	tr.Record(0, Span{TraceID: root.TraceID, ID: id, Kind: KindNetRead, Ref: 7, Start: 1000, Dur: 50})
	tr.Record(1, Span{TraceID: root.TraceID, ID: tr.NextSpan(), Parent: id, Kind: KindInvoke, Ref: 2, Start: 1100, Dur: 30})
	tr.Record(99, Span{TraceID: root.TraceID, ID: tr.NextSpan(), Parent: id, Kind: KindSend, Ref: 1, Start: 1200, Dur: 10})
	tr.Record(0, Span{}) // zero trace ID: dropped

	spans := tr.Snapshot()
	if len(spans) != 3 {
		t.Fatalf("snapshot = %d spans, want 3", len(spans))
	}
	byKind := map[Kind]Span{}
	for _, s := range spans {
		if s.TraceID != root.TraceID {
			t.Fatalf("span %+v lost its trace ID", s)
		}
		byKind[s.Kind] = s
	}
	if byKind[KindNetRead].Worker != 0 || byKind[KindInvoke].Worker != 1 {
		t.Fatalf("worker attribution: %+v", byKind)
	}
	if byKind[KindSend].Worker != -1 {
		t.Fatalf("out-of-range worker should hit system buffer: %+v", byKind[KindSend])
	}
	if byKind[KindInvoke].Parent != id {
		t.Fatalf("parent lost: %+v", byKind[KindInvoke])
	}
	if byKind[KindNetRead].Ref != 7 || byKind[KindNetRead].Start != 1000 || byKind[KindNetRead].Dur != 50 {
		t.Fatalf("fields lost: %+v", byKind[KindNetRead])
	}
}

func TestBufferWraps(t *testing.T) {
	tr := New(1, minBufferSpans, 0)
	root := tr.NewRoot()
	for i := 0; i < minBufferSpans*3; i++ {
		tr.Record(0, Span{TraceID: root.TraceID, ID: tr.NextSpan(), Kind: KindSend, Start: int64(i)})
	}
	spans := tr.Snapshot()
	if len(spans) != minBufferSpans {
		t.Fatalf("wrapped ring holds %d, want %d", len(spans), minBufferSpans)
	}
}

func TestBeginEnd(t *testing.T) {
	tr := New(1, 64, 0)
	sc := &Scope{}
	if !tr.Begin(sc).IsZero() {
		t.Fatal("untraced scope armed a span")
	}
	sc.Adopt(Ctx{TraceID: 11, Span: 4})
	start := tr.Begin(sc)
	if start.IsZero() {
		t.Fatal("traced scope did not arm")
	}
	tr.End(0, sc, KindPOSGet, 3, start)
	tr.End(0, sc, KindPOSGet, 3, time.Time{}) // zero start: no-op
	spans := tr.Snapshot()
	if len(spans) != 1 {
		t.Fatalf("snapshot = %d spans, want 1", len(spans))
	}
	s := spans[0]
	if s.TraceID != 11 || s.Parent != 4 || s.Kind != KindPOSGet || s.Ref != 3 || s.Dur < 0 {
		t.Fatalf("span = %+v", s)
	}
}

func TestNames(t *testing.T) {
	tr := New(1, 64, 0)
	tr.NameChannel(3, "req-0")
	tr.NameActor(2, "kvstore-0")
	if tr.RefName(KindSend, 3) != "req-0" || tr.RefName(KindDwell, 3) != "req-0" {
		t.Fatal("channel name")
	}
	if tr.RefName(KindInvoke, 2) != "kvstore-0" {
		t.Fatal("actor name")
	}
	if tr.RefName(KindNetRead, 3) != "" {
		t.Fatal("socket refs have no name table")
	}
}

func TestConcurrentRecordSnapshot(t *testing.T) {
	tr := New(4, 256, 0)
	root := tr.NewRoot()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				tr.Record(w, Span{TraceID: root.TraceID, ID: tr.NextSpan(), Kind: KindSend, Start: int64(i), Dur: 1})
			}
		}(w)
	}
	for i := 0; i < 50; i++ {
		for _, s := range tr.Snapshot() {
			if s.TraceID != root.TraceID {
				t.Errorf("foreign trace ID %d in snapshot", s.TraceID)
			}
		}
	}
	close(stop)
	wg.Wait()
}

func TestWriteChromeValidJSON(t *testing.T) {
	tr := New(2, 64, 0)
	tr.NameChannel(1, "link")
	root := tr.NewRoot()
	parent := tr.NextSpan()
	tr.Record(0, Span{TraceID: root.TraceID, ID: parent, Kind: KindNetRead, Ref: 9, Start: 1700000000_123456789, Dur: 1500})
	tr.Record(1, Span{TraceID: root.TraceID, ID: tr.NextSpan(), Parent: parent, Kind: KindSend, Ref: 1, Start: 1700000000_123458789, Dur: -5})

	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			TS   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			TID  int     `json:"tid"`
			Args struct {
				Trace  uint64 `json:"trace"`
				Span   uint32 `json:"span"`
				Parent uint32 `json:"parent"`
			} `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if len(doc.TraceEvents) != 2 {
		t.Fatalf("events = %d", len(doc.TraceEvents))
	}
	if doc.TraceEvents[0].Ph != "X" || doc.TraceEvents[0].Name != "net-read" {
		t.Fatalf("event[0] = %+v", doc.TraceEvents[0])
	}
	if doc.TraceEvents[1].Name != "send link" || doc.TraceEvents[1].Args.Parent != parent {
		t.Fatalf("event[1] = %+v", doc.TraceEvents[1])
	}
	if doc.TraceEvents[1].Dur != 0 { // negative duration clamps
		t.Fatalf("negative dur leaked: %+v", doc.TraceEvents[1])
	}
}
