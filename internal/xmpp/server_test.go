package xmpp_test

import (
	"fmt"
	"testing"
	"time"

	"github.com/eactors/eactors-go/internal/sgx"
	"github.com/eactors/eactors-go/internal/xmpp"
	"github.com/eactors/eactors-go/internal/xmpp/client"
)

func startServer(t *testing.T, opts xmpp.Options) *xmpp.Server {
	t.Helper()
	if opts.Platform == nil {
		opts.Platform = sgx.NewPlatform(sgx.WithCostModel(sgx.ZeroCostModel()))
	}
	srv, err := xmpp.Start(opts)
	if err != nil {
		t.Fatalf("xmpp.Start: %v", err)
	}
	t.Cleanup(srv.Stop)
	return srv
}

func dial(t *testing.T, addr, user string) *client.Client {
	t.Helper()
	c, err := client.Dial(addr, user, 10*time.Second)
	if err != nil {
		t.Fatalf("Dial(%s): %v", user, err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return c
}

func TestOneToOneUntrusted(t *testing.T) {
	srv := startServer(t, xmpp.Options{Shards: 1})
	testOneToOne(t, srv)
}

func TestOneToOneTrusted(t *testing.T) {
	srv := startServer(t, xmpp.Options{Shards: 1, Trusted: true})
	testOneToOne(t, srv)
}

func TestOneToOneMultiShardMultiEnclave(t *testing.T) {
	srv := startServer(t, xmpp.Options{Shards: 4, Trusted: true, EnclaveCount: 4})
	testOneToOne(t, srv)
}

func testOneToOne(t *testing.T, srv *xmpp.Server) {
	t.Helper()
	alice := dial(t, srv.Addr(), "alice")
	bob := dial(t, srv.Addr(), "bob")

	if err := alice.SendMessage("bob", "hello bob"); err != nil {
		t.Fatalf("SendMessage: %v", err)
	}
	msg, err := bob.ReadMessage(10 * time.Second)
	if err != nil {
		t.Fatalf("bob ReadMessage: %v", err)
	}
	if msg.From != "alice" || msg.Body != "hello bob" || msg.Group {
		t.Fatalf("bob got %+v", msg)
	}

	if err := bob.SendMessage("alice", "hi alice"); err != nil {
		t.Fatalf("reply: %v", err)
	}
	msg, err = alice.ReadMessage(10 * time.Second)
	if err != nil {
		t.Fatalf("alice ReadMessage: %v", err)
	}
	if msg.From != "bob" || msg.Body != "hi alice" {
		t.Fatalf("alice got %+v", msg)
	}

	stats := srv.Stats()
	if stats.Connections != 2 {
		t.Fatalf("Connections = %d, want 2", stats.Connections)
	}
	if stats.Routed != 2 {
		t.Fatalf("Routed = %d, want 2", stats.Routed)
	}
}

func TestMessageToOfflineUserDropped(t *testing.T) {
	srv := startServer(t, xmpp.Options{Shards: 1})
	alice := dial(t, srv.Addr(), "alice")
	if err := alice.SendMessage("ghost", "anyone there?"); err != nil {
		t.Fatalf("SendMessage: %v", err)
	}
	// No crash, no routing: give the server a moment, then check.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if srv.Stats().Routed != 0 {
			t.Fatal("message to offline user was routed")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestSenderIdentityPinned(t *testing.T) {
	srv := startServer(t, xmpp.Options{Shards: 1})
	mallory := dial(t, srv.Addr(), "mallory")
	bob := dial(t, srv.Addr(), "bob")

	// Mallory crafts a stanza claiming to be alice; the service must
	// re-stamp the authenticated identity.
	if err := mallory.SendMessage("bob", "ignored"); err != nil {
		t.Fatal(err)
	}
	if _, err := bob.ReadMessage(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	raw := `<message from="alice" to="bob" type="chat"><body>spoofed</body></message>`
	if err := mallory.SendRaw(raw); err != nil {
		t.Fatal(err)
	}
	msg, err := bob.ReadMessage(10 * time.Second)
	if err != nil {
		t.Fatalf("ReadMessage: %v", err)
	}
	if msg.From != "mallory" {
		t.Fatalf("spoofed sender delivered as %q, want mallory", msg.From)
	}
}

func TestGroupChat(t *testing.T) {
	srv := startServer(t, xmpp.Options{Shards: 1, Trusted: true})
	users := []*client.Client{
		dial(t, srv.Addr(), "u0"),
		dial(t, srv.Addr(), "u1"),
		dial(t, srv.Addr(), "u2"),
	}
	for _, u := range users {
		if err := u.JoinRoom("room1"); err != nil {
			t.Fatalf("JoinRoom: %v", err)
		}
	}
	// Joins are asynchronous; wait until the sender's fan-out reaches
	// both receivers.
	time.Sleep(200 * time.Millisecond)

	if err := users[0].SendGroupMessage("room1", "hello room"); err != nil {
		t.Fatalf("SendGroupMessage: %v", err)
	}
	for i := 1; i <= 2; i++ {
		msg, err := users[i].ReadMessage(10 * time.Second)
		if err != nil {
			t.Fatalf("u%d ReadMessage: %v", i, err)
		}
		if !msg.Group || msg.From != "u0" || msg.Body != "hello room" {
			t.Fatalf("u%d got %+v", i, msg)
		}
	}
	if got := srv.Stats().GroupFanout; got != 2 {
		t.Fatalf("GroupFanout = %d, want 2", got)
	}
}

func TestGroupLeave(t *testing.T) {
	srv := startServer(t, xmpp.Options{Shards: 1})
	a := dial(t, srv.Addr(), "a")
	b := dial(t, srv.Addr(), "b")
	c := dial(t, srv.Addr(), "c")
	for _, u := range []*client.Client{a, b, c} {
		if err := u.JoinRoom("r"); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(200 * time.Millisecond)
	if err := c.LeaveRoom("r"); err != nil {
		t.Fatal(err)
	}
	time.Sleep(200 * time.Millisecond)

	if err := a.SendGroupMessage("r", "after leave"); err != nil {
		t.Fatal(err)
	}
	if _, err := b.ReadMessage(10 * time.Second); err != nil {
		t.Fatalf("b should receive: %v", err)
	}
	if _, err := c.ReadMessage(500 * time.Millisecond); err == nil {
		t.Fatal("c received a message after leaving")
	}
}

func TestManyClientsAcrossShards(t *testing.T) {
	srv := startServer(t, xmpp.Options{Shards: 4, Trusted: true, EnclaveCount: 2})
	const pairs = 8
	senders := make([]*client.Client, pairs)
	receivers := make([]*client.Client, pairs)
	for i := 0; i < pairs; i++ {
		senders[i] = dial(t, srv.Addr(), fmt.Sprintf("s%d", i))
		receivers[i] = dial(t, srv.Addr(), fmt.Sprintf("r%d", i))
	}
	for i := 0; i < pairs; i++ {
		if err := senders[i].SendMessage(fmt.Sprintf("r%d", i), fmt.Sprintf("msg-%d", i)); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	for i := 0; i < pairs; i++ {
		msg, err := receivers[i].ReadMessage(10 * time.Second)
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if msg.Body != fmt.Sprintf("msg-%d", i) {
			t.Fatalf("recv %d got %+v", i, msg)
		}
	}
	if got := srv.Online().Len(); got != 2*pairs {
		t.Fatalf("online = %d, want %d", got, 2*pairs)
	}
}

func TestDisconnectRemovesFromOnlineList(t *testing.T) {
	srv := startServer(t, xmpp.Options{Shards: 1})
	a := dial(t, srv.Addr(), "transient")
	waitFor(t, func() bool { return srv.Online().Len() == 1 }, "user online")
	_ = a.Close()
	waitFor(t, func() bool { return srv.Online().Len() == 0 }, "user removed after close")
}

func waitFor(t *testing.T, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}
