package xmpp_test

import (
	"testing"
	"time"

	"github.com/eactors/eactors-go/internal/xmpp"
	"github.com/eactors/eactors-go/internal/xmpp/client"
)

// TestDedicatedRoomFanout runs a group chat confined to its own enclave
// (Section 2.1's per-group-chat compartmentalisation) and checks the
// full path: shard forwards over an encrypted channel, the room shard
// re-encrypts per member, members receive.
func TestDedicatedRoomFanout(t *testing.T) {
	srv := startServer(t, xmpp.Options{
		Shards:         2,
		Trusted:        true,
		EnclaveCount:   2,
		DedicatedRooms: []string{"warroom"},
	})

	users := []*client.Client{
		dial(t, srv.Addr(), "u0"),
		dial(t, srv.Addr(), "u1"),
		dial(t, srv.Addr(), "u2"),
	}
	for _, u := range users {
		if err := u.JoinRoom("warroom"); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(200 * time.Millisecond)

	if err := users[0].SendGroupMessage("warroom", "classified"); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 2; i++ {
		msg, err := users[i].ReadMessage(10 * time.Second)
		if err != nil {
			t.Fatalf("u%d: %v", i, err)
		}
		if !msg.Group || msg.Body != "classified" || msg.From != "u0" {
			t.Fatalf("u%d got %+v", i, msg)
		}
	}
	if got := srv.Stats().GroupFanout; got != 2 {
		t.Fatalf("GroupFanout = %d, want 2", got)
	}

	// The room enclave must exist and the forward channels must be
	// encrypted (regular shard -> room shard crosses enclaves).
	if _, ok := srv.Runtime().EnclaveByName("xmpp-room-0"); !ok {
		t.Fatal("dedicated room enclave missing")
	}
	for i := 0; i < 2; i++ {
		name := "roomfwd-" + string(rune('0'+i)) + "-0"
		ch, ok := srv.Runtime().ChannelByName(name)
		if !ok {
			t.Fatalf("forward channel %s missing", name)
		}
		if !ch.Encrypted() {
			t.Fatalf("forward channel %s is plaintext", name)
		}
	}
}

// TestDedicatedRoomCoexistsWithRegularRooms: regular rooms keep their
// old shard-local fan-out while dedicated rooms take the enclave path.
func TestDedicatedRoomCoexistsWithRegularRooms(t *testing.T) {
	srv := startServer(t, xmpp.Options{
		Shards:         1,
		Trusted:        true,
		DedicatedRooms: []string{"vault"},
	})
	a := dial(t, srv.Addr(), "a")
	b := dial(t, srv.Addr(), "b")
	for _, u := range []*client.Client{a, b} {
		if err := u.JoinRoom("vault"); err != nil {
			t.Fatal(err)
		}
		if err := u.JoinRoom("lobby"); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(200 * time.Millisecond)

	if err := a.SendGroupMessage("vault", "in the enclave"); err != nil {
		t.Fatal(err)
	}
	msg, err := b.ReadMessage(10 * time.Second)
	if err != nil || msg.Body != "in the enclave" || msg.To != "vault" {
		t.Fatalf("vault: %+v %v", msg, err)
	}

	if err := b.SendGroupMessage("lobby", "in the shard"); err != nil {
		t.Fatal(err)
	}
	msg, err = a.ReadMessage(10 * time.Second)
	if err != nil || msg.Body != "in the shard" || msg.To != "lobby" {
		t.Fatalf("lobby: %+v %v", msg, err)
	}
}

// TestDedicatedRoomUntrusted: the feature also deploys without enclaves
// (flexibility), just without the isolation benefit.
func TestDedicatedRoomUntrusted(t *testing.T) {
	srv := startServer(t, xmpp.Options{
		Shards:         1,
		DedicatedRooms: []string{"plain"},
	})
	a := dial(t, srv.Addr(), "a")
	b := dial(t, srv.Addr(), "b")
	for _, u := range []*client.Client{a, b} {
		if err := u.JoinRoom("plain"); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(200 * time.Millisecond)
	if err := a.SendGroupMessage("plain", "hello"); err != nil {
		t.Fatal(err)
	}
	if msg, err := b.ReadMessage(10 * time.Second); err != nil || msg.Body != "hello" {
		t.Fatalf("untrusted dedicated room: %+v %v", msg, err)
	}
}
