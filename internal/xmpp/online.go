// Package xmpp implements the paper's secure instant-messaging use case
// (Section 5.1): an XMPP-subset service built from eactors — an enclaved
// CONNECTOR that accepts and authenticates clients, and N enclaved XMPP
// eactors (shards) with untrusted READER/WRITER networking eactors —
// plus the shared Online list and room table. One-to-one messages are
// routed blindly (end-to-end encryption is the clients' business);
// group-chat messages are decrypted and re-encrypted per member with
// service-level keys inside the XMPP eactor.
package xmpp

import (
	"encoding/binary"
	"errors"
	"sync"

	"github.com/eactors/eactors-go/internal/ecrypto"
)

// OnlineEntry describes one authenticated connection.
type OnlineEntry struct {
	User string
	Sock uint32
	// Key is the client's service-level session key (hex as sent in the
	// auth stanza), used for group-chat re-encryption.
	Key string
}

// OnlineList is the connection directory shared between the CONNECTOR
// and the XMPP eactors (Figure 7). When its producers and consumers live
// in different enclaves, entries are sealed at rest with a directory key
// so the untrusted runtime cannot read them — the cost of which is what
// makes the paper's single-enclave deployment slightly faster than the
// multi-enclave one (Figure 16, +6.2%).
type OnlineList struct {
	mu      sync.RWMutex
	entries map[string][]byte // user -> encoded (possibly sealed) entry
	cipher  *ecrypto.Cipher   // nil when all parties share one enclave
}

// NewOnlineList creates the directory. sealed selects encrypted-at-rest
// entries (multi-enclave deployments).
func NewOnlineList(sealed bool, key [ecrypto.KeySize]byte) (*OnlineList, error) {
	l := &OnlineList{entries: make(map[string][]byte)}
	if sealed {
		c, err := ecrypto.NewCipher(key, 3)
		if err != nil {
			return nil, err
		}
		l.cipher = c
	}
	return l, nil
}

// Sealed reports whether entries are encrypted at rest.
func (l *OnlineList) Sealed() bool { return l.cipher != nil }

func encodeEntry(e OnlineEntry) []byte {
	buf := make([]byte, 0, 8+len(e.User)+len(e.Key))
	var tmp [4]byte
	binary.LittleEndian.PutUint32(tmp[:], e.Sock)
	buf = append(buf, tmp[:]...)
	buf = append(buf, byte(len(e.User)))
	buf = append(buf, e.User...)
	buf = append(buf, byte(len(e.Key)))
	buf = append(buf, e.Key...)
	return buf
}

var errBadEntry = errors.New("xmpp: corrupt online entry")

func decodeEntry(b []byte) (OnlineEntry, error) {
	if len(b) < 6 {
		return OnlineEntry{}, errBadEntry
	}
	sock := binary.LittleEndian.Uint32(b)
	ul := int(b[4])
	if len(b) < 5+ul+1 {
		return OnlineEntry{}, errBadEntry
	}
	user := string(b[5 : 5+ul])
	kl := int(b[5+ul])
	if len(b) < 6+ul+kl {
		return OnlineEntry{}, errBadEntry
	}
	key := string(b[6+ul : 6+ul+kl])
	return OnlineEntry{User: user, Sock: sock, Key: key}, nil
}

// Add registers (or replaces) a user's connection.
func (l *OnlineList) Add(e OnlineEntry) {
	enc := encodeEntry(e)
	if l.cipher != nil {
		enc = l.cipher.Seal(nil, enc, nil)
	}
	l.mu.Lock()
	l.entries[e.User] = enc
	l.mu.Unlock()
}

// Get looks a user up.
func (l *OnlineList) Get(user string) (OnlineEntry, bool) {
	l.mu.RLock()
	enc, ok := l.entries[user]
	l.mu.RUnlock()
	if !ok {
		return OnlineEntry{}, false
	}
	if l.cipher != nil {
		plain, err := l.cipher.Open(nil, enc, nil)
		if err != nil {
			return OnlineEntry{}, false
		}
		enc = plain
	}
	e, err := decodeEntry(enc)
	if err != nil {
		return OnlineEntry{}, false
	}
	return e, true
}

// Remove unregisters a user.
func (l *OnlineList) Remove(user string) {
	l.mu.Lock()
	delete(l.entries, user)
	l.mu.Unlock()
}

// Len returns the number of online users.
func (l *OnlineList) Len() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.entries)
}

// RoomTable maps chat rooms to their members, shared like the Online
// list (and sealed under the same conditions — membership is sensitive).
type RoomTable struct {
	mu    sync.RWMutex
	rooms map[string]map[string]bool
}

// NewRoomTable creates an empty room table.
func NewRoomTable() *RoomTable {
	return &RoomTable{rooms: make(map[string]map[string]bool)}
}

// Join adds user to room.
func (r *RoomTable) Join(room, user string) {
	r.mu.Lock()
	members, ok := r.rooms[room]
	if !ok {
		members = make(map[string]bool)
		r.rooms[room] = members
	}
	members[user] = true
	r.mu.Unlock()
}

// Leave removes user from room.
func (r *RoomTable) Leave(room, user string) {
	r.mu.Lock()
	if members, ok := r.rooms[room]; ok {
		delete(members, user)
		if len(members) == 0 {
			delete(r.rooms, room)
		}
	}
	r.mu.Unlock()
}

// LeaveAll removes user from every room (disconnect path).
func (r *RoomTable) LeaveAll(user string) {
	r.mu.Lock()
	for room, members := range r.rooms {
		delete(members, user)
		if len(members) == 0 {
			delete(r.rooms, room)
		}
	}
	r.mu.Unlock()
}

// Members returns a snapshot of a room's membership.
func (r *RoomTable) Members(room string) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	members := r.rooms[room]
	out := make([]string, 0, len(members))
	for m := range members {
		out = append(out, m)
	}
	return out
}
