package xmpp

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"

	"github.com/eactors/eactors-go/internal/ecrypto"
)

func testKey() [ecrypto.KeySize]byte {
	var k [ecrypto.KeySize]byte
	for i := range k {
		k[i] = byte(i + 1)
	}
	return k
}

func TestOnlineListPlain(t *testing.T) {
	l, err := NewOnlineList(false, [ecrypto.KeySize]byte{})
	if err != nil {
		t.Fatalf("NewOnlineList: %v", err)
	}
	if l.Sealed() {
		t.Fatal("plain list claims to be sealed")
	}
	l.Add(OnlineEntry{User: "alice", Sock: 7, Key: "cafe"})
	e, ok := l.Get("alice")
	if !ok || e.Sock != 7 || e.Key != "cafe" || e.User != "alice" {
		t.Fatalf("Get = %+v ok=%v", e, ok)
	}
	if _, ok := l.Get("bob"); ok {
		t.Fatal("absent user found")
	}
	if l.Len() != 1 {
		t.Fatalf("Len = %d", l.Len())
	}
	l.Remove("alice")
	if _, ok := l.Get("alice"); ok {
		t.Fatal("removed user still present")
	}
}

func TestOnlineListSealed(t *testing.T) {
	l, err := NewOnlineList(true, testKey())
	if err != nil {
		t.Fatalf("NewOnlineList: %v", err)
	}
	if !l.Sealed() {
		t.Fatal("sealed list claims plain")
	}
	l.Add(OnlineEntry{User: "carol", Sock: 42, Key: "beef"})
	e, ok := l.Get("carol")
	if !ok || e.Sock != 42 || e.Key != "beef" {
		t.Fatalf("sealed Get = %+v ok=%v", e, ok)
	}
	// The stored representation must not contain the plaintext fields.
	l.mu.RLock()
	raw := l.entries["carol"]
	l.mu.RUnlock()
	if string(raw) == "" {
		t.Fatal("no stored entry")
	}
	for _, needle := range []string{"beef"} {
		if containsSub(raw, needle) {
			t.Fatalf("sealed entry leaks %q", needle)
		}
	}
}

func containsSub(b []byte, s string) bool {
	for i := 0; i+len(s) <= len(b); i++ {
		if string(b[i:i+len(s)]) == s {
			return true
		}
	}
	return false
}

func TestOnlineListOverwrite(t *testing.T) {
	l, _ := NewOnlineList(false, [ecrypto.KeySize]byte{})
	l.Add(OnlineEntry{User: "u", Sock: 1, Key: "k1"})
	l.Add(OnlineEntry{User: "u", Sock: 2, Key: "k2"})
	e, ok := l.Get("u")
	if !ok || e.Sock != 2 || e.Key != "k2" {
		t.Fatalf("overwrite Get = %+v", e)
	}
	if l.Len() != 1 {
		t.Fatalf("Len after overwrite = %d", l.Len())
	}
}

func TestOnlineListQuickRoundTrip(t *testing.T) {
	sealed, _ := NewOnlineList(true, testKey())
	plain, _ := NewOnlineList(false, [ecrypto.KeySize]byte{})
	f := func(user string, sock uint32, key string) bool {
		if len(user) == 0 || len(user) > 200 || len(key) > 200 {
			return true // encoding uses 1-byte lengths
		}
		want := OnlineEntry{User: user, Sock: sock, Key: key}
		for _, l := range []*OnlineList{sealed, plain} {
			l.Add(want)
			got, ok := l.Get(user)
			if !ok || got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestOnlineListConcurrent(t *testing.T) {
	l, _ := NewOnlineList(true, testKey())
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			user := fmt.Sprintf("user-%d", id)
			for i := 0; i < 200; i++ {
				l.Add(OnlineEntry{User: user, Sock: uint32(i), Key: "k"})
				if e, ok := l.Get(user); !ok || e.User != user {
					t.Errorf("concurrent Get lost %s", user)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestRoomTable(t *testing.T) {
	r := NewRoomTable()
	r.Join("room1", "alice")
	r.Join("room1", "bob")
	r.Join("room2", "alice")

	if got := len(r.Members("room1")); got != 2 {
		t.Fatalf("room1 members = %d", got)
	}
	r.Leave("room1", "bob")
	if got := r.Members("room1"); len(got) != 1 || got[0] != "alice" {
		t.Fatalf("room1 after leave = %v", got)
	}
	// Leave of absent member / room is a no-op.
	r.Leave("room1", "ghost")
	r.Leave("no-room", "alice")

	r.LeaveAll("alice")
	if len(r.Members("room1")) != 0 || len(r.Members("room2")) != 0 {
		t.Fatal("LeaveAll left memberships behind")
	}
	if len(r.Members("missing")) != 0 {
		t.Fatal("missing room has members")
	}
}

func TestHandoffCodec(t *testing.T) {
	entry := OnlineEntry{User: "alice", Sock: 99, Key: "deadbeef"}
	leftover := []byte("<message to=")
	blob := encodeHandoff(entry, leftover)
	gotEntry, gotLeft, err := decodeHandoff(blob)
	if err != nil {
		t.Fatalf("decodeHandoff: %v", err)
	}
	if gotEntry != entry || string(gotLeft) != string(leftover) {
		t.Fatalf("roundtrip = %+v %q", gotEntry, gotLeft)
	}

	// Truncations must error, not panic.
	for i := 0; i < len(blob); i++ {
		if _, _, err := decodeHandoff(blob[:i]); err == nil {
			t.Fatalf("truncated handoff at %d accepted", i)
		}
	}
	if _, _, err := decodeHandoff([]byte{handoffStray}); err == nil {
		t.Fatal("wrong-type handoff accepted")
	}
}

func TestStrayCodec(t *testing.T) {
	blob := encodeStray(7, []byte("partial bytes"))
	sock, data, err := decodeStray(blob)
	if err != nil || sock != 7 || string(data) != "partial bytes" {
		t.Fatalf("roundtrip = %d %q %v", sock, data, err)
	}
	for i := 0; i < len(blob); i++ {
		if _, _, err := decodeStray(blob[:i]); err == nil {
			t.Fatalf("truncated stray at %d accepted", i)
		}
	}
}

func TestHandoffQuick(t *testing.T) {
	f := func(user, key string, sock uint32, leftover []byte) bool {
		if len(user) == 0 || len(user) > 255 || len(key) > 255 || len(leftover) > 60000 {
			return true
		}
		e := OnlineEntry{User: user, Sock: sock, Key: key}
		got, left, err := decodeHandoff(encodeHandoff(e, leftover))
		if err != nil || got != e {
			return false
		}
		if len(left) != len(leftover) {
			return false
		}
		for i := range left {
			if left[i] != leftover[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBodyCipherHelpers(t *testing.T) {
	key := testKey()
	clientCipher, err := NewClientBodyCipher(key)
	if err != nil {
		t.Fatalf("NewClientBodyCipher: %v", err)
	}
	sealed := SealBodyWith(clientCipher, "hello room")

	serverCipher, err := ServerBodyCipher(fmt.Sprintf("%x", key))
	if err != nil {
		t.Fatalf("ServerBodyCipher: %v", err)
	}
	got, err := OpenBodyWith(serverCipher, sealed)
	if err != nil || got != "hello room" {
		t.Fatalf("OpenBodyWith = %q, %v", got, err)
	}

	// Bad inputs.
	if _, err := OpenBodyWith(serverCipher, "not-hex!"); err == nil {
		t.Fatal("non-hex body accepted")
	}
	if _, err := OpenBodyWith(serverCipher, "deadbeef"); err == nil {
		t.Fatal("garbage ciphertext accepted")
	}
	if _, err := ServerBodyCipher("zz"); err == nil {
		t.Fatal("bad key hex accepted")
	}
	if _, err := ServerBodyCipher("abcd"); err == nil {
		t.Fatal("short key accepted")
	}
}
