package xmpp

import (
	"sync/atomic"

	"github.com/eactors/eactors-go/internal/pos"
)

// Directory is the Online-list abstraction the CONNECTOR and the XMPP
// eactors share (Figure 7). Two implementations exist: the in-memory
// OnlineList (optionally sealed at rest) and POSDirectory, which keeps
// the entries in a Persistent Object Store — the deployment Section 4.1
// describes, where the POS "handles configuration and application data"
// accessible to all eactors.
type Directory interface {
	// Add registers (or replaces) a user's connection entry.
	Add(e OnlineEntry)
	// Get looks a user up.
	Get(user string) (OnlineEntry, bool)
	// Remove unregisters a user.
	Remove(user string)
	// Len returns the number of online users.
	Len() int
}

// Interface checks.
var (
	_ Directory = (*OnlineList)(nil)
	_ Directory = (*POSDirectory)(nil)
)

// directoryPrefix namespaces online entries inside a shared store.
const directoryPrefix = "online:"

// POSDirectory is a Directory over a pos.Store. Confidentiality at rest
// comes from opening the store in encrypted mode; the directory itself
// stores the encoded entry as the value under "online:<user>".
type POSDirectory struct {
	store *pos.Store
	count atomic.Int64
}

// NewPOSDirectory wraps a store as a connection directory.
func NewPOSDirectory(store *pos.Store) *POSDirectory {
	return &POSDirectory{store: store}
}

// Store returns the backing store.
func (d *POSDirectory) Store() *pos.Store { return d.store }

// Add registers (or replaces) a user's entry.
func (d *POSDirectory) Add(e OnlineEntry) {
	key := []byte(directoryPrefix + e.User)
	_, existed, _ := d.store.Get(key)
	if err := d.store.Set(key, encodeEntry(e)); err != nil {
		return // store full: the connection stays unroutable until space frees
	}
	if !existed {
		d.count.Add(1)
	}
}

// Get looks a user up.
func (d *POSDirectory) Get(user string) (OnlineEntry, bool) {
	val, ok, err := d.store.Get([]byte(directoryPrefix + user))
	if err != nil || !ok {
		return OnlineEntry{}, false
	}
	e, err := decodeEntry(val)
	if err != nil {
		return OnlineEntry{}, false
	}
	return e, true
}

// Remove unregisters a user.
func (d *POSDirectory) Remove(user string) {
	found, err := d.store.Delete([]byte(directoryPrefix + user))
	if err == nil && found {
		d.count.Add(-1)
	}
}

// Len returns the number of online users.
func (d *POSDirectory) Len() int { return int(d.count.Load()) }
