package xmpp_test

import (
	"fmt"
	"testing"
	"time"

	"github.com/eactors/eactors-go/internal/xmpp"
)

// TestSlowConsumerDoesNotStallService floods a receiver that never
// reads; the service must keep serving other clients (frames to the
// stalled client are eventually dropped, never block a shard).
func TestSlowConsumerDoesNotStallService(t *testing.T) {
	srv := startServer(t, xmpp.Options{Shards: 1, Trusted: true})

	stalled := dial(t, srv.Addr(), "stalled") // connects but never reads
	_ = stalled
	flooder := dial(t, srv.Addr(), "flooder")
	alice := dial(t, srv.Addr(), "alice")
	bob := dial(t, srv.Addr(), "bob")

	// Flood the stalled client far past any queue capacity.
	payload := make([]byte, 600)
	for i := range payload {
		payload[i] = 'x'
	}
	for i := 0; i < 4000; i++ {
		if err := flooder.SendMessage("stalled", string(payload)); err != nil {
			t.Fatalf("flood write %d: %v", i, err)
		}
	}

	// The service must still route between healthy clients promptly.
	for i := 0; i < 10; i++ {
		body := fmt.Sprintf("healthy-%d", i)
		if err := alice.SendMessage("bob", body); err != nil {
			t.Fatalf("healthy send: %v", err)
		}
		msg, err := bob.ReadMessage(10 * time.Second)
		if err != nil {
			t.Fatalf("healthy read %d: %v (service stalled by slow consumer)", i, err)
		}
		if msg.Body != body {
			t.Fatalf("healthy read %d = %+v", i, msg)
		}
	}
}
