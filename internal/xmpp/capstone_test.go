package xmpp_test

import (
	"testing"
	"time"

	"github.com/eactors/eactors-go/internal/ecrypto"
	"github.com/eactors/eactors-go/internal/pos"
	"github.com/eactors/eactors-go/internal/sgx"
	"github.com/eactors/eactors-go/internal/xmpp"
	"github.com/eactors/eactors-go/internal/xmpp/client"
)

// TestCapstoneFullDeployment exercises every subsystem together, the
// way a real operator would run the service:
//
//   - an SGX platform with the calibrated cost model (not zeroed),
//   - the Online list in an encrypted Persistent Object Store,
//   - four shards in two enclaves plus an enclaved CONNECTOR,
//   - a dedicated room enclave,
//   - O2O routing, group fan-out, iq queries, disconnect cleanup,
//   - and a final Runtime.Report consistency check.
func TestCapstoneFullDeployment(t *testing.T) {
	var dirKey [ecrypto.KeySize]byte
	copy(dirKey[:], "capstone-directory-key-32-bytes!")
	store, err := pos.Open(pos.Options{SizeBytes: 8 << 20, EncryptionKey: &dirKey})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	platform := sgx.NewPlatform() // real cost model: charges apply
	srv, err := xmpp.Start(xmpp.Options{
		Shards:         4,
		Trusted:        true,
		EnclaveCount:   2,
		DedicatedRooms: []string{"boardroom"},
		DirectoryStore: store,
		Platform:       platform,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Stop()

	users := map[string]*client.Client{}
	for _, name := range []string{"alice", "bob", "carol", "dave"} {
		c, err := client.Dial(srv.Addr(), name, 30*time.Second)
		if err != nil {
			t.Fatalf("dial %s: %v", name, err)
		}
		defer c.Close()
		users[name] = c
	}
	waitFor(t, func() bool { return srv.Online().Len() == 4 }, "all users in the POS directory")

	// O2O in both directions across shards.
	if err := users["alice"].SendMessage("dave", "cross-shard hello"); err != nil {
		t.Fatal(err)
	}
	msg, err := users["dave"].ReadMessage(10 * time.Second)
	if err != nil || msg.Body != "cross-shard hello" {
		t.Fatalf("O2O: %+v %v", msg, err)
	}

	// Presence query through iq.
	online, err := users["bob"].QueryOnline("carol", 10*time.Second)
	if err != nil || !online {
		t.Fatalf("QueryOnline = %v, %v", online, err)
	}

	// Dedicated-room group chat: all four join, alice sends.
	for name, c := range users {
		if err := c.JoinRoom("boardroom"); err != nil {
			t.Fatalf("%s join: %v", name, err)
		}
	}
	time.Sleep(300 * time.Millisecond)
	if err := users["alice"].SendGroupMessage("boardroom", "quarterly numbers"); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"bob", "carol", "dave"} {
		msg, err := users[name].ReadMessage(10 * time.Second)
		if err != nil {
			t.Fatalf("%s group read: %v", name, err)
		}
		if msg.Body != "quarterly numbers" || !msg.Group {
			t.Fatalf("%s got %+v", name, msg)
		}
	}

	// Disconnect cleanup flows back into the POS directory.
	_ = users["dave"].Close()
	waitFor(t, func() bool { return srv.Online().Len() == 3 }, "dave removed from POS directory")

	// Service counters.
	st := srv.Stats()
	if st.Connections != 4 || st.Routed < 1 || st.GroupFanout != 3 {
		t.Fatalf("stats = %+v", st)
	}

	// Runtime report consistency.
	report := srv.Runtime().Report()
	if len(report.FailedActors) != 0 {
		t.Fatalf("failed actors: %v", report.FailedActors)
	}
	// connector + 2 shard enclaves + 1 room enclave.
	if len(report.Enclaves) != 4 {
		t.Fatalf("enclaves in report: %d (%+v)", len(report.Enclaves), report.Enclaves)
	}
	var sawEncryptedHandoff bool
	for _, ch := range report.Channels {
		if ch.Encrypted && ch.Stats.AToB+ch.Stats.BToA > 0 {
			sawEncryptedHandoff = true
		}
	}
	if !sawEncryptedHandoff {
		t.Fatal("no encrypted channel carried traffic")
	}
	if report.Platform.Crossings == 0 {
		t.Fatal("no enclave crossings recorded under the real cost model")
	}
	// The directory put its entries in the store.
	if store.Stats().Sets < 4 {
		t.Fatalf("store Sets = %d", store.Stats().Sets)
	}
}
