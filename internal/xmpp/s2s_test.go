package xmpp

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"github.com/eactors/eactors-go/internal/transport"
	"github.com/eactors/eactors-go/internal/xmpp/stanza"
)

func startS2S(t *testing.T, opts S2SOptions) *S2SServer {
	t.Helper()
	srv, err := ListenS2S("127.0.0.1:0", "example.org", opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	return srv
}

func TestS2SPipelinedStanzas(t *testing.T) {
	srv := startS2S(t, S2SOptions{})
	link, err := DialS2S(srv.Addr(), 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = link.Close() })

	// Synchronous sends work...
	if err := link.SendStanza([]byte(stanza.Message("a@remote", "b@example.org", "hi"))); err != nil {
		t.Fatal(err)
	}
	// ...and a full pipeline of issued stanzas acks out of lockstep.
	const depth = 48
	calls := make([]*transport.Call, depth)
	for i := range calls {
		xml := stanza.Message("a@remote", "b@example.org", fmt.Sprintf("m%d", i))
		if calls[i], err = link.IssueStanza([]byte(xml)); err != nil {
			t.Fatalf("issue %d: %v", i, err)
		}
	}
	for i, c := range calls {
		if err := link.WaitAck(c); err != nil {
			t.Fatalf("ack %d: %v", i, err)
		}
	}
	st := srv.Stats()
	if st.Links != 1 || st.Stanzas != depth+1 || st.Rejected != 0 {
		t.Fatalf("server stats = %+v", st)
	}
	ls := link.Stats()
	if ls.Completed != depth+1 || ls.MaxInFlightBytes > ls.WindowLimit {
		t.Fatalf("link stats = %+v", ls)
	}
}

func TestS2SConcurrentLinks(t *testing.T) {
	srv := startS2S(t, S2SOptions{})
	const links, stanzas = 4, 30
	var wg sync.WaitGroup
	errs := make(chan error, links)
	for id := 0; id < links; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			link, err := DialS2S(srv.Addr(), 10*time.Second)
			if err != nil {
				errs <- err
				return
			}
			defer link.Close()
			for i := 0; i < stanzas; i++ {
				xml := stanza.Message(fmt.Sprintf("u%d@remote", id), "x@example.org", fmt.Sprintf("m%d", i))
				if err := link.SendStanza([]byte(xml)); err != nil {
					errs <- fmt.Errorf("link %d stanza %d: %w", id, i, err)
					return
				}
			}
		}(id)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := srv.Stats()
	if st.Links != links || st.Stanzas != links*stanzas {
		t.Fatalf("stats = %+v", st)
	}
}

// TestS2SMalformedStanzaKillsLink: federated peers speak canonical XML;
// garbage terminates the link with GOAWAY rather than limping on.
func TestS2SMalformedStanzaKillsLink(t *testing.T) {
	srv := startS2S(t, S2SOptions{})
	link, err := DialS2S(srv.Addr(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = link.Close() })
	if err := link.SendStanza([]byte("not xml at all")); err == nil {
		t.Fatal("malformed stanza acked")
	}
	if st := srv.Stats(); st.Rejected != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// The link is poisoned; further sends fail fast.
	if err := link.SendStanza([]byte(stanza.Message("a@b", "c@d", "x"))); err == nil {
		t.Fatal("send on a dead link succeeded")
	}
}

// TestS2SRejectsNonS2SClient: a KV-only client must be refused at the
// feature level, not half-work.
func TestS2SRejectsNonS2SClient(t *testing.T) {
	srv := startS2S(t, S2SOptions{})
	link, err := DialS2S(srv.Addr(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	_ = link.Close()

	// A raw session offering only FeatureKV gets no S2S grant.
	conn, err := net.DialTimeout("tcp", srv.Addr(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := transport.Connect(conn, transport.SessionOptions{Features: transport.FeatureKV})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = sess.Close() })
	if sess.PeerFeatures()&transport.FeatureS2S != 0 {
		t.Fatal("s2s feature granted to a kv-only hello")
	}
}
