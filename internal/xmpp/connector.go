package xmpp

import (
	"fmt"
	"time"

	"github.com/eactors/eactors-go/internal/core"
	"github.com/eactors/eactors-go/internal/netactors"
	"github.com/eactors/eactors-go/internal/xmpp/stanza"
)

// controlDeadline bounds SendRetry on the connector's control sends
// (watch/unwatch, handoff, handshake frames, teardown closes): losing
// one of these wedges a client session, so they persist through
// transient channel fullness and injected send failures.
func controlDeadline() time.Time { return time.Now().Add(50 * time.Millisecond) }

// connectorState is the CONNECTOR eactor's private state.
type connectorState struct {
	phase    int
	listener uint32
	sessions map[uint32]*session
	// handedOff remembers which shard now owns a socket, so bytes that
	// raced the reader handover can be forwarded.
	handedOff map[uint32]int
	scratch   []byte
	recvBuf   []byte
}

const (
	cphListen = iota
	cphAwaitListener
	cphServe
)

// connectorSpec builds the CONNECTOR eactor (Figure 7): it opens the
// server socket, accepts clients, runs the stream/auth handshake, then
// publishes the connection in the Online list and hands it off to the
// responsible XMPP shard.
func (srv *Server) connectorSpec(opts Options, worker int, enclave string, shards int, addrCh chan<- string) core.Spec {
	st := &connectorState{
		sessions:  make(map[uint32]*session),
		handedOff: make(map[uint32]int),
		recvBuf:   make([]byte, 4096),
	}
	var (
		open, accept, read, write, closeCh *core.Endpoint
		handoff                            []*core.Endpoint
	)
	return core.Spec{
		Name:    "connector",
		Enclave: enclave,
		Worker:  worker,
		State:   st,
		Init: func(self *core.Self) error {
			open = self.MustChannel("open")
			accept = self.MustChannel("c-accept")
			read = self.MustChannel("c-read")
			write = self.MustChannel("c-write")
			closeCh = self.MustChannel("c-close")
			handoff = make([]*core.Endpoint, shards)
			for i := 0; i < shards; i++ {
				handoff[i] = self.MustChannel(fmt.Sprintf("handoff-%d", i))
			}
			return nil
		},
		Body: func(self *core.Self) {
			switch st.phase {
			case cphListen:
				m, _ := (netactors.Msg{Type: netactors.MsgListen, Data: []byte(opts.ListenAddr)}).AppendTo(st.scratch[:0])
				st.scratch = m
				if open.Send(m) == nil {
					st.phase = cphAwaitListener
					self.Progress()
				}
			case cphAwaitListener:
				if st.listener == 0 {
					n, ok, err := open.Recv(st.recvBuf)
					if err != nil || !ok {
						return
					}
					msg, err := netactors.ParseMsg(st.recvBuf[:n])
					if err != nil || msg.Type != netactors.MsgOpenOK {
						return
					}
					st.listener = msg.Sock
					addrCh <- string(msg.Data)
				}
				// The MsgOpenOK is consumed by now, so this phase must be
				// re-enterable until the watch lands: an unwatched listener
				// accepts nobody, ever.
				w, _ := (netactors.Msg{Type: netactors.MsgWatch, Sock: st.listener}).AppendTo(st.scratch[:0])
				st.scratch = w
				if accept.SendRetry(w, controlDeadline()) == nil {
					st.phase = cphServe
					self.Progress()
				}
			case cphServe:
				srv.connectorServe(self, st, accept, read, write, closeCh, handoff, shards)
			}
		},
	}
}

// connectorServe is one serve-phase invocation: accept new sockets,
// drive handshakes, hand authenticated sessions to their shards.
func (srv *Server) connectorServe(self *core.Self, st *connectorState,
	accept, read, write, closeCh *core.Endpoint, handoff []*core.Endpoint, shards int) {

	// New connections.
	for {
		n, ok, err := accept.Recv(st.recvBuf)
		if err != nil || !ok {
			break
		}
		msg, err := netactors.ParseMsg(st.recvBuf[:n])
		if err != nil || msg.Type != netactors.MsgAccepted {
			continue
		}
		st.sessions[msg.Sock] = &session{sock: msg.Sock}
		w, _ := (netactors.Msg{Type: netactors.MsgWatch, Sock: msg.Sock}).AppendTo(st.scratch[:0])
		st.scratch = w
		// An unwatched socket never produces handshake bytes, so the
		// watch must survive a transiently full channel.
		_ = read.SendRetry(w, controlDeadline()) //sendcheck:ok
		self.Progress()
	}

	// Handshake traffic.
	for i := 0; i < 64; i++ {
		n, ok, err := read.Recv(st.recvBuf)
		if err != nil || !ok {
			break
		}
		msg, err := netactors.ParseMsg(st.recvBuf[:n])
		if err != nil {
			continue
		}
		self.Progress()
		switch msg.Type {
		case netactors.MsgClosed:
			delete(st.sessions, msg.Sock)
			delete(st.handedOff, msg.Sock)
		case netactors.MsgData:
			if shard, ok := st.handedOff[msg.Sock]; ok {
				// Raced the reader handover: forward to the new owner.
				_ = handoff[shard].SendRetry(encodeStray(msg.Sock, msg.Data), controlDeadline()) //sendcheck:ok
				continue
			}
			sess, ok := st.sessions[msg.Sock]
			if !ok {
				continue
			}
			sess.scanner.Feed(msg.Data)
			srv.connectorHandshake(self, st, sess, read, write, closeCh, handoff, shards)
		}
	}
}

// connectorHandshake advances one session's handshake as far as its
// buffered bytes allow.
func (srv *Server) connectorHandshake(self *core.Self, st *connectorState, sess *session,
	read, write, closeCh *core.Endpoint, handoff []*core.Endpoint, shards int) {

	fail := func() {
		srv.authFail.Add(1)
		_ = srv.sendFrame(write, sess.sock, []byte(stanza.AuthFailure), &st.scratch) //sendcheck:ok
		// The close travels on the WRITER's channel behind the failure
		// frame, so the peer sees the rejection before the reset. A lost
		// close leaks the socket, so it persists like the other control
		// sends.
		c, _ := (netactors.Msg{Type: netactors.MsgClose, Sock: sess.sock}).AppendTo(nil)
		_ = write.SendRetry(c, controlDeadline()) //sendcheck:ok
		delete(st.sessions, sess.sock)
	}

	for {
		el, ok, err := sess.scanner.Next()
		if err != nil {
			fail()
			return
		}
		if !ok {
			return
		}
		switch {
		case el.Kind == stanza.KindStreamStart:
			if sess.sawHdr {
				fail()
				return
			}
			sess.sawHdr = true
			_ = srv.sendFrame(write, sess.sock, []byte(stanza.StreamHeader(ServiceName, el.Attr("from"))), &st.scratch) //sendcheck:ok
		case el.Kind == stanza.KindStanza && el.Name == "auth":
			user := el.Attr("user")
			key := el.Attr("key")
			if !sess.sawHdr || user == "" {
				fail()
				return
			}
			sess.user = user
			sess.keyHex = key
			sess.authed = true
			srv.online.Add(OnlineEntry{User: user, Sock: sess.sock, Key: key})
			srv.conns.Add(1)
			_ = srv.sendFrame(write, sess.sock, []byte(stanza.AuthSuccess), &st.scratch) //sendcheck:ok

			// Hand the connection to its shard: release our READER and
			// transfer any bytes the scanner still buffers. A dropped
			// handoff would orphan the session — the shard would never
			// learn the socket exists — so both control sends persist.
			shard := shardOf(user, shards)
			u, _ := (netactors.Msg{Type: netactors.MsgUnwatch, Sock: sess.sock}).AppendTo(st.scratch[:0])
			st.scratch = u
			_ = read.SendRetry(u, controlDeadline()) //sendcheck:ok
			leftover := sess.scanner.Remainder()
			_ = handoff[shard].SendRetry(encodeHandoff(OnlineEntry{User: user, Sock: sess.sock, Key: key}, leftover), controlDeadline()) //sendcheck:ok
			delete(st.sessions, sess.sock)
			st.handedOff[sess.sock] = shard
			self.Progress()
			return
		default:
			// Anything else before auth is a protocol violation.
			fail()
			return
		}
	}
}

// sendFrame wraps bytes in a MsgData frame and sends them to a WRITER
// with bounded persistence — handshake frames are part of the control
// plane; a client blocks on every one of them. The error is typed
// (core.ErrMailboxFull past the deadline) for callers that care.
func (srv *Server) sendFrame(write *core.Endpoint, sock uint32, data []byte, scratch *[]byte) error {
	m, err := (netactors.Msg{Type: netactors.MsgData, Sock: sock, Data: data}).AppendTo((*scratch)[:0])
	if err != nil {
		return err
	}
	*scratch = m
	return write.SendRetry(m, controlDeadline())
}
