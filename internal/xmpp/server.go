package xmpp

import (
	"fmt"
	"hash/fnv"
	"sync/atomic"
	"time"

	"github.com/eactors/eactors-go/internal/core"
	"github.com/eactors/eactors-go/internal/ecrypto"
	"github.com/eactors/eactors-go/internal/faults"
	"github.com/eactors/eactors-go/internal/netactors"
	"github.com/eactors/eactors-go/internal/netloop"
	"github.com/eactors/eactors-go/internal/pos"
	"github.com/eactors/eactors-go/internal/profile"
	"github.com/eactors/eactors-go/internal/sgx"
	"github.com/eactors/eactors-go/internal/telemetry"
	"github.com/eactors/eactors-go/internal/trace"
)

// Options configures the EActors XMPP service deployment. As in the
// paper, the deployment (shard count, enclave layout, trust) is entirely
// separate from the service logic.
type Options struct {
	// ListenAddr is the TCP listen address (default "127.0.0.1:0").
	ListenAddr string
	// Shards is the number of XMPP eactors, each with its own READER and
	// WRITER (the paper's EA/3 is 1 shard, EA/6 is 2, EA/48 is 16).
	Shards int
	// Trusted places the CONNECTOR and XMPP eactors inside enclaves.
	Trusted bool
	// Switchless services the encrypted cross-enclave channels with
	// proxy workers (core.SwitchlessConfig) instead of blocking
	// per-message crossings. No effect unless Trusted.
	Switchless bool
	// EnclaveCount is the number of enclaves the XMPP eactors are spread
	// over when Trusted (Figure 16); clamped to [1, Shards].
	EnclaveCount int
	// Platform supplies the SGX simulation; nil creates a default one.
	Platform *sgx.Platform
	// NetLoop multiplexes connection reads through an event-driven
	// readiness loop (internal/netloop) instead of one pump goroutine
	// per connection; disabled (zero) keeps the legacy pumps.
	NetLoop netloop.Config
	// PoolNodes / NodePayload size the runtime's node pool.
	PoolNodes   int
	NodePayload int
	// MaxBatch bounds per-invocation message processing per shard.
	MaxBatch int
	// DedicatedRooms lists group chats confined to their own XMPP
	// eactor — and, when Trusted, their own enclave (Section 2.1: per-
	// group-chat enclaves limit what a compromised enclave exposes).
	// Messages for these rooms are forwarded from the regular shards
	// over encrypted channels; the group plaintext exists only inside
	// the room's enclave.
	DedicatedRooms []string
	// DirectoryStore, when non-nil, keeps the Online list in this
	// Persistent Object Store instead of in memory (Section 4.1: the POS
	// holds "configuration and application data" shared by all eactors).
	// Open the store in encrypted mode for confidentiality at rest; the
	// in-memory directory's sealing option is bypassed.
	DirectoryStore *pos.Store
	// Telemetry enables the runtime observability subsystem
	// (core.Config.Telemetry): worker/channel/SGX metrics, a stanza
	// routing latency histogram, the networking and service counters, and
	// per-worker flight recorders. Export via Server.Telemetry — e.g.
	// telemetry.Serve for the Prometheus/pprof endpoint.
	Telemetry bool
	// Trace enables sampled causal tracing (core.Config.Trace),
	// independent of Telemetry. Export via Server.Tracer — e.g.
	// telemetry.WithTraces for the /debug/traces endpoint.
	Trace bool
	// TraceSampleEvery roots one trace per this many inbound bursts
	// (trace.DefaultSampleEvery when zero).
	TraceSampleEvery int
	// Profile enables per-actor cost accounting (independent of
	// Telemetry and Trace); see Server.CostProfile.
	Profile bool
	// ProfileSampleEvery decimates the profile's seal/open clock reads
	// (profile.DefaultSampleEvery when zero).
	ProfileSampleEvery int
	// Faults arms the runtime's deterministic fault injector
	// (core.Config.Faults) for chaos testing; nil in production.
	Faults *faults.Injector
}

// Stats are the service counters.
type Stats struct {
	// Connections counts successful authentications.
	Connections uint64
	// Routed counts one-to-one messages delivered to a recipient socket.
	Routed uint64
	// GroupFanout counts per-member group-chat deliveries.
	GroupFanout uint64
	// AuthFailures counts rejected authentication attempts.
	AuthFailures uint64
}

// Server is a running EActors XMPP service.
type Server struct {
	rt     *core.Runtime
	sys    *netactors.System
	online Directory
	rooms  *RoomTable
	addr   string
	// roomIndex maps dedicated rooms to their room-shard index.
	roomIndex map[string]int

	conns    atomic.Uint64
	routed   atomic.Uint64
	fanout   atomic.Uint64
	authFail atomic.Uint64

	// routeNs is the stanza routing latency histogram; nil (a telemetry
	// no-op) unless Options.Telemetry was set.
	routeNs *telemetry.Histogram
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.addr }

// Online returns the shared connection directory (tests and tooling).
func (s *Server) Online() Directory { return s.online }

// Runtime returns the underlying EActors runtime.
func (s *Server) Runtime() *core.Runtime { return s.rt }

// Telemetry returns the runtime's telemetry registry, or nil when
// Options.Telemetry was not set.
func (s *Server) Telemetry() *telemetry.Registry { return s.rt.Telemetry() }

// Tracer returns the runtime's causal tracer, or nil when Options.Trace
// was not set.
func (s *Server) Tracer() *trace.Tracer { return s.rt.Tracer() }

// CostProfile captures the runtime's per-actor cost-model snapshot
// (empty when Options.Profile was not set).
func (s *Server) CostProfile() profile.Model { return s.rt.CostProfile() }

// ProfileSource returns the snapshot source for telemetry.WithProfile,
// or nil when Options.Profile was not set — nil keeps /debug/profile
// unmounted.
func (s *Server) ProfileSource() func() profile.Model {
	if !s.rt.ProfileEnabled() {
		return nil
	}
	return s.rt.CostProfile
}

// Stats returns a snapshot of the service counters.
func (s *Server) Stats() Stats {
	return Stats{
		Connections:  s.conns.Load(),
		Routed:       s.routed.Load(),
		GroupFanout:  s.fanout.Load(),
		AuthFailures: s.authFail.Load(),
	}
}

// Stop shuts the service down.
func (s *Server) Stop() {
	s.rt.Stop()
	s.sys.Shutdown()
}

func shardOf(user string, shards int) int {
	h := fnv.New32a()
	h.Write([]byte(user))
	return int(h.Sum32() % uint32(shards))
}

// Start deploys and launches the service, blocking until the listener
// is bound.
func Start(opts Options) (*Server, error) {
	if opts.ListenAddr == "" {
		opts.ListenAddr = "127.0.0.1:0"
	}
	if opts.Shards <= 0 {
		opts.Shards = 1
	}
	if opts.MaxBatch <= 0 {
		opts.MaxBatch = 32
	}
	enclaveCount := 0
	if opts.Trusted {
		enclaveCount = opts.EnclaveCount
		if enclaveCount <= 0 {
			enclaveCount = 1
		}
		if enclaveCount > opts.Shards {
			enclaveCount = opts.Shards
		}
	}
	platform := opts.Platform
	if platform == nil {
		platform = sgx.NewPlatform()
	}

	// The shared directory is sealed at rest unless every trusted eactor
	// shares a single enclave (Figure 16's single-enclave advantage).
	var online Directory
	if opts.DirectoryStore != nil {
		online = NewPOSDirectory(opts.DirectoryStore)
	} else {
		sealedDirectory := opts.Trusted && enclaveCount > 1
		var dirKey [ecrypto.KeySize]byte
		if sealedDirectory {
			// Any enclave could derive this via attestation; the
			// simulation simply generates it platform-side.
			tmp, err := platform.CreateEnclave("xmpp-dirkey", 0)
			if err != nil {
				return nil, err
			}
			tmp.ReadRand(dirKey[:])
			platform.DestroyEnclave(tmp)
		}
		list, err := NewOnlineList(sealedDirectory, dirKey)
		if err != nil {
			return nil, err
		}
		online = list
	}

	sys, err := netactors.NewSystemNetLoop(opts.NetLoop)
	if err != nil {
		return nil, fmt.Errorf("xmpp: netloop: %w", err)
	}
	srv := &Server{
		sys:       sys,
		online:    online,
		rooms:     NewRoomTable(),
		roomIndex: make(map[string]int, len(opts.DedicatedRooms)),
	}
	for j, room := range opts.DedicatedRooms {
		srv.roomIndex[room] = j
	}

	cfg, addrCh, err := srv.buildConfig(opts, enclaveCount)
	if err != nil {
		return nil, err
	}
	rt, err := core.NewRuntime(platform, cfg)
	if err != nil {
		return nil, err
	}
	srv.rt = rt
	if reg := rt.Telemetry(); reg != nil {
		srv.sys.AttachTelemetry(reg)
		if opts.DirectoryStore != nil {
			opts.DirectoryStore.AttachTelemetry(reg)
		}
		srv.routeNs = reg.Histogram("eactors_xmpp_route_ns", "stanza routing latency", "ns")
		reg.CounterFunc("eactors_xmpp_connections", "successful authentications", srv.conns.Load)
		reg.CounterFunc("eactors_xmpp_routed", "one-to-one messages delivered", srv.routed.Load)
		reg.CounterFunc("eactors_xmpp_group_fanout", "per-member group-chat deliveries", srv.fanout.Load)
		reg.CounterFunc("eactors_xmpp_auth_failures", "rejected authentication attempts", srv.authFail.Load)
	}
	if err := rt.Start(); err != nil {
		rt.Stop()
		return nil, err
	}
	select {
	case addr := <-addrCh:
		srv.addr = addr
	case <-time.After(10 * time.Second):
		srv.Stop()
		return nil, fmt.Errorf("xmpp: listener did not come up on %s", opts.ListenAddr)
	}
	return srv, nil
}

// buildConfig assembles the deployment: workers, enclaves, channels and
// eactors for the CONNECTOR side and every shard.
func (srv *Server) buildConfig(opts Options, enclaveCount int) (core.Config, chan string, error) {
	shards := opts.Shards
	addrCh := make(chan string, 1)

	cfg := core.Config{
		PoolNodes:          opts.PoolNodes,
		NodePayload:        opts.NodePayload,
		Telemetry:          opts.Telemetry,
		Trace:              opts.Trace,
		TraceSampleEvery:   opts.TraceSampleEvery,
		Profile:            opts.Profile,
		ProfileSampleEvery: opts.ProfileSampleEvery,
		Faults:             opts.Faults,
		Switchless:         core.SwitchlessConfig{Enabled: opts.Switchless && opts.Trusted},
	}

	// Workers: 0 = connector, 1 = connector networking, then per shard a
	// trusted worker and a networking worker (the paper's deployment,
	// Section 5.1.3).
	cfg.Workers = make([]core.WorkerSpec, 2+2*shards)
	connectorWorker := 0
	connectorNetWorker := 1
	shardWorker := func(i int) int { return 2 + 2*i }
	shardNetWorker := func(i int) int { return 2 + 2*i + 1 }

	// Enclaves.
	connectorEnclave := ""
	shardEnclave := make([]string, shards)
	if opts.Trusted {
		connectorEnclave = "xmpp-connector"
		cfg.Enclaves = append(cfg.Enclaves, core.EnclaveSpec{Name: connectorEnclave})
		for e := 0; e < enclaveCount; e++ {
			cfg.Enclaves = append(cfg.Enclaves, core.EnclaveSpec{Name: fmt.Sprintf("xmpp-%d", e)})
		}
		for i := 0; i < shards; i++ {
			shardEnclave[i] = fmt.Sprintf("xmpp-%d", i%enclaveCount)
		}
	}

	// Connector-side channels. Networking channels are plaintext by
	// design (Section 5.1.2): the payloads they carry are already
	// protected at the service level, and their untrusted endpoint could
	// read them anyway.
	cfg.Channels = append(cfg.Channels,
		core.ChannelSpec{Name: "open", A: "connector", B: "opener", Plaintext: true},
		core.ChannelSpec{Name: "c-accept", A: "connector", B: "accepter", Plaintext: true},
		core.ChannelSpec{Name: "c-read", A: "connector", B: "c-reader", Plaintext: true, Capacity: 4096},
		core.ChannelSpec{Name: "c-write", A: "connector", B: "c-writer", Plaintext: true, Capacity: 4096},
		core.ChannelSpec{Name: "c-close", A: "connector", B: "closer", Plaintext: true},
	)
	for i := 0; i < shards; i++ {
		cfg.Channels = append(cfg.Channels,
			// Handoffs cross enclave boundaries: encrypted when trusted.
			core.ChannelSpec{Name: fmt.Sprintf("handoff-%d", i), A: "connector", B: shardName(i)},
			core.ChannelSpec{Name: fmt.Sprintf("read-%d", i), A: shardName(i), B: readerName(i), Plaintext: true, Capacity: 4096},
			core.ChannelSpec{Name: fmt.Sprintf("write-%d", i), A: shardName(i), B: writerName(i), Plaintext: true, Capacity: 4096},
			core.ChannelSpec{Name: fmt.Sprintf("close-%d", i), A: shardName(i), B: "closer", Plaintext: true},
		)
	}

	// Networking eactors (always untrusted).
	closerChannels := []string{"c-close"}
	for i := 0; i < shards; i++ {
		closerChannels = append(closerChannels, fmt.Sprintf("close-%d", i))
	}
	cfg.Actors = append(cfg.Actors,
		srv.sys.OpenerSpec("opener", connectorNetWorker, "open"),
		srv.sys.AccepterSpec("accepter", connectorNetWorker, "c-accept"),
		srv.sys.ReaderSpec("c-reader", connectorNetWorker, "c-read"),
		srv.sys.WriterSpec("c-writer", connectorNetWorker, "c-write"),
		srv.sys.CloserSpec("closer", connectorNetWorker, closerChannels...),
	)
	for i := 0; i < shards; i++ {
		cfg.Actors = append(cfg.Actors,
			srv.sys.ReaderSpec(readerName(i), shardNetWorker(i), fmt.Sprintf("read-%d", i)),
			srv.sys.WriterSpec(writerName(i), shardNetWorker(i), fmt.Sprintf("write-%d", i)),
		)
	}

	// The CONNECTOR eactor.
	cfg.Actors = append(cfg.Actors, srv.connectorSpec(opts, connectorWorker, connectorEnclave, shards, addrCh))

	// The XMPP shard eactors.
	for i := 0; i < shards; i++ {
		cfg.Actors = append(cfg.Actors, srv.shardSpec(opts, i, shardWorker(i), shardEnclave[i]))
	}

	// Dedicated room shards (Section 2.1's per-group-chat enclaves):
	// each gets its own worker, its own enclave when trusted, a WRITER
	// on the connector's networking worker, and a forward channel from
	// every regular shard.
	for j, room := range opts.DedicatedRooms {
		roomWorker := len(cfg.Workers)
		cfg.Workers = append(cfg.Workers, core.WorkerSpec{})
		roomEnclave := ""
		if opts.Trusted {
			roomEnclave = roomEnclaveName(j)
			cfg.Enclaves = append(cfg.Enclaves, core.EnclaveSpec{Name: roomEnclave})
		}
		cfg.Channels = append(cfg.Channels, core.ChannelSpec{
			Name: fmt.Sprintf("room-write-%d", j),
			A:    roomShardName(j), B: roomWriterName(j),
			Plaintext: true, Capacity: 4096,
		})
		for i := 0; i < shards; i++ {
			cfg.Channels = append(cfg.Channels, core.ChannelSpec{
				Name: roomFwdChannel(i, j),
				A:    shardName(i), B: roomShardName(j),
				Capacity: 1024,
			})
		}
		cfg.Actors = append(cfg.Actors,
			srv.sys.WriterSpec(roomWriterName(j), connectorNetWorker, fmt.Sprintf("room-write-%d", j)),
			srv.roomShardSpec(opts, j, roomWorker, roomEnclave, room, shards),
		)
	}
	return cfg, addrCh, nil
}

func shardName(i int) string  { return fmt.Sprintf("xmpp-shard-%d", i) }
func readerName(i int) string { return fmt.Sprintf("reader-%d", i) }
func writerName(i int) string { return fmt.Sprintf("writer-%d", i) }
