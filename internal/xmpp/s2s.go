package xmpp

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/eactors/eactors-go/internal/transport"
	"github.com/eactors/eactors-go/internal/xmpp/stanza"
)

// Server-to-server federation stub (ROADMAP item 3): remote XMPP
// domains exchange stanzas over the framed transport instead of an XML
// stream — one TCP link carries many concurrent TStanza frames, each
// acknowledged by a TResponse, with the transport's opaque replay
// window deduplicating at-least-once retransmits and the handshake's
// window advertisement bounding what a slow federation peer can have
// thrown at it. The stub validates and counts; routing federated
// stanzas into the local shard actors is future work, which is why this
// lives beside (not inside) the actor pipeline.

// S2SOptions configures a federation listener.
type S2SOptions struct {
	// Window is the per-link receive-buffer advertisement
	// (transport.DefaultWindow when zero).
	Window uint32
	// ReplayWindow is the per-link resend-dedup depth
	// (transport.DefaultReplayWindow when zero).
	ReplayWindow int
}

// S2SStats snapshots a federation listener's counters.
type S2SStats struct {
	// Links counts accepted federation sessions.
	Links uint64
	// Stanzas counts well-formed stanzas acknowledged.
	Stanzas uint64
	// Rejected counts malformed stanzas (each kills its link).
	Rejected uint64
}

// S2SServer accepts framed federation links for one local domain.
type S2SServer struct {
	domain string
	opts   S2SOptions
	ln     net.Listener

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup

	links, stanzas, rejected atomic.Uint64
}

// ListenS2S starts a federation listener for domain on addr.
func ListenS2S(addr, domain string, opts S2SOptions) (*S2SServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &S2SServer{domain: domain, opts: opts, ln: ln, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound listen address.
func (s *S2SServer) Addr() string { return s.ln.Addr().String() }

// Stats snapshots the counters.
func (s *S2SServer) Stats() S2SStats {
	return S2SStats{Links: s.links.Load(), Stanzas: s.stanzas.Load(), Rejected: s.rejected.Load()}
}

// Close stops accepting, tears down live links, and joins every
// serving goroutine.
func (s *S2SServer) Close() {
	s.mu.Lock()
	s.closed = true
	for conn := range s.conns {
		_ = conn.Close()
	}
	s.mu.Unlock()
	_ = s.ln.Close()
	s.wg.Wait()
}

func (s *S2SServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.serveLink(conn)
	}
}

func (s *S2SServer) serveLink(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		_ = conn.Close()
	}()
	s.links.Add(1)
	//nolint — a peer hanging up mid-link is normal federation churn
	_ = transport.Serve(conn, s.handleFrame, transport.ServeOptions{
		Features:     transport.FeatureS2S,
		Window:       s.opts.Window,
		ReplayWindow: s.opts.ReplayWindow,
	})
}

// handleFrame validates one federated stanza and acks it. A malformed
// stanza is a protocol violation from a *server* peer (unlike flaky
// clients, federated servers speak canonical XML), so it terminates the
// link via GOAWAY.
func (s *S2SServer) handleFrame(f transport.Frame) (transport.Frame, bool) {
	if f.Type != transport.TStanza {
		s.rejected.Add(1)
		return transport.Frame{Type: transport.TResponse, Payload: []byte("s2s: want stanza frames")}, false
	}
	var sc stanza.Scanner
	sc.Feed(f.Payload)
	st, ok, err := sc.Next()
	if err != nil || !ok || sc.Buffered() != 0 {
		s.rejected.Add(1)
		return transport.Frame{Type: transport.TResponse, Payload: []byte("s2s: malformed stanza")}, false
	}
	_ = st // stub: validated and acked; shard routing is future work
	s.stanzas.Add(1)
	return transport.Frame{Type: transport.TResponse}, true
}

// S2SLink is the dialing side of a federation link: a transport session
// restricted to TStanza traffic. Safe for concurrent use.
type S2SLink struct {
	sess *transport.Session
}

// DialS2S opens a federation link to a remote domain's s2s endpoint.
// timeout bounds the dial, handshake and each stanza ack (0 means 5s).
func DialS2S(addr string, timeout time.Duration) (*S2SLink, error) {
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	sess, err := transport.Connect(conn, transport.SessionOptions{
		Features:         transport.FeatureS2S,
		HandshakeTimeout: timeout,
		CallTimeout:      timeout,
	})
	if err != nil {
		return nil, err // Connect closed conn
	}
	if sess.PeerFeatures()&transport.FeatureS2S == 0 {
		_ = sess.Close()
		return nil, fmt.Errorf("xmpp: peer did not grant the s2s feature")
	}
	return &S2SLink{sess: sess}, nil
}

// IssueStanza puts one stanza in flight without waiting for its ack —
// federation links pipeline exactly like the KV client.
func (l *S2SLink) IssueStanza(xml []byte) (*transport.Call, error) {
	return l.sess.Issue(transport.TStanza, xml)
}

// WaitAck blocks until an issued stanza's ack arrives.
func (l *S2SLink) WaitAck(c *transport.Call) error {
	_, err := l.sess.Wait(c)
	return err
}

// SendStanza issues and waits in one step.
func (l *S2SLink) SendStanza(xml []byte) error {
	_, err := l.sess.Call(transport.TStanza, xml)
	return err
}

// Stats snapshots the underlying session counters.
func (l *S2SLink) Stats() transport.SessionStats { return l.sess.Stats() }

// Close tears the link down.
func (l *S2SLink) Close() error { return l.sess.Close() }
