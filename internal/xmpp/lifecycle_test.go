package xmpp_test

import (
	"runtime"
	"testing"
	"time"

	"github.com/eactors/eactors-go/internal/sgx"
	"github.com/eactors/eactors-go/internal/xmpp"
	"github.com/eactors/eactors-go/internal/xmpp/client"
)

// TestServerLifecycleDoesNotLeakGoroutines starts and stops the full
// service (with traffic) several times and checks the goroutine count
// returns near its baseline — workers, pumps and baseline handlers must
// all terminate.
func TestServerLifecycleDoesNotLeakGoroutines(t *testing.T) {
	runtime.GC()
	time.Sleep(100 * time.Millisecond)
	baseline := runtime.NumGoroutine()

	for round := 0; round < 3; round++ {
		srv, err := xmpp.Start(xmpp.Options{
			Shards:   2,
			Trusted:  true,
			Platform: sgx.NewPlatform(sgx.WithCostModel(sgx.ZeroCostModel())),
		})
		if err != nil {
			t.Fatal(err)
		}
		a, err := client.Dial(srv.Addr(), "a", 10*time.Second)
		if err != nil {
			srv.Stop()
			t.Fatal(err)
		}
		b, err := client.Dial(srv.Addr(), "b", 10*time.Second)
		if err != nil {
			srv.Stop()
			t.Fatal(err)
		}
		if err := a.SendMessage("b", "ping"); err != nil {
			t.Fatal(err)
		}
		if _, err := b.ReadMessage(10 * time.Second); err != nil {
			t.Fatal(err)
		}
		_ = a.Close()
		_ = b.Close()
		srv.Stop()
	}

	// Pumps exit asynchronously after their sockets close.
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		now := runtime.NumGoroutine()
		if now <= baseline+3 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: baseline %d, now %d (leak)", baseline, now)
		}
		time.Sleep(50 * time.Millisecond)
	}
}
