package xmpp

import (
	"encoding/binary"
	"fmt"

	"github.com/eactors/eactors-go/internal/core"
	"github.com/eactors/eactors-go/internal/ecrypto"
	"github.com/eactors/eactors-go/internal/netactors"
	"github.com/eactors/eactors-go/internal/xmpp/stanza"
)

// This file implements the paper's strongest messaging configuration
// (Sections 2.1 and 5.1): "dedicating each group chat to a separate
// enclave improves security. Here, if a user could trigger an exploit
// in her own enclave, this does not necessarily imply she would right
// away gain access to sensitive information of other users."
//
// Rooms listed in Options.DedicatedRooms get their own XMPP eactor in
// their own enclave. Regular shards forward groupchat stanzas for those
// rooms over (transparently encrypted) channels; all group plaintext —
// decryption with the sender key, re-encryption per member — happens
// only inside the room's enclave.

// roomForward is the message a regular shard sends to a room shard.
type roomForward struct {
	sender    string
	keyHex    string
	room      string
	sealedHex string
}

func encodeRoomForward(f roomForward) []byte {
	buf := make([]byte, 0, 8+len(f.sender)+len(f.keyHex)+len(f.room)+len(f.sealedHex))
	var tmp [2]byte
	put := func(s string) {
		binary.LittleEndian.PutUint16(tmp[:], uint16(len(s)))
		buf = append(buf, tmp[:]...)
		buf = append(buf, s...)
	}
	put(f.sender)
	put(f.keyHex)
	put(f.room)
	put(f.sealedHex)
	return buf
}

func decodeRoomForward(b []byte) (roomForward, error) {
	var f roomForward
	take := func() (string, bool) {
		if len(b) < 2 {
			return "", false
		}
		n := int(binary.LittleEndian.Uint16(b))
		if len(b) < 2+n {
			return "", false
		}
		s := string(b[2 : 2+n])
		b = b[2+n:]
		return s, true
	}
	var ok bool
	if f.sender, ok = take(); !ok {
		return f, errBadHandoff
	}
	if f.keyHex, ok = take(); !ok {
		return f, errBadHandoff
	}
	if f.room, ok = take(); !ok {
		return f, errBadHandoff
	}
	if f.sealedHex, ok = take(); !ok {
		return f, errBadHandoff
	}
	return f, nil
}

func roomShardName(j int) string   { return fmt.Sprintf("room-shard-%d", j) }
func roomWriterName(j int) string  { return fmt.Sprintf("room-writer-%d", j) }
func roomEnclaveName(j int) string { return fmt.Sprintf("xmpp-room-%d", j) }
func roomFwdChannel(i, j int) string {
	return fmt.Sprintf("roomfwd-%d-%d", i, j)
}

// roomShardSpec builds the dedicated eactor for room j: it drains the
// forward channels from every regular shard and fans messages out with
// per-member re-encryption, entirely within its own enclave.
func (srv *Server) roomShardSpec(opts Options, j, worker int, enclave, room string, shards int) core.Spec {
	ciphers := make(map[string]*ecrypto.Cipher)
	cipherFor := func(keyHex string) (*ecrypto.Cipher, error) {
		if c, ok := ciphers[keyHex]; ok {
			return c, nil
		}
		c, err := cipherFromHex(keyHex)
		if err != nil {
			return nil, err
		}
		ciphers[keyHex] = c
		return c, nil
	}
	var in []*core.Endpoint
	var write *core.Endpoint
	var pending [][]byte
	var stage core.SendStage
	recvBufs, recvLens := core.BatchBufs(opts.MaxBatch, 8192)
	return core.Spec{
		Name:    roomShardName(j),
		Enclave: enclave,
		Worker:  worker,
		Init: func(self *core.Self) error {
			for i := 0; i < shards; i++ {
				ep, err := self.Channel(roomFwdChannel(i, j))
				if err != nil {
					return err
				}
				in = append(in, ep)
			}
			var err error
			write, err = self.Channel(fmt.Sprintf("room-write-%d", j))
			return err
		},
		Body: func(self *core.Self) {
			// Retry frames that previously hit a full channel, as one
			// batch in FIFO order.
			if len(pending) > 0 {
				n, _ := write.SendBatch(pending) //sendcheck:ok
				if n > 0 {
					self.Progress()
					pending = pending[n:]
					if len(pending) == 0 {
						pending = nil
					}
				}
			}
			for _, ep := range in {
				n, _ := self.RecvBatch(ep, recvBufs, recvLens)
				for i := 0; i < n; i++ {
					fwd, err := decodeRoomForward(recvBufs[i][:recvLens[i]])
					if err != nil || fwd.room != room {
						continue
					}
					srv.roomFanout(fwd, cipherFor, &stage)
				}
			}
			// One SendBatch — one doorbell to the room's WRITER — for the
			// whole fan-out this round. Stage slots are reused next round,
			// so spilled frames get copies (backpressure path only).
			if stage.Len() > 0 {
				sent := 0
				if len(pending) == 0 {
					sent, _ = write.SendBatch(stage.Frames()) //sendcheck:ok
				}
				if sent > 0 {
					self.Progress()
				}
				for _, f := range stage.Frames()[sent:] {
					if len(pending) >= maxPendingWrites {
						break // slow-receiver protection: drop the rest
					}
					pending = append(pending, append([]byte(nil), f...))
				}
				stage.Reset()
			}
		},
	}
}

// roomFanout decrypts the sender's body and re-encrypts it per member —
// the room enclave is the only place this plaintext ever exists. Frames
// are staged; the caller flushes them as one batch.
func (srv *Server) roomFanout(fwd roomForward, cipherFor func(string) (*ecrypto.Cipher, error), stage *core.SendStage) {
	senderCipher, err := cipherFor(fwd.keyHex)
	if err != nil {
		return
	}
	body, err := OpenBodyWith(senderCipher, fwd.sealedHex)
	if err != nil {
		return
	}
	for _, member := range srv.rooms.Members(fwd.room) {
		if member == fwd.sender {
			continue
		}
		entry, ok := srv.online.Get(member)
		if !ok {
			continue
		}
		memberCipher, err := cipherFor(entry.Key)
		if err != nil {
			continue
		}
		sealed := SealBodyWith(memberCipher, body)
		frame := stanza.GroupMessage(fwd.sender, fwd.room, sealed)
		m, err := (netactors.Msg{Type: netactors.MsgData, Sock: entry.Sock, Data: []byte(frame)}).AppendTo(stage.Slot())
		if err != nil {
			continue
		}
		stage.Push(m)
		srv.fanout.Add(1)
	}
}
