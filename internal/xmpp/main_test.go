package xmpp

import (
	"testing"

	"github.com/eactors/eactors-go/internal/testutil/leakcheck"
)

// TestMain fails the package if tests leak goroutines — connectors,
// shards, sessions, and networking pumps must unwind on Stop.
func TestMain(m *testing.M) { leakcheck.Main(m) }
