package xmpp_test

import (
	"testing"
	"time"

	"github.com/eactors/eactors-go/internal/ecrypto"
	"github.com/eactors/eactors-go/internal/pos"
	"github.com/eactors/eactors-go/internal/xmpp"
)

func TestPOSDirectoryUnit(t *testing.T) {
	store, err := pos.Open(pos.Options{SizeBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	d := xmpp.NewPOSDirectory(store)

	if _, ok := d.Get("alice"); ok {
		t.Fatal("empty directory found a user")
	}
	d.Add(xmpp.OnlineEntry{User: "alice", Sock: 7, Key: "cafe"})
	e, ok := d.Get("alice")
	if !ok || e.Sock != 7 || e.Key != "cafe" {
		t.Fatalf("Get = %+v ok=%v", e, ok)
	}
	if d.Len() != 1 {
		t.Fatalf("Len = %d", d.Len())
	}
	// Replace does not double-count.
	d.Add(xmpp.OnlineEntry{User: "alice", Sock: 8, Key: "cafe"})
	if d.Len() != 1 {
		t.Fatalf("Len after replace = %d", d.Len())
	}
	e, _ = d.Get("alice")
	if e.Sock != 8 {
		t.Fatalf("replace Get = %+v", e)
	}
	d.Remove("alice")
	if d.Len() != 0 {
		t.Fatalf("Len after remove = %d", d.Len())
	}
	d.Remove("alice") // idempotent
	if d.Len() != 0 {
		t.Fatalf("Len after double remove = %d", d.Len())
	}
}

// TestServerWithPOSDirectory runs the messaging service with its Online
// list in an encrypted POS, the paper's Section 4.1 deployment.
func TestServerWithPOSDirectory(t *testing.T) {
	var key [ecrypto.KeySize]byte
	copy(key[:], "directory-encryption-key-32-byte")
	store, err := pos.Open(pos.Options{SizeBytes: 4 << 20, EncryptionKey: &key})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	srv := startServer(t, xmpp.Options{
		Shards:         2,
		Trusted:        true,
		EnclaveCount:   2,
		DirectoryStore: store,
	})

	alice := dial(t, srv.Addr(), "alice")
	bob := dial(t, srv.Addr(), "bob")
	waitFor(t, func() bool { return srv.Online().Len() == 2 }, "both users online in POS")

	if err := alice.SendMessage("bob", "via the pos directory"); err != nil {
		t.Fatal(err)
	}
	msg, err := bob.ReadMessage(10 * time.Second)
	if err != nil || msg.Body != "via the pos directory" {
		t.Fatalf("ReadMessage = %+v, %v", msg, err)
	}

	// The entries live in the store (encrypted at rest).
	if st := store.Stats(); st.Sets < 2 {
		t.Fatalf("store Sets = %d, want >= 2", st.Sets)
	}

	_ = alice.Close()
	waitFor(t, func() bool { return srv.Online().Len() == 1 }, "alice removed from POS directory")
}
