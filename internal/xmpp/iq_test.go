package xmpp_test

import (
	"testing"
	"time"

	"github.com/eactors/eactors-go/internal/xmpp"
)

func TestIQPing(t *testing.T) {
	srv := startServer(t, xmpp.Options{Shards: 1, Trusted: true})
	alice := dial(t, srv.Addr(), "alice")
	for i := 0; i < 3; i++ {
		if err := alice.Ping(10 * time.Second); err != nil {
			t.Fatalf("Ping #%d: %v", i, err)
		}
	}
}

func TestIQQueryOnline(t *testing.T) {
	srv := startServer(t, xmpp.Options{Shards: 2})
	alice := dial(t, srv.Addr(), "alice")
	bob := dial(t, srv.Addr(), "bob")
	waitFor(t, func() bool { return srv.Online().Len() == 2 }, "both online")

	online, err := alice.QueryOnline("bob", 10*time.Second)
	if err != nil {
		t.Fatalf("QueryOnline(bob): %v", err)
	}
	if !online {
		t.Fatal("bob reported offline while connected")
	}
	online, err = alice.QueryOnline("carol", 10*time.Second)
	if err != nil {
		t.Fatalf("QueryOnline(carol): %v", err)
	}
	if online {
		t.Fatal("carol reported online while absent")
	}

	_ = bob.Close()
	waitFor(t, func() bool { return srv.Online().Len() == 1 }, "bob offline")
	online, err = alice.QueryOnline("bob", 10*time.Second)
	if err != nil {
		t.Fatalf("QueryOnline after close: %v", err)
	}
	if online {
		t.Fatal("bob reported online after disconnect")
	}
}
