package baseline

import (
	"testing"
	"time"

	"github.com/eactors/eactors-go/internal/xmpp/client"
)

func startBaseline(t *testing.T, opts Options) *Server {
	t.Helper()
	// Tests exercise protocol logic, not the modeled performance, so
	// shrink the work factors.
	if opts.WorkScale == 0 {
		opts.WorkScale = 0.01
	}
	s, err := Start(opts)
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(s.Stop)
	return s
}

func dial(t *testing.T, addr, user string) *client.Client {
	t.Helper()
	c, err := client.Dial(addr, user, 10*time.Second)
	if err != nil {
		t.Fatalf("Dial(%s): %v", user, err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return c
}

func TestStartUnknownKind(t *testing.T) {
	if _, err := Start(Options{}); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func testOneToOne(t *testing.T, kind Kind, ssl bool) {
	srv := startBaseline(t, Options{Kind: kind, SSL: ssl})
	alice := dial(t, srv.Addr(), "alice")
	bob := dial(t, srv.Addr(), "bob")

	if err := alice.SendMessage("bob", "hello"); err != nil {
		t.Fatal(err)
	}
	msg, err := bob.ReadMessage(10 * time.Second)
	if err != nil {
		t.Fatalf("ReadMessage: %v", err)
	}
	if msg.From != "alice" || msg.Body != "hello" {
		t.Fatalf("got %+v", msg)
	}
	if err := bob.SendMessage("alice", "hey"); err != nil {
		t.Fatal(err)
	}
	if _, err := alice.ReadMessage(10 * time.Second); err != nil {
		t.Fatalf("reply: %v", err)
	}
	st := srv.Stats()
	if st.Connections != 2 || st.Routed != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestJabberD2OneToOne(t *testing.T) { testOneToOne(t, JabberD2Kind, false) }
func TestEjabberdOneToOne(t *testing.T) { testOneToOne(t, EjabberdKind, false) }
func TestJabberD2SSL(t *testing.T)      { testOneToOne(t, JabberD2Kind, true) }

func testGroupChat(t *testing.T, kind Kind) {
	srv := startBaseline(t, Options{Kind: kind})
	a := dial(t, srv.Addr(), "a")
	b := dial(t, srv.Addr(), "b")
	c := dial(t, srv.Addr(), "c")
	for _, u := range []*client.Client{a, b, c} {
		if err := u.JoinRoom("room"); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(200 * time.Millisecond)
	if err := a.SendGroupMessage("room", "hi all"); err != nil {
		t.Fatal(err)
	}
	for name, u := range map[string]*client.Client{"b": b, "c": c} {
		msg, err := u.ReadMessage(10 * time.Second)
		if err != nil {
			t.Fatalf("%s ReadMessage: %v", name, err)
		}
		if !msg.Group || msg.Body != "hi all" || msg.From != "a" {
			t.Fatalf("%s got %+v", name, msg)
		}
	}
	if srv.Stats().GroupFanout != 2 {
		t.Fatalf("fanout = %d", srv.Stats().GroupFanout)
	}
}

func TestJabberD2GroupChat(t *testing.T) { testGroupChat(t, JabberD2Kind) }
func TestEjabberdGroupChat(t *testing.T) { testGroupChat(t, EjabberdKind) }

func TestSpoofRestamped(t *testing.T) {
	srv := startBaseline(t, Options{Kind: EjabberdKind})
	mallory := dial(t, srv.Addr(), "mallory")
	bob := dial(t, srv.Addr(), "bob")
	raw := `<message from="alice" to="bob" type="chat"><body>spoof</body></message>`
	if err := mallory.SendRaw(raw); err != nil {
		t.Fatal(err)
	}
	msg, err := bob.ReadMessage(10 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if msg.From != "mallory" {
		t.Fatalf("spoofed from = %q", msg.From)
	}
}

func TestOfflineTargetDropped(t *testing.T) {
	srv := startBaseline(t, Options{Kind: JabberD2Kind})
	a := dial(t, srv.Addr(), "a")
	if err := a.SendMessage("nobody", "x"); err != nil {
		t.Fatal(err)
	}
	time.Sleep(300 * time.Millisecond)
	if srv.Stats().Routed != 0 {
		t.Fatal("offline message routed")
	}
}

func TestStopIsIdempotentAndUnblocks(t *testing.T) {
	srv := startBaseline(t, Options{Kind: JabberD2Kind})
	_ = dial(t, srv.Addr(), "lingering")
	done := make(chan struct{})
	go func() {
		srv.Stop()
		srv.Stop()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Stop did not complete with open connections")
	}
}
