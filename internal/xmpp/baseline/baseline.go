// Package baseline implements the two comparison servers of the paper's
// messaging evaluation (Section 6.4): JabberD2 2.3.4 and ejabberd 16.01.
//
// Neither can be run verbatim here (one is a C multi-process daemon, the
// other an Erlang release), so each is substituted by a Go server that
// speaks the same XMPP subset and reproduces the architectural property
// that dominates its measured behaviour:
//
//   - JabberD2Kind routes every stanza through a single router goroutine
//     that re-parses it — the c2s→router→sm pipeline of JabberD2, whose
//     serialisation (plus per-hop re-parsing) is what caps its
//     throughput. An optional SSL mode charges per-byte stream-cipher
//     work like the paper's SSL-enabled group-chat runs (Figure 15).
//   - EjabberdKind handles each connection in its own goroutine (Erlang
//     process analogue) with a per-stanza interpreter work factor; its
//     throughput is bounded by that constant, which the paper's numbers
//     place below JabberD2's.
//
// The work-factor constants are calibrated against the ratios the paper
// reports (EA/3 1.81x JBD2 at saturation, 2.42x EJB at 600 clients);
// EXPERIMENTS.md records the calibration.
package baseline

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/eactors/eactors-go/internal/sgx"
	"github.com/eactors/eactors-go/internal/xmpp"
	"github.com/eactors/eactors-go/internal/xmpp/stanza"
)

// Kind selects which baseline architecture to run.
type Kind int

// Baseline kinds.
const (
	// JabberD2Kind models JabberD2 2.3.4 (C, multi-process router).
	JabberD2Kind Kind = iota + 1
	// EjabberdKind models ejabberd 16.01 (Erlang, process per socket).
	EjabberdKind
)

// Modeled work factors, in cycles at the paper's 3.4 GHz (converted with
// the same clock the SGX cost model uses). Each baseline's ceiling is
// set by a serialised architectural bottleneck -- JabberD2 funnels every
// stanza through its router/sm processes (IPC plus double
// parse/serialise), ejabberd interprets its xmpp codec and mnesia
// routing on the BEAM -- and the constants are calibrated empirically so
// the measured EA/3-to-baseline throughput ratios land near the paper's
// (EA/3 1.81x JBD2 at saturation, 2.42x EJB at 600 clients). The charge
// shares the CPU with the substrate's genuine work, so the constants are
// smaller than the end-to-end per-stanza costs they stand for; WorkScale
// re-calibrates on a different host. EXPERIMENTS.md records the
// calibration run.
const (
	// JBD2RouterCycles is charged in the router goroutine per stanza:
	// the c2s -> router -> sm IPC and re-serialisation path.
	JBD2RouterCycles = 95_000 // ~28us
	// JBD2SSLCyclesPerByte is charged per payload byte when SSL mode is
	// on (AES-CBC+HMAC stream work in 2016-era OpenSSL).
	JBD2SSLCyclesPerByte = 18
	// EjabberdStanzaCycles is charged per stanza in the connection
	// process: BEAM interpretation of the xmpp codec and routing logic.
	EjabberdStanzaCycles = 137_000 // ~40us
)

// cyclesToDuration converts modeled cycles at the paper's clock.
func cyclesToDuration(cycles float64) time.Duration {
	return time.Duration(cycles / sgx.DefaultFrequencyGHz)
}

// Options configures a baseline server.
type Options struct {
	Kind       Kind
	ListenAddr string // default 127.0.0.1:0
	// SSL enables the per-byte stream-crypto charge (JabberD2 group-chat
	// configuration of Figure 15).
	SSL bool
	// WorkScale scales the modeled work factors (1.0 = calibrated).
	WorkScale float64
}

// Stats mirrors the EActors service counters.
type Stats struct {
	Connections  uint64
	Routed       uint64
	GroupFanout  uint64
	AuthFailures uint64
}

type userEntry struct {
	conn    net.Conn
	writeMu *sync.Mutex
	keyHex  string
}

// routed stanzas carry their session context through the router.
type routerItem struct {
	raw    []byte
	from   string
	keyHex string
}

// Server is a running baseline XMPP server.
type Server struct {
	kind      Kind
	ssl       bool
	workScale float64

	lis      net.Listener
	online   sync.Map // user -> *userEntry
	rooms    sync.Map // room -> *sync.Map (user -> bool)
	allConns sync.Map // net.Conn -> bool, for shutdown

	router chan routerItem
	wg     sync.WaitGroup // accept + router loops
	connWg sync.WaitGroup // connection handlers
	closed atomic.Bool

	conns    atomic.Uint64
	routedN  atomic.Uint64
	fanout   atomic.Uint64
	authFail atomic.Uint64
}

// Start launches a baseline server.
func Start(opts Options) (*Server, error) {
	if opts.Kind != JabberD2Kind && opts.Kind != EjabberdKind {
		return nil, errors.New("baseline: unknown kind")
	}
	if opts.ListenAddr == "" {
		opts.ListenAddr = "127.0.0.1:0"
	}
	if opts.WorkScale == 0 {
		opts.WorkScale = 1.0
	}
	lis, err := net.Listen("tcp", opts.ListenAddr)
	if err != nil {
		return nil, fmt.Errorf("baseline: listen: %w", err)
	}
	s := &Server{
		kind:      opts.Kind,
		ssl:       opts.SSL,
		workScale: opts.WorkScale,
		lis:       lis,
	}
	if s.kind == JabberD2Kind {
		s.router = make(chan routerItem, 1024)
		s.wg.Add(1)
		go s.routerLoop()
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound address.
func (s *Server) Addr() string { return s.lis.Addr().String() }

// Stats returns a counter snapshot.
func (s *Server) Stats() Stats {
	return Stats{
		Connections:  s.conns.Load(),
		Routed:       s.routedN.Load(),
		GroupFanout:  s.fanout.Load(),
		AuthFailures: s.authFail.Load(),
	}
}

// Stop closes the listener and all connections, then drains the router.
func (s *Server) Stop() {
	if !s.closed.CompareAndSwap(false, true) {
		return
	}
	_ = s.lis.Close()
	s.allConns.Range(func(k, _ any) bool {
		_ = k.(net.Conn).Close()
		return true
	})
	s.connWg.Wait()
	if s.router != nil {
		close(s.router)
	}
	s.wg.Wait()
}

func (s *Server) charge(cycles float64) {
	sgx.Spin(cyclesToDuration(cycles * s.workScale))
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.lis.Accept()
		if err != nil {
			return
		}
		s.allConns.Store(conn, true)
		s.connWg.Add(1)
		go s.handleConn(conn)
	}
}

// write sends bytes to a user's socket under its write lock, charging
// SSL work when configured.
func (s *Server) write(e *userEntry, data []byte) {
	if s.ssl {
		s.charge(float64(len(data)) * JBD2SSLCyclesPerByte)
	}
	e.writeMu.Lock()
	_ = e.conn.SetWriteDeadline(time.Now().Add(5 * time.Second))
	_, _ = e.conn.Write(data)
	e.writeMu.Unlock()
}

func (s *Server) handleConn(conn net.Conn) {
	defer s.connWg.Done()
	defer s.allConns.Delete(conn)
	defer conn.Close()

	var sc stanza.Scanner
	buf := make([]byte, 4096)
	var user, keyHex string
	entry := &userEntry{conn: conn, writeMu: &sync.Mutex{}}
	sawHdr := false
	authed := false

	defer func() {
		if authed {
			s.online.Delete(user)
			s.rooms.Range(func(_, v any) bool {
				v.(*sync.Map).Delete(user)
				return true
			})
		}
	}()

	for {
		el, ok, err := sc.Next()
		if err != nil {
			return
		}
		if !ok {
			n, err := conn.Read(buf)
			if err != nil {
				return
			}
			if s.ssl {
				s.charge(float64(n) * JBD2SSLCyclesPerByte)
			}
			sc.Feed(buf[:n])
			continue
		}

		switch {
		case el.Kind == stanza.KindStreamEnd:
			return
		case el.Kind == stanza.KindStreamStart:
			if sawHdr {
				return
			}
			sawHdr = true
			s.write(entry, []byte(stanza.StreamHeader("baseline.chat", el.Attr("from"))))
		case el.Name == "auth":
			if !sawHdr || el.Attr("user") == "" {
				s.authFail.Add(1)
				s.write(entry, []byte(stanza.AuthFailure))
				return
			}
			user = el.Attr("user")
			keyHex = el.Attr("key")
			entry.keyHex = keyHex
			s.online.Store(user, entry)
			authed = true
			s.conns.Add(1)
			s.write(entry, []byte(stanza.AuthSuccess))
		case !authed:
			s.authFail.Add(1)
			return
		case el.Name == "presence":
			s.handlePresence(user, &el)
		case el.Name == "message":
			raw := append([]byte(nil), el.Raw...)
			switch s.kind {
			case JabberD2Kind:
				// All stanzas funnel through the router process; a full
				// queue applies backpressure, like the real router's
				// socket between c2s and sm.
				s.router <- routerItem{raw: raw, from: user, keyHex: keyHex}
			case EjabberdKind:
				// Per-stanza interpreter work in the connection process.
				s.charge(EjabberdStanzaCycles)
				s.route(raw, user, keyHex)
			}
		}
	}
}

// routerLoop is JabberD2's router/sm process: every stanza is re-parsed
// (genuine work, as the real router deserialises the c2s packet) and
// charged the serialisation factor, strictly in order.
func (s *Server) routerLoop() {
	defer s.wg.Done()
	for item := range s.router {
		s.charge(JBD2RouterCycles)
		s.route(item.raw, item.from, item.keyHex)
	}
}

// route parses and delivers one message stanza.
func (s *Server) route(raw []byte, from, keyHex string) {
	var sc stanza.Scanner
	sc.Feed(raw)
	el, ok, err := sc.Next()
	if err != nil || !ok || el.Name != "message" {
		return
	}
	if el.Attr("type") == "groupchat" {
		s.routeGroup(&el, from, keyHex)
		return
	}
	target, ok := s.lookup(el.Attr("to"))
	if !ok {
		return
	}
	frame := raw
	if el.Attr("from") != from {
		frame = []byte(stanza.Message(from, el.Attr("to"), el.Body()))
	}
	s.write(target, frame)
	s.routedN.Add(1)
}

func (s *Server) lookup(user string) (*userEntry, bool) {
	v, ok := s.online.Load(user)
	if !ok {
		return nil, false
	}
	return v.(*userEntry), true
}

func (s *Server) handlePresence(user string, el *stanza.Stanza) {
	to := el.Attr("to")
	if to == "" {
		return
	}
	room := to
	for i := 0; i < len(to); i++ {
		if to[i] == '/' {
			room = to[:i]
			break
		}
	}
	membersAny, _ := s.rooms.LoadOrStore(room, &sync.Map{})
	members := membersAny.(*sync.Map)
	if el.Attr("type") == "unavailable" {
		members.Delete(user)
	} else {
		members.Store(user, true)
	}
}

// routeGroup mirrors the EActors service's group semantics (decrypt the
// sender's sealed body, re-encrypt per member) so both systems do the
// same cryptographic work in the Figure 15 comparison.
func (s *Server) routeGroup(el *stanza.Stanza, from, keyHex string) {
	room := el.Attr("to")
	membersAny, ok := s.rooms.Load(room)
	if !ok {
		return
	}
	senderCipher, err := xmpp.ServerBodyCipher(keyHex)
	if err != nil {
		return
	}
	body, err := xmpp.OpenBodyWith(senderCipher, el.Body())
	if err != nil {
		return
	}
	membersAny.(*sync.Map).Range(func(k, _ any) bool {
		member := k.(string)
		if member == from {
			return true
		}
		entry, ok := s.lookup(member)
		if !ok {
			return true
		}
		// Every delivery is one more pass through the architectural
		// bottleneck: jabberd2 routes each MUC copy through router/sm,
		// ejabberd routes each copy through the BEAM.
		switch s.kind {
		case JabberD2Kind:
			s.charge(JBD2RouterCycles)
		case EjabberdKind:
			s.charge(EjabberdStanzaCycles)
		}
		memberCipher, err := xmpp.ServerBodyCipher(entry.keyHex)
		if err != nil {
			return true
		}
		sealed := xmpp.SealBodyWith(memberCipher, body)
		s.write(entry, []byte(stanza.GroupMessage(from, room, sealed)))
		s.fanout.Add(1)
		return true
	})
}
