package stanza

import (
	"fmt"
	"strings"
)

// Stanza and stream builders shared by the EActors service, the baseline
// servers and the client. The wire format is the XMPP-subset both sides
// of the evaluation speak.

// StreamHeader builds the opening stream element.
func StreamHeader(from, to string) string {
	return fmt.Sprintf(
		`<stream:stream from=%q to=%q version="1.0" xmlns="jabber:client" xmlns:stream="http://etherx.jabber.org/streams">`,
		Escape(from), Escape(to))
}

// StreamClose is the closing stream element.
const StreamClose = "</stream:stream>"

// Auth builds the (simplified SASL) authentication stanza. The key is
// the client's service-level session key, hex-encoded; group-chat
// re-encryption uses it (Section 5.1: the server decrypts each group
// member's messages and re-encrypts them per member).
func Auth(user, keyHex string) string {
	return fmt.Sprintf(`<auth user=%q key=%q/>`, Escape(user), Escape(keyHex))
}

// AuthSuccess is the server's acceptance reply.
const AuthSuccess = `<success xmlns="urn:ietf:params:xml:ns:xmpp-sasl"/>`

// AuthFailure is the server's rejection reply.
const AuthFailure = `<failure xmlns="urn:ietf:params:xml:ns:xmpp-sasl"/>`

// Message builds a chat message stanza.
func Message(from, to, body string) string {
	var b strings.Builder
	b.Grow(64 + len(from) + len(to) + len(body))
	b.WriteString(`<message from="`)
	b.WriteString(Escape(from))
	b.WriteString(`" to="`)
	b.WriteString(Escape(to))
	b.WriteString(`" type="chat"><body>`)
	b.WriteString(Escape(body))
	b.WriteString(`</body></message>`)
	return b.String()
}

// GroupMessage builds a groupchat message stanza.
func GroupMessage(from, room, body string) string {
	var b strings.Builder
	b.Grow(72 + len(from) + len(room) + len(body))
	b.WriteString(`<message from="`)
	b.WriteString(Escape(from))
	b.WriteString(`" to="`)
	b.WriteString(Escape(room))
	b.WriteString(`" type="groupchat"><body>`)
	b.WriteString(Escape(body))
	b.WriteString(`</body></message>`)
	return b.String()
}

// Presence builds a presence stanza; to is typically room/nick for MUC
// joins.
func Presence(from, to string) string {
	if to == "" {
		return fmt.Sprintf(`<presence from=%q/>`, Escape(from))
	}
	return fmt.Sprintf(`<presence from=%q to=%q/>`, Escape(from), Escape(to))
}
