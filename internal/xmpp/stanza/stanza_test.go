package stanza

import (
	"strings"
	"testing"
	"testing/quick"
)

func scanAll(t *testing.T, input string) []Stanza {
	t.Helper()
	var sc Scanner
	sc.Feed([]byte(input))
	var out []Stanza
	for {
		st, ok, err := sc.Next()
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		if !ok {
			return out
		}
		out = append(out, st)
	}
}

func TestScannerStreamHeader(t *testing.T) {
	hdr := StreamHeader("client", "server")
	got := scanAll(t, hdr)
	if len(got) != 1 {
		t.Fatalf("stanzas = %d, want 1", len(got))
	}
	st := got[0]
	if st.Kind != KindStreamStart || st.Name != "stream:stream" {
		t.Fatalf("kind=%v name=%q", st.Kind, st.Name)
	}
	if st.Attr("from") != "client" || st.Attr("to") != "server" {
		t.Fatalf("attrs = %v", st.Attrs)
	}
}

func TestScannerStreamEnd(t *testing.T) {
	got := scanAll(t, StreamClose)
	if len(got) != 1 || got[0].Kind != KindStreamEnd {
		t.Fatalf("got %+v", got)
	}
}

func TestScannerMessage(t *testing.T) {
	msg := Message("alice", "bob", "hello <world> & 'friends'")
	got := scanAll(t, msg)
	if len(got) != 1 {
		t.Fatalf("stanzas = %d, want 1", len(got))
	}
	st := got[0]
	if st.Name != "message" || st.Attr("from") != "alice" || st.Attr("to") != "bob" {
		t.Fatalf("parsed %+v", st)
	}
	if st.Attr("type") != "chat" {
		t.Fatalf("type = %q", st.Attr("type"))
	}
	if body := st.Body(); body != "hello <world> & 'friends'" {
		t.Fatalf("body = %q", body)
	}
}

func TestScannerSelfClosing(t *testing.T) {
	got := scanAll(t, `<presence from="alice" to="room/alice"/>`)
	if len(got) != 1 || got[0].Name != "presence" {
		t.Fatalf("got %+v", got)
	}
	if got[0].Attr("to") != "room/alice" {
		t.Fatalf("attrs = %v", got[0].Attrs)
	}
}

func TestScannerMultipleStanzas(t *testing.T) {
	input := Message("a", "b", "one") + Presence("a", "") + Message("b", "a", "two")
	got := scanAll(t, input)
	if len(got) != 3 {
		t.Fatalf("stanzas = %d, want 3", len(got))
	}
	if got[0].Body() != "one" || got[2].Body() != "two" {
		t.Fatalf("bodies = %q, %q", got[0].Body(), got[2].Body())
	}
}

func TestScannerIncrementalFeed(t *testing.T) {
	msg := Message("alice", "bob", "split across many tcp segments")
	var sc Scanner
	for i := 0; i < len(msg); i++ {
		sc.Feed([]byte{msg[i]})
		st, ok, err := sc.Next()
		if err != nil {
			t.Fatalf("Next at byte %d: %v", i, err)
		}
		if ok {
			if i != len(msg)-1 {
				t.Fatalf("stanza completed early at byte %d", i)
			}
			if st.Body() != "split across many tcp segments" {
				t.Fatalf("body = %q", st.Body())
			}
			return
		}
	}
	t.Fatal("stanza never completed")
}

func TestScannerNestedSameName(t *testing.T) {
	input := `<message to="x"><message>inner</message><body>outer</body></message>`
	got := scanAll(t, input)
	if len(got) != 1 {
		t.Fatalf("stanzas = %d, want 1", len(got))
	}
	if !strings.Contains(string(got[0].Raw), "inner") {
		t.Fatal("nested element truncated")
	}
}

func TestScannerWhitespaceKeepalive(t *testing.T) {
	got := scanAll(t, "\n \t"+Presence("a", "")+" \n")
	if len(got) != 1 {
		t.Fatalf("stanzas = %d, want 1", len(got))
	}
}

func TestScannerXMLDecl(t *testing.T) {
	got := scanAll(t, `<?xml version="1.0"?>`+StreamHeader("c", "s"))
	if len(got) != 1 || got[0].Kind != KindStreamStart {
		t.Fatalf("got %+v", got)
	}
}

func TestScannerMalformed(t *testing.T) {
	var sc Scanner
	sc.Feed([]byte("not xml at all"))
	if _, _, err := sc.Next(); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestScannerUnexpectedClose(t *testing.T) {
	var sc Scanner
	sc.Feed([]byte("</message>"))
	if _, _, err := sc.Next(); err == nil {
		t.Fatal("stray close tag accepted")
	}
}

func TestScannerTooLarge(t *testing.T) {
	var sc Scanner
	sc.Feed([]byte("<message>"))
	sc.Feed(make([]byte, MaxStanzaBytes+1))
	if _, _, err := sc.Next(); err != ErrTooLarge {
		t.Fatalf("oversized err = %v, want ErrTooLarge", err)
	}
}

func TestAuthRoundTrip(t *testing.T) {
	got := scanAll(t, Auth("alice", "deadbeef"))
	if len(got) != 1 || got[0].Name != "auth" {
		t.Fatalf("got %+v", got)
	}
	if got[0].Attr("user") != "alice" || got[0].Attr("key") != "deadbeef" {
		t.Fatalf("attrs = %v", got[0].Attrs)
	}
}

func TestGroupMessage(t *testing.T) {
	got := scanAll(t, GroupMessage("alice", "room1", "hi all"))
	st := got[0]
	if st.Attr("type") != "groupchat" || st.Attr("to") != "room1" || st.Body() != "hi all" {
		t.Fatalf("parsed %+v body=%q", st, st.Body())
	}
}

func TestEscapeUnescape(t *testing.T) {
	cases := []string{
		"plain",
		"<tag>",
		"a & b",
		`quotes " and '`,
		"&amp; already escaped",
		"",
	}
	for _, c := range cases {
		if got := Unescape(Escape(c)); got != c {
			t.Fatalf("roundtrip(%q) = %q", c, got)
		}
	}
}

func TestEscapeQuick(t *testing.T) {
	f := func(s string) bool { return Unescape(Escape(s)) == s }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMessageQuickRoundTrip(t *testing.T) {
	f := func(from, to, body string) bool {
		// The scanner is byte-oriented; restrict to valid UTF-8 free of
		// NULs, which the builders escape correctly.
		msg := Message(from, to, body)
		var sc Scanner
		sc.Feed([]byte(msg))
		st, ok, err := sc.Next()
		if err != nil || !ok {
			return false
		}
		return st.Attr("from") == from && st.Attr("to") == to && st.Body() == body
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestChildTextMissing(t *testing.T) {
	if ChildText([]byte("<message></message>"), "body") != "" {
		t.Fatal("missing child returned text")
	}
	if ChildText([]byte("<message><body>unclosed"), "body") != "" {
		t.Fatal("unclosed child returned text")
	}
}
