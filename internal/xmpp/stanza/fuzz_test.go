package stanza

import (
	"testing"
)

// FuzzScanner asserts that arbitrary byte streams never panic or hang
// the scanner and that anything it parses can be re-parsed from its Raw
// form. (go test runs the seed corpus; `go test -fuzz=FuzzScanner`
// explores further.)
func FuzzScanner(f *testing.F) {
	f.Add([]byte(StreamHeader("a", "b")))
	f.Add([]byte(Message("alice", "bob", "hello <&> world")))
	f.Add([]byte(Presence("a", "room/a")))
	f.Add([]byte(Auth("user", "deadbeef")))
	f.Add([]byte(StreamClose))
	f.Add([]byte("<a><b/><a></a></a>"))
	f.Add([]byte("<?xml version=\"1.0\"?><presence/>"))
	f.Add([]byte("garbage < not xml"))
	f.Add([]byte{0, 1, 2, '<', 'x', '>'})

	f.Fuzz(func(t *testing.T, data []byte) {
		var sc Scanner
		sc.Feed(data)
		for i := 0; i < 1000; i++ {
			el, ok, err := sc.Next()
			if err != nil {
				return
			}
			if !ok {
				return
			}
			if el.Kind == KindStanza || el.Kind == KindStreamStart {
				// Raw must itself parse to the same element name.
				var re Scanner
				re.Feed(el.Raw)
				el2, ok2, err2 := re.Next()
				if err2 != nil || !ok2 {
					t.Fatalf("Raw of %q did not re-parse: ok=%v err=%v", el.Name, ok2, err2)
				}
				if el2.Name != el.Name {
					t.Fatalf("re-parse name %q != %q", el2.Name, el.Name)
				}
			}
		}
		t.Fatalf("scanner produced 1000 elements from %d bytes (livelock?)", len(data))
	})
}

// FuzzEscape asserts the escaping round trip on arbitrary strings.
func FuzzEscape(f *testing.F) {
	f.Add("plain")
	f.Add("<&>'\"")
	f.Add("&amp;&lt;")
	f.Fuzz(func(t *testing.T, s string) {
		if got := Unescape(Escape(s)); got != s {
			t.Fatalf("roundtrip(%q) = %q", s, got)
		}
	})
}
