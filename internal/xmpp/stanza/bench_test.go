package stanza

import (
	"testing"
)

// BenchmarkScannerMessage measures the per-stanza parse cost on the
// messaging hot path (Figures 14-17 process two of these per request).
func BenchmarkScannerMessage(b *testing.B) {
	msg := []byte(Message("alice", "bob", "a typical 150 byte chat payload padded out to look like the paper's workload xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx"))
	b.SetBytes(int64(len(msg)))
	b.ReportAllocs()
	b.ResetTimer()
	var sc Scanner
	for i := 0; i < b.N; i++ {
		sc.Feed(msg)
		if _, ok, err := sc.Next(); err != nil || !ok {
			b.Fatalf("parse failed: ok=%v err=%v", ok, err)
		}
	}
}

// BenchmarkScannerFragmented measures reassembly of TCP-fragmented
// stanzas.
func BenchmarkScannerFragmented(b *testing.B) {
	msg := []byte(Message("alice", "bob", "fragmented payload"))
	half := len(msg) / 2
	b.ResetTimer()
	var sc Scanner
	for i := 0; i < b.N; i++ {
		sc.Feed(msg[:half])
		if _, ok, _ := sc.Next(); ok {
			b.Fatal("half a stanza parsed")
		}
		sc.Feed(msg[half:])
		if _, ok, err := sc.Next(); err != nil || !ok {
			b.Fatal("reassembly failed")
		}
	}
}

func BenchmarkEscape(b *testing.B) {
	in := "body with <angle> & 'quotes' that needs escaping"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Escape(in)
	}
}
