// Package stanza implements the XMPP subset the messaging use case needs
// (RFC 6120 core framing): stream headers, auth, presence and message
// stanzas, with an incremental scanner that extracts complete top-level
// stanzas from a TCP byte stream.
//
// The parser is deliberately small and allocation-light: the EActors
// XMPP service processes every inbound byte through it, so it sits on
// the hot path of Figures 14-17.
package stanza

import (
	"errors"
	"fmt"
	"strings"
)

// Kind classifies a parsed stream element.
type Kind int

// Stream element kinds.
const (
	// KindStreamStart is the opening <stream:stream ...> header.
	KindStreamStart Kind = iota + 1
	// KindStreamEnd is the closing </stream:stream>.
	KindStreamEnd
	// KindStanza is a complete top-level element (message, presence, iq,
	// auth, ...).
	KindStanza
)

// Stanza is one parsed stream element.
type Stanza struct {
	Kind  Kind
	Name  string
	Attrs map[string]string
	Raw   []byte
}

// Attr returns an attribute value ("" when absent).
func (s *Stanza) Attr(name string) string { return s.Attrs[name] }

// Body extracts the text content of the first <body> child, unescaped.
func (s *Stanza) Body() string {
	return ChildText(s.Raw, "body")
}

// ChildText extracts the unescaped text of the first <tag>...</tag>
// child inside raw.
func ChildText(raw []byte, tag string) string {
	open := "<" + tag + ">"
	closeTag := "</" + tag + ">"
	str := string(raw)
	i := strings.Index(str, open)
	if i < 0 {
		return ""
	}
	j := strings.Index(str[i+len(open):], closeTag)
	if j < 0 {
		return ""
	}
	return Unescape(str[i+len(open) : i+len(open)+j])
}

// Parsing errors.
var (
	ErrMalformed = errors.New("stanza: malformed XML")
	ErrTooLarge  = errors.New("stanza: stanza exceeds size limit")
)

// MaxStanzaBytes bounds buffered stanza size (DoS guard).
const MaxStanzaBytes = 64 * 1024

// Scanner incrementally splits a byte stream into stream elements. Feed
// it raw TCP chunks and drain Next until it reports no complete element.
type Scanner struct {
	buf           []byte
	sawStreamOpen bool
}

// Feed appends a received chunk.
func (sc *Scanner) Feed(p []byte) {
	sc.buf = append(sc.buf, p...)
}

// Buffered returns the number of bytes awaiting a complete element.
func (sc *Scanner) Buffered() int { return len(sc.buf) }

// Remainder returns and clears the buffered bytes that have not yet
// formed a complete element (used to hand a connection's parse state to
// another owner).
func (sc *Scanner) Remainder() []byte {
	out := sc.buf
	sc.buf = nil
	return out
}

// Next extracts the next complete element. ok is false when more bytes
// are needed.
func (sc *Scanner) Next() (st Stanza, ok bool, err error) {
	// Skip inter-stanza whitespace.
	i := 0
	for i < len(sc.buf) && isSpace(sc.buf[i]) {
		i++
	}
	sc.buf = sc.buf[i:]
	if len(sc.buf) == 0 {
		return Stanza{}, false, nil
	}
	if sc.buf[0] != '<' {
		return Stanza{}, false, ErrMalformed
	}
	if len(sc.buf) > MaxStanzaBytes {
		return Stanza{}, false, ErrTooLarge
	}

	// XML declaration <?xml ...?> — skip it.
	if len(sc.buf) >= 2 && sc.buf[1] == '?' {
		end := indexByte(sc.buf, '>')
		if end < 0 {
			return Stanza{}, false, nil
		}
		sc.buf = sc.buf[end+1:]
		return sc.Next()
	}

	// Closing </stream:stream>.
	if len(sc.buf) >= 2 && sc.buf[1] == '/' {
		end := indexByte(sc.buf, '>')
		if end < 0 {
			return Stanza{}, false, nil
		}
		name := strings.TrimSpace(string(sc.buf[2:end]))
		raw := sc.buf[:end+1]
		sc.buf = sc.buf[end+1:]
		if name != "stream:stream" {
			return Stanza{}, false, fmt.Errorf("%w: unexpected close tag %q", ErrMalformed, name)
		}
		return Stanza{Kind: KindStreamEnd, Name: name, Raw: raw}, true, nil
	}

	name, attrEnd, selfClosing, complete := scanTag(sc.buf)
	if !complete {
		return Stanza{}, false, nil
	}
	if name == "" {
		return Stanza{}, false, ErrMalformed
	}

	// Stream header: emitted as soon as its open tag is complete.
	if name == "stream:stream" {
		raw := sc.buf[:attrEnd+1]
		attrs, err := parseAttrs(raw)
		if err != nil {
			return Stanza{}, false, err
		}
		out := Stanza{Kind: KindStreamStart, Name: name, Attrs: attrs, Raw: raw}
		sc.buf = sc.buf[attrEnd+1:]
		sc.sawStreamOpen = true
		return out, true, nil
	}

	if selfClosing {
		raw := sc.buf[:attrEnd+1]
		attrs, err := parseAttrs(raw)
		if err != nil {
			return Stanza{}, false, err
		}
		out := Stanza{Kind: KindStanza, Name: name, Attrs: attrs, Raw: raw}
		sc.buf = sc.buf[attrEnd+1:]
		return out, true, nil
	}

	// Find the matching close tag, tracking nesting of same-named tags.
	end, found := findClose(sc.buf, name, attrEnd+1)
	if !found {
		return Stanza{}, false, nil
	}
	raw := sc.buf[:end]
	attrs, err := parseAttrs(sc.buf[:attrEnd+1])
	if err != nil {
		return Stanza{}, false, err
	}
	out := Stanza{Kind: KindStanza, Name: name, Attrs: attrs, Raw: raw}
	sc.buf = sc.buf[end:]
	return out, true, nil
}

func isSpace(b byte) bool { return b == ' ' || b == '\t' || b == '\n' || b == '\r' }

func indexByte(b []byte, c byte) int {
	for i, x := range b {
		if x == c {
			return i
		}
	}
	return -1
}

// scanTag parses the open tag at the start of buf. attrEnd is the index
// of its '>'.
func scanTag(buf []byte) (name string, attrEnd int, selfClosing, complete bool) {
	end := indexByte(buf, '>')
	if end < 0 {
		return "", 0, false, false
	}
	inner := buf[1:end]
	selfClosing = len(inner) > 0 && inner[len(inner)-1] == '/'
	if selfClosing {
		inner = inner[:len(inner)-1]
	}
	nameEnd := 0
	for nameEnd < len(inner) && !isSpace(inner[nameEnd]) {
		nameEnd++
	}
	return string(inner[:nameEnd]), end, selfClosing, true
}

// findClose locates the end (exclusive) of the element named name whose
// open tag ends at index from. It counts nested same-named elements.
func findClose(buf []byte, name string, from int) (end int, found bool) {
	depth := 1
	openPat := "<" + name
	closePat := "</" + name + ">"
	i := from
	str := string(buf)
	for i < len(str) {
		next := strings.IndexByte(str[i:], '<')
		if next < 0 {
			return 0, false
		}
		i += next
		if strings.HasPrefix(str[i:], closePat) {
			depth--
			if depth == 0 {
				return i + len(closePat), true
			}
			i += len(closePat)
			continue
		}
		if strings.HasPrefix(str[i:], openPat) {
			// Only count it if followed by a delimiter (avoid matching
			// <messageX when looking for <message).
			rest := str[i+len(openPat):]
			if len(rest) > 0 && (isSpace(rest[0]) || rest[0] == '>' || rest[0] == '/') {
				// Self-closing nested tags do not increase depth.
				gt := strings.IndexByte(rest, '>')
				if gt < 0 {
					return 0, false
				}
				if gt == 0 || rest[gt-1] != '/' {
					depth++
				}
				i += len(openPat) + gt + 1
				continue
			}
		}
		i++
	}
	return 0, false
}

// parseAttrs extracts key="value" / key='value' pairs from an open tag.
func parseAttrs(tag []byte) (map[string]string, error) {
	attrs := make(map[string]string, 4)
	str := string(tag)
	// Strip <name ... > or <name ... />.
	gt := strings.IndexByte(str, '>')
	if gt < 0 || len(str) < 2 || str[0] != '<' {
		return nil, ErrMalformed
	}
	inner := strings.TrimSuffix(strings.TrimSpace(str[1:gt]), "/")
	// Skip the element name.
	sp := strings.IndexFunc(inner, func(r rune) bool { return r == ' ' || r == '\t' || r == '\n' || r == '\r' })
	if sp < 0 {
		return attrs, nil
	}
	rest := strings.TrimSpace(inner[sp:])
	for len(rest) > 0 {
		eq := strings.IndexByte(rest, '=')
		if eq < 0 {
			break
		}
		key := strings.TrimSpace(rest[:eq])
		rest = strings.TrimSpace(rest[eq+1:])
		if len(rest) < 2 || (rest[0] != '\'' && rest[0] != '"') {
			return nil, fmt.Errorf("%w: unquoted attribute %q", ErrMalformed, key)
		}
		quote := rest[0]
		endQ := strings.IndexByte(rest[1:], quote)
		if endQ < 0 {
			return nil, fmt.Errorf("%w: unterminated attribute %q", ErrMalformed, key)
		}
		attrs[key] = Unescape(rest[1 : 1+endQ])
		rest = strings.TrimSpace(rest[endQ+2:])
	}
	return attrs, nil
}

// Escape replaces XML-special characters in text content and attribute
// values.
func Escape(s string) string {
	if !strings.ContainsAny(s, "&<>'\"") {
		return s
	}
	r := strings.NewReplacer(
		"&", "&amp;",
		"<", "&lt;",
		">", "&gt;",
		"'", "&apos;",
		"\"", "&quot;",
	)
	return r.Replace(s)
}

// Unescape reverses Escape.
func Unescape(s string) string {
	if !strings.ContainsRune(s, '&') {
		return s
	}
	r := strings.NewReplacer(
		"&amp;", "&",
		"&lt;", "<",
		"&gt;", ">",
		"&apos;", "'",
		"&quot;", "\"",
	)
	return r.Replace(s)
}
