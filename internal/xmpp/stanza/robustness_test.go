package stanza

import (
	"testing"
	"testing/quick"
)

// TestScannerNeverPanics feeds arbitrary byte soup: the scanner must
// either produce elements, ask for more input, or error — never panic
// and never loop forever.
func TestScannerNeverPanics(t *testing.T) {
	f := func(chunks [][]byte) bool {
		var sc Scanner
		for _, chunk := range chunks {
			if len(chunk) > 4096 {
				chunk = chunk[:4096]
			}
			sc.Feed(chunk)
			for i := 0; i < 100; i++ {
				_, ok, err := sc.Next()
				if err != nil {
					return true // rejected, fine
				}
				if !ok {
					break
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestScannerAdversarialInputs exercises crafted edge cases.
func TestScannerAdversarialInputs(t *testing.T) {
	cases := []string{
		"<",
		"<>",
		"<a",
		"<a>",
		"<a></a",
		"<a/>",
		"<a />",
		"<a b='c'/>",
		`<a b="c" />`,
		"<a><b><a></a></b></a>",
		"<message><body></body>",
		"<message to='x' from=`bad`/>",
		"<m a='unterminated/>",
		"</stream:stream extra>",
		"<stream:stream",
		"<?xml?><?xml?>",
		"<a>&lt;&gt;&amp;</a>",
	}
	for _, input := range cases {
		var sc Scanner
		sc.Feed([]byte(input))
		for i := 0; i < 10; i++ {
			_, ok, err := sc.Next()
			if err != nil || !ok {
				break
			}
		}
		// Reaching here without a panic or infinite loop is the pass
		// condition.
	}
}

// TestScannerProgressGuarantee: feeding a complete element after garbage
// whitespace always yields it.
func TestScannerProgressGuarantee(t *testing.T) {
	var sc Scanner
	sc.Feed([]byte("   \n\t  "))
	if _, ok, err := sc.Next(); ok || err != nil {
		t.Fatalf("whitespace-only: ok=%v err=%v", ok, err)
	}
	sc.Feed([]byte("<presence from='a'/>"))
	el, ok, err := sc.Next()
	if err != nil || !ok || el.Name != "presence" {
		t.Fatalf("after whitespace: %v ok=%v err=%v", el, ok, err)
	}
	if sc.Buffered() != 0 {
		t.Fatalf("Buffered = %d after full consume", sc.Buffered())
	}
}

// TestRemainderHandoff mirrors the CONNECTOR->shard scanner transfer.
func TestRemainderHandoff(t *testing.T) {
	var first Scanner
	full := Message("a", "b", "hello")
	first.Feed([]byte(full[:10]))
	if _, ok, err := first.Next(); ok || err != nil {
		t.Fatalf("partial parse: ok=%v err=%v", ok, err)
	}
	rest := first.Remainder()
	if first.Buffered() != 0 {
		t.Fatal("Remainder did not clear the buffer")
	}

	var second Scanner
	second.Feed(rest)
	second.Feed([]byte(full[10:]))
	el, ok, err := second.Next()
	if err != nil || !ok || el.Body() != "hello" {
		t.Fatalf("handoff parse: %v ok=%v err=%v", el, ok, err)
	}
}
