package xmpp

import (
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"

	"github.com/eactors/eactors-go/internal/ecrypto"
	"github.com/eactors/eactors-go/internal/xmpp/stanza"
)

// ServiceName is the JID domain the service answers for.
const ServiceName = "eactors.chat"

// session is the per-connection state an XMPP or CONNECTOR eactor keeps
// in its private client list (PCL).
type session struct {
	sock    uint32
	user    string
	keyHex  string
	scanner stanza.Scanner
	authed  bool
	sawHdr  bool

	// seal/open are the service-level ciphers for group-chat bodies,
	// created lazily from keyHex.
	seal *ecrypto.Cipher
}

// ServerBodyCipher builds a service-side cipher from a client's hex key;
// the baseline servers share it for their group-chat re-encryption.
func ServerBodyCipher(keyHex string) (*ecrypto.Cipher, error) {
	return cipherFromHex(keyHex)
}

// cipherFromHex builds a service-side cipher from a client's hex key.
func cipherFromHex(keyHex string) (*ecrypto.Cipher, error) {
	raw, err := hex.DecodeString(keyHex)
	if err != nil || len(raw) != ecrypto.KeySize {
		return nil, fmt.Errorf("xmpp: bad session key (%d hex chars)", len(keyHex))
	}
	var key [ecrypto.KeySize]byte
	copy(key[:], raw)
	return ecrypto.NewCipher(key, serverDirTag)
}

// Direction tags for the service-level body crypto: clients and server
// share per-user keys but must not collide on nonces.
const (
	clientDirTag = 4
	serverDirTag = 5
)

// SealBodyWith seals a group-chat body with the given cipher, returning
// hex for XML-safe transport.
func SealBodyWith(c *ecrypto.Cipher, plaintext string) string {
	return hex.EncodeToString(c.Seal(nil, []byte(plaintext), nil))
}

// OpenBodyWith opens a hex-encoded sealed group-chat body.
func OpenBodyWith(c *ecrypto.Cipher, sealedHex string) (string, error) {
	raw, err := hex.DecodeString(sealedHex)
	if err != nil {
		return "", fmt.Errorf("xmpp: body is not hex: %w", err)
	}
	plain, err := c.Open(nil, raw, nil)
	if err != nil {
		return "", err
	}
	return string(plain), nil
}

// NewClientBodyCipher builds the client-side cipher for a session key.
func NewClientBodyCipher(key [ecrypto.KeySize]byte) (*ecrypto.Cipher, error) {
	return ecrypto.NewCipher(key, clientDirTag)
}

// Handoff message types on the CONNECTOR→shard channels.
const (
	handoffSession = 1 // an authenticated connection changes owner
	handoffStray   = 2 // bytes that raced the reader handover
)

var errBadHandoff = errors.New("xmpp: corrupt handoff message")

// encodeHandoff serialises a session handoff: the authenticated user,
// its socket, its service key and any bytes already buffered beyond the
// auth exchange.
func encodeHandoff(e OnlineEntry, leftover []byte) []byte {
	buf := make([]byte, 0, 12+len(e.User)+len(e.Key)+len(leftover))
	buf = append(buf, handoffSession)
	var tmp [4]byte
	binary.LittleEndian.PutUint32(tmp[:], e.Sock)
	buf = append(buf, tmp[:]...)
	buf = append(buf, byte(len(e.User)))
	buf = append(buf, e.User...)
	buf = append(buf, byte(len(e.Key)))
	buf = append(buf, e.Key...)
	binary.LittleEndian.PutUint16(tmp[:2], uint16(len(leftover)))
	buf = append(buf, tmp[:2]...)
	buf = append(buf, leftover...)
	return buf
}

func decodeHandoff(b []byte) (e OnlineEntry, leftover []byte, err error) {
	if len(b) < 1 || b[0] != handoffSession {
		return e, nil, errBadHandoff
	}
	b = b[1:]
	if len(b) < 6 {
		return e, nil, errBadHandoff
	}
	e.Sock = binary.LittleEndian.Uint32(b)
	ul := int(b[4])
	if len(b) < 5+ul+1 {
		return e, nil, errBadHandoff
	}
	e.User = string(b[5 : 5+ul])
	kl := int(b[5+ul])
	rest := b[5+ul+1:]
	if len(rest) < kl+2 {
		return e, nil, errBadHandoff
	}
	e.Key = string(rest[:kl])
	n := int(binary.LittleEndian.Uint16(rest[kl:]))
	if len(rest) < kl+2+n {
		return e, nil, errBadHandoff
	}
	leftover = append([]byte(nil), rest[kl+2:kl+2+n]...)
	return e, leftover, nil
}

// encodeStray serialises bytes that arrived at the CONNECTOR after a
// session was handed off.
func encodeStray(sock uint32, data []byte) []byte {
	buf := make([]byte, 0, 7+len(data))
	buf = append(buf, handoffStray)
	var tmp [4]byte
	binary.LittleEndian.PutUint32(tmp[:], sock)
	buf = append(buf, tmp[:]...)
	binary.LittleEndian.PutUint16(tmp[:2], uint16(len(data)))
	buf = append(buf, tmp[:2]...)
	return append(buf, data...)
}

func decodeStray(b []byte) (sock uint32, data []byte, err error) {
	if len(b) < 7 || b[0] != handoffStray {
		return 0, nil, errBadHandoff
	}
	sock = binary.LittleEndian.Uint32(b[1:])
	n := int(binary.LittleEndian.Uint16(b[5:]))
	if len(b) < 7+n {
		return 0, nil, errBadHandoff
	}
	return sock, append([]byte(nil), b[7:7+n]...), nil
}
