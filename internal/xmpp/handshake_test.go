package xmpp_test

import (
	"net"
	"strings"
	"testing"
	"time"

	"github.com/eactors/eactors-go/internal/xmpp"
	"github.com/eactors/eactors-go/internal/xmpp/stanza"
)

// rawConn drives the CONNECTOR handshake byte by byte.
type rawConn struct {
	t    *testing.T
	conn net.Conn
}

func rawDial(t *testing.T, addr string) *rawConn {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = conn.Close() })
	return &rawConn{t: t, conn: conn}
}

func (r *rawConn) send(s string) {
	r.t.Helper()
	if _, err := r.conn.Write([]byte(s)); err != nil {
		r.t.Fatalf("raw write: %v", err)
	}
}

// readAll reads until the deadline or EOF, returning what arrived.
func (r *rawConn) readAll(d time.Duration) string {
	var sb strings.Builder
	_ = r.conn.SetReadDeadline(time.Now().Add(d))
	buf := make([]byte, 2048)
	for {
		n, err := r.conn.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			return sb.String()
		}
	}
}

func TestHandshakeRejectsAuthBeforeHeader(t *testing.T) {
	srv := startServer(t, xmpp.Options{Shards: 1})
	c := rawDial(t, srv.Addr())
	c.send(stanza.Auth("eager", "00"))
	got := c.readAll(3 * time.Second)
	if !strings.Contains(got, "failure") {
		t.Fatalf("premature auth answered with %q, want failure", got)
	}
	if srv.Stats().AuthFailures == 0 {
		t.Fatal("auth failure not counted")
	}
}

func TestHandshakeRejectsGarbage(t *testing.T) {
	srv := startServer(t, xmpp.Options{Shards: 1})
	c := rawDial(t, srv.Addr())
	c.send("this is not xml at all")
	got := c.readAll(3 * time.Second)
	// The connection must be refused (failure + close, or plain close).
	if strings.Contains(got, "success") {
		t.Fatalf("garbage handshake succeeded: %q", got)
	}
	if srv.Online().Len() != 0 {
		t.Fatal("garbage client ended up online")
	}
}

func TestHandshakeRejectsEmptyUser(t *testing.T) {
	srv := startServer(t, xmpp.Options{Shards: 1})
	c := rawDial(t, srv.Addr())
	c.send(stanza.StreamHeader("", xmpp.ServiceName))
	c.send(`<auth user="" key="00"/>`)
	got := c.readAll(3 * time.Second)
	if !strings.Contains(got, "failure") {
		t.Fatalf("empty-user auth answered with %q", got)
	}
}

func TestHandshakeRejectsDoubleHeader(t *testing.T) {
	srv := startServer(t, xmpp.Options{Shards: 1})
	c := rawDial(t, srv.Addr())
	c.send(stanza.StreamHeader("u", xmpp.ServiceName))
	c.send(stanza.StreamHeader("u", xmpp.ServiceName))
	got := c.readAll(3 * time.Second)
	if strings.Contains(got, "success") {
		t.Fatalf("double stream header accepted: %q", got)
	}
}

func TestHandshakeStanzaBeforeAuthRejected(t *testing.T) {
	srv := startServer(t, xmpp.Options{Shards: 1})
	c := rawDial(t, srv.Addr())
	c.send(stanza.StreamHeader("u", xmpp.ServiceName))
	c.send(stanza.Message("u", "someone", "pre-auth message"))
	got := c.readAll(3 * time.Second)
	if !strings.Contains(got, "failure") {
		t.Fatalf("pre-auth message answered with %q", got)
	}
	if srv.Stats().Routed != 0 {
		t.Fatal("pre-auth message was routed")
	}
}

// TestOversizedStanzaDisconnects: a client streaming an endless stanza
// must be cut off at the scanner's size guard, not buffered forever.
func TestOversizedStanzaDisconnects(t *testing.T) {
	srv := startServer(t, xmpp.Options{Shards: 1})
	alice := dial(t, srv.Addr(), "alice")
	waitFor(t, func() bool { return srv.Online().Len() == 1 }, "alice online")

	// An unterminated <message> far beyond MaxStanzaBytes.
	if err := alice.SendRaw(`<message to="bob"><body>`); err != nil {
		t.Fatal(err)
	}
	chunk := strings.Repeat("A", 8192)
	for i := 0; i < 10; i++ { // 80 KiB > 64 KiB limit
		if err := alice.SendRaw(chunk); err != nil {
			return // already cut off: pass
		}
	}
	waitFor(t, func() bool { return srv.Online().Len() == 0 }, "oversized client disconnected")
}
