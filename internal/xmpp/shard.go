package xmpp

import (
	"fmt"
	"time"

	"github.com/eactors/eactors-go/internal/core"
	"github.com/eactors/eactors-go/internal/ecrypto"
	"github.com/eactors/eactors-go/internal/netactors"
	"github.com/eactors/eactors-go/internal/trace"
	"github.com/eactors/eactors-go/internal/xmpp/stanza"
)

// maxPendingWrites bounds the retry queue before frames are dropped
// (slow-receiver protection).
const maxPendingWrites = 4096

// deliverFlushBatch caps the outbound stage before a mid-round flush:
// a large group fan-out still goes out in doorbell-coalesced batches
// instead of accumulating the whole room in the stage.
const deliverFlushBatch = 64

// shardState is one XMPP eactor's private state.
type shardState struct {
	pcl     map[uint32]*session // the paper's private client list
	pending [][]byte            // owned frames that hit a full write channel
	scratch []byte
	// stage batches outbound frames: one SendBatch — one pool trip, one
	// mbox CAS, one WRITER doorbell — per flush instead of per stanza.
	stage core.SendStage
	// readBufs/hoBufs are the batch receive sets for the read and
	// handoff channels.
	readBufs, hoBufs [][]byte
	readLens, hoLens []int
	// ciphers caches the service-level body ciphers per user key —
	// "an eactor can store its encryption key in its private state"
	// (Section 4.1); rebuilding AES-GCM state per fan-out would dominate
	// the group-chat path.
	ciphers map[string]*ecrypto.Cipher
	// roomFwd holds the forward endpoints towards dedicated room shards.
	roomFwd []*core.Endpoint
}

// bodyCipher returns the cached server-side cipher for a user key.
func (st *shardState) bodyCipher(keyHex string) (*ecrypto.Cipher, error) {
	if c, ok := st.ciphers[keyHex]; ok {
		return c, nil
	}
	c, err := cipherFromHex(keyHex)
	if err != nil {
		return nil, err
	}
	st.ciphers[keyHex] = c
	return c, nil
}

// shardSpec builds XMPP eactor i: it owns the connections handed off by
// the CONNECTOR, parses their stanzas, routes one-to-one chat messages
// via the shared Online list and fans groupchat messages out with
// per-member re-encryption (Section 5.1.2).
func (srv *Server) shardSpec(opts Options, i, worker int, enclave string) core.Spec {
	st := &shardState{
		pcl:     make(map[uint32]*session),
		ciphers: make(map[string]*ecrypto.Cipher),
	}
	st.readBufs, st.readLens = core.BatchBufs(opts.MaxBatch, 4096)
	st.hoBufs, st.hoLens = core.BatchBufs(8, 4096)
	var handoff, read, write, closeCh *core.Endpoint
	roomFwd := make([]*core.Endpoint, len(opts.DedicatedRooms))
	return core.Spec{
		Name:    shardName(i),
		Enclave: enclave,
		Worker:  worker,
		State:   st,
		Init: func(self *core.Self) error {
			handoff = self.MustChannel(fmt.Sprintf("handoff-%d", i))
			read = self.MustChannel(fmt.Sprintf("read-%d", i))
			write = self.MustChannel(fmt.Sprintf("write-%d", i))
			closeCh = self.MustChannel(fmt.Sprintf("close-%d", i))
			for j := range opts.DedicatedRooms {
				ep, err := self.Channel(roomFwdChannel(i, j))
				if err != nil {
					return err
				}
				roomFwd[j] = ep
			}
			st.roomFwd = roomFwd
			return nil
		},
		Body: func(self *core.Self) {
			// Retry frames that previously hit a full channel, as one
			// batch in FIFO order.
			if len(st.pending) > 0 {
				n, _ := write.SendBatch(st.pending) //sendcheck:ok
				if n > 0 {
					self.Progress()
					st.pending = st.pending[n:]
					if len(st.pending) == 0 {
						st.pending = nil
					}
				}
			}

			// Take over newly authenticated connections.
			n, _ := self.RecvBatch(handoff, st.hoBufs, st.hoLens)
			for i := 0; i < n; i++ {
				srv.shardHandoff(self, st, read, st.hoBufs[i][:st.hoLens[i]])
			}

			// Inbound traffic, one batched drain bounded by MaxBatch and
			// the worker's drain budget.
			n, _ = self.RecvBatch(read, st.readBufs, st.readLens)
			for i := 0; i < n; i++ {
				msg, err := netactors.ParseMsg(st.readBufs[i][:st.readLens[i]])
				if err != nil {
					continue
				}
				switch msg.Type {
				case netactors.MsgClosed:
					srv.shardDisconnect(st, closeCh, msg.Sock, false)
				case netactors.MsgData:
					sess, ok := st.pcl[msg.Sock]
					if !ok {
						continue
					}
					sess.scanner.Feed(msg.Data)
					srv.shardDrainSession(self, st, sess, write, closeCh)
				}
			}

			// Per-round housekeeping over the whole PCL (the paper's
			// batch pass): finish sessions whose scanners still hold
			// complete stanzas from earlier oversized chunks.
			for _, sess := range st.pcl {
				if sess.scanner.Buffered() > 0 {
					srv.shardDrainSession(self, st, sess, write, closeCh)
				}
			}

			// One doorbell for everything this round produced.
			srv.flushWrites(st, write)
		},
	}
}

// shardHandoff installs a session (or stray bytes) arriving from the
// CONNECTOR.
func (srv *Server) shardHandoff(self *core.Self, st *shardState, read *core.Endpoint, payload []byte) {
	if len(payload) == 0 {
		return
	}
	switch payload[0] {
	case handoffSession:
		entry, leftover, err := decodeHandoff(payload)
		if err != nil {
			return
		}
		sess := &session{sock: entry.Sock, user: entry.User, keyHex: entry.Key, authed: true, sawHdr: true}
		if len(leftover) > 0 {
			sess.scanner.Feed(leftover)
		}
		st.pcl[entry.Sock] = sess
		w, _ := (netactors.Msg{Type: netactors.MsgWatch, Sock: entry.Sock}).AppendTo(st.scratch[:0])
		st.scratch = w
		// A lost watch leaves the session permanently deaf; persist it.
		_ = read.SendRetry(w, controlDeadline()) //sendcheck:ok
		self.Progress()
	case handoffStray:
		sock, data, err := decodeStray(payload)
		if err != nil {
			return
		}
		if sess, ok := st.pcl[sock]; ok {
			sess.scanner.Feed(data)
		}
		self.Progress()
	}
}

// shardDrainSession processes every complete stanza a session has
// buffered.
func (srv *Server) shardDrainSession(self *core.Self, st *shardState, sess *session, write, closeCh *core.Endpoint) {
	tr := self.Tracer()
	sc := self.TraceScope()
	for {
		el, ok, err := sess.scanner.Next()
		if err != nil {
			srv.shardDisconnect(st, closeCh, sess.sock, true)
			return
		}
		if !ok {
			return
		}
		self.Progress()
		var routeStart time.Time
		if srv.routeNs != nil {
			routeStart = time.Now()
		}
		spanStart := tr.Begin(sc)
		switch {
		case el.Kind == stanza.KindStreamEnd:
			srv.shardDisconnect(st, closeCh, sess.sock, true)
			return
		case el.Kind != stanza.KindStanza:
			continue
		case el.Name == "message" && el.Attr("type") == "groupchat":
			srv.routeGroup(st, sess, &el, write)
		case el.Name == "message":
			srv.routeOneToOne(st, sess, &el, write)
		case el.Name == "presence":
			srv.handlePresence(sess, &el)
		case el.Name == "iq":
			srv.handleIQ(st, sess, &el, write)
		}
		srv.routeNs.ObserveSince(routeStart)
		// The routing decision plus delivery staging, attributed to the
		// inbound socket that produced the stanza.
		tr.End(self.WorkerID(), sc, trace.KindRoute, sess.sock, spanStart)
	}
}

// routeOneToOne delivers a chat message to its recipient's socket. The
// body is opaque to the service (end-to-end encryption is between the
// clients); the stanza is forwarded as received, with the sender
// identity pinned to the authenticated user.
func (srv *Server) routeOneToOne(st *shardState, sess *session, el *stanza.Stanza, write *core.Endpoint) {
	target, ok := srv.online.Get(el.Attr("to"))
	if !ok {
		return // recipient offline: drop (no offline storage in the subset)
	}
	var frame []byte
	if el.Attr("from") == sess.user {
		frame = el.Raw
	} else {
		// Re-stamp the sender: clients cannot spoof each other.
		rebuilt := stanza.Message(sess.user, el.Attr("to"), el.Body())
		frame = []byte(rebuilt)
	}
	srv.deliver(st, write, target.Sock, frame)
	srv.routed.Add(1)
}

// routeGroup decrypts the sender's sealed body and re-encrypts it for
// every room member with that member's service key.
func (srv *Server) routeGroup(st *shardState, sess *session, el *stanza.Stanza, write *core.Endpoint) {
	room := el.Attr("to")
	// Dedicated rooms never decrypt here: the stanza is forwarded to the
	// room's own enclave, which holds the only plaintext copy.
	if j, ok := srv.roomIndex[room]; ok && j < len(st.roomFwd) && st.roomFwd[j] != nil {
		fwd := encodeRoomForward(roomForward{
			sender: sess.user, keyHex: sess.keyHex,
			room: room, sealedHex: el.Body(),
		})
		// Data-plane send: a full room channel sheds the message (clients
		// retry at the application layer) rather than blocking the shard.
		_ = st.roomFwd[j].Send(fwd) //sendcheck:ok
		return
	}
	members := srv.rooms.Members(room)
	if len(members) == 0 {
		return
	}
	// The sender seals with its client cipher; the service opens with a
	// server-side cipher over the same key.
	openCipher, err := st.bodyCipher(sess.keyHex)
	if err != nil {
		return
	}
	body, err := OpenBodyWith(openCipher, el.Body())
	if err != nil {
		return // not sealed with the sender's key: reject silently
	}
	for _, member := range members {
		if member == sess.user {
			continue
		}
		entry, ok := srv.online.Get(member)
		if !ok {
			continue
		}
		memberCipher, err := st.bodyCipher(entry.Key)
		if err != nil {
			continue
		}
		sealed := SealBodyWith(memberCipher, body)
		frame := stanza.GroupMessage(sess.user, room, sealed)
		srv.deliver(st, write, entry.Sock, []byte(frame))
		srv.fanout.Add(1)
	}
}

// handleIQ answers info/query stanzas: XEP-0199 pings get a result, and
// a presence query ("who") returns whether a user is online — the
// match-making primitive the Signal/SGX discussion of Section 2.1
// motivates (contact discovery without revealing the roster to the
// host).
func (srv *Server) handleIQ(st *shardState, sess *session, el *stanza.Stanza, write *core.Endpoint) {
	if el.Attr("type") != "get" {
		return
	}
	id := el.Attr("id")
	raw := string(el.Raw)
	switch {
	case containsTag(raw, "ping"):
		reply := fmt.Sprintf(`<iq type="result" id=%q to=%q from=%q/>`,
			stanza.Escape(id), stanza.Escape(sess.user), ServiceName)
		srv.deliver(st, write, sess.sock, []byte(reply))
	case containsTag(raw, "who"):
		target := stanza.ChildText(el.Raw, "who")
		status := "offline"
		if _, ok := srv.online.Get(target); ok {
			status = "online"
		}
		reply := fmt.Sprintf(`<iq type="result" id=%q to=%q from=%q><who>%s</who><status>%s</status></iq>`,
			stanza.Escape(id), stanza.Escape(sess.user), ServiceName,
			stanza.Escape(target), status)
		srv.deliver(st, write, sess.sock, []byte(reply))
	}
}

// containsTag reports whether raw contains an opening <tag> or <tag/>.
func containsTag(raw, tag string) bool {
	for i := 0; i+len(tag)+1 < len(raw); i++ {
		if raw[i] == '<' && raw[i+1:i+1+len(tag)] == tag {
			next := raw[i+1+len(tag)]
			if next == '>' || next == '/' || next == ' ' {
				return true
			}
		}
	}
	return false
}

// handlePresence processes room joins/leaves: presence to "room/nick"
// joins, type="unavailable" leaves.
func (srv *Server) handlePresence(sess *session, el *stanza.Stanza) {
	to := el.Attr("to")
	if to == "" {
		return
	}
	room := to
	for i := 0; i < len(to); i++ {
		if to[i] == '/' {
			room = to[:i]
			break
		}
	}
	if el.Attr("type") == "unavailable" {
		srv.rooms.Leave(room, sess.user)
	} else {
		srv.rooms.Join(room, sess.user)
	}
}

// deliver frames bytes for a socket and stages the frame on the
// outbound batch; the round's flushWrites (or a mid-round flush when a
// big fan-out fills the stage) pushes everything with one SendBatch.
func (srv *Server) deliver(st *shardState, write *core.Endpoint, sock uint32, data []byte) {
	m, err := (netactors.Msg{Type: netactors.MsgData, Sock: sock, Data: data}).AppendTo(st.stage.Slot())
	if err != nil {
		return
	}
	st.stage.Push(m)
	if st.stage.Len() >= deliverFlushBatch {
		srv.flushWrites(st, write)
	}
}

// flushWrites sends the staged frames as one batch. While the retry
// queue is non-empty the stage spills behind it instead of sending, so
// per-socket FIFO order survives backpressure. Stage slots are reused
// next round, so spilled frames get copies (backpressure path only).
func (srv *Server) flushWrites(st *shardState, write *core.Endpoint) {
	if st.stage.Len() == 0 {
		return
	}
	sent := 0
	if len(st.pending) == 0 {
		sent, _ = write.SendBatch(st.stage.Frames()) //sendcheck:ok
	}
	for _, f := range st.stage.Frames()[sent:] {
		if len(st.pending) >= maxPendingWrites {
			break // slow-receiver protection: drop the rest
		}
		st.pending = append(st.pending, append([]byte(nil), f...))
	}
	st.stage.Reset()
}

// shardDisconnect tears a session down, optionally closing the socket.
func (srv *Server) shardDisconnect(st *shardState, closeCh *core.Endpoint, sock uint32, closeSock bool) {
	sess, ok := st.pcl[sock]
	if !ok {
		return
	}
	delete(st.pcl, sock)
	srv.online.Remove(sess.user)
	srv.rooms.LeaveAll(sess.user)
	if closeSock {
		// A lost close leaks the socket; persist it like the other
		// control sends.
		c, _ := (netactors.Msg{Type: netactors.MsgClose, Sock: sock}).AppendTo(nil)
		_ = closeCh.SendRetry(c, controlDeadline()) //sendcheck:ok
	}
}
