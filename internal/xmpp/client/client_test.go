package client

import (
	"net"
	"strings"
	"testing"
	"time"

	"github.com/eactors/eactors-go/internal/xmpp/stanza"
)

// fakeServer runs a scripted XMPP server for client error-path testing.
// The script function receives the accepted connection.
func fakeServer(t *testing.T, script func(conn net.Conn)) string {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = lis.Close() })
	go func() {
		conn, err := lis.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		script(conn)
	}()
	return lis.Addr().String()
}

// readUntil reads from conn until the buffer contains marker.
func readUntil(conn net.Conn, marker string) string {
	var sb strings.Builder
	buf := make([]byte, 1024)
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	for !strings.Contains(sb.String(), marker) {
		n, err := conn.Read(buf)
		if err != nil {
			return sb.String()
		}
		sb.Write(buf[:n])
	}
	return sb.String()
}

func TestDialRefused(t *testing.T) {
	if _, err := Dial("127.0.0.1:1", "u", time.Second); err == nil {
		t.Fatal("dial to closed port succeeded")
	}
}

func TestDialAuthRejected(t *testing.T) {
	addr := fakeServer(t, func(conn net.Conn) {
		readUntil(conn, "<stream:stream")
		_, _ = conn.Write([]byte(stanza.StreamHeader("srv", "u")))
		readUntil(conn, "<auth")
		_, _ = conn.Write([]byte(stanza.AuthFailure))
	})
	_, err := Dial(addr, "u", 5*time.Second)
	if err != ErrAuthRejected {
		t.Fatalf("err = %v, want ErrAuthRejected", err)
	}
}

func TestDialBadGreeting(t *testing.T) {
	addr := fakeServer(t, func(conn net.Conn) {
		readUntil(conn, "<stream:stream")
		// Reply with a stanza instead of a stream header.
		_, _ = conn.Write([]byte(`<presence from="srv"/>`))
	})
	if _, err := Dial(addr, "u", 5*time.Second); err == nil {
		t.Fatal("bad greeting accepted")
	}
}

func TestDialServerSilent(t *testing.T) {
	addr := fakeServer(t, func(conn net.Conn) {
		readUntil(conn, "<stream:stream")
		time.Sleep(10 * time.Second) // never respond
	})
	start := time.Now()
	if _, err := Dial(addr, "u", 500*time.Millisecond); err == nil {
		t.Fatal("silent server accepted")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("Dial did not respect its timeout")
	}
}

func TestReadMessageStreamClosed(t *testing.T) {
	addr := fakeServer(t, func(conn net.Conn) {
		readUntil(conn, "<stream:stream")
		_, _ = conn.Write([]byte(stanza.StreamHeader("srv", "u")))
		readUntil(conn, "<auth")
		_, _ = conn.Write([]byte(stanza.AuthSuccess))
		// Then close the stream gracefully.
		_, _ = conn.Write([]byte(stanza.StreamClose))
	})
	c, err := Dial(addr, "u", 5*time.Second)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	if _, err := c.ReadMessage(5 * time.Second); err != ErrStreamClosed {
		t.Fatalf("ReadMessage err = %v, want ErrStreamClosed", err)
	}
}

func TestReadMessageSkipsNonMessages(t *testing.T) {
	addr := fakeServer(t, func(conn net.Conn) {
		readUntil(conn, "<stream:stream")
		_, _ = conn.Write([]byte(stanza.StreamHeader("srv", "u")))
		readUntil(conn, "<auth")
		_, _ = conn.Write([]byte(stanza.AuthSuccess))
		_, _ = conn.Write([]byte(`<presence from="someone"/>`))
		_, _ = conn.Write([]byte(stanza.Message("peer", "u", "finally")))
	})
	c, err := Dial(addr, "u", 5*time.Second)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	msg, err := c.ReadMessage(5 * time.Second)
	if err != nil || msg.Body != "finally" || msg.From != "peer" {
		t.Fatalf("ReadMessage = %+v, %v", msg, err)
	}
	if c.User() != "u" {
		t.Fatalf("User = %q", c.User())
	}
}

func TestReadMessageTimeout(t *testing.T) {
	addr := fakeServer(t, func(conn net.Conn) {
		readUntil(conn, "<stream:stream")
		_, _ = conn.Write([]byte(stanza.StreamHeader("srv", "u")))
		readUntil(conn, "<auth")
		_, _ = conn.Write([]byte(stanza.AuthSuccess))
		time.Sleep(10 * time.Second)
	})
	c, err := Dial(addr, "u", 5*time.Second)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	start := time.Now()
	if _, err := c.ReadMessage(300 * time.Millisecond); err == nil {
		t.Fatal("ReadMessage returned without data")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("ReadMessage ignored its timeout")
	}
}

func TestGroupBodyTamperRejected(t *testing.T) {
	addr := fakeServer(t, func(conn net.Conn) {
		readUntil(conn, "<stream:stream")
		_, _ = conn.Write([]byte(stanza.StreamHeader("srv", "u")))
		readUntil(conn, "<auth")
		_, _ = conn.Write([]byte(stanza.AuthSuccess))
		// A groupchat body that is valid hex but not a valid seal.
		_, _ = conn.Write([]byte(stanza.GroupMessage("peer", "room", "deadbeefdeadbeefdeadbeefdeadbeefdeadbeefdeadbeefdeadbeefdead")))
	})
	c, err := Dial(addr, "u", 5*time.Second)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	if _, err := c.ReadMessage(5 * time.Second); err == nil {
		t.Fatal("forged group body accepted")
	}
}
