// Package client implements an XMPP client for the EActors messaging
// service and its baselines — the role libstrophe plays in the paper's
// evaluation (Section 6.4): it connects, authenticates, exchanges chat
// and group-chat messages, and is driven by the benchmark harness.
package client

import (
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"net"
	"time"

	"github.com/eactors/eactors-go/internal/ecrypto"
	"github.com/eactors/eactors-go/internal/xmpp"
	"github.com/eactors/eactors-go/internal/xmpp/stanza"
)

// Client is one connected XMPP user.
type Client struct {
	conn    net.Conn
	user    string
	scanner stanza.Scanner
	readBuf []byte

	key        [ecrypto.KeySize]byte
	bodyCipher *ecrypto.Cipher
	openCipher *ecrypto.Cipher
}

// Errors returned by the client.
var (
	ErrAuthRejected = errors.New("client: authentication rejected")
	ErrStreamClosed = errors.New("client: server closed the stream")
)

// Dial connects to addr, opens the stream and authenticates as user.
func Dial(addr, user string, timeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("client: dial: %w", err)
	}
	c := &Client{
		conn:    conn,
		user:    user,
		readBuf: make([]byte, 4096),
	}
	if _, err := rand.Read(c.key[:]); err != nil {
		conn.Close()
		return nil, err
	}
	c.bodyCipher, err = xmpp.NewClientBodyCipher(c.key)
	if err != nil {
		conn.Close()
		return nil, err
	}
	// The server seals group bodies for us with a server-direction
	// cipher over the same key.
	srvCipher, err := ecrypto.NewCipher(c.key, 0xFF) // tag irrelevant for Open
	if err != nil {
		conn.Close()
		return nil, err
	}
	c.openCipher = srvCipher

	deadline := time.Now().Add(timeout)
	_ = conn.SetDeadline(deadline)
	if _, err := conn.Write([]byte(stanza.StreamHeader(user, xmpp.ServiceName))); err != nil {
		conn.Close()
		return nil, fmt.Errorf("client: stream header: %w", err)
	}
	// Server stream header.
	el, err := c.next()
	if err != nil {
		conn.Close()
		return nil, err
	}
	if el.Kind != stanza.KindStreamStart {
		conn.Close()
		return nil, fmt.Errorf("client: expected stream header, got %q", el.Name)
	}
	// Authenticate.
	auth := stanza.Auth(user, hex.EncodeToString(c.key[:]))
	if _, err := conn.Write([]byte(auth)); err != nil {
		conn.Close()
		return nil, fmt.Errorf("client: auth: %w", err)
	}
	el, err = c.next()
	if err != nil {
		conn.Close()
		return nil, err
	}
	if el.Name != "success" {
		conn.Close()
		return nil, ErrAuthRejected
	}
	_ = conn.SetDeadline(time.Time{})
	return c, nil
}

// User returns the authenticated user name.
func (c *Client) User() string { return c.user }

// next reads until one complete stream element is available.
func (c *Client) next() (stanza.Stanza, error) {
	for {
		el, ok, err := c.scanner.Next()
		if err != nil {
			return stanza.Stanza{}, err
		}
		if ok {
			return el, nil
		}
		n, err := c.conn.Read(c.readBuf)
		if err != nil {
			return stanza.Stanza{}, err
		}
		c.scanner.Feed(c.readBuf[:n])
	}
}

// SendMessage sends a one-to-one chat message. The body travels as
// given; real deployments put their end-to-end ciphertext here.
func (c *Client) SendMessage(to, body string) error {
	_, err := c.conn.Write([]byte(stanza.Message(c.user, to, body)))
	return err
}

// JoinRoom joins a group chat.
func (c *Client) JoinRoom(room string) error {
	_, err := c.conn.Write([]byte(stanza.Presence(c.user, room+"/"+c.user)))
	return err
}

// LeaveRoom leaves a group chat.
func (c *Client) LeaveRoom(room string) error {
	_, err := c.conn.Write([]byte(fmt.Sprintf(
		`<presence from=%q to=%q type="unavailable"/>`,
		stanza.Escape(c.user), stanza.Escape(room+"/"+c.user))))
	return err
}

// SendGroupMessage seals body with the client's service key and sends it
// to the room; the service re-encrypts it per member.
func (c *Client) SendGroupMessage(room, body string) error {
	sealed := xmpp.SealBodyWith(c.bodyCipher, body)
	_, err := c.conn.Write([]byte(stanza.GroupMessage(c.user, room, sealed)))
	return err
}

// SendRaw writes raw bytes onto the stream (tests and protocol tools).
func (c *Client) SendRaw(raw string) error {
	_, err := c.conn.Write([]byte(raw))
	return err
}

// Ping sends an XEP-0199 ping and waits for the service's result.
func (c *Client) Ping(timeout time.Duration) error {
	id := fmt.Sprintf("ping-%d", time.Now().UnixNano())
	iq := fmt.Sprintf(`<iq type="get" id=%q from=%q><ping/></iq>`,
		stanza.Escape(id), stanza.Escape(c.user))
	if _, err := c.conn.Write([]byte(iq)); err != nil {
		return err
	}
	_, err := c.awaitIQ(id, timeout)
	return err
}

// QueryOnline asks the service whether a user is currently online.
func (c *Client) QueryOnline(user string, timeout time.Duration) (bool, error) {
	id := fmt.Sprintf("who-%d", time.Now().UnixNano())
	iq := fmt.Sprintf(`<iq type="get" id=%q from=%q><who>%s</who></iq>`,
		stanza.Escape(id), stanza.Escape(c.user), stanza.Escape(user))
	if _, err := c.conn.Write([]byte(iq)); err != nil {
		return false, err
	}
	el, err := c.awaitIQ(id, timeout)
	if err != nil {
		return false, err
	}
	return stanza.ChildText(el.Raw, "status") == "online", nil
}

// awaitIQ reads until the iq result with the given id arrives, skipping
// unrelated stanzas (messages stay pending in the scanner order; callers
// interleaving chats and iqs should serialise them).
func (c *Client) awaitIQ(id string, timeout time.Duration) (stanza.Stanza, error) {
	if timeout > 0 {
		_ = c.conn.SetReadDeadline(time.Now().Add(timeout))
		defer c.conn.SetReadDeadline(time.Time{})
	}
	for {
		el, err := c.next()
		if err != nil {
			return stanza.Stanza{}, err
		}
		if el.Kind == stanza.KindStreamEnd {
			return stanza.Stanza{}, ErrStreamClosed
		}
		if el.Kind == stanza.KindStanza && el.Name == "iq" && el.Attr("id") == id {
			if el.Attr("type") != "result" {
				return stanza.Stanza{}, fmt.Errorf("client: iq %s answered with type %q", id, el.Attr("type"))
			}
			return el, nil
		}
	}
}

// Message is a received chat message.
type Message struct {
	From  string
	To    string
	Body  string
	Group bool
}

// ReadMessage blocks (up to timeout; zero means no deadline) for the
// next chat or groupchat message, transparently unsealing group bodies.
func (c *Client) ReadMessage(timeout time.Duration) (Message, error) {
	if timeout > 0 {
		_ = c.conn.SetReadDeadline(time.Now().Add(timeout))
		defer c.conn.SetReadDeadline(time.Time{})
	}
	for {
		el, err := c.next()
		if err != nil {
			return Message{}, err
		}
		switch {
		case el.Kind == stanza.KindStreamEnd:
			return Message{}, ErrStreamClosed
		case el.Kind == stanza.KindStanza && el.Name == "message":
			m := Message{
				From:  el.Attr("from"),
				To:    el.Attr("to"),
				Body:  el.Body(),
				Group: el.Attr("type") == "groupchat",
			}
			if m.Group {
				body, err := xmpp.OpenBodyWith(c.openCipher, m.Body)
				if err != nil {
					return Message{}, fmt.Errorf("client: unseal group body: %w", err)
				}
				m.Body = body
			}
			return m, nil
		default:
			// Ignore presences and other stanzas.
		}
	}
}

// Close ends the stream and closes the connection.
func (c *Client) Close() error {
	_, _ = c.conn.Write([]byte(stanza.StreamClose))
	return c.conn.Close()
}
