package bench

import (
	"testing"
	"time"
)

// The at-scale shape tests run the messaging sweeps with real client
// load and assert the paper's qualitative orderings. They take tens of
// seconds each, so `go test -short` skips them; the reduced-shape tests
// in bench_test.go still run.

func TestFig14ShapeAtScale(t *testing.T) {
	if testing.Short() {
		t.Skip("at-scale shape test")
	}
	rows, err := Fig14Scalability(Fig14Config{
		Clients:     []int{200},
		Deployments: []string{"EJB", "JBD2", "EA/3"},
		Warmup:      time.Second,
		Measure:     3 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	ejb, _ := SeriesValue(rows, "fig14", "EJB", 200)
	jbd2, _ := SeriesValue(rows, "fig14", "JBD2", 200)
	ea3, _ := SeriesValue(rows, "fig14", "EA/3", 200)
	t.Logf("fig14 @200 clients: EJB=%.0f JBD2=%.0f EA/3=%.0f req/s", ejb, jbd2, ea3)
	// Paper ordering (Figure 14): EA/3 > JBD2 > EJB. Run-to-run noise on
	// shared single-core hosts is large, so JBD2 vs EJB gets a 15%
	// tolerance and the EA factors a generous band around the paper's
	// 1.81x / 2.42x.
	if ea3 <= jbd2 || ea3 <= ejb {
		t.Errorf("EA/3 (%.0f) not above both baselines (JBD2=%.0f EJB=%.0f)", ea3, jbd2, ejb)
	}
	if jbd2 < 0.85*ejb {
		t.Errorf("JBD2 (%.0f) clearly below EJB (%.0f)", jbd2, ejb)
	}
	if r := ea3 / jbd2; r < 1.1 || r > 5 {
		t.Errorf("EA/3 / JBD2 = %.2f outside [1.1, 5]", r)
	}
	if r := ea3 / ejb; r < 1.2 || r > 7 {
		t.Errorf("EA/3 / EJB = %.2f outside [1.2, 7]", r)
	}
}

func TestFig15ShapeAtScale(t *testing.T) {
	if testing.Short() {
		t.Skip("at-scale shape test")
	}
	rows, err := Fig15GroupChat(Fig15Config{
		Participants: []int{20, 100},
		Warmup:       500 * time.Millisecond,
		Measure:      3 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []float64{20, 100} {
		ejb, _ := SeriesValue(rows, "fig15", "EJB", n)
		jbd2, _ := SeriesValue(rows, "fig15", "JBD2", n)
		trusted, _ := SeriesValue(rows, "fig15", "EA/trusted", n)
		untrusted, _ := SeriesValue(rows, "fig15", "EA/untrusted", n)
		t.Logf("fig15 @%v: EJB=%.0f JBD2=%.0f EA/t=%.0f EA/u=%.0f req/s", n, ejb, jbd2, trusted, untrusted)
		// Paper (Figure 15): EA above JBD2 above EJB; trusted and
		// untrusted EA indistinguishable.
		if !(trusted > jbd2 && untrusted > jbd2) {
			t.Errorf("n=%v: EA (%.0f/%.0f) not above JBD2 (%.0f)", n, trusted, untrusted, jbd2)
		}
		ratio := trusted / untrusted
		if ratio < 0.7 || ratio > 1.4 {
			t.Errorf("n=%v: trusted/untrusted = %.2f, want ~1", n, ratio)
		}
	}
	// Throughput falls with group size for every system.
	for _, series := range []string{"EJB", "JBD2", "EA/trusted", "EA/untrusted"} {
		small, _ := SeriesValue(rows, "fig15", series, 20)
		large, _ := SeriesValue(rows, "fig15", series, 100)
		if large >= small {
			t.Errorf("%s did not degrade with group size (%.0f -> %.0f)", series, small, large)
		}
	}
}

func TestFig17ShapeAtScale(t *testing.T) {
	if testing.Short() {
		t.Skip("at-scale shape test")
	}
	rows, err := Fig17TrustedOverhead(Fig17Config{
		Deployments: []string{"EA/3"},
		Clients:     100,
		Warmup:      time.Second,
		Measure:     3 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	trusted, _ := SeriesValue(rows, "fig17", "EA/3/trusted", 1)
	untrusted, _ := SeriesValue(rows, "fig17", "EA/3/untrusted", 0)
	t.Logf("fig17 @100 clients: trusted=%.0f untrusted=%.0f req/s", trusted, untrusted)
	// Paper (Figure 17): no perceptible overhead.
	ratio := trusted / untrusted
	if ratio < 0.7 || ratio > 1.4 {
		t.Errorf("trusted/untrusted = %.2f, want ~1", ratio)
	}
}
