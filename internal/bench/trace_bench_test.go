package bench

import (
	"testing"

	"github.com/eactors/eactors-go/internal/core"
	"github.com/eactors/eactors-go/internal/sgx"
	"github.com/eactors/eactors-go/internal/trace"
)

// buildTracePair builds a one-channel deployment with tracing switched
// on or off, returning the two endpoints, the sender's trace scope and
// the tracer (both nil with tracing off). The runtime's workers never
// run; the benchmark drives the endpoints directly, the way the core
// channel benchmarks do.
func buildTracePair(b *testing.B, traced, encrypted bool) (src, dst *core.Endpoint, sc *trace.Scope, tr *trace.Tracer) {
	b.Helper()
	cfg := core.Config{
		Trace:            traced,
		TraceSampleEvery: trace.DefaultSampleEvery,
		Workers:          []core.WorkerSpec{{}},
		PoolNodes:        512,
		NodePayload:      256,
		Actors: []core.Spec{
			{Name: "a", Worker: 0, Body: func(*core.Self) {}},
			{Name: "b", Worker: 0, Body: func(*core.Self) {}},
		},
		Channels: []core.ChannelSpec{{Name: "link", A: "a", B: "b", Capacity: 256}},
	}
	if encrypted {
		cfg.Enclaves = []core.EnclaveSpec{{Name: "ea"}, {Name: "eb"}}
		cfg.Actors[0].Enclave = "ea"
		cfg.Actors[1].Enclave = "eb"
	}
	rt, err := core.NewRuntime(sgx.NewPlatform(sgx.WithCostModel(sgx.ZeroCostModel())), cfg)
	if err != nil {
		b.Fatalf("NewRuntime: %v", err)
	}
	b.Cleanup(rt.Stop)
	if src, err = rt.EndpointForTest("a", "link"); err != nil {
		b.Fatal(err)
	}
	if dst, err = rt.EndpointForTest("b", "link"); err != nil {
		b.Fatal(err)
	}
	if traced {
		if sc, err = rt.ScopeForTest("a"); err != nil {
			b.Fatal(err)
		}
		tr = rt.Tracer()
	}
	return src, dst, sc, tr
}

// benchTraceSendRecv measures the single-message channel hop with the
// tracer off (the ≤2% budget: one nil check per path) or armed at the
// default 1-in-64 sampling (the ≤10% budget), rooting traces at the
// sender the way the READER roots them at the wire.
func benchTraceSendRecv(b *testing.B, traced, encrypted bool) {
	src, dst, sc, tr := buildTracePair(b, traced, encrypted)
	payload := make([]byte, 64)
	buf := make([]byte, 256)
	var tick uint32
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if traced {
			if ctx, ok := tr.MaybeRoot(&tick); ok {
				sc.Adopt(ctx)
			}
		}
		if err := src.Send(payload); err != nil {
			b.Fatal(err)
		}
		if _, ok, err := dst.Recv(buf); !ok || err != nil {
			b.Fatalf("Recv: ok=%v err=%v", ok, err)
		}
		// One root context traces exactly one hop; the scope only
		// carries it for that message (mirrors the worker's per-invoke
		// scope clear).
		sc.Clear()
	}
}

func benchTraceBatch(b *testing.B, traced bool) {
	const batch = 64
	src, dst, sc, tr := buildTracePair(b, traced, false)
	payload := make([]byte, 64)
	payloads := make([][]byte, batch)
	for i := range payloads {
		payloads[i] = payload
	}
	bufs, lens := core.BatchBufs(batch, 256)
	var tick uint32
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += batch {
		if traced {
			if ctx, ok := tr.MaybeRoot(&tick); ok {
				sc.Adopt(ctx)
			}
		}
		sent, err := src.SendBatch(payloads)
		if err != nil || sent != batch {
			b.Fatalf("SendBatch = %d, %v", sent, err)
		}
		got, err := dst.RecvBatch(bufs, lens)
		if err != nil || got != batch {
			b.Fatalf("RecvBatch = %d, %v", got, err)
		}
		sc.Clear()
	}
}

// BenchmarkTraceOff is the compiled-in-but-disabled cost of the tracing
// subsystem on the channel hot path (acceptance budget ≤2% vs the
// untraced baseline in the core channel benchmarks).
func BenchmarkTraceOff(b *testing.B) {
	b.Run("single", func(b *testing.B) { benchTraceSendRecv(b, false, false) })
	b.Run("single-enc", func(b *testing.B) { benchTraceSendRecv(b, false, true) })
	b.Run("batch64", func(b *testing.B) { benchTraceBatch(b, false) })
}

// BenchmarkTraceSampled is the armed cost at the default 1-in-64
// sampling (acceptance budget ≤10%): most hops pay one scope load, the
// sampled hop pays clocks and span records.
func BenchmarkTraceSampled(b *testing.B) {
	b.Run("single", func(b *testing.B) { benchTraceSendRecv(b, true, false) })
	b.Run("single-enc", func(b *testing.B) { benchTraceSendRecv(b, true, true) })
	b.Run("batch64", func(b *testing.B) { benchTraceBatch(b, true) })
}
