package bench

import (
	"fmt"
	"testing"
	"time"

	"github.com/eactors/eactors-go/internal/kv"
	"github.com/eactors/eactors-go/internal/sgx"
)

// benchKVPipelined measures the per-op cost of the framed multiplexed
// transport at a fixed pipelining depth: one TCP connection, a sliding
// ring of depth in-flight GETs against an untrusted single-shard
// deployment (zero-cost platform, so ns/op is transport + runtime, not
// simulated enclave charges). Deeper rings amortise the loopback
// round-trip over concurrent requests — the same effect the depth sweep
// in EXPERIMENTS.md measures end to end with cmd/kvload.
func benchKVPipelined(b *testing.B, depth int) {
	srv, err := kv.Start(kv.Options{
		Shards:   1,
		Platform: sgx.NewPlatform(sgx.WithCostModel(sgx.ZeroCostModel())),
	})
	if err != nil {
		b.Fatalf("kv.Start: %v", err)
	}
	defer srv.Stop()

	const keys = 256
	value := randomPayload(128)
	loader, err := kv.Dial(srv.Addr(), 30*time.Second)
	if err != nil {
		b.Fatalf("dial loader: %v", err)
	}
	for i := 0; i < keys; i++ {
		if err := loader.Set(kvBenchKeyName(i), value); err != nil {
			_ = loader.Close()
			b.Fatalf("preload key %d: %v", i, err)
		}
	}
	_ = loader.Close()

	c, err := kv.DialPipelined(srv.Addr(), kv.PipelineOptions{Depth: depth, Timeout: 30 * time.Second})
	if err != nil {
		b.Fatalf("DialPipelined: %v", err)
	}
	defer c.Close()

	keyNames := make([][]byte, keys)
	for i := range keyNames {
		keyNames[i] = kvBenchKeyName(i)
	}

	b.ReportAllocs()
	b.ResetTimer()
	ring := make([]*kv.Pending, 0, depth)
	reap := func(p *kv.Pending) {
		resp, err := p.Wait()
		if err != nil {
			b.Fatalf("wait: %v", err)
		}
		if resp.Status != kv.StatusValue {
			b.Fatalf("status = %d", resp.Status)
		}
	}
	rng := uint32(0x9e3779b9)
	for i := 0; i < b.N; i++ {
		rng = rng*1664525 + 1013904223
		p, err := c.IssueGet(keyNames[int(rng>>8)%keys])
		if err != nil {
			b.Fatalf("issue %d: %v", i, err)
		}
		ring = append(ring, p)
		if len(ring) == depth {
			reap(ring[0])
			copy(ring, ring[1:])
			ring = ring[:len(ring)-1]
		}
	}
	for _, p := range ring {
		reap(p)
	}
	b.StopTimer()
	st := c.Stats()
	b.ReportMetric(float64(st.Resent), "resends")
	if st.Completed != uint64(b.N) {
		b.Fatalf("completed %d of %d", st.Completed, b.N)
	}
}

func BenchmarkKVPipelined1(b *testing.B)  { benchKVPipelined(b, 1) }
func BenchmarkKVPipelined16(b *testing.B) { benchKVPipelined(b, 16) }
func BenchmarkKVPipelined64(b *testing.B) { benchKVPipelined(b, 64) }

// BenchmarkKVPipelinedDepthSweep prints the full connection-throughput
// curve (not gated in CI; run manually for the EXPERIMENTS.md table).
func BenchmarkKVPipelinedDepthSweep(b *testing.B) {
	for _, depth := range []int{1, 4, 16, 64, 256} {
		b.Run(fmt.Sprintf("depth%d", depth), func(b *testing.B) {
			benchKVPipelined(b, depth)
		})
	}
}
