package bench

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/eactors/eactors-go/internal/ecrypto"
	"github.com/eactors/eactors-go/internal/kv"
	"github.com/eactors/eactors-go/internal/sgx"
	"github.com/eactors/eactors-go/internal/telemetry"
)

// FigKVConfig parameterises the KV shard-scaling sweep (figkv): the
// networked secure key-value service measured end to end — TCP clients
// through the untrusted FRONTEND into the enclaved KVSTORE pipeline and
// the sharded, cached POS behind it. One series per shard count, x =
// concurrent clients, so the figure shows where affinity-routed shards
// stop helping for a given offered load.
type FigKVConfig struct {
	Shards     []int
	Clients    []int
	Keys       int
	ValueBytes int
	// GetRatio is the GET fraction; the remainder splits SET/DEL 9:1,
	// matching cmd/kvload's default mix.
	GetRatio float64
	Trusted  bool
	Warmup   time.Duration
	Measure  time.Duration
}

// DefaultFigKV is the paper-style sweep: trusted deployment, encrypted
// store, GET-heavy mix.
func DefaultFigKV() FigKVConfig {
	return FigKVConfig{
		Shards:     []int{1, 2, 4, 8},
		Clients:    []int{2, 4, 8, 16},
		Keys:       4096,
		ValueBytes: 128,
		GetRatio:   0.9,
		Trusted:    true,
		Warmup:     time.Second,
		Measure:    5 * time.Second,
	}
}

// FigKVShardScaling measures service throughput for every (shards,
// clients) point.
func FigKVShardScaling(cfg FigKVConfig) ([]Row, error) {
	var rows []Row
	for _, shards := range cfg.Shards {
		for _, clients := range cfg.Clients {
			thr, err := runKVPoint(cfg, shards, clients)
			if err != nil {
				return nil, fmt.Errorf("bench: figkv shards=%d clients=%d: %w", shards, clients, err)
			}
			rows = append(rows, Row{
				Figure: "figkv", Series: fmt.Sprintf("shards=%d", shards),
				XLabel: "clients", X: float64(clients),
				Value: thr, Unit: "op/s",
			})
		}
	}
	return rows, nil
}

// runKVPoint starts one deployment, preloads the key space and drives
// it with closed-loop clients for the measure window.
func runKVPoint(cfg FigKVConfig, shards, clients int) (float64, error) {
	var key [ecrypto.KeySize]byte
	for i := range key {
		key[i] = byte(i + 1)
	}
	srv, err := kv.Start(kv.Options{
		Shards:        shards,
		Trusted:       cfg.Trusted,
		Switchless:    Switchless,
		Platform:      sgx.NewPlatform(),
		EncryptionKey: &key,
		StoreSize:     4 << 20,
		Telemetry:     Telemetry || MetricsAddr != "",
	})
	if err != nil {
		return 0, err
	}
	stop := srv.Stop
	if MetricsAddr != "" {
		if bound, stopHTTP, err := telemetry.Serve(MetricsAddr, srv.Telemetry()); err == nil {
			fmt.Printf("bench: figkv shards=%d metrics on http://%s/metrics\n", shards, bound)
			stop = func() { stopHTTP(); srv.Stop() }
		}
	}
	defer stop()

	value := randomPayload(cfg.ValueBytes)
	loader, err := kv.Dial(srv.Addr(), 30*time.Second)
	if err != nil {
		return 0, err
	}
	for i := 0; i < cfg.Keys; i++ {
		if err := loader.Set(kvBenchKeyName(i), value); err != nil {
			_ = loader.Close()
			return 0, fmt.Errorf("preload key %d: %w", i, err)
		}
	}
	_ = loader.Close()

	var ops atomic.Uint64
	stopCh := make(chan struct{})
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		conn, err := kv.Dial(srv.Addr(), 30*time.Second)
		if err != nil {
			close(stopCh)
			wg.Wait()
			return 0, fmt.Errorf("dial client %d: %w", c, err)
		}
		wg.Add(1)
		go func(idx int, conn *kv.Client) {
			defer wg.Done()
			defer conn.Close()
			rng := uint32(idx*2654435761 + 12345)
			for {
				select {
				case <-stopCh:
					return
				default:
				}
				rng = rng*1664525 + 1013904223
				k := kvBenchKeyName(int(rng>>8) % cfg.Keys)
				r := float64(rng%10000) / 10000
				var err error
				switch {
				case r < cfg.GetRatio:
					_, _, err = conn.Get(k)
				case r < cfg.GetRatio+(1-cfg.GetRatio)*0.9:
					err = conn.Set(k, value)
				default:
					_, err = conn.Del(k)
				}
				if err != nil {
					continue // timeout: the client resends (at-least-once)
				}
				ops.Add(1)
			}
		}(c, conn)
	}

	time.Sleep(cfg.Warmup)
	base := ops.Load()
	time.Sleep(cfg.Measure)
	delta := ops.Load() - base
	close(stopCh)
	wg.Wait()
	return float64(delta) / cfg.Measure.Seconds(), nil
}

// kvBenchKeyName builds the i-th workload key.
func kvBenchKeyName(i int) []byte {
	return []byte(fmt.Sprintf("key-%d", i))
}
