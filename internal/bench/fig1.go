package bench

import (
	"runtime"
	"sync"
	"time"

	"github.com/eactors/eactors-go/internal/sgx"
)

// Fig1Config parameterises the Figure 1 reproduction: concurrent
// dequeuing of Elements from a mutex-protected stack, comparing a
// pthread-style futex mutex with the SGX SDK mutex (spin then
// exit-enclave-and-sleep). The paper uses 1,000,000 elements and 2-16
// consumer threads.
type Fig1Config struct {
	Elements int
	Threads  []int
	Costs    *sgx.CostModel
}

// DefaultFig1 returns the paper-scale configuration.
func DefaultFig1() Fig1Config {
	return Fig1Config{
		Elements: 1_000_000,
		Threads:  []int{2, 4, 6, 8, 10, 12, 14, 16},
		Costs:    sgx.DefaultCostModel(),
	}
}

// lockedStack is the shared mutex-protected stack both variants drain.
type lockedStack struct {
	items int
}

// pop removes one element. The Gosched inside the critical section is
// the single-core interleaving device: on the paper's 8-thread machine
// consumers contend because they run simultaneously on different cores;
// on a 1-CPU host the holder must be descheduled mid-hold for any
// contention to exist at all. It is applied identically to both the
// pthread and the SGX variant, so it shifts both curves without
// distorting their ratio — which is what Figure 1 plots.
func (s *lockedStack) pop() bool {
	if s.items == 0 {
		return false
	}
	s.items--
	runtime.Gosched()
	return true
}

// Fig1MutexStack runs both series and returns time-to-drain rows.
func Fig1MutexStack(cfg Fig1Config) ([]Row, error) {
	var rows []Row
	for _, threads := range cfg.Threads {
		// pthread_mutex: plain futex mutex, untrusted contexts.
		pthread := drainPthread(cfg.Elements, threads)
		rows = append(rows, Row{
			Figure: "fig1", Series: "pthread_mutex",
			XLabel: "threads", X: float64(threads),
			Value: pthread.Seconds(), Unit: "s",
		})

		sgxTime, err := drainSGX(cfg.Elements, threads, cfg.Costs)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Row{
			Figure: "fig1", Series: "sgx_mutex",
			XLabel: "threads", X: float64(threads),
			Value: sgxTime.Seconds(), Unit: "s",
		})
	}
	return rows, nil
}

func drainPthread(elements, threads int) time.Duration {
	stack := &lockedStack{items: elements}
	var mu sync.Mutex
	var wg sync.WaitGroup
	start := time.Now()
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				ok := stack.pop()
				mu.Unlock()
				if !ok {
					return
				}
			}
		}()
	}
	wg.Wait()
	return time.Since(start)
}

func drainSGX(elements, threads int, costs *sgx.CostModel) (time.Duration, error) {
	platform := sgx.NewPlatform(sgx.WithCostModel(costs))
	enclave, err := platform.CreateEnclave("fig1-stack", 64*1024)
	if err != nil {
		return 0, err
	}
	defer platform.DestroyEnclave(enclave)

	stack := &lockedStack{items: elements}
	mu := sgx.NewMutex(platform)
	var wg sync.WaitGroup
	start := time.Now()
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx := sgx.NewContext(platform)
			if err := ctx.Enter(enclave); err != nil {
				return
			}
			defer ctx.Exit()
			for {
				mu.Lock(ctx)
				ok := stack.pop()
				mu.Unlock(ctx)
				if !ok {
					return
				}
			}
		}()
	}
	wg.Wait()
	return time.Since(start), nil
}
