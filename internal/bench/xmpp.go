package bench

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/eactors/eactors-go/internal/sgx"
	"github.com/eactors/eactors-go/internal/telemetry"
	"github.com/eactors/eactors-go/internal/xmpp"
	"github.com/eactors/eactors-go/internal/xmpp/baseline"
	"github.com/eactors/eactors-go/internal/xmpp/client"
)

// Telemetry enables the runtime observability subsystem on every EActors
// deployment the benchmarks start (eactors-bench -telemetry). The paper's
// throughput figures are normally run with it off; turning it on measures
// the instrumented configuration.
var Telemetry bool

// MetricsAddr, when non-empty, serves each running EActors deployment's
// registry over HTTP (Prometheus text + pprof) for the duration of that
// deployment (eactors-bench -metrics). Implies Telemetry.
var MetricsAddr string

// Switchless services encrypted cross-enclave channels of every trusted
// deployment with switchless proxy workers instead of blocking crossings
// (eactors-bench -switchless). Plaintext deployments are unaffected.
var Switchless bool

// messagePayloadBytes matches the paper's O2O workload: pseudo-random
// strings of at most 150 bytes (Section 6.4.1).
const messagePayloadBytes = 150

// xmppDeployment abstracts "some server we can point clients at".
type xmppDeployment struct {
	name string
	addr string
	stop func()
}

// startDeployment launches one of the five Figure 14 systems.
//
//	EJB    — ejabberd baseline
//	JBD2   — JabberD2 baseline
//	EA/3   — EActors, 1 XMPP shard (3 eactors)
//	EA/6   — EActors, 2 shards
//	EA/48  — EActors, 16 shards
func startDeployment(name string, trusted bool, enclaves int, ssl bool) (*xmppDeployment, error) {
	switch name {
	case "EJB":
		srv, err := baseline.Start(baseline.Options{Kind: baseline.EjabberdKind, SSL: ssl})
		if err != nil {
			return nil, err
		}
		return &xmppDeployment{name: name, addr: srv.Addr(), stop: srv.Stop}, nil
	case "JBD2":
		srv, err := baseline.Start(baseline.Options{Kind: baseline.JabberD2Kind, SSL: ssl})
		if err != nil {
			return nil, err
		}
		return &xmppDeployment{name: name, addr: srv.Addr(), stop: srv.Stop}, nil
	}
	shards, ok := map[string]int{"EA/3": 1, "EA/6": 2, "EA/48": 16}[name]
	if !ok {
		return nil, fmt.Errorf("bench: unknown deployment %q", name)
	}
	if enclaves == 0 {
		enclaves = shards
	}
	srv, err := xmpp.Start(xmpp.Options{
		Shards:       shards,
		Trusted:      trusted,
		Switchless:   Switchless,
		EnclaveCount: enclaves,
		Platform:     sgx.NewPlatform(),
		Telemetry:    Telemetry || MetricsAddr != "",
	})
	if err != nil {
		return nil, err
	}
	stop := srv.Stop
	if MetricsAddr != "" {
		if bound, stopHTTP, err := telemetry.Serve(MetricsAddr, srv.Telemetry()); err == nil {
			fmt.Printf("bench: %s metrics on http://%s/metrics\n", name, bound)
			stop = func() { stopHTTP(); srv.Stop() }
		}
	}
	return &xmppDeployment{name: name, addr: srv.Addr(), stop: stop}, nil
}

// runO2OWorkload drives the paper's one-to-one scenario: half the
// clients send, half receive and respond; a completed send+response is
// one request. Returns requests/second over the measure window.
func runO2OWorkload(addr string, clients int, warmup, measure time.Duration) (float64, error) {
	if clients%2 != 0 {
		clients++
	}
	pairs := clients / 2
	payload := string(randomPayload(messagePayloadBytes))

	conns := make([]*client.Client, 0, clients)
	defer func() {
		for _, c := range conns {
			_ = c.Close()
		}
	}()

	// Connect receivers first so senders never target an offline user.
	receivers := make([]*client.Client, pairs)
	for i := 0; i < pairs; i++ {
		c, err := client.Dial(addr, fmt.Sprintf("recv-%d", i), 30*time.Second)
		if err != nil {
			return 0, fmt.Errorf("bench: dial receiver %d: %w", i, err)
		}
		receivers[i] = c
		conns = append(conns, c)
	}
	senders := make([]*client.Client, pairs)
	for i := 0; i < pairs; i++ {
		c, err := client.Dial(addr, fmt.Sprintf("send-%d", i), 30*time.Second)
		if err != nil {
			return 0, fmt.Errorf("bench: dial sender %d: %w", i, err)
		}
		senders[i] = c
		conns = append(conns, c)
	}

	var completed atomic.Uint64
	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Receivers echo every message back to its sender.
	for i := range receivers {
		wg.Add(1)
		go func(c *client.Client) {
			defer wg.Done()
			for {
				msg, err := c.ReadMessage(500 * time.Millisecond)
				if err != nil {
					select {
					case <-stop:
						return
					default:
						continue
					}
				}
				_ = c.SendMessage(msg.From, msg.Body) //sendcheck:ok
			}
		}(receivers[i])
	}

	// Senders run closed loops: send, await the response, repeat. Each
	// sender picks a receiver pseudo-randomly per round (paper: "a
	// sender client randomly selects a receiver client").
	for i := range senders {
		wg.Add(1)
		go func(idx int, c *client.Client) {
			defer wg.Done()
			rng := uint32(idx*2654435761 + 1)
			for {
				select {
				case <-stop:
					return
				default:
				}
				rng = rng*1664525 + 1013904223
				target := fmt.Sprintf("recv-%d", int(rng)%pairs)
				if err := c.SendMessage(target, payload); err != nil {
					return
				}
				if _, err := c.ReadMessage(2 * time.Second); err != nil {
					continue // response lost/slow: try again
				}
				completed.Add(1)
			}
		}(i, senders[i])
	}

	time.Sleep(warmup)
	base := completed.Load()
	time.Sleep(measure)
	delta := completed.Load() - base
	close(stop)
	wg.Wait()
	return float64(delta) / measure.Seconds(), nil
}

// Fig14Config parameterises the O2O scalability sweep.
type Fig14Config struct {
	Clients     []int
	Deployments []string
	Warmup      time.Duration
	Measure     time.Duration
}

// DefaultFig14 is the paper-scale sweep (the paper measures 1 minute
// per point; the default here uses shorter steady-state windows).
func DefaultFig14() Fig14Config {
	return Fig14Config{
		Clients:     []int{100, 200, 400, 600, 800, 1000},
		Deployments: []string{"EJB", "JBD2", "EA/3", "EA/6", "EA/48"},
		Warmup:      time.Second,
		Measure:     5 * time.Second,
	}
}

// Fig14Scalability measures throughput against concurrent client count
// for the five deployments.
func Fig14Scalability(cfg Fig14Config) ([]Row, error) {
	var rows []Row
	for _, name := range cfg.Deployments {
		for _, clients := range cfg.Clients {
			dep, err := startDeployment(name, true, 0, false)
			if err != nil {
				return nil, err
			}
			thr, err := runO2OWorkload(dep.addr, clients, cfg.Warmup, cfg.Measure)
			dep.stop()
			if err != nil {
				return nil, fmt.Errorf("bench: fig14 %s clients=%d: %w", name, clients, err)
			}
			rows = append(rows, Row{
				Figure: "fig14", Series: name,
				XLabel: "clients", X: float64(clients),
				Value: thr, Unit: "req/s",
			})
		}
	}
	return rows, nil
}

// Fig15Config parameterises the group-chat comparison.
type Fig15Config struct {
	Participants []int
	Warmup       time.Duration
	Measure      time.Duration
}

// DefaultFig15 is the paper-scale sweep.
func DefaultFig15() Fig15Config {
	return Fig15Config{
		Participants: []int{20, 40, 60, 80, 100},
		Warmup:       500 * time.Millisecond,
		Measure:      4 * time.Second,
	}
}

// Fig15GroupChat compares EJB, SSL-enabled JBD2, EA/trusted and
// EA/untrusted on a single group chat of growing size.
func Fig15GroupChat(cfg Fig15Config) ([]Row, error) {
	type variant struct {
		series string
		start  func() (*xmppDeployment, error)
	}
	variants := []variant{
		{"EJB", func() (*xmppDeployment, error) { return startDeployment("EJB", false, 0, false) }},
		{"JBD2", func() (*xmppDeployment, error) { return startDeployment("JBD2", false, 0, true) }},
		{"EA/trusted", func() (*xmppDeployment, error) { return startDeployment("EA/3", true, 1, false) }},
		{"EA/untrusted", func() (*xmppDeployment, error) { return startDeployment("EA/3", false, 0, false) }},
		// EA/dedicated is an ablation beyond the paper's figure: the
		// group chat confined to its own enclave (the Section 2.1
		// security configuration), measuring what the extra forward hop
		// and enclave cost.
		{"EA/dedicated", func() (*xmppDeployment, error) {
			srv, err := xmpp.Start(xmpp.Options{
				Shards:         1,
				Trusted:        true,
				EnclaveCount:   1,
				DedicatedRooms: []string{"bench-room"},
				Platform:       sgx.NewPlatform(),
				Telemetry:      Telemetry,
			})
			if err != nil {
				return nil, err
			}
			return &xmppDeployment{name: "EA/dedicated", addr: srv.Addr(), stop: srv.Stop}, nil
		}},
	}
	var rows []Row
	for _, v := range variants {
		for _, participants := range cfg.Participants {
			dep, err := v.start()
			if err != nil {
				return nil, err
			}
			thr, err := runGroupWorkload(dep.addr, participants, cfg.Warmup, cfg.Measure)
			dep.stop()
			if err != nil {
				return nil, fmt.Errorf("bench: fig15 %s n=%d: %w", v.series, participants, err)
			}
			rows = append(rows, Row{
				Figure: "fig15", Series: v.series,
				XLabel: "participants", X: float64(participants),
				Value: thr, Unit: "req/s",
			})
		}
	}
	return rows, nil
}

// runGroupWorkload joins `participants` clients to one room; one sender
// emits a new group message as soon as a designated member observed the
// previous one (the paper's self-clocked O2M loop). Returns group
// messages/second.
func runGroupWorkload(addr string, participants int, warmup, measure time.Duration) (float64, error) {
	if participants < 2 {
		participants = 2
	}
	const room = "bench-room"
	members := make([]*client.Client, participants)
	defer func() {
		for _, c := range members {
			if c != nil {
				_ = c.Close()
			}
		}
	}()
	for i := range members {
		c, err := client.Dial(addr, fmt.Sprintf("member-%d", i), 30*time.Second)
		if err != nil {
			return 0, fmt.Errorf("bench: dial member %d: %w", i, err)
		}
		if err := c.JoinRoom(room); err != nil {
			return 0, err
		}
		members[i] = c
	}
	// Joins are fire-and-forget; give the service a moment to register
	// the room before clocking it.
	time.Sleep(300 * time.Millisecond)

	sender := members[0]
	monitor := members[1]
	drainers := members[2:]

	stop := make(chan struct{})
	var wg sync.WaitGroup
	// Every member's receptions count: a group request is complete when
	// all N-1 copies are delivered, so throughput = deliveries/(N-1).
	// Averaging over all members (rather than clocking one of them)
	// keeps the measurement independent of fan-out ordering.
	var delivered atomic.Uint64
	for _, c := range drainers {
		wg.Add(1)
		go func(c *client.Client) {
			defer wg.Done()
			for {
				if _, err := c.ReadMessage(500 * time.Millisecond); err != nil {
					select {
					case <-stop:
						return
					default:
					}
				} else {
					delivered.Add(1)
				}
			}
		}(c)
	}

	wg.Add(1)
	go func() {
		defer wg.Done()
		payload := string(randomPayload(messagePayloadBytes))
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := sender.SendGroupMessage(room, payload); err != nil {
				return
			}
			// Self-clocking: the next message goes out once one member
			// observed the previous one (the paper's O2M loop).
			if _, err := monitor.ReadMessage(5 * time.Second); err != nil {
				continue
			}
			delivered.Add(1)
		}
	}()

	time.Sleep(warmup)
	base := delivered.Load()
	time.Sleep(measure)
	delta := delivered.Load() - base
	close(stop)
	wg.Wait()
	return float64(delta) / float64(participants-1) / measure.Seconds(), nil
}

// Fig16Config parameterises the enclave-count sweep: 16 shards (48
// eactors) in 1, 2 or 16 enclaves, 400 clients.
type Fig16Config struct {
	Enclaves []int
	Clients  int
	Warmup   time.Duration
	Measure  time.Duration
}

// DefaultFig16 is the paper-scale configuration.
func DefaultFig16() Fig16Config {
	return Fig16Config{
		Enclaves: []int{1, 2, 16},
		Clients:  400,
		Warmup:   time.Second,
		Measure:  5 * time.Second,
	}
}

// Fig16EnclaveCount measures the throughput impact of spreading a fixed
// 48-eactor deployment over a varying number of enclaves.
func Fig16EnclaveCount(cfg Fig16Config) ([]Row, error) {
	var rows []Row
	for _, enclaves := range cfg.Enclaves {
		dep, err := startDeployment("EA/48", true, enclaves, false)
		if err != nil {
			return nil, err
		}
		thr, err := runO2OWorkload(dep.addr, cfg.Clients, cfg.Warmup, cfg.Measure)
		dep.stop()
		if err != nil {
			return nil, fmt.Errorf("bench: fig16 enclaves=%d: %w", enclaves, err)
		}
		rows = append(rows, Row{
			Figure: "fig16", Series: "EA/48",
			XLabel: "enclaves", X: float64(enclaves),
			Value: thr, Unit: "req/s",
		})
	}
	return rows, nil
}

// Fig17Config parameterises the trusted-vs-untrusted overhead check.
type Fig17Config struct {
	Deployments []string
	Clients     int
	Warmup      time.Duration
	Measure     time.Duration
}

// DefaultFig17 is the paper-scale configuration.
func DefaultFig17() Fig17Config {
	return Fig17Config{
		Deployments: []string{"EA/3", "EA/6", "EA/48"},
		Clients:     400,
		Warmup:      time.Second,
		Measure:     5 * time.Second,
	}
}

// Fig17TrustedOverhead measures each deployment in trusted and
// untrusted mode.
func Fig17TrustedOverhead(cfg Fig17Config) ([]Row, error) {
	var rows []Row
	for _, name := range cfg.Deployments {
		for _, trusted := range []bool{true, false} {
			dep, err := startDeployment(name, trusted, 0, false)
			if err != nil {
				return nil, err
			}
			thr, err := runO2OWorkload(dep.addr, cfg.Clients, cfg.Warmup, cfg.Measure)
			dep.stop()
			if err != nil {
				return nil, fmt.Errorf("bench: fig17 %s trusted=%v: %w", name, trusted, err)
			}
			mode := "untrusted"
			x := 0.0
			if trusted {
				mode = "trusted"
				x = 1.0
			}
			rows = append(rows, Row{
				Figure: "fig17", Series: name + "/" + mode,
				XLabel: "trusted", X: x,
				Value: thr, Unit: "req/s",
			})
		}
	}
	return rows, nil
}
