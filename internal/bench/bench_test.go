package bench

import (
	"strings"
	"testing"
	"time"

	"github.com/eactors/eactors-go/internal/sgx"
)

// The harness tests run miniature versions of every figure sweep and
// assert the paper's qualitative shapes, not absolute numbers.

func TestFig1Shape(t *testing.T) {
	rows, err := Fig1MutexStack(Fig1Config{
		Elements: 5_000,
		Threads:  []int{2, 4},
		Costs:    sgx.DefaultCostModel(),
	})
	if err != nil {
		t.Fatalf("Fig1MutexStack: %v", err)
	}
	for _, threads := range []float64{2, 4} {
		pthread, ok1 := SeriesValue(rows, "fig1", "pthread_mutex", threads)
		sgxTime, ok2 := SeriesValue(rows, "fig1", "sgx_mutex", threads)
		if !ok1 || !ok2 {
			t.Fatalf("missing series at threads=%v", threads)
		}
		// The paper's gap is orders of magnitude; require at least 3x in
		// the miniature run.
		if sgxTime < 3*pthread {
			t.Errorf("threads=%v: sgx_mutex %.4fs not >> pthread %.4fs", threads, sgxTime, pthread)
		}
	}
}

func TestFig11Shape(t *testing.T) {
	rows, err := Fig11PingPong(Fig11Config{
		// Enough pairs that startup and first-wakeup costs amortise;
		// at a few hundred pairs the EA-vs-Native comparison at 16 B is
		// scheduling noise.
		Pairs: 2000,
		Sizes: []int{16, 64 << 10},
		Costs: sgx.DefaultCostModel(),
	})
	if err != nil {
		t.Fatalf("Fig11PingPong: %v", err)
	}
	for _, size := range []float64{16, 64 << 10} {
		native, _ := SeriesValue(rows, "fig11a", "Native", size)
		ea, _ := SeriesValue(rows, "fig11a", "EA", size)
		eaEnc, _ := SeriesValue(rows, "fig11a", "EA-ENC", size)
		if ea <= 0 || native <= 0 || eaEnc <= 0 {
			t.Fatalf("size=%v: missing measurements (%v, %v, %v)", size, native, ea, eaEnc)
		}
		// EA beats Native everywhere in the paper. On a 1-core host the
		// EA hop includes a goroutine park/unpark, which for tiny
		// payloads sits at the same magnitude as the native call's
		// transition charge — allow noise-level parity there, and
		// require a strict win once payload copies matter.
		limit := native
		if size <= 1024 {
			limit = 1.25 * native
		}
		if ea >= limit {
			t.Errorf("size=%v: EA %.4fs vs Native %.4fs exceeds tolerance", size, ea, native)
		}
	}
	// Encryption costs: at large payloads EA-ENC is clearly slower than
	// EA but still faster than Native (the paper reports ~10x below EA,
	// >= 3x above native in throughput).
	eaBig, _ := SeriesValue(rows, "fig11b", "EA", 64<<10)
	encBig, _ := SeriesValue(rows, "fig11b", "EA-ENC", 64<<10)
	nativeBig, _ := SeriesValue(rows, "fig11b", "Native", 64<<10)
	if !(encBig < eaBig && encBig > nativeBig) {
		t.Errorf("throughput ordering at 64K: EA=%.1f EA-ENC=%.1f Native=%.1f", eaBig, encBig, nativeBig)
	}
}

func TestSMCShape(t *testing.T) {
	cfg := SMCConfig{
		Figure:     "fig12",
		ShortDims:  []int{1},
		LongDims:   []int{1000},
		PartiesAB:  []int{3},
		PartySweep: []int{3},
		PartyDims:  []int{1},
		Rounds:     200,
		Costs:      sgx.DefaultCostModel(),
	}
	rows, err := FigSMC(cfg)
	if err != nil {
		t.Fatalf("FigSMC: %v", err)
	}
	ecShort, _ := SeriesValue(rows, "fig12a", "EC/3", 1)
	eaShort, _ := SeriesValue(rows, "fig12a", "EA/3", 1)
	modelShort, _ := SeriesValue(rows, "fig12a", "EA/3*", 1)
	if ecShort <= 0 || eaShort <= 0 || modelShort <= 0 {
		t.Fatalf("missing SMC points: EC=%v EA=%v EA*=%v", ecShort, eaShort, modelShort)
	}
	// Short vectors: EA (pipeline model) clearly ahead — transition
	// savings plus party-parallelism dominate (Figure 12a).
	if modelShort <= ecShort {
		t.Errorf("dim=1: EA* %.0f req/s not above EC %.0f req/s", modelShort, ecShort)
	}
	// Long vectors: the gap closes (paper: 8%% at 1000 elements,
	// negligible beyond 2000) because the trusted RNG dominates.
	ecLong, _ := SeriesValue(rows, "fig12b", "EC/3", 1000)
	modelLong, _ := SeriesValue(rows, "fig12b", "EA/3*", 1000)
	shortRatio := modelShort / ecShort
	longRatio := modelLong / ecLong
	if longRatio >= shortRatio {
		t.Errorf("gap did not close with vector size: short ratio %.2f, long ratio %.2f", shortRatio, longRatio)
	}
}

func TestFig14Small(t *testing.T) {
	rows, err := Fig14Scalability(Fig14Config{
		Clients:     []int{8},
		Deployments: []string{"JBD2", "EA/3"},
		Warmup:      300 * time.Millisecond,
		Measure:     time.Second,
	})
	if err != nil {
		t.Fatalf("Fig14Scalability: %v", err)
	}
	for _, series := range []string{"JBD2", "EA/3"} {
		v, ok := SeriesValue(rows, "fig14", series, 8)
		if !ok || v <= 0 {
			t.Errorf("series %s: throughput %v", series, v)
		}
	}
}

func TestFig15Small(t *testing.T) {
	rows, err := Fig15GroupChat(Fig15Config{
		Participants: []int{4},
		Warmup:       300 * time.Millisecond,
		Measure:      time.Second,
	})
	if err != nil {
		t.Fatalf("Fig15GroupChat: %v", err)
	}
	for _, series := range []string{"EJB", "JBD2", "EA/trusted", "EA/untrusted"} {
		v, ok := SeriesValue(rows, "fig15", series, 4)
		if !ok || v <= 0 {
			t.Errorf("series %s: throughput %v", series, v)
		}
	}
}

func TestFig16Small(t *testing.T) {
	rows, err := Fig16EnclaveCount(Fig16Config{
		Enclaves: []int{1, 2},
		Clients:  8,
		Warmup:   300 * time.Millisecond,
		Measure:  time.Second,
	})
	if err != nil {
		t.Fatalf("Fig16EnclaveCount: %v", err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Value <= 0 {
			t.Errorf("enclaves=%v: throughput %v", r.X, r.Value)
		}
	}
}

func TestFig17Small(t *testing.T) {
	rows, err := Fig17TrustedOverhead(Fig17Config{
		Deployments: []string{"EA/3"},
		Clients:     8,
		Warmup:      300 * time.Millisecond,
		Measure:     time.Second,
	})
	if err != nil {
		t.Fatalf("Fig17TrustedOverhead: %v", err)
	}
	trusted, ok1 := SeriesValue(rows, "fig17", "EA/3/trusted", 1)
	untrusted, ok2 := SeriesValue(rows, "fig17", "EA/3/untrusted", 0)
	if !ok1 || !ok2 || trusted <= 0 || untrusted <= 0 {
		t.Fatalf("missing rows: trusted=%v untrusted=%v", trusted, untrusted)
	}
}

func TestFigKVSmall(t *testing.T) {
	rows, err := FigKVShardScaling(FigKVConfig{
		Shards:     []int{1, 2},
		Clients:    []int{4},
		Keys:       256,
		ValueBytes: 64,
		GetRatio:   0.9,
		Trusted:    true,
		Warmup:     300 * time.Millisecond,
		Measure:    time.Second,
	})
	if err != nil {
		t.Fatalf("FigKVShardScaling: %v", err)
	}
	for _, series := range []string{"shards=1", "shards=2"} {
		v, ok := SeriesValue(rows, "figkv", series, 4)
		if !ok || v <= 0 {
			t.Errorf("series %s: throughput %v", series, v)
		}
	}
}

func TestPrintTable(t *testing.T) {
	rows := []Row{
		{Figure: "figX", Series: "A", XLabel: "n", X: 1, Value: 10, Unit: "req/s"},
		{Figure: "figX", Series: "B", XLabel: "n", X: 1, Value: 20, Unit: "req/s"},
	}
	var sb strings.Builder
	PrintTable(&sb, rows)
	out := sb.String()
	if !strings.Contains(out, "figX") || !strings.Contains(out, "req/s") {
		t.Fatalf("table output:\n%s", out)
	}
	if rows[0].String() == "" {
		t.Fatal("Row.String empty")
	}
}

func TestWriteCSV(t *testing.T) {
	rows := []Row{
		{Figure: "figY", Series: "S", XLabel: "n", X: 2, Value: 3.5, Unit: "req/s"},
	}
	var sb strings.Builder
	if err := WriteCSV(&sb, rows); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "figure,series,x_label,x,value,unit") {
		t.Fatalf("missing header: %s", out)
	}
	if !strings.Contains(out, "figY,S,n,2,3.5,req/s") {
		t.Fatalf("missing row: %s", out)
	}
}
