package bench

import (
	"strings"
	"testing"
)

func svgRows() []Row {
	return []Row{
		{Figure: "figZ", Series: "EA", XLabel: "clients", X: 100, Value: 1000, Unit: "req/s"},
		{Figure: "figZ", Series: "EA", XLabel: "clients", X: 200, Value: 1800, Unit: "req/s"},
		{Figure: "figZ", Series: "JBD2", XLabel: "clients", X: 100, Value: 600, Unit: "req/s"},
		{Figure: "figZ", Series: "JBD2", XLabel: "clients", X: 200, Value: 650, Unit: "req/s"},
		{Figure: "other", Series: "X", XLabel: "n", X: 1, Value: 2, Unit: "s"},
	}
}

func TestRenderSVG(t *testing.T) {
	var sb strings.Builder
	if err := RenderSVG(&sb, "figZ", svgRows(), PlotOptions{Title: "Scalability"}); err != nil {
		t.Fatalf("RenderSVG: %v", err)
	}
	out := sb.String()
	for _, want := range []string{
		"<svg", "</svg>", "Scalability", "EA", "JBD2", "clients", "req/s", "<path", "<circle",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	// Rows of the other figure must not leak in.
	if strings.Contains(out, ">X<") {
		t.Error("foreign series leaked into the chart")
	}
}

func TestRenderSVGLog(t *testing.T) {
	var sb strings.Builder
	if err := RenderSVG(&sb, "figZ", svgRows(), PlotOptions{LogY: true}); err != nil {
		t.Fatalf("log RenderSVG: %v", err)
	}
	if !strings.Contains(sb.String(), "<path") {
		t.Fatal("log chart has no series path")
	}
}

func TestRenderSVGUnknownFigure(t *testing.T) {
	var sb strings.Builder
	if err := RenderSVG(&sb, "missing", svgRows(), PlotOptions{}); err == nil {
		t.Fatal("unknown figure rendered")
	}
}

func TestRenderSVGSinglePoint(t *testing.T) {
	rows := []Row{{Figure: "one", Series: "S", XLabel: "n", X: 5, Value: 7, Unit: "s"}}
	var sb strings.Builder
	if err := RenderSVG(&sb, "one", rows, PlotOptions{}); err != nil {
		t.Fatalf("single-point chart: %v", err)
	}
}

func TestFigures(t *testing.T) {
	figs := Figures(svgRows())
	if len(figs) != 2 || figs[0] != "figZ" || figs[1] != "other" {
		t.Fatalf("Figures = %v", figs)
	}
}

func TestCSVRoundTripThroughParse(t *testing.T) {
	rows := svgRows()
	var sb strings.Builder
	if err := WriteCSV(&sb, rows); err != nil {
		t.Fatal(err)
	}
	got, err := ParseCSV(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("ParseCSV: %v", err)
	}
	if len(got) != len(rows) {
		t.Fatalf("rows = %d, want %d", len(got), len(rows))
	}
	for i := range rows {
		if got[i] != rows[i] {
			t.Fatalf("row %d = %+v, want %+v", i, got[i], rows[i])
		}
	}
}

func TestParseCSVErrors(t *testing.T) {
	if _, err := ParseCSV(strings.NewReader("a,b,c\n")); err == nil {
		t.Fatal("short line accepted")
	}
	if _, err := ParseCSV(strings.NewReader("f,s,l,notanumber,2,u\n")); err == nil {
		t.Fatal("bad x accepted")
	}
}

func TestFormatTick(t *testing.T) {
	cases := map[float64]string{
		2_500_000: "2.5M",
		25_000:    "25k",
		2_500:     "2.5k",
		250:       "250",
		2.5:       "2.50",
		0.001:     "0.001",
		0:         "0",
	}
	for in, want := range cases {
		if got := formatTick(in); got != want {
			t.Errorf("formatTick(%v) = %q, want %q", in, got, want)
		}
	}
}
