package bench

import (
	"testing"

	"github.com/eactors/eactors-go/internal/core"
	"github.com/eactors/eactors-go/internal/sgx"
)

// buildProfilePair builds a one-channel deployment with cost accounting
// switched on or off, returning the two endpoints. The runtime's
// workers never run; the benchmark drives the endpoints directly, the
// way the core channel and trace benchmarks do.
func buildProfilePair(b *testing.B, profiled, encrypted bool, sampleEvery int) (src, dst *core.Endpoint) {
	b.Helper()
	cfg := core.Config{
		Profile:            profiled,
		ProfileSampleEvery: sampleEvery,
		Workers:            []core.WorkerSpec{{}},
		PoolNodes:          512,
		NodePayload:        256,
		Actors: []core.Spec{
			{Name: "a", Worker: 0, Body: func(*core.Self) {}},
			{Name: "b", Worker: 0, Body: func(*core.Self) {}},
		},
		Channels: []core.ChannelSpec{{Name: "link", A: "a", B: "b", Capacity: 256}},
	}
	if encrypted {
		cfg.Enclaves = []core.EnclaveSpec{{Name: "ea"}, {Name: "eb"}}
		cfg.Actors[0].Enclave = "ea"
		cfg.Actors[1].Enclave = "eb"
	}
	rt, err := core.NewRuntime(sgx.NewPlatform(sgx.WithCostModel(sgx.ZeroCostModel())), cfg)
	if err != nil {
		b.Fatalf("NewRuntime: %v", err)
	}
	b.Cleanup(rt.Stop)
	if src, err = rt.EndpointForTest("a", "link"); err != nil {
		b.Fatal(err)
	}
	if dst, err = rt.EndpointForTest("b", "link"); err != nil {
		b.Fatal(err)
	}
	return src, dst
}

func benchProfileSendRecv(b *testing.B, profiled, encrypted bool, sampleEvery int) {
	src, dst := buildProfilePair(b, profiled, encrypted, sampleEvery)
	payload := make([]byte, 64)
	buf := make([]byte, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := src.Send(payload); err != nil {
			b.Fatal(err)
		}
		if _, ok, err := dst.Recv(buf); !ok || err != nil {
			b.Fatalf("Recv: ok=%v err=%v", ok, err)
		}
	}
}

func benchProfileBatch(b *testing.B, profiled bool, sampleEvery int) {
	const batch = 64
	src, dst := buildProfilePair(b, profiled, false, sampleEvery)
	payload := make([]byte, 64)
	payloads := make([][]byte, batch)
	for i := range payloads {
		payloads[i] = payload
	}
	bufs, lens := core.BatchBufs(batch, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += batch {
		sent, err := src.SendBatch(payloads)
		if err != nil || sent != batch {
			b.Fatalf("SendBatch = %d, %v", sent, err)
		}
		got, err := dst.RecvBatch(bufs, lens)
		if err != nil || got != batch {
			b.Fatalf("RecvBatch = %d, %v", got, err)
		}
	}
}

// BenchmarkProfileOff is the compiled-in-but-disabled cost of the cost
// accounting layer on the channel hot path (acceptance budget ≤2% vs
// the unprofiled baseline: one nil check per path).
func BenchmarkProfileOff(b *testing.B) {
	b.Run("single", func(b *testing.B) { benchProfileSendRecv(b, false, false, 0) })
	b.Run("single-enc", func(b *testing.B) { benchProfileSendRecv(b, false, true, 0) })
	b.Run("batch64", func(b *testing.B) { benchProfileBatch(b, false, 0) })
}

// BenchmarkProfileSampled is the armed cost at the default 1-in-16
// seal/open clock decimation: counters are unconditional atomics on the
// owner's cache-padded cell; only the decimated ops pay clock reads.
func BenchmarkProfileSampled(b *testing.B) {
	b.Run("single", func(b *testing.B) { benchProfileSendRecv(b, true, false, 0) })
	b.Run("single-enc", func(b *testing.B) { benchProfileSendRecv(b, true, true, 0) })
	b.Run("batch64", func(b *testing.B) { benchProfileBatch(b, true, 0) })
}

// BenchmarkProfileFull clocks every seal/open (ProfileSampleEvery=1) —
// the exact-timing configuration the EXPERIMENTS.md overhead table
// reports; not CI-gated, since it is a diagnostic mode.
func BenchmarkProfileFull(b *testing.B) {
	b.Run("single", func(b *testing.B) { benchProfileSendRecv(b, true, false, 1) })
	b.Run("single-enc", func(b *testing.B) { benchProfileSendRecv(b, true, true, 1) })
	b.Run("batch64", func(b *testing.B) { benchProfileBatch(b, true, 1) })
}
