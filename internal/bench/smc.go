package bench

import (
	"fmt"
	"time"

	"github.com/eactors/eactors-go/internal/sgx"
	"github.com/eactors/eactors-go/internal/smc"
)

// SMCConfig parameterises the secure-sum reproduction (Figures 12 and
// 13): EC/k is the SGX-SDK deployment with k parties, EA/k the EActors
// deployment. The paper measures 10,000 invocations per point; Rounds
// scales that.
type SMCConfig struct {
	// Figure is "fig12" (plain) or "fig13" (dynamic secrets).
	Figure  string
	Dynamic bool
	// ShortDims / LongDims are the (a)/(b) sweeps at PartiesAB parties;
	// PartySweep is the (c) sweep at PartyDims dimensions.
	ShortDims  []int
	LongDims   []int
	PartiesAB  []int
	PartySweep []int
	PartyDims  []int
	Rounds     int
	Costs      *sgx.CostModel
}

// DefaultSMC returns the paper-scale sweep for the given case.
func DefaultSMC(dynamic bool) SMCConfig {
	figure := "fig12"
	if dynamic {
		figure = "fig13"
	}
	return SMCConfig{
		Figure:     figure,
		Dynamic:    dynamic,
		ShortDims:  []int{1, 20, 40, 60, 80, 100},
		LongDims:   []int{1000, 2000, 4000, 6000, 8000, 10000},
		PartiesAB:  []int{3, 8},
		PartySweep: []int{3, 4, 5, 6, 7, 8},
		PartyDims:  []int{1, 1000, 2000},
		Rounds:     10_000,
		Costs:      sgx.DefaultCostModel(),
	}
}

// FigSMC runs the whole sweep for one case. Three series are emitted
// per deployment pair: EC/k (SDK wall-clock), EA/k (EActors wall-clock
// on this host) and EA/k* (EActors pipeline model — the throughput of
// the ring with one core per party, composed from the measured stage
// times; on a single-core CI host the wall-clock EA numbers cannot show
// the pipelining the paper's 8-thread machine provides, the model rows
// restore exactly that effect and nothing else).
func FigSMC(cfg SMCConfig) ([]Row, error) {
	var rows []Row
	add := func(sub, series string, xLabel string, x float64, thr float64) {
		rows = append(rows, Row{
			Figure: cfg.Figure + sub, Series: series,
			XLabel: xLabel, X: x, Value: thr, Unit: "req/s",
		})
	}

	// (a) short and (b) long vectors at the two extreme party counts.
	for _, sweep := range []struct {
		sub  string
		dims []int
	}{{"a", cfg.ShortDims}, {"b", cfg.LongDims}} {
		for _, parties := range cfg.PartiesAB {
			for _, dim := range sweep.dims {
				p, err := smcPoint(cfg, parties, dim)
				if err != nil {
					return nil, err
				}
				add(sweep.sub, fmt.Sprintf("EC/%d", parties), "dim", float64(dim), p.ec)
				add(sweep.sub, fmt.Sprintf("EA/%d", parties), "dim", float64(dim), p.ea)
				add(sweep.sub, fmt.Sprintf("EA/%d*", parties), "dim", float64(dim), p.eaModel)
			}
		}
	}

	// (c) party sweep at fixed dimensions.
	for _, dim := range cfg.PartyDims {
		for _, parties := range cfg.PartySweep {
			p, err := smcPoint(cfg, parties, dim)
			if err != nil {
				return nil, err
			}
			add("c", fmt.Sprintf("EC-%d", dim), "parties", float64(parties), p.ec)
			add("c", fmt.Sprintf("EA-%d", dim), "parties", float64(parties), p.ea)
			add("c", fmt.Sprintf("EA-%d*", dim), "parties", float64(parties), p.eaModel)
		}
	}
	return rows, nil
}

// smcMeasurement is one (parties, dim) point.
type smcMeasurement struct {
	ec      float64 // SDK deployment, wall clock
	ea      float64 // EActors deployment, wall clock on this host
	eaModel float64 // EActors pipeline model (one core per party)
}

// smcPoint measures one (parties, dim) point for both deployments,
// returning requests/second.
func smcPoint(cfg SMCConfig, parties, dim int) (out smcMeasurement, err error) {
	opts := smc.Options{
		Parties:  parties,
		Dim:      dim,
		Dynamic:  cfg.Dynamic,
		Platform: sgx.NewPlatform(sgx.WithCostModel(cfg.Costs)),
	}

	// SDK deployment: time Rounds closed-loop invocations.
	sdk, err := smc.NewSDK(opts)
	if err != nil {
		return out, err
	}
	start := time.Now()
	for r := 0; r < cfg.Rounds; r++ {
		if _, err := sdk.Round(); err != nil {
			sdk.Close()
			return out, err
		}
	}
	out.ec = float64(cfg.Rounds) / time.Since(start).Seconds()
	if bottleneck := sdk.PipelinedRoundTime(); bottleneck > 0 {
		out.eaModel = 1 / bottleneck.Seconds()
	}
	sdk.Close()

	// EActors deployment: fresh platform, run the same round count.
	opts.Platform = sgx.NewPlatform(sgx.WithCostModel(cfg.Costs))
	ea, err := smc.StartEA(opts)
	if err != nil {
		return out, err
	}
	// Let the pipeline warm up before timing.
	ea.WaitRounds(uint64(min(cfg.Rounds/10+1, 100)))
	base := ea.Rounds()
	start = time.Now()
	ea.WaitRounds(base + uint64(cfg.Rounds))
	out.ea = float64(cfg.Rounds) / time.Since(start).Seconds()
	ea.Stop()
	return out, nil
}
