package bench

import (
	"fmt"
	"sync/atomic"
	"time"

	"github.com/eactors/eactors-go/internal/core"
	"github.com/eactors/eactors-go/internal/sgx"
)

// Fig11Config parameterises the inter-enclave ping-pong comparison
// (Figure 11): Native (SGX SDK OCall/ECall message passing), EA
// (EActors plaintext mboxes) and EA-ENC (encrypted channel), across
// message sizes. The paper runs 1,000,000 ping-pong pairs per point.
type Fig11Config struct {
	Pairs int
	Sizes []int
	Costs *sgx.CostModel
}

// DefaultFig11 returns the paper-scale configuration.
func DefaultFig11() Fig11Config {
	return Fig11Config{
		Pairs: 1_000_000,
		Sizes: []int{16, 1 << 10, 8 << 10, 32 << 10, 64 << 10, 128 << 10, 256 << 10, 512 << 10},
		Costs: sgx.DefaultCostModel(),
	}
}

// Fig11PingPong measures all three variants, emitting execution-time
// rows (fig11a) and data-throughput rows (fig11b).
func Fig11PingPong(cfg Fig11Config) ([]Row, error) {
	var rows []Row
	for _, size := range cfg.Sizes {
		native, err := PingPongNative(cfg.Pairs, size, cfg.Costs)
		if err != nil {
			return nil, err
		}
		ea, err := PingPongEA(cfg.Pairs, size, cfg.Costs, false)
		if err != nil {
			return nil, err
		}
		eaEnc, err := PingPongEA(cfg.Pairs, size, cfg.Costs, true)
		if err != nil {
			return nil, err
		}
		for _, v := range []struct {
			series string
			d      time.Duration
		}{{"Native", native}, {"EA", ea}, {"EA-ENC", eaEnc}} {
			rows = append(rows,
				Row{Figure: "fig11a", Series: v.series, XLabel: "bytes", X: float64(size),
					Value: v.d.Seconds(), Unit: "s"},
				Row{Figure: "fig11b", Series: v.series, XLabel: "bytes", X: float64(size),
					Value: throughputMiB(cfg.Pairs, size, v.d), Unit: "MiB/s"},
			)
		}
	}
	return rows, nil
}

// throughputMiB is the moved payload volume (two messages per pair)
// over the run time.
func throughputMiB(pairs, size int, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	bytes := float64(pairs) * 2 * float64(size)
	return bytes / (1 << 20) / d.Seconds()
}

// PingPongNative is the SGX-SDK-style baseline (Figure 10a): PING and
// PONG live in different enclaves; every message leaves PING's enclave
// through an OCall (marshalled into an untrusted mbuf) and enters
// PONG's enclave through an ECall (marshalled again), and the reply
// pays the same on the way back.
func PingPongNative(pairs, size int, costs *sgx.CostModel) (time.Duration, error) {
	platform := sgx.NewPlatform(sgx.WithCostModel(costs))
	ping, err := platform.CreateEnclave("native-ping", 64*1024)
	if err != nil {
		return 0, err
	}
	defer platform.DestroyEnclave(ping)
	pong, err := platform.CreateEnclave("native-pong", 64*1024)
	if err != nil {
		return 0, err
	}
	defer platform.DestroyEnclave(pong)

	msg := make([]byte, size)
	reply := make([]byte, size)
	fill := randomPayload(size)
	ctx := sgx.NewContext(platform)

	start := time.Now()
	for i := 0; i < pairs; i++ {
		if err := ctx.Enter(ping); err != nil {
			return 0, err
		}
		copy(msg, fill) // PING fills the payload inside its enclave
		// OCall: the message is marshalled out of PING's enclave...
		err := ctx.OCall(msg, reply, func() {
			// ...and an ECall marshals it into PONG's enclave, whose
			// reply is marshalled back out.
			_ = ctx.ECall(pong, msg, reply, func() {
				copy(reply, msg) // PONG builds the reply
			})
		})
		if err != nil {
			return 0, err
		}
		ctx.Exit()
	}
	return time.Since(start), nil
}

// PingPongEA runs the EActors variant: two eactors in two enclaves,
// each on its own worker, exchanging messages over one channel —
// plaintext mboxes for EA, transparent encryption for EA-ENC.
func PingPongEA(pairs, size int, costs *sgx.CostModel, encrypted bool) (time.Duration, error) {
	platform := sgx.NewPlatform(sgx.WithCostModel(costs))
	fill := randomPayload(size)

	var done atomic.Bool
	var elapsed time.Duration
	start := time.Now()

	type pingState struct {
		sent  int
		recvd int
		buf   []byte
	}
	pingSt := &pingState{buf: make([]byte, size)}
	pongBuf := make([]byte, size)

	cfg := core.Config{
		Enclaves:    []core.EnclaveSpec{{Name: "ping"}, {Name: "pong"}},
		Workers:     []core.WorkerSpec{{}, {}},
		PoolNodes:   16,
		NodePayload: size + 64,
		Telemetry:   Telemetry,
		Switchless:  core.SwitchlessConfig{Enabled: Switchless && encrypted},
		Channels: []core.ChannelSpec{{
			Name: "pp", A: "ping", B: "pong", Plaintext: !encrypted, Capacity: 4,
		}},
		Actors: []core.Spec{
			{
				Name: "ping", Enclave: "ping", Worker: 0, State: pingSt,
				Body: func(self *core.Self) {
					st := self.State.(*pingState)
					ch := self.MustChannel("pp")
					if st.sent == st.recvd && st.sent < pairs {
						copy(st.buf, fill) // fill the payload (paper: pseudo-random data)
						if ch.Send(st.buf) == nil {
							st.sent++
							self.Progress()
						}
						return
					}
					n, ok, err := ch.Recv(st.buf)
					if err != nil || !ok || n != size {
						return
					}
					st.recvd++
					self.Progress()
					if st.recvd >= pairs && !done.Swap(true) {
						elapsed = time.Since(start)
						self.StopRuntime()
					}
				},
			},
			{
				Name: "pong", Enclave: "pong", Worker: 1,
				Body: func(self *core.Self) {
					ch := self.MustChannel("pp")
					n, ok, err := ch.Recv(pongBuf)
					if err != nil || !ok {
						return
					}
					_ = ch.Send(pongBuf[:n]) //sendcheck:ok
					self.Progress()
				},
			},
		},
	}
	rt, err := core.NewRuntime(platform, cfg)
	if err != nil {
		return 0, err
	}
	start = time.Now()
	if err := rt.Start(); err != nil {
		rt.Stop()
		return 0, err
	}
	waitDone := make(chan struct{})
	go func() {
		rt.Wait()
		close(waitDone)
	}()
	select {
	case <-waitDone:
	case <-time.After(30 * time.Minute):
		rt.Stop()
		return 0, fmt.Errorf("bench: fig11 EA run (size %d) timed out", size)
	}
	rt.Stop()
	return elapsed, nil
}

// PingPongEABatched is PingPongEA over the channel batch fast path:
// PING sends bursts of batch messages with one SendBatch (one pool
// trip, one mbox CAS, one doorbell) and both sides drain with the
// budgeted RecvBatch. pairs still counts individual messages, so the
// result compares directly with PingPongEA.
func PingPongEABatched(pairs, size, batch int, costs *sgx.CostModel, encrypted bool) (time.Duration, error) {
	platform := sgx.NewPlatform(sgx.WithCostModel(costs))
	fill := randomPayload(size)
	if batch < 1 {
		batch = 1
	}
	capacity := 4
	for capacity < batch {
		capacity *= 2
	}

	var done atomic.Bool
	var elapsed time.Duration
	var start time.Time

	burst := make([][]byte, batch)
	for i := range burst {
		burst[i] = fill
	}

	type pingState struct {
		sent, recvd, inflight int
		bufs                  [][]byte
		lens                  []int
	}
	pingSt := &pingState{}
	pingSt.bufs, pingSt.lens = core.BatchBufs(batch, size)

	type pongState struct {
		bufs    [][]byte
		lens    []int
		echo    [][]byte
		pending [][]byte
	}
	pongSt := &pongState{echo: make([][]byte, 0, batch)}
	pongSt.bufs, pongSt.lens = core.BatchBufs(batch, size)

	cfg := core.Config{
		Enclaves:    []core.EnclaveSpec{{Name: "ping"}, {Name: "pong"}},
		Workers:     []core.WorkerSpec{{}, {}},
		PoolNodes:   2*capacity + 8,
		NodePayload: size + 64,
		Telemetry:   Telemetry,
		Switchless:  core.SwitchlessConfig{Enabled: Switchless && encrypted},
		Channels: []core.ChannelSpec{{
			Name: "pp", A: "ping", B: "pong", Plaintext: !encrypted, Capacity: capacity,
		}},
		Actors: []core.Spec{
			{
				Name: "ping", Enclave: "ping", Worker: 0, State: pingSt,
				Body: func(self *core.Self) {
					st := self.State.(*pingState)
					ch := self.MustChannel("pp")
					if st.inflight == 0 && st.sent < pairs {
						want := batch
						if rem := pairs - st.sent; rem < want {
							want = rem
						}
						n, _ := ch.SendBatch(burst[:want]) //sendcheck:ok
						if n > 0 {
							st.sent += n
							st.inflight += n
							self.Progress()
						}
						return
					}
					n, err := self.RecvBatch(ch, st.bufs, st.lens)
					if err != nil {
						return
					}
					st.inflight -= n
					st.recvd += n
					if st.recvd >= pairs && !done.Swap(true) {
						elapsed = time.Since(start)
						self.StopRuntime()
					}
				},
			},
			{
				Name: "pong", Enclave: "pong", Worker: 1, State: pongSt,
				Body: func(self *core.Self) {
					st := self.State.(*pongState)
					ch := self.MustChannel("pp")
					// Echo frames a previously full channel left behind.
					if len(st.pending) > 0 {
						n, _ := ch.SendBatch(st.pending) //sendcheck:ok
						if n == 0 {
							return
						}
						self.Progress()
						st.pending = st.pending[n:]
						if len(st.pending) > 0 {
							return
						}
						st.pending = nil
					}
					n, err := self.RecvBatch(ch, st.bufs, st.lens)
					if err != nil || n == 0 {
						return
					}
					st.echo = st.echo[:0]
					for i := 0; i < n; i++ {
						st.echo = append(st.echo, st.bufs[i][:st.lens[i]])
					}
					sent, _ := ch.SendBatch(st.echo) //sendcheck:ok
					// st.bufs is reused next invocation; spilled echoes
					// get copies (backpressure path only).
					for _, f := range st.echo[sent:] {
						st.pending = append(st.pending, append([]byte(nil), f...))
					}
				},
			},
		},
	}
	rt, err := core.NewRuntime(platform, cfg)
	if err != nil {
		return 0, err
	}
	start = time.Now()
	if err := rt.Start(); err != nil {
		rt.Stop()
		return 0, err
	}
	waitDone := make(chan struct{})
	go func() {
		rt.Wait()
		close(waitDone)
	}()
	select {
	case <-waitDone:
	case <-time.After(30 * time.Minute):
		rt.Stop()
		return 0, fmt.Errorf("bench: fig11 EA-BATCH run (size %d) timed out", size)
	}
	rt.Stop()
	return elapsed, nil
}

// randomPayload builds a deterministic pseudo-random buffer.
func randomPayload(size int) []byte {
	buf := make([]byte, size)
	x := uint32(0x9E3779B9)
	for i := range buf {
		x = x*1664525 + 1013904223
		buf[i] = byte(x >> 24)
	}
	return buf
}
