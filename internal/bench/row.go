// Package bench is the reproduction harness for the paper's evaluation:
// one generator per figure (Figures 1 and 11-17), each returning the
// same series the paper plots. The CLI (cmd/eactors-bench) runs
// paper-scale sweeps; bench_test.go runs reduced ones. DESIGN.md maps
// figures to generators, EXPERIMENTS.md records paper-vs-measured.
package bench

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
	"text/tabwriter"
)

// Row is one measured point of one figure's series.
type Row struct {
	// Figure identifies the experiment ("fig1", "fig11a", ...).
	Figure string
	// Series is the plotted line ("EA/3", "Native", "pthread_mutex").
	Series string
	// XLabel and X are the x-axis name and value.
	XLabel string
	X      float64
	// Value and Unit are the measurement.
	Value float64
	Unit  string
}

// String renders a row for logs.
func (r Row) String() string {
	return fmt.Sprintf("%-8s %-14s %s=%-10g %12.2f %s",
		r.Figure, r.Series, r.XLabel, r.X, r.Value, r.Unit)
}

// PrintTable renders rows grouped by figure and series, one x per line,
// in the shape of the paper's plots.
func PrintTable(w io.Writer, rows []Row) {
	sorted := append([]Row(nil), rows...)
	sort.SliceStable(sorted, func(i, j int) bool {
		a, b := sorted[i], sorted[j]
		if a.Figure != b.Figure {
			return a.Figure < b.Figure
		}
		if a.X != b.X {
			return a.X < b.X
		}
		return a.Series < b.Series
	})
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	lastFig := ""
	for _, r := range sorted {
		if r.Figure != lastFig {
			fmt.Fprintf(tw, "\n== %s ==\n", r.Figure)
			lastFig = r.Figure
		}
		fmt.Fprintf(tw, "%s\t%s=%g\t%.3f\t%s\n", r.Series, r.XLabel, r.X, r.Value, r.Unit)
	}
	tw.Flush()
}

// WriteCSV renders rows as CSV (figure,series,x_label,x,value,unit) for
// plotting tools.
func WriteCSV(w io.Writer, rows []Row) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"figure", "series", "x_label", "x", "value", "unit"}); err != nil {
		return err
	}
	for _, r := range rows {
		record := []string{
			r.Figure, r.Series, r.XLabel,
			strconv.FormatFloat(r.X, 'g', -1, 64),
			strconv.FormatFloat(r.Value, 'g', -1, 64),
			r.Unit,
		}
		if err := cw.Write(record); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// SeriesValue finds the value of a (figure, series, x) point; ok is
// false when absent. Tests use it to check shape properties.
func SeriesValue(rows []Row, figure, series string, x float64) (float64, bool) {
	for _, r := range rows {
		if r.Figure == figure && r.Series == series && r.X == x {
			return r.Value, true
		}
	}
	return 0, false
}
