package bench

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// This file renders recorded rows as SVG line charts — one chart per
// figure, one polyline per series — so the harness can regenerate the
// paper's figures as images, not just tables
// (cmd/eactors-plot consumes the CSV that cmd/eactors-bench -format csv
// emits).

// svgPalette holds the series colours (colour-blind-safe defaults).
var svgPalette = []string{
	"#4477AA", "#EE6677", "#228833", "#CCBB44", "#66CCEE", "#AA3377", "#BBBBBB",
}

const (
	svgW       = 640
	svgH       = 420
	svgMarginL = 70
	svgMarginR = 160
	svgMarginT = 40
	svgMarginB = 56
)

// PlotOptions configures RenderSVG.
type PlotOptions struct {
	// Title overrides the default (the figure name).
	Title string
	// LogY plots the y axis in log10 (the paper's Figures 1 and 14).
	LogY bool
}

// RenderSVG renders all rows belonging to one figure as an SVG chart.
func RenderSVG(w io.Writer, figure string, rows []Row, opts PlotOptions) error {
	type point struct{ x, y float64 }
	series := map[string][]point{}
	var names []string
	unit, xLabel := "", ""
	for _, r := range rows {
		if r.Figure != figure {
			continue
		}
		if _, ok := series[r.Series]; !ok {
			names = append(names, r.Series)
		}
		series[r.Series] = append(series[r.Series], point{r.X, r.Value})
		unit, xLabel = r.Unit, r.XLabel
	}
	if len(series) == 0 {
		return fmt.Errorf("bench: no rows for figure %q", figure)
	}
	sort.Strings(names)

	// Bounds.
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, pts := range series {
		for _, p := range pts {
			minX, maxX = math.Min(minX, p.x), math.Max(maxX, p.x)
			y := p.y
			if opts.LogY {
				if y <= 0 {
					continue
				}
				y = math.Log10(y)
			}
			minY, maxY = math.Min(minY, y), math.Max(maxY, y)
		}
	}
	if minX == maxX {
		minX, maxX = minX-1, maxX+1
	}
	if minY == maxY {
		minY, maxY = minY-1, maxY+1
	}
	// Pad the y range slightly.
	pad := (maxY - minY) * 0.05
	minY, maxY = minY-pad, maxY+pad

	plotW := float64(svgW - svgMarginL - svgMarginR)
	plotH := float64(svgH - svgMarginT - svgMarginB)
	tx := func(x float64) float64 {
		return svgMarginL + (x-minX)/(maxX-minX)*plotW
	}
	ty := func(y float64) float64 {
		if opts.LogY {
			y = math.Log10(math.Max(y, 1e-12))
		}
		return svgMarginT + plotH - (y-minY)/(maxY-minY)*plotH
	}

	title := opts.Title
	if title == "" {
		title = figure
	}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif">`, svgW, svgH)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`, svgW, svgH)
	fmt.Fprintf(&b, `<text x="%d" y="24" font-size="16" font-weight="bold">%s</text>`, svgMarginL, escapeXML(title))

	// Axes.
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`,
		svgMarginL, svgMarginT, svgMarginL, svgH-svgMarginB)
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`,
		svgMarginL, svgH-svgMarginB, svgW-svgMarginR, svgH-svgMarginB)

	// Ticks: 5 per axis.
	for i := 0; i <= 4; i++ {
		frac := float64(i) / 4
		x := minX + frac*(maxX-minX)
		px := tx(x)
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="black"/>`,
			px, svgH-svgMarginB, px, svgH-svgMarginB+5)
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-size="11" text-anchor="middle">%s</text>`,
			px, svgH-svgMarginB+20, formatTick(x))

		yv := minY + frac*(maxY-minY)
		py := svgMarginT + plotH - frac*plotH
		label := yv
		if opts.LogY {
			label = math.Pow(10, yv)
		}
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="black"/>`,
			svgMarginL-5, py, svgMarginL, py)
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" font-size="11" text-anchor="end">%s</text>`,
			svgMarginL-8, py+4, formatTick(label))
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#dddddd"/>`,
			svgMarginL, py, svgW-svgMarginR, py)
	}

	// Axis labels.
	fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-size="12" text-anchor="middle">%s</text>`,
		float64(svgMarginL)+plotW/2, svgH-12, escapeXML(xLabel))
	fmt.Fprintf(&b, `<text x="16" y="%.1f" font-size="12" text-anchor="middle" transform="rotate(-90 16 %.1f)">%s</text>`,
		float64(svgMarginT)+plotH/2, float64(svgMarginT)+plotH/2, escapeXML(unit))

	// Series.
	for i, name := range names {
		colour := svgPalette[i%len(svgPalette)]
		pts := append([]point(nil), series[name]...)
		sort.Slice(pts, func(a, b int) bool { return pts[a].x < pts[b].x })
		var path strings.Builder
		for j, p := range pts {
			if j == 0 {
				fmt.Fprintf(&path, "M%.1f,%.1f", tx(p.x), ty(p.y))
			} else {
				fmt.Fprintf(&path, " L%.1f,%.1f", tx(p.x), ty(p.y))
			}
		}
		fmt.Fprintf(&b, `<path d="%s" fill="none" stroke="%s" stroke-width="2"/>`, path.String(), colour)
		for _, p := range pts {
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="3" fill="%s"/>`, tx(p.x), ty(p.y), colour)
		}
		// Legend entry.
		ly := svgMarginT + 8 + i*18
		fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="2"/>`,
			svgW-svgMarginR+10, ly, svgW-svgMarginR+30, ly, colour)
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="12">%s</text>`,
			svgW-svgMarginR+36, ly+4, escapeXML(name))
	}
	b.WriteString(`</svg>`)
	_, err := io.WriteString(w, b.String())
	return err
}

// Figures lists the distinct figure names present in rows, sorted.
func Figures(rows []Row) []string {
	seen := map[string]bool{}
	var out []string
	for _, r := range rows {
		if !seen[r.Figure] {
			seen[r.Figure] = true
			out = append(out, r.Figure)
		}
	}
	sort.Strings(out)
	return out
}

func formatTick(v float64) string {
	av := math.Abs(v)
	switch {
	case av >= 1_000_000:
		return fmt.Sprintf("%.1fM", v/1_000_000)
	case av >= 10_000:
		return fmt.Sprintf("%.0fk", v/1000)
	case av >= 1000:
		return fmt.Sprintf("%.1fk", v/1000)
	case av >= 10 || av == 0:
		return fmt.Sprintf("%.0f", v)
	case av >= 0.01:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.2g", v)
	}
}

func escapeXML(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

// ParseCSV reads rows previously written by WriteCSV.
func ParseCSV(r io.Reader) ([]Row, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) < 1 {
		return nil, fmt.Errorf("bench: empty CSV")
	}
	var rows []Row
	for i, line := range lines {
		if i == 0 && strings.HasPrefix(line, "figure,") {
			continue
		}
		fields := strings.Split(strings.TrimSpace(line), ",")
		if len(fields) != 6 {
			return nil, fmt.Errorf("bench: CSV line %d has %d fields", i+1, len(fields))
		}
		var x, v float64
		if _, err := fmt.Sscanf(fields[3], "%g", &x); err != nil {
			return nil, fmt.Errorf("bench: CSV line %d x: %w", i+1, err)
		}
		if _, err := fmt.Sscanf(fields[4], "%g", &v); err != nil {
			return nil, fmt.Errorf("bench: CSV line %d value: %w", i+1, err)
		}
		rows = append(rows, Row{
			Figure: fields[0], Series: fields[1], XLabel: fields[2],
			X: x, Value: v, Unit: fields[5],
		})
	}
	return rows, nil
}
