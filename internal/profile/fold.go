package profile

import "github.com/eactors/eactors-go/internal/trace"

// FoldSpans folds sampled trace spans into cost cells: today that means
// mailbox-dwell spans (KindDwell), which only the tracer can see —
// dwell is the gap between enqueue and dequeue, and neither endpoint
// operation alone spans it. A dwell span is recorded by the receiving
// endpoint's owner worker with Ref = channel tag, so the dwell
// registration map resolves it to the receiving actor.
//
// Folding is idempotent across overlapping snapshots: span IDs are
// globally monotonic (trace.Tracer.NextSpan, never zero), so a
// high-water mark skips spans already folded by a previous call. The
// comparison is wrap-safe. Spans torn by a concurrent ring writer show
// as negative durations and are dropped. A span that lands in the ring
// after the snapshot that should have carried it but before the
// high-water mark advances past it is folded by a later call — the
// mark only advances over spans actually seen — so the folder
// undercounts transiently, never double-counts.
func (c *Collector) FoldSpans(spans []trace.Span) {
	if c == nil || len(spans) == 0 {
		return
	}
	c.foldMu.Lock()
	defer c.foldMu.Unlock()
	hw := c.foldHW
	maxSeen := hw
	for _, s := range spans {
		if s.ID == 0 || int32(s.ID-hw) <= 0 {
			continue // already folded (or invalid slot)
		}
		if int32(s.ID-maxSeen) > 0 {
			maxSeen = s.ID
		}
		if s.Kind != trace.KindDwell || s.Dur < 0 {
			continue
		}
		c.mu.Lock()
		tag, ok := c.dwell[uint64(s.Ref)<<32|uint64(uint32(s.Worker))]
		var cell *ActorCell
		if ok {
			cell = c.actorCellLocked(tag)
		}
		c.mu.Unlock()
		if cell == nil {
			continue
		}
		cell.DwellNs.Add(uint64(s.Dur))
		cell.DwellSamples.Add(1)
	}
	c.foldHW = maxSeen
}
