// Package profile is the per-actor cost-accounting layer of the EActors
// runtime: it folds exact traffic counters and sampled clock reads into
// one CostProfile per actor — invoke CPU time, messages and bytes sent
// and received per peer (the actor→actor communication matrix), enclave
// crossings charged to the initiating actor, seal/open time and volume,
// and mailbox dwell folded from sampled trace spans — plus per-enclave
// EPC residency/eviction attribution. The periodic snapshot (a
// versioned JSONL cost model, see snapshot.go) is the stable input
// contract for placement decisions: which enclave/worker should run
// each actor is answerable from observed cost, not static config.
//
// The design follows the telemetry package's two constraints:
//
//   - Disabled is (nearly) free. A nil *Collector is a valid no-op
//     receiver, and the runtime hot paths additionally gate on a single
//     `cell != nil` check, so deployments without Config.Profile pay
//     one predictable branch per site.
//
//   - The hot path never serialises. Cells are padded to a cache line
//     and written only by their owning worker thread (actors and
//     endpoints are single-owner, so "sharding" falls out of ownership);
//     every field is an independent atomic, which keeps the concurrent
//     readers — the snapshotter, Prometheus scrapes, the span folder —
//     race-clean without locks.
//
// Counters (messages, bytes, ops) are exact. Per-operation clock reads
// (seal/open ns) are decimated 1-in-SampleEvery and extrapolated by the
// period at write time, so totals are unbiased estimates; dwell comes
// from the tracer's 1-in-N span sampling and is therefore reported as a
// (sum, samples) pair — consumers use the mean, never the sum.
package profile

import (
	"sync"
	"sync/atomic"
)

// DefaultSampleEvery is the seal/open clock-read decimation: 1 in this
// many operations pays the two time.Now calls, and the measured duration
// is scaled by the period. Matches the telemetry layer's sampling budget.
const DefaultSampleEvery = 16

// ActorCell is one actor's cost accumulator. Fields are written with
// independent atomic adds by the actor's owning worker (and, for the
// dwell pair, by the span folder), and read by snapshots; the trailing
// pad keeps cells of different workers off each other's cache lines.
type ActorCell struct {
	// Invocations and InvokeNs count body runs and their CPU time.
	Invocations atomic.Uint64
	InvokeNs    atomic.Uint64

	// Traffic attributed to this actor's own sends/receives. Bytes are
	// plaintext payload bytes (pre-seal), so trusted and untrusted
	// placements of the same actor compare like for like.
	MsgsSent  atomic.Uint64
	BytesSent atomic.Uint64
	MsgsRecv  atomic.Uint64
	BytesRecv atomic.Uint64

	// Crossings counts enclave boundary transitions the owning worker
	// paid to run this actor's body (charged to the actor whose
	// placement caused them).
	Crossings atomic.Uint64

	// Channel seal/open work performed on this actor's thread for its
	// own messages. Ops and bytes are exact; ns is sampled-extrapolated.
	SealOps   atomic.Uint64
	SealNs    atomic.Uint64
	SealBytes atomic.Uint64
	OpenOps   atomic.Uint64
	OpenNs    atomic.Uint64
	OpenBytes atomic.Uint64

	// DwellNs/DwellSamples accumulate sampled mailbox-dwell spans folded
	// from the tracer (FoldSpans); the quotient is the mean dwell of a
	// sampled message, the sum alone means nothing.
	DwellNs      atomic.Uint64
	DwellSamples atomic.Uint64

	_ [8]byte // pad to 128 bytes
}

// EdgeCell accumulates one direction of one channel: messages and
// plaintext bytes from the sending actor to the receiving actor. Each
// cell has a single writer (the sending endpoint's owner thread).
type EdgeCell struct {
	Msgs  atomic.Uint64
	Bytes atomic.Uint64

	_ [48]byte // pad to 64 bytes
}

// ActorMeta is the registration identity of an actor cell.
type ActorMeta struct {
	Name    string
	Enclave string // "" when untrusted
	Worker  int
}

// EdgeMeta identifies one directed communication edge.
type EdgeMeta struct {
	Src, Dst uint32 // actor tags
	Channel  string
}

type actorEntry struct {
	meta ActorMeta
	cell *ActorCell
}

type edgeEntry struct {
	meta EdgeMeta
	cell *EdgeCell
}

type enclaveEntry struct {
	name    string
	pages   func() int64
	evicted func() uint64
}

// Collector owns a deployment's cost cells and their metadata. It is
// built once at runtime wiring time (registration is mutex-protected);
// afterwards the hot paths hold direct cell pointers and never touch
// the collector, and snapshot/fold readers take the mutex only to walk
// the immutable entry lists.
type Collector struct {
	mask uint32 // sampleEvery-1 (power of two)

	mu     sync.Mutex
	actors []actorEntry      // dense by actor tag
	edges  []edgeEntry       // registration order
	encl   []enclaveEntry    // registration order
	dwell  map[uint64]uint32 // chanTag<<32|worker → receiving actor tag

	foldMu sync.Mutex
	foldHW uint32 // highest folded span ID (dedup across folds)
}

// NewCollector builds a collector. sampleEvery is the seal/open
// clock-read decimation, rounded up to a power of two
// (DefaultSampleEvery when zero; 1 times every operation).
func NewCollector(sampleEvery int) *Collector {
	if sampleEvery <= 0 {
		sampleEvery = DefaultSampleEvery
	}
	mask := uint32(1)
	for int(mask) < sampleEvery {
		mask <<= 1
	}
	return &Collector{mask: mask - 1, dwell: make(map[uint64]uint32)}
}

// Mask returns the sampling mask hot paths combine with their local
// tick counter (period-1; zero means every operation is timed).
func (c *Collector) Mask() uint32 {
	if c == nil {
		return 0
	}
	return c.mask
}

// SampleEvery returns the effective clock-read sampling period (0 on a
// nil collector).
func (c *Collector) SampleEvery() int {
	if c == nil {
		return 0
	}
	return int(c.mask) + 1
}

// RegisterActor creates (or returns) the cost cell for the actor with
// the given dense tag. Nil-safe: a nil collector returns a nil cell,
// which the runtime's hot paths treat as "profiling off".
func (c *Collector) RegisterActor(tag uint32, name, enclave string, worker int) *ActorCell {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for int(tag) >= len(c.actors) {
		c.actors = append(c.actors, actorEntry{})
	}
	if c.actors[tag].cell == nil {
		c.actors[tag] = actorEntry{
			meta: ActorMeta{Name: name, Enclave: enclave, Worker: worker},
			cell: &ActorCell{},
		}
	}
	return c.actors[tag].cell
}

// RegisterEdge creates the cell for the directed edge src→dst over the
// named channel. Each endpoint direction registers its own edge, so a
// bidirectional channel contributes two.
func (c *Collector) RegisterEdge(src, dst uint32, channel string) *EdgeCell {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	cell := &EdgeCell{}
	c.edges = append(c.edges, edgeEntry{meta: EdgeMeta{Src: src, Dst: dst, Channel: channel}, cell: cell})
	return cell
}

// RegisterEnclave wires an enclave's EPC accounting into snapshots:
// pages reports currently resident pages, evicted the cumulative pages
// evicted under EPC pressure that were charged to the enclave.
func (c *Collector) RegisterEnclave(name string, pages func() int64, evicted func() uint64) {
	if c == nil || pages == nil || evicted == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.encl = append(c.encl, enclaveEntry{name: name, pages: pages, evicted: evicted})
}

// RegisterDwell maps (channel tag, recording worker) to the actor tag
// dwell spans of that channel should be attributed to. Dwell spans are
// recorded by the receiving endpoint's owner worker, so the pair
// identifies the receiver — except when both endpoints of a channel
// live on one worker, where the later registration wins (a documented
// approximation; such deployments pay no crossings anyway, so their
// dwell attribution matters little to placement).
func (c *Collector) RegisterDwell(channelTag uint32, worker int, actorTag uint32) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.dwell[uint64(channelTag)<<32|uint64(uint32(worker))] = actorTag
}

// actorCell returns the cell registered for a tag (nil when unknown).
// Callers hold c.mu.
func (c *Collector) actorCellLocked(tag uint32) *ActorCell {
	if int(tag) >= len(c.actors) {
		return nil
	}
	return c.actors[tag].cell
}
