package profile

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

// sampleModel builds a fully-populated model so round-trips exercise
// every field of the schema.
func sampleModel() Model {
	return Model{
		V:            SnapshotVersion,
		CapturedAtNs: 123456789,
		SampleEvery:  16,
		Actors: []ActorCost{
			{
				Name: "frontend", Worker: 0,
				Invocations: 10, InvokeNs: 1000,
				MsgsSent: 5, BytesSent: 640, MsgsRecv: 5, BytesRecv: 320,
			},
			{
				Name: "kvstore-0", Enclave: "kv-0", Worker: 2,
				Invocations: 7, InvokeNs: 2000, Crossings: 14,
				SealOps: 5, SealNs: 800, SealBytes: 320,
				OpenOps: 5, OpenNs: 700, OpenBytes: 640,
				DwellNs: 5000, DwellSamples: 2,
			},
		},
		Edges: []EdgeCost{
			{Src: "frontend", Dst: "kvstore-0", Channel: "req-0", Msgs: 5, Bytes: 640},
		},
		Enclaves: []EnclaveCost{
			{Name: "kv-0", PagesResident: 32, EvictedPages: 3, Crossings: 14},
		},
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	want := sampleModel()
	var buf bytes.Buffer
	if err := want.Encode(&buf); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if !bytes.HasSuffix(buf.Bytes(), []byte("\n")) {
		t.Fatalf("Encode must emit one newline-terminated JSONL record, got %q", buf.String())
	}
	got, err := Decode(bytes.TrimSpace(buf.Bytes()))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
}

func TestDecodeRejectsUnknownVersion(t *testing.T) {
	for _, v := range []int{0, SnapshotVersion + 1, 99} {
		line := fmt.Sprintf(`{"v":%d,"captured_at_ns":1}`, v)
		if _, err := Decode([]byte(line)); !errors.Is(err, ErrUnknownVersion) {
			t.Errorf("Decode(v=%d) error = %v, want ErrUnknownVersion", v, err)
		}
	}
}

func TestDecodeRejectsMalformed(t *testing.T) {
	if _, err := Decode([]byte("{not json")); err == nil || errors.Is(err, ErrUnknownVersion) {
		t.Fatalf("Decode(malformed) error = %v, want a parse error", err)
	}
}

func TestDecodeStream(t *testing.T) {
	m := sampleModel()
	var buf bytes.Buffer
	for i := 0; i < 3; i++ {
		m.CapturedAtNs = int64(i + 1)
		if err := m.Encode(&buf); err != nil {
			t.Fatal(err)
		}
		buf.WriteString("\n") // blank lines are skipped
	}
	models, err := DecodeStream(&buf)
	if err != nil {
		t.Fatalf("DecodeStream: %v", err)
	}
	if len(models) != 3 {
		t.Fatalf("DecodeStream returned %d models, want 3", len(models))
	}
	for i, got := range models {
		if got.CapturedAtNs != int64(i+1) {
			t.Errorf("model %d CapturedAtNs = %d, want %d", i, got.CapturedAtNs, i+1)
		}
	}

	// A stream poisoned mid-way keeps the good prefix and surfaces the error.
	var poisoned bytes.Buffer
	m.Encode(&poisoned)
	poisoned.WriteString(`{"v":99}` + "\n")
	m.Encode(&poisoned)
	models, err = DecodeStream(&poisoned)
	if !errors.Is(err, ErrUnknownVersion) {
		t.Fatalf("DecodeStream(poisoned) error = %v, want ErrUnknownVersion", err)
	}
	if len(models) != 1 {
		t.Fatalf("DecodeStream(poisoned) kept %d models, want the 1 good prefix", len(models))
	}
}

func TestSnapshotterWritesRecords(t *testing.T) {
	c := NewCollector(4)
	cell := c.RegisterActor(0, "a", "", 0)
	cell.Invocations.Add(3)

	var mu syncBuffer
	s := NewSnapshotter(func() Model { return c.Snapshot(time.Now().UnixNano()) }, &mu, 10*time.Millisecond)
	s.Start()
	time.Sleep(35 * time.Millisecond)
	if err := s.Stop(); err != nil {
		t.Fatalf("Stop: %v", err)
	}
	models, err := DecodeStream(strings.NewReader(mu.String()))
	if err != nil {
		t.Fatalf("DecodeStream over snapshotter output: %v", err)
	}
	// At least the final stop-time record must exist even on a slow box.
	if len(models) == 0 {
		t.Fatal("snapshotter wrote no records")
	}
	last := models[len(models)-1]
	if len(last.Actors) != 1 || last.Actors[0].Invocations != 3 {
		t.Fatalf("final record = %+v, want actor a with 3 invocations", last)
	}
}

func TestSnapshotterReportsWriteError(t *testing.T) {
	s := NewSnapshotter(func() Model { return Model{V: SnapshotVersion} }, failWriter{}, 10*time.Millisecond)
	s.Start()
	time.Sleep(25 * time.Millisecond)
	if err := s.Stop(); err == nil {
		t.Fatal("Stop returned nil, want the write error")
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errors.New("disk full") }

// syncBuffer is a mutex-guarded bytes.Buffer: the snapshotter goroutine
// writes while the test reads.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}
