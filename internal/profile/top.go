package profile

import (
	"fmt"
	"io"
	"sort"

	"github.com/eactors/eactors-go/internal/pollclient"
)

// Fetch polls a /debug/profile endpoint (addr may be a bare host:port,
// a base URL, or the full endpoint) and decodes the snapshot.
func Fetch(addr string) (Model, []byte, error) {
	body, err := pollclient.Get(pollclient.URL(addr, "/debug/profile"))
	if err != nil {
		return Model{}, nil, err
	}
	m, err := Decode(body)
	if err != nil {
		return Model{}, nil, err
	}
	return m, body, nil
}

// topRow is one rendered actor line: deltas between two snapshots.
type topRow struct {
	a       ActorCost
	dInv    uint64
	dNs     uint64 // invoke+seal+open ns delta — the sort key ("cost")
	dSent   uint64
	dRecv   uint64
	dCross  uint64
	dSealB  uint64
	dwellNs uint64 // mean dwell ns over the window's samples
}

func sub(cur, prev uint64) uint64 {
	if cur < prev { // restarted server: treat as fresh totals
		return cur
	}
	return cur - prev
}

// RenderTop writes the eactors-top view: a per-actor cost table (rates
// over the window between prev and cur, or cumulative totals when prev
// is zero), the hottest communication edges, and per-enclave EPC lines.
// Plain text, no terminal control — the caller owns screen handling.
// rows bounds the actor table (0 = all).
func RenderTop(w io.Writer, prev, cur Model, rows int) {
	windowNs := cur.CapturedAtNs - prev.CapturedAtNs
	secs := float64(windowNs) / 1e9
	if prev.CapturedAtNs == 0 || secs <= 0 {
		secs = 0 // totals mode
	}
	prevActors := make(map[string]ActorCost, len(prev.Actors))
	for _, a := range prev.Actors {
		prevActors[a.Name] = a
	}

	list := make([]topRow, 0, len(cur.Actors))
	for _, a := range cur.Actors {
		p := prevActors[a.Name]
		r := topRow{
			a:      a,
			dInv:   sub(a.Invocations, p.Invocations),
			dNs:    sub(a.InvokeNs, p.InvokeNs) + sub(a.SealNs, p.SealNs) + sub(a.OpenNs, p.OpenNs),
			dSent:  sub(a.MsgsSent, p.MsgsSent),
			dRecv:  sub(a.MsgsRecv, p.MsgsRecv),
			dCross: sub(a.Crossings, p.Crossings),
			dSealB: sub(a.SealBytes, p.SealBytes),
		}
		if ds := sub(a.DwellSamples, p.DwellSamples); ds > 0 {
			r.dwellNs = sub(a.DwellNs, p.DwellNs) / ds
		}
		list = append(list, r)
	}
	sort.Slice(list, func(i, j int) bool {
		if list[i].dNs != list[j].dNs {
			return list[i].dNs > list[j].dNs
		}
		return list[i].a.Name < list[j].a.Name
	})
	if rows > 0 && len(list) > rows {
		list = list[:rows]
	}

	if secs > 0 {
		fmt.Fprintf(w, "window %.1fs · sample 1/%d\n", secs, cur.SampleEvery)
	} else {
		fmt.Fprintf(w, "totals since start · sample 1/%d\n", cur.SampleEvery)
	}
	fmt.Fprintf(w, "%-18s %-10s %3s %10s %7s %10s %10s %8s %10s %9s\n",
		"ACTOR", "ENCLAVE", "W", "INV/s", "CPU%", "SENT/s", "RECV/s", "CROSS/s", "SEAL B/s", "DWELL")
	for _, r := range list {
		rate := func(d uint64) string {
			if secs > 0 {
				return fmt.Sprintf("%.0f", float64(d)/secs)
			}
			return fmt.Sprintf("%d", d)
		}
		cpu := "-"
		if secs > 0 {
			cpu = fmt.Sprintf("%.1f", float64(r.dNs)/float64(windowNs)*100)
		}
		dwell := "-"
		if r.dwellNs > 0 {
			dwell = fmtNs(r.dwellNs)
		}
		fmt.Fprintf(w, "%-18s %-10s %3d %10s %7s %10s %10s %8s %10s %9s\n",
			clip(r.a.Name, 18), clip(r.a.Enclave, 10), r.a.Worker,
			rate(r.dInv), cpu, rate(r.dSent), rate(r.dRecv), rate(r.dCross), rate(r.dSealB), dwell)
	}

	type edgeRow struct {
		e     EdgeCost
		dMsgs uint64
	}
	prevEdges := make(map[string]EdgeCost, len(prev.Edges))
	for _, e := range prev.Edges {
		prevEdges[e.Src+"\x00"+e.Dst+"\x00"+e.Channel] = e
	}
	edges := make([]edgeRow, 0, len(cur.Edges))
	for _, e := range cur.Edges {
		p := prevEdges[e.Src+"\x00"+e.Dst+"\x00"+e.Channel]
		if d := sub(e.Msgs, p.Msgs); d > 0 {
			edges = append(edges, edgeRow{e: e, dMsgs: d})
		}
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].dMsgs != edges[j].dMsgs {
			return edges[i].dMsgs > edges[j].dMsgs
		}
		return edges[i].e.Channel < edges[j].e.Channel
	})
	if len(edges) > 0 {
		fmt.Fprintf(w, "\nhottest edges\n")
		n := len(edges)
		if n > 5 {
			n = 5
		}
		for _, er := range edges[:n] {
			if secs > 0 {
				fmt.Fprintf(w, "  %s -> %s  (%s)  %.0f msg/s\n", er.e.Src, er.e.Dst, er.e.Channel, float64(er.dMsgs)/secs)
			} else {
				fmt.Fprintf(w, "  %s -> %s  (%s)  %d msgs\n", er.e.Src, er.e.Dst, er.e.Channel, er.dMsgs)
			}
		}
	}

	if len(cur.Enclaves) > 0 {
		fmt.Fprintf(w, "\nenclaves\n")
		prevEncl := make(map[string]EnclaveCost, len(prev.Enclaves))
		for _, e := range prev.Enclaves {
			prevEncl[e.Name] = e
		}
		for _, e := range cur.Enclaves {
			p := prevEncl[e.Name]
			fmt.Fprintf(w, "  %-12s pages %6d  evicted +%d  crossings +%d\n",
				e.Name, e.PagesResident, sub(e.EvictedPages, p.EvictedPages), sub(e.Crossings, p.Crossings))
		}
	}
}

func clip(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}

func fmtNs(ns uint64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.2fs", float64(ns)/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.1fms", float64(ns)/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.1fµs", float64(ns)/1e3)
	default:
		return fmt.Sprintf("%dns", ns)
	}
}
