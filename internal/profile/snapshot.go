package profile

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"time"
)

// SnapshotVersion is the current cost-model schema version. The
// compatibility promise (DESIGN §15): consumers reject versions they do
// not know (Decode returns ErrUnknownVersion), producers only add
// fields within a version — any removal or semantic change bumps it.
const SnapshotVersion = 1

// ErrUnknownVersion reports a snapshot whose schema version this
// decoder does not understand.
var ErrUnknownVersion = errors.New("profile: unknown snapshot version")

// Model is one cost-model snapshot: the per-actor cost profiles, the
// actor→actor communication matrix (as a sparse edge list), and the
// per-enclave EPC attribution at one capture instant. It is the stable
// input contract for the placement advisor (ROADMAP item 5) and the
// wire format of /debug/profile and the JSONL snapshot files.
type Model struct {
	V            int           `json:"v"`
	CapturedAtNs int64         `json:"captured_at_ns"`
	SampleEvery  int           `json:"sample_every,omitempty"`
	Actors       []ActorCost   `json:"actors,omitempty"`
	Edges        []EdgeCost    `json:"edges,omitempty"`
	Enclaves     []EnclaveCost `json:"enclaves,omitempty"`
}

// ActorCost is one actor's accumulated cost profile. All ns fields are
// already extrapolated to estimated totals; dwell is the exception —
// it is a (sum, samples) pair over sampled traces and only the mean is
// meaningful.
type ActorCost struct {
	Name         string `json:"name"`
	Enclave      string `json:"enclave,omitempty"`
	Worker       int    `json:"worker"`
	Invocations  uint64 `json:"invocations"`
	InvokeNs     uint64 `json:"invoke_ns"`
	MsgsSent     uint64 `json:"msgs_sent"`
	BytesSent    uint64 `json:"bytes_sent"`
	MsgsRecv     uint64 `json:"msgs_recv"`
	BytesRecv    uint64 `json:"bytes_recv"`
	Crossings    uint64 `json:"crossings"`
	SealOps      uint64 `json:"seal_ops"`
	SealNs       uint64 `json:"seal_ns"`
	SealBytes    uint64 `json:"seal_bytes"`
	OpenOps      uint64 `json:"open_ops"`
	OpenNs       uint64 `json:"open_ns"`
	OpenBytes    uint64 `json:"open_bytes"`
	DwellNs      uint64 `json:"dwell_ns"`
	DwellSamples uint64 `json:"dwell_samples"`
}

// EdgeCost is one directed edge of the communication matrix, resolved
// to actor names. Only edges that carried traffic are emitted.
type EdgeCost struct {
	Src     string `json:"src"`
	Dst     string `json:"dst"`
	Channel string `json:"channel"`
	Msgs    uint64 `json:"msgs"`
	Bytes   uint64 `json:"bytes"`
}

// EnclaveCost is one enclave's EPC attribution: resident pages at the
// capture instant, cumulative evicted pages, and the crossings summed
// over its member actors.
type EnclaveCost struct {
	Name          string `json:"name"`
	PagesResident int64  `json:"pages_resident"`
	EvictedPages  uint64 `json:"evicted_pages"`
	Crossings     uint64 `json:"crossings"`
}

// Snapshot captures the collector state into a Model stamped with
// nowNs. Safe concurrently with hot-path writers (each field is an
// independent atomic load, so a snapshot is per-field — not cross-field
// — consistent, which is fine for rate and ratio consumers). Nil-safe:
// a nil collector yields an empty model.
func (c *Collector) Snapshot(nowNs int64) Model {
	m := Model{V: SnapshotVersion, CapturedAtNs: nowNs}
	if c == nil {
		return m
	}
	m.SampleEvery = c.SampleEvery()
	c.mu.Lock()
	defer c.mu.Unlock()

	names := make(map[uint32]string, len(c.actors))
	byEnclave := make(map[string]uint64)
	for tag, e := range c.actors {
		if e.cell == nil {
			continue
		}
		names[uint32(tag)] = e.meta.Name
		crossings := e.cell.Crossings.Load()
		if e.meta.Enclave != "" {
			byEnclave[e.meta.Enclave] += crossings
		}
		m.Actors = append(m.Actors, ActorCost{
			Name:         e.meta.Name,
			Enclave:      e.meta.Enclave,
			Worker:       e.meta.Worker,
			Invocations:  e.cell.Invocations.Load(),
			InvokeNs:     e.cell.InvokeNs.Load(),
			MsgsSent:     e.cell.MsgsSent.Load(),
			BytesSent:    e.cell.BytesSent.Load(),
			MsgsRecv:     e.cell.MsgsRecv.Load(),
			BytesRecv:    e.cell.BytesRecv.Load(),
			Crossings:    crossings,
			SealOps:      e.cell.SealOps.Load(),
			SealNs:       e.cell.SealNs.Load(),
			SealBytes:    e.cell.SealBytes.Load(),
			OpenOps:      e.cell.OpenOps.Load(),
			OpenNs:       e.cell.OpenNs.Load(),
			OpenBytes:    e.cell.OpenBytes.Load(),
			DwellNs:      e.cell.DwellNs.Load(),
			DwellSamples: e.cell.DwellSamples.Load(),
		})
	}
	for _, e := range c.edges {
		msgs := e.cell.Msgs.Load()
		if msgs == 0 {
			continue
		}
		m.Edges = append(m.Edges, EdgeCost{
			Src:     names[e.meta.Src],
			Dst:     names[e.meta.Dst],
			Channel: e.meta.Channel,
			Msgs:    msgs,
			Bytes:   e.cell.Bytes.Load(),
		})
	}
	for _, e := range c.encl {
		m.Enclaves = append(m.Enclaves, EnclaveCost{
			Name:          e.name,
			PagesResident: e.pages(),
			EvictedPages:  e.evicted(),
			Crossings:     byEnclave[e.name],
		})
	}
	sort.Slice(m.Edges, func(i, j int) bool { return m.Edges[i].Msgs > m.Edges[j].Msgs })
	return m
}

// Encode writes the model as one JSON line (the JSONL snapshot record).
func (m Model) Encode(w io.Writer) error {
	b, err := json.Marshal(m)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// Decode parses one snapshot record, enforcing the version contract:
// data carrying a version this package does not know fails with
// ErrUnknownVersion rather than being half-understood.
func Decode(data []byte) (Model, error) {
	var probe struct {
		V int `json:"v"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return Model{}, fmt.Errorf("profile: malformed snapshot: %w", err)
	}
	if probe.V != SnapshotVersion {
		return Model{}, fmt.Errorf("%w: %d (want %d)", ErrUnknownVersion, probe.V, SnapshotVersion)
	}
	var m Model
	if err := json.Unmarshal(data, &m); err != nil {
		return Model{}, fmt.Errorf("profile: malformed snapshot: %w", err)
	}
	return m, nil
}

// DecodeStream parses a JSONL snapshot stream, skipping blank lines.
// It stops at the first malformed or unknown-version record.
func DecodeStream(r io.Reader) ([]Model, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var out []Model
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		m, err := Decode(line)
		if err != nil {
			return out, err
		}
		out = append(out, m)
	}
	return out, sc.Err()
}

// Snapshotter periodically captures cost models from a source and
// appends them as JSONL records — the continuous-profiling output that
// survives the process (/debug/profile only shows the live view).
type Snapshotter struct {
	src   func() Model
	w     io.Writer
	every time.Duration
	stop  chan struct{}
	done  chan error
}

// NewSnapshotter builds a snapshotter over src writing to w every
// period (minimum 10ms, default 5s when zero).
func NewSnapshotter(src func() Model, w io.Writer, every time.Duration) *Snapshotter {
	if every <= 0 {
		every = 5 * time.Second
	}
	if every < 10*time.Millisecond {
		every = 10 * time.Millisecond
	}
	return &Snapshotter{src: src, w: w, every: every, stop: make(chan struct{}), done: make(chan error, 1)}
}

// Start launches the snapshot loop.
func (s *Snapshotter) Start() {
	go func() {
		t := time.NewTicker(s.every)
		defer t.Stop()
		var firstErr error
		record := func() {
			if err := s.src().Encode(s.w); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		for {
			select {
			case <-t.C:
				record()
			case <-s.stop:
				record() // final snapshot so short runs still leave one record
				s.done <- firstErr
				return
			}
		}
	}()
}

// Stop ends the loop after writing one final snapshot and returns the
// first write error encountered, if any.
func (s *Snapshotter) Stop() error {
	close(s.stop)
	return <-s.done
}
