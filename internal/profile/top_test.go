package profile

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestFetchDecodesEndpoint(t *testing.T) {
	want := sampleModel()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/debug/profile" {
			http.NotFound(w, req)
			return
		}
		want.Encode(w)
	}))
	defer srv.Close()

	// All three addr spellings must resolve to the endpoint.
	for _, addr := range []string{
		srv.URL,
		strings.TrimPrefix(srv.URL, "http://"), // bare host:port
		srv.URL + "/debug/profile",
	} {
		m, raw, err := Fetch(addr)
		if err != nil {
			t.Fatalf("Fetch(%q): %v", addr, err)
		}
		if len(m.Actors) != 2 || m.Actors[0].Name != "frontend" {
			t.Fatalf("Fetch(%q) = %+v, want the sample model", addr, m)
		}
		if len(raw) == 0 {
			t.Fatalf("Fetch(%q) returned no raw body", addr)
		}
	}
}

func TestFetchErrors(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(http.NotFound))
	defer srv.Close()
	if _, _, err := Fetch(srv.URL); err == nil {
		t.Fatal("Fetch of a 404 endpoint must fail")
	}

	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte(`{"v":99}`))
	}))
	defer bad.Close()
	if _, _, err := Fetch(bad.URL); err == nil {
		t.Fatal("Fetch of an unknown-version snapshot must fail")
	}
}

func TestRenderTopTotals(t *testing.T) {
	var buf bytes.Buffer
	RenderTop(&buf, Model{}, sampleModel(), 0)
	out := buf.String()
	for _, want := range []string{
		"totals since start",
		"ACTOR", "ENCLAVE", // table header
		"frontend", "kvstore-0", "kv-0",
		"hottest edges",
		"frontend -> kvstore-0", "(req-0)", "5 msgs",
		"enclaves",
		"evicted +3", "crossings +14",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("totals render missing %q:\n%s", want, out)
		}
	}
}

func TestRenderTopRates(t *testing.T) {
	prev := sampleModel()
	cur := sampleModel()
	cur.CapturedAtNs = prev.CapturedAtNs + 2e9 // 2s window
	cur.Actors[0].MsgsSent += 20               // frontend: 10 msg/s
	cur.Actors[1].InvokeNs += 1e9              // kvstore: 50% CPU
	cur.Edges[0].Msgs += 20
	var buf bytes.Buffer
	RenderTop(&buf, prev, cur, 1) // rows=1 keeps only the hottest actor
	out := buf.String()
	if !strings.Contains(out, "window 2.0s") {
		t.Fatalf("rates render missing window line:\n%s", out)
	}
	if !strings.Contains(out, "kvstore-0") || strings.Contains(out, "frontend -> ") == false {
		t.Fatalf("rates render missing hottest actor or edge:\n%s", out)
	}
	// rows=1 and kvstore-0 burned the most ns, so frontend's actor row
	// is clipped from the table (it still appears in the edge list).
	if strings.Contains(strings.SplitN(out, "hottest edges", 2)[0], "frontend") {
		t.Fatalf("rows bound not applied:\n%s", out)
	}
	if !strings.Contains(out, "50.0") {
		t.Fatalf("CPU%% column missing 50.0 for kvstore-0:\n%s", out)
	}
	if !strings.Contains(out, "10 msg/s") {
		t.Fatalf("edge rate missing 10 msg/s:\n%s", out)
	}
}

func TestRenderTopRestartTolerant(t *testing.T) {
	prev := sampleModel()
	cur := sampleModel()
	cur.CapturedAtNs = prev.CapturedAtNs + 1e9
	cur.Actors[0].Invocations = 2 // server restarted: totals went backwards
	var buf bytes.Buffer
	RenderTop(&buf, prev, cur, 0) // must not underflow/panic
	if !strings.Contains(buf.String(), "frontend") {
		t.Fatal("restart-tolerant render dropped the actor table")
	}
}

func TestClipAndFmtNs(t *testing.T) {
	if got := clip("short", 18); got != "short" {
		t.Errorf("clip(short) = %q", got)
	}
	if got := clip("a-very-long-actor-name-indeed", 10); len(got) != len("a-very-lo…") {
		t.Errorf("clip long = %q", got)
	}
	for _, tc := range []struct {
		ns   uint64
		want string
	}{
		{500, "500ns"}, {1500, "1.5µs"}, {2_500_000, "2.5ms"}, {3_000_000_000, "3.00s"},
	} {
		if got := fmtNs(tc.ns); got != tc.want {
			t.Errorf("fmtNs(%d) = %q, want %q", tc.ns, got, tc.want)
		}
	}
}
