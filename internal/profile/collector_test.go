package profile

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"github.com/eactors/eactors-go/internal/trace"
)

func TestNilCollectorIsNoOp(t *testing.T) {
	var c *Collector
	if cell := c.RegisterActor(0, "a", "", 0); cell != nil {
		t.Fatal("nil collector must hand out nil actor cells")
	}
	if cell := c.RegisterEdge(0, 1, "ch"); cell != nil {
		t.Fatal("nil collector must hand out nil edge cells")
	}
	c.RegisterEnclave("e", func() int64 { return 0 }, func() uint64 { return 0 })
	c.RegisterDwell(0, 0, 0)
	c.FoldSpans([]trace.Span{{ID: 1, Kind: trace.KindDwell}})
	if got := c.Mask(); got != 0 {
		t.Fatalf("nil Mask() = %d, want 0", got)
	}
	if got := c.SampleEvery(); got != 0 {
		t.Fatalf("nil SampleEvery() = %d, want 0", got)
	}
	m := c.Snapshot(42)
	if m.V != SnapshotVersion || m.CapturedAtNs != 42 || len(m.Actors) != 0 {
		t.Fatalf("nil Snapshot = %+v, want empty versioned model", m)
	}
}

func TestSampleEveryRounding(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{0, DefaultSampleEvery}, {-3, DefaultSampleEvery},
		{1, 1}, {2, 2}, {3, 4}, {16, 16}, {17, 32},
	} {
		if got := NewCollector(tc.in).SampleEvery(); got != tc.want {
			t.Errorf("NewCollector(%d).SampleEvery() = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestRegisterActorIdempotent(t *testing.T) {
	c := NewCollector(1)
	a := c.RegisterActor(3, "x", "e", 1) // sparse tag grows the table
	b := c.RegisterActor(3, "ignored", "ignored", 9)
	if a != b {
		t.Fatal("re-registering a tag must return the same cell")
	}
	m := c.Snapshot(0)
	if len(m.Actors) != 1 || m.Actors[0].Name != "x" || m.Actors[0].Worker != 1 {
		t.Fatalf("snapshot = %+v, want the first registration's metadata", m.Actors)
	}
}

func TestSnapshotEdgesAndEnclaves(t *testing.T) {
	c := NewCollector(1)
	c.RegisterActor(0, "a", "encl", 0)
	c.RegisterActor(1, "b", "", 1)
	hot := c.RegisterEdge(0, 1, "hot")
	cold := c.RegisterEdge(1, 0, "cold")
	warm := c.RegisterEdge(0, 1, "warm")
	_ = cold // no traffic: must be omitted
	hot.Msgs.Add(10)
	hot.Bytes.Add(1000)
	warm.Msgs.Add(3)
	pages, evicted := int64(7), uint64(2)
	c.RegisterEnclave("encl", func() int64 { return pages }, func() uint64 { return evicted })
	c.RegisterEnclave("bad", nil, nil) // ignored

	cell := c.RegisterActor(0, "a", "encl", 0)
	cell.Crossings.Add(5)

	m := c.Snapshot(1)
	if len(m.Edges) != 2 {
		t.Fatalf("edges = %+v, want 2 (zero-traffic edge omitted)", m.Edges)
	}
	if m.Edges[0].Channel != "hot" || m.Edges[0].Msgs != 10 || m.Edges[0].Src != "a" || m.Edges[0].Dst != "b" {
		t.Fatalf("edges not sorted by traffic / resolved to names: %+v", m.Edges)
	}
	if len(m.Enclaves) != 1 {
		t.Fatalf("enclaves = %+v, want 1 (nil-func registration ignored)", m.Enclaves)
	}
	e := m.Enclaves[0]
	if e.PagesResident != 7 || e.EvictedPages != 2 || e.Crossings != 5 {
		t.Fatalf("enclave = %+v, want pages=7 evicted=2 crossings=5 (member-actor sum)", e)
	}
}

// naiveCosts is the reference model: a plain map updated under one big
// lock, no sharding, no atomics.
type naiveCosts struct {
	mu   sync.Mutex
	inv  map[int]uint64
	sent map[int]uint64
}

// TestCollectorMatchesNaiveReference drives the same randomized update
// schedule into the collector's cells (concurrently, as the runtime
// does) and a naive locked reference, then requires exact agreement —
// counters are exact, never sampled. Run under -race this also proves
// the cells are data-race free with concurrent snapshot readers.
func TestCollectorMatchesNaiveReference(t *testing.T) {
	const actors = 4
	f := func(seed int64, opsRaw uint16) bool {
		ops := int(opsRaw)%512 + 64
		c := NewCollector(1)
		cells := make([]*ActorCell, actors)
		for i := range cells {
			cells[i] = c.RegisterActor(uint32(i), string(rune('a'+i)), "", i)
		}
		ref := &naiveCosts{inv: map[int]uint64{}, sent: map[int]uint64{}}

		const workers = 4
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed + int64(w)))
				for i := 0; i < ops; i++ {
					actor := rng.Intn(actors)
					n := uint64(rng.Intn(100))
					cells[actor].Invocations.Add(1)
					cells[actor].MsgsSent.Add(n)
					ref.mu.Lock()
					ref.inv[actor]++
					ref.sent[actor] += n
					ref.mu.Unlock()
				}
			}(w)
		}
		// Concurrent reader: snapshots must not disturb the totals.
		done := make(chan struct{})
		go func() {
			defer close(done)
			for i := 0; i < 50; i++ {
				_ = c.Snapshot(int64(i))
			}
		}()
		wg.Wait()
		<-done

		m := c.Snapshot(0)
		for _, a := range m.Actors {
			idx := int(a.Name[0] - 'a')
			if a.Invocations != ref.inv[idx] || a.MsgsSent != ref.sent[idx] {
				t.Logf("actor %s: collector inv=%d sent=%d, reference inv=%d sent=%d",
					a.Name, a.Invocations, a.MsgsSent, ref.inv[idx], ref.sent[idx])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestFoldSpansAttributesDwell(t *testing.T) {
	c := NewCollector(1)
	c.RegisterActor(0, "recv", "", 1)
	c.RegisterDwell(7, 1, 0) // channel tag 7 received on worker 1 → actor 0

	spans := []trace.Span{
		{ID: 1, Kind: trace.KindDwell, Ref: 7, Worker: 1, Dur: 100},
		{ID: 2, Kind: trace.KindDwell, Ref: 7, Worker: 1, Dur: 200},
		{ID: 3, Kind: trace.KindDwell, Ref: 9, Worker: 1, Dur: 400}, // unregistered channel
		{ID: 4, Kind: trace.KindInvoke, Ref: 7, Worker: 1, Dur: 800},
		{ID: 5, Kind: trace.KindDwell, Ref: 7, Worker: 1, Dur: -50}, // torn slot
		{ID: 0, Kind: trace.KindDwell, Ref: 7, Worker: 1, Dur: 999}, // invalid slot
	}
	c.FoldSpans(spans)
	m := c.Snapshot(0)
	if m.Actors[0].DwellNs != 300 || m.Actors[0].DwellSamples != 2 {
		t.Fatalf("dwell = %d/%d, want 300/2 (only valid dwell spans of registered channels)",
			m.Actors[0].DwellNs, m.Actors[0].DwellSamples)
	}

	// Overlapping snapshots: re-folding the same spans is a no-op, new
	// spans past the high-water mark still land.
	c.FoldSpans(spans)
	c.FoldSpans(append(spans, trace.Span{ID: 6, Kind: trace.KindDwell, Ref: 7, Worker: 1, Dur: 1000}))
	m = c.Snapshot(0)
	if m.Actors[0].DwellNs != 1300 || m.Actors[0].DwellSamples != 3 {
		t.Fatalf("after overlapping folds dwell = %d/%d, want 1300/3 (no double counting)",
			m.Actors[0].DwellNs, m.Actors[0].DwellSamples)
	}
}

func TestFoldSpansWrapSafe(t *testing.T) {
	c := NewCollector(1)
	c.RegisterActor(0, "recv", "", 0)
	c.RegisterDwell(1, 0, 0)
	// Walk the high-water mark toward the uint32 wrap the way real span
	// IDs move — monotonically, in windows smaller than 2^31 — then past
	// it: IDs 1, 2 after the wrap (span IDs are never 0) must read as
	// newer than 2^32-1.
	c.FoldSpans([]trace.Span{
		{ID: 1<<31 - 1, Kind: trace.KindDwell, Ref: 1, Worker: 0, Dur: 10},
	})
	c.FoldSpans([]trace.Span{
		{ID: ^uint32(0) - 1, Kind: trace.KindDwell, Ref: 1, Worker: 0, Dur: 10},
	})
	c.FoldSpans([]trace.Span{
		{ID: ^uint32(0), Kind: trace.KindDwell, Ref: 1, Worker: 0, Dur: 10},
	})
	c.FoldSpans([]trace.Span{
		{ID: 1, Kind: trace.KindDwell, Ref: 1, Worker: 0, Dur: 10},
		{ID: 2, Kind: trace.KindDwell, Ref: 1, Worker: 0, Dur: 10},
	})
	m := c.Snapshot(0)
	if m.Actors[0].DwellSamples != 5 {
		t.Fatalf("dwell samples across ID wrap = %d, want 5", m.Actors[0].DwellSamples)
	}
}
