// Package netloop is an event-driven readiness core for the networking
// eactors: instead of parking one pump goroutine per connection in
// conn.Read, idle connections are multiplexed by a small set of pollers
// (epoll on Linux, a netpoller-parking waiter elsewhere) and handed to a
// bounded dispatcher pool only when bytes are actually readable. The
// goroutine count is O(pollers + dispatchers), not O(connections) —
// the prerequisite for the ROADMAP's 100k-connection fan-in target.
//
// The protocol is deliberately tiny: a registration owns a
// syscall.RawConn and a Handler. When the fd turns readable, exactly one
// dispatcher invokes the handler (one-shot arming serializes dispatch
// per registration), and the handler's return value decides what happens
// next:
//
//   - Rearm: wait for the next readiness edge (level-triggered one-shot,
//     so leftover bytes refire immediately after re-arming);
//   - Retry: the consumer side is full — re-dispatch after a short
//     backoff without touching the poller (backpressure, not loss);
//   - Detach: the connection is finished — unregister it.
//
// Handlers perform their own non-blocking reads (see RawRead), so the
// loop never allocates or copies payload bytes itself.
package netloop

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
)

// Config sizes a readiness loop. The zero value (Enabled false) means
// "use the legacy goroutine-per-connection pumps".
type Config struct {
	// Enabled turns the readiness loop on.
	Enabled bool
	// Pollers is the number of poller goroutines (epoll instances on
	// Linux); registrations are spread round-robin. Default 1.
	Pollers int
	// Dispatchers is the number of goroutines servicing readiness
	// events. Default 4.
	Dispatchers int
	// QueueCap bounds the dispatch queue between pollers and
	// dispatchers. A full queue applies backpressure to event intake
	// (counted in Stats.Sheds) — events are never dropped, the poller
	// just stops pulling new ones until a dispatcher frees a slot.
	// Default 1024.
	QueueCap int
}

func (c Config) withDefaults() Config {
	if c.Pollers <= 0 {
		c.Pollers = 1
	}
	if c.Dispatchers <= 0 {
		c.Dispatchers = 4
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 1024
	}
	return c
}

// Action is a handler's verdict on what the loop should do with the
// registration next.
type Action int

const (
	// Rearm re-arms the registration in the poller: dispatch again on
	// the next readiness edge.
	Rearm Action = iota
	// Retry re-dispatches the handler after a short backoff without
	// consulting the poller — the fd may still be readable but the
	// handler's consumer is full (backpressure).
	Retry
	// Detach unregisters the connection (EOF, error, or local close).
	Detach
)

// Handler is invoked by a dispatcher when the registered fd is
// readable. At most one invocation per registration is in flight at any
// time.
type Handler func() Action

// retryDelay is the Retry re-dispatch backoff. Long enough that a
// stalled consumer is not hammered, short enough that draining it
// resumes promptly.
const retryDelay = time.Millisecond

// ErrClosed reports an operation on a closed loop or registration.
var ErrClosed = errors.New("netloop: closed")

// Reg is one registered connection.
type Reg struct {
	token   uint32
	rc      syscall.RawConn
	handler Handler
	loop    *Loop
	poller  poller
	dead    atomic.Bool
}

// Close unregisters the connection. Idempotent; safe to call while a
// dispatch is in flight (the handler's verdict on a dead registration
// is ignored).
func (r *Reg) Close() {
	if r.dead.CompareAndSwap(false, true) {
		r.loop.unregister(r)
	}
}

// Loop is a running readiness loop: pollers feeding a bounded dispatch
// queue drained by a dispatcher pool.
type Loop struct {
	cfg     Config
	pollers []poller

	mu     sync.Mutex
	regs   map[uint32]*Reg
	next   uint32
	closed bool

	dispatchCh chan *Reg
	quit       chan struct{}
	wg         sync.WaitGroup

	readyEvents atomic.Uint64
	dispatches  atomic.Uint64
	retries     atomic.Uint64
	sheds       atomic.Uint64
}

// Stats is a point-in-time snapshot of the loop counters.
type Stats struct {
	// ReadyEvents counts readiness events delivered by the pollers.
	ReadyEvents uint64
	// Dispatches counts handler invocations.
	Dispatches uint64
	// Retries counts backpressure re-dispatches (handler returned Retry).
	Retries uint64
	// Sheds counts dispatch-queue-full events: the poller had to block
	// handing an event over (intake backpressure, not loss).
	Sheds uint64
	// Registered is the number of live registrations.
	Registered int
	// QueueDepth is the instantaneous dispatch queue occupancy.
	QueueDepth int
}

// New starts a readiness loop. On platforms without poller support it
// returns an error; callers fall back to per-connection pumps.
func New(cfg Config) (*Loop, error) {
	cfg = cfg.withDefaults()
	l := &Loop{
		cfg:        cfg,
		regs:       make(map[uint32]*Reg),
		dispatchCh: make(chan *Reg, cfg.QueueCap),
		quit:       make(chan struct{}),
	}
	for i := 0; i < cfg.Pollers; i++ {
		p, err := newPoller(l)
		if err != nil {
			l.Close()
			return nil, fmt.Errorf("netloop: poller %d: %w", i, err)
		}
		l.pollers = append(l.pollers, p)
		l.wg.Add(1)
		go func() {
			defer l.wg.Done()
			p.run()
		}()
	}
	for i := 0; i < cfg.Dispatchers; i++ {
		l.wg.Add(1)
		go func() {
			defer l.wg.Done()
			l.dispatch()
		}()
	}
	return l, nil
}

// Register adds a connection to the loop. The handler fires as soon as
// the fd is readable (immediately, if bytes are already pending).
func (l *Loop) Register(rc syscall.RawConn, h Handler) (*Reg, error) {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil, ErrClosed
	}
	l.next++
	if l.next == 0 { // token 0 is the pollers' wake sentinel
		l.next = 1
	}
	r := &Reg{token: l.next, rc: rc, handler: h, loop: l}
	r.poller = l.pollers[int(r.token)%len(l.pollers)]
	l.regs[r.token] = r
	l.mu.Unlock()
	if err := r.poller.add(r); err != nil {
		l.mu.Lock()
		delete(l.regs, r.token)
		l.mu.Unlock()
		return nil, err
	}
	return r, nil
}

// lookup resolves a token to its live registration; stale events (the
// fd was unregistered, possibly reused) resolve to nil and are ignored.
func (l *Loop) lookup(token uint32) *Reg {
	l.mu.Lock()
	r := l.regs[token]
	l.mu.Unlock()
	return r
}

func (l *Loop) unregister(r *Reg) {
	r.dead.Store(true)
	l.mu.Lock()
	if l.regs[r.token] == r {
		delete(l.regs, r.token)
	}
	l.mu.Unlock()
	r.poller.del(r)
}

// deliver hands a readiness event to the dispatcher pool. Called from
// poller goroutines; a full queue blocks intake (counted as a shed)
// rather than dropping the event.
func (l *Loop) deliver(token uint32) {
	r := l.lookup(token)
	if r == nil || r.dead.Load() {
		return
	}
	l.readyEvents.Add(1)
	l.enqueue(r, true)
}

func (l *Loop) enqueue(r *Reg, countShed bool) {
	select {
	case l.dispatchCh <- r:
		return
	default:
	}
	if countShed {
		l.sheds.Add(1)
	}
	select {
	case l.dispatchCh <- r:
	case <-l.quit:
	}
}

// dispatch is one dispatcher-pool goroutine: invoke handlers, act on
// their verdicts.
func (l *Loop) dispatch() {
	for {
		select {
		case r := <-l.dispatchCh:
			if r.dead.Load() {
				continue
			}
			l.dispatches.Add(1)
			switch r.handler() {
			case Rearm:
				if r.dead.Load() {
					continue
				}
				if err := r.poller.arm(r); err != nil {
					r.Close()
				}
			case Retry:
				l.retries.Add(1)
				reg := r
				time.AfterFunc(retryDelay, func() {
					if !reg.dead.Load() {
						reg.loop.enqueue(reg, false)
					}
				})
			case Detach:
				r.Close()
			}
		case <-l.quit:
			return
		}
	}
}

// Stats snapshots the loop counters.
func (l *Loop) Stats() Stats {
	l.mu.Lock()
	registered := len(l.regs)
	l.mu.Unlock()
	return Stats{
		ReadyEvents: l.readyEvents.Load(),
		Dispatches:  l.dispatches.Load(),
		Retries:     l.retries.Load(),
		Sheds:       l.sheds.Load(),
		Registered:  registered,
		QueueDepth:  len(l.dispatchCh),
	}
}

// ReadyEvents returns the readiness-event counter (telemetry export).
func (l *Loop) ReadyEvents() uint64 { return l.readyEvents.Load() }

// Dispatches returns the handler-invocation counter.
func (l *Loop) Dispatches() uint64 { return l.dispatches.Load() }

// Retries returns the backpressure re-dispatch counter.
func (l *Loop) Retries() uint64 { return l.retries.Load() }

// Sheds returns the dispatch-queue-full counter.
func (l *Loop) Sheds() uint64 { return l.sheds.Load() }

// Registered returns the live-registration gauge.
func (l *Loop) Registered() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return uint64(len(l.regs))
}

// QueueDepth returns the instantaneous dispatch-queue occupancy.
func (l *Loop) QueueDepth() uint64 { return uint64(len(l.dispatchCh)) }

// Close stops the pollers and dispatchers and drops every registration.
// Connections themselves are not closed — their owner does that.
func (l *Loop) Close() {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return
	}
	l.closed = true
	regs := make([]*Reg, 0, len(l.regs))
	for _, r := range l.regs {
		regs = append(regs, r)
	}
	l.regs = make(map[uint32]*Reg)
	l.mu.Unlock()
	for _, r := range regs {
		r.dead.Store(true)
	}
	close(l.quit)
	for _, p := range l.pollers {
		p.close()
	}
	l.wg.Wait()
}
