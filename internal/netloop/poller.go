package netloop

// poller is the platform readiness backend. Implementations deliver
// tokens to Loop.deliver when a registered fd turns readable, with
// one-shot semantics: after a delivery the registration stays silent
// until arm() is called again.
type poller interface {
	// add registers r and arms it for its first readiness event.
	add(r *Reg) error
	// arm re-arms r after a dispatch (handler returned Rearm).
	arm(r *Reg) error
	// del removes r (best-effort; closing the fd also deregisters it).
	del(r *Reg)
	// run is the poller goroutine body; returns after close().
	run()
	// close asks run to exit. Registered connections should be closed
	// by their owners first (System.Shutdown does).
	close()
}
