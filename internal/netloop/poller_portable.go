//go:build unix && !linux

package netloop

import (
	"sync"
	"sync/atomic"
)

// waitPoller is the portable fallback: one waiter goroutine per
// registration parks in RawConn.Read on the runtime netpoller until the
// fd is readable, then delivers the token and sleeps until re-armed.
// This keeps the dispatch protocol (and the dispatcher-pool bound on
// concurrent reads) but not the O(pollers) goroutine bound — that needs
// the epoll backend. Linux CI exercises the real thing; this exists so
// the package builds and behaves correctly on the other Unixes.
type waitPoller struct {
	loop   *Loop
	quit   chan struct{}
	wg     sync.WaitGroup
	closed atomic.Bool

	mu    sync.Mutex
	waits map[uint32]*waitState
}

type waitState struct {
	armCh chan struct{}
	stop  chan struct{}
}

func newPoller(l *Loop) (poller, error) {
	return &waitPoller{loop: l, quit: make(chan struct{}), waits: make(map[uint32]*waitState)}, nil
}

func (p *waitPoller) add(r *Reg) error {
	w := &waitState{armCh: make(chan struct{}, 1), stop: make(chan struct{})}
	w.armCh <- struct{}{} // armed from birth, like EPOLL_CTL_ADD
	p.mu.Lock()
	p.waits[r.token] = w
	p.mu.Unlock()
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		for {
			select {
			case <-w.armCh:
			case <-w.stop:
				return
			case <-p.quit:
				return
			}
			// Park until readable (or until the conn is closed, which
			// surfaces as an error — deliver anyway so the handler can
			// observe EOF and detach).
			_ = r.rc.Read(func(fd uintptr) bool { return false })
			select {
			case <-w.stop:
				return
			case <-p.quit:
				return
			default:
			}
			p.loop.deliver(r.token)
		}
	}()
	return nil
}

func (p *waitPoller) arm(r *Reg) error {
	p.mu.Lock()
	w := p.waits[r.token]
	p.mu.Unlock()
	if w == nil {
		return ErrClosed
	}
	select {
	case w.armCh <- struct{}{}:
	default:
	}
	return nil
}

func (p *waitPoller) del(r *Reg) {
	p.mu.Lock()
	w := p.waits[r.token]
	delete(p.waits, r.token)
	p.mu.Unlock()
	if w != nil {
		close(w.stop)
	}
}

func (p *waitPoller) run() {
	<-p.quit
	// Waiters parked in rc.Read return once their connections close;
	// the owner (System.Shutdown) closes connections before the loop.
	p.wg.Wait()
}

func (p *waitPoller) close() {
	if p.closed.CompareAndSwap(false, true) {
		close(p.quit)
	}
}
