package netloop

import (
	"bytes"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"
)

// tcpPair returns a connected TCP client/server conn pair (net.Pipe
// conns carry no fd, so the readiness loop needs real sockets).
func tcpPair(t *testing.T) (client, server net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer ln.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		server, err = ln.Accept()
	}()
	client, cerr := net.Dial("tcp", ln.Addr().String())
	if cerr != nil {
		t.Fatalf("dial: %v", cerr)
	}
	<-done
	if err != nil {
		t.Fatalf("accept: %v", err)
	}
	t.Cleanup(func() {
		client.Close()
		server.Close()
	})
	return client, server
}

func rawConn(t *testing.T, c net.Conn) syscall.RawConn {
	t.Helper()
	sc, ok := c.(syscall.Conn)
	if !ok {
		t.Fatalf("%T does not expose a raw fd", c)
	}
	rc, err := sc.SyscallConn()
	if err != nil {
		t.Fatalf("SyscallConn: %v", err)
	}
	return rc
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Pollers != 1 || c.Dispatchers != 4 || c.QueueCap != 1024 {
		t.Fatalf("defaults = %+v", c)
	}
	c = Config{Pollers: 3, Dispatchers: 2, QueueCap: 8}.withDefaults()
	if c.Pollers != 3 || c.Dispatchers != 2 || c.QueueCap != 8 {
		t.Fatalf("explicit config rewritten: %+v", c)
	}
}

// TestEchoDelivery registers one connection and checks that every write
// fires the handler and RawRead returns the bytes — including bytes
// written BEFORE registration (level-triggered: pending data fires
// immediately).
func TestEchoDelivery(t *testing.T) {
	l, err := New(Config{Enabled: true})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer l.Close()

	client, server := tcpPair(t)
	if _, err := client.Write([]byte("early")); err != nil {
		t.Fatalf("pre-registration write: %v", err)
	}

	var mu sync.Mutex
	var got []byte
	rc := rawConn(t, server)
	reg, err := l.Register(rc, func() Action {
		buf := make([]byte, 256)
		for {
			n, again, closed := RawRead(rc, buf)
			if n > 0 {
				mu.Lock()
				got = append(got, buf[:n]...)
				mu.Unlock()
			}
			if closed {
				return Detach
			}
			if again {
				return Rearm
			}
		}
	})
	if err != nil {
		t.Fatalf("Register: %v", err)
	}
	defer reg.Close()

	if _, err := client.Write([]byte(" late")); err != nil {
		t.Fatalf("write: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		ok := bytes.Equal(got, []byte("early late"))
		mu.Unlock()
		if ok {
			break
		}
		if time.Now().After(deadline) {
			mu.Lock()
			t.Fatalf("got %q, want %q", got, "early late")
		}
		time.Sleep(time.Millisecond)
	}
	if l.ReadyEvents() == 0 || l.Dispatches() == 0 {
		t.Fatalf("counters not advancing: %+v", l.Stats())
	}
}

// TestSlowLoris drips a message one byte at a time. Every byte must
// produce its own readiness edge and land intact — the loop must not
// assume whole frames per event.
func TestSlowLoris(t *testing.T) {
	l, err := New(Config{Enabled: true, Dispatchers: 2})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer l.Close()

	client, server := tcpPair(t)
	var mu sync.Mutex
	var got []byte
	rc := rawConn(t, server)
	reg, err := l.Register(rc, func() Action {
		buf := make([]byte, 64)
		n, again, closed := RawRead(rc, buf)
		if n > 0 {
			mu.Lock()
			got = append(got, buf[:n]...)
			mu.Unlock()
		}
		if closed {
			return Detach
		}
		_ = again
		return Rearm
	})
	if err != nil {
		t.Fatalf("Register: %v", err)
	}
	defer reg.Close()

	msg := []byte("slow loris partial frame")
	for _, b := range msg {
		if _, err := client.Write([]byte{b}); err != nil {
			t.Fatalf("drip write: %v", err)
		}
		time.Sleep(2 * time.Millisecond)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		ok := bytes.Equal(got, msg)
		mu.Unlock()
		if ok {
			return
		}
		if time.Now().After(deadline) {
			mu.Lock()
			t.Fatalf("assembled %q, want %q", got, msg)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestChurnStorm registers and tears down connections in a tight loop;
// the registry must end empty with no stale tokens firing.
func TestChurnStorm(t *testing.T) {
	l, err := New(Config{Enabled: true, Dispatchers: 2})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer l.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer ln.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			accepted <- c
		}
	}()

	var fired atomic.Int64
	const rounds = 100
	for i := 0; i < rounds; i++ {
		client, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Fatalf("dial %d: %v", i, err)
		}
		server := <-accepted
		rc := rawConn(t, server)
		reg, err := l.Register(rc, func() Action {
			buf := make([]byte, 64)
			for {
				n, again, closed := RawRead(rc, buf)
				if n > 0 {
					fired.Add(1)
				}
				if closed {
					return Detach
				}
				if again {
					return Rearm
				}
			}
		})
		if err != nil {
			t.Fatalf("Register %d: %v", i, err)
		}
		if i%2 == 0 {
			// Half the rounds exercise the data path before teardown.
			if _, err := client.Write([]byte("x")); err != nil {
				t.Fatalf("write %d: %v", i, err)
			}
		}
		if i%3 == 0 {
			reg.Close() // explicit unregister
			reg.Close() // idempotent
		}
		client.Close()
		server.Close()
		if i%3 != 0 {
			reg.Close() // unregister after close (fd already gone)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for l.Registered() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("registrations leaked: %d", l.Registered())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestRetryBackpressure has the handler refuse work (consumer full)
// until a gate opens; the loop must keep re-dispatching without
// touching the poller and without losing the pending bytes.
func TestRetryBackpressure(t *testing.T) {
	l, err := New(Config{Enabled: true})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer l.Close()

	client, server := tcpPair(t)
	var gate atomic.Bool
	done := make(chan []byte, 1)
	rc := rawConn(t, server)
	reg, err := l.Register(rc, func() Action {
		if !gate.Load() {
			return Retry // consumer full: back off, come again
		}
		buf := make([]byte, 64)
		n, _, _ := RawRead(rc, buf)
		if n > 0 {
			done <- append([]byte(nil), buf[:n]...)
		}
		return Rearm
	})
	if err != nil {
		t.Fatalf("Register: %v", err)
	}
	defer reg.Close()

	if _, err := client.Write([]byte("held")); err != nil {
		t.Fatalf("write: %v", err)
	}
	// Let a few Retry rounds accumulate before opening the gate.
	deadline := time.Now().Add(5 * time.Second)
	for l.Retries() < 3 {
		if time.Now().After(deadline) {
			t.Fatalf("retries never accumulated: %+v", l.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	gate.Store(true)
	select {
	case got := <-done:
		if !bytes.Equal(got, []byte("held")) {
			t.Fatalf("got %q after backpressure", got)
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("bytes lost across Retry backpressure: %+v", l.Stats())
	}
}

// TestShedBackpressure saturates a QueueCap-1 dispatch queue with one
// deliberately slow dispatcher: intake must stall (sheds counted), and
// every connection's bytes must still arrive — backpressure, not loss.
func TestShedBackpressure(t *testing.T) {
	l, err := New(Config{Enabled: true, Pollers: 1, Dispatchers: 1, QueueCap: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer l.Close()

	const conns = 8
	var wg sync.WaitGroup
	var seen atomic.Int64
	for i := 0; i < conns; i++ {
		client, server := tcpPair(t)
		rc := rawConn(t, server)
		var regOnce sync.Once
		var reg *Reg
		reg, err = l.Register(rc, func() Action {
			time.Sleep(10 * time.Millisecond) // slow handler: queue floods
			buf := make([]byte, 64)
			n, _, closed := RawRead(rc, buf)
			if n > 0 {
				regOnce.Do(func() {
					seen.Add(1)
					wg.Done()
				})
			}
			if closed {
				return Detach
			}
			return Rearm
		})
		if err != nil {
			t.Fatalf("Register %d: %v", i, err)
		}
		defer reg.Close()
		wg.Add(1)
		if _, err := client.Write([]byte(fmt.Sprintf("conn-%d", i))); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}

	waitDone := make(chan struct{})
	go func() { wg.Wait(); close(waitDone) }()
	select {
	case <-waitDone:
	case <-time.After(10 * time.Second):
		t.Fatalf("only %d/%d connections drained under shed pressure: %+v",
			seen.Load(), conns, l.Stats())
	}
	if l.Sheds() == 0 {
		t.Logf("note: no sheds recorded (queue drained faster than intake): %+v", l.Stats())
	}
}

// TestDetachUnregisters checks that a Detach verdict removes the
// registration and that peer close surfaces as closed via RawRead.
func TestDetachUnregisters(t *testing.T) {
	l, err := New(Config{Enabled: true})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer l.Close()

	client, server := tcpPair(t)
	detached := make(chan struct{})
	rc := rawConn(t, server)
	if _, err := l.Register(rc, func() Action {
		buf := make([]byte, 64)
		for {
			n, again, closed := RawRead(rc, buf)
			if closed {
				close(detached)
				return Detach
			}
			if again {
				return Rearm
			}
			_ = n
		}
	}); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if got := l.Registered(); got != 1 {
		t.Fatalf("Registered = %d before close", got)
	}
	client.Close()
	select {
	case <-detached:
	case <-time.After(5 * time.Second):
		t.Fatal("peer close never surfaced")
	}
	deadline := time.Now().Add(5 * time.Second)
	for l.Registered() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("Detach left %d registrations", l.Registered())
		}
		time.Sleep(time.Millisecond)
	}
}

func TestRegisterAfterClose(t *testing.T) {
	l, err := New(Config{Enabled: true})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	l.Close()
	l.Close() // idempotent
	_, server := tcpPair(t)
	if _, err := l.Register(rawConn(t, server), func() Action { return Detach }); err != ErrClosed {
		t.Fatalf("Register on closed loop = %v, want ErrClosed", err)
	}
}

func TestStatsSnapshot(t *testing.T) {
	l, err := New(Config{Enabled: true, Pollers: 2, Dispatchers: 3, QueueCap: 4})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer l.Close()
	st := l.Stats()
	if st.Registered != 0 || st.QueueDepth != 0 {
		t.Fatalf("fresh loop stats = %+v", st)
	}
	if l.QueueDepth() != 0 || l.Sheds() != 0 {
		t.Fatalf("accessors disagree with snapshot")
	}
}
