package netloop

import (
	"sync/atomic"
	"syscall"
)

// epollPoller multiplexes registrations on one epoll instance, armed
// level-triggered one-shot: an event disarms the fd until the handler
// returns Rearm, so at most one dispatch per registration is ever in
// flight, and leftover bytes refire immediately after re-arming.
type epollPoller struct {
	loop   *Loop
	epfd   int
	wakeR  int // pipe read end, registered with token 0
	wakeW  int
	closed atomic.Bool
}

const epollEvents = syscall.EPOLLIN | syscall.EPOLLRDHUP | syscall.EPOLLONESHOT

func newPoller(l *Loop) (poller, error) {
	epfd, err := syscall.EpollCreate1(syscall.EPOLL_CLOEXEC)
	if err != nil {
		return nil, err
	}
	var p [2]int
	if err := syscall.Pipe2(p[:], syscall.O_NONBLOCK|syscall.O_CLOEXEC); err != nil {
		syscall.Close(epfd)
		return nil, err
	}
	ep := &epollPoller{loop: l, epfd: epfd, wakeR: p[0], wakeW: p[1]}
	// The wake pipe carries token 0 (never assigned to a registration)
	// and stays level-triggered so a pending shutdown byte keeps firing.
	ev := syscall.EpollEvent{Events: syscall.EPOLLIN}
	ev.Fd = 0
	if err := syscall.EpollCtl(epfd, syscall.EPOLL_CTL_ADD, ep.wakeR, &ev); err != nil {
		ep.closeFDs()
		return nil, err
	}
	return ep, nil
}

// ctl runs one epoll_ctl op against the registration's fd under the
// RawConn's fd lock, so the fd cannot be closed and reused mid-call.
func (p *epollPoller) ctl(r *Reg, op int) error {
	var opErr error
	err := r.rc.Control(func(fd uintptr) {
		ev := syscall.EpollEvent{Events: epollEvents}
		ev.Fd = int32(r.token)
		opErr = syscall.EpollCtl(p.epfd, op, int(fd), &ev)
	})
	if err != nil {
		return err
	}
	return opErr
}

func (p *epollPoller) add(r *Reg) error { return p.ctl(r, syscall.EPOLL_CTL_ADD) }

func (p *epollPoller) arm(r *Reg) error { return p.ctl(r, syscall.EPOLL_CTL_MOD) }

func (p *epollPoller) del(r *Reg) {
	// Best-effort: closing the fd deregisters it anyway; this only
	// matters when the conn outlives the registration.
	_ = r.rc.Control(func(fd uintptr) {
		_ = syscall.EpollCtl(p.epfd, syscall.EPOLL_CTL_DEL, int(fd), nil)
	})
}

func (p *epollPoller) run() {
	events := make([]syscall.EpollEvent, 128)
	for {
		n, err := syscall.EpollWait(p.epfd, events, -1)
		if err == syscall.EINTR {
			continue
		}
		if p.closed.Load() {
			p.closeFDs()
			return
		}
		if err != nil {
			// Exceptional (EBADF/EFAULT cannot arise from this loop);
			// leave the fds alone so a late close() cannot write into a
			// recycled descriptor.
			return
		}
		for i := 0; i < n; i++ {
			token := uint32(events[i].Fd)
			if token == 0 { // wake pipe rung by close()
				continue
			}
			p.loop.deliver(token)
		}
	}
}

func (p *epollPoller) close() {
	if p.closed.CompareAndSwap(false, true) {
		var one = [1]byte{1}
		_, _ = syscall.Write(p.wakeW, one[:])
	}
}

func (p *epollPoller) closeFDs() {
	syscall.Close(p.epfd)
	syscall.Close(p.wakeR)
	syscall.Close(p.wakeW)
}
