//go:build !unix

package netloop

import (
	"errors"
	"syscall"
)

// ErrUnsupported reports that this platform has no readiness backend;
// callers fall back to goroutine-per-connection pumps.
var ErrUnsupported = errors.New("netloop: no readiness backend on this platform")

func newPoller(l *Loop) (poller, error) { return nil, ErrUnsupported }

// RawRead is unreachable without a poller backend; it reports the
// connection closed so any accidental caller detaches immediately.
func RawRead(rc syscall.RawConn, buf []byte) (n int, again, closed bool) { return 0, false, true }
