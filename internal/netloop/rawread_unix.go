//go:build unix

package netloop

import "syscall"

// RawRead performs one non-blocking read on rc into buf. Socket fds in
// Go are already O_NONBLOCK, so the callback returns true immediately —
// the runtime never parks the goroutine. Returns the bytes read, plus:
//
//   - again: nothing available right now (EAGAIN/EINTR) — re-arm;
//   - closed: EOF or a fatal error (including a concurrently closed fd)
//     — the connection is finished.
func RawRead(rc syscall.RawConn, buf []byte) (n int, again, closed bool) {
	var rn int
	var rerr error
	cerr := rc.Read(func(fd uintptr) bool {
		rn, rerr = syscall.Read(int(fd), buf)
		return true
	})
	if cerr != nil {
		return 0, false, true
	}
	switch rerr {
	case nil:
		if rn <= 0 {
			return 0, false, true // EOF
		}
		return rn, false, false
	case syscall.EAGAIN, syscall.EINTR:
		return 0, true, false
	default:
		return 0, false, true
	}
}
