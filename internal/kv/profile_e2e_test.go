package kv

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"

	"github.com/eactors/eactors-go/internal/ecrypto"
	"github.com/eactors/eactors-go/internal/profile"
	"github.com/eactors/eactors-go/internal/telemetry"
)

// TestProfiledKVEndToEnd is the cost-accounting acceptance run: against
// the trusted, encrypted KV deployment it asserts that the continuous
// profile layer observes the real traffic shape — a connected
// FRONTEND → KVSTORE communication edge, crossings and seal/open work
// charged to the enclaved store actor — and that the same model survives
// a trip through the versioned JSONL codec and renders in eactors-top's
// polling path against a live telemetry endpoint. Clients run while the
// profile is snapshotted, so under -race this doubles as the concurrent
// collector-read test.
func TestProfiledKVEndToEnd(t *testing.T) {
	var encKey [ecrypto.KeySize]byte
	for i := range encKey {
		encKey[i] = byte(i + 1)
	}
	srv, err := Start(Options{
		Shards:        2,
		Trusted:       true,
		EncryptionKey: &encKey,
		StoreSize:     1 << 20,
		Telemetry:     true,
		Trace:         true,
		// Sample every drain so mailbox-dwell spans fold in quickly.
		TraceSampleEvery:   1,
		Profile:            true,
		ProfileSampleEvery: 4,
	})
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer srv.Stop()
	if !srv.rt.ProfileEnabled() {
		t.Fatal("ProfileEnabled() = false with Options.Profile set")
	}
	if srv.ProfileSource() == nil {
		t.Fatal("ProfileSource() = nil with Options.Profile set")
	}

	client, err := Dial(srv.Addr(), 2*time.Second)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer client.Close()
	for i := 0; i < 64; i++ {
		k := []byte(fmt.Sprintf("key-%d", i))
		if err := client.Set(k, append([]byte("val:"), k...)); err != nil {
			t.Fatalf("Set %q: %v", k, err)
		}
		if v, ok, err := client.Get(k); err != nil || !ok || !bytes.HasPrefix(v, []byte("val:")) {
			t.Fatalf("Get %q = %q, %v, %v", k, v, ok, err)
		}
	}

	// The workers run asynchronously, so poll the profile until the
	// traffic shows up (it must — the Gets above were answered).
	var m profile.Model
	deadline := time.Now().Add(15 * time.Second)
	for {
		m = srv.CostProfile()
		if profiledStore(t, m, false) != nil && frontendEdge(m) != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no profiled frontend->kvstore traffic after 15s:\n%+v", m)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The enclaved store actor must carry the boundary costs: crossings
	// for entering its enclave, and seal/open work for the encrypted req
	// channel it answers on.
	store := profiledStore(t, m, true)
	if store.Crossings == 0 {
		t.Errorf("enclaved %s: Crossings = 0, want > 0", store.Name)
	}
	if store.SealOps == 0 && store.OpenOps == 0 {
		t.Errorf("enclaved %s: no seal/open ops charged (seal=%d open=%d)",
			store.Name, store.SealOps, store.OpenOps)
	}
	if store.Invocations == 0 || store.MsgsRecv == 0 {
		t.Errorf("enclaved %s: invocations=%d msgs_recv=%d, want both > 0",
			store.Name, store.Invocations, store.MsgsRecv)
	}
	edge := frontendEdge(m)
	if edge.Msgs == 0 || edge.Bytes == 0 {
		t.Errorf("edge %s->%s (%s): msgs=%d bytes=%d, want both > 0",
			edge.Src, edge.Dst, edge.Channel, edge.Msgs, edge.Bytes)
	}

	// The model must survive the versioned JSONL codec byte-for-byte.
	var rec bytes.Buffer
	if err := m.Encode(&rec); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := profile.Decode(rec.Bytes())
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Fatalf("JSONL round-trip mismatch:\n got %+v\nwant %+v", got, m)
	}

	// One polling cycle of the eactors-top path: serve the profile over
	// the real telemetry endpoint, fetch it back, render the table.
	bound, stop, err := telemetry.Serve("127.0.0.1:0", srv.Telemetry(),
		telemetry.WithProfile(srv.ProfileSource()))
	if err != nil {
		t.Fatalf("telemetry.Serve: %v", err)
	}
	defer stop()
	fetched, raw, err := profile.Fetch(bound)
	if err != nil {
		t.Fatalf("profile.Fetch(%s): %v", bound, err)
	}
	if len(raw) == 0 || len(fetched.Actors) == 0 {
		t.Fatalf("Fetch(%s) returned an empty profile", bound)
	}
	var table bytes.Buffer
	profile.RenderTop(&table, profile.Model{}, fetched, 0)
	out := table.String()
	for _, want := range []string{"frontend", "kvstore-0", "hottest edges"} {
		if !strings.Contains(out, want) {
			t.Errorf("eactors-top render missing %q:\n%s", want, out)
		}
	}
}

// profiledStore returns the first enclaved kvstore actor that has
// received traffic, or nil. With require set it fails the test instead
// of returning nil.
func profiledStore(t *testing.T, m profile.Model, require bool) *profile.ActorCost {
	t.Helper()
	for i := range m.Actors {
		a := &m.Actors[i]
		if strings.HasPrefix(a.Name, "kvstore-") && a.Enclave != "" && a.MsgsRecv > 0 {
			return a
		}
	}
	if require {
		t.Fatalf("no enclaved kvstore actor with traffic in %+v", m.Actors)
	}
	return nil
}

// frontendEdge returns the frontend→kvstore edge with traffic, or nil.
func frontendEdge(m profile.Model) *profile.EdgeCost {
	for i := range m.Edges {
		e := &m.Edges[i]
		if e.Src == "frontend" && strings.HasPrefix(e.Dst, "kvstore-") && e.Msgs > 0 {
			return e
		}
	}
	return nil
}
