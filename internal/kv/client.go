package kv

import (
	"errors"
	"fmt"
	"net"
	"time"
)

// ErrTimeout reports that a response did not arrive within the client's
// deadline. The operation may or may not have executed — the protocol
// is at-least-once, and SET/DEL are idempotent, so callers retry.
var ErrTimeout = errors.New("kv: request timed out")

// Client is a synchronous KV protocol client over one TCP connection.
// It is not safe for concurrent use; open one client per goroutine.
type Client struct {
	conn    net.Conn
	scanner RespScanner
	nextID  uint32
	timeout time.Duration
	scratch []byte
	readBuf []byte
}

// Dial connects to a KV server. timeout bounds each call (0 means
// 5 seconds).
func Dial(addr string, timeout time.Duration) (*Client, error) {
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn, timeout: timeout, readBuf: make([]byte, 64*1024)}, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// Get looks key up; ok is false when the key is absent.
func (c *Client) Get(key []byte) (val []byte, ok bool, err error) {
	resp, err := c.call(Request{Op: OpGet, Key: key})
	if err != nil {
		return nil, false, err
	}
	switch resp.Status {
	case StatusValue:
		return append([]byte(nil), resp.Val...), true, nil
	case StatusNotFound:
		return nil, false, nil
	default:
		return nil, false, fmt.Errorf("kv: server error: %s", resp.Val)
	}
}

// Set stores key → val.
func (c *Client) Set(key, val []byte) error {
	resp, err := c.call(Request{Op: OpSet, Key: key, Val: val})
	if err != nil {
		return err
	}
	if resp.Status != StatusOK {
		return fmt.Errorf("kv: server error: %s", resp.Val)
	}
	return nil
}

// Del removes key; found reports whether it existed.
func (c *Client) Del(key []byte) (found bool, err error) {
	resp, err := c.call(Request{Op: OpDel, Key: key})
	if err != nil {
		return false, err
	}
	switch resp.Status {
	case StatusOK:
		return true, nil
	case StatusNotFound:
		return false, nil
	default:
		return false, fmt.Errorf("kv: server error: %s", resp.Val)
	}
}

// call sends one request and waits for its response, skipping stale
// responses left over from timed-out predecessors.
func (c *Client) call(req Request) (Response, error) {
	c.nextID++
	req.ID = c.nextID
	frame, err := req.AppendTo(c.scratch[:0])
	if err != nil {
		return Response{}, err
	}
	c.scratch = frame
	deadline := time.Now().Add(c.timeout)
	if err := c.conn.SetWriteDeadline(deadline); err != nil {
		return Response{}, err
	}
	if _, err := c.conn.Write(frame); err != nil {
		return Response{}, err
	}
	for {
		// A predecessor's late response may already be buffered.
		for {
			resp, ok := c.scanner.Next()
			if !ok {
				break
			}
			if resp.ID == req.ID {
				return resp, nil
			}
		}
		if time.Now().After(deadline) {
			return Response{}, ErrTimeout
		}
		if err := c.conn.SetReadDeadline(deadline); err != nil {
			return Response{}, err
		}
		n, err := c.conn.Read(c.readBuf)
		if n > 0 {
			c.scanner.Feed(c.readBuf[:n])
		}
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				return Response{}, ErrTimeout
			}
			return Response{}, err
		}
	}
}
