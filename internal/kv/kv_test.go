package kv

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"github.com/eactors/eactors-go/internal/ecrypto"
	"github.com/eactors/eactors-go/internal/pos"
	"github.com/eactors/eactors-go/internal/sgx"
)

func TestRequestRoundTrip(t *testing.T) {
	r := Request{Op: OpSet, ID: 7, Key: []byte("user:1"), Val: []byte("alice")}
	buf, err := r.AppendTo(nil)
	if err != nil {
		t.Fatal(err)
	}
	got, n, err := ParseRequest(buf)
	if err != nil || n != len(buf) {
		t.Fatalf("ParseRequest n=%d err=%v", n, err)
	}
	if got.Op != r.Op || got.ID != r.ID || !bytes.Equal(got.Key, r.Key) || !bytes.Equal(got.Val, r.Val) {
		t.Fatalf("roundtrip = %+v", got)
	}
	if _, _, err := ParseRequest(buf[:5]); err != ErrShortFrame {
		t.Fatalf("short parse err = %v", err)
	}
	if _, err := (Request{Key: make([]byte, MaxKey+1)}).AppendTo(nil); err == nil {
		t.Fatal("oversized key accepted")
	}
}

func TestResponseRoundTrip(t *testing.T) {
	f := func(status uint8, id uint32, val []byte) bool {
		if len(val) > MaxVal {
			val = val[:MaxVal]
		}
		r := Response{Status: Status(status), ID: id, Val: val}
		buf, err := r.AppendTo(nil)
		if err != nil {
			return false
		}
		got, n, err := ParseResponse(buf)
		return err == nil && n == len(buf) && got.Status == r.Status &&
			got.ID == r.ID && bytes.Equal(got.Val, r.Val)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestReqScannerReassembly(t *testing.T) {
	// Frames split and coalesced arbitrarily must come out whole.
	var stream []byte
	want := []Request{}
	for i := 0; i < 20; i++ {
		r := Request{Op: OpSet, ID: uint32(i), Key: []byte(fmt.Sprintf("k%d", i)), Val: bytes.Repeat([]byte{byte(i)}, i*7)}
		buf, err := r.AppendTo(nil)
		if err != nil {
			t.Fatal(err)
		}
		stream = append(stream, buf...)
		want = append(want, r)
	}
	var sc ReqScanner
	got := []Request{}
	for i := 0; i < len(stream); i += 3 {
		end := i + 3
		if end > len(stream) {
			end = len(stream)
		}
		sc.Feed(stream[i:end])
		for {
			req, raw, ok, err := sc.NextFrame()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
			if len(raw) == 0 {
				t.Fatal("empty raw frame")
			}
			got = append(got, Request{Op: req.Op, ID: req.ID,
				Key: append([]byte(nil), req.Key...), Val: append([]byte(nil), req.Val...)})
		}
	}
	if len(got) != len(want) {
		t.Fatalf("reassembled %d of %d frames", len(got), len(want))
	}
	for i := range want {
		if got[i].ID != want[i].ID || !bytes.Equal(got[i].Key, want[i].Key) || !bytes.Equal(got[i].Val, want[i].Val) {
			t.Fatalf("frame %d = %+v", i, got[i])
		}
	}
	// An unknown opcode kills the stream.
	var bad ReqScanner
	frame, _ := Request{Op: OpGet, ID: 1, Key: []byte("k")}.AppendTo(nil)
	frame[0] = 99
	bad.Feed(frame)
	if _, _, _, err := bad.NextFrame(); err == nil {
		t.Fatal("unknown opcode accepted")
	}
}

func startTestServer(t *testing.T, opts Options) *Server {
	t.Helper()
	if opts.Platform == nil {
		opts.Platform = sgx.NewPlatform(sgx.WithCostModel(sgx.ZeroCostModel()))
	}
	srv, err := Start(opts)
	if err != nil {
		t.Fatalf("kv.Start: %v", err)
	}
	t.Cleanup(srv.Stop)
	return srv
}

func testClient(t *testing.T, srv *Server) *Client {
	t.Helper()
	c, err := Dial(srv.Addr(), 10*time.Second)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return c
}

func TestKVEndToEnd(t *testing.T) {
	srv := startTestServer(t, Options{Shards: 2, Trusted: true})
	c := testClient(t, srv)

	if _, ok, err := c.Get([]byte("missing")); err != nil || ok {
		t.Fatalf("Get(missing) = ok=%v err=%v", ok, err)
	}
	if err := c.Set([]byte("user:1"), []byte("alice")); err != nil {
		t.Fatalf("Set: %v", err)
	}
	val, ok, err := c.Get([]byte("user:1"))
	if err != nil || !ok || string(val) != "alice" {
		t.Fatalf("Get = %q ok=%v err=%v", val, ok, err)
	}
	found, err := c.Del([]byte("user:1"))
	if err != nil || !found {
		t.Fatalf("Del = %v, %v", found, err)
	}
	if found, err := c.Del([]byte("user:1")); err != nil || found {
		t.Fatalf("second Del = %v, %v", found, err)
	}
	st := srv.Stats()
	if st.Gets != 2 || st.Sets != 1 || st.Dels != 2 || st.NotFound != 2 {
		t.Fatalf("Stats = %+v", st)
	}
}

func TestKVManyKeysAcrossShards(t *testing.T) {
	srv := startTestServer(t, Options{Shards: 4})
	c := testClient(t, srv)
	for i := 0; i < 200; i++ {
		k := []byte(fmt.Sprintf("key-%d", i))
		if err := c.Set(k, []byte(fmt.Sprintf("val-%d", i))); err != nil {
			t.Fatalf("Set(%s): %v", k, err)
		}
	}
	for i := 0; i < 200; i++ {
		k := []byte(fmt.Sprintf("key-%d", i))
		val, ok, err := c.Get(k)
		if err != nil || !ok || string(val) != fmt.Sprintf("val-%d", i) {
			t.Fatalf("Get(%s) = %q ok=%v err=%v", k, val, ok, err)
		}
	}
}

// TestKVConcurrentClients is a -race regression: many connections
// hammer the service at once, across all shards.
func TestKVConcurrentClients(t *testing.T) {
	srv := startTestServer(t, Options{Shards: 4, Trusted: true})
	const clients = 6
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c, err := Dial(srv.Addr(), 10*time.Second)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for i := 0; i < 60; i++ {
				k := []byte(fmt.Sprintf("c%d-k%d", id, i%10))
				v := []byte(fmt.Sprintf("v%d", i))
				if err := c.Set(k, v); err != nil {
					errs <- fmt.Errorf("client %d Set: %w", id, err)
					return
				}
				got, ok, err := c.Get(k)
				if err != nil || !ok || !bytes.Equal(got, v) {
					errs <- fmt.Errorf("client %d Get = %q ok=%v err=%v", id, got, ok, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestKVPersistenceAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	key := [ecrypto.KeySize]byte{1, 2, 3, 4}
	srv := startTestServer(t, Options{Shards: 2, Dir: dir, EncryptionKey: &key})
	c := testClient(t, srv)
	for i := 0; i < 32; i++ {
		if err := c.Set([]byte(fmt.Sprintf("p%d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	_ = c.Close()
	srv.Stop() // final write-back flush

	re := startTestServer(t, Options{Shards: 2, Dir: dir, EncryptionKey: &key})
	c2 := testClient(t, re)
	for i := 0; i < 32; i++ {
		val, ok, err := c2.Get([]byte(fmt.Sprintf("p%d", i)))
		if err != nil || !ok || string(val) != fmt.Sprintf("v%d", i) {
			t.Fatalf("Get(p%d) after restart = %q ok=%v err=%v", i, val, ok, err)
		}
	}
}

func TestKVStoreShardMismatch(t *testing.T) {
	store, err := pos.OpenSharded(pos.ShardedOptions{Shards: 4, SizeBytes: 256 * 1024})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	if _, err := Start(Options{Shards: 2, Store: store}); err == nil {
		t.Fatal("shard mismatch accepted")
	}
}
