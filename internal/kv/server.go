package kv

import (
	"fmt"
	"sync/atomic"
	"time"

	"github.com/eactors/eactors-go/internal/core"
	"github.com/eactors/eactors-go/internal/ecrypto"
	"github.com/eactors/eactors-go/internal/faults"
	"github.com/eactors/eactors-go/internal/netactors"
	"github.com/eactors/eactors-go/internal/netloop"
	"github.com/eactors/eactors-go/internal/pos"
	"github.com/eactors/eactors-go/internal/profile"
	"github.com/eactors/eactors-go/internal/sgx"
	"github.com/eactors/eactors-go/internal/telemetry"
	"github.com/eactors/eactors-go/internal/trace"
	"github.com/eactors/eactors-go/internal/transport"
)

// Options configures the KV service deployment. Like the XMPP server,
// the deployment (shard count, trust, enclave layout) is entirely
// separate from the service logic.
type Options struct {
	// ListenAddr is the TCP listen address (default "127.0.0.1:0").
	ListenAddr string
	// Shards is the number of KVSTORE eactors and POS shards (each
	// KVSTORE has key affinity with exactly one POS shard).
	Shards int
	// Trusted places each KVSTORE eactor inside its own enclave; the
	// FRONTEND-to-KVSTORE channels then encrypt automatically.
	Trusted bool
	// Switchless services the encrypted FRONTEND-to-KVSTORE channels
	// with proxy workers (core.SwitchlessConfig) instead of blocking
	// per-message crossings, and relays POS write-back flushes through
	// the proxies as switchless OCalls. No effect unless Trusted.
	Switchless bool
	// Platform supplies the SGX simulation; nil creates a default one.
	Platform *sgx.Platform

	// NetLoop multiplexes connection reads through an event-driven
	// readiness loop (internal/netloop) instead of one pump goroutine
	// per connection: idle connections cost no goroutine and the READER
	// drains only sockets with pending bytes. Disabled (zero) keeps the
	// legacy per-connection pumps.
	NetLoop netloop.Config

	// SessionWindow is the per-session receive-buffer advertisement for
	// pipelined (framed) clients: how many request bytes one session may
	// keep in flight before the transport window throttles it
	// (transport.DefaultWindow when zero). Legacy one-at-a-time clients
	// are unaffected.
	SessionWindow int
	// ReplayWindow is the per-session response-cache depth the KVSTOREs
	// keep for pipelined resend dedup — it must exceed the deepest
	// client pipeline (transport.DefaultReplayWindow when zero).
	ReplayWindow int
	// DisablePipelining rejects the framed transport entirely, making
	// the FRONTEND behave like a pre-transport legacy server (framed
	// hellos are dropped as unknown opcodes, so new clients downgrade).
	// Interop escape hatch; also exercised by the downgrade tests.
	DisablePipelining bool

	// Store, when non-nil, is used instead of opening one (the server
	// then does not close it). Its shard count must equal Shards.
	Store *pos.ShardedStore
	// Dir is the sharded store's directory ("" = volatile).
	Dir string
	// StoreSize is the per-shard store size (1 MiB when zero).
	StoreSize int
	// EncryptionKey, when non-nil, opens the store in encrypted mode:
	// every record sealed at rest, key lookups by deterministic
	// ciphertext (Section 4.1).
	EncryptionKey *[ecrypto.KeySize]byte
	// FlushInterval is the write-back flush period (100ms when zero;
	// negative leaves flushing to the per-burst Sync in the KVSTORE).
	FlushInterval time.Duration

	// PoolNodes / NodePayload size the runtime's node pool.
	PoolNodes   int
	NodePayload int
	// MaxBatch bounds per-invocation request processing per KVSTORE.
	MaxBatch int
	// Telemetry enables the runtime observability subsystem.
	Telemetry bool
	// Trace enables sampled causal tracing (independent of Telemetry).
	Trace bool
	// TraceSampleEvery roots one trace per this many inbound bursts
	// (trace.DefaultSampleEvery when zero).
	TraceSampleEvery int
	// Profile enables per-actor cost accounting (independent of
	// Telemetry and Trace); see Server.CostProfile.
	Profile bool
	// ProfileSampleEvery decimates the profile's seal/open clock reads
	// (profile.DefaultSampleEvery when zero).
	ProfileSampleEvery int
	// Faults arms the runtime's deterministic fault injector; nil in
	// production.
	Faults *faults.Injector
}

// Stats are the service counters.
type Stats struct {
	// Gets/Sets/Dels count executed operations by type.
	Gets, Sets, Dels uint64
	// NotFound counts GET/DEL misses.
	NotFound uint64
	// Errors counts StatusErr responses.
	Errors uint64
	// Sessions counts framed (pipelined) session handshakes accepted.
	Sessions uint64
	// Pipelined counts operations that arrived on framed sessions.
	Pipelined uint64
	// Replayed counts resends answered from the replay cache without
	// re-executing (the exactly-once dedup hits).
	Replayed uint64
}

// Server is a running KV service.
type Server struct {
	rt        *core.Runtime
	sys       *netactors.System
	store     *pos.ShardedStore
	ownsStore bool
	addr      string

	gets, sets, dels, notFound, errs atomic.Uint64
	sessions, pipelined, replayed    atomic.Uint64
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.addr }

// Runtime returns the underlying EActors runtime.
func (s *Server) Runtime() *core.Runtime { return s.rt }

// Store returns the sharded POS backing the service.
func (s *Server) Store() *pos.ShardedStore { return s.store }

// Telemetry returns the runtime's telemetry registry, or nil when
// Options.Telemetry was not set.
func (s *Server) Telemetry() *telemetry.Registry { return s.rt.Telemetry() }

// Tracer returns the runtime's causal tracer, or nil when Options.Trace
// was not set.
func (s *Server) Tracer() *trace.Tracer { return s.rt.Tracer() }

// CostProfile captures the runtime's per-actor cost-model snapshot
// (empty when Options.Profile was not set).
func (s *Server) CostProfile() profile.Model { return s.rt.CostProfile() }

// ProfileSource returns the snapshot source for telemetry.WithProfile,
// or nil when Options.Profile was not set — nil keeps /debug/profile
// unmounted, so callers can pass it unconditionally.
func (s *Server) ProfileSource() func() profile.Model {
	if !s.rt.ProfileEnabled() {
		return nil
	}
	return s.rt.CostProfile
}

// Stats returns a snapshot of the service counters.
func (s *Server) Stats() Stats {
	return Stats{
		Gets: s.gets.Load(), Sets: s.sets.Load(), Dels: s.dels.Load(),
		NotFound: s.notFound.Load(), Errors: s.errs.Load(),
		Sessions: s.sessions.Load(), Pipelined: s.pipelined.Load(),
		Replayed: s.replayed.Load(),
	}
}

// Stop shuts the service down: runtime first (no more requests), then
// sockets, then the store (final write-back flush).
func (s *Server) Stop() {
	s.rt.Stop()
	s.sys.Shutdown()
	if s.ownsStore {
		_ = s.store.Close()
	}
}

// Start deploys and launches the service, blocking until the listener
// is bound.
func Start(opts Options) (*Server, error) {
	if opts.ListenAddr == "" {
		opts.ListenAddr = "127.0.0.1:0"
	}
	if opts.Shards <= 0 {
		opts.Shards = pos.DefaultShards
	}
	if opts.MaxBatch <= 0 {
		opts.MaxBatch = 32
	}
	if opts.StoreSize <= 0 {
		opts.StoreSize = 1 << 20
	}
	if opts.FlushInterval == 0 {
		opts.FlushInterval = 100 * time.Millisecond
	}
	if opts.SessionWindow <= 0 {
		opts.SessionWindow = transport.DefaultWindow
	}
	if opts.ReplayWindow <= 0 {
		opts.ReplayWindow = transport.DefaultReplayWindow
	}
	platform := opts.Platform
	if platform == nil {
		platform = sgx.NewPlatform()
	}

	sys, err := netactors.NewSystemNetLoop(opts.NetLoop)
	if err != nil {
		return nil, fmt.Errorf("kv: netloop: %w", err)
	}
	srv := &Server{sys: sys}
	if opts.Store != nil {
		if opts.Store.Shards() != opts.Shards {
			return nil, fmt.Errorf("kv: store has %d shards, deployment wants %d", opts.Store.Shards(), opts.Shards)
		}
		srv.store = opts.Store
	} else {
		flush := opts.FlushInterval
		if flush < 0 {
			flush = 0
		}
		store, err := pos.OpenSharded(pos.ShardedOptions{
			Shards:        opts.Shards,
			Dir:           opts.Dir,
			SizeBytes:     opts.StoreSize,
			EncryptionKey: opts.EncryptionKey,
			FlushInterval: flush,
		})
		if err != nil {
			return nil, err
		}
		srv.store = store
		srv.ownsStore = true
	}
	if opts.Faults != nil {
		srv.store.AttachFaults(opts.Faults)
	}

	cfg, addrCh := srv.buildConfig(opts)
	rt, err := core.NewRuntime(platform, cfg)
	if err != nil {
		if srv.ownsStore {
			_ = srv.store.Close()
		}
		return nil, err
	}
	srv.rt = rt
	if reg := rt.Telemetry(); reg != nil {
		srv.sys.AttachTelemetry(reg)
		srv.store.AttachTelemetry(reg)
		reg.CounterFunc("eactors_kv_gets", "KV GET operations served", srv.gets.Load)
		reg.CounterFunc("eactors_kv_sets", "KV SET operations served", srv.sets.Load)
		reg.CounterFunc("eactors_kv_dels", "KV DEL operations served", srv.dels.Load)
		reg.CounterFunc("eactors_kv_not_found", "KV GET/DEL misses", srv.notFound.Load)
		reg.CounterFunc("eactors_kv_errors", "KV error responses", srv.errs.Load)
		reg.CounterFunc("eactors_kv_sessions", "KV pipelined session handshakes", srv.sessions.Load)
		reg.CounterFunc("eactors_kv_pipelined", "KV operations on framed sessions", srv.pipelined.Load)
		reg.CounterFunc("eactors_kv_replayed", "KV resends answered from the replay cache", srv.replayed.Load)
	}
	if err := rt.Start(); err != nil {
		srv.Stop()
		return nil, err
	}
	select {
	case addr := <-addrCh:
		srv.addr = addr
	case <-time.After(10 * time.Second):
		srv.Stop()
		return nil, fmt.Errorf("kv: listener did not come up on %s", opts.ListenAddr)
	}
	return srv, nil
}

// buildConfig assembles the deployment: worker 0 runs the FRONTEND,
// worker 1 the networking eactors, then one worker per KVSTORE.
func (srv *Server) buildConfig(opts Options) (core.Config, chan string) {
	shards := opts.Shards
	addrCh := make(chan string, 1)

	cfg := core.Config{
		PoolNodes:          opts.PoolNodes,
		NodePayload:        opts.NodePayload,
		Telemetry:          opts.Telemetry,
		Trace:              opts.Trace,
		TraceSampleEvery:   opts.TraceSampleEvery,
		Profile:            opts.Profile,
		ProfileSampleEvery: opts.ProfileSampleEvery,
		Faults:             opts.Faults,
		Switchless:         core.SwitchlessConfig{Enabled: opts.Switchless && opts.Trusted},
	}
	cfg.Workers = make([]core.WorkerSpec, 2+shards)
	frontWorker, netWorker := 0, 1
	storeWorker := func(i int) int { return 2 + i }

	// Enclave layout: one enclave per KVSTORE when trusted (a
	// compromised shard exposes only its slice of the key space — the
	// deployment flexibility argument of Section 2.1).
	storeEnclave := make([]string, shards)
	if opts.Trusted {
		for i := 0; i < shards; i++ {
			storeEnclave[i] = fmt.Sprintf("kv-%d", i)
			cfg.Enclaves = append(cfg.Enclaves, core.EnclaveSpec{Name: storeEnclave[i]})
		}
	}

	// Networking channels are plaintext by design (Section 5.1.2): their
	// untrusted endpoint could read them anyway. The req-i channels are
	// the trust boundary — they encrypt automatically when the KVSTORE
	// is enclaved.
	// fwrite is the FRONTEND's direct line to the WRITER for session
	// control frames (HELLO-ACK, GOAWAY) that no KVSTORE ever sees.
	cfg.Channels = append(cfg.Channels,
		core.ChannelSpec{Name: "open", A: "frontend", B: "opener", Plaintext: true},
		core.ChannelSpec{Name: "accept", A: "frontend", B: "accepter", Plaintext: true},
		core.ChannelSpec{Name: "read", A: "frontend", B: "reader", Plaintext: true, Capacity: 4096},
		core.ChannelSpec{Name: "close", A: "frontend", B: "closer", Plaintext: true},
		core.ChannelSpec{Name: "fwrite", A: "frontend", B: "writer", Plaintext: true, Capacity: 512},
	)
	writeChans := make([]string, 0, shards)
	for i := 0; i < shards; i++ {
		req := reqChannel(i)
		wr := writeChannel(i)
		cfg.Channels = append(cfg.Channels,
			core.ChannelSpec{Name: req, A: "frontend", B: storeName(i), Capacity: 1024},
			core.ChannelSpec{Name: wr, A: storeName(i), B: "writer", Plaintext: true, Capacity: 4096},
		)
		writeChans = append(writeChans, wr)
	}

	cfg.Actors = append(cfg.Actors,
		srv.sys.OpenerSpec("opener", netWorker, "open"),
		srv.sys.AccepterSpec("accepter", netWorker, "accept"),
		srv.sys.ReaderSpec("reader", netWorker, "read"),
		srv.sys.WriterSpec("writer", netWorker, append(writeChans, "fwrite")...),
		srv.sys.CloserSpec("closer", netWorker, "close"),
		srv.frontendSpec(opts, frontWorker, shards, addrCh),
	)
	for i := 0; i < shards; i++ {
		cfg.Actors = append(cfg.Actors, srv.storeSpec(opts, i, storeWorker(i), storeEnclave[i]))
	}
	return cfg, addrCh
}

func storeName(i int) string { return fmt.Sprintf("kvstore-%d", i) }
