package kv

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"

	"github.com/eactors/eactors-go/internal/ecrypto"
	"github.com/eactors/eactors-go/internal/pos"
	"github.com/eactors/eactors-go/internal/trace"
)

// chainKinds are the hop edges one fully-traced GET leaves behind on the
// trusted, encrypted deployment: the READER's socket drain roots the
// trace, the request dwells on the read channel, crosses the encrypted
// req channel into the KVSTORE's enclave (seal on the way in, crossing +
// open on the way out), runs the body and the store lookup, and the
// response leaves through the WRITER's socket write.
var chainKinds = []trace.Kind{
	trace.KindNetRead, trace.KindSend, trace.KindDwell, trace.KindSeal,
	trace.KindCrossing, trace.KindOpen, trace.KindInvoke, trace.KindPOSGet,
	trace.KindNetWrite,
}

// chromeDoc mirrors the Chrome trace-event JSON WriteChrome emits, so the
// export is schema-checked by decoding, not by string matching.
type chromeDoc struct {
	DisplayTimeUnit string        `json:"displayTimeUnit"`
	TraceEvents     []chromeEvent `json:"traceEvents"`
}

type chromeEvent struct {
	Name string  `json:"name"`
	Cat  string  `json:"cat"`
	Ph   string  `json:"ph"`
	Ts   float64 `json:"ts"`
	Dur  float64 `json:"dur"`
	Pid  int     `json:"pid"`
	Tid  int     `json:"tid"`
	Args struct {
		Trace  uint64 `json:"trace"`
		Span   uint32 `json:"span"`
		Parent uint32 `json:"parent"`
		Ref    uint32 `json:"ref"`
	} `json:"args"`
}

// findChain scans a snapshot for a trace that covers every chain kind,
// is fully parent-linked, and spans at least three workers (FRONTEND,
// the networking worker, and an enclaved KVSTORE). Partial chains from
// in-flight requests simply fail the check; callers poll.
func findChain(spans []trace.Span) (uint64, []trace.Span, bool) {
	byTrace := make(map[uint64][]trace.Span)
	for _, s := range spans {
		byTrace[s.TraceID] = append(byTrace[s.TraceID], s)
	}
	for id, group := range byTrace {
		kinds := make(map[trace.Kind]bool)
		ids := make(map[uint32]bool)
		workers := make(map[int32]bool)
		for _, s := range group {
			kinds[s.Kind] = true
			ids[s.ID] = true
			workers[s.Worker] = true
		}
		complete := true
		for _, k := range chainKinds {
			if !kinds[k] {
				complete = false
				break
			}
		}
		if !complete || len(workers) < 3 {
			continue
		}
		connected := true
		for _, s := range group {
			if s.Parent != 0 && !ids[s.Parent] {
				connected = false
				break
			}
		}
		if connected {
			return id, group, true
		}
	}
	return 0, nil, false
}

// TestTracedGetChain is the end-to-end acceptance check for the tracing
// subsystem: against the trusted, encrypted KV deployment (2 enclaves,
// 4 workers), a sampled GET must yield one connected causal trace
// spanning FRONTEND → KVSTORE (across the enclave boundary) → WRITER,
// and the trace must export as valid Chrome trace-event JSON. Clients
// hammer both shards while snapshot goroutines read the rings, so under
// -race this doubles as the concurrent span-recording test.
func TestTracedGetChain(t *testing.T) {
	var encKey [ecrypto.KeySize]byte
	for i := range encKey {
		encKey[i] = byte(i + 1)
	}
	srv, err := Start(Options{
		Shards:        2,
		Trusted:       true,
		EncryptionKey: &encKey,
		StoreSize:     1 << 20,
		Trace:         true,
		// Root a trace on every READER drain, so the first GET is sampled.
		TraceSampleEvery: 1,
	})
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer srv.Stop()
	if srv.Tracer() == nil {
		t.Fatal("Tracer() = nil with Options.Trace set")
	}

	// One key per shard, so both enclaved KVSTOREs record concurrently.
	keys := make([][]byte, 2)
	for i := 0; keys[0] == nil || keys[1] == nil; i++ {
		k := []byte(fmt.Sprintf("key-%d", i))
		if s := pos.ShardOf(k, 2); keys[s] == nil {
			keys[s] = k
		}
	}

	seed, err := Dial(srv.Addr(), 2*time.Second)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer seed.Close()
	for _, k := range keys {
		if err := seed.Set(k, append([]byte("val:"), k...)); err != nil {
			t.Fatalf("Set %q: %v", k, err)
		}
	}

	// Background load on both shards plus concurrent snapshot readers:
	// every worker's ring is written while three goroutines read them.
	done := make(chan struct{})
	var wg sync.WaitGroup
	for _, k := range keys {
		k := k
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := Dial(srv.Addr(), 2*time.Second)
			if err != nil {
				return
			}
			defer c.Close()
			for {
				select {
				case <-done:
					return
				default:
				}
				_, _, _ = c.Get(k)
				time.Sleep(time.Millisecond)
			}
		}()
	}
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				_ = srv.Tracer().Snapshot()
			}
		}()
	}

	var chain []trace.Span
	var traceID uint64
	deadline := time.Now().Add(15 * time.Second)
	for {
		if id, group, ok := findChain(srv.Tracer().Snapshot()); ok {
			traceID, chain = id, group
			break
		}
		if time.Now().After(deadline) {
			close(done)
			wg.Wait()
			t.Fatalf("no connected GET chain within deadline; kinds seen: %v", kindsSeen(srv.Tracer().Snapshot()))
		}
		if _, _, err := seed.Get(keys[0]); err != nil {
			t.Logf("Get: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(done)
	wg.Wait()

	// The full export must be valid JSON even while traffic was live.
	var full bytes.Buffer
	if err := srv.Tracer().WriteChrome(&full); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	if !json.Valid(full.Bytes()) {
		t.Fatalf("WriteChrome produced invalid JSON: %.200s", full.String())
	}

	// Schema check on the found chain exported alone: every span must
	// round-trip into a well-formed complete ("X") event.
	var buf bytes.Buffer
	if err := trace.WriteChromeSpans(&buf, chain, srv.Tracer()); err != nil {
		t.Fatalf("WriteChromeSpans: %v", err)
	}
	var doc chromeDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome export does not decode: %v\n%s", err, buf.String())
	}
	if doc.DisplayTimeUnit != "ns" {
		t.Errorf("displayTimeUnit = %q, want ns", doc.DisplayTimeUnit)
	}
	if len(doc.TraceEvents) != len(chain) {
		t.Errorf("exported %d events for %d spans", len(doc.TraceEvents), len(chain))
	}
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" || ev.Name == "" || ev.Cat == "" {
			t.Errorf("malformed event: %+v", ev)
		}
		if ev.Ts < 0 || ev.Dur < 0 || ev.Pid != 1 || ev.Tid < 0 {
			t.Errorf("implausible event fields: %+v", ev)
		}
		if ev.Args.Trace != traceID {
			t.Errorf("event carries trace %d, want %d", ev.Args.Trace, traceID)
		}
	}
}

// kindsSeen summarises a snapshot for failure messages: which span kinds
// each trace accumulated, newest trace IDs first.
func kindsSeen(spans []trace.Span) string {
	byTrace := make(map[uint64]map[trace.Kind]int)
	for _, s := range spans {
		if byTrace[s.TraceID] == nil {
			byTrace[s.TraceID] = make(map[trace.Kind]int)
		}
		byTrace[s.TraceID][s.Kind]++
	}
	ids := make([]uint64, 0, len(byTrace))
	for id := range byTrace {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] > ids[j] })
	if len(ids) > 8 {
		ids = ids[:8]
	}
	var b bytes.Buffer
	for _, id := range ids {
		fmt.Fprintf(&b, "\n  trace %d:", id)
		for k, n := range byTrace[id] {
			fmt.Fprintf(&b, " %s×%d", k, n)
		}
	}
	return b.String()
}
