package kv

import (
	"time"

	"github.com/eactors/eactors-go/internal/core"
	"github.com/eactors/eactors-go/internal/netactors"
	"github.com/eactors/eactors-go/internal/pos"
	"github.com/eactors/eactors-go/internal/trace"
)

// maxPendingFrames bounds each retry queue before frames are dropped
// (slow-receiver protection; clients retry at the protocol layer).
const maxPendingFrames = 4096

// stageFlushBatch caps an outbound stage before a mid-round flush.
const stageFlushBatch = 64

// maxBufferedStream bounds per-socket reassembly: a peer that streams
// bytes without ever completing a frame is cut off.
const maxBufferedStream = 1 << 20

// controlDeadline bounds SendRetry on control sends (watches, closes):
// losing one wedges or leaks a socket, so they persist through
// transient channel fullness.
func controlDeadline() time.Time { return time.Now().Add(50 * time.Millisecond) }

// frontendState is the FRONTEND eactor's private state.
type frontendState struct {
	phase     int
	listener  uint32
	socks     map[uint32]*ReqScanner
	scratch   []byte
	recvBufs  [][]byte
	recvLens  []int
	acceptBuf []byte
	// stages/pending batch the routed requests per KVSTORE shard: one
	// SendBatch per shard per round, pending spill under backpressure.
	stages  []core.SendStage
	pending [][][]byte
}

const (
	fphListen = iota
	fphAwaitListener
	fphServe
)

// frontendSpec builds the FRONTEND eactor: it owns the listener, the
// per-socket stream reassembly, and the key-affinity routing into the
// KVSTORE shards. It runs untrusted — request plaintext crosses it the
// same way it crossed the kernel's socket buffers — and the req
// channels re-protect everything at the first enclave boundary.
func (srv *Server) frontendSpec(opts Options, worker, shards int, addrCh chan<- string) core.Spec {
	nodePayload := opts.NodePayload
	if nodePayload <= 0 {
		nodePayload = core.DefaultNodePayload
	}
	maxForward := netactors.MaxData(nodePayload)
	st := &frontendState{
		socks:     make(map[uint32]*ReqScanner),
		acceptBuf: make([]byte, 4096),
		stages:    make([]core.SendStage, shards),
		pending:   make([][][]byte, shards),
	}
	st.recvBufs, st.recvLens = core.BatchBufs(opts.MaxBatch, nodePayload)
	var open, accept, read, closeCh *core.Endpoint
	reqChans := make([]*core.Endpoint, shards)
	return core.Spec{
		Name:   "frontend",
		Worker: worker,
		State:  st,
		Init: func(self *core.Self) error {
			open = self.MustChannel("open")
			accept = self.MustChannel("accept")
			read = self.MustChannel("read")
			closeCh = self.MustChannel("close")
			for i := 0; i < shards; i++ {
				reqChans[i] = self.MustChannel(reqChannel(i))
			}
			return nil
		},
		Body: func(self *core.Self) {
			switch st.phase {
			case fphListen:
				m, _ := (netactors.Msg{Type: netactors.MsgListen, Data: []byte(opts.ListenAddr)}).AppendTo(st.scratch[:0])
				st.scratch = m
				if open.Send(m) == nil {
					st.phase = fphAwaitListener
					self.Progress()
				}
			case fphAwaitListener:
				if st.listener == 0 {
					n, ok, err := open.Recv(st.acceptBuf)
					if err != nil || !ok {
						return
					}
					msg, err := netactors.ParseMsg(st.acceptBuf[:n])
					if err != nil || msg.Type != netactors.MsgOpenOK {
						return
					}
					st.listener = msg.Sock
					addrCh <- string(msg.Data)
				}
				// Re-enterable until the watch lands: an unwatched
				// listener accepts nobody.
				w, _ := (netactors.Msg{Type: netactors.MsgWatch, Sock: st.listener}).AppendTo(st.scratch[:0])
				st.scratch = w
				if accept.SendRetry(w, controlDeadline()) == nil {
					st.phase = fphServe
					self.Progress()
				}
			case fphServe:
				srv.frontendServe(self, st, accept, read, closeCh, reqChans, shards, maxForward)
			}
		},
	}
}

// frontendServe is one serve-phase invocation.
func (srv *Server) frontendServe(self *core.Self, st *frontendState,
	accept, read, closeCh *core.Endpoint, reqChans []*core.Endpoint, shards, maxForward int) {

	// Frames that hit a full req channel last round go first, in FIFO
	// order, so per-socket request order survives backpressure.
	for i := range st.pending {
		if len(st.pending[i]) == 0 {
			continue
		}
		n, _ := reqChans[i].SendBatch(st.pending[i]) //sendcheck:ok
		if n > 0 {
			self.Progress()
			st.pending[i] = st.pending[i][n:]
			if len(st.pending[i]) == 0 {
				st.pending[i] = nil
			}
		}
	}

	// New connections: watch their bytes.
	for {
		n, ok, err := accept.Recv(st.acceptBuf)
		if err != nil || !ok {
			break
		}
		msg, err := netactors.ParseMsg(st.acceptBuf[:n])
		if err != nil || msg.Type != netactors.MsgAccepted {
			continue
		}
		st.socks[msg.Sock] = &ReqScanner{}
		w, _ := (netactors.Msg{Type: netactors.MsgWatch, Sock: msg.Sock}).AppendTo(st.scratch[:0])
		st.scratch = w
		// An unwatched socket never produces bytes; persist the watch.
		_ = read.SendRetry(w, controlDeadline()) //sendcheck:ok
		self.Progress()
	}

	// Inbound stream chunks, one batched drain.
	n, _ := self.RecvBatch(read, st.recvBufs, st.recvLens)
	for i := 0; i < n; i++ {
		msg, err := netactors.ParseMsg(st.recvBufs[i][:st.recvLens[i]])
		if err != nil {
			continue
		}
		switch msg.Type {
		case netactors.MsgClosed:
			delete(st.socks, msg.Sock)
		case netactors.MsgData:
			sc, ok := st.socks[msg.Sock]
			if !ok {
				continue
			}
			sc.Feed(msg.Data)
			srv.frontendRoute(self, st, sc, msg.Sock, closeCh, reqChans, shards, maxForward)
		}
	}
	for i := range st.stages {
		srv.flushStage(st, i, reqChans[i])
	}
}

// frontendRoute forwards every complete request a socket has buffered
// to the KVSTORE shard owning its key.
func (srv *Server) frontendRoute(self *core.Self, st *frontendState, sc *ReqScanner,
	sock uint32, closeCh *core.Endpoint, reqChans []*core.Endpoint, shards, maxForward int) {

	drop := func() {
		delete(st.socks, sock)
		c, _ := (netactors.Msg{Type: netactors.MsgClose, Sock: sock}).AppendTo(nil)
		// A lost close leaks the socket; persist it.
		_ = closeCh.SendRetry(c, controlDeadline()) //sendcheck:ok
	}
	for {
		req, raw, ok, err := sc.NextFrame()
		if err != nil || sc.Buffered() > maxBufferedStream {
			drop() // lost framing or unbounded partial frame: cut the peer off
			return
		}
		if !ok {
			return
		}
		if len(raw) > maxForward {
			drop() // cannot cross the channel in one node
			return
		}
		self.Progress()
		shard := pos.ShardOf(req.Key, shards)
		m, err := (netactors.Msg{Type: netactors.MsgData, Sock: sock, Data: raw}).AppendTo(st.stages[shard].Slot())
		if err != nil {
			continue
		}
		st.stages[shard].Push(m)
		if st.stages[shard].Len() >= stageFlushBatch {
			srv.flushStage(st, shard, reqChans[shard])
		}
	}
}

// flushStage sends shard i's staged frames as one batch; under
// backpressure the remainder spills to the bounded pending queue (the
// stage's slots are reused next round, so spilled frames get copies).
func (srv *Server) flushStage(st *frontendState, i int, ep *core.Endpoint) {
	if st.stages[i].Len() == 0 {
		return
	}
	sent := 0
	if len(st.pending[i]) == 0 {
		sent, _ = ep.SendBatch(st.stages[i].Frames()) //sendcheck:ok
	}
	for _, f := range st.stages[i].Frames()[sent:] {
		if len(st.pending[i]) >= maxPendingFrames {
			break // slow-receiver protection: shed, clients retry
		}
		st.pending[i] = append(st.pending[i], append([]byte(nil), f...))
	}
	st.stages[i].Reset()
}

func reqChannel(i int) string   { return "req-" + itoa(i) }
func writeChannel(i int) string { return "write-" + itoa(i) }

// itoa avoids fmt on the hot path helpers (tiny shard counts only).
func itoa(i int) string {
	if i < 10 {
		return string([]byte{'0' + byte(i)})
	}
	return itoa(i/10) + itoa(i%10)
}

// storeState is one KVSTORE eactor's private state.
type storeState struct {
	recvBufs [][]byte
	recvLens []int
	respBuf  []byte
	stage    core.SendStage
	pending  [][]byte
}

// storeSpec builds KVSTORE eactor i: it executes the requests routed to
// it on the shared sharded store (key affinity means it only ever
// touches POS shard i, so the KVSTOREs scale without lock contention)
// and stages the responses back to the WRITER in one batch per round.
func (srv *Server) storeSpec(opts Options, i, worker int, enclave string) core.Spec {
	nodePayload := opts.NodePayload
	if nodePayload <= 0 {
		nodePayload = core.DefaultNodePayload
	}
	st := &storeState{}
	st.recvBufs, st.recvLens = core.BatchBufs(opts.MaxBatch, nodePayload)
	syncPerBurst := opts.FlushInterval < 0
	var req, write *core.Endpoint
	return core.Spec{
		Name:    storeName(i),
		Enclave: enclave,
		Worker:  worker,
		State:   st,
		Init: func(self *core.Self) error {
			req = self.MustChannel(reqChannel(i))
			write = self.MustChannel(writeChannel(i))
			return nil
		},
		Body: func(self *core.Self) {
			if len(st.pending) > 0 {
				n, _ := write.SendBatch(st.pending) //sendcheck:ok
				if n > 0 {
					self.Progress()
					st.pending = st.pending[n:]
					if len(st.pending) == 0 {
						st.pending = nil
					}
				}
			}
			n, _ := self.RecvBatch(req, st.recvBufs, st.recvLens)
			for j := 0; j < n; j++ {
				msg, err := netactors.ParseMsg(st.recvBufs[j][:st.recvLens[j]])
				if err != nil || msg.Type != netactors.MsgData {
					continue
				}
				request, _, err := ParseRequest(msg.Data)
				if err != nil {
					continue
				}
				self.Progress()
				resp := srv.execute(self, uint32(i), request)
				buf, err := resp.AppendTo(st.respBuf[:0])
				if err != nil {
					continue
				}
				st.respBuf = buf
				m, err := (netactors.Msg{Type: netactors.MsgData, Sock: msg.Sock, Data: buf}).AppendTo(st.stage.Slot())
				if err != nil {
					continue
				}
				st.stage.Push(m)
				if st.stage.Len() >= stageFlushBatch {
					srv.flushWrites(st, write)
				}
			}
			if n > 0 && syncPerBurst {
				// Per-burst write-back: one batched Sync amortised over
				// the whole drained burst. The flush is untrusted work
				// (file I/O); with switchless proxies configured it is
				// relayed as a switchless OCall so the enclaved KVSTORE
				// never crosses the boundary for it.
				tr := self.Tracer()
				start := tr.Begin(self.TraceScope())
				self.RunUntrusted(func() { _ = srv.store.Flush() })
				tr.End(self.WorkerID(), self.TraceScope(), trace.KindPOSSync, uint32(i), start)
			}
			srv.flushWrites(st, write)
		},
	}
}

// flushWrites sends the staged responses as one batch, spilling the
// remainder to the bounded pending queue under backpressure.
func (srv *Server) flushWrites(st *storeState, write *core.Endpoint) {
	if st.stage.Len() == 0 {
		return
	}
	sent := 0
	if len(st.pending) == 0 {
		sent, _ = write.SendBatch(st.stage.Frames()) //sendcheck:ok
	}
	for _, f := range st.stage.Frames()[sent:] {
		if len(st.pending) >= maxPendingFrames {
			break
		}
		st.pending = append(st.pending, append([]byte(nil), f...))
	}
	st.stage.Reset()
}

// execute runs one request against the sharded store. The POS spans it
// records (ref = the executing shard; key affinity makes that the only
// shard touched) time the store operation alone — mutations count as
// KindPOSSet whether they insert or delete.
func (srv *Server) execute(self *core.Self, shard uint32, req Request) Response {
	tr := self.Tracer()
	sc := self.TraceScope()
	switch req.Op {
	case OpGet:
		srv.gets.Add(1)
		start := tr.Begin(sc)
		val, ok, err := srv.store.Get(req.Key)
		tr.End(self.WorkerID(), sc, trace.KindPOSGet, shard, start)
		if err != nil {
			srv.errs.Add(1)
			return Response{Status: StatusErr, ID: req.ID, Val: []byte(err.Error())}
		}
		if !ok {
			srv.notFound.Add(1)
			return Response{Status: StatusNotFound, ID: req.ID}
		}
		return Response{Status: StatusValue, ID: req.ID, Val: val}
	case OpSet:
		srv.sets.Add(1)
		start := tr.Begin(sc)
		err := srv.store.Set(req.Key, req.Val)
		tr.End(self.WorkerID(), sc, trace.KindPOSSet, shard, start)
		if err != nil {
			srv.errs.Add(1)
			return Response{Status: StatusErr, ID: req.ID, Val: []byte(err.Error())}
		}
		return Response{Status: StatusOK, ID: req.ID}
	case OpDel:
		srv.dels.Add(1)
		start := tr.Begin(sc)
		found, err := srv.store.Delete(req.Key)
		tr.End(self.WorkerID(), sc, trace.KindPOSSet, shard, start)
		if err != nil {
			srv.errs.Add(1)
			return Response{Status: StatusErr, ID: req.ID, Val: []byte(err.Error())}
		}
		if !found {
			srv.notFound.Add(1)
			return Response{Status: StatusNotFound, ID: req.ID}
		}
		return Response{Status: StatusOK, ID: req.ID}
	default:
		srv.errs.Add(1)
		return Response{Status: StatusErr, ID: req.ID, Val: []byte("kv: unknown op")}
	}
}
