package kv

import (
	"time"

	"github.com/eactors/eactors-go/internal/core"
	"github.com/eactors/eactors-go/internal/netactors"
	"github.com/eactors/eactors-go/internal/pos"
	"github.com/eactors/eactors-go/internal/trace"
	"github.com/eactors/eactors-go/internal/transport"
)

// maxPendingFrames bounds each retry queue before frames are dropped
// (slow-receiver protection; clients retry at the protocol layer).
const maxPendingFrames = 4096

// stageFlushBatch caps an outbound stage before a mid-round flush.
const stageFlushBatch = 64

// maxBufferedStream bounds per-socket reassembly: a peer that streams
// bytes without ever completing a frame is cut off.
const maxBufferedStream = 1 << 20

// maxReplaySessions bounds the per-KVSTORE replay-state table; beyond
// it the oldest session's cache is evicted (its resends then read as
// fresh requests, which at-least-once semantics tolerate). Close
// notifications normally reclaim entries long before this trips.
const maxReplaySessions = 1024

// controlDeadline bounds SendRetry on control sends (watches, closes):
// losing one wedges or leaks a socket, so they persist through
// transient channel fullness.
func controlDeadline() time.Time { return time.Now().Add(50 * time.Millisecond) }

// Connection protocol modes, decided by the first byte a socket sends:
// legacy KV opcodes sit in 1..3, transport frame types in 0xE1+.
const (
	connModeUnknown = iota
	connModeLegacy
	connModeFramed
)

// connState is the FRONTEND's per-socket state: stream reassembly for
// whichever protocol the peer speaks, plus — for framed sessions — the
// handshake flag and the opaque replay-window horizon that preserves
// at-least-once semantics under deep pipelining (a resend must still
// land inside the KVSTOREs' dedup caches, so opaques that fall behind
// the horizon are a protocol violation and kill the session).
type connState struct {
	mode       int
	legacy     ReqScanner
	framed     transport.Scanner
	helloSeen  bool
	opaqueSeen bool
	maxOpaque  uint32
}

// frontendState is the FRONTEND eactor's private state.
type frontendState struct {
	phase     int
	listener  uint32
	socks     map[uint32]*connState
	scratch   []byte
	recvBufs  [][]byte
	recvLens  []int
	acceptBuf []byte
	// stages/pending batch the routed requests per KVSTORE shard: one
	// SendBatch per shard per round, pending spill under backpressure.
	stages  []core.SendStage
	pending [][][]byte
	// fwStage/fwPending batch session-control frames (HELLO-ACK,
	// GOAWAY) for the FRONTEND's direct fwrite line to the WRITER.
	fwStage   core.SendStage
	fwPending [][]byte
	frameBuf  []byte
}

const (
	fphListen = iota
	fphAwaitListener
	fphServe
)

// frontendSpec builds the FRONTEND eactor: it owns the listener, the
// per-socket stream reassembly (legacy one-request frames or the framed
// multiplexed transport), the session handshakes, and the key-affinity
// routing into the KVSTORE shards. It runs untrusted — request
// plaintext crosses it the same way it crossed the kernel's socket
// buffers — and the req channels re-protect everything at the first
// enclave boundary.
func (srv *Server) frontendSpec(opts Options, worker, shards int, addrCh chan<- string) core.Spec {
	nodePayload := opts.NodePayload
	if nodePayload <= 0 {
		nodePayload = core.DefaultNodePayload
	}
	maxForward := netactors.MaxData(nodePayload)
	st := &frontendState{
		socks:     make(map[uint32]*connState),
		acceptBuf: make([]byte, 4096),
		stages:    make([]core.SendStage, shards),
		pending:   make([][][]byte, shards),
	}
	st.recvBufs, st.recvLens = core.BatchBufs(opts.MaxBatch, nodePayload)
	var open, accept, read, closeCh, fwrite *core.Endpoint
	reqChans := make([]*core.Endpoint, shards)
	return core.Spec{
		Name:   "frontend",
		Worker: worker,
		State:  st,
		Init: func(self *core.Self) error {
			open = self.MustChannel("open")
			accept = self.MustChannel("accept")
			read = self.MustChannel("read")
			closeCh = self.MustChannel("close")
			fwrite = self.MustChannel("fwrite")
			for i := 0; i < shards; i++ {
				reqChans[i] = self.MustChannel(reqChannel(i))
			}
			return nil
		},
		Body: func(self *core.Self) {
			switch st.phase {
			case fphListen:
				m, _ := (netactors.Msg{Type: netactors.MsgListen, Data: []byte(opts.ListenAddr)}).AppendTo(st.scratch[:0])
				st.scratch = m
				if open.Send(m) == nil {
					st.phase = fphAwaitListener
					self.Progress()
				}
			case fphAwaitListener:
				if st.listener == 0 {
					n, ok, err := open.Recv(st.acceptBuf)
					if err != nil || !ok {
						return
					}
					msg, err := netactors.ParseMsg(st.acceptBuf[:n])
					if err != nil || msg.Type != netactors.MsgOpenOK {
						return
					}
					st.listener = msg.Sock
					addrCh <- string(msg.Data)
				}
				// Re-enterable until the watch lands: an unwatched
				// listener accepts nobody.
				w, _ := (netactors.Msg{Type: netactors.MsgWatch, Sock: st.listener}).AppendTo(st.scratch[:0])
				st.scratch = w
				if accept.SendRetry(w, controlDeadline()) == nil {
					st.phase = fphServe
					self.Progress()
				}
			case fphServe:
				srv.frontendServe(self, st, opts, accept, read, closeCh, fwrite, reqChans, shards, maxForward)
			}
		},
	}
}

// frontendServe is one serve-phase invocation.
func (srv *Server) frontendServe(self *core.Self, st *frontendState, opts Options,
	accept, read, closeCh, fwrite *core.Endpoint, reqChans []*core.Endpoint, shards, maxForward int) {

	// Frames that hit a full channel last round go first, in FIFO
	// order, so per-socket request order survives backpressure.
	for i := range st.pending {
		if len(st.pending[i]) == 0 {
			continue
		}
		n, _ := reqChans[i].SendBatch(st.pending[i]) //sendcheck:ok
		if n > 0 {
			self.Progress()
			st.pending[i] = st.pending[i][n:]
			if len(st.pending[i]) == 0 {
				st.pending[i] = nil
			}
		}
	}
	if len(st.fwPending) > 0 {
		n, _ := fwrite.SendBatch(st.fwPending) //sendcheck:ok
		if n > 0 {
			self.Progress()
			st.fwPending = st.fwPending[n:]
			if len(st.fwPending) == 0 {
				st.fwPending = nil
			}
		}
	}

	// New connections: watch their bytes.
	for {
		n, ok, err := accept.Recv(st.acceptBuf)
		if err != nil || !ok {
			break
		}
		msg, err := netactors.ParseMsg(st.acceptBuf[:n])
		if err != nil || msg.Type != netactors.MsgAccepted {
			continue
		}
		st.socks[msg.Sock] = &connState{}
		w, _ := (netactors.Msg{Type: netactors.MsgWatch, Sock: msg.Sock}).AppendTo(st.scratch[:0])
		st.scratch = w
		// An unwatched socket never produces bytes; persist the watch.
		_ = read.SendRetry(w, controlDeadline()) //sendcheck:ok
		self.Progress()
	}

	// Inbound stream chunks, one batched drain.
	n, _ := self.RecvBatch(read, st.recvBufs, st.recvLens)
	for i := 0; i < n; i++ {
		msg, err := netactors.ParseMsg(st.recvBufs[i][:st.recvLens[i]])
		if err != nil {
			continue
		}
		switch msg.Type {
		case netactors.MsgClosed:
			if cs, ok := st.socks[msg.Sock]; ok {
				if cs.mode == connModeFramed {
					srv.notifyShards(st, msg.Sock, reqChans)
				}
				delete(st.socks, msg.Sock)
			}
		case netactors.MsgData:
			cs, ok := st.socks[msg.Sock]
			if !ok {
				continue
			}
			if cs.mode == connModeUnknown && len(msg.Data) > 0 {
				// Protocol sniff on the first byte. With pipelining
				// disabled, framed hellos fall through to the legacy
				// scanner, which rejects their opcode and drops the
				// connection — exactly what a pre-transport server did,
				// so new clients downgrade cleanly.
				if !opts.DisablePipelining && transport.IsFramed(msg.Data[0]) {
					cs.mode = connModeFramed
				} else {
					cs.mode = connModeLegacy
				}
			}
			if cs.mode == connModeFramed {
				cs.framed.Feed(msg.Data)
				srv.frontendRouteFramed(self, st, opts, cs, msg.Sock, closeCh, fwrite, reqChans, shards, maxForward)
			} else {
				cs.legacy.Feed(msg.Data)
				srv.frontendRoute(self, st, cs, msg.Sock, closeCh, reqChans, shards, maxForward)
			}
		}
	}
	for i := range st.stages {
		srv.flushStage(st, i, reqChans[i])
	}
	srv.flushCtl(st, fwrite)
}

// dropConn cuts a peer off: closes the socket and, for framed sessions,
// tells every KVSTORE to reclaim the session's replay state.
func (srv *Server) dropConn(st *frontendState, cs *connState, sock uint32, closeCh *core.Endpoint, reqChans []*core.Endpoint) {
	if cs != nil && cs.mode == connModeFramed {
		srv.notifyShards(st, sock, reqChans)
	}
	delete(st.socks, sock)
	c, _ := (netactors.Msg{Type: netactors.MsgClose, Sock: sock}).AppendTo(nil)
	// A lost close leaks the socket; persist it.
	_ = closeCh.SendRetry(c, controlDeadline()) //sendcheck:ok
}

// notifyShards forwards a session close to every KVSTORE so replay
// caches are reclaimed promptly (maxReplaySessions backstops losses).
func (srv *Server) notifyShards(st *frontendState, sock uint32, reqChans []*core.Endpoint) {
	m, _ := (netactors.Msg{Type: netactors.MsgClosed, Sock: sock}).AppendTo(st.scratch[:0])
	st.scratch = m
	for _, ep := range reqChans {
		_ = ep.SendRetry(m, controlDeadline()) //sendcheck:ok
	}
}

// frontendRoute forwards every complete legacy request a socket has
// buffered to the KVSTORE shard owning its key.
func (srv *Server) frontendRoute(self *core.Self, st *frontendState, cs *connState,
	sock uint32, closeCh *core.Endpoint, reqChans []*core.Endpoint, shards, maxForward int) {

	sc := &cs.legacy
	for {
		req, raw, ok, err := sc.NextFrame()
		if err != nil || sc.Buffered() > maxBufferedStream {
			// Lost framing or unbounded partial frame: cut the peer off.
			srv.dropConn(st, cs, sock, closeCh, reqChans)
			return
		}
		if !ok {
			return
		}
		if len(raw) > maxForward {
			srv.dropConn(st, cs, sock, closeCh, reqChans) // cannot cross the channel in one node
			return
		}
		self.Progress()
		srv.stageRequest(st, req.Key, sock, raw, reqChans, shards)
	}
}

// frontendRouteFramed drains a framed session's buffered frames: the
// handshake is answered directly over fwrite, requests are validated
// against the session's opaque window and forwarded — still as one raw
// frame per message — to the shard owning the key.
func (srv *Server) frontendRouteFramed(self *core.Self, st *frontendState, opts Options, cs *connState,
	sock uint32, closeCh, fwrite *core.Endpoint, reqChans []*core.Endpoint, shards, maxForward int) {

	for {
		f, raw, ok, err := cs.framed.Next()
		if err != nil {
			srv.dropConn(st, cs, sock, closeCh, reqChans)
			return
		}
		if !ok {
			return
		}
		self.Progress()
		switch f.Type {
		case transport.THello:
			if cs.helloSeen || f.Flags != transport.Version1 || f.Opaque&transport.FeatureKV == 0 {
				srv.dropConn(st, cs, sock, closeCh, reqChans)
				return
			}
			cs.helloSeen = true
			srv.sessions.Add(1)
			ack := transport.HelloAck(transport.FeatureKV, uint32(opts.SessionWindow))
			frame, err := transport.AppendFrame(st.frameBuf[:0], ack)
			if err != nil {
				srv.dropConn(st, cs, sock, closeCh, reqChans)
				return
			}
			st.frameBuf = frame
			m, err := (netactors.Msg{Type: netactors.MsgData, Sock: sock, Data: frame}).AppendTo(st.fwStage.Slot())
			if err != nil {
				srv.dropConn(st, cs, sock, closeCh, reqChans)
				return
			}
			st.fwStage.Push(m)
			if st.fwStage.Len() >= stageFlushBatch {
				srv.flushCtl(st, fwrite)
			}
		case transport.TRequest:
			if !cs.helloSeen || len(raw) > maxForward {
				srv.dropConn(st, cs, sock, closeCh, reqChans)
				return
			}
			// Opaque replay-window horizon: a fresh opaque advances it,
			// a resend inside the window passes through (the KVSTORE's
			// cache dedups it), and anything older broke the window
			// discipline — executing it could double-apply, so the
			// session dies instead.
			if !cs.opaqueSeen {
				cs.opaqueSeen = true
				cs.maxOpaque = f.Opaque
			} else if d := int32(f.Opaque - cs.maxOpaque); d > 0 {
				cs.maxOpaque = f.Opaque
			} else if -d >= int32(opts.ReplayWindow) {
				srv.dropConn(st, cs, sock, closeCh, reqChans)
				return
			}
			req, _, err := ParseRequest(f.Payload)
			if err != nil || req.Op < OpGet || req.Op > OpDel {
				srv.dropConn(st, cs, sock, closeCh, reqChans)
				return
			}
			srv.stageRequest(st, req.Key, sock, raw, reqChans, shards)
		case transport.TGoAway:
			srv.dropConn(st, cs, sock, closeCh, reqChans)
			return
		default:
			// TCredit and friends are harmless in v1; anything the
			// session layer does not know is a violation.
			if !f.Type.Valid() {
				srv.dropConn(st, cs, sock, closeCh, reqChans)
				return
			}
		}
	}
}

// stageRequest stages one raw request frame (legacy or framed) for the
// shard owning key.
func (srv *Server) stageRequest(st *frontendState, key []byte, sock uint32, raw []byte,
	reqChans []*core.Endpoint, shards int) {

	shard := pos.ShardOf(key, shards)
	m, err := (netactors.Msg{Type: netactors.MsgData, Sock: sock, Data: raw}).AppendTo(st.stages[shard].Slot())
	if err != nil {
		return
	}
	st.stages[shard].Push(m)
	if st.stages[shard].Len() >= stageFlushBatch {
		srv.flushStage(st, shard, reqChans[shard])
	}
}

// flushStage sends shard i's staged frames as one batch; under
// backpressure the remainder spills to the bounded pending queue (the
// stage's slots are reused next round, so spilled frames get copies).
func (srv *Server) flushStage(st *frontendState, i int, ep *core.Endpoint) {
	if st.stages[i].Len() == 0 {
		return
	}
	sent := 0
	if len(st.pending[i]) == 0 {
		sent, _ = ep.SendBatch(st.stages[i].Frames()) //sendcheck:ok
	}
	for _, f := range st.stages[i].Frames()[sent:] {
		if len(st.pending[i]) >= maxPendingFrames {
			break // slow-receiver protection: shed, clients retry
		}
		st.pending[i] = append(st.pending[i], append([]byte(nil), f...))
	}
	st.stages[i].Reset()
}

// flushCtl sends the staged session-control frames over fwrite, with
// the same bounded pending spill as the shard stages.
func (srv *Server) flushCtl(st *frontendState, fwrite *core.Endpoint) {
	if st.fwStage.Len() == 0 {
		return
	}
	sent := 0
	if len(st.fwPending) == 0 {
		sent, _ = fwrite.SendBatch(st.fwStage.Frames()) //sendcheck:ok
	}
	for _, f := range st.fwStage.Frames()[sent:] {
		if len(st.fwPending) >= maxPendingFrames {
			break
		}
		st.fwPending = append(st.fwPending, append([]byte(nil), f...))
	}
	st.fwStage.Reset()
}

func reqChannel(i int) string   { return "req-" + itoa(i) }
func writeChannel(i int) string { return "write-" + itoa(i) }

// itoa avoids fmt on the hot path helpers (tiny shard counts only).
func itoa(i int) string {
	if i < 10 {
		return string([]byte{'0' + byte(i)})
	}
	return itoa(i/10) + itoa(i%10)
}

// storeState is one KVSTORE eactor's private state.
type storeState struct {
	recvBufs [][]byte
	recvLens []int
	respBuf  []byte
	frameBuf []byte
	stage    core.SendStage
	pending  [][]byte
	// replays is the per-session dedup state for framed connections:
	// a resent opaque is answered from its cached response frame, so
	// SET/DEL take effect exactly once under at-least-once resends.
	replays    map[uint32]*transport.Replay
	replayFIFO []uint32
}

// replayFor returns (building on demand) the replay window for a
// framed session, evicting the oldest session past maxReplaySessions.
func (st *storeState) replayFor(sock uint32, capacity int) *transport.Replay {
	if r, ok := st.replays[sock]; ok {
		return r
	}
	if st.replays == nil {
		st.replays = make(map[uint32]*transport.Replay)
	}
	for len(st.replays) >= maxReplaySessions {
		delete(st.replays, st.replayFIFO[0])
		st.replayFIFO = st.replayFIFO[1:]
	}
	r := transport.NewReplay(capacity)
	st.replays[sock] = r
	st.replayFIFO = append(st.replayFIFO, sock)
	return r
}

// storeSpec builds KVSTORE eactor i: it executes the requests routed to
// it on the shared sharded store (key affinity means it only ever
// touches POS shard i, so the KVSTOREs scale without lock contention)
// and stages the responses back to the WRITER in one batch per round.
// Framed requests produce framed responses: the TResponse wraps the
// legacy response encoding, echoes the opaque, returns the request's
// bytes as flow-control credit, and lands in the replay cache so a
// client resend replays instead of re-executing.
func (srv *Server) storeSpec(opts Options, i, worker int, enclave string) core.Spec {
	nodePayload := opts.NodePayload
	if nodePayload <= 0 {
		nodePayload = core.DefaultNodePayload
	}
	st := &storeState{}
	st.recvBufs, st.recvLens = core.BatchBufs(opts.MaxBatch, nodePayload)
	syncPerBurst := opts.FlushInterval < 0
	var req, write *core.Endpoint
	return core.Spec{
		Name:    storeName(i),
		Enclave: enclave,
		Worker:  worker,
		State:   st,
		Init: func(self *core.Self) error {
			req = self.MustChannel(reqChannel(i))
			write = self.MustChannel(writeChannel(i))
			return nil
		},
		Body: func(self *core.Self) {
			if len(st.pending) > 0 {
				n, _ := write.SendBatch(st.pending) //sendcheck:ok
				if n > 0 {
					self.Progress()
					st.pending = st.pending[n:]
					if len(st.pending) == 0 {
						st.pending = nil
					}
				}
			}
			n, _ := self.RecvBatch(req, st.recvBufs, st.recvLens)
			for j := 0; j < n; j++ {
				msg, err := netactors.ParseMsg(st.recvBufs[j][:st.recvLens[j]])
				if err != nil {
					continue
				}
				switch msg.Type {
				case netactors.MsgClosed:
					delete(st.replays, msg.Sock)
					continue
				case netactors.MsgData:
				default:
					continue
				}
				self.Progress()
				var out []byte
				if len(msg.Data) > 0 && transport.IsFramed(msg.Data[0]) {
					out = srv.executeFramed(self, st, opts, uint32(i), msg)
				} else {
					out = srv.executeLegacy(self, st, uint32(i), msg)
				}
				if out == nil {
					continue
				}
				m, err := (netactors.Msg{Type: netactors.MsgData, Sock: msg.Sock, Data: out}).AppendTo(st.stage.Slot())
				if err != nil {
					continue
				}
				st.stage.Push(m)
				if st.stage.Len() >= stageFlushBatch {
					srv.flushWrites(st, write)
				}
			}
			if n > 0 && syncPerBurst {
				// Per-burst write-back: one batched Sync amortised over
				// the whole drained burst. The flush is untrusted work
				// (file I/O); with switchless proxies configured it is
				// relayed as a switchless OCall so the enclaved KVSTORE
				// never crosses the boundary for it.
				tr := self.Tracer()
				start := tr.Begin(self.TraceScope())
				self.RunUntrusted(func() { _ = srv.store.Flush() })
				tr.End(self.WorkerID(), self.TraceScope(), trace.KindPOSSync, uint32(i), start)
			}
			srv.flushWrites(st, write)
		},
	}
}

// executeLegacy runs one bare legacy request and returns the encoded
// legacy response (nil to drop).
func (srv *Server) executeLegacy(self *core.Self, st *storeState, shard uint32, msg netactors.Msg) []byte {
	request, _, err := ParseRequest(msg.Data)
	if err != nil {
		return nil
	}
	resp := srv.execute(self, shard, request)
	buf, err := resp.AppendTo(st.respBuf[:0])
	if err != nil {
		return nil
	}
	st.respBuf = buf
	return buf
}

// executeFramed runs one transport-framed request with replay dedup and
// returns the encoded TResponse frame (nil to drop). The response
// credit returns the request frame's bytes to the client's window.
func (srv *Server) executeFramed(self *core.Self, st *storeState, opts Options, shard uint32, msg netactors.Msg) []byte {
	f, _, err := transport.ParseFrame(msg.Data)
	if err != nil || f.Type != transport.TRequest {
		return nil
	}
	srv.pipelined.Add(1)
	sess := st.replayFor(msg.Sock, opts.ReplayWindow)
	cached, verdict := sess.Admit(f.Opaque)
	switch verdict {
	case transport.VerdictReplay:
		srv.replayed.Add(1)
		return cached
	case transport.VerdictReject:
		// The FRONTEND polices the opaque horizon; a reject here means
		// its notion and ours diverged (e.g. session eviction). Refuse
		// silently — the client's resend discipline treats it as loss.
		return nil
	}
	request, _, err := ParseRequest(f.Payload)
	if err != nil {
		return nil
	}
	resp := srv.execute(self, shard, request)
	inner, err := resp.AppendTo(st.respBuf[:0])
	if err != nil {
		return nil
	}
	st.respBuf = inner
	frame, err := transport.AppendFrame(st.frameBuf[:0], transport.Frame{
		Type:    transport.TResponse,
		Opaque:  f.Opaque,
		Credit:  uint32(len(msg.Data)),
		Payload: inner,
	})
	if err != nil {
		return nil
	}
	st.frameBuf = frame
	sess.Store(f.Opaque, frame)
	return frame
}

// flushWrites sends the staged responses as one batch, spilling the
// remainder to the bounded pending queue under backpressure.
func (srv *Server) flushWrites(st *storeState, write *core.Endpoint) {
	if st.stage.Len() == 0 {
		return
	}
	sent := 0
	if len(st.pending) == 0 {
		sent, _ = write.SendBatch(st.stage.Frames()) //sendcheck:ok
	}
	for _, f := range st.stage.Frames()[sent:] {
		if len(st.pending) >= maxPendingFrames {
			break
		}
		st.pending = append(st.pending, append([]byte(nil), f...))
	}
	st.stage.Reset()
}

// execute runs one request against the sharded store. The POS spans it
// records (ref = the executing shard; key affinity makes that the only
// shard touched) time the store operation alone — mutations count as
// KindPOSSet whether they insert or delete.
func (srv *Server) execute(self *core.Self, shard uint32, req Request) Response {
	tr := self.Tracer()
	sc := self.TraceScope()
	switch req.Op {
	case OpGet:
		srv.gets.Add(1)
		start := tr.Begin(sc)
		val, ok, err := srv.store.Get(req.Key)
		tr.End(self.WorkerID(), sc, trace.KindPOSGet, shard, start)
		if err != nil {
			srv.errs.Add(1)
			return Response{Status: StatusErr, ID: req.ID, Val: []byte(err.Error())}
		}
		if !ok {
			srv.notFound.Add(1)
			return Response{Status: StatusNotFound, ID: req.ID}
		}
		return Response{Status: StatusValue, ID: req.ID, Val: val}
	case OpSet:
		srv.sets.Add(1)
		start := tr.Begin(sc)
		err := srv.store.Set(req.Key, req.Val)
		tr.End(self.WorkerID(), sc, trace.KindPOSSet, shard, start)
		if err != nil {
			srv.errs.Add(1)
			return Response{Status: StatusErr, ID: req.ID, Val: []byte(err.Error())}
		}
		return Response{Status: StatusOK, ID: req.ID}
	case OpDel:
		srv.dels.Add(1)
		start := tr.Begin(sc)
		found, err := srv.store.Delete(req.Key)
		tr.End(self.WorkerID(), sc, trace.KindPOSSet, shard, start)
		if err != nil {
			srv.errs.Add(1)
			return Response{Status: StatusErr, ID: req.ID, Val: []byte(err.Error())}
		}
		if !found {
			srv.notFound.Add(1)
			return Response{Status: StatusNotFound, ID: req.ID}
		}
		return Response{Status: StatusOK, ID: req.ID}
	default:
		srv.errs.Add(1)
		return Response{Status: StatusErr, ID: req.ID, Val: []byte("kv: unknown op")}
	}
}
