// Package kv is the networked secure key-value service: the paper's
// Persistent Object Store (Section 4.1) opened to the network through
// the system eactors of Section 4.2. Clients speak a small binary
// protocol over TCP; an untrusted FRONTEND eactor reassembles request
// frames and routes each one by key affinity to the KVSTORE eactor
// owning that key's POS shard, so requests for different shards execute
// in parallel and never contend on one store lock. When the deployment
// is trusted, the KVSTORE eactors run inside enclaves, the routing
// channels encrypt automatically at the enclave boundary, and the
// sharded store seals every record at rest.
package kv

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Op discriminates client requests.
type Op uint8

// Request operations.
const (
	// OpGet looks a key up; answered by StatusValue or StatusNotFound.
	OpGet Op = iota + 1
	// OpSet stores a key/value pair; answered by StatusOK.
	OpSet
	// OpDel removes a key; answered by StatusOK (existed) or
	// StatusNotFound.
	OpDel
)

// Status discriminates server responses.
type Status uint8

// Response statuses.
const (
	// StatusValue carries a found value.
	StatusValue Status = iota + 1
	// StatusNotFound reports a missing key.
	StatusNotFound
	// StatusOK acknowledges a write.
	StatusOK
	// StatusErr reports a failed operation; Val is the error text.
	StatusErr
)

const (
	reqHeader  = 1 + 4 + 2 + 2 // op + id + keyLen + valLen
	respHeader = 1 + 4 + 2     // status + id + valLen
)

// MaxKey and MaxVal bound single-frame keys and values.
const (
	MaxKey = 0xFFFF
	MaxVal = 0xFFFF
)

// ErrShortFrame reports a truncated encoding.
var ErrShortFrame = errors.New("kv: short frame")

// Request is one client operation.
type Request struct {
	Op  Op
	ID  uint32
	Key []byte
	Val []byte
}

// Response is one server answer; ID echoes the request.
type Response struct {
	Status Status
	ID     uint32
	Val    []byte
}

// AppendTo encodes r at the end of buf.
func (r Request) AppendTo(buf []byte) ([]byte, error) {
	if len(r.Key) > MaxKey || len(r.Val) > MaxVal {
		return nil, fmt.Errorf("kv: request key %d / val %d exceeds frame limit", len(r.Key), len(r.Val))
	}
	var hdr [reqHeader]byte
	hdr[0] = byte(r.Op)
	binary.LittleEndian.PutUint32(hdr[1:], r.ID)
	binary.LittleEndian.PutUint16(hdr[5:], uint16(len(r.Key)))
	binary.LittleEndian.PutUint16(hdr[7:], uint16(len(r.Val)))
	buf = append(buf, hdr[:]...)
	buf = append(buf, r.Key...)
	return append(buf, r.Val...), nil
}

// ParseRequest decodes one request; Key and Val alias b. The returned
// length is the number of bytes consumed.
func ParseRequest(b []byte) (Request, int, error) {
	if len(b) < reqHeader {
		return Request{}, 0, ErrShortFrame
	}
	k := int(binary.LittleEndian.Uint16(b[5:]))
	v := int(binary.LittleEndian.Uint16(b[7:]))
	total := reqHeader + k + v
	if len(b) < total {
		return Request{}, 0, ErrShortFrame
	}
	return Request{
		Op:  Op(b[0]),
		ID:  binary.LittleEndian.Uint32(b[1:]),
		Key: b[reqHeader : reqHeader+k],
		Val: b[reqHeader+k : total],
	}, total, nil
}

// AppendTo encodes r at the end of buf.
func (r Response) AppendTo(buf []byte) ([]byte, error) {
	if len(r.Val) > MaxVal {
		return nil, fmt.Errorf("kv: response val %d exceeds frame limit", len(r.Val))
	}
	var hdr [respHeader]byte
	hdr[0] = byte(r.Status)
	binary.LittleEndian.PutUint32(hdr[1:], r.ID)
	binary.LittleEndian.PutUint16(hdr[5:], uint16(len(r.Val)))
	buf = append(buf, hdr[:]...)
	return append(buf, r.Val...), nil
}

// ParseResponse decodes one response; Val aliases b. The returned
// length is the number of bytes consumed.
func ParseResponse(b []byte) (Response, int, error) {
	if len(b) < respHeader {
		return Response{}, 0, ErrShortFrame
	}
	v := int(binary.LittleEndian.Uint16(b[5:]))
	total := respHeader + v
	if len(b) < total {
		return Response{}, 0, ErrShortFrame
	}
	return Response{
		Status: Status(b[0]),
		ID:     binary.LittleEndian.Uint32(b[1:]),
		Val:    b[respHeader : respHeader+v],
	}, total, nil
}

// ReqScanner reassembles requests from a TCP byte stream: frames arrive
// split and coalesced arbitrarily, so the FRONTEND buffers partial
// frames per socket and yields only complete requests.
type ReqScanner struct {
	buf []byte
}

// Feed appends stream bytes to the scanner.
func (s *ReqScanner) Feed(b []byte) { s.buf = append(s.buf, b...) }

// Next returns the next complete request, or ok=false when the buffer
// holds only a partial frame. Key/Val alias the internal buffer and are
// valid until the next Feed.
func (s *ReqScanner) Next() (Request, bool) {
	req, n, err := ParseRequest(s.buf)
	if err != nil {
		return Request{}, false
	}
	s.buf = s.buf[n:]
	if len(s.buf) == 0 {
		s.buf = nil // let large bursts free their backing array
	}
	return req, true
}

// NextFrame is Next plus the raw frame bytes, for routers that forward
// the encoded request without rebuilding it. A frame with an unknown
// opcode returns an error: the byte stream has lost framing (or the
// peer is hostile) and the connection should be dropped.
func (s *ReqScanner) NextFrame() (Request, []byte, bool, error) {
	req, n, err := ParseRequest(s.buf)
	if err != nil {
		return Request{}, nil, false, nil
	}
	if req.Op < OpGet || req.Op > OpDel {
		return Request{}, nil, false, fmt.Errorf("kv: unknown opcode %d", req.Op)
	}
	raw := s.buf[:n]
	s.buf = s.buf[n:]
	if len(s.buf) == 0 {
		s.buf = nil
	}
	return req, raw, true, nil
}

// Buffered returns the number of unconsumed bytes.
func (s *ReqScanner) Buffered() int { return len(s.buf) }

// RespScanner reassembles responses on the client side of the stream.
type RespScanner struct {
	buf []byte
}

// Feed appends stream bytes to the scanner.
func (s *RespScanner) Feed(b []byte) { s.buf = append(s.buf, b...) }

// Next returns the next complete response, or ok=false when the buffer
// holds only a partial frame. Val aliases the internal buffer.
func (s *RespScanner) Next() (Response, bool) {
	resp, n, err := ParseResponse(s.buf)
	if err != nil {
		return Response{}, false
	}
	s.buf = s.buf[n:]
	if len(s.buf) == 0 {
		s.buf = nil
	}
	return resp, true
}
