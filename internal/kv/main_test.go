package kv

import (
	"testing"

	"github.com/eactors/eactors-go/internal/testutil/leakcheck"
)

// TestMain fails the package if tests leak goroutines — servers,
// stores, and client connections must unwind on Stop/Close.
func TestMain(m *testing.M) { leakcheck.Main(m) }
