package kv

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"github.com/eactors/eactors-go/internal/transport"
)

func dialPipelinedT(t *testing.T, srv *Server, opts PipelineOptions) *PipelinedClient {
	t.Helper()
	if opts.Timeout <= 0 {
		opts.Timeout = 10 * time.Second
	}
	c, err := DialPipelined(srv.Addr(), opts)
	if err != nil {
		t.Fatalf("DialPipelined: %v", err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return c
}

func TestPipelinedEndToEnd(t *testing.T) {
	srv := startTestServer(t, Options{Shards: 2, Trusted: true})
	c := dialPipelinedT(t, srv, PipelineOptions{})

	if _, ok, err := c.Get([]byte("missing")); err != nil || ok {
		t.Fatalf("Get(missing) = ok=%v err=%v", ok, err)
	}
	if err := c.Set([]byte("user:1"), []byte("alice")); err != nil {
		t.Fatalf("Set: %v", err)
	}
	val, ok, err := c.Get([]byte("user:1"))
	if err != nil || !ok || string(val) != "alice" {
		t.Fatalf("Get = %q ok=%v err=%v", val, ok, err)
	}
	found, err := c.Del([]byte("user:1"))
	if err != nil || !found {
		t.Fatalf("Del = %v, %v", found, err)
	}
	st := srv.Stats()
	if st.Sessions != 1 {
		t.Fatalf("sessions = %d", st.Sessions)
	}
	if st.Pipelined < 4 {
		t.Fatalf("pipelined requests = %d", st.Pipelined)
	}
}

// TestPipelinedDeepWindow drives the async issue/complete surface at a
// 64-deep pipeline across shards: every response must land on its own
// pending op (opaque correlation), out-of-order completion included.
func TestPipelinedDeepWindow(t *testing.T) {
	srv := startTestServer(t, Options{Shards: 4})
	c := dialPipelinedT(t, srv, PipelineOptions{Depth: 64})
	const keys = 200
	for i := 0; i < keys; i++ {
		if err := c.Set([]byte(fmt.Sprintf("k%d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatalf("Set(%d): %v", i, err)
		}
	}
	// Issue a full window of GETs before waiting on any of them.
	pendings := make([]*Pending, keys)
	var err error
	for i := range pendings {
		if pendings[i], err = c.IssueGet([]byte(fmt.Sprintf("k%d", i))); err != nil {
			t.Fatalf("IssueGet(%d): %v", i, err)
		}
	}
	for i, p := range pendings {
		resp, err := p.Wait()
		if err != nil {
			t.Fatalf("Wait(%d): %v", i, err)
		}
		if resp.Status != StatusValue || string(resp.Val) != fmt.Sprintf("v%d", i) {
			t.Fatalf("get %d = %+v", i, resp)
		}
	}
	st := c.Stats()
	if st.MaxInFlightBytes > st.WindowLimit {
		t.Fatalf("window violated: %d > %d", st.MaxInFlightBytes, st.WindowLimit)
	}
}

// TestInteropLegacyClientNewServer: a pre-transport client must work
// unchanged against a pipelining-enabled server (mode sniff on byte 0).
func TestInteropLegacyClientNewServer(t *testing.T) {
	srv := startTestServer(t, Options{Shards: 2})
	c := testClient(t, srv)
	if err := c.Set([]byte("legacy"), []byte("works")); err != nil {
		t.Fatal(err)
	}
	val, ok, err := c.Get([]byte("legacy"))
	if err != nil || !ok || string(val) != "works" {
		t.Fatalf("Get = %q ok=%v err=%v", val, ok, err)
	}
	if st := srv.Stats(); st.Sessions != 0 || st.Pipelined != 0 {
		t.Fatalf("legacy traffic counted as framed: %+v", st)
	}
}

// TestInteropNewClientLegacyServer: against a server without the framed
// protocol the handshake must fail with ErrLegacyPeer (the server drops
// the HELLO as an unknown opcode) and DialAuto must downgrade to the
// legacy client transparently.
func TestInteropNewClientLegacyServer(t *testing.T) {
	srv := startTestServer(t, Options{Shards: 2, DisablePipelining: true})
	if _, err := DialPipelined(srv.Addr(), PipelineOptions{Timeout: 2 * time.Second}); !errors.Is(err, transport.ErrLegacyPeer) {
		t.Fatalf("DialPipelined err = %v, want ErrLegacyPeer", err)
	}
	kv, err := DialAuto(srv.Addr(), 5*time.Second)
	if err != nil {
		t.Fatalf("DialAuto: %v", err)
	}
	t.Cleanup(func() { _ = kv.Close() })
	if _, ok := kv.(*Client); !ok {
		t.Fatalf("DialAuto returned %T, want legacy *Client", kv)
	}
	if err := kv.Set([]byte("down"), []byte("graded")); err != nil {
		t.Fatal(err)
	}
	val, ok, err := kv.Get([]byte("down"))
	if err != nil || !ok || string(val) != "graded" {
		t.Fatalf("Get = %q ok=%v err=%v", val, ok, err)
	}
}

// TestInteropAutoPipelined: DialAuto against a new server must pick the
// framed transport.
func TestInteropAutoPipelined(t *testing.T) {
	srv := startTestServer(t, Options{Shards: 2})
	kv, err := DialAuto(srv.Addr(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = kv.Close() })
	if _, ok := kv.(*PipelinedClient); !ok {
		t.Fatalf("DialAuto returned %T, want *PipelinedClient", kv)
	}
	if err := kv.Set([]byte("auto"), []byte("framed")); err != nil {
		t.Fatal(err)
	}
}

// TestInteropMixedSoak runs pipelined and legacy clients against the
// same FRONTEND concurrently (the -race soak for the mode sniff and the
// shared WRITER path): both protocols on one listener, disjoint key
// spaces, every read must observe its own writes.
func TestInteropMixedSoak(t *testing.T) {
	srv := startTestServer(t, Options{Shards: 4, Trusted: true})
	const perKind, rounds = 3, 40
	var wg sync.WaitGroup
	errs := make(chan error, 2*perKind)
	for id := 0; id < perKind; id++ {
		wg.Add(2)
		go func(id int) {
			defer wg.Done()
			c, err := DialPipelined(srv.Addr(), PipelineOptions{Depth: 32, Timeout: 10 * time.Second})
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for i := 0; i < rounds; i++ {
				k := []byte(fmt.Sprintf("piped-%d-%d", id, i%7))
				v := []byte(fmt.Sprintf("pv-%d", i))
				if err := c.Set(k, v); err != nil {
					errs <- fmt.Errorf("pipelined %d Set: %w", id, err)
					return
				}
				got, ok, err := c.Get(k)
				if err != nil || !ok || !bytes.Equal(got, v) {
					errs <- fmt.Errorf("pipelined %d Get = %q ok=%v err=%v", id, got, ok, err)
					return
				}
			}
		}(id)
		go func(id int) {
			defer wg.Done()
			c, err := Dial(srv.Addr(), 10*time.Second)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for i := 0; i < rounds; i++ {
				k := []byte(fmt.Sprintf("legacy-%d-%d", id, i%7))
				v := []byte(fmt.Sprintf("lv-%d", i))
				if err := c.Set(k, v); err != nil {
					errs <- fmt.Errorf("legacy %d Set: %w", id, err)
					return
				}
				got, ok, err := c.Get(k)
				if err != nil || !ok || !bytes.Equal(got, v) {
					errs <- fmt.Errorf("legacy %d Get = %q ok=%v err=%v", id, got, ok, err)
					return
				}
			}
		}(id)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := srv.Stats()
	if st.Sessions != perKind {
		t.Fatalf("sessions = %d, want %d", st.Sessions, perKind)
	}
	if st.Pipelined == 0 {
		t.Fatal("no framed requests counted")
	}
}

// TestPipelinedExactlyOnceOnResend drives the server with a hand-rolled
// framed connection and retransmits a DEL: the replay window must
// answer the duplicate from cache — both responses say "found", the key
// dies once. A re-execution would answer the duplicate with NotFound.
func TestPipelinedExactlyOnceOnResend(t *testing.T) {
	srv := startTestServer(t, Options{Shards: 2})
	seed := dialPipelinedT(t, srv, PipelineOptions{})
	if err := seed.Set([]byte("victim"), []byte("x")); err != nil {
		t.Fatal(err)
	}

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = conn.Close() })
	_ = conn.SetDeadline(time.Now().Add(10 * time.Second))
	var sc transport.Scanner
	buf := make([]byte, 64<<10)
	readFrame := func() transport.Frame {
		t.Helper()
		for {
			f, _, ok, err := sc.Next()
			if err != nil {
				t.Fatalf("scan: %v", err)
			}
			if ok {
				return f
			}
			n, err := conn.Read(buf)
			if n > 0 {
				sc.Feed(buf[:n])
				continue
			}
			if err != nil {
				t.Fatalf("read: %v", err)
			}
		}
	}
	hello, _ := transport.Hello(transport.FeatureKV, transport.DefaultWindow)
	hb, _ := transport.AppendFrame(nil, hello)
	if _, err := conn.Write(hb); err != nil {
		t.Fatal(err)
	}
	if ack := readFrame(); ack.Type != transport.THelloAck || ack.Opaque&transport.FeatureKV == 0 {
		t.Fatalf("handshake ack = %+v", ack)
	}
	payload, _ := Request{Op: OpDel, Key: []byte("victim")}.AppendTo(nil)
	req, _ := transport.AppendFrame(nil, transport.Frame{Type: transport.TRequest, Opaque: 7, Payload: payload})
	var statuses []Status
	for i := 0; i < 2; i++ { // original + at-least-once resend
		if _, err := conn.Write(req); err != nil {
			t.Fatal(err)
		}
		f := readFrame()
		if f.Type != transport.TResponse || f.Opaque != 7 {
			t.Fatalf("send %d: %+v", i, f)
		}
		resp, _, err := ParseResponse(f.Payload)
		if err != nil {
			t.Fatal(err)
		}
		statuses = append(statuses, resp.Status)
	}
	if statuses[0] != StatusOK || statuses[1] != StatusOK {
		t.Fatalf("DEL statuses = %v: duplicate re-executed instead of replaying", statuses)
	}
	if _, ok, err := seed.Get([]byte("victim")); err != nil || ok {
		t.Fatalf("victim survived: ok=%v err=%v", ok, err)
	}
	if st := srv.Stats(); st.Replayed == 0 {
		t.Fatalf("no replays counted: %+v", st)
	}
}

// TestPipelinedFlowControlSmallWindow: a server advertising a tiny
// session window must throttle a deep pipelined client — bounded
// in-flight bytes, zero failures — rather than dropping or wedging.
func TestPipelinedFlowControlSmallWindow(t *testing.T) {
	srv := startTestServer(t, Options{Shards: 2, SessionWindow: 256})
	c := dialPipelinedT(t, srv, PipelineOptions{Depth: 64, Timeout: 20 * time.Second})
	if limit := c.Stats().WindowLimit; limit != 256 {
		t.Fatalf("advertised window = %d", limit)
	}
	deadline := time.Now().Add(30 * time.Second)
	for i := 0; i < 150; i++ {
		k := []byte(fmt.Sprintf("fc-%d", i%9))
		if err := c.Set(k, bytes.Repeat([]byte{byte(i)}, 40)); err != nil {
			t.Fatalf("Set(%d): %v", i, err)
		}
	}
	if time.Now().After(deadline) {
		t.Fatal("flow-controlled run blew its deadline")
	}
	st := c.Stats()
	if st.MaxInFlightBytes > 256 {
		t.Fatalf("in-flight high-water %d exceeded the 256-byte advertisement", st.MaxInFlightBytes)
	}
	if st.Issued != 150 || st.Completed != 150 {
		t.Fatalf("issued %d completed %d", st.Issued, st.Completed)
	}
}
