package kv

import (
	"errors"
	"fmt"
	"net"
	"time"

	"github.com/eactors/eactors-go/internal/transport"
)

// KV is the operation surface shared by the legacy synchronous Client
// and the pipelined client, so callers (load generators, tests) can
// swap transports without caring which one the server negotiated.
type KV interface {
	Get(key []byte) (val []byte, ok bool, err error)
	Set(key, val []byte) error
	Del(key []byte) (found bool, err error)
	Close() error
}

var (
	_ KV = (*Client)(nil)
	_ KV = (*PipelinedClient)(nil)
)

// PipelineOptions configures a pipelined client.
type PipelineOptions struct {
	// Depth caps concurrent in-flight requests (default 64 — half the
	// server's default replay window, so resends always dedup).
	Depth int
	// Timeout bounds each call (default 5s).
	Timeout time.Duration
	// RecvWindow is the client's receive-buffer advertisement
	// (informational in v1; default transport.DefaultWindow).
	RecvWindow uint32
}

// PipelinedClient speaks the framed multiplexed KV protocol: many
// requests ride one connection concurrently, responses return out of
// order correlated by opaque, and the transport session enforces the
// server's flow-control window and at-least-once resends. Safe for
// concurrent use by any number of goroutines.
//
// The legacy per-request ID is unused in framed mode (correlation is
// the frame opaque) and always sent as zero.
type PipelinedClient struct {
	sess *transport.Session
}

// Pending is one in-flight pipelined operation; Wait blocks for its
// result. Issue deep, Wait in any order — that is the pipelining.
type Pending struct {
	c    *transport.Call
	sess *transport.Session
	op   Op
}

// DialPipelined connects and performs the framed handshake. A legacy
// server (which drops the unknown HELLO bytes) yields
// transport.ErrLegacyPeer; use DialAuto to downgrade automatically.
func DialPipelined(addr string, opts PipelineOptions) (*PipelinedClient, error) {
	timeout := opts.Timeout
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	sess, err := transport.Connect(conn, transport.SessionOptions{
		Features:         transport.FeatureKV,
		RecvWindow:       opts.RecvWindow,
		Depth:            opts.Depth,
		HandshakeTimeout: timeout,
		CallTimeout:      timeout,
	})
	if err != nil {
		return nil, err // Connect closed conn
	}
	if sess.PeerFeatures()&transport.FeatureKV == 0 {
		_ = sess.Close()
		return nil, fmt.Errorf("kv: peer did not grant the KV feature")
	}
	return &PipelinedClient{sess: sess}, nil
}

// DialAuto connects pipelined and downgrades to the legacy synchronous
// client when the server predates the framed protocol.
func DialAuto(addr string, timeout time.Duration) (KV, error) {
	pc, err := DialPipelined(addr, PipelineOptions{Timeout: timeout})
	if err == nil {
		return pc, nil
	}
	if !errors.Is(err, transport.ErrLegacyPeer) {
		return nil, err
	}
	return Dial(addr, timeout)
}

// Close tears the session down; in-flight calls error.
func (c *PipelinedClient) Close() error { return c.sess.Close() }

// Stats snapshots the underlying session counters.
func (c *PipelinedClient) Stats() transport.SessionStats { return c.sess.Stats() }

// issue encodes one request into a frame payload and puts it in flight.
func (c *PipelinedClient) issue(req Request) (*Pending, error) {
	payload, err := req.AppendTo(nil)
	if err != nil {
		return nil, err
	}
	call, err := c.sess.Issue(transport.TRequest, payload)
	if err != nil {
		return nil, err
	}
	return &Pending{c: call, sess: c.sess, op: req.Op}, nil
}

// IssueGet puts a GET in flight without waiting.
func (c *PipelinedClient) IssueGet(key []byte) (*Pending, error) {
	return c.issue(Request{Op: OpGet, Key: key})
}

// IssueSet puts a SET in flight without waiting.
func (c *PipelinedClient) IssueSet(key, val []byte) (*Pending, error) {
	return c.issue(Request{Op: OpSet, Key: key, Val: val})
}

// IssueDel puts a DEL in flight without waiting.
func (c *PipelinedClient) IssueDel(key []byte) (*Pending, error) {
	return c.issue(Request{Op: OpDel, Key: key})
}

// Wait blocks until the operation's response arrives (with the
// session's at-least-once resends underneath) and decodes it.
func (p *Pending) Wait() (Response, error) {
	f, err := p.sess.Wait(p.c)
	if err != nil {
		return Response{}, err
	}
	resp, _, err := ParseResponse(f.Payload)
	if err != nil {
		return Response{}, fmt.Errorf("kv: bad framed response: %w", err)
	}
	return resp, nil
}

// Get looks key up; ok is false when the key is absent.
func (c *PipelinedClient) Get(key []byte) (val []byte, ok bool, err error) {
	p, err := c.IssueGet(key)
	if err != nil {
		return nil, false, err
	}
	resp, err := p.Wait()
	if err != nil {
		return nil, false, err
	}
	switch resp.Status {
	case StatusValue:
		return append([]byte(nil), resp.Val...), true, nil
	case StatusNotFound:
		return nil, false, nil
	default:
		return nil, false, fmt.Errorf("kv: server error: %s", resp.Val)
	}
}

// Set stores key → val.
func (c *PipelinedClient) Set(key, val []byte) error {
	p, err := c.IssueSet(key, val)
	if err != nil {
		return err
	}
	resp, err := p.Wait()
	if err != nil {
		return err
	}
	if resp.Status != StatusOK {
		return fmt.Errorf("kv: server error: %s", resp.Val)
	}
	return nil
}

// Del removes key; found reports whether it existed.
func (c *PipelinedClient) Del(key []byte) (found bool, err error) {
	p, err := c.IssueDel(key)
	if err != nil {
		return false, err
	}
	resp, err := p.Wait()
	if err != nil {
		return false, err
	}
	switch resp.Status {
	case StatusOK:
		return true, nil
	case StatusNotFound:
		return false, nil
	default:
		return false, fmt.Errorf("kv: server error: %s", resp.Val)
	}
}
