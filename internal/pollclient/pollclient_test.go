package pollclient

import (
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestURL(t *testing.T) {
	for _, tc := range []struct{ addr, path, want string }{
		{"127.0.0.1:9090", "/debug/profile", "http://127.0.0.1:9090/debug/profile"},
		{"http://host:1/", "/debug/profile", "http://host:1/debug/profile"},
		{"http://host:1/debug/profile", "/debug/profile", "http://host:1/debug/profile"},
		{"https://host", "/debug/traces", "https://host/debug/traces"},
	} {
		if got := URL(tc.addr, tc.path); got != tc.want {
			t.Errorf("URL(%q, %q) = %q, want %q", tc.addr, tc.path, got, tc.want)
		}
	}
}

func TestGet(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path == "/ok" {
			w.Write([]byte("body"))
			return
		}
		http.NotFound(w, req)
	}))
	defer srv.Close()

	body, err := Get(srv.URL + "/ok")
	if err != nil || string(body) != "body" {
		t.Fatalf("Get = %q, %v", body, err)
	}
	if _, err := Get(srv.URL + "/missing"); err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("Get(404) error = %v, want status in error", err)
	}
	if _, err := Get("http://127.0.0.1:1/unreachable"); err == nil {
		t.Fatal("Get(unreachable) must fail")
	}
}

func TestWriteArtifact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.json")
	if err := WriteArtifact(path, []byte("{}")); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil || string(data) != "{}" {
		t.Fatalf("artifact = %q, %v", data, err)
	}
}
