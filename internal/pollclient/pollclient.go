// Package pollclient is the small HTTP-polling helper shared by the
// observability CLIs (eactors-trace, eactors-top): base-URL
// normalisation, a bounded GET, and artifact capture for chaos CI.
package pollclient

import (
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"
)

// URL normalises addr into a full endpoint URL: a bare host:port gains
// the http:// scheme, and path (e.g. "/debug/profile") is appended
// unless addr already names it.
func URL(addr, path string) string {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	if strings.Contains(addr, path) {
		return addr
	}
	return strings.TrimSuffix(addr, "/") + path
}

// Get fetches url with a 5-second budget and returns the body; a
// non-200 status is an error carrying the status line.
func Get(url string) ([]byte, error) {
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: %s", url, resp.Status)
	}
	return body, nil
}

// WriteArtifact writes data to path (0644), for -o artifact capture in
// chaos CI jobs.
func WriteArtifact(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}
