package pos

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"
)

// Fuzz targets for the POS encode/decode paths. They run in CI's
// fuzz-smoke step (-fuzztime=30s) alongside the stanza fuzzers; longer
// local runs with `go test -fuzz FuzzRecordRoundTrip ./internal/pos/`.

// fuzzStore opens a small volatile store for one fuzz iteration.
func fuzzStore(t *testing.T, encrypted bool) *Store {
	t.Helper()
	opts := Options{SizeBytes: 64 * 1024}
	if encrypted {
		key := testEncKey()
		opts.EncryptionKey = &key
	}
	s, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { _ = s.Close() })
	return s
}

// FuzzRecordRoundTrip feeds arbitrary key/value pairs through the
// record encode/decode path, plaintext and encrypted: whatever Set
// accepts, Get must return byte-identical, and whatever Set rejects
// must be rejected with a typed error — never a panic, never silent
// truncation.
func FuzzRecordRoundTrip(f *testing.F) {
	f.Add([]byte("key"), []byte("value"))
	f.Add([]byte(""), []byte(""))
	f.Add([]byte{0}, []byte{0xFF})
	f.Add(bytes.Repeat([]byte("k"), 300), bytes.Repeat([]byte("v"), 300))
	f.Add([]byte("dup"), []byte("first"))
	f.Fuzz(func(t *testing.T, key, val []byte) {
		if len(key) == 0 {
			return // empty keys are not part of the contract
		}
		for _, encrypted := range []bool{false, true} {
			s := fuzzStore(t, encrypted)
			err := s.Set(key, val)
			if err != nil {
				if !errors.Is(err, ErrTooLarge) && !errors.Is(err, ErrFull) {
					t.Fatalf("Set err = %v (encrypted=%v)", err, encrypted)
				}
				continue
			}
			got, ok, err := s.Get(key)
			if err != nil || !ok || !bytes.Equal(got, val) {
				t.Fatalf("Get = %q ok=%v err=%v, want %q (encrypted=%v)", got, ok, err, val, encrypted)
			}
			// Overwrite + delete keep the chain decodable.
			if err := s.Set(key, append(val, 'x')); err == nil {
				if got, ok, _ := s.Get(key); !ok || !bytes.Equal(got, append(val, 'x')) {
					t.Fatalf("overwrite lost (encrypted=%v)", encrypted)
				}
			}
			if _, err := s.Delete(key); err != nil {
				t.Fatalf("Delete err = %v", err)
			}
			if _, ok, _ := s.Get(key); ok {
				t.Fatalf("deleted key still found (encrypted=%v)", encrypted)
			}
		}
	})
}

// FuzzDecodeValue corrupts stored record bytes and re-reads the store —
// the corruption_test.go cases, generalised: a mutated region may make
// keys disappear or reads fail, but must never panic, return a wrong
// value silently (encrypted mode), or break the store for other keys.
func FuzzDecodeValue(f *testing.F) {
	// Seeds mirror corruption_test.go: version, geometry, record flags,
	// record-length fields, value bytes.
	f.Add(uint32(offVersion), byte(99), false)
	f.Add(uint32(offRegionSize), byte(1), false)
	f.Add(uint32(0), byte(0xFF), true)
	f.Add(uint32(8), byte(0x00), true)
	f.Add(uint32(64), byte(0x7F), true)
	f.Fuzz(func(t *testing.T, off uint32, x byte, encrypted bool) {
		s := fuzzStore(t, encrypted)
		keys := [][]byte{[]byte("alpha"), []byte("beta"), []byte("gamma")}
		for i, k := range keys {
			if err := s.Set(k, bytes.Repeat([]byte{byte(i + 1)}, 32)); err != nil {
				t.Fatal(err)
			}
		}
		// Corrupt one byte somewhere in the record area (never the
		// superblock: reopen validation owns that surface, and the mmap
		// is live here).
		regionBytes := len(s.mem) - s.regionsOff
		target := s.regionsOff + int(off)%regionBytes
		s.mem[target] ^= x

		for i, k := range keys {
			val, ok, err := s.Get(k)
			if err == nil && ok && encrypted && !bytes.Equal(val, bytes.Repeat([]byte{byte(i + 1)}, 32)) {
				t.Fatalf("encrypted store returned tampered value %q without error", val)
			}
		}
		// The maintenance paths must survive arbitrary record corruption.
		_ = s.Range(func(k, v []byte) bool { return true })
		_, _ = s.Clean()
	})
}

// FuzzLoadSealedKey drives the sealed-key slot: arbitrary blobs must
// round-trip byte-identical, oversized ones must be rejected, and a
// corrupted length field must surface as an error, not a slice panic.
func FuzzLoadSealedKey(f *testing.F) {
	f.Add([]byte("sealed-key-blob"), uint32(15))
	f.Add([]byte{}, uint32(0))
	f.Add(bytes.Repeat([]byte{0xAB}, 4000), uint32(4000))
	f.Add([]byte("x"), uint32(0xFFFFFFFF))
	f.Fuzz(func(t *testing.T, blob []byte, badLen uint32) {
		s := fuzzStore(t, false)
		err := s.StoreSealedKey(blob)
		if err != nil {
			if len(blob) <= pageSize-4 {
				t.Fatalf("StoreSealedKey rejected %d bytes: %v", len(blob), err)
			}
			return
		}
		got, err := s.LoadSealedKey()
		if len(blob) == 0 {
			if !errors.Is(err, ErrNoSealedKey) {
				t.Fatalf("empty blob LoadSealedKey err = %v", err)
			}
		} else if err != nil || !bytes.Equal(got, blob) {
			t.Fatalf("LoadSealedKey = %q err=%v, want %q", got, err, blob)
		}
		// Corrupt the length field: load must fail typed, not panic.
		binary.LittleEndian.PutUint32(s.mem[offSealedLen:], badLen)
		if _, err := s.LoadSealedKey(); err == nil && int(badLen) > pageSize-4 {
			t.Fatalf("oversized sealed length %d accepted", badLen)
		}
	})
}
