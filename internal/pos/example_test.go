package pos_test

import (
	"fmt"

	"github.com/eactors/eactors-go/internal/pos"
)

// Example shows the store's versioned write path: new versions shadow
// old ones immediately, and the Cleaner reclaims superseded versions
// once readers have moved past them.
func Example() {
	store, err := pos.Open(pos.Options{SizeBytes: 1 << 20})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	defer store.Close()

	reader := store.RegisterReader()
	_ = store.Set([]byte("config"), []byte("v1"))
	_ = store.Set([]byte("config"), []byte("v2"))

	val, _, _ := store.Get([]byte("config"))
	fmt.Println("current:", string(val))

	// The reader has not observed the update yet: nothing reclaimable.
	n, _ := store.Clean()
	fmt.Println("reclaimed before tick:", n)

	reader.Tick()
	n, _ = store.Clean()
	fmt.Println("reclaimed after tick:", n)
	// Output:
	// current: v2
	// reclaimed before tick: 0
	// reclaimed after tick: 1
}
