//go:build linux

package pos

import (
	"fmt"
	"os"
	"syscall"
)

// mapFile memory-maps path at the requested size, creating and extending
// the file as needed. The paper backs the POS with a memory-mapped file
// served by the kernel page cache so stores avoid system calls except
// for explicit syncs (Section 4.1).
func mapFile(path string, size int) (mem []byte, closer func() error, syncer func() error, err error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("pos: open %s: %w", path, err)
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, nil, nil, fmt.Errorf("pos: stat %s: %w", path, err)
	}
	if info.Size() < int64(size) {
		if err := f.Truncate(int64(size)); err != nil {
			f.Close()
			return nil, nil, nil, fmt.Errorf("pos: truncate %s: %w", path, err)
		}
	}
	mem, err = syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
	if err != nil {
		f.Close()
		return nil, nil, nil, fmt.Errorf("pos: mmap %s: %w", path, err)
	}
	closer = func() error {
		unmapErr := syscall.Munmap(mem)
		closeErr := f.Close()
		if unmapErr != nil {
			return unmapErr
		}
		return closeErr
	}
	syncer = func() error {
		_, _, errno := syscall.Syscall(syscall.SYS_MSYNC,
			uintptr(addrOf(mem)), uintptr(len(mem)), uintptr(syscall.MS_SYNC))
		if errno != 0 {
			return errno
		}
		return nil
	}
	return mem, closer, syncer, nil
}
