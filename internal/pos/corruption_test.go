package pos

import (
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/eactors/eactors-go/internal/core"
	"github.com/eactors/eactors-go/internal/sgx"
)

// Failure-injection tests: the store must reject corrupted files rather
// than misbehave.

func TestReopenRejectsBadVersion(t *testing.T) {
	path := filepath.Join(t.TempDir(), "v.pos")
	s, err := Open(Options{Path: path, SizeBytes: 64 * 1024})
	if err != nil {
		t.Fatal(err)
	}
	_ = s.Close()

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	binary.LittleEndian.PutUint32(raw[offVersion:], 99)
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Options{Path: path, SizeBytes: 64 * 1024}); !errors.Is(err, ErrBadStore) {
		t.Fatalf("bad version err = %v, want ErrBadStore", err)
	}
}

func TestReopenRejectsSizeMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.pos")
	s, err := Open(Options{Path: path, SizeBytes: 64 * 1024})
	if err != nil {
		t.Fatal(err)
	}
	_ = s.Close()
	// Re-open with a different size: the stored superblock disagrees.
	if _, err := Open(Options{Path: path, SizeBytes: 128 * 1024}); !errors.Is(err, ErrBadStore) {
		t.Fatalf("size mismatch err = %v, want ErrBadStore", err)
	}
}

func TestReopenRejectsCorruptGeometry(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.pos")
	s, err := Open(Options{Path: path, SizeBytes: 64 * 1024})
	if err != nil {
		t.Fatal(err)
	}
	_ = s.Close()
	raw, _ := os.ReadFile(path)
	binary.LittleEndian.PutUint32(raw[offRegionSize:], 1) // < minRegionSize
	_ = os.WriteFile(path, raw, 0o644)
	if _, err := Open(Options{Path: path, SizeBytes: 64 * 1024}); !errors.Is(err, ErrBadStore) {
		t.Fatalf("corrupt geometry err = %v, want ErrBadStore", err)
	}
}

func TestEncryptedStoreDetectsValueTampering(t *testing.T) {
	key := testEncKey()
	s := openTestStore(t, Options{EncryptionKey: &key})
	if err := s.Set([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	// Flip a byte somewhere in the record area.
	flipped := false
	for off := s.regionsOff; off < len(s.mem) && !flipped; off++ {
		if s.mem[off] != 0 {
			s.mem[off] ^= 0xFF
			flipped = true
		}
	}
	if !flipped {
		t.Fatal("no record bytes found to corrupt")
	}
	// Either the key no longer matches (not found) or decryption fails;
	// silently returning wrong data is the only failure.
	val, ok, err := s.Get([]byte("k"))
	if ok && err == nil && string(val) != "v" {
		t.Fatalf("tampered store returned wrong value %q without error", val)
	}
}

func testEncKey() [32]byte {
	var k [32]byte
	for i := range k {
		k[i] = byte(0xA0 + i)
	}
	return k
}

// TestCleanerActorIntegration runs the Cleaner as an eactor inside a
// runtime, the deployment the paper describes.
func TestCleanerActorIntegration(t *testing.T) {
	s := openTestStore(t, Options{})
	for i := 0; i < 5; i++ {
		if err := s.Set([]byte("key"), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	spec := s.CleanerActor("cleaner", 0, 2)
	if spec.Name != "cleaner" || spec.Body == nil {
		t.Fatalf("CleanerActor spec = %+v", spec)
	}
	rt, err := core.NewRuntime(
		sgx.NewPlatform(sgx.WithCostModel(sgx.ZeroCostModel())),
		core.Config{Workers: []core.WorkerSpec{{}}, Actors: []core.Spec{spec}},
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()
	deadline := time.Now().Add(10 * time.Second)
	for s.Stats().Cleaned < 4 {
		if time.Now().After(deadline) {
			t.Fatalf("cleaner eactor reclaimed %d of 4 outdated versions", s.Stats().Cleaned)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
